// The examples and the root package's external tests must exercise the
// repository only through the public facade: importing querycentric/internal/...
// there would hide gaps in the exported API.
package querycentric_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestNoInternalImportsOutsideFacade(t *testing.T) {
	var files []string
	matches, err := filepath.Glob("*_test.go")
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, matches...)
	err = filepath.WalkDir("examples", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("found no files to scan")
	}
	fset := token.NewFileSet()
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				t.Errorf("%s: %v", path, err)
				continue
			}
			if p == "querycentric/internal" || strings.HasPrefix(p, "querycentric/internal/") {
				t.Errorf("%s imports %s; use the public facade instead", path, p)
			}
		}
	}
}
