package querycentric_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIPipeline builds the shipped binaries and runs the full trace
// pipeline through them: crawl → queries → analyze → track → sim. This is
// the only test that shells out; skip it with -short.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, tool := range []string{"qc-crawl", "qc-itunes", "qc-queries", "qc-analyze", "qc-track", "qc-sim"} {
		bin := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+tool)
		cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
		bins[tool] = bin
	}
	run := func(tool string, args ...string) string {
		t.Helper()
		cmd := exec.Command(bins[tool], args...)
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("%s %v: %v\nstderr: %s", tool, args, err, stderr.String())
		}
		return stdout.String()
	}

	crawl := filepath.Join(dir, "crawl.trace")
	run("qc-crawl", "-peers", "120", "-objects", "2500", "-firewalled", "0", "-o", crawl)
	if fi, err := os.Stat(crawl); err != nil || fi.Size() == 0 {
		t.Fatalf("crawl trace missing: %v", err)
	}

	itunes := filepath.Join(dir, "itunes.trace")
	run("qc-itunes", "-shares", "40", "-songs", "1500", "-o", itunes)

	queries := filepath.Join(dir, "queries.trace")
	run("qc-queries", "-n", "15000", "-days", "1", "-crawl", crawl, "-o", queries)

	// Analyses over the traces.
	if out := run("qc-analyze", "-mode", "replicas", "-in", crawl); !strings.Contains(out, "rank\tcount") {
		t.Errorf("replicas output unexpected: %.80s", out)
	}
	if out := run("qc-analyze", "-mode", "annotations", "-in", itunes); !strings.Contains(out, "artist") {
		t.Errorf("annotations output unexpected: %.80s", out)
	}
	if out := run("qc-analyze", "-mode", "mismatch", "-in", queries, "-crawl", crawl); !strings.Contains(out, "popular_vs_fstar") {
		t.Errorf("mismatch output unexpected: %.80s", out)
	}
	if out := run("qc-analyze", "-mode", "transients", "-in", queries); !strings.Contains(out, "start\tcount") {
		t.Errorf("transients output unexpected: %.80s", out)
	}

	// Online tracker.
	if out := run("qc-track", "-in", queries, "-mismatch", crawl); !strings.Contains(out, "stability\tmismatch") {
		t.Errorf("track output unexpected: %.80s", out)
	}

	// One simulation mode (tiny scale keeps this quick).
	if out := run("qc-sim", "-mode", "dht", "-scale", "tiny"); !strings.Contains(out, "pastry_mean_hops") {
		t.Errorf("sim output unexpected: %.80s", out)
	}
}
