package querycentric

import (
	"querycentric/internal/analysis"
	"querycentric/internal/core"
	"querycentric/internal/stats"
	"querycentric/internal/terms"
)

// Analysis report types (see internal/analysis).
type (
	DistReport       = analysis.DistReport
	AnnotationReport = analysis.AnnotationReport
	Annotation       = analysis.Annotation
	TermCount        = analysis.TermCount
	Interval         = analysis.Interval
	IntervalConfig   = analysis.IntervalConfig
	SeriesPoint      = analysis.SeriesPoint
	TransientConfig  = analysis.TransientConfig
	TransientPoint   = analysis.TransientPoint
)

// The four iTunes annotations of Figure 4.
const (
	AnnotationSong   = analysis.AnnotationSong
	AnnotationGenre  = analysis.AnnotationGenre
	AnnotationAlbum  = analysis.AnnotationAlbum
	AnnotationArtist = analysis.AnnotationArtist
)

// Object-trace analyses (Figures 1–3 and the ranked file terms).
var (
	Replicas        = analysis.Replicas
	TermPeers       = analysis.TermPeers
	RankedFileTerms = analysis.RankedFileTerms
	TopTerms        = analysis.TopTerms
)

// Annotations computes a Figure 4 distribution for one annotation.
func Annotations(tr *SongTrace, a Annotation) (*AnnotationReport, error) {
	return analysis.Annotations(tr, a)
}

// Temporal analyses (Figures 5–7).
var (
	DefaultIntervalConfig  = analysis.DefaultIntervalConfig
	Intervals              = analysis.Intervals
	StabilitySeries        = analysis.StabilitySeries
	MismatchSeries         = analysis.MismatchSeries
	AllTermsMismatchSeries = analysis.AllTermsMismatchSeries
	DefaultTransientConfig = analysis.DefaultTransientConfig
	Transients             = analysis.Transients
	TransientSummary       = analysis.TransientSummary
)

// Tokenize splits a name or query string with the Gnutella protocol
// tokenization the paper's analyses use.
func Tokenize(s string) []string { return terms.Tokenize(s) }

// Sanitize normalizes a file name as the Figure 2 analysis does
// (lowercase, letters and digits only).
func Sanitize(s string) string { return terms.Sanitize(s) }

// Jaccard returns the Jaccard similarity of two string sets.
func Jaccard(a, b map[string]struct{}) float64 { return stats.Jaccard(a, b) }

// Online popularity tracking — the reusable query-centric engine
// (internal/core): feed a query stream, get per-interval popular sets,
// persistence, transients and stability.
type (
	Tracker        = core.Tracker
	TrackerConfig  = core.TrackerConfig
	IntervalReport = core.IntervalReport
)

// DefaultTrackerConfig matches the paper's 60-minute interval analysis.
func DefaultTrackerConfig() TrackerConfig { return core.DefaultTrackerConfig() }

// NewTracker builds an online popularity tracker; onClose (optional) is
// invoked as each evaluation interval completes.
func NewTracker(cfg TrackerConfig, onClose func(*IntervalReport)) (*Tracker, error) {
	return core.NewTracker(cfg, onClose)
}
