package querycentric

import (
	"querycentric/internal/chord"
	"querycentric/internal/churn"
	"querycentric/internal/gia"
	"querycentric/internal/hybrid"
	"querycentric/internal/overlay"
	"querycentric/internal/pastry"
	"querycentric/internal/rng"
	"querycentric/internal/search"
	"querycentric/internal/synopsis"
)

// Session-churn timelines: the deterministic arrival/departure schedules
// the churn and repair experiments replay (see internal/churn).
type (
	ChurnTimeline       = churn.Timeline
	ChurnEvent          = churn.Event
	ChurnTimelineConfig = churn.TimelineConfig
	ChurnSample         = churn.Sample
)

// Churn timeline constructors.
var (
	GenerateChurnTimeline      = churn.GenerateTimeline
	DefaultChurnTimelineConfig = churn.DefaultTimelineConfig
)

// Overlay graph substrate.
type (
	Graph          = overlay.Graph
	GnutellaConfig = overlay.GnutellaConfig
)

// Overlay constructors and coverage tools.
var (
	NewGnutellaOverlay     = overlay.NewGnutella
	NewErdosRenyiOverlay   = overlay.NewErdosRenyi
	NewBarabasiAlbert      = overlay.NewBarabasiAlbert
	NewRandomRegular       = overlay.NewRandomRegular
	DefaultGnutellaOverlay = overlay.DefaultGnutellaConfig
	CoverageStats          = overlay.CoverageStats
	MeanQueryHops          = overlay.MeanQueryHops
)

// Replica placement and unstructured search.
type (
	Placement    = search.Placement
	SearchResult = search.Result
	SearchEngine = search.Engine
)

// Placement constructors: the uniform model prior evaluations assumed, and
// the power-law placement the paper measured.
var (
	UniformPlacement = search.UniformPlacement
	ZipfPlacement    = search.ZipfPlacement
	NewSearchEngine  = search.NewEngine
)

// Structured overlay (Chord).
type (
	ChordRing  = chord.Ring
	ChordNode  = chord.Node
	ChordStore = chord.Store
)

// Chord constructors and key hashing.
var (
	NewChord      = chord.New
	NewChordStore = chord.NewStore
	HashKey       = chord.HashKey
)

// Structured overlay (Pastry prefix routing), the second DHT baseline.
type (
	PastryMesh = pastry.Mesh
	PastryNode = pastry.Node
)

// NewPastry builds a Pastry mesh of n nodes.
var NewPastry = pastry.New

// Hybrid search (Loo et al.-style flood-then-DHT).
type (
	HybridSystem     = hybrid.System
	HybridConfig     = hybrid.Config
	HybridResult     = hybrid.Result
	HybridComparison = hybrid.Comparison
)

// Hybrid constructors.
var (
	NewHybrid           = hybrid.New
	DefaultHybridConfig = hybrid.DefaultConfig
)

// Gia baseline (capacity-aware unstructured search).
type (
	GiaSystem = gia.System
	GiaConfig = gia.Config
)

// Gia constructors.
var (
	NewGia           = gia.New
	DefaultGiaConfig = gia.DefaultConfig
)

// Adaptive synopsis search (the paper's proposed direction).
type (
	SynopsisNetwork = synopsis.Network
	SynopsisConfig  = synopsis.Config
)

// Synopsis constructors.
var (
	NewSynopsisNetwork    = synopsis.New
	DefaultSynopsisConfig = synopsis.DefaultConfig
)

// RNG is the deterministic random source every simulation entry point
// accepts.
type RNG = rng.Source

// NewRNG returns a deterministic random source for the given seed.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }
