// Command qc-sim runs the search simulations of Section V: TTL coverage,
// the Figure 8 flood-success sweep, the hybrid-vs-DHT comparison, the Gia
// rebuttal and the adaptive-synopsis ablation.
//
// Usage:
//
//	qc-sim -mode fig8     -scale default -seed 42
//	qc-sim -mode coverage -scale default
//	qc-sim -mode hybrid
//	qc-sim -mode gia
//	qc-sim -mode synopsis
//	qc-sim -mode churn-repair -scale tiny
//	qc-sim -mode query-centric -scale tiny -repl-scheme sqrt
//	qc-sim -mode recovery -scale tiny -burst-frac 0.3
//	qc-sim -mode fig8 -metrics            # also write out/RUN_qc-sim_fig8_*.json
//	qc-sim -mode synopsis -snapshot-save out/net.qcsnap        # persist the substrate
//	qc-sim -mode synopsis -snapshot-load out/net.qcsnap -mmap  # zero-copy restore
package main

import (
	"flag"
	"fmt"
	"os"

	qc "querycentric"
	"querycentric/internal/cliflags"
	"querycentric/internal/parallel"
	"querycentric/internal/profiling"
)

func main() {
	var (
		mode         = flag.String("mode", "fig8", "fig8|coverage|hybrid|gia|dht|qrp|churn|churn-repair|recovery|saturation|walk|replication|shortcuts|query-centric|synopsis|faults")
		scaleName    = cliflags.AddScale(flag.CommandLine, "default")
		seed         = cliflags.AddSeed(flag.CommandLine)
		deadFrac     = flag.Float64("dead", 0, "fraction of peers offline in -mode faults (churn liveness mask)")
		workers      = cliflags.AddWorkers(flag.CommandLine)
		pingInterval = flag.Int64("ping-interval", 0, "seconds between keepalive rounds in -mode churn-repair/recovery (0 = default)")
		pingTimeout  = flag.Int("ping-timeout", 0, "silent rounds before a neighbor is declared dead in -mode churn-repair/recovery (0 = default)")
		burstTime    = flag.Int64("burst-time", 0, "seconds into the run the correlated crash fires in -mode recovery (0 = default)")
		burstFrac    = flag.Float64("burst-frac", -1, "fraction of the population crashing in -mode recovery (-1 = default 0.3)")
		politeFrac   = flag.Float64("polite", -1, "fraction of departures announced with a Bye in -mode churn-repair (-1 = default)")
		queueDepth   = flag.Int("queue-depth", 16, "per-peer ingress queue bound in -mode saturation (messages)")
		serviceCost  = flag.Int("service-cost", 4000, "per-message service time in -mode saturation (simulated ms)")
		shedPolicy   = flag.String("shed-policy", "all", "saturation arms: all, or one of unbounded|drop-tail|red|ttl (run against the unbounded baseline)")
		adaptFlags   = cliflags.AddAdaptive(flag.CommandLine)
		profiles     = cliflags.AddProfiles(flag.CommandLine)
		obsFlags     = cliflags.AddObs(flag.CommandLine, "qc-sim")
		snapFlags    = cliflags.AddSnapshot(flag.CommandLine)
	)
	flag.Parse()
	scale, err := qc.ParseScale(*scaleName)
	if err != nil {
		fail(err)
	}
	if err := cliflags.CheckWorkers(*workers); err != nil {
		fail(err)
	}
	if err := cliflags.CheckFrac("-dead", *deadFrac); err != nil {
		fail(err)
	}
	if *politeFrac >= 0 {
		if err := cliflags.CheckFrac("-polite", *politeFrac); err != nil {
			fail(err)
		}
	}
	if err := cliflags.CheckPositive("-queue-depth", *queueDepth); err != nil {
		fail(err)
	}
	if err := cliflags.CheckPositive("-service-cost", *serviceCost); err != nil {
		fail(err)
	}
	if err := cliflags.CheckOneOf("-shed-policy", *shedPolicy,
		"all", "unbounded", "drop-tail", "red", "ttl"); err != nil {
		fail(err)
	}
	if err := adaptFlags.Check(); err != nil {
		fail(err)
	}
	if err := snapFlags.Check(); err != nil {
		fail(err)
	}
	// Snapshots persist the calibrated Gnutella population built by
	// Env.ObjectTrace; the overlay-simulation modes construct their own
	// (differently seeded) networks and would silently ignore the flags.
	if (snapFlags.Save != "" || snapFlags.Load != "") && *mode != "synopsis" {
		fail(fmt.Errorf("-snapshot-save/-snapshot-load only apply to modes built on the crawled Gnutella population (synopsis); -mode %s builds its own network", *mode))
	}
	finishProfiles, err := profiling.Start(profiles.CPU, profiles.Mem)
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := finishProfiles(); err != nil {
			fail(err)
		}
	}()
	env := qc.NewEnv(scale, *seed)
	env.Workers = *workers
	env.SnapshotSave, env.SnapshotLoad = snapFlags.Save, snapFlags.Load
	env.SnapshotMmap, env.SnapshotShardSize = snapFlags.Mmap, snapFlags.ShardSize
	env.Obs, env.FloodTraces = obsFlags.Setup()
	if env.Obs != nil {
		parallel.Instrument(env.Obs)
	}
	stopPhase := obsFlags.Registry().StartPhase("sim/" + *mode)
	switch *mode {
	case "coverage":
		c, err := qc.TTLCoverage(env)
		if err != nil {
			fail(err)
		}
		fmt.Printf("# %d nodes, mean query hops %.2f (paper: 2.47)\n", c.Nodes, c.MeanHops)
		writeTable(c)
	case "fig8":
		f8, err := qc.Fig8(env)
		if err != nil {
			fail(err)
		}
		fmt.Printf("# %d nodes; zipf mean replicas %.2f\n", f8.Nodes, f8.ZipfMean)
		writeTable(f8)
		fmt.Fprintf(os.Stderr, "fig8: zipf@TTL3=%.3f vs uniform-39@TTL3=%.3f\n",
			f8.ZipfAtTTL3, f8.Uni39AtTTL3)
	case "hybrid":
		h, err := qc.HybridVsDHT(env)
		if err != nil {
			fail(err)
		}
		writeTable(h)
	case "gia":
		g, err := qc.GiaComparison(env)
		if err != nil {
			fail(err)
		}
		writeTable(g)
	case "qrp":
		q, err := qc.QRPEffect(env)
		if err != nil {
			fail(err)
		}
		writeTable(q)
	case "churn":
		c, err := qc.ChurnComparison(env)
		if err != nil {
			fail(err)
		}
		fmt.Printf("# %d nodes, mean_online %.3f, uniform_success %.3f, zipf_success %.3f\n",
			c.Nodes, c.MeanOnline, c.UniformSuccess, c.ZipfSuccess)
		writeTable(c)
	case "churn-repair":
		cfg := qc.DefaultChurnRepairConfig(*seed)
		if *pingInterval > 0 {
			cfg.Repair.PingInterval = *pingInterval
		}
		if *pingTimeout > 0 {
			cfg.Repair.PingTimeout = *pingTimeout
		}
		if *politeFrac >= 0 {
			cfg.Timeline.PoliteFrac = *politeFrac
		}
		c, err := qc.ChurnRepairWith(env, cfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("# churn repair: %d peers, %d churn events, TTL %d\n", c.Peers, c.Events, c.TTL)
		fmt.Printf("# static_success\t%.4f\n", c.StaticSuccess)
		writeTable(c)
		fmt.Printf("norepair_mean\t%.4f\nrepair_mean\t%.4f\nrecovered_frac\t%.3f\n",
			c.NoRepairMean, c.RepairMean, c.RecoveredFrac)
		st := c.RepairStats
		fmt.Fprintf(os.Stderr,
			"churn-repair: detected %d failures, %d byes, repaired %d/%d dials (pings %d, lost %d)\n",
			st.FailuresDetected, st.ByesReceived, st.RepairSuccesses, st.RepairAttempts,
			st.PingsSent, st.PingsLost)
	case "recovery":
		cfg := qc.DefaultRecoveryConfig(*seed)
		if *pingInterval > 0 {
			cfg.Repair.PingInterval = *pingInterval
		}
		if *pingTimeout > 0 {
			cfg.Repair.PingTimeout = *pingTimeout
		}
		if *burstTime > 0 {
			cfg.BurstTime = *burstTime
		}
		if *burstFrac >= 0 {
			if err := cliflags.CheckFrac("-burst-frac", *burstFrac); err != nil {
				fail(err)
			}
			cfg.BurstFrac = *burstFrac
		}
		env.Windows = obsFlags.Windows()
		r, err := qc.RecoveryWith(env, cfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("# recovery: %d peers, %.0f%% crash at t=%d, TTL %d\n",
			r.Peers, 100*r.BurstFrac, r.BurstTime, r.TTL)
		writeTable(r)
		fmt.Printf("pre_burst_success\t%.4f\nrecovery_time_s\t%d\nno_repair_recovery_time_s\t%d\n",
			r.PreBurstSuccess, r.RecoveryTime, r.NoRepairRecoveryTime)
		st := r.RepairStats
		fmt.Fprintf(os.Stderr,
			"recovery: detected %d failures, repaired %d/%d dials, %d hints screened\n",
			st.FailuresDetected, st.RepairSuccesses, st.RepairAttempts, st.HostRejected)
	case "saturation":
		cfg := qc.DefaultSaturationConfig(*seed)
		cfg.Capacity.QueueDepth = *queueDepth
		cfg.Capacity.ServiceCostMs = *serviceCost
		if *shedPolicy != "all" {
			cfg.Arms = []string{"unbounded"}
			if *shedPolicy != "unbounded" {
				cfg.Arms = append(cfg.Arms, *shedPolicy)
			}
		}
		env.Windows = obsFlags.Windows()
		r, err := qc.SaturationWith(env, cfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("# saturation: %d peers, queue depth %d, TTL %d\n",
			r.Peers, r.QueueDepth, r.TTL)
		writeTable(r)
		for _, arm := range r.Arms {
			if p := r.Peak(arm.Arm); p != nil {
				fmt.Printf("# peak\t%s\t%.4f\t%.1f\n", arm.Arm, p.FlashSuccess, p.MsgPerQuery)
			}
		}
	case "walk":
		w, err := qc.WalkVsFlood(env)
		if err != nil {
			fail(err)
		}
		fmt.Printf("# %d nodes\n", w.Nodes)
		writeTable(w)
	case "replication":
		r, err := qc.ReplicationStrategies(env)
		if err != nil {
			fail(err)
		}
		fmt.Printf("# %d nodes, replica budget %d\n", r.Nodes, r.Budget)
		writeTable(r)
	case "shortcuts":
		s, err := qc.ShortcutsExperiment(env)
		if err != nil {
			fail(err)
		}
		writeTable(s)
	case "dht":
		d, err := qc.DHTRouting(env)
		if err != nil {
			fail(err)
		}
		writeTable(d)
	case "faults":
		f, err := qc.FaultSweepWith(env, qc.FaultSweepConfig{DeadFrac: *deadFrac})
		if err != nil {
			fail(err)
		}
		fmt.Printf("# fault sweep: %d peers, dead_frac %.2f, %d attempts/peer\n",
			f.Peers, f.DeadFrac, f.MaxAttempts)
		writeTable(f)
	case "query-centric":
		cfg := qc.QueryCentricConfig{
			AdaptInterval:   adaptFlags.Interval,
			RewireBudget:    adaptFlags.RewireBudget,
			ReplicateBudget: adaptFlags.ReplicateBudget,
			ReplScheme:      qc.ReplScheme(adaptFlags.Scheme),
		}
		r, err := qc.QueryCentricWith(env, cfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("# query-centric: %d peers, %d objects, %d warmup + %d measured queries/arm\n",
			r.Peers, r.Objects, r.Warmup, r.Queries)
		writeTable(r)
		fmt.Fprintf(os.Stderr, "query-centric: adaptive_gain=%.2f over static flooding\n", r.AdaptiveGain)
	case "synopsis":
		s, err := qc.SynopsisAblation(env)
		if err != nil {
			fail(err)
		}
		writeTable(s)
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}
	stopPhase()
	if path, err := obsFlags.WriteManifest(*mode, scale.String(), *seed, *workers); err != nil {
		fail(err)
	} else if path != "" {
		fmt.Fprintf(os.Stderr, "qc-sim: wrote %s\n", path)
	}
}

func writeTable(r qc.Result) {
	if err := qc.WriteResultTable(os.Stdout, r); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "qc-sim:", err)
	os.Exit(1)
}
