// Command qc-sim runs the search simulations of Section V: TTL coverage,
// the Figure 8 flood-success sweep, the hybrid-vs-DHT comparison, the Gia
// rebuttal and the adaptive-synopsis ablation.
//
// Usage:
//
//	qc-sim -mode fig8     -scale default -seed 42
//	qc-sim -mode coverage -scale default
//	qc-sim -mode hybrid
//	qc-sim -mode gia
//	qc-sim -mode synopsis
//	qc-sim -mode churn-repair -scale tiny
package main

import (
	"flag"
	"fmt"
	"os"

	qc "querycentric"
	"querycentric/internal/profiling"
)

func main() {
	var (
		mode         = flag.String("mode", "fig8", "fig8|coverage|hybrid|gia|dht|qrp|churn|churn-repair|walk|replication|synopsis|faults")
		scaleName    = flag.String("scale", "default", "tiny|small|default|full")
		seed         = flag.Uint64("seed", 42, "root random seed")
		deadFrac     = flag.Float64("dead", 0, "fraction of peers offline in -mode faults (churn liveness mask)")
		workers      = flag.Int("workers", 0, "trial worker pool size (0 = GOMAXPROCS); results are identical for every value")
		pingInterval = flag.Int64("ping-interval", 0, "seconds between keepalive rounds in -mode churn-repair (0 = default)")
		pingTimeout  = flag.Int("ping-timeout", 0, "silent rounds before a neighbor is declared dead in -mode churn-repair (0 = default)")
		politeFrac   = flag.Float64("polite", -1, "fraction of departures announced with a Bye in -mode churn-repair (-1 = default)")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()
	scale, err := qc.ParseScale(*scaleName)
	if err != nil {
		fail(err)
	}
	if *workers < 0 {
		fail(fmt.Errorf("-workers must be >= 1, or 0 for GOMAXPROCS; got %d", *workers))
	}
	if *deadFrac < 0 || *deadFrac > 1 {
		fail(fmt.Errorf("-dead must be in [0,1], got %g", *deadFrac))
	}
	finishProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := finishProfiles(); err != nil {
			fail(err)
		}
	}()
	env := qc.NewEnv(scale, *seed)
	env.Workers = *workers
	switch *mode {
	case "coverage":
		c, err := qc.TTLCoverage(env)
		if err != nil {
			fail(err)
		}
		fmt.Printf("# %d nodes, mean query hops %.2f (paper: 2.47)\n", c.Nodes, c.MeanHops)
		fmt.Println("# ttl\tfraction_reached")
		for i, f := range c.Fractions {
			fmt.Printf("%d\t%.5f\n", i+1, f)
		}
	case "fig8":
		f8, err := qc.Fig8(env)
		if err != nil {
			fail(err)
		}
		fmt.Printf("# %d nodes; zipf mean replicas %.2f\n", f8.Nodes, f8.ZipfMean)
		fmt.Print("# ttl")
		for _, c := range f8.Curves {
			fmt.Printf("\t%s", c.Label)
		}
		fmt.Println()
		for ttl := 1; ttl <= len(f8.Curves[0].Success); ttl++ {
			fmt.Printf("%d", ttl)
			for _, c := range f8.Curves {
				fmt.Printf("\t%.4f", c.Success[ttl-1])
			}
			fmt.Println()
		}
		fmt.Fprintf(os.Stderr, "fig8: zipf@TTL3=%.3f vs uniform-39@TTL3=%.3f\n",
			f8.ZipfAtTTL3, f8.Uni39AtTTL3)
	case "hybrid":
		h, err := qc.HybridVsDHT(env)
		if err != nil {
			fail(err)
		}
		c := h.Comparison
		fmt.Printf("nodes\t%d\n", h.Nodes)
		fmt.Printf("hybrid_success\t%.3f\nhybrid_mean_cost\t%.1f\n", c.HybridSuccess, c.HybridMeanCost)
		fmt.Printf("dht_success\t%.3f\ndht_mean_cost\t%.1f\n", c.DHTSuccess, c.DHTMeanCost)
		fmt.Printf("dht_fallback_frac\t%.3f\n", c.DHTFallbackFrac)
	case "gia":
		g, err := qc.GiaComparison(env)
		if err != nil {
			fail(err)
		}
		fmt.Printf("nodes\t%d\nuniform_0.5pct_success\t%.3f\nzipf_success\t%.3f\n",
			g.Nodes, g.UniformSuccess, g.ZipfSuccess)
	case "qrp":
		q, err := qc.QRPEffect(env)
		if err != nil {
			fail(err)
		}
		fmt.Printf("peers\t%d\nqueries\t%d\n", q.Peers, q.Queries)
		fmt.Printf("plain_success\t%.3f\nplain_messages\t%d\n", q.PlainSuccess, q.PlainMessages)
		fmt.Printf("qrp_success\t%.3f\nqrp_messages\t%d\nmessage_savings\t%.1f%%\n",
			q.QRPSuccess, q.QRPMessages, 100*q.MessageSavings)
	case "churn":
		c, err := qc.ChurnComparison(env)
		if err != nil {
			fail(err)
		}
		fmt.Printf("nodes\t%d\nmean_online\t%.3f\n", c.Nodes, c.MeanOnline)
		fmt.Printf("uniform_success\t%.3f\nzipf_success\t%.3f\n", c.UniformSuccess, c.ZipfSuccess)
	case "churn-repair":
		cfg := qc.DefaultChurnRepairConfig(*seed)
		if *pingInterval > 0 {
			cfg.Repair.PingInterval = *pingInterval
		}
		if *pingTimeout > 0 {
			cfg.Repair.PingTimeout = *pingTimeout
		}
		if *politeFrac >= 0 {
			cfg.Timeline.PoliteFrac = *politeFrac
		}
		c, err := qc.ChurnRepairWith(env, cfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("# churn repair: %d peers, %d churn events, TTL %d\n", c.Peers, c.Events, c.TTL)
		fmt.Printf("# static_success\t%.4f\n", c.StaticSuccess)
		fmt.Println("# time\tonline\tdeg_norepair\tsucc_norepair\tdeg_repair\tsucc_repair")
		for i := range c.NoRepair {
			nr, rp := c.NoRepair[i], c.Repair[i]
			fmt.Printf("%d\t%.3f\t%.2f\t%.4f\t%.2f\t%.4f\n",
				nr.Time, nr.OnlineFrac, nr.MeanDegree, nr.Success, rp.MeanDegree, rp.Success)
		}
		fmt.Printf("norepair_mean\t%.4f\nrepair_mean\t%.4f\nrecovered_frac\t%.3f\n",
			c.NoRepairMean, c.RepairMean, c.RecoveredFrac)
		st := c.RepairStats
		fmt.Fprintf(os.Stderr,
			"churn-repair: detected %d failures, %d byes, repaired %d/%d dials (pings %d, lost %d)\n",
			st.FailuresDetected, st.ByesReceived, st.RepairSuccesses, st.RepairAttempts,
			st.PingsSent, st.PingsLost)
	case "walk":
		w, err := qc.WalkVsFlood(env)
		if err != nil {
			fail(err)
		}
		fmt.Printf("nodes\t%d\n", w.Nodes)
		fmt.Printf("flood\tsuccess=%.3f\tmsgs=%.0f\n", w.FloodSuccess, w.FloodMessages)
		fmt.Printf("walk\tsuccess=%.3f\tmsgs=%.0f\n", w.WalkSuccess, w.WalkMessages)
		fmt.Printf("ring\tsuccess=%.3f\tmsgs=%.0f\n", w.RingSuccess, w.RingMessages)
	case "replication":
		r, err := qc.ReplicationStrategies(env)
		if err != nil {
			fail(err)
		}
		fmt.Printf("nodes\t%d\nbudget\t%d\n", r.Nodes, r.Budget)
		for _, row := range r.Rows {
			fmt.Printf("%s/%s\t%.3f\n", row.Strategy, row.Basis, row.Success)
		}
	case "shortcuts":
		s, err := qc.ShortcutsExperiment(env)
		if err != nil {
			fail(err)
		}
		fmt.Printf("nodes\t%d\n", s.Nodes)
		fmt.Printf("warmup_shortcut_hits\t%.3f\nsteady_shortcut_hits\t%.3f\nshifted_shortcut_hits\t%.3f\n",
			s.WarmupHits, s.SteadyHits, s.ShiftedHits)
		fmt.Printf("steady_mean_messages\t%.1f\nflood_mean_messages\t%.1f\n",
			s.SteadyMessages, s.FloodMessages)
	case "dht":
		d, err := qc.DHTRouting(env)
		if err != nil {
			fail(err)
		}
		fmt.Printf("nodes\t%d\nlookups\t%d\nchord_mean_hops\t%.2f\npastry_mean_hops\t%.2f\n",
			d.Nodes, d.Lookups, d.ChordMeanHops, d.PastryMeanHops)
	case "faults":
		f, err := qc.FaultSweepWith(env, qc.FaultSweepConfig{DeadFrac: *deadFrac})
		if err != nil {
			fail(err)
		}
		fmt.Printf("# fault sweep: %d peers, dead_frac %.2f, %d attempts/peer\n",
			f.Peers, f.DeadFrac, f.MaxAttempts)
		fmt.Println("# rate\tcoverage\tpartial\tfailed\trecord_frac\tretried\tflood_success")
		for _, p := range f.Points {
			fmt.Printf("%.3f\t%.4f\t%.4f\t%.4f\t%.4f\t%d\t%.4f\n",
				p.Rate, p.Coverage, p.PartialFrac, p.FailedFrac, p.RecordFrac, p.Retried, p.FloodSuccess)
		}
	case "synopsis":
		s, err := qc.SynopsisAblation(env)
		if err != nil {
			fail(err)
		}
		fmt.Printf("nodes\t%d\nrounds\t%d\nqueries_per_round\t%d\n", s.Nodes, s.Rounds, s.QueriesPerRound)
		fmt.Printf("flood_success\t%.3f\nstatic_synopsis_success\t%.3f\nadaptive_synopsis_success\t%.3f\n",
			s.FloodSuccess, s.StaticSuccess, s.AdaptiveSuccess)
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "qc-sim:", err)
	os.Exit(1)
}
