// Command qc-track runs the online query-centric Tracker over a query
// trace, emitting one line per evaluation interval: query volume, popular
// set size, stability against the previous interval, and any transiently
// popular terms. This is the paper's analysis as a streaming tool — what a
// peer would run over its live query feed.
//
// Usage:
//
//	qc-queries -n 100000 | qc-track
//	qc-track -in queries.trace -interval 3600 -mismatch crawl.trace
//	qc-track -in queries.trace -metrics   # also write out/RUN_qc-track_*.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	qc "querycentric"
	"querycentric/internal/cliflags"
)

func main() {
	var (
		in       = flag.String("in", "", "query trace file (default stdin)")
		interval = flag.Int64("interval", 3600, "evaluation interval in seconds")
		crawl    = flag.String("mismatch", "", "object trace; when given, report per-interval mismatch vs its popular file terms")
		decay    = flag.Float64("decay", 1.0, "history decay per interval in (0,1]")
		obsFlags = cliflags.AddObs(flag.CommandLine, "qc-track")
	)
	flag.Parse()
	if err := cliflags.CheckPositiveSeconds("-interval", *interval); err != nil {
		fail(err)
	}
	if *decay <= 0 || *decay > 1 {
		fail(fmt.Errorf("-decay must be in (0,1], got %g", *decay))
	}
	reg, _ := obsFlags.Setup()

	r := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		r = f
	}
	qt, err := qc.ReadQueryTrace(r)
	if err != nil {
		fail(err)
	}

	var fstar map[string]struct{}
	if *crawl != "" {
		f, err := os.Open(*crawl)
		if err != nil {
			fail(err)
		}
		tr, err := qc.ReadObjectTrace(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		fstar = qc.TopTerms(qc.RankedFileTerms(tr), 500)
	}

	cfg := qc.DefaultTrackerConfig()
	cfg.Interval = *interval
	cfg.HistoryDecay = *decay
	header := "# start\tqueries\tpopular\tstability"
	if fstar != nil {
		header += "\tmismatch"
	}
	header += "\ttransients"
	fmt.Println(header)
	tracker, err := qc.NewTracker(cfg, func(rep *qc.IntervalReport) {
		reg.Counter("track_intervals_total").Inc()
		reg.Counter("track_queries_total").Add(int64(rep.Queries))
		reg.Counter("track_transients_total").Add(int64(len(rep.Transients)))
		line := fmt.Sprintf("%d\t%d\t%d\t%.3f", rep.Start, rep.Queries, len(rep.Popular), rep.Stability)
		if fstar != nil {
			pop := rep.Popular
			inter := 0
			for t := range pop {
				if _, ok := fstar[t]; ok {
					inter++
				}
			}
			union := len(pop) + len(fstar) - inter
			mismatch := 0.0
			if union > 0 {
				mismatch = float64(inter) / float64(union)
			}
			line += fmt.Sprintf("\t%.3f", mismatch)
		}
		line += "\t" + strings.Join(rep.Transients, ",")
		fmt.Println(line)
	})
	if err != nil {
		fail(err)
	}
	for _, rec := range qt.Records {
		if err := tracker.Observe(rec.Time, rec.Query); err != nil {
			fail(err)
		}
	}
	tracker.Flush()
	if path, err := obsFlags.WriteManifest("", "", 0, 1); err != nil {
		fail(err)
	} else if path != "" {
		fmt.Fprintf(os.Stderr, "qc-track: wrote %s\n", path)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "qc-track:", err)
	os.Exit(1)
}
