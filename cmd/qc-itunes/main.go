// Command qc-itunes builds the synthetic iTunes share population (with the
// paper's password/busy/firewall funnel), crawls it over HTTP+DMAP with the
// AppleRecords-style client and writes the observed song trace (the input
// of Figure 4).
//
// Usage:
//
//	qc-itunes -shares 125 -songs 11000 -seed 42 -o itunes.trace
package main

import (
	"flag"
	"fmt"
	"os"

	qc "querycentric"
)

func main() {
	var (
		shares = flag.Int("shares", 125, "number of shares discovered")
		songs  = flag.Int("songs", 11000, "number of distinct songs")
		seed   = flag.Uint64("seed", 42, "root random seed")
		out    = flag.String("o", "", "output trace file (default stdout)")
	)
	flag.Parse()

	tr, stats, err := qc.ITunesCrawl(qc.ITunesCrawlConfig{
		Seed:        *seed,
		Shares:      *shares,
		UniqueSongs: *songs,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "qc-itunes:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "qc-itunes: %s; %d records\n", stats, len(tr.Records))

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qc-itunes:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := tr.Write(w); err != nil {
		fmt.Fprintln(os.Stderr, "qc-itunes:", err)
		os.Exit(1)
	}
}
