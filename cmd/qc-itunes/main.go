// Command qc-itunes builds the synthetic iTunes share population (with the
// paper's password/busy/firewall funnel), crawls it over HTTP+DMAP with the
// AppleRecords-style client and writes the observed song trace (the input
// of Figure 4).
//
// Usage:
//
//	qc-itunes -shares 125 -songs 11000 -seed 42 -o itunes.trace
//	qc-itunes -shares 125 -songs 11000 -metrics   # also write out/RUN_qc-itunes_*.json
package main

import (
	"flag"
	"fmt"
	"os"

	qc "querycentric"
	"querycentric/internal/cliflags"
)

func main() {
	var (
		shares   = flag.Int("shares", 125, "number of shares discovered")
		songs    = flag.Int("songs", 11000, "number of distinct songs")
		seed     = cliflags.AddSeed(flag.CommandLine)
		out      = flag.String("o", "", "output trace file (default stdout)")
		obsFlags = cliflags.AddObs(flag.CommandLine, "qc-itunes")
	)
	flag.Parse()
	if err := cliflags.CheckPositive("-shares", *shares); err != nil {
		fail(err)
	}
	if err := cliflags.CheckPositive("-songs", *songs); err != nil {
		fail(err)
	}
	reg, _ := obsFlags.Setup()

	tr, stats, err := qc.ITunesCrawl(qc.ITunesCrawlConfig{
		Seed:        *seed,
		Shares:      *shares,
		UniqueSongs: *songs,
	})
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "qc-itunes: %s; %d records\n", stats, len(tr.Records))
	reg.Gauge("itunes_shares").Set(int64(*shares))
	reg.Gauge("itunes_songs").Set(int64(*songs))
	reg.Counter("itunes_records_total").Add(int64(len(tr.Records)))
	reg.Counter("itunes_collected_total").Add(int64(stats.Collected))
	reg.Counter("itunes_password_total").Add(int64(stats.Password))
	reg.Counter("itunes_busy_total").Add(int64(stats.Busy))
	reg.Counter("itunes_firewalled_total").Add(int64(stats.Firewalled))

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	if err := tr.Write(w); err != nil {
		fail(err)
	}
	if path, err := obsFlags.WriteManifest("", "", *seed, 1); err != nil {
		fail(err)
	} else if path != "" {
		fmt.Fprintf(os.Stderr, "qc-itunes: wrote %s\n", path)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "qc-itunes:", err)
	os.Exit(1)
}
