// Command qc-figures regenerates every table and figure of the paper in
// one run, writing one data file per figure plus a summary comparing the
// measured headline statistics with the paper's reported values.
//
// Usage:
//
//	qc-figures -scale default -seed 42 -out out/
//	qc-figures -scale tiny -metrics       # also write out/RUN_qc-figures_*.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	qc "querycentric"
	"querycentric/internal/cliflags"
	"querycentric/internal/parallel"
	"querycentric/internal/profiling"
)

func main() {
	var (
		scaleName = cliflags.AddScale(flag.CommandLine, "default")
		seed      = cliflags.AddSeed(flag.CommandLine)
		outDir    = flag.String("out", "out", "output directory")
		workers   = cliflags.AddWorkers(flag.CommandLine)
		profiles  = cliflags.AddProfiles(flag.CommandLine)
		obsFlags  = cliflags.AddObs(flag.CommandLine, "qc-figures")
		snapFlags = cliflags.AddSnapshot(flag.CommandLine)
	)
	flag.Parse()
	scale, err := qc.ParseScale(*scaleName)
	if err != nil {
		fail(err)
	}
	if err := cliflags.CheckWorkers(*workers); err != nil {
		fail(err)
	}
	if err := snapFlags.Check(); err != nil {
		fail(err)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fail(err)
	}
	finishProfiles, err := profiling.Start(profiles.CPU, profiles.Mem)
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := finishProfiles(); err != nil {
			fail(err)
		}
	}()
	env := qc.NewEnv(scale, *seed)
	env.Workers = *workers
	env.SnapshotSave, env.SnapshotLoad = snapFlags.Save, snapFlags.Load
	env.SnapshotMmap, env.SnapshotShardSize = snapFlags.Mmap, snapFlags.ShardSize
	env.Obs, env.FloodTraces = obsFlags.Setup()
	if env.Obs != nil {
		parallel.Instrument(env.Obs)
	}
	sum, err := os.Create(filepath.Join(*outDir, "summary.txt"))
	if err != nil {
		fail(err)
	}
	defer sum.Close()
	note := func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
		fmt.Fprintf(sum, format+"\n", args...)
	}
	note("qc-figures scale=%s seed=%d", scale, *seed)

	// writeTable renders one result as <outDir>/<name>.dat.
	writeTable := func(name string, r qc.Result) {
		f, err := os.Create(filepath.Join(*outDir, name+".dat"))
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := qc.WriteResultTable(f, r); err != nil {
			fail(err)
		}
	}

	// Figures 1-3.
	for _, fig := range []struct {
		name  string
		run   func(*qc.Env) (*qc.DistResult, error)
		paper string
	}{
		{"fig1", qc.Fig1, "paper: 70.5% singleton, 99.5% ≤37 peers"},
		{"fig2", qc.Fig2, "paper: 69.8% singleton, 99.4% ≤37 peers"},
		{"fig3", qc.Fig3, "paper: 71.3% singleton terms, 98.3% ≤37 peers"},
	} {
		r, err := fig.run(env)
		if err != nil {
			fail(err)
		}
		writeTable(fig.name, r)
		note("%s: unique=%d singleton=%.1f%% ≤37peers=%.1f%% zipf_s=%.2f  [%s]",
			fig.name, r.Report.Unique, 100*r.SingletonFrac, 100*r.FracAtMost37,
			r.Report.Fit.S, fig.paper)
	}

	// Figure 4.
	f4, err := qc.Fig4(env)
	if err != nil {
		fail(err)
	}
	writeTable("fig4", f4)
	for _, a := range []qc.Annotation{qc.AnnotationSong, qc.AnnotationGenre, qc.AnnotationAlbum, qc.AnnotationArtist} {
		rep := f4.Reports[a]
		note("fig4-%s: unique=%d singleton=%.1f%% missing=%.1f%%  [paper: songs 64%% singleton; genre missing 8.7%%; album missing 8.1%%; artists 65%% singleton]",
			a, rep.Unique, 100*rep.SingletonFrac, 100*rep.MissingFrac)
	}
	note("fig4 crawl funnel: %s  [paper: 620 discovered, 45 password, 33 busy, 239 readable]", f4.CrawlStats)

	// Figure 5.
	f5, err := qc.Fig5(env)
	if err != nil {
		fail(err)
	}
	writeTable("fig5", f5)
	for _, iv := range qc.Fig5Intervals {
		s := f5.SummaryByInterval[iv]
		note("fig5 interval=%ds: mean=%.2f sd=%.2f max=%.0f  [paper: low mean, significant variance]",
			iv, s.Mean, s.StdDev, s.Max)
	}

	// Figure 6.
	f6, err := qc.Fig6(env)
	if err != nil {
		fail(err)
	}
	writeTable("fig6", f6)
	note("fig6: mean stability after warmup = %.3f  [paper: >0.90]", f6.MeanAfterWarmup)

	// Figure 7.
	f7, err := qc.Fig7(env)
	if err != nil {
		fail(err)
	}
	writeTable("fig7", f7)
	note("fig7: mean popular-vs-F* = %.3f, all-terms-vs-F* = %.3f, rank ρ = %.2f  [paper: <0.20, ~0.05, little correlation]",
		f7.MeanPopular, f7.MeanAllTerms, f7.RankCorrelation)

	// Interval-robustness sweeps (the paper's "consistent across intervals").
	s6, err := qc.Fig6Sweep(env)
	if err != nil {
		fail(err)
	}
	s7, err := qc.Fig7Sweep(env)
	if err != nil {
		fail(err)
	}
	f, err := os.Create(filepath.Join(*outDir, "interval_sweep.dat"))
	if err != nil {
		fail(err)
	}
	fmt.Fprintln(f, "# interval_s\tstability_mean\tmismatch_mean")
	for i := range s6 {
		fmt.Fprintf(f, "%d\t%.4f\t%.4f\n", s6[i].Interval, s6[i].MeanValue, s7[i].MeanValue)
	}
	f.Close()
	for i := range s6 {
		note("interval %ds: stability=%.3f mismatch=%.3f  [paper: consistent across 15–120 min]",
			s6[i].Interval, s6[i].MeanValue, s7[i].MeanValue)
	}

	// §VI rare objects.
	rare, err := qc.RareObjectFraction(env)
	if err != nil {
		fail(err)
	}
	note("rare-objects: %.2f%% of objects on ≥20 peers, mean replicas %.2f  [paper: <4%%, mean ~1.5]",
		100*rare.FracAtLeast20, rare.MeanReplicas)

	// §V coverage table.
	cov, err := qc.TTLCoverage(env)
	if err != nil {
		fail(err)
	}
	writeTable("ttl_coverage", cov)
	note("ttl-coverage (%d nodes): %v, mean hops %.2f  [paper: 0.05%%, ..., 26.25%%, 82.95%%; 2.47 hops]",
		cov.Nodes, cov.Fractions, cov.MeanHops)

	// Figure 8.
	f8, err := qc.Fig8(env)
	if err != nil {
		fail(err)
	}
	writeTable("fig8", f8)
	note("fig8 (%d nodes): zipf@TTL3=%.3f uniform39@TTL3=%.3f zipf-mean=%.2f  [paper: ~5%% vs ~62%%; mean ~1.5]",
		f8.Nodes, f8.ZipfAtTTL3, f8.Uni39AtTTL3, f8.ZipfMean)

	// Hybrid vs DHT.
	h, err := qc.HybridVsDHT(env)
	if err != nil {
		fail(err)
	}
	note("hybrid-vs-dht (%d nodes): hybrid cost %.1f vs dht %.1f at success %.2f/%.2f, fallback %.2f  [paper: hybrid worse than DHT]",
		h.Nodes, h.Comparison.HybridMeanCost, h.Comparison.DHTMeanCost,
		h.Comparison.HybridSuccess, h.Comparison.DHTSuccess, h.Comparison.DHTFallbackFrac)

	// Gia rebuttal.
	g, err := qc.GiaComparison(env)
	if err != nil {
		fail(err)
	}
	note("gia (%d nodes): uniform-0.5%%=%.3f zipf=%.3f  [paper: Gia's uniform evaluation does not transfer]",
		g.Nodes, g.UniformSuccess, g.ZipfSuccess)

	// Synopsis ablation.
	s, err := qc.SynopsisAblation(env)
	if err != nil {
		fail(err)
	}
	note("synopsis (%d nodes): flood=%.3f static=%.3f adaptive=%.3f  [paper §VII: adaptive synopses improve success]",
		s.Nodes, s.FloodSuccess, s.StaticSuccess, s.AdaptiveSuccess)

	// Deployed QRP ablation.
	q, err := qc.QRPEffect(env)
	if err != nil {
		fail(err)
	}
	note("qrp (%d peers): success %.3f→%.3f, messages −%.0f%%  [QRP saves cost but cannot fix the mismatch]",
		q.Peers, q.PlainSuccess, q.QRPSuccess, 100*q.MessageSavings)

	// Churn amplification.
	ch, err := qc.ChurnComparison(env)
	if err != nil {
		fail(err)
	}
	writeTable("churn", ch)
	note("churn (%d nodes, %.0f%% online): uniform=%.3f zipf=%.3f  [churn amplifies the Zipf penalty]",
		ch.Nodes, 100*ch.MeanOnline, ch.UniformSuccess, ch.ZipfSuccess)

	// Mechanism comparison.
	wf, err := qc.WalkVsFlood(env)
	if err != nil {
		fail(err)
	}
	note("mechanisms (%d nodes): flood %.3f@%.0fmsg walk %.3f@%.0fmsg ring %.3f@%.0fmsg  [no mechanism fixes scarcity]",
		wf.Nodes, wf.FloodSuccess, wf.FloodMessages, wf.WalkSuccess, wf.WalkMessages,
		wf.RingSuccess, wf.RingMessages)

	// Replica allocation strategies.
	ra, err := qc.ReplicationStrategies(env)
	if err != nil {
		fail(err)
	}
	for _, row := range ra.Rows {
		note("replication %s/%s: success %.3f  [allocations must follow query popularity]",
			row.Strategy, row.Basis, row.Success)
	}

	// Structured baselines.
	d, err := qc.DHTRouting(env)
	if err != nil {
		fail(err)
	}
	note("dht routing (%d nodes): chord %.2f hops, pastry %.2f hops", d.Nodes, d.ChordMeanHops, d.PastryMeanHops)

	if path, err := obsFlags.WriteManifest("", scale.String(), *seed, *workers); err != nil {
		fail(err)
	} else if path != "" {
		fmt.Fprintf(os.Stderr, "qc-figures: wrote %s\n", path)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "qc-figures:", err)
	os.Exit(1)
}
