// Command qc-queries generates the synthetic one-week Gnutella query trace
// (stable popular core, transient bursts, Zipf tail) — the input of
// Figures 5–7. Passing a crawl trace couples the query vocabulary to the
// observed file terms with the paper's low overlap.
//
// Usage:
//
//	qc-queries -n 250000 -days 7 -crawl crawl.trace -seed 42 -o queries.trace
package main

import (
	"flag"
	"fmt"
	"os"

	qc "querycentric"
)

func main() {
	var (
		n     = flag.Int("n", 250000, "number of queries")
		days  = flag.Int("days", 7, "trace duration in days")
		crawl = flag.String("crawl", "", "object trace whose file terms the workload should (weakly) overlap")
		seed  = flag.Uint64("seed", 42, "root random seed")
		out   = flag.String("o", "", "output trace file (default stdout)")
	)
	flag.Parse()

	cfg := qc.QueryWorkloadConfig{Seed: *seed, Queries: *n, Duration: int64(*days) * 24 * 3600}
	if *crawl != "" {
		f, err := os.Open(*crawl)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qc-queries:", err)
			os.Exit(1)
		}
		tr, err := qc.ReadObjectTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "qc-queries:", err)
			os.Exit(1)
		}
		cfg.FileTerms = qc.RankedFileTermStrings(tr)
	}
	qt, err := qc.QueryWorkload(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qc-queries:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "qc-queries: %d queries over %d seconds\n", len(qt.Records), qt.Duration)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qc-queries:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := qt.Write(w); err != nil {
		fmt.Fprintln(os.Stderr, "qc-queries:", err)
		os.Exit(1)
	}
}
