// Command qc-queries generates the synthetic one-week Gnutella query trace
// (stable popular core, transient bursts, Zipf tail) — the input of
// Figures 5–7. Passing a crawl trace couples the query vocabulary to the
// observed file terms with the paper's low overlap.
//
// Usage:
//
//	qc-queries -n 250000 -days 7 -crawl crawl.trace -seed 42 -o queries.trace
//	qc-queries -n 250000 -metrics   # also write out/RUN_qc-queries_*.json
package main

import (
	"flag"
	"fmt"
	"os"

	qc "querycentric"
	"querycentric/internal/cliflags"
)

func main() {
	var (
		n        = flag.Int("n", 250000, "number of queries")
		days     = flag.Int("days", 7, "trace duration in days")
		crawl    = flag.String("crawl", "", "object trace whose file terms the workload should (weakly) overlap")
		seed     = cliflags.AddSeed(flag.CommandLine)
		out      = flag.String("o", "", "output trace file (default stdout)")
		obsFlags = cliflags.AddObs(flag.CommandLine, "qc-queries")
	)
	flag.Parse()
	if err := cliflags.CheckPositive("-n", *n); err != nil {
		fail(err)
	}
	if err := cliflags.CheckPositive("-days", *days); err != nil {
		fail(err)
	}
	reg, _ := obsFlags.Setup()

	cfg := qc.QueryWorkloadConfig{Seed: *seed, Queries: *n, Duration: int64(*days) * 24 * 3600}
	if *crawl != "" {
		f, err := os.Open(*crawl)
		if err != nil {
			fail(err)
		}
		tr, err := qc.ReadObjectTrace(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		cfg.FileTerms = qc.RankedFileTermStrings(tr)
		reg.Gauge("queries_file_terms").Set(int64(len(cfg.FileTerms)))
	}
	qt, err := qc.QueryWorkload(cfg)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "qc-queries: %d queries over %d seconds\n", len(qt.Records), qt.Duration)
	reg.Counter("queries_generated_total").Add(int64(len(qt.Records)))
	reg.Gauge("queries_duration_seconds").Set(qt.Duration)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	if err := qt.Write(w); err != nil {
		fail(err)
	}
	if path, err := obsFlags.WriteManifest("", "", *seed, 1); err != nil {
		fail(err)
	} else if path != "" {
		fmt.Fprintf(os.Stderr, "qc-queries: wrote %s\n", path)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "qc-queries:", err)
	os.Exit(1)
}
