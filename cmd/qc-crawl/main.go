// Command qc-crawl builds a calibrated synthetic Gnutella population,
// crawls it with the Cruiser-style wire crawler and writes the observed
// object trace (the input of Figures 1–3 and 7).
//
// Substrate faults (dial timeouts, handshake stalls, mid-stream resets,
// truncated writes, peer departures, flood message loss) can be injected
// to measure how a lossy network biases the trace; -fault-sweep runs the
// full degradation experiment and emits a .dat table of crawl coverage
// and flood success vs. fault rate.
//
// Usage:
//
//	qc-crawl -peers 1000 -objects 81000 -seed 42 -o crawl.trace
//	qc-crawl -peers 1000 -objects 81000 -fault-dial 0.2 -fault-reset 0.1 -attempts 4
//	qc-crawl -fault-sweep -scale small -o faults.dat
//	qc-crawl -peers 200 -objects 4000 -metrics   # also write out/RUN_qc-crawl_*.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	qc "querycentric"
	"querycentric/internal/cliflags"
	"querycentric/internal/parallel"
	"querycentric/internal/profiling"
)

func main() {
	var (
		peers      = flag.Int("peers", 1000, "number of peers in the network")
		objects    = flag.Int("objects", 81000, "number of distinct objects")
		firewalled = flag.Float64("firewalled", 0.1, "fraction of peers refusing crawler connections")
		seed       = cliflags.AddSeed(flag.CommandLine)
		out        = flag.String("o", "", "output file (default stdout)")

		// Injected substrate faults (all default to zero: no faults).
		faultDial      = flag.Float64("fault-dial", 0, "probability a dial attempt times out")
		faultHandshake = flag.Float64("fault-handshake", 0, "probability the servent stalls the handshake")
		faultReset     = flag.Float64("fault-reset", 0, "probability a connection is reset mid-stream")
		faultTruncate  = flag.Float64("fault-truncate", 0, "probability the response stream is truncated mid-descriptor")
		faultDepart    = flag.Float64("fault-depart", 0, "per-descriptor probability the peer departs mid-session")
		faultLoss      = flag.Float64("fault-loss", 0, "per-hop probability a flooded descriptor is lost")
		faultSeed      = flag.Uint64("fault-seed", 0, "fault schedule seed (default: root seed)")
		attempts       = flag.Int("attempts", 0, "per-peer crawl attempt budget (0 = crawler default)")

		// Fault-sweep experiment mode.
		sweep      = flag.Bool("fault-sweep", false, "run the fault-rate sweep experiment instead of a single crawl")
		sweepRates = flag.String("fault-rates", "", "comma-separated fault rates to sweep (default 0,0.05,0.1,0.2,0.3,0.4,0.5)")
		sweepDead  = flag.Float64("dead", 0, "fraction of peers offline (churn liveness mask) at non-zero sweep rates")
		scaleName  = cliflags.AddScale(flag.CommandLine, "default")
		workers    = cliflags.AddWorkers(flag.CommandLine)
		profiles   = cliflags.AddProfiles(flag.CommandLine)
		obsFlags   = cliflags.AddObs(flag.CommandLine, "qc-crawl")
		snapFlags  = cliflags.AddSnapshot(flag.CommandLine)
	)
	flag.Parse()

	if err := cliflags.CheckWorkers(*workers); err != nil {
		fail(err)
	}
	if err := snapFlags.Check(); err != nil {
		fail(err)
	}
	if err := cliflags.CheckPositive("-peers", *peers); err != nil {
		fail(err)
	}
	if err := cliflags.CheckPositive("-objects", *objects); err != nil {
		fail(err)
	}
	if err := cliflags.CheckNonNegative("-attempts", *attempts); err != nil {
		fail(err)
	}
	for _, fr := range []struct {
		name string
		v    float64
	}{
		{"-firewalled", *firewalled},
		{"-fault-dial", *faultDial},
		{"-fault-handshake", *faultHandshake},
		{"-fault-reset", *faultReset},
		{"-fault-truncate", *faultTruncate},
		{"-fault-depart", *faultDepart},
		{"-fault-loss", *faultLoss},
		{"-dead", *sweepDead},
	} {
		if err := cliflags.CheckFrac(fr.name, fr.v); err != nil {
			fail(err)
		}
	}

	finishProfiles, err := profiling.Start(profiles.CPU, profiles.Mem)
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := finishProfiles(); err != nil {
			fail(err)
		}
	}()

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}

	if *sweep {
		runSweep(w, *scaleName, *seed, *sweepRates, *sweepDead, *attempts, *workers, obsFlags)
		return
	}

	reg, traces := obsFlags.Setup()
	if reg != nil {
		parallel.Instrument(reg)
	}
	fseed := *faultSeed
	if fseed == 0 {
		fseed = *seed
	}
	tr, stats, err := qc.GnutellaCrawl(qc.GnutellaCrawlConfig{
		Seed:           *seed,
		Peers:          *peers,
		UniqueObjects:  *objects,
		FirewalledFrac: *firewalled,
		Faults: qc.FaultConfig{
			Seed:           fseed,
			DialTimeout:    *faultDial,
			HandshakeStall: *faultHandshake,
			ConnReset:      *faultReset,
			TruncateWrite:  *faultTruncate,
			PeerDepart:     *faultDepart,
			MessageLoss:    *faultLoss,
		},
		MaxAttempts:       *attempts,
		Obs:               reg,
		FloodTraces:       traces,
		SnapshotSave:      snapFlags.Save,
		SnapshotLoad:      snapFlags.Load,
		SnapshotMmap:      snapFlags.Mmap,
		SnapshotShardSize: snapFlags.ShardSize,
	})
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "qc-crawl: %s; %d records\n", stats, len(tr.Records))
	if err := tr.Write(w); err != nil {
		fail(err)
	}
	writeManifest(obsFlags, "", "", *seed, *workers)
}

// runSweep runs the fault-rate degradation experiment and writes the .dat
// table (rate, coverage, partial, failed, record fraction, retries, flood
// success).
func runSweep(w io.Writer, scaleName string, seed uint64, ratesCSV string, dead float64, attempts, workers int, obsFlags *cliflags.ObsFlags) {
	scale, err := qc.ParseScale(scaleName)
	if err != nil {
		fail(err)
	}
	var rates []float64
	if ratesCSV != "" {
		for _, part := range strings.Split(ratesCSV, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				fail(fmt.Errorf("bad fault rate %q: %w", part, err))
			}
			if err := cliflags.CheckFrac("-fault-rates", r); err != nil {
				fail(err)
			}
			rates = append(rates, r)
		}
	}
	env := qc.NewEnv(scale, seed)
	env.Workers = workers
	env.Obs, env.FloodTraces = obsFlags.Setup()
	if env.Obs != nil {
		parallel.Instrument(env.Obs)
	}
	res, err := qc.FaultSweepWith(env, qc.FaultSweepConfig{
		Rates:       rates,
		DeadFrac:    dead,
		MaxAttempts: attempts,
	})
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(w, "# fault sweep: %d peers, dead_frac %.2f, %d attempts/peer\n",
		res.Peers, res.DeadFrac, res.MaxAttempts)
	if err := qc.WriteResultTable(w, res); err != nil {
		fail(err)
	}
	writeManifest(obsFlags, "fault-sweep", scale.String(), seed, workers)
}

func writeManifest(obsFlags *cliflags.ObsFlags, mode, scale string, seed uint64, workers int) {
	if path, err := obsFlags.WriteManifest(mode, scale, seed, workers); err != nil {
		fail(err)
	} else if path != "" {
		fmt.Fprintf(os.Stderr, "qc-crawl: wrote %s\n", path)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "qc-crawl:", err)
	os.Exit(1)
}
