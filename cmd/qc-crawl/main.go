// Command qc-crawl builds a calibrated synthetic Gnutella population,
// crawls it with the Cruiser-style wire crawler and writes the observed
// object trace (the input of Figures 1–3 and 7).
//
// Usage:
//
//	qc-crawl -peers 1000 -objects 81000 -seed 42 -o crawl.trace
package main

import (
	"flag"
	"fmt"
	"os"

	qc "querycentric"
)

func main() {
	var (
		peers      = flag.Int("peers", 1000, "number of peers in the network")
		objects    = flag.Int("objects", 81000, "number of distinct objects")
		firewalled = flag.Float64("firewalled", 0.1, "fraction of peers refusing crawler connections")
		seed       = flag.Uint64("seed", 42, "root random seed")
		out        = flag.String("o", "", "output trace file (default stdout)")
	)
	flag.Parse()

	tr, stats, err := qc.GnutellaCrawl(qc.GnutellaCrawlConfig{
		Seed:           *seed,
		Peers:          *peers,
		UniqueObjects:  *objects,
		FirewalledFrac: *firewalled,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "qc-crawl:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "qc-crawl: %s; %d records\n", stats, len(tr.Records))

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qc-crawl:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := tr.Write(w); err != nil {
		fmt.Fprintln(os.Stderr, "qc-crawl:", err)
		os.Exit(1)
	}
}
