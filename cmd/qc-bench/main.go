// Command qc-bench measures the flood hot path and the parallel trial
// engine and writes a machine-readable report (out/BENCH_flood.json):
//
//   - ns/op, B/op and allocs/op for one TTL-4 flood on a populated
//     network, for both the optimised FloodCtx and a map-based baseline
//     that replays the pre-optimisation algorithm (fresh seen map,
//     per-envelope decode, per-forwarder encode);
//   - wall-clock for the Figure 8 sweep at 1, 2, 4 and 8 workers, with
//     speedups relative to 1 worker;
//   - an `index` section: catalog/network/index build times, dictionary
//     size and heap-in-use around construction, and (unless
//     -index-legacy=false) the legacy string-keyed index built from the
//     same catalog with a match micro-benchmark down both paths.
//
// The baseline's equivalence to the historical implementation is pinned
// by TestFloodMatchesNaiveReference in internal/gnet, and the two index
// paths' by TestFloodMatchesLegacyStringIndex.
//
// With -index-only the flood and Fig8 sections are skipped — this is the
// paper-scale construction smoke (`make scalefull-smoke`), which fails if
// construction exceeds -budget. Adding -snapshot-file appends a `snapshot`
// section: the built network is saved to the given file and loaded back,
// timing both legs and verifying the restored index checksum; in
// -index-only mode the smoke additionally fails unless the load completes
// in at most a tenth of the build time. The snapshot section also times
// the memory-mapped zero-copy loader against the copying one (in
// -index-only mode the mapped load must win), and with -sharded it runs a
// shard-and-spill build from the identical configuration and fails unless
// the resulting file is byte-identical to the in-heap save.
//
// With -sharded-only the in-heap build is skipped entirely: the
// population is built straight into -snapshot-file with the shard-and-spill
// pipeline, loaded back through the mapping, flood-probed, and gated on
// -budget and -rss-ceiling-mb (process peak RSS, VmHWM). This is the
// million-peer smoke (`make scale1m-smoke`) — the whole substrate never
// fits on the heap, only one shard plus the dictionary does.
//
// With -obs-overhead the command instead runs the observability-plane
// overhead smoke: the flood micro-benchmark once with the metrics plane
// detached and once with a live registry attached, failing (exit 1) if the
// instrumented flood is more than 10% slower than both the detached
// same-run baseline and the flood_ctx row recorded in -o (when present).
//
// With -capacity-overhead the command runs the analogous smoke for the
// capacity plane: floods with no plane versus an attached-but-idle plane
// (unbounded policy, nothing shed), failing (exit 1) if the idle plane
// costs more than 5% against the same baselines.
//
// With -events the command instead measures the discrete-event engine
// (internal/events): pure queue-dispatch micro-benchmarks plus a full
// steady-state scenario at -scale, written as BENCH_events.json.
//
// Usage:
//
//	qc-bench -o out/BENCH_flood.json -scale tiny
//	qc-bench -index-only -index-scale full -index-legacy=false -budget 15m
//	qc-bench -index-only -snapshot-file out/net.qcsnap -o out/BENCH_snapshot.json
//	qc-bench -index-only -sharded -shard-size 8192 -snapshot-file out/net.qcsnap
//	qc-bench -sharded-only -index-scale 1m -shard-size 65536 -snapshot-file out/net_1m.qcsnap \
//	         -budget 40m -rss-ceiling-mb 4096 -o out/BENCH_index_1m.json
//	qc-bench -obs-overhead -peers 500 -benchtime 100ms
//	qc-bench -capacity-overhead -peers 500 -benchtime 100ms
//	qc-bench -events -o out/BENCH_events.json -scale small
package main

import (
	"bufio"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	qc "querycentric"
	"querycentric/internal/capacity"
	"querycentric/internal/catalog"
	"querycentric/internal/cliflags"
	"querycentric/internal/events"
	"querycentric/internal/experiments"
	"querycentric/internal/gmsg"
	"querycentric/internal/gnet"
	"querycentric/internal/obs"
	"querycentric/internal/rng"
	"querycentric/internal/snapshot"
)

// FloodBench is one micro-benchmark row.
type FloodBench struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Fig8Point is one worker-count timing of the Figure 8 sweep.
type Fig8Point struct {
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	Speedup float64 `json:"speedup_vs_1_worker"`
}

// IndexBench records network-construction cost and the term-index memory
// footprint at one scale: wall-clock per phase, runtime.MemStats heap-in-use
// around each phase, and (optionally) the retained string-keyed index built
// from the same catalog for an honest before/after comparison.
type IndexBench struct {
	Scale      string `json:"scale"`
	Peers      int    `json:"peers"`
	Objects    int    `json:"objects"`
	Placements int    `json:"placements"`

	CatalogSeconds    float64 `json:"catalog_seconds"`
	NetworkSeconds    float64 `json:"network_seconds"` // includes dictionary build
	IndexBuildSeconds float64 `json:"index_build_seconds"`

	DictTerms     int    `json:"dict_terms"`
	DictHeapBytes uint64 `json:"dict_heap_bytes"`
	IndexTerms    int    `json:"index_terms"`
	Postings      int    `json:"postings"`

	// Structural estimates (IndexStats) and measured process heap-in-use
	// (runtime.MemStats.HeapAlloc after GC) around each phase.
	InternedHeapBytes   uint64 `json:"interned_index_heap_bytes"`
	HeapBeforeBytes     uint64 `json:"heap_before_bytes"`
	HeapAfterBuildBytes uint64 `json:"heap_after_build_bytes"`
	HeapAfterIndexBytes uint64 `json:"heap_after_index_bytes"`

	// Legacy comparison (omitted when -index-legacy=false).
	LegacyHeapBytes     uint64  `json:"legacy_index_heap_bytes,omitempty"`
	LegacyMeasuredBytes uint64  `json:"legacy_measured_delta_bytes,omitempty"`
	HeapRatio           float64 `json:"index_heap_ratio_legacy_over_interned,omitempty"`

	MatchLegacyNsPerOp   float64 `json:"match_legacy_ns_per_op,omitempty"`
	MatchInternedNsPerOp float64 `json:"match_interned_ns_per_op,omitempty"`
	MatchSpeedup         float64 `json:"match_speedup,omitempty"`

	BudgetSeconds float64 `json:"budget_seconds,omitempty"`
	WithinBudget  bool    `json:"within_budget"`
}

// SnapshotBench records the persistence round trip on the network the index
// section just built: save and load wall-clock against the fresh-build
// wall-clock, the snapshot file size, and how far the varint posting arenas
// compress the postings relative to the flat 4-bytes-per-posting layout the
// snapshot would otherwise have to carry.
type SnapshotBench struct {
	File  string `json:"file"`
	Scale string `json:"scale"`

	BuildSeconds float64 `json:"build_seconds"` // catalog + network + indexes
	SaveSeconds  float64 `json:"save_seconds"`
	LoadSeconds  float64 `json:"load_seconds"`
	LoadSpeedup  float64 `json:"load_speedup_vs_build"`

	FileBytes        int64   `json:"file_bytes"`
	ArenaBytes       uint64  `json:"arena_bytes"`        // varint posting arenas + skip arrays
	FlatPostingBytes uint64  `json:"flat_posting_bytes"` // 4 bytes per posting, uncompressed
	ArenaCompression float64 `json:"arena_compression_ratio"`

	ChecksumMatch bool `json:"checksum_match"`

	// Zero-copy leg: the same file restored through the read-only memory
	// mapping instead of the copying read path.
	MappedLoadSeconds   float64 `json:"mapped_load_seconds"`
	MappedSpeedupVsLoad float64 `json:"mapped_speedup_vs_load"`
	MappedChecksumMatch bool    `json:"mapped_checksum_match"`

	// Shard-and-spill leg (-sharded): the same configuration built straight
	// to disk in bounded shards must reproduce the in-heap save bit for bit.
	ShardSize           int     `json:"shard_size,omitempty"`
	ShardedBuildSeconds float64 `json:"sharded_build_seconds,omitempty"`
	ShardedFileMatch    bool    `json:"sharded_file_match,omitempty"`
}

// ShardedBench records the -sharded-only smoke: a shard-and-spill build at
// a scale whose substrate does not fit on the heap, restored through the
// memory mapping and probed with real floods, with the process peak RSS
// (VmHWM) as the memory-bound evidence.
type ShardedBench struct {
	Scale      string `json:"scale"`
	Peers      int    `json:"peers"`
	Objects    int    `json:"objects"`
	Placements int    `json:"placements"`
	ShardSize  int    `json:"shard_size"`
	Shards     int    `json:"shards"`
	DictTerms  int    `json:"dict_terms"`
	FileBytes  int64  `json:"file_bytes"`

	BuildSeconds      float64 `json:"build_seconds"`
	MappedLoadSeconds float64 `json:"mapped_load_seconds"`

	// IndexChecksum is the restored network's index fingerprint in hex, for
	// cross-run and cross-machine comparison.
	IndexChecksum     string `json:"index_checksum"`
	FloodPeersReached int    `json:"flood_peers_reached"`
	FloodResults      int    `json:"flood_results"`

	PeakRSSMB        float64 `json:"peak_rss_mb"` // VmHWM from /proc/self/status
	RSSCeilingMB     float64 `json:"rss_ceiling_mb,omitempty"`
	WithinRSSCeiling bool    `json:"within_rss_ceiling"`
	BudgetSeconds    float64 `json:"budget_seconds,omitempty"`
	WithinBudget     bool    `json:"within_budget"`
}

// EventsBench records discrete-event engine throughput (the -events
// section, BENCH_events.json): two pure dispatch micro-benchmarks on the
// priority queue — a self-rescheduling tick chain (shallow queue, the
// maintenance-cycle shape) and a fully pre-scheduled run (deep queue, the
// worst-case heap depth) — plus one complete steady-state scenario at a
// real scale, where events carry network maintenance and query-batch work.
type EventsBench struct {
	DispatchEvents    int     `json:"dispatch_events"`
	ChainNsPerEvent   float64 `json:"dispatch_chain_ns_per_event"`
	ChainEventsPerSec float64 `json:"dispatch_chain_events_per_sec"`
	WideNsPerEvent    float64 `json:"dispatch_wide_ns_per_event"`
	WideEventsPerSec  float64 `json:"dispatch_wide_events_per_sec"`

	Scale                 string  `json:"scale"`
	Peers                 int     `json:"peers"`
	ScenarioHorizon       int64   `json:"scenario_horizon_s"`
	ScenarioEvents        uint64  `json:"scenario_events"`
	ScenarioQueries       int     `json:"scenario_queries"`
	ScenarioSeconds       float64 `json:"scenario_wall_seconds"`
	ScenarioEventsPerSec  float64 `json:"scenario_events_per_sec"`
	ScenarioQueriesPerSec float64 `json:"scenario_queries_per_sec"`
}

// Report is the BENCH_flood.json schema.
type Report struct {
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`

	FloodPeers   int          `json:"flood_peers,omitempty"`
	FloodTTL     int          `json:"flood_ttl,omitempty"`
	Flood        []FloodBench `json:"flood,omitempty"`
	FloodSpeedup float64      `json:"flood_speedup_ns,omitempty"`
	AllocsRatio  float64      `json:"flood_allocs_ratio,omitempty"`

	Fig8Scale string      `json:"fig8_scale,omitempty"`
	Fig8Nodes int         `json:"fig8_nodes,omitempty"`
	Fig8      []Fig8Point `json:"fig8,omitempty"`

	Index *IndexBench `json:"index,omitempty"`

	Snapshot *SnapshotBench `json:"snapshot,omitempty"`

	Sharded *ShardedBench `json:"sharded,omitempty"`

	Events *EventsBench `json:"events,omitempty"`

	Note string `json:"note"`
}

func main() {
	testing.Init() // register -test.* flags so benchtime is adjustable
	var (
		out         = flag.String("o", "out/BENCH_flood.json", "output file (parent directory is created)")
		peers       = flag.Int("peers", 2000, "network size for the flood micro-benchmark")
		scaleName   = cliflags.AddScale(flag.CommandLine, "tiny")
		seed        = cliflags.AddSeed(flag.CommandLine)
		benchtime   = flag.Duration("benchtime", time.Second, "target duration per micro-benchmark")
		indexScale  = flag.String("index-scale", "default", "scale for the index build/memory section (tiny|small|default|full)")
		indexOnly   = flag.Bool("index-only", false, "run only the index section (the ScaleFull construction smoke)")
		indexLegac  = flag.Bool("index-legacy", true, "also build the legacy string index for a before/after comparison")
		budget      = flag.Duration("budget", 0, "fail if the index section's construction phases exceed this wall-clock budget (0 = no budget)")
		obsOverhead = flag.Bool("obs-overhead", false, "run only the observability-plane overhead smoke (exit 1 if instrumented floods are >10% slower)")
		capOverhead = flag.Bool("capacity-overhead", false, "run only the capacity-plane overhead smoke (exit 1 if floods with an attached-but-idle plane are >5% slower)")
		eventsOnly  = flag.Bool("events", false, "run only the discrete-event engine throughput section (BENCH_events.json)")
		snapFile    = flag.String("snapshot-file", "", "also save/load the index section's network through this snapshot file and report the round trip")
		sharded     = flag.Bool("sharded", false, "with -snapshot-file: also run a shard-and-spill build from the same configuration and fail unless its file is byte-identical to the in-heap save")
		shardedOnly = flag.Bool("sharded-only", false, "skip the in-heap build: shard-and-spill straight into -snapshot-file, restore through the memory mapping, flood-probe, and gate on -budget and -rss-ceiling-mb (the 1m smoke)")
		shardSize   = flag.Int("shard-size", 0, "peers per shard for -sharded/-sharded-only (0 = builder default)")
		rssCeiling  = flag.Int("rss-ceiling-mb", 0, "with -sharded-only: fail if process peak RSS (VmHWM) exceeds this many MiB (0 = no ceiling)")
	)
	flag.Parse()
	if err := cliflags.CheckPositive("-peers", *peers); err != nil {
		fail(err)
	}
	if err := cliflags.CheckNonNegative("-shard-size", *shardSize); err != nil {
		fail(err)
	}
	if err := cliflags.CheckNonNegative("-rss-ceiling-mb", *rssCeiling); err != nil {
		fail(err)
	}
	if (*sharded || *shardedOnly) && *snapFile == "" {
		fail(fmt.Errorf("-sharded/-sharded-only need -snapshot-file"))
	}

	if *obsOverhead {
		runObsOverhead(*peers, *benchtime, *out)
		return
	}
	if *capOverhead {
		runCapacityOverhead(*peers, *benchtime, *out)
		return
	}

	rep := Report{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Note: "flood rows compare the optimised FloodCtx against the " +
			"pre-optimisation map-based algorithm on the same network and " +
			"query stream; fig8 speedups are bounded above by gomaxprocs; " +
			"the index section compares the interned term index against the " +
			"retained string-keyed path built from the same catalog.",
	}

	if *eventsOnly {
		eb, err := runEventsBench(*scaleName, *seed, *benchtime)
		if err != nil {
			fail(err)
		}
		rep.Events = eb
		rep.Note = "dispatch rows isolate the event queue (handlers only " +
			"reschedule); the scenario row runs a full steady-state scenario " +
			"where events carry maintenance rounds and query batches, so its " +
			"events/sec is dominated by handler work, not the queue."
		writeReport(rep, *out)
		return
	}

	if *shardedOnly {
		hb, err := runShardedBench(*indexScale, *seed, *shardSize, *budget, *rssCeiling, *snapFile)
		if err != nil {
			fail(err)
		}
		rep.Sharded = hb
		rep.Note = "sharded-only smoke: the population is built straight " +
			"into the snapshot with the shard-and-spill pipeline (peak heap " +
			"one shard + dictionary), restored zero-copy through the memory " +
			"mapping and probed with real floods; peak_rss_mb is the " +
			"process-wide VmHWM, the memory-bound evidence."
		writeReport(rep, *out)
		if !hb.WithinBudget {
			fmt.Fprintf(os.Stderr, "qc-bench: sharded build+load exceeded budget (%.1fs > %.1fs)\n",
				hb.BuildSeconds+hb.MappedLoadSeconds, hb.BudgetSeconds)
			os.Exit(1)
		}
		if !hb.WithinRSSCeiling {
			fmt.Fprintf(os.Stderr, "qc-bench: peak RSS %.0f MiB exceeds ceiling %.0f MiB\n",
				hb.PeakRSSMB, hb.RSSCeilingMB)
			os.Exit(1)
		}
		if hb.FloodResults == 0 {
			fmt.Fprintln(os.Stderr, "qc-bench: floods over the mapped network returned no results")
			os.Exit(1)
		}
		return
	}

	if !*indexOnly {
		rep.FloodPeers = *peers
		rep.FloodTTL = 4
		nw, criteria := buildNet(*peers)
		fmt.Fprintf(os.Stderr, "qc-bench: flood micro-benchmark, %d peers, ttl %d\n", *peers, rep.FloodTTL)
		naive := runBench("flood_naive_map", *benchtime, func(b *testing.B) {
			r := rng.New(1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := floodBaseline(nw, i%*peers, criteria, 4, r); err != nil {
					b.Fatal(err)
				}
			}
		})
		ctx := nw.NewFloodCtx()
		opt := runBench("flood_ctx", *benchtime, func(b *testing.B) {
			r := rng.New(1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ctx.Flood(i%*peers, criteria, 4, r); err != nil {
					b.Fatal(err)
				}
			}
		})
		rep.Flood = []FloodBench{naive, opt}
		if opt.NsPerOp > 0 {
			rep.FloodSpeedup = naive.NsPerOp / opt.NsPerOp
		}
		if opt.AllocsPerOp > 0 {
			rep.AllocsRatio = float64(naive.AllocsPerOp) / float64(opt.AllocsPerOp)
		}
		fmt.Fprintf(os.Stderr, "qc-bench: naive %.0f ns/op %d allocs/op; ctx %.0f ns/op %d allocs/op (%.2fx ns, %.1fx allocs)\n",
			naive.NsPerOp, naive.AllocsPerOp, opt.NsPerOp, opt.AllocsPerOp, rep.FloodSpeedup, rep.AllocsRatio)

		scale, err := qc.ParseScale(*scaleName)
		if err != nil {
			fail(err)
		}
		rep.Fig8Scale = *scaleName
		for _, workers := range []int{1, 2, 4, 8} {
			env := qc.NewEnv(scale, *seed)
			env.Workers = workers
			start := time.Now()
			f8, err := qc.Fig8(env)
			if err != nil {
				fail(err)
			}
			secs := time.Since(start).Seconds()
			rep.Fig8Nodes = f8.Nodes
			pt := Fig8Point{Workers: workers, Seconds: secs, Speedup: 1}
			if len(rep.Fig8) > 0 && secs > 0 {
				pt.Speedup = rep.Fig8[0].Seconds / secs
			}
			rep.Fig8 = append(rep.Fig8, pt)
			fmt.Fprintf(os.Stderr, "qc-bench: fig8 %s workers=%d %.2fs (%.2fx)\n", *scaleName, workers, secs, pt.Speedup)
		}
	}

	ib, sb, err := runIndexBench(*indexScale, *seed, *indexLegac, *budget, *benchtime, *snapFile, *sharded, *shardSize)
	if err != nil {
		fail(err)
	}
	rep.Index = ib
	rep.Snapshot = sb
	if sb != nil {
		rep.Note += " The snapshot section is one save/load round trip " +
			"measured on this machine, not a benchmark mean; the load " +
			"rebuilds derived structures (membership filters, QRP hash " +
			"products, global term frequencies) in parallel, so with " +
			"num_cpu=1 the reported load time is the serial worst case. " +
			"The mapped row restores the same file zero-copy through a " +
			"read-only memory mapping."
	}

	writeReport(rep, *out)
	if !ib.WithinBudget {
		fmt.Fprintf(os.Stderr, "qc-bench: index construction exceeded budget (%.1fs > %.1fs)\n",
			ib.CatalogSeconds+ib.NetworkSeconds+ib.IndexBuildSeconds, ib.BudgetSeconds)
		os.Exit(1)
	}
	if sb != nil && !sb.ChecksumMatch {
		fmt.Fprintln(os.Stderr, "qc-bench: snapshot round trip changed the index checksum")
		os.Exit(1)
	}
	if sb != nil && !sb.MappedChecksumMatch {
		fmt.Fprintln(os.Stderr, "qc-bench: mapped snapshot load changed the index checksum")
		os.Exit(1)
	}
	if *sharded && sb != nil && !sb.ShardedFileMatch {
		fmt.Fprintln(os.Stderr, "qc-bench: sharded build is not byte-identical to the in-heap save")
		os.Exit(1)
	}
	if *indexOnly && sb != nil && sb.LoadSeconds > sb.BuildSeconds/10 {
		fmt.Fprintf(os.Stderr, "qc-bench: snapshot load %.2fs exceeds a tenth of the %.2fs build\n",
			sb.LoadSeconds, sb.BuildSeconds)
		os.Exit(1)
	}
	if *indexOnly && sb != nil && sb.MappedLoadSeconds >= sb.LoadSeconds {
		fmt.Fprintf(os.Stderr, "qc-bench: mapped load %.2fs did not beat the read-path load %.2fs\n",
			sb.MappedLoadSeconds, sb.LoadSeconds)
		os.Exit(1)
	}
}

// writeReport marshals the report to path, creating parent directories.
func writeReport(rep Report, path string) {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	buf = append(buf, '\n')
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fail(err)
		}
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "qc-bench: wrote %s\n", path)
}

// runEventsBench measures discrete-event engine throughput: the queue in
// isolation (two dispatch shapes) and a full steady-state scenario at one
// scale.
func runEventsBench(scaleName string, seed uint64, benchtime time.Duration) (*EventsBench, error) {
	const dispatchEvents = 1 << 12
	eb := &EventsBench{DispatchEvents: dispatchEvents, Scale: scaleName}

	// Chain shape: one self-rescheduling tick per simulated second — the
	// maintenance-cycle pattern, queue depth stays at 1.
	chain := runBench("events_dispatch_chain", benchtime, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng, err := events.New(seed, dispatchEvents)
			if err != nil {
				b.Fatal(err)
			}
			var tick events.Handler
			tick = func(now int64, _ *rng.Source) error {
				if now >= dispatchEvents {
					return nil
				}
				return eng.Schedule(now+1, events.PrioMaint, fmt.Sprintf("tick/%d", now+1), tick)
			}
			if err := eng.Schedule(1, events.PrioMaint, "tick/1", tick); err != nil {
				b.Fatal(err)
			}
			if err := eng.Run(); err != nil {
				b.Fatal(err)
			}
			if eng.Processed() != dispatchEvents {
				b.Fatalf("processed %d events, want %d", eng.Processed(), dispatchEvents)
			}
		}
	})
	eb.ChainNsPerEvent = chain.NsPerOp / dispatchEvents
	if eb.ChainNsPerEvent > 0 {
		eb.ChainEventsPerSec = 1e9 / eb.ChainNsPerEvent
	}

	// Wide shape: everything pre-scheduled with interleaved priorities, so
	// dispatch pays full heap depth (the fault-burst / flash-crowd pattern).
	prios := []events.Priority{
		events.PrioChurn, events.PrioFault, events.PrioMaint,
		events.PrioQuery, events.PrioWindow,
	}
	noop := func(int64, *rng.Source) error { return nil }
	wide := runBench("events_dispatch_wide", benchtime, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng, err := events.New(seed, dispatchEvents)
			if err != nil {
				b.Fatal(err)
			}
			for j := 0; j < dispatchEvents; j++ {
				at := int64(j%dispatchEvents) + 1
				if err := eng.Schedule(at, prios[j%len(prios)], fmt.Sprintf("ev/%d", j), noop); err != nil {
					b.Fatal(err)
				}
			}
			if err := eng.Run(); err != nil {
				b.Fatal(err)
			}
			if eng.Processed() != dispatchEvents {
				b.Fatalf("processed %d events, want %d", eng.Processed(), dispatchEvents)
			}
		}
	})
	eb.WideNsPerEvent = wide.NsPerOp / dispatchEvents
	if eb.WideNsPerEvent > 0 {
		eb.WideEventsPerSec = 1e9 / eb.WideNsPerEvent
	}
	fmt.Fprintf(os.Stderr, "qc-bench: events dispatch chain %.0f ns/event (%.2fM events/s), wide %.0f ns/event (%.2fM events/s)\n",
		eb.ChainNsPerEvent, eb.ChainEventsPerSec/1e6, eb.WideNsPerEvent, eb.WideEventsPerSec/1e6)

	// Full scenario: the same network construction the experiments use,
	// then one steady-state run where events do real maintenance and
	// query-batch work.
	scale, err := experiments.ParseScale(scaleName)
	if err != nil {
		return nil, err
	}
	par := experiments.ParamsFor(scale)
	cat, err := catalog.Build(catalog.Config{
		Seed: seed, Peers: par.GnutellaPeers, UniqueObjects: par.UniqueObjects,
		ReplicaAlpha: 2.45, VariantProb: 0.08, NonSpecificPeerFrac: 0.05,
	})
	if err != nil {
		return nil, err
	}
	nw, err := gnet.NewFromCatalog(gnet.DefaultConfig(seed), cat)
	if err != nil {
		return nil, err
	}
	cfg := events.SteadyStateScenario(seed)
	cfg.Workers = runtime.GOMAXPROCS(0)
	s, err := events.NewScenario(nw, cfg)
	if err != nil {
		return nil, err
	}
	eb.Peers = par.GnutellaPeers
	eb.ScenarioHorizon = cfg.Duration
	start := time.Now()
	res, err := s.Run()
	if err != nil {
		return nil, err
	}
	eb.ScenarioSeconds = time.Since(start).Seconds()
	eb.ScenarioEvents = res.EventsProcessed
	eb.ScenarioQueries = len(res.Windows) * cfg.QueriesPerWindow
	if eb.ScenarioSeconds > 0 {
		eb.ScenarioEventsPerSec = float64(eb.ScenarioEvents) / eb.ScenarioSeconds
		eb.ScenarioQueriesPerSec = float64(eb.ScenarioQueries) / eb.ScenarioSeconds
	}
	fmt.Fprintf(os.Stderr, "qc-bench: steady-state scenario %s (%d peers, %ds horizon): %d events, %d queries in %.2fs (%.0f events/s, %.0f queries/s)\n",
		scaleName, eb.Peers, eb.ScenarioHorizon, eb.ScenarioEvents, eb.ScenarioQueries,
		eb.ScenarioSeconds, eb.ScenarioEventsPerSec, eb.ScenarioQueriesPerSec)
	return eb, nil
}

// heapUsed returns heap-in-use after a forced collection, so phase deltas
// measure retained structures rather than garbage.
func heapUsed() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// runIndexBench measures network construction and the term-index footprint
// at one scale: catalog build, network+dictionary build, eager index build,
// heap-in-use around each phase, and optionally the legacy string index
// built from the same catalog plus a match micro-benchmark down both paths.
// With a non-empty snapFile it also rounds the network through a snapshot
// (save, stat, load, checksum — copying and memory-mapped) and returns
// that leg as a SnapshotBench; withSharded additionally reruns the whole
// construction through the shard-and-spill pipeline and byte-compares the
// two files.
func runIndexBench(scaleName string, seed uint64, withLegacy bool, budget, benchtime time.Duration, snapFile string, withSharded bool, shardSize int) (*IndexBench, *SnapshotBench, error) {
	scale, err := experiments.ParseScale(scaleName)
	if err != nil {
		return nil, nil, err
	}
	par := experiments.ParamsFor(scale)
	ib := &IndexBench{
		Scale: scaleName, Peers: par.GnutellaPeers, Objects: par.UniqueObjects,
		WithinBudget: true,
	}
	ccfg := catalog.Config{
		Seed: seed, Peers: par.GnutellaPeers, UniqueObjects: par.UniqueObjects,
		ReplicaAlpha: 2.45, VariantProb: 0.08, NonSpecificPeerFrac: 0.05,
	}
	gcfg := gnet.DefaultConfig(seed)
	gcfg.FirewalledFrac = par.FirewalledFrac

	fmt.Fprintf(os.Stderr, "qc-bench: index section, scale %s (%d peers, %d objects)\n",
		scaleName, par.GnutellaPeers, par.UniqueObjects)
	ib.HeapBeforeBytes = heapUsed()
	t0 := time.Now()
	cat, err := catalog.Build(ccfg)
	if err != nil {
		return nil, nil, err
	}
	ib.CatalogSeconds = time.Since(t0).Seconds()
	ib.Placements = cat.TotalPlacements
	t0 = time.Now()
	nw, err := gnet.NewFromCatalog(gcfg, cat)
	if err != nil {
		return nil, nil, err
	}
	ib.NetworkSeconds = time.Since(t0).Seconds()
	ib.HeapAfterBuildBytes = heapUsed()
	t0 = time.Now()
	if err := nw.BuildIndexes(0); err != nil {
		return nil, nil, err
	}
	ib.IndexBuildSeconds = time.Since(t0).Seconds()
	ib.HeapAfterIndexBytes = heapUsed()

	st, err := nw.IndexStats()
	if err != nil {
		return nil, nil, err
	}
	d := nw.TermDict()
	ib.DictTerms = st.DictTerms
	ib.DictHeapBytes = d.HeapBytes()
	ib.IndexTerms = st.IndexTerms
	ib.Postings = st.Postings
	ib.InternedHeapBytes = st.HeapBytes // includes the shared dictionary
	fmt.Fprintf(os.Stderr, "qc-bench: catalog %.2fs, network %.2fs, indexes %.2fs; %d dict terms, interned index+dict ~%.1f MiB\n",
		ib.CatalogSeconds, ib.NetworkSeconds, ib.IndexBuildSeconds,
		ib.DictTerms, float64(ib.InternedHeapBytes)/(1<<20))

	if budget > 0 {
		ib.BudgetSeconds = budget.Seconds()
		total := ib.CatalogSeconds + ib.NetworkSeconds + ib.IndexBuildSeconds
		ib.WithinBudget = total <= ib.BudgetSeconds
	}

	if withLegacy {
		lw, err := gnet.NewFromCatalog(gcfg, cat)
		if err != nil {
			return nil, nil, err
		}
		lw.UseLegacyStringIndex()
		before := heapUsed()
		if err := lw.BuildIndexes(0); err != nil {
			return nil, nil, err
		}
		after := heapUsed()
		if after > before {
			ib.LegacyMeasuredBytes = after - before
		}
		lst, err := lw.IndexStats()
		if err != nil {
			return nil, nil, err
		}
		ib.LegacyHeapBytes = lst.HeapBytes
		if ib.InternedHeapBytes > 0 {
			ib.HeapRatio = float64(lst.HeapBytes) / float64(ib.InternedHeapBytes)
		}

		// Match micro-benchmark down both paths: same peer, same criteria
		// stream (the networks share the catalog, so libraries match).
		target := 0
		for i, p := range nw.Peers {
			if len(p.Library) > len(nw.Peers[target].Library) {
				target = i
			}
		}
		criteria := make([]string, 0, 64)
		for _, p := range nw.Peers {
			if len(p.Library) > 0 {
				criteria = append(criteria, p.Library[0].Name)
				if len(criteria) == 64 {
					break
				}
			}
		}
		pi, pl := nw.Peers[target], lw.Peers[target]
		legacyRow := runBench("match_legacy", benchtime, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pl.Match(criteria[i%len(criteria)])
			}
		})
		internedRow := runBench("match_interned", benchtime, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pi.Match(criteria[i%len(criteria)])
			}
		})
		ib.MatchLegacyNsPerOp = legacyRow.NsPerOp
		ib.MatchInternedNsPerOp = internedRow.NsPerOp
		if internedRow.NsPerOp > 0 {
			ib.MatchSpeedup = legacyRow.NsPerOp / internedRow.NsPerOp
		}
		fmt.Fprintf(os.Stderr, "qc-bench: index heap legacy ~%.1f MiB vs interned ~%.1f MiB (%.1fx); match %.0f vs %.0f ns/op (%.2fx)\n",
			float64(ib.LegacyHeapBytes)/(1<<20), float64(ib.InternedHeapBytes)/(1<<20), ib.HeapRatio,
			legacyRow.NsPerOp, internedRow.NsPerOp, ib.MatchSpeedup)
		runtime.KeepAlive(lw)
	}
	runtime.KeepAlive(nw)
	runtime.KeepAlive(cat)

	if snapFile == "" {
		return ib, nil, nil
	}
	sb := &SnapshotBench{
		File: snapFile, Scale: scaleName,
		BuildSeconds:     ib.CatalogSeconds + ib.NetworkSeconds + ib.IndexBuildSeconds,
		ArenaBytes:       st.ArenaBytes,
		FlatPostingBytes: 4 * uint64(st.Postings),
	}
	if sb.ArenaBytes > 0 {
		sb.ArenaCompression = float64(sb.FlatPostingBytes) / float64(sb.ArenaBytes)
	}
	wantSum, err := nw.IndexChecksum()
	if err != nil {
		return nil, nil, err
	}
	t0 = time.Now()
	if _, err := snapshot.Save(snapFile, nw, 0); err != nil {
		return nil, nil, err
	}
	sb.SaveSeconds = time.Since(t0).Seconds()
	fi, err := os.Stat(snapFile)
	if err != nil {
		return nil, nil, err
	}
	sb.FileBytes = fi.Size()
	t0 = time.Now()
	restored, err := snapshot.Load(snapFile, 0)
	if err != nil {
		return nil, nil, err
	}
	sb.LoadSeconds = time.Since(t0).Seconds()
	if sb.LoadSeconds > 0 {
		sb.LoadSpeedup = sb.BuildSeconds / sb.LoadSeconds
	}
	gotSum, err := restored.IndexChecksum()
	if err != nil {
		return nil, nil, err
	}
	sb.ChecksumMatch = gotSum == wantSum
	restored = nil
	runtime.GC() // release the copying restore before the mapped leg
	fmt.Fprintf(os.Stderr, "qc-bench: snapshot save %.2fs, load %.2fs (%.1fx faster than the %.2fs build), %.1f MiB file, arena %.1f MiB vs %.1f MiB flat (%.2fx), checksum match=%v\n",
		sb.SaveSeconds, sb.LoadSeconds, sb.LoadSpeedup, sb.BuildSeconds,
		float64(sb.FileBytes)/(1<<20), float64(sb.ArenaBytes)/(1<<20),
		float64(sb.FlatPostingBytes)/(1<<20), sb.ArenaCompression, sb.ChecksumMatch)

	// Mapped leg: the same file, restored zero-copy.
	t0 = time.Now()
	mapped, err := snapshot.LoadMapped(snapFile, 0)
	if err != nil {
		return nil, nil, err
	}
	sb.MappedLoadSeconds = time.Since(t0).Seconds()
	if sb.MappedLoadSeconds > 0 {
		sb.MappedSpeedupVsLoad = sb.LoadSeconds / sb.MappedLoadSeconds
	}
	mappedSum, err := mapped.IndexChecksum()
	if err != nil {
		return nil, nil, err
	}
	sb.MappedChecksumMatch = mappedSum == wantSum
	if err := mapped.Close(); err != nil {
		return nil, nil, err
	}
	fmt.Fprintf(os.Stderr, "qc-bench: mapped load %.2fs (%.1fx faster than the %.2fs read-path load), checksum match=%v\n",
		sb.MappedLoadSeconds, sb.MappedSpeedupVsLoad, sb.LoadSeconds, sb.MappedChecksumMatch)

	// Sharded identity leg: the same configuration built straight to disk
	// must reproduce the in-heap save bit for bit.
	if withSharded {
		sb.ShardSize = shardSize
		shardPath := snapFile + ".sharded"
		t0 = time.Now()
		sstats, err := snapshot.BuildSharded(shardPath, snapshot.BuildConfig{
			Catalog:   ccfg,
			Network:   gcfg,
			ShardSize: shardSize,
		})
		if err != nil {
			return nil, nil, err
		}
		sb.ShardedBuildSeconds = time.Since(t0).Seconds()
		wantHash, err := fileSHA256(snapFile)
		if err != nil {
			return nil, nil, err
		}
		gotHash, err := fileSHA256(shardPath)
		if err != nil {
			return nil, nil, err
		}
		sb.ShardedFileMatch = gotHash == wantHash && sstats.FileBytes == sb.FileBytes
		os.Remove(shardPath)
		fmt.Fprintf(os.Stderr, "qc-bench: sharded build %.2fs (%d shards of %d peers), file match=%v\n",
			sb.ShardedBuildSeconds, sstats.Shards, sstats.ShardSize, sb.ShardedFileMatch)
	}
	return ib, sb, nil
}

// runShardedBench is the -sharded-only smoke: shard-and-spill the whole
// population straight into snapFile, restore it zero-copy through the
// memory mapping, probe it with floods, and record peak RSS.
func runShardedBench(scaleName string, seed uint64, shardSize int, budget time.Duration, rssCeilingMB int, snapFile string) (*ShardedBench, error) {
	scale, err := experiments.ParseScale(scaleName)
	if err != nil {
		return nil, err
	}
	par := experiments.ParamsFor(scale)
	hb := &ShardedBench{
		Scale: scaleName, Peers: par.GnutellaPeers, Objects: par.UniqueObjects,
		WithinBudget: true, WithinRSSCeiling: true,
	}
	gcfg := gnet.DefaultConfig(seed)
	gcfg.FirewalledFrac = par.FirewalledFrac
	fmt.Fprintf(os.Stderr, "qc-bench: sharded-only build, scale %s (%d peers, %d objects), shard size %d\n",
		scaleName, par.GnutellaPeers, par.UniqueObjects, shardSize)
	t0 := time.Now()
	stats, err := snapshot.BuildSharded(snapFile, snapshot.BuildConfig{
		Catalog: catalog.Config{
			Seed: seed, Peers: par.GnutellaPeers, UniqueObjects: par.UniqueObjects,
			ReplicaAlpha: 2.45, VariantProb: 0.08, NonSpecificPeerFrac: 0.05,
		},
		Network:   gcfg,
		ShardSize: shardSize,
	})
	if err != nil {
		return nil, err
	}
	hb.BuildSeconds = time.Since(t0).Seconds()
	hb.Placements = stats.Placements
	hb.ShardSize = stats.ShardSize
	hb.Shards = stats.Shards
	hb.DictTerms = stats.DictTerms
	hb.FileBytes = stats.FileBytes
	fmt.Fprintf(os.Stderr, "qc-bench: sharded build %.1fs, %d shards of %d peers, %d placements, %.1f MiB file\n",
		hb.BuildSeconds, hb.Shards, hb.ShardSize, hb.Placements, float64(hb.FileBytes)/(1<<20))

	t0 = time.Now()
	nw, err := snapshot.LoadMapped(snapFile, 0)
	if err != nil {
		return nil, err
	}
	hb.MappedLoadSeconds = time.Since(t0).Seconds()
	sum, err := nw.IndexChecksum()
	if err != nil {
		return nil, err
	}
	hb.IndexChecksum = fmt.Sprintf("%x", sum)
	// Flood probe: real queries over the mapped substrate. Origins and
	// criteria are drawn deterministically from the restored libraries.
	ctx := nw.NewFloodCtx()
	for trial := 0; trial < 8; trial++ {
		origin := trial * (len(nw.Peers)/8 + 1) % len(nw.Peers)
		criteria := ""
		for _, p := range nw.Peers[origin:] {
			if len(p.Library) > 0 {
				criteria = p.Library[trial%len(p.Library)].Name
				break
			}
		}
		res, err := ctx.Flood(origin, criteria, 4, rng.New(uint64(trial)))
		if err != nil {
			return nil, err
		}
		hb.FloodPeersReached += res.PeersReached
		hb.FloodResults += res.TotalResults
	}
	if err := nw.Close(); err != nil {
		return nil, err
	}
	hb.PeakRSSMB = float64(peakRSSBytes()) / (1 << 20)
	if budget > 0 {
		hb.BudgetSeconds = budget.Seconds()
		hb.WithinBudget = hb.BuildSeconds+hb.MappedLoadSeconds <= hb.BudgetSeconds
	}
	if rssCeilingMB > 0 {
		hb.RSSCeilingMB = float64(rssCeilingMB)
		hb.WithinRSSCeiling = hb.PeakRSSMB <= hb.RSSCeilingMB
	}
	fmt.Fprintf(os.Stderr, "qc-bench: mapped load %.1fs, checksum %s, floods reached %d peers with %d results, peak RSS %.0f MiB\n",
		hb.MappedLoadSeconds, hb.IndexChecksum, hb.FloodPeersReached, hb.FloodResults, hb.PeakRSSMB)
	return hb, nil
}

// peakRSSBytes reads the process high-water resident set (VmHWM) from
// /proc/self/status; 0 when unavailable (non-Linux).
func peakRSSBytes() uint64 {
	raw, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(raw), "\n") {
		rest, ok := strings.CutPrefix(line, "VmHWM:")
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) >= 1 {
			if kb, err := strconv.ParseUint(fields[0], 10, 64); err == nil {
				return kb * 1024
			}
		}
	}
	return 0
}

// fileSHA256 streams a file through SHA-256 (the files compared here are
// GiB-sized at paper scale; no need to hold both in memory).
func fileSHA256(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, bufio.NewReaderSize(f, 1<<20)); err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

// runBench adapts testing.Benchmark to a FloodBench row.
func runBench(name string, d time.Duration, fn func(b *testing.B)) FloodBench {
	prev := flag.Lookup("test.benchtime")
	if prev != nil {
		prev.Value.Set(d.String())
	}
	r := testing.Benchmark(fn)
	return FloodBench{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// buildNet constructs the benchmark network (the same configuration as
// BenchmarkFloodOnce) and returns a criteria string that hits.
func buildNet(peers int) (*gnet.Network, string) {
	cat, err := catalog.Build(catalog.Config{
		Seed: 5, Peers: peers, UniqueObjects: peers * 25, ReplicaAlpha: 2.45,
		VariantProb: 0.05, NonSpecificPeerFrac: 0.03,
	})
	if err != nil {
		fail(err)
	}
	nw, err := gnet.NewFromCatalog(gnet.DefaultConfig(5), cat)
	if err != nil {
		fail(err)
	}
	// Build term indexes (and the global term-frequency table floods use
	// for rarest-first probing) outside the timed region.
	if err := nw.BuildIndexes(0); err != nil {
		fail(err)
	}
	criteria := ""
	for _, p := range nw.Peers {
		if len(p.Library) > 0 {
			criteria = p.Library[0].Name
			break
		}
	}
	return nw, criteria
}

// floodBaseline replays the pre-optimisation flood on a fault-free,
// QRP-free network through the exported API: a fresh seen map per flood,
// one Decode per delivered envelope and one Encode per forwarding peer.
// TestFloodMatchesNaiveReference (internal/gnet) pins this algorithm's
// equivalence with the optimised path.
func floodBaseline(nw *gnet.Network, origin int, criteria string, ttl int, r *rng.Source) (*gnet.FloodResult, error) {
	guid := gmsg.GUIDFromUint64s(r.Uint64(), r.Uint64())
	q := &gmsg.Message{
		Header: gmsg.Header{GUID: guid, Type: gmsg.TypeQuery, TTL: byte(ttl)},
		Query:  &gmsg.Query{Criteria: criteria},
	}
	res := &gnet.FloodResult{GUID: guid, Criteria: criteria, TTL: ttl}
	seen := map[int]bool{origin: true}
	type envelope struct {
		to  int
		raw []byte
	}
	frontier := make([]envelope, 0, len(nw.Peers[origin].Neighbors))
	raw, err := gmsg.Encode(q)
	if err != nil {
		return nil, err
	}
	for _, nb := range nw.Peers[origin].Neighbors {
		frontier = append(frontier, envelope{to: nb, raw: raw})
		res.Messages++
	}
	for len(frontier) > 0 {
		var next []envelope
		for _, env := range frontier {
			if seen[env.to] {
				continue
			}
			seen[env.to] = true
			m, _, err := gmsg.Decode(env.raw)
			if err != nil {
				return nil, err
			}
			res.PeersReached++
			peer := nw.Peers[env.to]
			if files := peer.Match(m.Query.Criteria); len(files) > 0 {
				hit := gnet.Hit{PeerID: env.to, Hops: int(m.Header.Hops) + 1}
				for _, f := range files {
					hit.Files = append(hit.Files, gmsg.Result{
						FileIndex: f.Index, FileSize: f.Size, FileName: f.Name,
					})
				}
				res.Hits = append(res.Hits, hit)
				res.TotalResults += len(files)
			}
			if m.Header.TTL <= 1 {
				continue
			}
			if nw.Config.UltrapeerFrac > 0 && !peer.Ultrapeer {
				continue
			}
			fwd := *m
			fwd.Header.TTL--
			fwd.Header.Hops++
			fraw, err := gmsg.Encode(&fwd)
			if err != nil {
				return nil, err
			}
			for _, nb := range peer.Neighbors {
				if !seen[nb] {
					next = append(next, envelope{to: nb, raw: fraw})
					res.Messages++
				}
			}
		}
		frontier = next
	}
	return res, nil
}

// runObsOverhead is the `make ci` metrics-overhead smoke: it benchmarks
// the optimised flood once with the observability plane detached and once
// with a live registry (and flood-trace recorder) attached. The smoke
// passes if the instrumented flood stays within 10% of EITHER the detached
// same-run baseline or the flood_ctx row previously recorded in
// baselinePath — the recorded row absorbs machine-load noise between the
// two same-run measurements.
func runObsOverhead(peers int, benchtime time.Duration, baselinePath string) {
	nw, criteria := buildNet(peers)
	ctx := nw.NewFloodCtx()
	disabled := runBench("flood_ctx_obs_off", benchtime, func(b *testing.B) {
		r := rng.New(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ctx.Flood(i%peers, criteria, 4, r); err != nil {
				b.Fatal(err)
			}
		}
	})
	reg := obs.NewRegistry()
	nw.Instrument(reg, obs.NewFloodTraces(0))
	ictx := nw.NewFloodCtx()
	enabled := runBench("flood_ctx_obs_on", benchtime, func(b *testing.B) {
		r := rng.New(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ictx.Flood(i%peers, criteria, 4, r); err != nil {
				b.Fatal(err)
			}
		}
	})
	if reg.Counter("gnet_floods_total").Value() == 0 {
		fail(fmt.Errorf("obs-overhead: instrumented floods recorded no metrics"))
	}

	const tolerance = 1.10
	limit := disabled.NsPerOp * tolerance
	recorded := recordedFloodCtxNs(baselinePath)
	if recorded > 0 && recorded*tolerance > limit {
		limit = recorded * tolerance
	}
	fmt.Fprintf(os.Stderr,
		"qc-bench: obs overhead %d peers: off %.0f ns/op, on %.0f ns/op (%.2fx); recorded flood_ctx %.0f ns/op; limit %.0f\n",
		peers, disabled.NsPerOp, enabled.NsPerOp, enabled.NsPerOp/disabled.NsPerOp, recorded, limit)
	if enabled.NsPerOp > limit {
		fail(fmt.Errorf("obs-overhead: instrumented flood %.0f ns/op exceeds limit %.0f ns/op", enabled.NsPerOp, limit))
	}
	fmt.Fprintln(os.Stderr, "qc-bench: obs overhead within budget")
}

// runCapacityOverhead is the `make ci` capacity-plane overhead smoke: it
// benchmarks the optimised flood once with no plane and once with an
// attached-but-idle plane — constructed and wired into the network but
// disabled, exactly the state every capacity-unaware run ships with. The
// inert-by-default contract says that state is free, so the smoke fails
// if the idle-plane flood is more than 5% slower than EITHER the detached
// same-run baseline or the flood_ctx row previously recorded in
// baselinePath (the recorded row absorbs machine-load noise between the
// two same-run measurements). An enabled unbounded plane — per-message
// admission accounting with nothing ever shed — is measured too and
// reported as the modeling cost of turning the plane on, without a
// budget: that cost buys the queue model and is paid only when asked for.
func runCapacityOverhead(peers int, benchtime time.Duration, baselinePath string) {
	nw, criteria := buildNet(peers)
	ctx := nw.NewFloodCtx()
	detached := runBench("flood_ctx_capacity_off", benchtime, func(b *testing.B) {
		r := rng.New(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ctx.Flood(i%peers, criteria, 4, r); err != nil {
				b.Fatal(err)
			}
		}
	})

	idleCfg := capacity.Config{Seed: 1} // disabled: zero service cost
	idlePl, err := capacity.New(idleCfg, len(nw.Peers))
	if err != nil {
		fail(err)
	}
	nw.SetCapacity(idlePl)
	ictx := nw.NewFloodCtx()
	idle := runBench("flood_ctx_capacity_idle", benchtime, func(b *testing.B) {
		r := rng.New(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ictx.Flood(i%peers, criteria, 4, r); err != nil {
				b.Fatal(err)
			}
		}
	})
	idlePl.Commit(1)
	if st := idlePl.Stats(); st != (capacity.Stats{}) {
		fail(fmt.Errorf("capacity-overhead: disabled plane recorded state %+v; it must be inert", st))
	}

	ccfg := capacity.DefaultConfig(1)
	ccfg.Policy = capacity.Unbounded
	ccfg.Breakers = false
	pl, err := capacity.New(ccfg, len(nw.Peers))
	if err != nil {
		fail(err)
	}
	nw.SetCapacity(pl)
	uctx := nw.NewFloodCtx()
	unbounded := runBench("flood_ctx_capacity_unbounded", benchtime, func(b *testing.B) {
		r := rng.New(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := uctx.Flood(i%peers, criteria, 4, r); err != nil {
				b.Fatal(err)
			}
		}
	})
	pl.Commit(1) // fold the phase tallies so Stats sees the admissions
	if pl.Stats().Enqueued == 0 {
		fail(fmt.Errorf("capacity-overhead: unbounded plane admitted nothing; floods bypassed it"))
	}
	if pl.Stats().Shed != 0 {
		fail(fmt.Errorf("capacity-overhead: unbounded plane shed %d messages; it must shed nothing", pl.Stats().Shed))
	}

	const tolerance = 1.05
	limit := detached.NsPerOp * tolerance
	recorded := recordedFloodCtxNs(baselinePath)
	if recorded > 0 && recorded*tolerance > limit {
		limit = recorded * tolerance
	}
	fmt.Fprintf(os.Stderr,
		"qc-bench: capacity overhead %d peers: off %.0f ns/op, idle %.0f ns/op (%.2fx), enabled-unbounded %.0f ns/op (%.2fx); recorded flood_ctx %.0f ns/op; idle limit %.0f\n",
		peers, detached.NsPerOp, idle.NsPerOp, idle.NsPerOp/detached.NsPerOp,
		unbounded.NsPerOp, unbounded.NsPerOp/detached.NsPerOp, recorded, limit)
	if idle.NsPerOp > limit {
		fail(fmt.Errorf("capacity-overhead: idle-plane flood %.0f ns/op exceeds limit %.0f ns/op", idle.NsPerOp, limit))
	}
	fmt.Fprintln(os.Stderr, "qc-bench: capacity overhead within budget")
}

// recordedFloodCtxNs returns the flood_ctx ns/op recorded in a previous
// BENCH_flood.json report, or 0 when the file or row is absent.
func recordedFloodCtxNs(path string) float64 {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return 0
	}
	for _, row := range rep.Flood {
		if row.Name == "flood_ctx" {
			return row.NsPerOp
		}
	}
	return 0
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "qc-bench:", err)
	os.Exit(1)
}
