// Command qc-bench measures the flood hot path and the parallel trial
// engine and writes a machine-readable report (BENCH_flood.json):
//
//   - ns/op, B/op and allocs/op for one TTL-4 flood on a populated
//     network, for both the optimised FloodCtx and a map-based baseline
//     that replays the pre-optimisation algorithm (fresh seen map,
//     per-envelope decode, per-forwarder encode);
//   - wall-clock for the Figure 8 sweep at 1, 2, 4 and 8 workers, with
//     speedups relative to 1 worker.
//
// The baseline's equivalence to the historical implementation is pinned
// by TestFloodMatchesNaiveReference in internal/gnet.
//
// Usage:
//
//	qc-bench -o BENCH_flood.json -scale tiny
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	qc "querycentric"
	"querycentric/internal/catalog"
	"querycentric/internal/gmsg"
	"querycentric/internal/gnet"
	"querycentric/internal/rng"
)

// FloodBench is one micro-benchmark row.
type FloodBench struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Fig8Point is one worker-count timing of the Figure 8 sweep.
type Fig8Point struct {
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	Speedup float64 `json:"speedup_vs_1_worker"`
}

// Report is the BENCH_flood.json schema.
type Report struct {
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`

	FloodPeers   int          `json:"flood_peers"`
	FloodTTL     int          `json:"flood_ttl"`
	Flood        []FloodBench `json:"flood"`
	FloodSpeedup float64      `json:"flood_speedup_ns"`
	AllocsRatio  float64      `json:"flood_allocs_ratio"`

	Fig8Scale string      `json:"fig8_scale"`
	Fig8Nodes int         `json:"fig8_nodes"`
	Fig8      []Fig8Point `json:"fig8"`

	Note string `json:"note"`
}

func main() {
	testing.Init() // register -test.* flags so benchtime is adjustable
	var (
		out       = flag.String("o", "BENCH_flood.json", "output file")
		peers     = flag.Int("peers", 2000, "network size for the flood micro-benchmark")
		scaleName = flag.String("scale", "tiny", "scale for the Fig8 worker sweep (tiny|small|default|full)")
		benchtime = flag.Duration("benchtime", time.Second, "target duration per micro-benchmark")
	)
	flag.Parse()

	rep := Report{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		FloodPeers: *peers,
		FloodTTL:   4,
		Note: "flood rows compare the optimised FloodCtx against the " +
			"pre-optimisation map-based algorithm on the same network and " +
			"query stream; fig8 speedups are bounded above by gomaxprocs.",
	}

	nw, criteria := buildNet(*peers)
	fmt.Fprintf(os.Stderr, "qc-bench: flood micro-benchmark, %d peers, ttl %d\n", *peers, rep.FloodTTL)
	naive := runBench("flood_naive_map", *benchtime, func(b *testing.B) {
		r := rng.New(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := floodBaseline(nw, i%*peers, criteria, 4, r); err != nil {
				b.Fatal(err)
			}
		}
	})
	ctx := nw.NewFloodCtx()
	opt := runBench("flood_ctx", *benchtime, func(b *testing.B) {
		r := rng.New(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ctx.Flood(i%*peers, criteria, 4, r); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.Flood = []FloodBench{naive, opt}
	if opt.NsPerOp > 0 {
		rep.FloodSpeedup = naive.NsPerOp / opt.NsPerOp
	}
	if opt.AllocsPerOp > 0 {
		rep.AllocsRatio = float64(naive.AllocsPerOp) / float64(opt.AllocsPerOp)
	}
	fmt.Fprintf(os.Stderr, "qc-bench: naive %.0f ns/op %d allocs/op; ctx %.0f ns/op %d allocs/op (%.2fx ns, %.1fx allocs)\n",
		naive.NsPerOp, naive.AllocsPerOp, opt.NsPerOp, opt.AllocsPerOp, rep.FloodSpeedup, rep.AllocsRatio)

	scale, err := qc.ParseScale(*scaleName)
	if err != nil {
		fail(err)
	}
	rep.Fig8Scale = *scaleName
	for _, workers := range []int{1, 2, 4, 8} {
		env := qc.NewEnv(scale, 42)
		env.Workers = workers
		start := time.Now()
		f8, err := qc.Fig8(env)
		if err != nil {
			fail(err)
		}
		secs := time.Since(start).Seconds()
		rep.Fig8Nodes = f8.Nodes
		pt := Fig8Point{Workers: workers, Seconds: secs, Speedup: 1}
		if len(rep.Fig8) > 0 && secs > 0 {
			pt.Speedup = rep.Fig8[0].Seconds / secs
		}
		rep.Fig8 = append(rep.Fig8, pt)
		fmt.Fprintf(os.Stderr, "qc-bench: fig8 %s workers=%d %.2fs (%.2fx)\n", *scaleName, workers, secs, pt.Speedup)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "qc-bench: wrote %s\n", *out)
}

// runBench adapts testing.Benchmark to a FloodBench row.
func runBench(name string, d time.Duration, fn func(b *testing.B)) FloodBench {
	prev := flag.Lookup("test.benchtime")
	if prev != nil {
		prev.Value.Set(d.String())
	}
	r := testing.Benchmark(fn)
	return FloodBench{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// buildNet constructs the benchmark network (the same configuration as
// BenchmarkFloodOnce) and returns a criteria string that hits.
func buildNet(peers int) (*gnet.Network, string) {
	cat, err := catalog.Build(catalog.Config{
		Seed: 5, Peers: peers, UniqueObjects: peers * 25, ReplicaAlpha: 2.45,
		VariantProb: 0.05, NonSpecificPeerFrac: 0.03,
	})
	if err != nil {
		fail(err)
	}
	nw, err := gnet.NewFromCatalog(gnet.DefaultConfig(5), cat)
	if err != nil {
		fail(err)
	}
	criteria := ""
	for _, p := range nw.Peers {
		p.Match("warmup") // build term indexes outside the timed region
		if criteria == "" && len(p.Library) > 0 {
			criteria = p.Library[0].Name
		}
	}
	return nw, criteria
}

// floodBaseline replays the pre-optimisation flood on a fault-free,
// QRP-free network through the exported API: a fresh seen map per flood,
// one Decode per delivered envelope and one Encode per forwarding peer.
// TestFloodMatchesNaiveReference (internal/gnet) pins this algorithm's
// equivalence with the optimised path.
func floodBaseline(nw *gnet.Network, origin int, criteria string, ttl int, r *rng.Source) (*gnet.FloodResult, error) {
	guid := gmsg.GUIDFromUint64s(r.Uint64(), r.Uint64())
	q := &gmsg.Message{
		Header: gmsg.Header{GUID: guid, Type: gmsg.TypeQuery, TTL: byte(ttl)},
		Query:  &gmsg.Query{Criteria: criteria},
	}
	res := &gnet.FloodResult{GUID: guid, Criteria: criteria, TTL: ttl}
	seen := map[int]bool{origin: true}
	type envelope struct {
		to  int
		raw []byte
	}
	frontier := make([]envelope, 0, len(nw.Peers[origin].Neighbors))
	raw, err := gmsg.Encode(q)
	if err != nil {
		return nil, err
	}
	for _, nb := range nw.Peers[origin].Neighbors {
		frontier = append(frontier, envelope{to: nb, raw: raw})
		res.Messages++
	}
	for len(frontier) > 0 {
		var next []envelope
		for _, env := range frontier {
			if seen[env.to] {
				continue
			}
			seen[env.to] = true
			m, _, err := gmsg.Decode(env.raw)
			if err != nil {
				return nil, err
			}
			res.PeersReached++
			peer := nw.Peers[env.to]
			if files := peer.Match(m.Query.Criteria); len(files) > 0 {
				hit := gnet.Hit{PeerID: env.to, Hops: int(m.Header.Hops) + 1}
				for _, f := range files {
					hit.Files = append(hit.Files, gmsg.Result{
						FileIndex: f.Index, FileSize: f.Size, FileName: f.Name,
					})
				}
				res.Hits = append(res.Hits, hit)
				res.TotalResults += len(files)
			}
			if m.Header.TTL <= 1 {
				continue
			}
			if nw.Config.UltrapeerFrac > 0 && !peer.Ultrapeer {
				continue
			}
			fwd := *m
			fwd.Header.TTL--
			fwd.Header.Hops++
			fraw, err := gmsg.Encode(&fwd)
			if err != nil {
				return nil, err
			}
			for _, nb := range peer.Neighbors {
				if !seen[nb] {
					next = append(next, envelope{to: nb, raw: fraw})
					res.Messages++
				}
			}
		}
		frontier = next
	}
	return res, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "qc-bench:", err)
	os.Exit(1)
}
