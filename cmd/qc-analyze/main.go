// Command qc-analyze runs the paper's analyses over trace files produced
// by qc-crawl, qc-itunes and qc-queries.
//
// Modes:
//
//	qc-analyze -mode replicas  -in crawl.trace [-sanitize]
//	qc-analyze -mode terms     -in crawl.trace
//	qc-analyze -mode annotations -in itunes.trace
//	qc-analyze -mode stability -in queries.trace [-interval 3600]
//	qc-analyze -mode mismatch  -in queries.trace -crawl crawl.trace
//	qc-analyze -mode transients -in queries.trace [-interval 3600]
//
// Output is tab-separated series on stdout with a human summary on stderr.
package main

import (
	"flag"
	"fmt"
	"os"

	qc "querycentric"
	"querycentric/internal/cliflags"
)

func main() {
	var (
		mode     = flag.String("mode", "replicas", "replicas|terms|annotations|stability|mismatch|transients")
		in       = flag.String("in", "", "input trace file")
		crawlIn  = flag.String("crawl", "", "object trace (mismatch mode)")
		sanitize = flag.Bool("sanitize", false, "sanitize names (replicas mode, Figure 2)")
		interval = flag.Int64("interval", 3600, "evaluation interval in seconds")
		obsFlags = cliflags.AddObs(flag.CommandLine, "qc-analyze")
	)
	flag.Parse()
	if *in == "" {
		fail(fmt.Errorf("missing -in"))
	}
	if err := cliflags.CheckPositiveSeconds("-interval", *interval); err != nil {
		fail(err)
	}
	reg, _ := obsFlags.Setup()
	switch *mode {
	case "replicas", "terms":
		tr := readObjects(*in)
		reg.Gauge("analyze_object_records").Set(int64(len(tr.Records)))
		var rep *qc.DistReport
		if *mode == "terms" {
			rep = qc.TermPeers(tr)
		} else {
			rep = qc.Replicas(tr, *sanitize)
		}
		fmt.Fprintf(os.Stderr, "%s: %s ≤37peers=%.2f%% ≥20peers=%.2f%%\n",
			*mode, rep, 100*rep.FracAtMost(37), 100*rep.FracAtLeast(20))
		fmt.Println("# rank\tcount")
		for _, p := range rep.RankFreq() {
			fmt.Printf("%d\t%d\n", p.Rank, p.Count)
		}
	case "annotations":
		tr := readSongs(*in)
		reg.Gauge("analyze_song_records").Set(int64(len(tr.Records)))
		for _, a := range []qc.Annotation{qc.AnnotationSong, qc.AnnotationGenre, qc.AnnotationAlbum, qc.AnnotationArtist} {
			rep, err := qc.Annotations(tr, a)
			if err != nil {
				fail(err)
			}
			fmt.Printf("%s\tunique=%d\tsingleton=%.3f\tmissing=%.3f\tzipf_s=%.2f\n",
				a, rep.Unique, rep.SingletonFrac, rep.MissingFrac, rep.Fit.S)
		}
	case "stability":
		qt := readQueries(*in)
		reg.Gauge("analyze_query_records").Set(int64(len(qt.Records)))
		cfg := qc.DefaultIntervalConfig()
		cfg.Interval = *interval
		ivs, err := qc.Intervals(qt, cfg)
		if err != nil {
			fail(err)
		}
		fmt.Println("# start\tjaccard")
		for _, p := range qc.StabilitySeries(ivs) {
			fmt.Printf("%d\t%.4f\n", p.Start, p.Value)
		}
	case "mismatch":
		if *crawlIn == "" {
			fail(fmt.Errorf("mismatch mode needs -crawl"))
		}
		qt := readQueries(*in)
		tr := readObjects(*crawlIn)
		reg.Gauge("analyze_query_records").Set(int64(len(qt.Records)))
		reg.Gauge("analyze_object_records").Set(int64(len(tr.Records)))
		cfg := qc.DefaultIntervalConfig()
		cfg.Interval = *interval
		ivs, err := qc.Intervals(qt, cfg)
		if err != nil {
			fail(err)
		}
		fstar := qc.TopTerms(qc.RankedFileTerms(tr), 500)
		fmt.Println("# start\tpopular_vs_fstar\tall_vs_fstar")
		all := qc.AllTermsMismatchSeries(ivs, fstar)
		for i, p := range qc.MismatchSeries(ivs, fstar) {
			fmt.Printf("%d\t%.4f\t%.4f\n", p.Start, p.Value, all[i].Value)
		}
	case "transients":
		qt := readQueries(*in)
		reg.Gauge("analyze_query_records").Set(int64(len(qt.Records)))
		pts, err := qc.Transients(qt, *interval, qc.DefaultTransientConfig())
		if err != nil {
			fail(err)
		}
		sum := qc.TransientSummary(pts)
		fmt.Fprintf(os.Stderr, "transients: %s\n", sum)
		fmt.Println("# start\tcount")
		for _, p := range pts {
			fmt.Printf("%d\t%d\n", p.Start, p.Count)
		}
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}
	if path, err := obsFlags.WriteManifest(*mode, "", 0, 1); err != nil {
		fail(err)
	} else if path != "" {
		fmt.Fprintf(os.Stderr, "qc-analyze: wrote %s\n", path)
	}
}

func readObjects(path string) *qc.ObjectTrace {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	tr, err := qc.ReadObjectTrace(f)
	if err != nil {
		fail(err)
	}
	return tr
}

func readSongs(path string) *qc.SongTrace {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	tr, err := qc.ReadSongTrace(f)
	if err != nil {
		fail(err)
	}
	return tr
}

func readQueries(path string) *qc.QueryTrace {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	tr, err := qc.ReadQueryTrace(f)
	if err != nil {
		fail(err)
	}
	return tr
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "qc-analyze:", err)
	os.Exit(1)
}
