module querycentric

go 1.23
