package querycentric_test

import (
	"bytes"
	"testing"

	qc "querycentric"
)

func TestFacadeGnutellaCrawl(t *testing.T) {
	tr, st, err := qc.GnutellaCrawl(qc.GnutellaCrawlConfig{
		Seed: 1, Peers: 100, UniqueObjects: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Crawled != 100 {
		t.Errorf("crawled %d", st.Crawled)
	}
	rep := qc.Replicas(tr, false)
	if rep.Unique == 0 || rep.SingletonFrac == 0 {
		t.Errorf("degenerate report: %v", rep)
	}
	// Round-trip through the trace format.
	var buf bytes.Buffer
	if err := qc.WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := qc.ReadObjectTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != len(tr.Records) {
		t.Errorf("round trip lost records: %d vs %d", len(back.Records), len(tr.Records))
	}
}

func TestFacadeITunesCrawl(t *testing.T) {
	tr, st, err := qc.ITunesCrawl(qc.ITunesCrawlConfig{Seed: 2, Shares: 40, UniqueSongs: 1200})
	if err != nil {
		t.Fatal(err)
	}
	if st.Collected == 0 || len(tr.Records) == 0 {
		t.Fatalf("degenerate crawl: %s", st)
	}
	rep, err := qc.Annotations(tr, qc.AnnotationArtist)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unique == 0 {
		t.Error("no artists")
	}
}

func TestFacadeQueryPipeline(t *testing.T) {
	tr, _, err := qc.GnutellaCrawl(qc.GnutellaCrawlConfig{Seed: 3, Peers: 80, UniqueObjects: 1500})
	if err != nil {
		t.Fatal(err)
	}
	qt, err := qc.QueryWorkload(qc.QueryWorkloadConfig{
		Seed: 4, Queries: 12000, Duration: 8 * 3600,
		FileTerms: qc.RankedFileTermStrings(tr),
	})
	if err != nil {
		t.Fatal(err)
	}
	ivs, err := qc.Intervals(qt, qc.DefaultIntervalConfig())
	if err != nil {
		t.Fatal(err)
	}
	stab := qc.StabilitySeries(ivs)
	if len(stab) == 0 {
		t.Fatal("empty stability series")
	}
	fstar := qc.TopTerms(qc.RankedFileTerms(tr), 300)
	mis := qc.MismatchSeries(ivs, fstar)
	if len(mis) != len(ivs) {
		t.Fatalf("mismatch series length %d", len(mis))
	}
}

func TestFacadeTracker(t *testing.T) {
	cfg := qc.DefaultTrackerConfig()
	cfg.Interval = 60
	var closes int
	tr, err := qc.NewTracker(cfg, func(*qc.IntervalReport) { closes++ })
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 300; i += 10 {
		if err := tr.Observe(i, "stable query terms"); err != nil {
			t.Fatal(err)
		}
	}
	tr.Flush()
	if closes == 0 {
		t.Error("no intervals closed")
	}
}

func TestFacadeSimulation(t *testing.T) {
	g, err := qc.NewGnutellaOverlay(800, qc.DefaultGnutellaOverlay(), 5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := qc.ZipfPlacement(800, 100, 2.45, 80, 6)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := qc.NewSearchEngine(g, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Flood(0, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	hy, err := qc.NewHybrid(g, p, 7)
	if err != nil {
		t.Fatal(err)
	}
	hres, err := hy.Search(0, 0, qc.DefaultHybridConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !hres.Found {
		t.Error("hybrid failed to find a published object")
	}
}

func TestFacadeTokenization(t *testing.T) {
	toks := qc.Tokenize("Aaron Neville - I Don't Know Much.mp3")
	if len(toks) == 0 {
		t.Fatal("no tokens")
	}
	if qc.Sanitize("A-B c") != "abc" {
		t.Error("sanitize broken")
	}
	if qc.Jaccard(map[string]struct{}{"a": {}}, map[string]struct{}{"a": {}}) != 1 {
		t.Error("jaccard broken")
	}
}

func TestFacadeScale(t *testing.T) {
	s, err := qc.ParseScale("tiny")
	if err != nil || s != qc.ScaleTiny {
		t.Fatalf("ParseScale: %v %v", s, err)
	}
}
