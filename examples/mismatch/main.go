// Mismatch: the paper's central finding, end to end. Crawl a content
// population, generate a week of queries, and show that (a) the popular
// query vocabulary is stable over time (Figure 6) while (b) it barely
// overlaps the popular file vocabulary (Figure 7).
//
//	go run ./examples/mismatch
package main

import (
	"fmt"
	"log"

	qc "querycentric"
)

func main() {
	// Content side: crawl the synthetic network.
	crawl, _, err := qc.GnutellaCrawl(qc.GnutellaCrawlConfig{
		Seed: 11, Peers: 200, UniqueObjects: 6000,
	})
	if err != nil {
		log.Fatal(err)
	}
	ranked := qc.RankedFileTerms(crawl)
	fmt.Printf("crawl: %d records, %d distinct file terms\n", len(crawl.Records), len(ranked))

	// Query side: a 2-day workload whose vocabulary weakly overlaps the
	// file terms, as measured in the real network.
	queries, err := qc.QueryWorkload(qc.QueryWorkloadConfig{
		Seed: 12, Queries: 60000, Duration: 48 * 3600,
		FileTerms: qc.RankedFileTermStrings(crawl),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d queries over %d hours\n\n", len(queries.Records), queries.Duration/3600)

	ivs, err := qc.Intervals(queries, qc.DefaultIntervalConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Figure 6: stability of the popular query vocabulary.
	stab := qc.StabilitySeries(ivs)
	var stabSum float64
	n := 0
	for i, p := range stab {
		if i < 2 {
			continue // warmup, as in the paper
		}
		stabSum += p.Value
		n++
	}
	fmt.Printf("Figure 6 — popular-term stability: mean Jaccard %.2f (paper: >0.90)\n", stabSum/float64(n))

	// Figure 7: the query/file vocabulary mismatch.
	fstar := qc.TopTerms(ranked, 500)
	mis := qc.MismatchSeries(ivs, fstar)
	var misSum float64
	for i, p := range mis {
		if i < 2 {
			continue
		}
		misSum += p.Value
	}
	fmt.Printf("Figure 7 — query-vs-file similarity: mean Jaccard %.2f (paper: <0.20)\n\n",
		misSum/float64(len(mis)-2))

	fmt.Println("conclusion: the terms users query for are stable, but they are")
	fmt.Println("not the terms files are annotated with — flooding for popular")
	fmt.Println("queries fails even though the queries themselves never change.")
}
