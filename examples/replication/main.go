// Replication: the paper's thesis through the lens of classical
// replica-allocation theory (Cohen & Shenker). A fixed replica budget is
// spread over objects by uniform, proportional and square-root rules — but
// the rules need a popularity vector, and the paper shows deployed systems
// see *file* popularity while success is scored under *query* popularity.
//
//	go run ./examples/replication
package main

import (
	"fmt"
	"log"

	qc "querycentric"
)

func main() {
	env := qc.NewEnv(qc.ScaleTiny, 99)
	res, err := qc.ReplicationStrategies(env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d nodes, %d-replica budget, TTL-2 floods, query-weighted success\n\n",
		res.Nodes, res.Budget)
	fmt.Printf("%-14s %-18s %s\n", "strategy", "popularity basis", "success")
	for _, row := range res.Rows {
		fmt.Printf("%-14s %-18s %.1f%%\n", row.Strategy, row.Basis, 100*row.Success)
	}
	fmt.Println(`
reading the table:
  - driven by QUERY popularity, smarter allocations beat uniform;
  - driven by FILE popularity (same Zipf shape, mismatched ranks — the
    paper's Figure 7), the same strategies fall to or below uniform.
Replication policy cannot fix unstructured search unless the overlay is
query-centric: it must observe what users ask for, not what files are
annotated with.`)
}
