// Hybridsearch: the paper's Section V implication. On the same
// Gnutella-like overlay, compare plain flooding, hybrid search (flood TTL-3
// then DHT, per Loo et al.) and a pure Chord DHT, under the uniform
// placement prior work assumed versus the Zipf placement the paper
// measured.
//
//	go run ./examples/hybridsearch
package main

import (
	"fmt"
	"log"

	qc "querycentric"
)

const (
	nodes   = 4000
	objects = 250
	trials  = 300
)

func main() {
	g, err := qc.NewGnutellaOverlay(nodes, qc.DefaultGnutellaOverlay(), 21)
	if err != nil {
		log.Fatal(err)
	}

	// The two placements: the uniform 0.1% model vs the measured Zipf.
	uniform, err := qc.UniformPlacement(nodes, objects, nodes/1000, 22)
	if err != nil {
		log.Fatal(err)
	}
	zipf, err := qc.ZipfPlacement(nodes, objects, 2.45, nodes/10, 22)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placements: uniform %.1f replicas/object, zipf %.1f replicas/object\n\n",
		uniform.MeanReplicas(), zipf.MeanReplicas())

	for _, tc := range []struct {
		name  string
		place *qc.Placement
	}{
		{"uniform-0.1%", uniform},
		{"zipf (measured)", zipf},
	} {
		eng, err := qc.NewSearchEngine(g, tc.place)
		if err != nil {
			log.Fatal(err)
		}
		rate, err := eng.SuccessRate(3, trials, func(r *qc.RNG) int { return r.Intn(objects) }, 23)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("flood TTL-3 success under %-16s %.1f%%\n", tc.name+":", 100*rate)
	}
	fmt.Println("\n(the paper: ~62% predicted under uniform-0.1%, ~5% measured under Zipf)")

	// Hybrid vs DHT under the Zipf placement.
	hy, err := qc.NewHybrid(g, zipf, 24)
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := hy.Compare(qc.DefaultHybridConfig(), trials,
		func(r *qc.RNG) int { return r.Intn(objects) }, 25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhybrid search: success %.1f%%, mean cost %.0f msgs, DHT fallback on %.0f%% of queries\n",
		100*cmp.HybridSuccess, cmp.HybridMeanCost, 100*cmp.DHTFallbackFrac)
	fmt.Printf("pure DHT:      success %.1f%%, mean cost %.0f msgs\n",
		100*cmp.DHTSuccess, cmp.DHTMeanCost)
	fmt.Println("\nconclusion: under the real replica distribution the hybrid's flood")
	fmt.Println("almost never gathers enough results, so it pays flooding AND DHT")
	fmt.Println("cost — worse than a DHT alone, as the paper argues.")
}
