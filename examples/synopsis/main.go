// Synopsis: the paper's proposed direction (§VII / reference [9]). Peers
// advertise bounded Bloom-filter synopses of their content terms; an online
// popularity Tracker watches the query stream; adaptive peers spend their
// advertisement budget on the currently popular query terms.
//
//	go run ./examples/synopsis
package main

import (
	"fmt"
	"log"

	qc "querycentric"
)

const (
	nodes  = 400
	rounds = 5
)

func main() {
	// Content: per-peer term sets from a crawled population.
	crawl, _, err := qc.GnutellaCrawl(qc.GnutellaCrawlConfig{
		Seed: 31, Peers: nodes, UniqueObjects: 12000,
	})
	if err != nil {
		log.Fatal(err)
	}
	content := make([][]string, nodes)
	seen := make([]map[string]bool, nodes)
	for i := range seen {
		seen[i] = map[string]bool{}
	}
	for _, rec := range crawl.Records {
		for _, tok := range qc.Tokenize(rec.Name) {
			if !seen[rec.Peer][tok] && len(content[rec.Peer]) < 100 {
				seen[rec.Peer][tok] = true
				content[rec.Peer] = append(content[rec.Peer], tok)
			}
		}
	}
	g, err := qc.NewErdosRenyiOverlay(nodes, 8, 32)
	if err != nil {
		log.Fatal(err)
	}

	// Queries target a drifting window of mid-ranked file terms.
	ranked := qc.RankedFileTerms(crawl)
	hot := func(round int, r *qc.RNG) string {
		return ranked[150+round*10+r.Intn(20)].Term
	}

	for _, adaptive := range []bool{false, true} {
		cfg := qc.DefaultSynopsisConfig(33)
		cfg.SynopsisTerms = 16
		cfg.Adaptive = adaptive
		net, err := qc.NewSynopsisNetwork(g, content, cfg)
		if err != nil {
			log.Fatal(err)
		}
		tcfg := qc.DefaultTrackerConfig()
		tcfg.Interval = 1
		tracker, err := qc.NewTracker(tcfg, nil)
		if err != nil {
			log.Fatal(err)
		}
		r := qc.NewRNG(34)
		hits, trials := 0, 0
		for round := 0; round < rounds; round++ {
			for i := 0; i < 400; i++ {
				term := hot(round, r)
				if round > 0 {
					res, err := net.Search(r.Intn(nodes), []string{term}, 4)
					if err != nil {
						log.Fatal(err)
					}
					if res.Found {
						hits++
					}
					trials++
				}
				if err := tracker.Observe(int64(round), term); err != nil {
					log.Fatal(err)
				}
			}
			tracker.Flush()
			// The query-centric step: re-advertise what users ask for.
			if err := net.SetPopular(tracker.PopularTerms()); err != nil {
				log.Fatal(err)
			}
		}
		mode := "static  "
		if adaptive {
			mode = "adaptive"
		}
		fmt.Printf("%s synopses: %.1f%% of queries answered within TTL 4\n",
			mode, 100*float64(hits)/float64(trials))
	}
	fmt.Println("\nconclusion: spending the advertisement budget on currently popular")
	fmt.Println("query terms — not on whatever the files happen to be annotated")
	fmt.Println("with — is what makes bounded synopses effective.")
}
