// Quickstart: build a small synthetic Gnutella population, crawl it over
// the wire protocol, and reproduce the paper's headline Figure 1 numbers —
// the Zipf long tail of object replication.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	qc "querycentric"
)

func main() {
	// 1. Crawl a 200-peer network sharing 5,000 distinct objects.
	tr, stats, err := qc.GnutellaCrawl(qc.GnutellaCrawlConfig{
		Seed:          7,
		Peers:         200,
		UniqueObjects: 5000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crawl: %s\n", stats)
	fmt.Printf("observed %d (peer, file) records\n\n", len(tr.Records))

	// 2. Figure 1: how many peers hold each distinct name?
	rep := qc.Replicas(tr, false)
	fmt.Println("Figure 1 — object-name replica distribution")
	fmt.Printf("  unique names:        %d\n", rep.Unique)
	fmt.Printf("  singleton fraction:  %.1f%%  (paper: 70.5%%)\n", 100*rep.SingletonFrac)
	fmt.Printf("  on ≤37 peers:        %.1f%%  (paper: 99.5%%)\n", 100*rep.FracAtMost(37))
	fmt.Printf("  Zipf exponent (fit): %.2f (R²=%.2f)\n\n", rep.Fit.S, rep.Fit.R2)

	// 3. Figure 2: sanitization merges case/punctuation variants.
	san := qc.Replicas(tr, true)
	fmt.Println("Figure 2 — after sanitizing names")
	fmt.Printf("  unique names:        %d (merged %d variants)\n", san.Unique, rep.Unique-san.Unique)
	fmt.Printf("  singleton fraction:  %.1f%%  (paper: 69.8%%)\n\n", 100*san.SingletonFrac)

	// 4. The rank-frequency head: the few names that are everywhere.
	fmt.Println("most replicated names:")
	for i, p := range rep.RankFreq() {
		if i == 5 {
			break
		}
		fmt.Printf("  rank %d: on %d peers\n", p.Rank, p.Count)
	}

	// 5. The §VI consequence: almost nothing is replicated enough for
	// flooding to find it.
	fmt.Printf("\nobjects on ≥20 peers: %.2f%% (paper: <4%% — too few for hybrid flooding)\n",
		100*rep.FracAtLeast(20))
}
