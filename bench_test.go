// Benchmarks: one per table and figure of the paper (run with
// `go test -bench=. -benchmem`), plus ablation benches for the design
// choices DESIGN.md calls out. Each benchmark pre-builds the shared traces
// outside the timer and then measures the experiment itself at the tiny
// scale; use cmd/qc-figures for full-scale numbers.
package querycentric_test

import (
	"fmt"
	"testing"

	qc "querycentric"
)

// benchEnv returns an environment whose shared artifacts are already
// built, so the timed region measures only the experiment.
func benchEnv(b *testing.B, needQueries, needSongs bool) *qc.Env {
	b.Helper()
	e := qc.NewEnv(qc.ScaleTiny, 42)
	if _, _, err := e.ObjectTrace(); err != nil {
		b.Fatal(err)
	}
	if needQueries {
		if _, err := e.Workload(); err != nil {
			b.Fatal(err)
		}
	}
	if needSongs {
		if _, _, err := e.SongTrace(); err != nil {
			b.Fatal(err)
		}
	}
	return e
}

func BenchmarkFig1Replicas(b *testing.B) {
	e := benchEnv(b, false, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qc.Fig1(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2Sanitized(b *testing.B) {
	e := benchEnv(b, false, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qc.Fig2(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3Terms(b *testing.B) {
	e := benchEnv(b, false, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qc.Fig3(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4Annotations(b *testing.B) {
	e := benchEnv(b, false, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qc.Fig4(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5Transients(b *testing.B) {
	e := benchEnv(b, true, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qc.Fig5(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Stability(b *testing.B) {
	e := benchEnv(b, true, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qc.Fig6(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7Mismatch(b *testing.B) {
	e := benchEnv(b, true, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qc.Fig7(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableTTLCoverage(b *testing.B) {
	e := benchEnv(b, false, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qc.TTLCoverage(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8FloodSuccess(b *testing.B) {
	e := benchEnv(b, false, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qc.Fig8(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8Parallel measures the Figure 8 runner across worker-pool
// sizes; the results are byte-identical at every size, so the sweep reads
// purely as a wall-clock/scalability curve (bounded by available cores).
func BenchmarkFig8Parallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := qc.NewEnv(qc.ScaleTiny, 42)
			e.Workers = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := qc.Fig8(e); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFloodOnce measures one wire-level flood on a reused context —
// the hot path under every fault-sweep and QRP trial. -benchmem makes the
// allocation win of the epoch-stamped scratch visible.
func BenchmarkFloodOnce(b *testing.B) {
	const peers = 2000
	cat, err := qc.BuildCatalog(qc.CatalogConfig{
		Seed: 5, Peers: peers, UniqueObjects: peers * 25, ReplicaAlpha: 2.45,
		VariantProb: 0.05, NonSpecificPeerFrac: 0.03,
	})
	if err != nil {
		b.Fatal(err)
	}
	nw, err := qc.NewNetworkFromCatalog(qc.DefaultNetworkConfig(5), cat)
	if err != nil {
		b.Fatal(err)
	}
	criteria := ""
	for _, p := range nw.Peers {
		if len(p.Library) > 0 {
			criteria = p.Library[0].Name
			break
		}
	}
	for _, p := range nw.Peers {
		p.Match("warmup") // build term indexes outside the timer
	}
	ctx := nw.NewFloodCtx()
	r := qc.NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Flood(i%peers, criteria, 4, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableRareObjects(b *testing.B) {
	e := benchEnv(b, false, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qc.RareObjectFraction(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHybridVsDHT(b *testing.B) {
	e := benchEnv(b, false, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qc.HybridVsDHT(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSynopsisAblation(b *testing.B) {
	e := benchEnv(b, false, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qc.SynopsisAblation(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGiaComparison(b *testing.B) {
	e := benchEnv(b, false, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qc.GiaComparison(e); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationOverlapSweep measures how the query/file vocabulary
// overlap knob drives the Figure 7 similarity (the "mismatch, not Zipf,
// drives failure" argument).
func BenchmarkAblationOverlapSweep(b *testing.B) {
	e := benchEnv(b, false, false)
	ranked, err := e.FileTerms()
	if err != nil {
		b.Fatal(err)
	}
	fileTerms := make([]string, len(ranked))
	for i, tc := range ranked {
		fileTerms[i] = tc.Term
	}
	for _, overlap := range []float64{0.05, 0.5, 0.9} {
		b.Run(benchName("overlap", overlap), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				qt, err := qc.QueryWorkload(qc.QueryWorkloadConfig{
					Seed: 7, Queries: 10000, Duration: 8 * 3600, FileTerms: fileTerms,
				})
				if err != nil {
					b.Fatal(err)
				}
				ivs, err := qc.Intervals(qt, qc.DefaultIntervalConfig())
				if err != nil {
					b.Fatal(err)
				}
				_ = qc.MismatchSeries(ivs, qc.TopTerms(ranked, 300))
				_ = overlap
			}
		})
	}
}

// BenchmarkAblationTopologyFamilies compares TTL coverage across topology
// families (two-tier vs flat random vs power-law).
func BenchmarkAblationTopologyFamilies(b *testing.B) {
	const n = 2000
	builders := map[string]func() (*qc.Graph, error){
		"gnutella-two-tier": func() (*qc.Graph, error) {
			return qc.NewGnutellaOverlay(n, qc.DefaultGnutellaOverlay(), 1)
		},
		"erdos-renyi":     func() (*qc.Graph, error) { return qc.NewErdosRenyiOverlay(n, 8, 1) },
		"barabasi-albert": func() (*qc.Graph, error) { return qc.NewBarabasiAlbert(n, 4, 1) },
	}
	for name, build := range builders {
		g, err := build()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := qc.CoverageStats(g, 5, 20, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSanitization isolates the cost and effect of the
// Figure 1 vs Figure 2 sanitization pass.
func BenchmarkAblationSanitization(b *testing.B) {
	e := benchEnv(b, false, false)
	tr, _, err := e.ObjectTrace()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("raw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			qc.Replicas(tr, false)
		}
	})
	b.Run("sanitized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			qc.Replicas(tr, true)
		}
	})
}

// BenchmarkTracePipeline measures the end-to-end collection path (catalog →
// network → wire crawl).
func BenchmarkTracePipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := qc.GnutellaCrawl(qc.GnutellaCrawlConfig{
			Seed: uint64(i), Peers: 100, UniqueObjects: 2000,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchName(prefix string, v float64) string {
	switch {
	case v < 0.1:
		return prefix + "-low"
	case v < 0.6:
		return prefix + "-mid"
	default:
		return prefix + "-high"
	}
}

// BenchmarkDHTRouting measures the structured baselines' lookup costs
// (Chord vs Pastry).
func BenchmarkDHTRouting(b *testing.B) {
	e := benchEnv(b, false, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qc.DHTRouting(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQRPEffect measures the deployed-QRP ablation (message savings
// without success gains under the mismatch).
func BenchmarkQRPEffect(b *testing.B) {
	e := benchEnv(b, false, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qc.QRPEffect(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChurnComparison measures the churn experiment.
func BenchmarkChurnComparison(b *testing.B) {
	e := benchEnv(b, false, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qc.ChurnComparison(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWalkVsFlood measures the mechanism comparison.
func BenchmarkWalkVsFlood(b *testing.B) {
	e := benchEnv(b, false, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qc.WalkVsFlood(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplicationStrategies measures the allocation-strategy ablation.
func BenchmarkReplicationStrategies(b *testing.B) {
	e := benchEnv(b, false, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qc.ReplicationStrategies(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShortcutsExperiment measures the interest-shortcuts extension.
func BenchmarkShortcutsExperiment(b *testing.B) {
	e := benchEnv(b, false, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qc.ShortcutsExperiment(e); err != nil {
			b.Fatal(err)
		}
	}
}
