// Package querycentric reproduces "On the need for query-centric
// unstructured peer-to-peer overlays" (Acosta & Chandra, IPPS 2008): the
// trace substrates (a wire-level Gnutella network + crawler, a DAAP/iTunes
// share population + crawler, a temporal query-workload generator), the
// paper's analyses (replica/term/annotation distributions, popular-term
// stability, transient popularity, the query/file term mismatch), the
// search simulations (flooding, random walks, Chord, hybrid, Gia, adaptive
// synopses) and one experiment runner per table and figure.
//
// This package is the public facade: it re-exports the curated surface of
// the internal packages through type aliases and constructors, so examples
// and downstream users never import querycentric/internal/... directly.
//
// # Quick start
//
//	env := querycentric.NewEnv(querycentric.ScaleTiny, 42)
//	fig1, err := querycentric.Fig1(env)   // crawl + replica analysis
//	fig6, err := querycentric.Fig6(env)   // popular-term stability
//	fig8, err := querycentric.Fig8(env)   // flood success simulation
//
// See examples/ for runnable programs and DESIGN.md for the system map.
package querycentric

import (
	"io"

	"querycentric/internal/capacity"
	"querycentric/internal/events"
	"querycentric/internal/experiments"
	"querycentric/internal/faults"
	"querycentric/internal/obs"
)

// Observability plane (see internal/obs): a deterministic metrics/event
// layer every subsystem can publish into. Disabled (nil) it costs nothing
// and changes nothing; enabled, its snapshots are byte-identical at every
// worker count.
type (
	Registry       = obs.Registry
	Snapshot       = obs.Snapshot
	SnapshotMetric = obs.SnapshotMetric
	MetricBucket   = obs.Bucket
	FloodTraces    = obs.FloodTraces
	FloodTrace     = obs.FloodTrace
	RunManifest    = obs.Manifest
	PhaseTiming    = obs.PhaseTiming
	WindowLog      = obs.WindowLog
	WindowSeries   = obs.WindowSeries
	WindowPoint    = obs.WindowPoint
)

// Observability constructors and helpers.
var (
	NewRegistry    = obs.NewRegistry
	NewFloodTraces = obs.NewFloodTraces
	NewWindowLog   = obs.NewWindowLog
	RunFileName    = obs.RunFileName
)

// Result is implemented by every experiment result type: a stable name
// and the tab-separated table qc-sim and qc-figures render. Table()[0] is
// the header row (without the leading "# ").
type Result = experiments.Result

// WriteResultTable renders a Result as a commented-header TSV table.
func WriteResultTable(w io.Writer, r Result) error { return experiments.WriteTable(w, r) }

// Scale selects experiment sizing (tiny/small/default/full/1m).
type Scale = experiments.Scale

// Scales from smoke test to paper scale and beyond (Scale1M is the
// million-peer substrate scale served by the sharded build + mapped load).
const (
	ScaleTiny    = experiments.ScaleTiny
	ScaleSmall   = experiments.ScaleSmall
	ScaleDefault = experiments.ScaleDefault
	ScaleFull    = experiments.ScaleFull
	Scale1M      = experiments.Scale1M
)

// ParseScale parses "tiny", "small", "default", "full" or "1m".
func ParseScale(s string) (Scale, error) { return experiments.ParseScale(s) }

// Env builds and memoizes the shared experiment artifacts (crawled traces,
// query workload) for one (scale, seed).
type Env = experiments.Env

// NewEnv creates an experiment environment.
func NewEnv(scale Scale, seed uint64) *Env { return experiments.NewEnv(scale, seed) }

// Experiment result types, one per table/figure (see DESIGN.md §4).
type (
	DistResult        = experiments.DistResult
	Fig4Result        = experiments.Fig4Result
	Fig5Result        = experiments.Fig5Result
	Fig6Result        = experiments.Fig6Result
	Fig7Result        = experiments.Fig7Result
	Fig8Result        = experiments.Fig8Result
	Fig8Curve         = experiments.Fig8Curve
	TTLCoverageResult = experiments.TTLCoverageResult
	HybridVsDHTResult = experiments.HybridVsDHTResult
	SynopsisResult    = experiments.SynopsisResult
	GiaResult         = experiments.GiaResult
	RareObjectResult  = experiments.RareObjectResult
)

// Fig1 reproduces Figure 1 (object-name replica distribution).
func Fig1(e *Env) (*DistResult, error) { return experiments.Fig1(e) }

// Fig2 reproduces Figure 2 (sanitized-name replica distribution).
func Fig2(e *Env) (*DistResult, error) { return experiments.Fig2(e) }

// Fig3 reproduces Figure 3 (per-term peer distribution).
func Fig3(e *Env) (*DistResult, error) { return experiments.Fig3(e) }

// Fig4 reproduces Figure 4(a–d) (iTunes annotation distributions).
func Fig4(e *Env) (*Fig4Result, error) { return experiments.Fig4(e) }

// Fig5 reproduces Figure 5 (transiently popular terms per interval).
func Fig5(e *Env) (*Fig5Result, error) { return experiments.Fig5(e) }

// Fig5Intervals are the evaluation intervals swept by Fig5 (seconds).
var Fig5Intervals = experiments.Fig5Intervals

// Fig6 reproduces Figure 6 (popular-term stability).
func Fig6(e *Env) (*Fig6Result, error) { return experiments.Fig6(e) }

// Fig7 reproduces Figure 7 (query/file term mismatch).
func Fig7(e *Env) (*Fig7Result, error) { return experiments.Fig7(e) }

// Fig8 reproduces Figure 8 (flood success, uniform vs Zipf placement).
func Fig8(e *Env) (*Fig8Result, error) { return experiments.Fig8(e) }

// TTLCoverage reproduces the §V TTL/coverage table.
func TTLCoverage(e *Env) (*TTLCoverageResult, error) { return experiments.TTLCoverage(e) }

// HybridVsDHT reproduces the §V/§VII hybrid-vs-DHT comparison.
func HybridVsDHT(e *Env) (*HybridVsDHTResult, error) { return experiments.HybridVsDHT(e) }

// SynopsisAblation runs the §VII adaptive-synopsis extension experiment.
func SynopsisAblation(e *Env) (*SynopsisResult, error) { return experiments.SynopsisAblation(e) }

// GiaComparison reproduces the §VI Gia rebuttal.
func GiaComparison(e *Env) (*GiaResult, error) { return experiments.GiaComparison(e) }

// RareObjectFraction reproduces the §VI "<4% of objects on ≥20 peers" check.
func RareObjectFraction(e *Env) (*RareObjectResult, error) {
	return experiments.RareObjectFraction(e)
}

// DHTRoutingResult compares Chord and Pastry lookup costs.
type DHTRoutingResult = experiments.DHTRoutingResult

// DHTRouting measures mean lookup hops of the two structured baselines.
func DHTRouting(e *Env) (*DHTRoutingResult, error) { return experiments.DHTRouting(e) }

// QRPResult shows QRP's effect: message savings without success gains.
type QRPResult = experiments.QRPResult

// QRPEffect floods one workload with and without QRP route tables.
func QRPEffect(e *Env) (*QRPResult, error) { return experiments.QRPEffect(e) }

// ChurnResult compares search availability under session churn.
type ChurnResult = experiments.ChurnResult

// ChurnComparison runs the churn experiment (uniform vs Zipf placement).
func ChurnComparison(e *Env) (*ChurnResult, error) { return experiments.ChurnComparison(e) }

// WalkVsFloodResult compares unstructured search mechanisms.
type WalkVsFloodResult = experiments.WalkVsFloodResult

// WalkVsFlood compares flooding, random walks and the expanding ring.
func WalkVsFlood(e *Env) (*WalkVsFloodResult, error) { return experiments.WalkVsFlood(e) }

// ReplicationResult is the allocation-strategy ablation.
type ReplicationResult = experiments.ReplicationResult

// ReplicationStrategies measures uniform/proportional/square-root replica
// allocation driven by query vs file popularity.
func ReplicationStrategies(e *Env) (*ReplicationResult, error) {
	return experiments.ReplicationStrategies(e)
}

// ShortcutsResult is the interest-based-shortcuts extension.
type ShortcutsResult = experiments.ShortcutsResult

// ShortcutsExperiment measures interest-based shortcuts under stable and
// shifting query popularity.
func ShortcutsExperiment(e *Env) (*ShortcutsResult, error) {
	return experiments.ShortcutsExperiment(e)
}

// FaultSweepResult sweeps substrate fault rates against crawl coverage and
// flood success (the robustness experiment).
type (
	FaultSweepResult = experiments.FaultSweepResult
	FaultPoint       = experiments.FaultPoint
	FaultSweepConfig = experiments.FaultSweepConfig
)

// FaultSweep crawls and floods one population under increasing substrate
// fault rates, quantifying the trace bias a lossy network introduces into
// Figures 1–4 and the Figure 8 flood-success degradation.
func FaultSweep(e *Env) (*FaultSweepResult, error) { return experiments.FaultSweep(e) }

// FaultSweepWith runs the fault sweep with explicit rates, churn-derived
// dead-peer fraction and crawler attempt budget.
func FaultSweepWith(e *Env, cfg FaultSweepConfig) (*FaultSweepResult, error) {
	return experiments.FaultSweepWith(e, cfg)
}

// ChurnRepair types: the self-healing-overlay experiment (churn-driven
// departures, ping/pong failure detection, host-cache topology repair).
type (
	ChurnRepairResult = experiments.ChurnRepairResult
	ChurnRepairSample = experiments.ChurnRepairSample
	ChurnRepairConfig = experiments.ChurnRepairConfig
)

// DefaultChurnRepairConfig returns the standard churn-repair schedule.
func DefaultChurnRepairConfig(seed uint64) ChurnRepairConfig {
	return experiments.DefaultChurnRepairConfig(seed)
}

// ChurnRepair replays one churn timeline against the overlay with and
// without the maintenance protocol, measuring how much of the flood-success
// loss self-healing recovers.
func ChurnRepair(e *Env) (*ChurnRepairResult, error) { return experiments.ChurnRepair(e) }

// ChurnRepairWith runs the churn-repair comparison with explicit timeline,
// repair and measurement parameters.
func ChurnRepairWith(e *Env, cfg ChurnRepairConfig) (*ChurnRepairResult, error) {
	return experiments.ChurnRepairWith(e, cfg)
}

// Discrete-event simulation layer (see internal/events): a deterministic
// timestamped priority queue onto which churn, fault bursts, overlay
// maintenance and query floods are scheduled as interleaved events, with
// windowed metrics streamed through the observability plane. The scenario
// constructors package the canonical long-horizon workloads.
type (
	EventEngine    = events.Engine
	EventPriority  = events.Priority
	EventHandler   = events.Handler
	Scenario       = events.Scenario
	ScenarioKind   = events.Kind
	ScenarioConfig = events.ScenarioConfig
	ScenarioResult = events.ScenarioResult
	ScenarioWindow = events.Window
	FlashConfig    = events.FlashConfig
	FaultBurst     = faults.Burst
)

// Event priorities (same-timestamp execution order) and scenario kinds.
const (
	PrioChurn  = events.PrioChurn
	PrioFault  = events.PrioFault
	PrioMaint  = events.PrioMaint
	PrioAdapt  = events.PrioAdapt
	PrioQuery  = events.PrioQuery
	PrioWindow = events.PrioWindow

	SteadyState   = events.SteadyState
	FaultRecovery = events.FaultRecovery
	FlashCrowd    = events.FlashCrowd
	DiurnalLoad   = events.DiurnalLoad
)

// Event-engine constructors and canonical scenario configurations.
var (
	NewEventEngine        = events.New
	NewScenario           = events.NewScenario
	SteadyStateScenario   = events.SteadyStateScenario
	FaultRecoveryScenario = events.FaultRecoveryScenario
	FlashCrowdScenario    = events.FlashCrowdScenario
	DiurnalScenario       = events.DiurnalScenario
	ValidateBursts        = faults.ValidateBursts
)

// Recovery types: the fault-burst recovery experiment on the event engine
// (correlated crash, windowed success, time-to-recover with and without
// the maintenance protocol).
type (
	RecoveryResult = experiments.RecoveryResult
	RecoveryConfig = experiments.RecoveryConfig
)

// DefaultRecoveryConfig returns the standard recovery schedule (30% crash
// one third into a two-hour run).
func DefaultRecoveryConfig(seed uint64) RecoveryConfig {
	return experiments.DefaultRecoveryConfig(seed)
}

// Recovery measures the overlay's recovery curve after a correlated crash
// burst, with and without maintenance.
func Recovery(e *Env) (*RecoveryResult, error) { return experiments.Recovery(e) }

// RecoveryWith runs the recovery comparison with explicit burst, window
// and repair parameters.
func RecoveryWith(e *Env, cfg RecoveryConfig) (*RecoveryResult, error) {
	return experiments.RecoveryWith(e, cfg)
}

// Bounded-capacity overload plane (see internal/capacity): per-peer
// ingress queues with configurable depth and service cost, pluggable
// shedding policies and per-peer circuit breakers, attached to a network
// via Network.SetCapacity or ScenarioConfig.Capacity. Inert by default: a
// nil plane (or disabled config) leaves every run byte-identical to the
// unbounded substrate.
type (
	CapacityConfig = capacity.Config
	CapacityPlane  = capacity.Plane
	CapacityStats  = capacity.Stats
	ShedPolicy     = capacity.Policy
)

// Shedding policies.
const (
	ShedUnbounded = capacity.Unbounded
	ShedDropTail  = capacity.DropTail
	ShedRED       = capacity.RED
	ShedTTLAware  = capacity.TTLAware
)

// Capacity-plane constructors.
var (
	NewCapacityPlane      = capacity.New
	DefaultCapacityConfig = capacity.DefaultConfig
	ParseShedPolicy       = capacity.ParsePolicy
)

// Saturation types: the flash-crowd overload sweep comparing shedding
// policies against the unbounded-queue assumption.
type (
	SaturationResult = experiments.SaturationResult
	SaturationConfig = experiments.SaturationConfig
	SaturationArm    = experiments.SaturationArm
	SaturationPoint  = experiments.SaturationPoint
)

// DefaultSaturationConfig returns the standard saturation sweep (a 9x
// offered-load range over a one-hour flash crowd).
func DefaultSaturationConfig(seed uint64) SaturationConfig {
	return experiments.DefaultSaturationConfig(seed)
}

// Saturation sweeps the flash-crowd scenario over offered load for every
// capacity arm.
func Saturation(e *Env) (*SaturationResult, error) { return experiments.Saturation(e) }

// SaturationWith runs the sweep with explicit loads, queue model and
// shedding arms.
func SaturationWith(e *Env, cfg SaturationConfig) (*SaturationResult, error) {
	return experiments.SaturationWith(e, cfg)
}

// SweepPoint is one evaluation-interval setting's mean statistic.
type SweepPoint = experiments.SweepPoint

// Fig6Sweep repeats Figure 6 across evaluation intervals.
func Fig6Sweep(e *Env) ([]SweepPoint, error) { return experiments.Fig6Sweep(e) }

// Fig7Sweep repeats Figure 7 across evaluation intervals.
func Fig7Sweep(e *Env) ([]SweepPoint, error) { return experiments.Fig7Sweep(e) }
