// API freeze: the exported surface of package querycentric is pinned in
// API.txt. Any change to the public API fails this test until API.txt is
// regenerated (and the change therefore shows up in review):
//
//	go test -run TestAPIFrozen -update-api
package querycentric_test

import (
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"sort"
	"strings"
	"testing"
)

var updateAPI = flag.Bool("update-api", false, "rewrite API.txt with the current exported surface")

// apiSurface type-checks package querycentric from its compiled export
// data and renders one sorted line per exported object (plus the exported
// method sets of the named types the root package exposes).
func apiSurface(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "list", "-deps", "-export", "-f", "{{.ImportPath}}={{.Export}}", ".").Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			t.Fatalf("go list -export: %v\n%s", err, ee.Stderr)
		}
		t.Fatalf("go list -export: %v", err)
	}
	exports := map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		path, file, ok := strings.Cut(line, "=")
		if ok && file != "" {
			exports[path] = file
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	pkg, err := imp.Import("querycentric")
	if err != nil {
		t.Fatalf("importing querycentric: %v", err)
	}

	qual := types.RelativeTo(pkg)
	var lines []string
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if !obj.Exported() {
			continue
		}
		lines = append(lines, types.ObjectString(obj, qual))
		// Pin the exported method set reachable through each type name,
		// so renaming a method on an internal type re-exported via an
		// alias still changes the frozen surface.
		tn, ok := obj.(*types.TypeName)
		if !ok {
			continue
		}
		if _, ok := tn.Type().Underlying().(*types.Interface); ok {
			continue // methods already printed in the interface type
		}
		ms := types.NewMethodSet(types.NewPointer(tn.Type()))
		for i := 0; i < ms.Len(); i++ {
			m := ms.At(i).Obj()
			if !m.Exported() {
				continue
			}
			sig := types.TypeString(m.Type(), qual)
			lines = append(lines, fmt.Sprintf("method (%s) %s%s", name, m.Name(), strings.TrimPrefix(sig, "func")))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

func TestAPIFrozen(t *testing.T) {
	if testing.Short() {
		t.Skip("API freeze shells out to go list; skipped in -short mode")
	}
	got := apiSurface(t)
	if *updateAPI {
		if err := os.WriteFile("API.txt", []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("API.txt updated (%d lines)", strings.Count(got, "\n"))
		return
	}
	want, err := os.ReadFile("API.txt")
	if err != nil {
		t.Fatalf("reading API.txt (regenerate with -update-api): %v", err)
	}
	if got == string(want) {
		return
	}
	gotLines := strings.Split(strings.TrimSuffix(got, "\n"), "\n")
	wantLines := strings.Split(strings.TrimSuffix(string(want), "\n"), "\n")
	gotSet := map[string]bool{}
	for _, l := range gotLines {
		gotSet[l] = true
	}
	wantSet := map[string]bool{}
	for _, l := range wantLines {
		wantSet[l] = true
	}
	for _, l := range wantLines {
		if !gotSet[l] {
			t.Errorf("removed from API: %s", l)
		}
	}
	for _, l := range gotLines {
		if !wantSet[l] {
			t.Errorf("added to API: %s", l)
		}
	}
	t.Error("public API changed; review the diff and regenerate with: go test -run TestAPIFrozen -update-api")
}
