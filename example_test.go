package querycentric_test

import (
	"fmt"

	qc "querycentric"
)

// ExampleGnutellaCrawl shows the shortest path from nothing to the
// paper's Figure 1 statistic: crawl a synthetic network and measure how
// many objects live on a single peer.
func ExampleGnutellaCrawl() {
	tr, stats, err := qc.GnutellaCrawl(qc.GnutellaCrawlConfig{
		Seed: 1, Peers: 100, UniqueObjects: 2000,
	})
	if err != nil {
		panic(err)
	}
	rep := qc.Replicas(tr, false)
	fmt.Println("peers crawled:", stats.Crawled)
	fmt.Println("singleton majority:", rep.SingletonFrac > 0.5)
	// Output:
	// peers crawled: 100
	// singleton majority: true
}

// ExampleNewTracker demonstrates the online query-centric engine: feed a
// query stream, read back the interval's popular terms.
func ExampleNewTracker() {
	cfg := qc.DefaultTrackerConfig()
	cfg.Interval = 60
	cfg.MinPopularCount = 3
	tracker, err := qc.NewTracker(cfg, nil)
	if err != nil {
		panic(err)
	}
	for i := int64(0); i < 10; i++ {
		tracker.Observe(i, "madonna music")
	}
	tracker.Observe(30, "rare zebra")
	tracker.Flush()
	pop := tracker.Popular()
	_, madonna := pop["madonna"]
	_, zebra := pop["zebra"]
	fmt.Println("madonna popular:", madonna)
	fmt.Println("zebra popular:", zebra)
	// Output:
	// madonna popular: true
	// zebra popular: false
}

// ExampleTokenize shows the protocol tokenization the analyses use.
func ExampleTokenize() {
	fmt.Println(qc.Tokenize("Aaron Neville - I Don't Know Much.mp3"))
	// Output:
	// [aaron neville don know much mp3]
}

// ExampleSanitize shows the Figure 2 name normalization.
func ExampleSanitize() {
	fmt.Println(qc.Sanitize("AARON Neville- I Dont Know Much.MP3"))
	// Output:
	// aaronnevilleidontknowmuchmp3
}

// ExampleZipfPlacement builds the measured-style replica placement and
// reports its headline property.
func ExampleZipfPlacement() {
	p, err := qc.ZipfPlacement(1000, 500, 2.45, 100, 7)
	if err != nil {
		panic(err)
	}
	single := 0
	for _, c := range p.ReplicaCounts() {
		if c == 1 {
			single++
		}
	}
	fmt.Println("most objects single-copy:", single > 250)
	// Output:
	// most objects single-copy: true
}
