package querycentric

import (
	"io"

	"querycentric/internal/analysis"
	"querycentric/internal/catalog"
	"querycentric/internal/crawler"
	"querycentric/internal/daap"
	"querycentric/internal/faults"
	"querycentric/internal/gnet"
	"querycentric/internal/querygen"
	"querycentric/internal/trace"
)

// FaultConfig holds the injectable substrate fault probabilities; the zero
// value disables every fault (see internal/faults).
type FaultConfig = faults.Config

// FaultPlane is a deterministic fault-injection engine attachable to the
// wire substrate.
type FaultPlane = faults.Plane

// NewFaultPlane builds a fault plane for a configuration.
var NewFaultPlane = faults.New

// Trace record and container types (tab-separated text on disk; see
// internal/trace for the format).
type (
	ObjectRecord = trace.ObjectRecord
	ObjectTrace  = trace.ObjectTrace
	SongRecord   = trace.SongRecord
	SongTrace    = trace.SongTrace
	QueryRecord  = trace.QueryRecord
	QueryTrace   = trace.QueryTrace
)

// Trace IO.
var (
	ReadObjectTrace = trace.ReadObjectTrace
	ReadSongTrace   = trace.ReadSongTrace
	ReadQueryTrace  = trace.ReadQueryTrace
)

// CrawlStats is the Gnutella crawl funnel.
type CrawlStats = crawler.Stats

// ShareCrawlStats is the iTunes share crawl funnel.
type ShareCrawlStats = daap.CrawlStats

// GnutellaCrawlConfig sizes a synthetic Gnutella crawl.
type GnutellaCrawlConfig struct {
	Seed           uint64
	Peers          int
	UniqueObjects  int
	FirewalledFrac float64
	// Faults configures injected substrate faults (dial timeouts,
	// handshake stalls, resets, message loss, peer departures). The zero
	// value injects nothing and leaves the crawl byte-identical to the
	// fault-free substrate.
	Faults FaultConfig
	// MaxAttempts bounds the crawler's per-peer attempt budget for
	// transient failures (0 → the crawler default of 3).
	MaxAttempts int
}

// GnutellaCrawl builds a calibrated content population, stands up the
// in-process Gnutella network, runs the Cruiser-like crawler against it
// over the real wire format, and returns the observed object trace.
func GnutellaCrawl(cfg GnutellaCrawlConfig) (*ObjectTrace, *CrawlStats, error) {
	cat, err := catalog.Build(catalog.Config{
		Seed:                cfg.Seed,
		Peers:               cfg.Peers,
		UniqueObjects:       cfg.UniqueObjects,
		ReplicaAlpha:        2.45,
		VariantProb:         0.08,
		NonSpecificPeerFrac: 0.05,
	})
	if err != nil {
		return nil, nil, err
	}
	gcfg := gnet.DefaultConfig(cfg.Seed)
	gcfg.FirewalledFrac = cfg.FirewalledFrac
	nw, err := gnet.NewFromCatalog(gcfg, cat)
	if err != nil {
		return nil, nil, err
	}
	if cfg.Faults.Enabled() {
		nw.SetFaults(faults.New(cfg.Faults))
	}
	ccfg := crawler.DefaultConfig()
	ccfg.Seed = cfg.Seed
	if cfg.MaxAttempts > 0 {
		ccfg.MaxAttempts = cfg.MaxAttempts
	}
	return crawler.Crawl(nw, ccfg)
}

// ITunesCrawlConfig sizes a synthetic iTunes share crawl.
type ITunesCrawlConfig struct {
	Seed        uint64
	Shares      int
	UniqueSongs int
}

// ITunesCrawl builds the share population (with the paper's
// password/busy/firewall funnel), crawls it over HTTP+DMAP, and returns
// the observed song trace.
func ITunesCrawl(cfg ITunesCrawlConfig) (*SongTrace, *ShareCrawlStats, error) {
	dcfg := daap.DefaultConfig(cfg.Seed)
	if cfg.Shares > 0 {
		dcfg.Shares = cfg.Shares
	}
	if cfg.UniqueSongs > 0 {
		dcfg.UniqueSongs = cfg.UniqueSongs
	}
	pop, err := daap.BuildPopulation(dcfg)
	if err != nil {
		return nil, nil, err
	}
	return daap.Crawl(pop)
}

// QueryWorkloadConfig sizes a synthetic query workload.
type QueryWorkloadConfig struct {
	Seed     uint64
	Queries  int
	Duration int64 // seconds; 0 ⇒ one week
	// FileTerms, when non-nil, is the ranked file-term vocabulary the
	// workload should (weakly) overlap — normally RankedFileTerms of a
	// crawl (the Figure 7 coupling).
	FileTerms []string
}

// QueryWorkload generates the temporal query trace: stable popular core,
// transient bursts, Zipf tail, low file-term overlap.
func QueryWorkload(cfg QueryWorkloadConfig) (*QueryTrace, error) {
	qcfg := querygen.DefaultConfig(cfg.Seed)
	if cfg.Queries > 0 {
		qcfg.Queries = cfg.Queries
	}
	if cfg.Duration > 0 {
		qcfg.Duration = cfg.Duration
	}
	qcfg.FileTerms = cfg.FileTerms
	w, err := querygen.Generate(qcfg)
	if err != nil {
		return nil, err
	}
	return w.Trace, nil
}

// RankedFileTermStrings returns the file terms of an object trace ranked
// by popularity (most popular first).
func RankedFileTermStrings(tr *ObjectTrace) []string {
	ranked := analysis.RankedFileTerms(tr)
	out := make([]string, len(ranked))
	for i, tc := range ranked {
		out[i] = tc.Term
	}
	return out
}

// WriteTrace writes any of the three trace kinds to w.
func WriteTrace(w io.Writer, t interface{ Write(io.Writer) error }) error {
	return t.Write(w)
}
