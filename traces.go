package querycentric

import (
	"io"

	"querycentric/internal/analysis"
	"querycentric/internal/catalog"
	"querycentric/internal/crawler"
	"querycentric/internal/daap"
	"querycentric/internal/dict"
	"querycentric/internal/faults"
	"querycentric/internal/gnet"
	"querycentric/internal/querygen"
	"querycentric/internal/snapshot"
	"querycentric/internal/trace"
)

// Wire-level Gnutella substrate: the in-process network the crawler and
// flood experiments run against (see internal/gnet).
type (
	Network       = gnet.Network
	NetworkConfig = gnet.Config
	Addr          = gnet.Addr
	FloodCtx      = gnet.FloodCtx
	FloodResult   = gnet.FloodResult
	FloodHit      = gnet.Hit
)

// Wire-substrate constructors.
var (
	DefaultNetworkConfig  = gnet.DefaultConfig
	NewNetworkFromCatalog = gnet.NewFromCatalog
)

// Network snapshot persistence (see internal/snapshot): a fully built
// network — topology, libraries, interned dictionary, compressed posting
// indexes — round-trips through a versioned, SHA-256-fingerprinted flat
// file. Loading is an order of magnitude faster than rebuilding, and a
// restored network behaves byte-identically to the one saved.
//
// LoadNetworkSnapshotMapped memory-maps a version-2 snapshot read-only and
// serves file names and posting arenas zero-copy from the mapping (the
// network reports Borrowed and Close releases the mapping);
// LoadNetworkSnapshotPreferMapped falls back to the copying loader for
// version-1 files.
var (
	SaveNetworkSnapshot             = snapshot.Save
	LoadNetworkSnapshot             = snapshot.Load
	LoadNetworkSnapshotMapped       = snapshot.LoadMapped
	LoadNetworkSnapshotPreferMapped = snapshot.LoadPreferMapped
)

// Shard-and-spill snapshot construction (see internal/snapshot): build a
// population of any size directly into a snapshot file while holding only
// one bounded shard of peers (plus the shared dictionary) in memory. The
// output is byte-identical to SaveNetworkSnapshot over the equivalent
// in-heap build.
type (
	SnapshotBuildConfig = snapshot.BuildConfig
	SnapshotBuildStats  = snapshot.BuildStats
)

// BuildShardedSnapshot runs a shard-and-spill build.
var BuildShardedSnapshot = snapshot.BuildSharded

// DefaultSnapshotShardSize is the peers-per-shard bound a zero
// SnapshotBuildConfig.ShardSize resolves to.
const DefaultSnapshotShardSize = snapshot.DefaultShardSize

// SnapshotVersion is the snapshot format revision this build reads and
// writes.
const SnapshotVersion = snapshot.Version

// Snapshot failure sentinels (match with errors.Is): every way a snapshot
// file can be unusable is a distinct, loud error.
var (
	ErrSnapshotFormat      = snapshot.ErrFormat
	ErrSnapshotVersion     = snapshot.ErrVersion
	ErrSnapshotTruncated   = snapshot.ErrTruncated
	ErrSnapshotCorrupt     = snapshot.ErrCorrupt
	ErrSnapshotFingerprint = snapshot.ErrFingerprint
)

// Content catalog: the calibrated synthetic population a network is built
// from (see internal/catalog).
type (
	Catalog       = catalog.Catalog
	CatalogConfig = catalog.Config
)

// BuildCatalog builds a calibrated content catalog.
var BuildCatalog = catalog.Build

// Overlay maintenance: ping/pong failure detection and host-cache repair
// (see internal/gnet's Maintainer).
type (
	Maintainer   = gnet.Maintainer
	RepairConfig = gnet.RepairConfig
	RepairStats  = gnet.RepairStats
	HostCache    = gnet.HostCache
)

// Maintenance constructors and knobs.
var (
	NewMaintainer       = gnet.NewMaintainer
	DefaultRepairConfig = gnet.DefaultRepairConfig
	NewHostCache        = gnet.NewHostCache
)

// DefaultHostCacheSize bounds a peer's candidate-address pool.
const DefaultHostCacheSize = gnet.DefaultHostCacheSize

// Term dictionary: the global interning table behind the compact
// integer-ID posting indexes (see internal/dict).
type (
	Dictionary = dict.Dict
	TermID     = dict.TermID
)

// NoTerm is the sentinel TermID for tokens absent from the dictionary.
const NoTerm = dict.NoTerm

// FaultConfig holds the injectable substrate fault probabilities; the zero
// value disables every fault (see internal/faults).
type FaultConfig = faults.Config

// FaultPlane is a deterministic fault-injection engine attachable to the
// wire substrate.
type FaultPlane = faults.Plane

// NewFaultPlane builds a fault plane for a configuration.
var NewFaultPlane = faults.New

// Trace record and container types (tab-separated text on disk; see
// internal/trace for the format).
type (
	ObjectRecord = trace.ObjectRecord
	ObjectTrace  = trace.ObjectTrace
	SongRecord   = trace.SongRecord
	SongTrace    = trace.SongTrace
	QueryRecord  = trace.QueryRecord
	QueryTrace   = trace.QueryTrace
)

// Trace IO.
var (
	ReadObjectTrace = trace.ReadObjectTrace
	ReadSongTrace   = trace.ReadSongTrace
	ReadQueryTrace  = trace.ReadQueryTrace
)

// CrawlStats is the Gnutella crawl funnel.
type CrawlStats = crawler.Stats

// ShareCrawlStats is the iTunes share crawl funnel.
type ShareCrawlStats = daap.CrawlStats

// GnutellaCrawlConfig sizes a synthetic Gnutella crawl.
type GnutellaCrawlConfig struct {
	Seed           uint64
	Peers          int
	UniqueObjects  int
	FirewalledFrac float64
	// Faults configures injected substrate faults (dial timeouts,
	// handshake stalls, resets, message loss, peer departures). The zero
	// value injects nothing and leaves the crawl byte-identical to the
	// fault-free substrate.
	Faults FaultConfig
	// MaxAttempts bounds the crawler's per-peer attempt budget for
	// transient failures (0 → the crawler default of 3).
	MaxAttempts int
	// Obs, when non-nil, receives the crawl funnel, flood counters and
	// fault-fire counts. Attaching a registry never changes the trace.
	Obs *Registry
	// FloodTraces, when non-nil alongside Obs, records a bounded
	// deterministic sample of per-flood hop traces.
	FloodTraces *FloodTraces
	// SnapshotLoad, when non-empty, restores the network from this
	// snapshot file instead of building catalog + network (Peers,
	// UniqueObjects and FirewalledFrac are then ignored — the snapshot
	// carries the population). SnapshotSave, when non-empty, persists the
	// built (or restored) network to this path before the crawl runs.
	SnapshotLoad string
	SnapshotSave string
	// SnapshotMmap restores SnapshotLoad through a read-only memory
	// mapping (zero-copy; version-1 files fall back to the copying
	// loader).
	SnapshotMmap bool
	// SnapshotShardSize, when positive with SnapshotSave and no
	// SnapshotLoad, builds the population shard-by-shard directly into the
	// snapshot file (peak memory one shard plus the dictionary), then
	// restores the network from that byte-identical file.
	SnapshotShardSize int
}

// GnutellaCrawl builds a calibrated content population, stands up the
// in-process Gnutella network, runs the Cruiser-like crawler against it
// over the real wire format, and returns the observed object trace.
func GnutellaCrawl(cfg GnutellaCrawlConfig) (*ObjectTrace, *CrawlStats, error) {
	ccat := catalog.Config{
		Seed:                cfg.Seed,
		Peers:               cfg.Peers,
		UniqueObjects:       cfg.UniqueObjects,
		ReplicaAlpha:        2.45,
		VariantProb:         0.08,
		NonSpecificPeerFrac: 0.05,
	}
	gcfg := gnet.DefaultConfig(cfg.Seed)
	gcfg.FirewalledFrac = cfg.FirewalledFrac
	var nw *gnet.Network
	saved := false
	switch {
	case cfg.SnapshotLoad != "":
		var err error
		if cfg.SnapshotMmap {
			nw, _, err = snapshot.LoadPreferMapped(cfg.SnapshotLoad, 0)
		} else {
			nw, err = snapshot.Load(cfg.SnapshotLoad, 0)
		}
		if err != nil {
			return nil, nil, err
		}
	case cfg.SnapshotShardSize > 0 && cfg.SnapshotSave != "":
		if _, err := snapshot.BuildSharded(cfg.SnapshotSave, snapshot.BuildConfig{
			Catalog:   ccat,
			Network:   gcfg,
			ShardSize: cfg.SnapshotShardSize,
		}); err != nil {
			return nil, nil, err
		}
		saved = true
		var err error
		nw, err = snapshot.Load(cfg.SnapshotSave, 0)
		if err != nil {
			return nil, nil, err
		}
	default:
		cat, err := catalog.Build(ccat)
		if err != nil {
			return nil, nil, err
		}
		nw, err = gnet.NewFromCatalog(gcfg, cat)
		if err != nil {
			return nil, nil, err
		}
	}
	if cfg.SnapshotSave != "" && !saved {
		if _, err := snapshot.Save(cfg.SnapshotSave, nw, 0); err != nil {
			return nil, nil, err
		}
	}
	if cfg.Obs != nil {
		nw.Instrument(cfg.Obs, cfg.FloodTraces)
	}
	if cfg.Faults.Enabled() {
		plane := faults.New(cfg.Faults)
		plane.Instrument(cfg.Obs)
		nw.SetFaults(plane)
	}
	ccfg := crawler.DefaultConfig()
	ccfg.Seed = cfg.Seed
	ccfg.Obs = cfg.Obs
	if cfg.MaxAttempts > 0 {
		ccfg.MaxAttempts = cfg.MaxAttempts
	}
	return crawler.Crawl(nw, ccfg)
}

// ITunesCrawlConfig sizes a synthetic iTunes share crawl.
type ITunesCrawlConfig struct {
	Seed        uint64
	Shares      int
	UniqueSongs int
}

// ITunesCrawl builds the share population (with the paper's
// password/busy/firewall funnel), crawls it over HTTP+DMAP, and returns
// the observed song trace.
func ITunesCrawl(cfg ITunesCrawlConfig) (*SongTrace, *ShareCrawlStats, error) {
	dcfg := daap.DefaultConfig(cfg.Seed)
	if cfg.Shares > 0 {
		dcfg.Shares = cfg.Shares
	}
	if cfg.UniqueSongs > 0 {
		dcfg.UniqueSongs = cfg.UniqueSongs
	}
	pop, err := daap.BuildPopulation(dcfg)
	if err != nil {
		return nil, nil, err
	}
	return daap.Crawl(pop)
}

// QueryWorkloadConfig sizes a synthetic query workload.
type QueryWorkloadConfig struct {
	Seed     uint64
	Queries  int
	Duration int64 // seconds; 0 ⇒ one week
	// FileTerms, when non-nil, is the ranked file-term vocabulary the
	// workload should (weakly) overlap — normally RankedFileTerms of a
	// crawl (the Figure 7 coupling).
	FileTerms []string
}

// QueryWorkload generates the temporal query trace: stable popular core,
// transient bursts, Zipf tail, low file-term overlap.
func QueryWorkload(cfg QueryWorkloadConfig) (*QueryTrace, error) {
	qcfg := querygen.DefaultConfig(cfg.Seed)
	if cfg.Queries > 0 {
		qcfg.Queries = cfg.Queries
	}
	if cfg.Duration > 0 {
		qcfg.Duration = cfg.Duration
	}
	qcfg.FileTerms = cfg.FileTerms
	w, err := querygen.Generate(qcfg)
	if err != nil {
		return nil, err
	}
	return w.Trace, nil
}

// RankedFileTermStrings returns the file terms of an object trace ranked
// by popularity (most popular first).
func RankedFileTermStrings(tr *ObjectTrace) []string {
	ranked := analysis.RankedFileTerms(tr)
	out := make([]string, len(ranked))
	for i, tc := range ranked {
		out[i] = tc.Term
	}
	return out
}

// WriteTrace writes any of the three trace kinds to w.
func WriteTrace(w io.Writer, t interface{ Write(io.Writer) error }) error {
	return t.Write(w)
}
