GO ?= go

.PHONY: build test vet fmt-check race determinism fuzz-smoke bench bench-events bench-snapshot recovery-smoke saturation-smoke querycentric-smoke scalefull-smoke scale1m-smoke api-freeze obs-overhead-smoke capacity-overhead-smoke ci check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fails when any file needs gofmt.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

race:
	$(GO) test -race ./...

# Byte-identical results at 1 vs 8 workers across the experiment runners,
# including the ChurnRepair repair timeline (the golden determinism check
# on overlay maintenance) and the event-engine recovery curve with its
# windowed metric series, plus the observability-plane contract: attaching
# metrics never changes results, and enabled-metrics snapshots/manifest
# fingerprints are identical at any worker count. The snapshot tests extend
# the gate to persistence: a restored network must reproduce the fresh
# build's figures byte for byte, and a damaged snapshot must fail loudly.
# The capacity tests extend it to the overload plane: a flash-crowd
# scenario with shedding and breakers enabled is byte-identical at 1 vs 8
# workers, and a disabled capacity plane is byte-identical to no plane.
determinism:
	$(GO) test -race -run 'TestWorkerCountDoesNotChangeResults|TestMetricsDoNotChangeResults|TestQueryCentricMetricsInert|TestMetricsSnapshotWorkerInvariance|TestRecoveryWindowWorkerInvariance|TestSnapshotRoundTripMatchesFreshBuild|TestSnapshotLoadFailsLoudlyInEnv' ./internal/experiments/
	$(GO) test -race -run 'TestScenarioDeterministicAndWorkerInvariant|TestCapacityScenarioWorkerInvariant|TestCapacityDisabledIsInert' ./internal/events/

# Short fuzz of the wire-message decoder, the churn-timeline generator,
# the varint posting codec and the snapshot loader: five seconds of
# mutation each must surface no panics, over-reads or contract violations
# (ordering, alternation, determinism, round-trip identity, typed errors
# on damaged bytes).
fuzz-smoke:
	$(GO) test -fuzz=FuzzDecodeMessage -fuzztime=5s -run '^$$' ./internal/gmsg
	$(GO) test -fuzz=FuzzTimelineConfig -fuzztime=5s -run '^$$' ./internal/churn
	$(GO) test -fuzz=FuzzVarintPostings -fuzztime=5s -run '^$$' ./internal/vpost
	$(GO) test -fuzz=FuzzSnapshotLoad -fuzztime=5s -run '^$$' ./internal/snapshot

# Flood hot-path, parallel-engine and term-index measurements ->
# out/BENCH_flood.json (the index section compares interned vs legacy
# string indexes at the default scale).
bench:
	$(GO) run ./cmd/qc-bench -o out/BENCH_flood.json -scale small -index-scale default

# Discrete-event engine throughput -> out/BENCH_events.json: queue-dispatch
# micro-benchmarks plus a full steady-state scenario at the small scale.
bench-events:
	$(GO) run ./cmd/qc-bench -events -o out/BENCH_events.json -scale small

# Snapshot persistence round trip -> out/BENCH_snapshot.json: build the
# default-scale network, save it, load it back — down both the copying
# read path and the zero-copy memory-mapped path — verify the restored
# index checksums and report save/load wall-clock, file size and how far
# the varint arenas compress the postings.
bench-snapshot:
	$(GO) run ./cmd/qc-bench -index-only -index-scale default -index-legacy=false \
		-snapshot-file out/net_default.qcsnap -o out/BENCH_snapshot.json

# Recovery smoke: a tiny-scale correlated-crash run through the CLI must end
# with the repaired overlay no worse than the unrepaired one.
recovery-smoke:
	@$(GO) run ./cmd/qc-sim -mode recovery -scale tiny | awk ' \
		$$1 == "#" && $$2 == "final_success" { rep = $$3; norep = $$4 } \
		END { \
			if (rep == "" || norep == "") { print "recovery-smoke: final_success row missing"; exit 1 }; \
			if (rep + 0 < norep + 0) { printf "recovery-smoke: FAIL repaired %s < no-repair %s\n", rep, norep; exit 1 }; \
			printf "recovery-smoke: ok (repaired %s >= no-repair %s)\n", rep, norep }'

# Saturation smoke: the tiny-scale flash-crowd sweep through the CLI must
# show TTL-aware shedding retaining at least 2x drop-tail's success at the
# highest swept load (loads ascend, so each arm's last table row is its
# peak). The companion inertness half of the contract — disabled-capacity
# runs byte-identical to a build without the plane — is the race-checked
# test alongside it (also part of `make determinism`).
saturation-smoke:
	@$(GO) run ./cmd/qc-sim -mode saturation -scale tiny | awk ' \
		$$1 == "ttl" { t = $$3 } \
		$$1 == "drop-tail" { d = $$3 } \
		END { \
			if (t == "" || d == "") { print "saturation-smoke: ttl or drop-tail rows missing"; exit 1 }; \
			if (t + 0 < 2 * d) { printf "saturation-smoke: FAIL ttl peak success %s < 2x drop-tail %s\n", t, d; exit 1 }; \
			printf "saturation-smoke: ok (ttl peak success %s >= 2x drop-tail %s)\n", t, d }'
	$(GO) test -run 'TestCapacityDisabledIsInert' ./internal/events/

# Query-centric smoke: the tiny-scale five-arm head-to-head through the
# CLI must show the adaptive overlay recovering at least 2x static
# flooding's TTL-3 success at no extra message cost — the paper's
# constructive claim as a CI gate. The companion determinism half of the
# contract — the full adaptation loop byte-identical at 1 vs 8 workers
# and metrics-attach changing nothing — runs as the race-checked tests
# alongside it (the worker-invariance leg is also part of
# `make determinism`).
querycentric-smoke:
	@$(GO) run ./cmd/qc-sim -mode query-centric -scale tiny | awk ' \
		$$1 == "static-flood" { ss = $$2; sm = $$3 } \
		$$1 == "adaptive" { as = $$2; am = $$3 } \
		END { \
			if (ss == "" || as == "") { print "querycentric-smoke: static-flood or adaptive rows missing"; exit 1 }; \
			if (as + 0 < 2 * ss) { printf "querycentric-smoke: FAIL adaptive success %s < 2x static %s\n", as, ss; exit 1 }; \
			if (am + 0 > sm + 0) { printf "querycentric-smoke: FAIL adaptive msgs/query %s > static %s\n", am, sm; exit 1 }; \
			printf "querycentric-smoke: ok (success %s >= 2x static %s at %s <= %s msgs/query)\n", as, ss, am, sm }'
	$(GO) test -race -run 'TestQueryCentricMetricsInert|TestWorkerInvariance' ./internal/experiments/ ./internal/adaptive/

# Paper-scale construction smoke: build the ScaleFull catalog + network +
# interned indexes (no trials, no legacy twin) under a wall-clock budget so
# regressions that push 37k-peer / 8.1M-object construction out of a CI-able
# budget are caught without running full experiments. The budget leaves
# ~2x headroom over the measured single-CPU build (see BENCH_index_full.json).
# The snapshot leg saves the built network, loads it back — copying and
# memory-mapped — and fails unless the restored checksums match, the
# copying load takes at most a tenth of the build, and the mapped load
# beats the copying one. The -sharded leg reruns the whole construction
# through the shard-and-spill pipeline and fails unless its file is
# byte-identical to the in-heap save (the paper-scale identity gate).
scalefull-smoke:
	$(GO) run ./cmd/qc-bench -index-only -index-scale full -index-legacy=false \
		-budget 10m -sharded -shard-size 8192 \
		-snapshot-file out/net_full.qcsnap -o out/BENCH_index_full.json

# Million-peer substrate smoke: shard-and-spill a 1,000,000-peer network
# straight into a snapshot (the substrate never fits on the heap — peak
# memory is one 65,536-peer shard plus the shared dictionary), restore it
# zero-copy through the memory mapping, probe it with real floods, and
# fail if build+load exceed the wall-clock budget or process peak RSS
# (VmHWM) exceeds the ceiling. Budget and ceiling leave ~2x headroom over
# the measured single-CPU run (see BENCH_index_1m.json).
scale1m-smoke:
	$(GO) run ./cmd/qc-bench -sharded-only -index-scale 1m -shard-size 65536 \
		-budget 6m -rss-ceiling-mb 6144 \
		-snapshot-file out/net_1m.qcsnap -o out/BENCH_index_1m.json

# Regenerate-and-diff check on the frozen public API surface (API.txt).
# Regenerate after an intentional API change with:
#   go test -run TestAPIFrozen -update-api .
api-freeze:
	$(GO) test -run 'TestAPIFrozen|TestNoInternalImportsOutsideFacade' .

# Metrics-overhead smoke: the flood hot path with a live registry attached
# must stay within 10% of the detached baseline (or the recorded flood_ctx
# row in out/BENCH_flood.json, whichever is looser).
obs-overhead-smoke:
	$(GO) run ./cmd/qc-bench -obs-overhead -peers 500 -benchtime 100ms \
		-o out/BENCH_flood.json

# Capacity-overhead smoke: floods with the capacity plane attached but
# disabled must stay within 5% of the no-plane baseline (or the recorded
# flood_ctx row, whichever is looser) — the inert-by-default contract as a
# perf gate. The enabled-unbounded cost is reported but not budgeted.
capacity-overhead-smoke:
	$(GO) run ./cmd/qc-bench -capacity-overhead -peers 500 -benchtime 100ms \
		-o out/BENCH_flood.json

# The CI gate: static checks, formatting, a clean build, the full suite
# under the race detector, the workers=8 determinism regression, the
# decoder, churn-timeline, posting-codec and snapshot-loader fuzz smokes,
# the fault-burst recovery smoke, the flash-crowd saturation smoke, the
# query-centric adaptive-overlay smoke, the API freeze, the metrics- and
# capacity-overhead smokes, the paper-scale construction smoke (with the
# sharded byte-identity gate) and the million-peer sharded-construction
# smoke.
ci: vet fmt-check build race determinism fuzz-smoke recovery-smoke saturation-smoke querycentric-smoke api-freeze obs-overhead-smoke capacity-overhead-smoke scalefull-smoke scale1m-smoke

check: ci

clean:
	$(GO) clean ./...
	rm -f out/*.qcsnap
