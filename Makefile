GO ?= go

.PHONY: build test vet fmt-check race determinism fuzz-smoke bench ci check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fails when any file needs gofmt.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

race:
	$(GO) test -race ./...

# Byte-identical results at 1 vs 8 workers across the experiment runners,
# including the ChurnRepair repair timeline (the golden determinism check
# on overlay maintenance).
determinism:
	$(GO) test -race -run TestWorkerCountDoesNotChangeResults ./internal/experiments/

# Short fuzz of the wire-message decoder: five seconds of mutation over the
# seeded descriptor corpus must surface no panics or over-reads.
fuzz-smoke:
	$(GO) test -fuzz=FuzzDecodeMessage -fuzztime=5s -run '^$$' ./internal/gmsg

# Flood hot-path and parallel-engine measurements -> BENCH_flood.json.
bench:
	$(GO) run ./cmd/qc-bench -o BENCH_flood.json -scale small

# The CI gate: static checks, formatting, a clean build, the full suite
# under the race detector, the workers=8 determinism regression and the
# decoder fuzz smoke.
ci: vet fmt-check build race determinism fuzz-smoke

check: ci

clean:
	$(GO) clean ./...
