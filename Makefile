GO ?= go

.PHONY: build test vet fmt-check race determinism bench ci check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fails when any file needs gofmt.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

race:
	$(GO) test -race ./...

# Byte-identical results at 1 vs 8 workers across the experiment runners.
determinism:
	$(GO) test -race -run TestWorkerCountDoesNotChangeResults ./internal/experiments/

# Flood hot-path and parallel-engine measurements -> BENCH_flood.json.
bench:
	$(GO) run ./cmd/qc-bench -o BENCH_flood.json -scale small

# The CI gate: static checks, formatting, the full suite under the race
# detector, and the workers=8 determinism regression.
ci: vet fmt-check race determinism

check: ci

clean:
	$(GO) clean ./...
