GO ?= go

.PHONY: build test vet race check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The CI gate: static checks plus the full suite under the race detector.
check: vet race

clean:
	$(GO) clean ./...
