package gnet

import (
	"reflect"
	"testing"

	"querycentric/internal/capacity"
	"querycentric/internal/faults"
	"querycentric/internal/rng"
)

// TestFloodCtxLongReuseMatchesFresh drives one context through several
// hundred consecutive floods — far past anything the trial engine batches —
// and checks every result against a fresh context on an identically
// configured twin network. This pins the epoch-stamped recycling of the
// seen/loss/capacity scratch arrays: a stale stamp surviving into a later
// epoch would show up as a suppressed delivery, a shifted loss roll or a
// phantom queue-admission attempt.
func TestFloodCtxLongReuseMatchesFresh(t *testing.T) {
	const peers = 120
	const floods = 320
	build := func() (*Network, *capacity.Plane) {
		nw := populatedNet(t, peers)
		nw.SetFaults(faults.New(faults.Config{Seed: 11, MessageLoss: 0.15}))
		cfg := capacity.DefaultConfig(11)
		cfg.QueueDepth = 6
		cfg.Policy = capacity.TTLAware
		pl, err := capacity.New(cfg, peers)
		if err != nil {
			t.Fatal(err)
		}
		nw.SetCapacity(pl)
		return nw, pl
	}
	a, pa := build()
	b, pb := build()
	ctx := a.NewFloodCtx()
	now := int64(0)
	for i := 0; i < floods; i++ {
		origin := (i * 7) % peers
		criteria := fileOf(t, a, i*13+1)
		ra, err := ctx.Flood(origin, criteria, 4, rng.New(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Flood(origin, criteria, 4, rng.New(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("flood %d: reused ctx diverged from fresh ctx:\n%+v\nvs\n%+v", i, ra, rb)
		}
		// Fold queue state on both planes every few floods so later epochs
		// run against real committed backlog (and real shedding), not a
		// forever-empty queue.
		if i%8 == 7 {
			now += 20
			pa.Commit(now)
			pa.Advance(now)
			pb.Commit(now)
			pb.Advance(now)
		}
	}
	pa.Commit(now)
	pb.Commit(now)
	sa, sb := pa.Stats(), pb.Stats()
	if sa != sb {
		t.Fatalf("capacity stats diverged: %+v vs %+v", sa, sb)
	}
	if sa.Shed == 0 {
		t.Fatal("test never exercised shedding; tighten QueueDepth")
	}
}
