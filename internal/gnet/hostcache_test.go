package gnet

import (
	"testing"

	"querycentric/internal/rng"
)

func hcAddr(i int) Addr {
	return Addr{IP: [4]byte{10, 0, byte(i >> 8), byte(i)}, Port: 6346}
}

func TestHostCacheAddDedupEvict(t *testing.T) {
	hc := NewHostCache(3)
	for i := 0; i < 3; i++ {
		if !hc.Add(hcAddr(i)) {
			t.Fatalf("Add(%d) reported duplicate on fresh cache", i)
		}
	}
	if hc.Add(hcAddr(1)) {
		t.Fatal("Add reported a duplicate address as new")
	}
	if hc.Len() != 3 {
		t.Fatalf("Len = %d, want 3", hc.Len())
	}
	// A fourth insert evicts the oldest entry (FIFO).
	hc.Add(hcAddr(3))
	if hc.Contains(hcAddr(0)) {
		t.Fatal("oldest entry survived eviction")
	}
	for i := 1; i <= 3; i++ {
		if !hc.Contains(hcAddr(i)) {
			t.Fatalf("entry %d missing after eviction", i)
		}
	}
}

func TestHostCacheRemove(t *testing.T) {
	hc := NewHostCache(4)
	for i := 0; i < 3; i++ {
		hc.Add(hcAddr(i))
	}
	if !hc.Remove(hcAddr(1)) {
		t.Fatal("Remove missed a present address")
	}
	if hc.Remove(hcAddr(1)) {
		t.Fatal("Remove reported an absent address as present")
	}
	got := hc.Addrs()
	want := []Addr{hcAddr(0), hcAddr(2)}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Addrs after Remove = %v, want %v", got, want)
	}
}

func TestHostCachePick(t *testing.T) {
	hc := NewHostCache(8)
	if _, ok := hc.Pick(rng.New(1), nil); ok {
		t.Fatal("Pick on empty cache returned a value")
	}
	for i := 0; i < 5; i++ {
		hc.Add(hcAddr(i))
	}
	// The filtered draw consumes exactly one rng value when a candidate
	// qualifies, regardless of how many candidates the filter rejects.
	only2 := func(a Addr) bool { return a == hcAddr(2) }
	r1, r2 := rng.New(7), rng.New(7)
	a, ok := hc.Pick(r1, only2)
	if !ok || a != hcAddr(2) {
		t.Fatalf("filtered Pick = %v, %v; want %v, true", a, ok, hcAddr(2))
	}
	r2.Intn(1)
	if r1.Uint64() != r2.Uint64() {
		t.Fatal("filtered Pick consumed a different stream length than one draw")
	}
	if _, ok := hc.Pick(rng.New(7), func(Addr) bool { return false }); ok {
		t.Fatal("Pick with all-rejecting filter returned a value")
	}
	// Same seed, same draw.
	b1, _ := hc.Pick(rng.New(42), nil)
	b2, _ := hc.Pick(rng.New(42), nil)
	if b1 != b2 {
		t.Fatalf("same-seed Pick disagreed: %v vs %v", b1, b2)
	}
}
