package gnet

import (
	"testing"

	"querycentric/internal/catalog"
	"querycentric/internal/rng"
)

func qrpNet(t *testing.T) *Network {
	t.Helper()
	cat, err := catalog.Build(catalog.Config{
		Seed: 17, Peers: 400, UniqueObjects: 8000, ReplicaAlpha: 2.45,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewFromCatalog(DefaultConfig(17), cat)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestQRPNoFalseNegatives(t *testing.T) {
	nw := qrpNet(t)
	// Collect some real (origin, query) pairs that succeed without QRP,
	// then verify QRP filtering never loses them.
	type probe struct {
		origin  int
		query   string
		results int
	}
	var probes []probe
	r := rng.New(18)
	for p := 0; p < 400 && len(probes) < 20; p++ {
		if len(nw.Peers[p].Library) == 0 {
			continue
		}
		name := nw.Peers[p].Library[0].Name
		toks := nw.Peers[p].Match(name)
		if len(toks) == 0 {
			continue
		}
		origin := (p + 37) % 400
		res, err := nw.Flood(origin, name, 4, r)
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalResults > 0 {
			probes = append(probes, probe{origin, name, res.TotalResults})
		}
	}
	if len(probes) < 5 {
		t.Fatalf("only %d probes gathered", len(probes))
	}
	if err := nw.EnableQRP(16); err != nil {
		t.Fatal(err)
	}
	r2 := rng.New(18)
	for _, pr := range probes {
		res, err := nw.Flood(pr.origin, pr.query, 4, r2)
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalResults < pr.results {
			t.Errorf("QRP lost results for %q: %d < %d", pr.query, res.TotalResults, pr.results)
		}
	}
}

func TestQRPSavesMessages(t *testing.T) {
	nw := qrpNet(t)
	queries := []string{
		"completely absent terms", "zanzibar xylophone quux",
		"nonexistent aaa bbb", "qqqq wwww eeee",
	}
	run := func() int {
		total := 0
		r := rng.New(19)
		for i, q := range queries {
			res, err := nw.Flood(i*13%400, q, 5, r)
			if err != nil {
				t.Fatal(err)
			}
			total += res.Messages
		}
		return total
	}
	before := run()
	if err := nw.EnableQRP(16); err != nil {
		t.Fatal(err)
	}
	after := run()
	if after >= before {
		t.Errorf("QRP did not reduce messages: %d -> %d", before, after)
	}
	// For queries matching nothing, every leaf hop should be filtered:
	// savings must be substantial (leaves are ~85% of the network).
	if float64(after) > 0.6*float64(before) {
		t.Errorf("QRP savings too small: %d -> %d", before, after)
	}
	nw.DisableQRP()
	if again := run(); again != before {
		t.Errorf("DisableQRP did not restore behaviour: %d vs %d", again, before)
	}
}

func TestQRPBrowseUnaffected(t *testing.T) {
	nw := qrpNet(t)
	if err := nw.EnableQRP(16); err != nil {
		t.Fatal(err)
	}
	// qrpAllows must never block a browse (it has no keywords).
	for p := range nw.Peers {
		if !nw.qrpAllows(p, BrowseCriteria) {
			t.Fatalf("browse blocked at peer %d", p)
		}
	}
}

func TestQRPInvalidBits(t *testing.T) {
	nw := qrpNet(t)
	if err := nw.EnableQRP(0); err == nil {
		t.Error("bits=0 accepted")
	}
}
