package gnet

import (
	"querycentric/internal/obs"
	"querycentric/internal/rng"
)

// HostCache is a bounded, deduplicated FIFO of candidate peer addresses —
// the per-servent pool a repairing peer draws replacement neighbors from.
// Deployed servents fill theirs from Pong descriptors and the handshake's
// X-Try-Ultrapeers hints; the overlay Maintainer does the same here.
//
// The cache is deterministic: insertion order is preserved, eviction is
// oldest-first, and Pick draws uniformly through the caller's rng stream.
// It is not safe for concurrent use; each peer's cache belongs to the
// single-goroutine maintenance loop.
type HostCache struct {
	capacity int
	addrs    []Addr
	index    map[Addr]struct{}

	// adds/evicts publish cache pressure to an attached observability
	// registry; nil (the default) records nothing (see Instrument).
	adds   *obs.Counter
	evicts *obs.Counter
}

// NewHostCache returns an empty cache bounded to capacity entries
// (capacity <= 0 falls back to DefaultHostCacheSize).
func NewHostCache(capacity int) *HostCache {
	if capacity <= 0 {
		capacity = DefaultHostCacheSize
	}
	return &HostCache{capacity: capacity, index: make(map[Addr]struct{}, capacity)}
}

// DefaultHostCacheSize bounds a peer's candidate pool, matching the small
// host caches deployed servents keep (tens of entries, not thousands).
const DefaultHostCacheSize = 32

// Len returns the number of cached addresses.
func (hc *HostCache) Len() int { return len(hc.addrs) }

// Contains reports whether a is cached.
func (hc *HostCache) Contains(a Addr) bool {
	_, ok := hc.index[a]
	return ok
}

// Instrument attaches add/eviction counters (either may be nil).
func (hc *HostCache) Instrument(adds, evicts *obs.Counter) {
	hc.adds, hc.evicts = adds, evicts
}

// Add inserts a, evicting the oldest entry when the cache is full. It
// reports whether the address was new.
func (hc *HostCache) Add(a Addr) bool {
	if _, dup := hc.index[a]; dup {
		return false
	}
	if len(hc.addrs) >= hc.capacity {
		oldest := hc.addrs[0]
		hc.addrs = hc.addrs[1:]
		delete(hc.index, oldest)
		hc.evicts.Inc()
	}
	hc.adds.Inc()
	hc.addrs = append(hc.addrs, a)
	hc.index[a] = struct{}{}
	return true
}

// Remove drops a from the cache (e.g. after repeated failed connection
// attempts), reporting whether it was present.
func (hc *HostCache) Remove(a Addr) bool {
	if _, ok := hc.index[a]; !ok {
		return false
	}
	delete(hc.index, a)
	for i, x := range hc.addrs {
		if x == a {
			hc.addrs = append(hc.addrs[:i], hc.addrs[i+1:]...)
			break
		}
	}
	return true
}

// Pick returns a uniformly drawn cached address for which keep returns
// true (nil keep accepts everything). The draw consumes exactly one value
// from r when any candidate qualifies, so schedules stay reproducible.
func (hc *HostCache) Pick(r *rng.Source, keep func(Addr) bool) (Addr, bool) {
	if len(hc.addrs) == 0 {
		return Addr{}, false
	}
	if keep == nil {
		return hc.addrs[r.Intn(len(hc.addrs))], true
	}
	// Filter into a scratch view first so rejected candidates don't skew
	// (or extend) the stream consumption.
	candidates := make([]Addr, 0, len(hc.addrs))
	for _, a := range hc.addrs {
		if keep(a) {
			candidates = append(candidates, a)
		}
	}
	if len(candidates) == 0 {
		return Addr{}, false
	}
	return candidates[r.Intn(len(candidates))], true
}

// Addrs returns the cached addresses in insertion order (a copy).
func (hc *HostCache) Addrs() []Addr {
	out := make([]Addr, len(hc.addrs))
	copy(out, hc.addrs)
	return out
}
