package gnet

import (
	"fmt"

	"querycentric/internal/faults"
	"querycentric/internal/gmsg"
	"querycentric/internal/obs"
	"querycentric/internal/rng"
)

// This file is the overlay-maintenance subsystem: the machinery that turns
// the frozen construction-time topology into a self-healing overlay.
//
// Three mechanisms cooperate, mirroring what deployed Gnutella servents do:
//
//   - Departure handling: a politely departing peer sends an encoded Bye
//     descriptor on every connection, so neighbors drop the edge at once. A
//     crashed peer leaves ghost edges behind — neighbors still count the
//     dead connection toward their degree and floods silently die there.
//   - Failure detection: every PingInterval seconds each live peer pings
//     its neighbors with real Ping descriptors and awaits encoded Pongs.
//     After PingTimeout consecutive silent rounds the neighbor is declared
//     dead and the edge is torn down. Ping and Pong transmissions roll the
//     fault plane's message-loss schedule, so a lossy substrate produces
//     false positives exactly as it would in deployment.
//   - Repair: peers below their target degree draw replacement candidates
//     from a bounded per-peer HostCache — seeded from handshake
//     X-Try-Ultrapeers hints and refilled from the addresses of decoded
//     Pongs — and dial them under the fault plane's transient-failure
//     discipline, with bounded retries and exponential backoff per
//     candidate.
//
// Every decision derives from an rng stream keyed by (peer, event index),
// so a maintenance run is a pure function of (topology seed, repair seed,
// event sequence): byte-identical across runs and across any worker count
// driving measurement in between maintenance phases.

// RepairConfig shapes the overlay-maintenance loop.
type RepairConfig struct {
	// Seed roots every maintenance decision stream.
	Seed uint64
	// Repair enables the active loop (failure detection + reconnection).
	// When false the maintainer only applies churn events: polite
	// departures still tear down edges (the Bye really was sent) but
	// nobody detects crashes or rebuilds degree — the "no maintenance
	// protocol" baseline.
	Repair bool
	// PingInterval is the seconds between keepalive rounds.
	PingInterval int64
	// PingTimeout is how many consecutive unanswered rounds mark a
	// neighbor dead.
	PingTimeout int
	// HostCacheSize bounds each peer's candidate pool.
	HostCacheSize int
	// ConnectAttempts bounds candidate dials per peer per repair pass
	// (the bounded-retry half of the faults discipline).
	ConnectAttempts int
	// BackoffBase is the seconds before a failed candidate is retried,
	// doubled per consecutive failure (the exponential-backoff half).
	BackoffBase int64
	// CandidateFailLimit evicts a candidate from the host cache after this
	// many consecutive failed dials.
	CandidateFailLimit int
	// Bootstrap lists well-known fallback addresses (the GWebCache role).
	// Empty picks a deterministic handful of ultrapeers at construction.
	Bootstrap []Addr
}

// DefaultRepairConfig returns the standard maintenance parameters: 30 s
// pings, two missed rounds to declare death, 32-entry host caches, three
// dials per pass backing off from 60 s.
func DefaultRepairConfig(seed uint64) RepairConfig {
	return RepairConfig{
		Seed:               seed,
		Repair:             true,
		PingInterval:       30,
		PingTimeout:        2,
		HostCacheSize:      DefaultHostCacheSize,
		ConnectAttempts:    3,
		BackoffBase:        60,
		CandidateFailLimit: 4,
	}
}

// Validate rejects configurations that cannot make progress.
func (c RepairConfig) Validate() error {
	switch {
	case c.PingInterval <= 0:
		return fmt.Errorf("gnet: repair PingInterval must be positive, got %d", c.PingInterval)
	case c.PingTimeout < 1:
		return fmt.Errorf("gnet: repair PingTimeout must be at least 1, got %d", c.PingTimeout)
	case c.HostCacheSize < 1:
		return fmt.Errorf("gnet: repair HostCacheSize must be at least 1, got %d", c.HostCacheSize)
	case c.ConnectAttempts < 1:
		return fmt.Errorf("gnet: repair ConnectAttempts must be at least 1, got %d", c.ConnectAttempts)
	case c.BackoffBase < 0:
		return fmt.Errorf("gnet: repair BackoffBase must be non-negative, got %d", c.BackoffBase)
	case c.CandidateFailLimit < 1:
		return fmt.Errorf("gnet: repair CandidateFailLimit must be at least 1, got %d", c.CandidateFailLimit)
	}
	return nil
}

// RepairStats counts maintenance activity.
type RepairStats struct {
	Departures       int // peers that went offline
	PoliteDepartures int // departures announced with a Bye
	Arrivals         int // peers that came (back) online
	PingsSent        int
	PongsReceived    int
	PingsLost        int // ping or pong dropped by the fault plane
	FailuresDetected int // edges torn down by ping timeout
	ByesReceived     int // edges torn down by a received Bye
	RepairAttempts   int // candidate dials
	RepairFailures   int // dials that failed (faulted or full)
	RepairSuccesses  int // new edges established
	HostRejected     int // cached candidates dropped before dialing (dead or self)
}

// Maintainer drives overlay maintenance for one network. It is single-
// goroutine: callers alternate maintenance (PeerUp/PeerDown/Tick) with
// read-only measurement phases. Construction installs the maintainer's
// liveness view into the network's fault plane, so floods and dials
// observe the same session state the maintainer does.
type Maintainer struct {
	nw    *Network
	cfg   RepairConfig
	plane *faults.Plane

	online  []bool
	caches  []*HostCache
	missed  []map[int]int    // consecutive silent ping rounds, per directed edge
	seq     []uint64         // per-peer event index for stream derivation
	fails   []map[Addr]int   // consecutive dial failures per candidate
	retryAt []map[Addr]int64 // earliest next dial per backed-off candidate
	base    *rng.Source
	round   int64
	stats   RepairStats

	// om mirrors the RepairStats increments into live registry counters
	// when the network is instrumented; its zero value (nil handles) is a
	// no-op, so the increments below run unconditionally.
	om maintMetrics
}

// NewMaintainer wires a maintainer to nw. initialOnline seeds the liveness
// view (nil marks everyone online; the slice is copied). If the network has
// no fault plane an inert one is attached so liveness is observable by
// floods and dials.
func NewMaintainer(nw *Network, cfg RepairConfig, initialOnline []bool) (*Maintainer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(nw.Peers)
	if initialOnline != nil && len(initialOnline) != n {
		return nil, fmt.Errorf("gnet: initial liveness covers %d peers, network has %d", len(initialOnline), n)
	}
	m := &Maintainer{
		nw:      nw,
		cfg:     cfg,
		online:  make([]bool, n),
		caches:  make([]*HostCache, n),
		missed:  make([]map[int]int, n),
		seq:     make([]uint64, n),
		fails:   make([]map[Addr]int, n),
		retryAt: make([]map[Addr]int64, n),
		base:    rng.NewNamed(cfg.Seed, "gnet/repair"),
	}
	var hostAdds, hostEvicts *obs.Counter
	if nw.obs != nil {
		m.om = newMaintMetrics(nw.obs.reg)
		hostAdds = nw.obs.reg.Counter("gnet_hostcache_adds_total")
		hostEvicts = nw.obs.reg.Counter("gnet_hostcache_evictions_total")
	}
	for i := 0; i < n; i++ {
		if initialOnline == nil {
			m.online[i] = true
		} else {
			m.online[i] = initialOnline[i]
		}
		m.caches[i] = NewHostCache(cfg.HostCacheSize)
		m.caches[i].Instrument(hostAdds, hostEvicts)
	}
	if len(m.cfg.Bootstrap) == 0 {
		m.cfg.Bootstrap = defaultBootstrap(nw)
	}
	m.seedCaches()
	m.plane = nw.Faults()
	if m.plane == nil {
		m.plane = faults.New(faults.Config{Seed: cfg.Seed})
		nw.SetFaults(m.plane)
	}
	m.plane.SetLiveness(m.online)
	return m, nil
}

// defaultBootstrap picks a deterministic handful of well-known hosts —
// ultrapeers when the topology has them — standing in for the GWebCache
// list every deployed client ships with.
func defaultBootstrap(nw *Network) []Addr {
	const want = 4
	var out []Addr
	for _, p := range nw.Peers {
		if nw.Config.UltrapeerFrac > 0 && !p.Ultrapeer {
			continue
		}
		out = append(out, p.Addr)
		if len(out) == want {
			break
		}
	}
	return out
}

// seedCaches fills each peer's host cache the way the handshake does: every
// neighbor advertises its own X-Try-Ultrapeers hints, which travel as a
// formatted header and are re-parsed on receipt.
func (m *Maintainer) seedCaches() {
	for _, p := range m.nw.Peers {
		for _, nb := range p.Neighbors {
			hints := FormatTryUltrapeers(m.nw.tryAddrs(m.nw.Peers[nb]))
			for _, a := range ParseTryUltrapeers(hints) {
				if a != p.Addr {
					m.caches[p.ID].Add(a)
				}
			}
		}
	}
}

// Online exposes the liveness view (shared, read-only for callers).
func (m *Maintainer) Online() []bool { return m.online }

// Stats returns a copy of the maintenance counters.
func (m *Maintainer) Stats() RepairStats { return m.stats }

// HostCacheOf exposes peer id's candidate pool (for tests and diagnostics).
func (m *Maintainer) HostCacheOf(id int) *HostCache { return m.caches[id] }

// stream derives the decision stream for peer id's next maintenance event.
func (m *Maintainer) stream(id int) *rng.Source {
	s := m.seq[id]
	m.seq[id]++
	return m.base.Derive(fmt.Sprintf("peer/%d/event/%d", id, s))
}

// PeerDown applies a departure event. A polite departure sends an encoded
// Bye on every live connection, so neighbors tear the edge down at once; a
// crash leaves ghost edges for the failure detector to find.
func (m *Maintainer) PeerDown(id int, polite bool) error {
	if id < 0 || id >= len(m.online) {
		return fmt.Errorf("gnet: departure of peer %d out of range", id)
	}
	if !m.online[id] {
		return nil
	}
	m.online[id] = false
	m.missed[id] = nil
	m.stats.Departures++
	m.om.departures.Inc()
	if !polite {
		return nil
	}
	m.stats.PoliteDepartures++
	m.om.politeDepartures.Inc()
	raw, err := gmsg.Encode(&gmsg.Message{
		Header: gmsg.Header{GUID: gmsg.GUIDFromUint64s(uint64(id), m.seq[id]), Type: gmsg.TypeBye, TTL: 1},
		Bye:    &gmsg.Bye{Code: gmsg.ByeCodeShutdown, Reason: "session over"},
	})
	if err != nil {
		return err
	}
	for _, nb := range append([]int(nil), m.nw.Peers[id].Neighbors...) {
		// The Bye travels the wire: each neighbor decodes the descriptor
		// before acting on it. Connections are reliable, so it always
		// arrives where a live socket exists.
		if _, _, err := gmsg.Decode(raw); err != nil {
			return fmt.Errorf("gnet: bye decode: %w", err)
		}
		m.nw.DisconnectPeers(id, nb)
		if m.missed[nb] != nil {
			delete(m.missed[nb], id)
		}
		if m.online[nb] {
			m.stats.ByesReceived++
			m.om.byesReceived.Inc()
		}
	}
	return nil
}

// PeerUp applies an arrival event at sim-time now. Under repair the
// returning peer tears down its stale half-open connections (neighbors see
// the close immediately) and bootstraps fresh ones from its host cache;
// without repair the passive substrate keeps whatever edges survived.
func (m *Maintainer) PeerUp(id int, now int64) error {
	if id < 0 || id >= len(m.online) {
		return fmt.Errorf("gnet: arrival of peer %d out of range", id)
	}
	if m.online[id] {
		return nil
	}
	m.online[id] = true
	m.missed[id] = nil
	m.stats.Arrivals++
	m.om.arrivals.Inc()
	if !m.cfg.Repair {
		return nil
	}
	for _, nb := range append([]int(nil), m.nw.Peers[id].Neighbors...) {
		m.nw.DisconnectPeers(id, nb)
		if m.missed[nb] != nil {
			delete(m.missed[nb], id)
		}
	}
	m.connectToward(id, now, m.stream(id))
	return nil
}

// Tick runs one maintenance round at sim-time now: every live peer pings
// its neighbors, times silent ones out, and repairs its degree from the
// host cache. A no-op when repair is disabled.
func (m *Maintainer) Tick(now int64) {
	if !m.cfg.Repair {
		return
	}
	m.round++
	for u := range m.nw.Peers {
		if !m.online[u] {
			continue
		}
		r := m.stream(u)
		m.pingNeighbors(u, r)
		m.connectToward(u, now, r)
	}
}

// pingSalt ties round u's ping-loss schedule to (seed, peer, round) so the
// decisions are pure functions, independent of execution interleaving.
func (m *Maintainer) pingSalt(u int) uint64 {
	return m.cfg.Seed ^ (uint64(u) * 0x9e3779b97f4a7c15) ^ (uint64(m.round) * 0xbf58476d1ce4e5b9)
}

// pingNeighbors runs peer u's keepalive round: encode one Ping, send it to
// every neighbor, count Pongs, and tear down edges that have been silent
// for PingTimeout consecutive rounds.
func (m *Maintainer) pingNeighbors(u int, r *rng.Source) {
	nw := m.nw
	neighbors := append([]int(nil), nw.Peers[u].Neighbors...)
	if len(neighbors) == 0 {
		return
	}
	ping := &gmsg.Message{
		Header: gmsg.Header{GUID: gmsg.GUIDFromUint64s(r.Uint64(), r.Uint64()), Type: gmsg.TypePing, TTL: 1},
	}
	pingRaw, err := gmsg.Encode(ping)
	if err != nil {
		panic(err) // static message shape; cannot fail
	}
	salt := m.pingSalt(u)
	for _, v := range neighbors {
		m.stats.PingsSent++
		m.om.pingsSent.Inc()
		answered := false
		if m.online[v] {
			lostPing := m.plane.MessageLossAt(salt, v, 0)
			lostPong := m.plane.MessageLossAt(salt, u, uint64(v)+1)
			// Keepalives compete for the same bounded ingress queue as
			// queries: a shed ping looks exactly like a lost one, so
			// overload degrades failure detection the way real saturation
			// does. The loss rolls above stay unconditional — they are pure
			// draws, so a disabled capacity plane changes nothing.
			if cp := nw.capacity; cp.Enabled() && !cp.AdmitPing(salt, v) {
				m.stats.PingsLost++
				m.om.pingsLost.Inc()
			} else if lostPing || lostPong {
				m.stats.PingsLost++
				m.om.pingsLost.Inc()
			} else {
				answered = true
				m.receivePongs(u, v, pingRaw)
			}
		}
		if answered {
			if m.missed[u] != nil {
				delete(m.missed[u], v)
			}
			continue
		}
		if m.missed[u] == nil {
			m.missed[u] = make(map[int]int)
		}
		m.missed[u][v]++
		if m.missed[u][v] >= m.cfg.PingTimeout {
			nw.DisconnectPeers(u, v)
			delete(m.missed[u], v)
			if m.missed[v] != nil {
				delete(m.missed[v], u)
			}
			m.stats.FailuresDetected++
			m.om.failuresDetected.Inc()
		}
	}
}

// receivePongs delivers peer v's answer to u's ping: the Ping is decoded at
// v, which responds with a Pong for itself plus cached Pongs for its
// neighbors (pong caching); u decodes each Pong and feeds the carried
// address into its host cache — the Pong address semantics that keep
// caches fresh as the overlay shifts.
func (m *Maintainer) receivePongs(u, v int, pingRaw []byte) {
	nw := m.nw
	ping, _, err := gmsg.Decode(pingRaw)
	if err != nil {
		panic(fmt.Sprintf("gnet: ping decode: %v", err))
	}
	m.stats.PongsReceived++
	m.om.pongsReceived.Inc()
	answer := func(q *Peer, hops byte) {
		raw, err := gmsg.Encode(&gmsg.Message{
			Header: gmsg.Header{GUID: ping.Header.GUID, Type: gmsg.TypePong, TTL: ping.Header.Hops + 1, Hops: hops},
			Pong: &gmsg.Pong{
				Port: q.Addr.Port, IP: q.Addr.IP,
				FilesCount: uint32(len(q.Library)),
			},
		})
		if err != nil {
			panic(err)
		}
		pong, _, err := gmsg.Decode(raw)
		if err != nil {
			panic(fmt.Sprintf("gnet: pong decode: %v", err))
		}
		m.learnAddr(u, Addr{IP: pong.Pong.IP, Port: pong.Pong.Port})
	}
	answer(nw.Peers[v], 0)
	// Deployed pong caches answer with roughly ten entries, not the whole
	// neighbor list; the first maxCachedPongs in neighbor order keeps the
	// reply bounded and deterministic.
	const maxCachedPongs = 10
	sent := 0
	for _, nb := range nw.Peers[v].Neighbors {
		if nb == u {
			continue
		}
		answer(nw.Peers[nb], 1)
		if sent++; sent >= maxCachedPongs {
			break
		}
	}
}

// learnAddr feeds a discovered address into peer u's host cache, keeping
// only viable repair candidates (ultrapeers, on two-tier topologies).
func (m *Maintainer) learnAddr(u int, a Addr) {
	p := m.nw.PeerByAddr(a)
	if p == nil || p.ID == u {
		return
	}
	if m.nw.Config.UltrapeerFrac > 0 && !p.Ultrapeer {
		return
	}
	m.caches[u].Add(a)
}

// TargetDegree exposes peer id's repair target (see targetDegree) so a
// driving simulation can observe degree deficits without duplicating the
// topology-class rules.
func (m *Maintainer) TargetDegree(id int) int { return m.targetDegree(id) }

// RepairDegree exposes peer id's repair-relevant degree (see repairDegree):
// the connection count measured against TargetDegree. Ghost edges count —
// the peer still believes in them.
func (m *Maintainer) RepairDegree(id int) int { return m.repairDegree(id) }

// targetDegree is the connection count peer u repairs toward: the same
// targets the builder wired (ultrapeer mesh degree, leaf attachment count,
// or flat degree).
func (m *Maintainer) targetDegree(u int) int {
	if m.nw.Config.UltrapeerFrac <= 0 {
		return m.nw.Config.FlatDegree
	}
	if m.nw.Peers[u].Ultrapeer {
		return m.nw.Config.UltraDegree
	}
	return LeafUltras
}

// repairDegree counts the connections that count toward peer u's repair
// target. On two-tier topologies repair maintains the ultrapeer links
// only: an ultrapeer's mesh degree excludes its attached leaves (which
// come and go on their own), and a leaf's attachments are all ultrapeers
// anyway. Flat topologies count everything.
func (m *Maintainer) repairDegree(u int) int {
	if m.nw.Config.UltrapeerFrac <= 0 {
		return len(m.nw.Peers[u].Neighbors)
	}
	d := 0
	for _, nb := range m.nw.Peers[u].Neighbors {
		if m.nw.Peers[nb].Ultrapeer {
			d++
		}
	}
	return d
}

// acceptsConnection reports whether candidate cand can take one more
// connection from u, mirroring the builder's capacity slack: the ultrapeer
// mesh is bounded (counting mesh links only), leaf attachment is not.
func (m *Maintainer) acceptsConnection(u int, cand *Peer) bool {
	if m.nw.Config.UltrapeerFrac <= 0 {
		return len(cand.Neighbors) < m.nw.Config.FlatDegree+4
	}
	if m.nw.Peers[u].Ultrapeer {
		return m.repairDegree(cand.ID) < m.nw.Config.UltraDegree+4
	}
	return true
}

// connectToward repairs peer u's degree at sim-time now: bounded candidate
// dials from the host cache, transient failures re-rolled through the
// fault plane, per-candidate exponential backoff, eviction after repeated
// failure. A successful dial performs the handshake's X-Try exchange in
// both directions, refilling both caches.
func (m *Maintainer) connectToward(u int, now int64, r *rng.Source) {
	nw := m.nw
	target := m.targetDegree(u)
	if m.repairDegree(u) >= target {
		return
	}
	if m.caches[u].Len() == 0 {
		for _, a := range m.cfg.Bootstrap {
			if a != nw.Peers[u].Addr {
				m.caches[u].Add(a)
			}
		}
	}
	self := nw.Peers[u].Addr
	keep := func(a Addr) bool {
		// Hints that resolve to the repairing peer itself or to a peer that
		// is currently offline are rejected before any dial is attempted:
		// dialing a dead address can only burn a ConnectAttempt and push
		// the candidate into backoff, so the cache screens them out (they
		// stay cached — a dead peer may return). Each screening is counted.
		if a == self {
			m.stats.HostRejected++
			m.om.hostRejected.Inc()
			return false
		}
		p := nw.PeerByAddr(a)
		if p == nil || nw.connected(u, p.ID) {
			return false
		}
		if !m.online[p.ID] {
			m.stats.HostRejected++
			m.om.hostRejected.Inc()
			return false
		}
		if at, ok := m.retryAt[u][a]; ok && now < at {
			return false
		}
		return true
	}
	for attempt := 0; attempt < m.cfg.ConnectAttempts && m.repairDegree(u) < target; attempt++ {
		addr, ok := m.caches[u].Pick(r, keep)
		if !ok {
			return
		}
		m.stats.RepairAttempts++
		m.om.repairAttempts.Inc()
		cand := nw.PeerByAddr(addr)
		if !m.plane.DialTimeout(cand.ID) && m.acceptsConnection(u, cand) {
			if err := nw.ConnectPeers(u, cand.ID); err != nil {
				panic(err) // keep filtered self and duplicates already
			}
			m.stats.RepairSuccesses++
			m.om.repairSuccesses.Inc()
			if m.fails[u] != nil {
				delete(m.fails[u], addr)
				delete(m.retryAt[u], addr)
			}
			// Handshake X-Try exchange, both directions, over the header
			// string format the wire uses.
			for _, a := range ParseTryUltrapeers(FormatTryUltrapeers(nw.tryAddrs(cand))) {
				m.learnAddr(u, a)
			}
			for _, a := range ParseTryUltrapeers(FormatTryUltrapeers(nw.tryAddrs(nw.Peers[u]))) {
				m.learnAddr(cand.ID, a)
			}
			continue
		}
		m.stats.RepairFailures++
		m.om.repairFailures.Inc()
		if m.fails[u] == nil {
			m.fails[u] = make(map[Addr]int)
			m.retryAt[u] = make(map[Addr]int64)
		}
		m.fails[u][addr]++
		if m.fails[u][addr] >= m.cfg.CandidateFailLimit {
			m.caches[u].Remove(addr)
			delete(m.fails[u], addr)
			delete(m.retryAt[u], addr)
			continue
		}
		backoff := m.cfg.BackoffBase << (m.fails[u][addr] - 1)
		m.retryAt[u][addr] = now + backoff
	}
}
