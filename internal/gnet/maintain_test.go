package gnet

import (
	"fmt"
	"testing"

	"querycentric/internal/obs"
)

// maintTestNetwork builds a small two-tier overlay with a maintainer,
// everyone initially online.
func maintTestNetwork(t *testing.T, seed uint64, cfg RepairConfig) (*Network, *Maintainer) {
	t.Helper()
	nw, err := New(DefaultConfig(seed), 120)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m, err := NewMaintainer(nw, cfg, nil)
	if err != nil {
		t.Fatalf("NewMaintainer: %v", err)
	}
	return nw, m
}

// degreeOf counts peer id's current connections.
func degreeOf(nw *Network, id int) int { return len(nw.Peers[id].Neighbors) }

func firstUltra(nw *Network) int {
	for _, p := range nw.Peers {
		if p.Ultrapeer {
			return p.ID
		}
	}
	return 0
}

func TestRepairConfigValidate(t *testing.T) {
	if err := DefaultRepairConfig(1).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*RepairConfig){
		func(c *RepairConfig) { c.PingInterval = 0 },
		func(c *RepairConfig) { c.PingTimeout = 0 },
		func(c *RepairConfig) { c.HostCacheSize = 0 },
		func(c *RepairConfig) { c.ConnectAttempts = 0 },
		func(c *RepairConfig) { c.BackoffBase = -1 },
		func(c *RepairConfig) { c.CandidateFailLimit = 0 },
	}
	for i, mutate := range bad {
		c := DefaultRepairConfig(1)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: invalid config passed Validate", i)
		}
	}
}

func TestPoliteDepartureTearsDownEdges(t *testing.T) {
	nw, m := maintTestNetwork(t, 11, DefaultRepairConfig(11))
	u := firstUltra(nw)
	neighbors := append([]int(nil), nw.Peers[u].Neighbors...)
	if len(neighbors) == 0 {
		t.Fatal("test ultrapeer has no neighbors")
	}
	if err := m.PeerDown(u, true); err != nil {
		t.Fatalf("PeerDown: %v", err)
	}
	if d := degreeOf(nw, u); d != 0 {
		t.Fatalf("polite leaver kept %d edges", d)
	}
	for _, nb := range neighbors {
		if nw.connected(u, nb) {
			t.Fatalf("neighbor %d still holds edge to polite leaver", nb)
		}
	}
	if got := m.Stats().ByesReceived; got != len(neighbors) {
		t.Fatalf("ByesReceived = %d, want %d", got, len(neighbors))
	}
	if m.Online()[u] {
		t.Fatal("departed peer still marked online")
	}
}

func TestCrashLeavesGhostEdgesUntilDetected(t *testing.T) {
	cfg := DefaultRepairConfig(12)
	cfg.PingTimeout = 2
	nw, m := maintTestNetwork(t, 12, cfg)
	u := firstUltra(nw)
	neighbors := append([]int(nil), nw.Peers[u].Neighbors...)
	if err := m.PeerDown(u, false); err != nil {
		t.Fatalf("PeerDown: %v", err)
	}
	// The crash is silent: every edge survives until the detector acts.
	if d := degreeOf(nw, u); d != len(neighbors) {
		t.Fatalf("crash tore down edges immediately: degree %d, want %d", d, len(neighbors))
	}
	m.Tick(30)
	if d := degreeOf(nw, u); d != len(neighbors) {
		t.Fatalf("one silent round already disconnected the crashed peer (PingTimeout=2)")
	}
	m.Tick(60)
	if d := degreeOf(nw, u); d != 0 {
		t.Fatalf("crashed peer still has %d ghost edges after PingTimeout rounds", d)
	}
	if got := m.Stats().FailuresDetected; got != len(neighbors) {
		t.Fatalf("FailuresDetected = %d, want %d", got, len(neighbors))
	}
}

func TestRepairRestoresDegree(t *testing.T) {
	cfg := DefaultRepairConfig(13)
	nw, m := maintTestNetwork(t, 13, cfg)
	u := firstUltra(nw)
	// Survivors adjacent to the crash drop below target, then repair from
	// their host caches.
	neighbors := append([]int(nil), nw.Peers[u].Neighbors...)
	if err := m.PeerDown(u, false); err != nil {
		t.Fatalf("PeerDown: %v", err)
	}
	for round := int64(1); round <= 6; round++ {
		m.Tick(round * cfg.PingInterval)
	}
	if m.Stats().RepairSuccesses == 0 {
		t.Fatal("no repair connections were made")
	}
	deficit := 0
	for _, nb := range neighbors {
		if d, target := m.repairDegree(nb), m.targetDegree(nb); d < target {
			deficit += target - d
		}
	}
	if deficit > 1 {
		t.Fatalf("survivors still %d connections short of target after repair", deficit)
	}
}

func TestRejoinReconnects(t *testing.T) {
	cfg := DefaultRepairConfig(14)
	nw, m := maintTestNetwork(t, 14, cfg)
	u := firstUltra(nw)
	if err := m.PeerDown(u, true); err != nil {
		t.Fatalf("PeerDown: %v", err)
	}
	m.Tick(30)
	if err := m.PeerUp(u, 60); err != nil {
		t.Fatalf("PeerUp: %v", err)
	}
	if !m.Online()[u] {
		t.Fatal("rejoined peer not marked online")
	}
	if degreeOf(nw, u) == 0 {
		t.Fatal("rejoined peer bootstrapped no connections")
	}
	for _, nb := range nw.Peers[u].Neighbors {
		if !nw.connected(nb, u) {
			t.Fatalf("asymmetric edge %d<->%d after rejoin", u, nb)
		}
	}
}

func TestNoRepairIsPassive(t *testing.T) {
	cfg := DefaultRepairConfig(15)
	cfg.Repair = false
	nw, m := maintTestNetwork(t, 15, cfg)
	u := firstUltra(nw)
	neighbors := append([]int(nil), nw.Peers[u].Neighbors...)

	// A crash leaves ghost edges and no tick ever removes them.
	if err := m.PeerDown(u, false); err != nil {
		t.Fatalf("PeerDown: %v", err)
	}
	m.Tick(30)
	m.Tick(60)
	if d := degreeOf(nw, u); d != len(neighbors) {
		t.Fatalf("repair-off tick mutated topology: degree %d, want %d", d, len(neighbors))
	}
	// The ghost edges resume when the peer returns.
	if err := m.PeerUp(u, 90); err != nil {
		t.Fatalf("PeerUp: %v", err)
	}
	if d := degreeOf(nw, u); d != len(neighbors) {
		t.Fatalf("repair-off rejoin changed degree to %d, want %d", d, len(neighbors))
	}

	// A polite departure still tears down edges (the Bye really was sent)
	// and nothing ever rebuilds them: erosion.
	if err := m.PeerDown(u, true); err != nil {
		t.Fatalf("PeerDown: %v", err)
	}
	if err := m.PeerUp(u, 120); err != nil {
		t.Fatalf("PeerUp: %v", err)
	}
	m.Tick(150)
	if d := degreeOf(nw, u); d != 0 {
		t.Fatalf("repair-off rejoin rebuilt %d connections", d)
	}
}

// snapshotTopology serializes adjacency for equality comparison.
func snapshotTopology(nw *Network) string {
	s := ""
	for _, p := range nw.Peers {
		s += fmt.Sprintf("%d:%v;", p.ID, p.Neighbors)
	}
	return s
}

func TestMaintainerDeterminism(t *testing.T) {
	run := func() (string, RepairStats) {
		cfg := DefaultRepairConfig(16)
		nw, m := maintTestNetwork(t, 16, cfg)
		u := firstUltra(nw)
		if err := m.PeerDown(u, false); err != nil {
			t.Fatalf("PeerDown: %v", err)
		}
		if err := m.PeerDown((u+7)%len(nw.Peers), true); err != nil {
			t.Fatalf("PeerDown: %v", err)
		}
		for round := int64(1); round <= 4; round++ {
			m.Tick(round * cfg.PingInterval)
		}
		if err := m.PeerUp(u, 150); err != nil {
			t.Fatalf("PeerUp: %v", err)
		}
		m.Tick(180)
		return snapshotTopology(nw), m.Stats()
	}
	topo1, stats1 := run()
	topo2, stats2 := run()
	if topo1 != topo2 {
		t.Fatal("same-seed maintenance produced different topologies")
	}
	if stats1 != stats2 {
		t.Fatalf("same-seed maintenance produced different stats:\n%+v\n%+v", stats1, stats2)
	}
}

// TestPingTimeoutSingleRoundBoundary pins the PingTimeout=1 edge: a single
// silent round is enough to tear an edge down — the most aggressive legal
// detector — while PingTimeout=0 never reaches a maintainer at all
// (rejected by Validate, so the zero value cannot silently mean "never
// detect").
func TestPingTimeoutSingleRoundBoundary(t *testing.T) {
	cfg := DefaultRepairConfig(18)
	cfg.PingTimeout = 1
	nw, m := maintTestNetwork(t, 18, cfg)
	u := firstUltra(nw)
	neighbors := append([]int(nil), nw.Peers[u].Neighbors...)
	if err := m.PeerDown(u, false); err != nil {
		t.Fatalf("PeerDown: %v", err)
	}
	m.Tick(cfg.PingInterval)
	if d := degreeOf(nw, u); d != 0 {
		t.Fatalf("PingTimeout=1 left %d ghost edges after one round", d)
	}
	if got := m.Stats().FailuresDetected; got != len(neighbors) {
		t.Fatalf("FailuresDetected = %d, want %d", got, len(neighbors))
	}

	cfg.PingTimeout = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("PingTimeout=0 passed Validate")
	}
	if _, err := NewMaintainer(nw, cfg, nil); err == nil {
		t.Fatal("NewMaintainer accepted PingTimeout=0")
	}
}

// TestBackToBackSilentCrashes drives the same peer through two
// crash/detect/rejoin cycles: the second silent crash must be detected as
// cleanly as the first — no stale missed-round state, no ghost edge
// surviving, and the failure counter growing both times.
func TestBackToBackSilentCrashes(t *testing.T) {
	cfg := DefaultRepairConfig(19)
	nw, m := maintTestNetwork(t, 19, cfg)
	u := firstUltra(nw)

	now := int64(0)
	detect := func(cycle int) int {
		before := m.Stats().FailuresDetected
		if err := m.PeerDown(u, false); err != nil {
			t.Fatalf("cycle %d PeerDown: %v", cycle, err)
		}
		if degreeOf(nw, u) == 0 {
			t.Fatalf("cycle %d: silent crash tore down edges immediately", cycle)
		}
		// PingTimeout rounds of silence, plus slack for repair traffic.
		for i := 0; i < cfg.PingTimeout+1; i++ {
			now += cfg.PingInterval
			m.Tick(now)
		}
		if d := degreeOf(nw, u); d != 0 {
			t.Fatalf("cycle %d: %d ghost edges survive detection", cycle, d)
		}
		for _, p := range nw.Peers {
			for _, nb := range p.Neighbors {
				if nb == u {
					t.Fatalf("cycle %d: peer %d still lists the dead peer as neighbor", cycle, p.ID)
				}
			}
		}
		return m.Stats().FailuresDetected - before
	}

	first := detect(1)
	if first == 0 {
		t.Fatal("first crash detected no failures")
	}
	now += cfg.PingInterval
	if err := m.PeerUp(u, now); err != nil {
		t.Fatalf("PeerUp: %v", err)
	}
	if degreeOf(nw, u) == 0 {
		t.Fatal("rejoin bootstrapped no connections")
	}
	second := detect(2)
	if second == 0 {
		t.Fatal("second crash detected no failures (stale detector state)")
	}
}

// TestHostCacheScreensSelfAndDead covers the repair-hint edge case: cached
// candidates that resolve to the repairing peer itself or to a currently
// offline peer are dropped before any dial, each screening counted in
// RepairStats.HostRejected and mirrored to gnet_hostcache_rejected_total.
func TestHostCacheScreensSelfAndDead(t *testing.T) {
	reg := obs.NewRegistry()
	nw, err := New(DefaultConfig(21), 120)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	nw.Instrument(reg, nil)
	cfg := DefaultRepairConfig(21)
	m, err := NewMaintainer(nw, cfg, nil)
	if err != nil {
		t.Fatalf("NewMaintainer: %v", err)
	}
	u := firstUltra(nw)
	// Poison u's cache with its own address; seeding and Pong learning
	// never insert it, but a hostile or buggy hint source could.
	m.HostCacheOf(u).Add(nw.Peers[u].Addr)
	// Crash an ultrapeer neighbor of u silently: u drops below target once
	// detection fires and repairs from a cache that still holds dead (and
	// now self) addresses.
	v := -1
	for _, nb := range nw.Peers[u].Neighbors {
		if nw.Peers[nb].Ultrapeer {
			v = nb
			break
		}
	}
	if v < 0 {
		t.Fatal("no ultrapeer neighbor to crash")
	}
	if err := m.PeerDown(v, false); err != nil {
		t.Fatalf("PeerDown: %v", err)
	}
	for round := int64(1); round <= 6; round++ {
		m.Tick(round * cfg.PingInterval)
	}
	st := m.Stats()
	if st.HostRejected == 0 {
		t.Fatal("no cached candidates were screened out")
	}
	if degreeOf(nw, v) != 0 {
		t.Fatalf("dead peer regained %d edges while offline", degreeOf(nw, v))
	}
	var counter int64 = -1
	for _, sm := range reg.Snapshot().Metrics {
		if sm.Name == "gnet_hostcache_rejected_total" {
			counter = sm.Value
		}
	}
	if counter != int64(st.HostRejected) {
		t.Fatalf("gnet_hostcache_rejected_total = %d, RepairStats.HostRejected = %d", counter, st.HostRejected)
	}
}
