package gnet

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"querycentric/internal/catalog"
	"querycentric/internal/faults"
	"querycentric/internal/rng"
)

// pinNet is a hand-wired flat topology small enough to count descriptors
// by hand:
//
//	0 — {1,2},  1 — {0,2,3},  2 — {0,1,3},  3 — {1,2,4},  4 — {3}
//
// Peer 3 shares the only file matching "target".
func pinNet() *Network {
	neighbors := [][]int{{1, 2}, {0, 2, 3}, {0, 1, 3}, {1, 2, 4}, {3}}
	nw := &Network{Config: Config{}, Peers: make([]*Peer, 5), firewalled: make([]bool, 5)}
	for i, nbs := range neighbors {
		nw.Peers[i] = &Peer{ID: i, Addr: addrFor(i), Neighbors: nbs}
	}
	nw.Peers[3].Library = []File{{Index: 0, Size: 1, Name: "target.mp3"}}
	return nw
}

// TestFloodMessagesCountsTransmittedDescriptors pins the Messages
// semantics: every descriptor placed on a connection counts, including
// same-ring duplicates (both copies were physically transmitted before the
// recipient saw either), but copies to peers already processed in an
// earlier ring are never sent.
//
// From 0 with TTL 2: origin sends to 1 and 2 (2 messages). Peer 1 forwards
// to 2 and 3; peer 2 forwards to 3 only (0 and 1 already saw the GUID) —
// the second copy to 3 is a same-ring duplicate and still counts. Total 5,
// and peer 2's ring-2 copy from peer 1 is dropped without being resent.
func TestFloodMessagesCountsTransmittedDescriptors(t *testing.T) {
	cases := []struct {
		ttl                     int
		messages, reached, hits int
	}{
		{ttl: 1, messages: 2, reached: 2, hits: 0},
		{ttl: 2, messages: 5, reached: 3, hits: 1},
		// TTL 3 additionally lets peer 3 forward to 4 (1,2 already seen).
		{ttl: 3, messages: 6, reached: 4, hits: 1},
		// No TTL budget is left to use edges beyond 4's: counts saturate.
		{ttl: 4, messages: 6, reached: 4, hits: 1},
	}
	for _, tc := range cases {
		res, err := pinNet().Flood(0, "target", tc.ttl, rng.New(1))
		if err != nil {
			t.Fatal(err)
		}
		if res.Messages != tc.messages || res.PeersReached != tc.reached || len(res.Hits) != tc.hits {
			t.Errorf("ttl=%d: messages=%d reached=%d hits=%d, want %d/%d/%d",
				tc.ttl, res.Messages, res.PeersReached, len(res.Hits),
				tc.messages, tc.reached, len(res.Hits))
		}
		if tc.hits == 1 {
			if h := res.Hits[0]; h.PeerID != 3 || h.Hops != 2 {
				t.Errorf("ttl=%d: hit %+v, want peer 3 at 2 hops", tc.ttl, h)
			}
		}
	}
}

// TestFloodCtxReuseMatchesFreshFloods verifies that a reused context (the
// parallel engine's per-worker fast path) produces results byte-identical
// to the context-free Network.Flood, across QRP and fault configurations.
func TestFloodCtxReuseMatchesFreshFloods(t *testing.T) {
	for _, mode := range []string{"plain", "qrp", "lossy"} {
		t.Run(mode, func(t *testing.T) {
			a := populatedNet(t, 150)
			b := populatedNet(t, 150)
			switch mode {
			case "qrp":
				for _, nw := range []*Network{a, b} {
					if err := nw.EnableQRP(16); err != nil {
						t.Fatal(err)
					}
				}
			case "lossy":
				a.SetFaults(faults.New(faults.Config{Seed: 3, MessageLoss: 0.25}))
				b.SetFaults(faults.New(faults.Config{Seed: 3, MessageLoss: 0.25}))
			}
			ctx := a.NewFloodCtx()
			for trial := 0; trial < 25; trial++ {
				origin := trial % len(a.Peers)
				criteria := fileOf(t, a, trial*17+1)
				ra, err := ctx.Flood(origin, criteria, 4, rng.New(uint64(trial)))
				if err != nil {
					t.Fatal(err)
				}
				rb, err := b.Flood(origin, criteria, 4, rng.New(uint64(trial)))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(ra, rb) {
					t.Fatalf("%s trial %d: reused ctx diverged:\n%+v\nvs\n%+v", mode, trial, ra, rb)
				}
			}
		})
	}
}

// TestConcurrentFloodCtxsAgree floods the same network from many
// goroutines, each with its own context, and checks every result against a
// sequential baseline — exercising the lazily built term indexes and the
// shared fault plane under the race detector.
func TestConcurrentFloodCtxsAgree(t *testing.T) {
	nw := populatedNet(t, 200)
	nw.SetFaults(faults.New(faults.Config{Seed: 7, MessageLoss: 0.1}))
	if err := nw.EnableQRP(16); err != nil {
		t.Fatal(err)
	}

	const trials = 48
	type spec struct {
		origin   int
		criteria string
	}
	specs := make([]spec, trials)
	baseline := make([]*FloodResult, trials)
	base := populatedNet(t, 200) // separate net: keeps nw's indexes cold
	base.SetFaults(faults.New(faults.Config{Seed: 7, MessageLoss: 0.1}))
	if err := base.EnableQRP(16); err != nil {
		t.Fatal(err)
	}
	ctx := base.NewFloodCtx()
	for i := range specs {
		specs[i] = spec{origin: i * 3 % 200, criteria: fileOf(t, base, i*11)}
		res, err := ctx.Flood(specs[i].origin, specs[i].criteria, 4, rng.New(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		baseline[i] = res
	}

	got := make([]*FloodResult, trials)
	errs := make([]error, trials)
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := nw.NewFloodCtx()
			for i := w; i < trials; i += workers {
				got[i], errs[i] = c.Flood(specs[i].origin, specs[i].criteria, 4, rng.New(uint64(i)))
			}
		}(w)
	}
	wg.Wait()
	for i := 0; i < trials; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(got[i], baseline[i]) {
			t.Fatalf("trial %d diverged under concurrency:\n%+v\nvs\n%+v", i, got[i], baseline[i])
		}
	}
}

// TestFloodEpochWrapSurvives forces the epoch counter through its wrap and
// checks floods before and after agree.
func TestFloodEpochWrapSurvives(t *testing.T) {
	nw := pinNet()
	ctx := nw.NewFloodCtx()
	before, err := ctx.Flood(0, "target", 3, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	ctx.epoch = 1<<31 - 3 // two bumps from the wrap
	for i := 0; i < 4; i++ {
		after, err := ctx.Flood(0, "target", 3, rng.New(9))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(before, after) {
			t.Fatalf("wrap bump %d diverged: %+v vs %+v", i, before, after)
		}
	}
	if ctx.epoch >= 1<<31-1 || ctx.epoch < 1 {
		t.Fatalf("epoch did not wrap cleanly: %d", ctx.epoch)
	}
}

func BenchmarkFloodCtx(b *testing.B) {
	for _, peers := range []int{500, 2000} {
		b.Run(fmt.Sprintf("peers=%d", peers), func(b *testing.B) {
			nw := benchNet(b, peers)
			criteria := ""
			for _, p := range nw.Peers {
				if len(p.Library) > 0 {
					criteria = p.Library[0].Name
					break
				}
			}
			ctx := nw.NewFloodCtx()
			r := rng.New(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ctx.Flood(i%peers, criteria, 4, r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchNet is populatedNet for benchmarks.
func benchNet(b *testing.B, peers int) *Network {
	b.Helper()
	cat, err := catalog.Build(catalog.Config{
		Seed: 5, Peers: peers, UniqueObjects: peers * 25, ReplicaAlpha: 2.45,
		VariantProb: 0.05, NonSpecificPeerFrac: 0.03,
	})
	if err != nil {
		b.Fatal(err)
	}
	nw, err := NewFromCatalog(DefaultConfig(5), cat)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the term indexes (and the flood path's rarest-first term
	// frequencies) so the benchmark measures the flood loop.
	if err := nw.BuildIndexes(0); err != nil {
		b.Fatal(err)
	}
	return nw
}
