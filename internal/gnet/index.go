package gnet

import (
	"encoding/binary"
	"hash/fnv"
	"sort"

	"querycentric/internal/dict"
	"querycentric/internal/parallel"
	"querycentric/internal/terms"
)

// This file implements the interned-ID query path: per-peer posting indexes
// keyed by dict.TermID instead of strings. A peer's index is three flat
// arrays — sorted term IDs, offsets, and one shared postings arena — which
// replaces the map[string][]int32 of the legacy path (index_legacy.go) at a
// fraction of the retained heap and with integer comparisons on the match
// hot path.

// postingIndex is a peer's compact term → files index. Posting list k
// (for termIDs[k]) is postings[offsets[k]:offsets[k+1]], ascending file
// indices. offsets has len(termIDs)+1 entries.
type postingIndex struct {
	termIDs  []dict.TermID
	offsets  []uint32
	postings []int32
}

// lookup returns the arena window of id's posting list.
func (ix *postingIndex) lookup(id dict.TermID) (lo, hi uint32, ok bool) {
	i := sort.Search(len(ix.termIDs), func(k int) bool { return ix.termIDs[k] >= id })
	if i == len(ix.termIDs) || ix.termIDs[i] != id {
		return 0, 0, false
	}
	return ix.offsets[i], ix.offsets[i+1], true
}

// heapBytes is the index's retained heap (flat arrays only; the term
// strings live in the shared dictionary).
func (ix *postingIndex) heapBytes() uint64 {
	return uint64(len(ix.termIDs))*4 + uint64(len(ix.offsets))*4 + uint64(len(ix.postings))*4
}

// termFile is one (term, file) incidence during index construction.
type termFile struct {
	id   dict.TermID
	file int32
}

// buildPostings builds a posting index for lib against dictionary d. It
// reports ok=false on the first token d does not know — the caller then
// falls back to a peer-local dictionary (a library mutated after network
// construction can contain terms the shared dictionary never saw).
func buildPostings(d *dict.Dict, lib []File) (postingIndex, bool) {
	pairs := make([]termFile, 0, len(lib)*4)
	var fileIDs []dict.TermID // per-file dedupe scratch
	for i, f := range lib {
		fileIDs = fileIDs[:0]
		for _, tok := range terms.Tokenize(f.Name) {
			id, known := d.Lookup(tok)
			if !known {
				return postingIndex{}, false
			}
			dup := false
			for _, prev := range fileIDs {
				if prev == id {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			fileIDs = append(fileIDs, id)
			pairs = append(pairs, termFile{id: id, file: int32(i)})
		}
	}
	// Files were visited in ascending order, so sorting by (id, file) keeps
	// every posting list ascending — the same order the legacy map path
	// produces by appending file indices as it scans the library.
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].id != pairs[b].id {
			return pairs[a].id < pairs[b].id
		}
		return pairs[a].file < pairs[b].file
	})
	var ix postingIndex
	ix.postings = make([]int32, len(pairs))
	ix.offsets = append(ix.offsets, 0)
	for k := 0; k < len(pairs); {
		id := pairs[k].id
		ix.termIDs = append(ix.termIDs, id)
		for k < len(pairs) && pairs[k].id == id {
			ix.postings[k] = pairs[k].file
			k++
		}
		ix.offsets = append(ix.offsets, uint32(k))
	}
	return ix, true
}

// libraryNames projects a library onto its file names.
func libraryNames(lib []File) []string {
	names := make([]string, len(lib))
	for i, f := range lib {
		names[i] = f.Name
	}
	return names
}

// buildIndex builds the peer's term → file index (interned or legacy).
// Always reached through indexOnce.
func (p *Peer) buildIndex() {
	if p.legacy {
		p.buildLegacyIndex()
		return
	}
	if p.dict == nil {
		// Peer assembled without a catalog (tests, hand-built networks):
		// intern against a dictionary of its own library.
		p.dict = dict.FromNames(libraryNames(p.Library), 1)
	}
	idx, ok := buildPostings(p.dict, p.Library)
	if !ok {
		// The library gained names after construction; re-intern locally.
		p.dict = dict.FromNames(libraryNames(p.Library), 1)
		idx, _ = buildPostings(p.dict, p.Library)
	}
	p.idx = idx
}

// BuildIndexes eagerly builds every peer's index over up to `workers`
// goroutines (≤ 0 resolves to GOMAXPROCS). Indexes are otherwise built
// lazily on first Match; building them up front makes construction cost
// measurable and keeps the first flood off the slow path. The result is
// identical for every worker count: each peer's index depends only on its
// own library and the shared dictionary.
func (nw *Network) BuildIndexes(workers int) error {
	return parallel.ForEach(workers, len(nw.Peers), func(i int) error {
		p := nw.Peers[i]
		p.indexOnce.Do(p.buildIndex)
		return nil
	})
}

// UseLegacyStringIndex switches the whole network to the pre-interning
// map[string][]int32 index and string-keyed match path. Retained as the
// reference implementation for equivalence tests and memory benchmarks.
// Call before anything triggers index construction (Match, Flood,
// EnableQRP, BuildIndexes); indexes already built stay as they are.
func (nw *Network) UseLegacyStringIndex() {
	nw.dict = nil
	for _, p := range nw.Peers {
		p.dict = nil
		p.legacy = true
	}
}

// TermDict returns the network-wide interned dictionary (nil for networks
// without one — hand-assembled peers or after UseLegacyStringIndex).
func (nw *Network) TermDict() *dict.Dict { return nw.dict }

// Match returns the library files matching the query criteria under the
// Gnutella keyword rule (every query token must appear in the file name).
func (p *Peer) Match(criteria string) []File {
	p.indexOnce.Do(p.buildIndex)
	if p.legacy {
		return p.matchTokensLegacy(TokenizeQuery(criteria))
	}
	toks := TokenizeQuery(criteria)
	if len(toks) == 0 {
		return nil
	}
	// Stack-sized scratch: real queries are a handful of terms, so the
	// one-shot Match path avoids the flood context's reusable buffers
	// without paying a heap allocation per call.
	var idsBuf [8]dict.TermID
	var s matchScratch
	ids, ok := p.dict.Resolve(toks, idsBuf[:0])
	if !ok {
		return nil
	}
	return p.matchIDs(ids, &s)
}

// MatchTokens is Match with tokenization hoisted out: toks must come from
// TokenizeQuery. scratch is grown as needed and returned for reuse across
// calls (floods use the richer matchForFlood instead).
func (p *Peer) MatchTokens(toks, scratch []string) ([]File, []string) {
	p.indexOnce.Do(p.buildIndex)
	if p.legacy {
		scratch = append(scratch[:0], toks...)
		return p.matchTokensLegacy(scratch), scratch
	}
	if len(toks) == 0 {
		return nil, scratch
	}
	ids, ok := p.dict.Resolve(toks, nil)
	if !ok {
		return nil, scratch
	}
	var s matchScratch
	return p.matchIDs(ids, &s), scratch
}

// matchForFlood matches one flood's query against this peer. d and qids are
// the flood's hoisted dictionary and resolved term IDs (d == nw.dict); toks
// are the deduped string tokens for peers that cannot use qids — legacy
// peers, and peers whose mutated library forced a local dictionary.
func (p *Peer) matchForFlood(d *dict.Dict, qids []dict.TermID, toks []string, s *matchScratch) []File {
	p.indexOnce.Do(p.buildIndex)
	if p.legacy {
		s.str = append(s.str[:0], toks...)
		return p.matchTokensLegacy(s.str)
	}
	ids := qids
	if p.dict != d {
		var ok bool
		s.ids, ok = p.dict.Resolve(toks, s.ids[:0])
		if !ok {
			return nil
		}
		ids = s.ids
	}
	return p.matchIDs(ids, s)
}

// termSel is one query term's posting window during a match.
type termSel struct {
	lo, n uint32
}

// matchScratch is per-flood match state, reused across every reached peer.
type matchScratch struct {
	ids []dict.TermID
	sel []termSel
	str []string
}

// matchIDs intersects the posting lists of ids, rarest term first so the
// candidate set never grows. Any id missing from the index (including
// NoTerm) matches nothing — the conjunctive rule.
func (p *Peer) matchIDs(ids []dict.TermID, s *matchScratch) []File {
	if len(ids) == 0 {
		return nil
	}
	s.sel = s.sel[:0]
	for _, id := range ids {
		lo, hi, ok := p.idx.lookup(id)
		if !ok {
			return nil
		}
		s.sel = append(s.sel, termSel{lo: lo, n: hi - lo})
	}
	sel := s.sel
	// Insertion sort by posting-list length: queries have a handful of
	// terms, and this replaces the legacy sort.Slice on strings.
	for i := 1; i < len(sel); i++ {
		for j := i; j > 0 && sel[j].n < sel[j-1].n; j-- {
			sel[j], sel[j-1] = sel[j-1], sel[j]
		}
	}
	cur := p.idx.postings[sel[0].lo : sel[0].lo+sel[0].n]
	for _, w := range sel[1:] {
		if len(cur) == 0 {
			return nil
		}
		cur = intersectPostings(cur, p.idx.postings[w.lo:w.lo+w.n])
	}
	if len(cur) == 0 {
		return nil
	}
	out := make([]File, len(cur))
	for i, idx := range cur {
		out[i] = p.Library[idx]
	}
	return out
}

// intersectPostings intersects two ascending posting lists into a fresh
// slice (the index arenas are never mutated).
func intersectPostings(a, b []int32) []int32 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	out := make([]int32, 0, n)
	for i, j := 0, 0; i < len(a) && j < len(b); {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// smallQueryDedupe is the token count below which TokenizeQuery dedupes
// with a quadratic scan instead of allocating a map — real queries are a
// few keywords, and the scan beats the map allocation there.
const smallQueryDedupe = 12

// TokenizeQuery returns the deduped keyword list the match path intersects,
// in first-appearance order. Hoist it out of any loop that matches one
// query against many peers (a flood matches every reached peer).
func TokenizeQuery(criteria string) []string {
	toks := terms.Tokenize(criteria)
	if len(toks) < 2 {
		return toks
	}
	if len(toks) <= smallQueryDedupe {
		return dedupeLinear(toks)
	}
	return dedupeMap(toks)
}

// dedupeLinear dedupes in place by scanning the kept prefix; first
// appearance wins.
func dedupeLinear(toks []string) []string {
	uniq := toks[:1]
	for _, t := range toks[1:] {
		dup := false
		for _, u := range uniq {
			if t == u {
				dup = true
				break
			}
		}
		if !dup {
			uniq = append(uniq, t)
		}
	}
	return uniq
}

// dedupeMap dedupes with a set; first appearance wins.
func dedupeMap(toks []string) []string {
	uniq := toks[:0]
	seen := make(map[string]struct{}, len(toks))
	for _, t := range toks {
		if _, dup := seen[t]; !dup {
			seen[t] = struct{}{}
			uniq = append(uniq, t)
		}
	}
	return uniq
}

// IndexStats summarizes the network's term-index footprint.
type IndexStats struct {
	Peers      int    // peers in the network
	DictTerms  int    // distinct terms in the shared dictionary (0 if none)
	IndexTerms int    // total distinct (peer, term) pairs
	Postings   int    // total posting entries across all peers
	HeapBytes  uint64 // estimated retained bytes: peer indexes + shared dictionary
}

// IndexStats builds all indexes (sequentially if not already built) and
// returns their footprint. Legacy-path networks report the map-based
// estimate: per-entry map overhead plus key headers plus posting slices —
// an undercount, since legacy keys also pin lowered copies of file names.
func (nw *Network) IndexStats() (IndexStats, error) {
	if err := nw.BuildIndexes(0); err != nil {
		return IndexStats{}, err
	}
	st := IndexStats{Peers: len(nw.Peers)}
	if nw.dict != nil {
		st.DictTerms = nw.dict.Len()
		st.HeapBytes += nw.dict.HeapBytes()
	}
	for _, p := range nw.Peers {
		if p.legacy {
			for tok, posts := range p.termIndex {
				st.IndexTerms++
				st.Postings += len(posts)
				// key header + bytes, slice header + data, ~map bucket share.
				st.HeapBytes += 16 + uint64(len(tok)) + 24 + uint64(len(posts))*4 + 16
			}
			continue
		}
		st.IndexTerms += len(p.idx.termIDs)
		st.Postings += len(p.idx.postings)
		st.HeapBytes += p.idx.heapBytes()
	}
	return st, nil
}

// IndexChecksum builds all indexes and folds the dictionary plus every
// peer's flat index into one FNV-1a fingerprint — the worker-count
// determinism gate for parallel construction.
func (nw *Network) IndexChecksum() (uint64, error) {
	if err := nw.BuildIndexes(0); err != nil {
		return 0, err
	}
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	if nw.dict != nil {
		put(nw.dict.Checksum())
		put(uint64(nw.dict.Len()))
	}
	for _, p := range nw.Peers {
		put(uint64(len(p.idx.termIDs)))
		for _, id := range p.idx.termIDs {
			put(uint64(id))
		}
		for _, off := range p.idx.offsets {
			put(uint64(off))
		}
		for _, post := range p.idx.postings {
			put(uint64(uint32(post)))
		}
	}
	return h.Sum64(), nil
}
