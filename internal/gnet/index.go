package gnet

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"querycentric/internal/dict"
	"querycentric/internal/parallel"
	"querycentric/internal/terms"
	"querycentric/internal/vpost"
)

// This file implements the interned-ID query path: per-peer posting indexes
// keyed by dict.TermID instead of strings. A peer's index is a blocked
// varint arena — a skip array of every postingBlockLen-th term ID plus one
// delta-encoded byte arena holding term-ID gaps and posting lists — which
// replaces both the map[string][]int32 of the legacy path (index_legacy.go)
// and the flat []int32 arena of the first interned layout at roughly a
// quarter of the retained heap. Lookups binary-search the skip array and
// scan at most one block; intersections stream posting lists through
// vpost.Cursor without materializing anything but the rarest list.

// postingBlockLen is how many terms share one skip-array entry. Smaller
// blocks cost more skip-array memory (8 bytes per block) but shorten the
// in-block scan on the match hot path.
const postingBlockLen = 16

// postingIndex is a peer's compact term → files index. Terms are grouped
// into blocks of postingBlockLen in ascending TermID order; blockFirst[b]
// is block b's first term ID and blockOff[b] its byte offset into arena.
//
// Each block splits its term-ID stream from its posting payloads so the
// hot miss path never touches payload bytes:
//
//	[idLen u8] [multiMask u16le] [id deltas] [payloads]
//
// The id section holds uvarint gaps between consecutive term IDs for
// entries 1..n-1 (entry 0's ID is blockFirst[b], kept out of the arena);
// idLen is its byte length. Bit k of multiMask marks entry k as holding
// more than one posting. A single-posting payload is one uvarint (the
// posting itself — identical bytes to a one-element vpost body); a multi
// payload is uvarint(count≥2) followed by the vpost body.
type postingIndex struct {
	nTerms     int
	nPostings  int
	blockFirst []dict.TermID
	blockOff   []uint32
	arena      []byte

	// filter is a one-hash membership bitset over the index's term IDs
	// (≥ filterBitsPerTerm bits per term, power-of-two sized). Most flood
	// probes are for terms the peer does not hold; the filter rejects
	// ~90% of those with a single load before the block scan runs. No
	// false negatives: every present term's bit is set.
	filter []uint64
	fbits  uint // log2 of the filter size in bits
}

// blockHeaderLen is the fixed per-block prefix: idLen byte + multiMask.
const blockHeaderLen = 3

// filterBitsPerTerm sizes the membership filter: ~8 bits per term keeps
// the false-positive rate near 10% at half a byte of overhead per term.
const filterBitsPerTerm = 8

// mayContain is the filter probe: false means id is definitely absent.
func (ix *postingIndex) mayContain(id dict.TermID) bool {
	h := uint32(id) * 2654435761 >> (32 - ix.fbits)
	return ix.filter[h>>6]&(1<<(h&63)) != 0
}

// buildFilter (re)derives the membership filter from the encoded arena —
// the snapshot-restore path, which persists only the skip arrays and the
// arena. Sizing and hashing mirror encodePostings exactly, so a restored
// index is bit-for-bit the one the builder produced.
func (ix *postingIndex) buildFilter() {
	if ix.nTerms == 0 {
		ix.filter, ix.fbits = nil, 0
		return
	}
	ix.fbits = 6
	for 1<<ix.fbits < ix.nTerms*filterBitsPerTerm {
		ix.fbits++
	}
	ix.filter = make([]uint64, 1<<ix.fbits/64)
	ix.forEachTermID(func(id dict.TermID) {
		h := uint32(id) * 2654435761 >> (32 - ix.fbits)
		ix.filter[h>>6] |= 1 << (h & 63)
	})
}

// postingsRef is one term's posting list as found in the arena: a count
// plus either the inline single posting or the undecoded body bytes.
type postingsRef struct {
	count  int
	single int32  // the posting when count == 1
	body   []byte // vpost body when count > 1 (suffix of the arena)
}

// cursor returns a streaming decoder over the referenced posting list.
func (r postingsRef) cursor() vpost.Cursor {
	if r.count == 1 {
		var one [vpost.MaxUvarintLen]byte
		return vpost.NewCursor(vpost.AppendUvarint(one[:0], uint64(uint32(r.single))), 1)
	}
	return vpost.NewCursor(r.body, r.count)
}

// lookup finds id's posting list: binary search for the block that could
// hold it, then an early-exit scan of the block's id-delta section — no
// payload byte is touched unless the term is present. NoTerm (and any
// absent id) misses; the conjunctive match rule turns that into an empty
// result after this single probe. The varint decodes are inlined: this is
// the innermost loop of every flood, called once per (reached peer, query
// term) until the first miss.
func (ix *postingIndex) lookup(id dict.TermID) (postingsRef, bool) {
	if ix.filter == nil || !ix.mayContain(id) {
		return postingsRef{}, false
	}
	first := ix.blockFirst
	if id < first[0] {
		return postingsRef{}, false
	}
	// Branchless-ish manual binary search for the last block with
	// blockFirst ≤ id (sort.Search costs a closure call per probe).
	lo, hi := 0, len(first)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if first[mid] <= id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	b := lo - 1
	n := ix.nTerms - b*postingBlockLen
	if n > postingBlockLen {
		n = postingBlockLen
	}
	buf := ix.arena[ix.blockOff[b]:]
	idLen := int(buf[0])
	mask := uint(buf[1]) | uint(buf[2])<<8
	ids := buf[blockHeaderLen : blockHeaderLen+idLen]
	cur := first[b]
	k, i := 0, 0
	for cur < id {
		if k+1 >= n {
			return postingsRef{}, false
		}
		// Term-ID gaps are one or two bytes in practice; decode those
		// without the general continuation loop.
		c := ids[i]
		i++
		d := uint32(c)
		if c >= 0x80 {
			c = ids[i]
			i++
			d = d&0x7f | uint32(c)<<7
			if c >= 0x80 {
				d &= 1<<14 - 1
				for s := 14; c >= 0x80; s += 7 {
					c = ids[i]
					i++
					d |= uint32(c&0x7f) << s
				}
			}
		}
		cur += dict.TermID(d)
		k++
	}
	if cur != id {
		return postingsRef{}, false
	}
	// Hit: skip the k preceding payloads to reach ours.
	p := buf[blockHeaderLen+idLen:]
	for j := 0; j < k; j++ {
		skip := 1
		if mask&(1<<uint(j)) != 0 {
			cnt, cn := vpost.Uvarint(p)
			p = p[cn:]
			skip = int(cnt)
		}
		for ; skip > 0; skip-- {
			o := 0
			for p[o] >= 0x80 {
				o++
			}
			p = p[o+1:]
		}
	}
	if mask&(1<<uint(k)) == 0 {
		v, _ := vpost.Uvarint(p)
		return postingsRef{count: 1, single: int32(v)}, true
	}
	cnt, cn := vpost.Uvarint(p)
	return postingsRef{count: int(cnt), body: p[cn:]}, true
}

// forEach calls fn for every term in ascending TermID order. The ref's body
// aliases the arena and must not be retained past the call.
func (ix *postingIndex) forEach(fn func(id dict.TermID, ref postingsRef)) {
	for b := range ix.blockFirst {
		n := ix.nTerms - b*postingBlockLen
		if n > postingBlockLen {
			n = postingBlockLen
		}
		buf := ix.arena[ix.blockOff[b]:]
		idLen := int(buf[0])
		mask := uint(buf[1]) | uint(buf[2])<<8
		ids := buf[blockHeaderLen : blockHeaderLen+idLen]
		p := buf[blockHeaderLen+idLen:]
		cur := ix.blockFirst[b]
		for k := 0; k < n; k++ {
			if k > 0 {
				d, dn := vpost.Uvarint(ids)
				ids = ids[dn:]
				cur += dict.TermID(d)
			}
			if mask&(1<<uint(k)) == 0 {
				v, vn := vpost.Uvarint(p)
				p = p[vn:]
				fn(cur, postingsRef{count: 1, single: int32(v)})
				continue
			}
			cnt, cn := vpost.Uvarint(p)
			p = p[cn:]
			fn(cur, postingsRef{count: int(cnt), body: p})
			for j := uint64(0); j < cnt; j++ {
				p = p[vpost.SkipUvarint(p):]
			}
		}
	}
}

// forEachTermID calls fn for every term in ascending TermID order without
// touching posting payloads: each block's offset bounds its id-delta
// section, so the payload bytes that dominate the arena are never decoded
// or skipped varint by varint. This is what keeps the snapshot-restore
// filter rebuild cheap — at paper scale the arenas hold 118M posting
// varints but only ~7M id deltas.
func (ix *postingIndex) forEachTermID(fn func(id dict.TermID)) {
	for b := range ix.blockFirst {
		n := ix.nTerms - b*postingBlockLen
		if n > postingBlockLen {
			n = postingBlockLen
		}
		buf := ix.arena[ix.blockOff[b]:]
		idLen := int(buf[0])
		ids := buf[blockHeaderLen : blockHeaderLen+idLen]
		cur := ix.blockFirst[b]
		fn(cur)
		for k := 1; k < n; k++ {
			d, dn := vpost.Uvarint(ids)
			ids = ids[dn:]
			cur += dict.TermID(d)
			fn(cur)
		}
	}
}

// heapBytes is the index's retained heap (skip arrays + membership filter
// + arena; the term strings live in the shared dictionary).
func (ix *postingIndex) heapBytes() uint64 {
	return uint64(len(ix.blockFirst))*4 + uint64(len(ix.blockOff))*4 +
		uint64(len(ix.filter))*8 + uint64(len(ix.arena))
}

// termFile is one (term, file) incidence during index construction.
type termFile struct {
	id   dict.TermID
	file int32
}

// buildScratch is per-worker construction state: the uncompressed (term,
// file) pairs and the encode buffer exist only for the peer being built,
// then the exact-size compressed arrays are cut from them — constructing a
// network never holds more than workers × one-peer of uncompressed
// intermediate at a time.
type buildScratch struct {
	pairs   []termFile
	fileIDs []dict.TermID
	arena   []byte
	pay     []byte
	first   []dict.TermID
	off     []uint32
}

// buildPostings builds a compressed posting index for lib against
// dictionary d, using (and growing) bs's reusable buffers. It reports
// ok=false on the first token d does not know — the caller then falls back
// to a peer-local dictionary (a library mutated after network construction
// can contain terms the shared dictionary never saw).
func buildPostings(d *dict.Dict, lib []File, bs *buildScratch) (postingIndex, bool) {
	pairs := bs.pairs[:0]
	fileIDs := bs.fileIDs
	for i, f := range lib {
		fileIDs = fileIDs[:0]
		for _, tok := range terms.Tokenize(f.Name) {
			id, known := d.Lookup(tok)
			if !known {
				bs.pairs, bs.fileIDs = pairs, fileIDs
				return postingIndex{}, false
			}
			dup := false
			for _, prev := range fileIDs {
				if prev == id {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			fileIDs = append(fileIDs, id)
			pairs = append(pairs, termFile{id: id, file: int32(i)})
		}
	}
	bs.pairs, bs.fileIDs = pairs, fileIDs
	// Files were visited in ascending order, so sorting by (id, file) keeps
	// every posting list ascending — the same order the legacy map path
	// produces by appending file indices as it scans the library.
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].id != pairs[b].id {
			return pairs[a].id < pairs[b].id
		}
		return pairs[a].file < pairs[b].file
	})
	ix := encodePostings(pairs, bs)
	return ix, true
}

// encodePostings compresses sorted (id, file) pairs into a postingIndex,
// encoding through bs's buffers and returning exact-size copies so no
// append slack is retained for the life of the network. Blocks are
// assembled one at a time — the id-delta section in a fixed local buffer,
// the payload section in the reusable pay scratch — then flushed with
// their header once full.
func encodePostings(pairs []termFile, bs *buildScratch) postingIndex {
	arena, first, off := bs.arena[:0], bs.first[:0], bs.off[:0]
	var ix postingIndex
	ix.nPostings = len(pairs)
	distinct := 0
	for k := 0; k < len(pairs); k++ {
		if k == 0 || pairs[k].id != pairs[k-1].id {
			distinct++
		}
	}
	if distinct > 0 {
		ix.fbits = 6
		for 1<<ix.fbits < distinct*filterBitsPerTerm {
			ix.fbits++
		}
		ix.filter = make([]uint64, 1<<ix.fbits/64)
	}

	var idBuf [postingBlockLen * 5]byte // ≤ 15 deltas × max 5-byte uvarint
	idLen := 0
	pay := bs.pay[:0]
	var mask uint
	prevID := dict.TermID(0)
	flush := func() {
		arena = append(arena, byte(idLen), byte(mask), byte(mask>>8))
		arena = append(arena, idBuf[:idLen]...)
		arena = append(arena, pay...)
		idLen, pay, mask = 0, pay[:0], 0
	}
	for k := 0; k < len(pairs); {
		id := pairs[k].id
		j := k + 1
		for j < len(pairs) && pairs[j].id == id {
			j++
		}
		e := ix.nTerms % postingBlockLen
		if e == 0 {
			if ix.nTerms > 0 {
				flush()
			}
			first = append(first, id)
			off = append(off, uint32(len(arena)))
		} else {
			idLen = len(vpost.AppendUvarint(idBuf[:idLen], uint64(id-prevID)))
		}
		h := uint32(id) * 2654435761 >> (32 - ix.fbits)
		ix.filter[h>>6] |= 1 << (h & 63)
		if j-k == 1 {
			pay = vpost.AppendUvarint(pay, uint64(uint32(pairs[k].file)))
		} else {
			mask |= 1 << uint(e)
			pay = vpost.AppendUvarint(pay, uint64(j-k))
			prev := int32(-1)
			for i := k; i < j; i++ {
				pay = vpost.AppendUvarint(pay, uint64(uint32(pairs[i].file-prev-1)))
				prev = pairs[i].file
			}
		}
		prevID = id
		ix.nTerms++
		k = j
	}
	if ix.nTerms > 0 {
		flush()
	}
	bs.arena, bs.pay, bs.first, bs.off = arena, pay, first, off
	if len(arena) > 0 {
		ix.arena = append(make([]byte, 0, len(arena)), arena...)
		ix.blockFirst = append(make([]dict.TermID, 0, len(first)), first...)
		ix.blockOff = append(make([]uint32, 0, len(off)), off...)
	}
	return ix
}

// IndexBuilder builds standalone per-peer posting indexes against a
// shared dictionary — the sharded snapshot construction path, which
// indexes peers without ever assembling a Network. The zero value is
// ready; reuse one builder per worker so the construction scratch
// amortizes across thousands of peers.
type IndexBuilder struct {
	bs buildScratch
}

// Build indexes lib against d and returns the encoded index in its
// persistence form (identical bytes to what BuildIndexes produces for the
// same library and dictionary). Unlike the in-network path there is no
// local-dictionary fallback: the sharded builder derives its dictionary
// from the same stream that produced lib, so an unknown token means the
// inputs diverged and is reported as an error.
func (b *IndexBuilder) Build(d *dict.Dict, lib []File) (IndexState, error) {
	idx, ok := buildPostings(d, lib, &b.bs)
	if !ok {
		return IndexState{}, fmt.Errorf("gnet: IndexBuilder: library holds a token the shared dictionary does not")
	}
	return IndexState{
		NTerms: idx.nTerms, NPostings: idx.nPostings,
		BlockFirst: idx.blockFirst, BlockOff: idx.blockOff, Arena: idx.arena,
	}, nil
}

// libraryNames projects a library onto its file names.
func libraryNames(lib []File) []string {
	names := make([]string, len(lib))
	for i, f := range lib {
		names[i] = f.Name
	}
	return names
}

// buildIndex builds the peer's term → file index (interned or legacy).
// Always reached through indexOnce.
func (p *Peer) buildIndex() {
	var bs buildScratch
	p.buildIndexWith(&bs)
}

// buildIndexWith is buildIndex with the construction scratch hoisted out,
// so BuildIndexes reuses one scratch per worker across thousands of peers.
func (p *Peer) buildIndexWith(bs *buildScratch) {
	if p.legacy {
		p.buildLegacyIndex()
		return
	}
	if p.dict == nil {
		// Peer assembled without a catalog (tests, hand-built networks):
		// intern against a dictionary of its own library.
		p.dict = dict.FromNames(libraryNames(p.Library), 1)
	}
	idx, ok := buildPostings(p.dict, p.Library, bs)
	if !ok {
		// The library gained names after construction; re-intern locally.
		p.dict = dict.FromNames(libraryNames(p.Library), 1)
		idx, _ = buildPostings(p.dict, p.Library, bs)
	}
	p.idx = idx
}

// BuildIndexes eagerly builds every peer's index over up to `workers`
// goroutines (≤ 0 resolves to GOMAXPROCS), then folds the per-term global
// document frequencies floods use to probe rarest-first. Indexes are
// otherwise built lazily on first Match; building them up front makes
// construction cost measurable and keeps the first flood off the slow
// path. The result is identical for every worker count: each peer's index
// depends only on its own library and the shared dictionary, and the DF
// merge is an order-free integer sum.
func (nw *Network) BuildIndexes(workers int) error {
	err := parallel.ForEachWith(workers, len(nw.Peers), func() *buildScratch { return new(buildScratch) },
		func(bs *buildScratch, i int) error {
			p := nw.Peers[i]
			p.indexOnce.Do(func() { p.buildIndexWith(bs) })
			return nil
		})
	if err != nil {
		return err
	}
	nw.buildTermDF(workers)
	if nw.dict != nil {
		// Every peer's index is built; queries from here on resolve a
		// handful of tokens per flood, so trade the construction-phase
		// lookup map for binary search over the term arena.
		nw.dict.Compact()
	}
	return nil
}

// buildTermDF folds every peer's index into termDF: for each shared-dict
// term, the total number of postings network-wide. Floods sort a query's
// resolved IDs by this frequency so the first per-peer probe is the term
// likeliest to miss (most peers hold no posting for a globally rare term,
// and one miss ends the conjunctive match). Sharded over workers with
// per-worker counters merged by sum, so the result is worker-invariant.
func (nw *Network) buildTermDF(workers int) {
	if nw.dict == nil || nw.termDF != nil {
		return
	}
	n := nw.dict.Len()
	shards, _ := parallel.Map(workers, parallel.Workers(workers), func(w int) ([]int32, error) {
		ws := parallel.Workers(workers)
		counts := make([]int32, n)
		for i := w; i < len(nw.Peers); i += ws {
			p := nw.Peers[i]
			if p.legacy || p.dict != nw.dict {
				continue
			}
			p.idx.forEach(func(id dict.TermID, ref postingsRef) {
				counts[id] += int32(ref.count)
			})
		}
		return counts, nil
	})
	df := make([]int32, n)
	for _, counts := range shards {
		for i, c := range counts {
			df[i] += c
		}
	}
	nw.termDF = df
}

// sortByGlobalDF orders ids rarest-first by network-wide document
// frequency (ties by id; NoTerm sorts first — it misses everywhere).
// Purely an ordering change: conjunctive intersection is commutative and
// match output stays ascending by file index.
func (nw *Network) sortByGlobalDF(ids []dict.TermID) {
	df := nw.termDF
	if df == nil || len(ids) < 2 {
		return
	}
	key := func(id dict.TermID) int64 {
		if int(id) >= len(df) {
			return -1 // NoTerm (or a foreign id): misses on the first probe
		}
		return int64(df[id])<<32 | int64(id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && key(ids[j]) < key(ids[j-1]); j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// UseLegacyStringIndex switches the whole network to the pre-interning
// map[string][]int32 index and string-keyed match path. Retained as the
// reference implementation for equivalence tests and memory benchmarks.
// Call before anything triggers index construction (Match, Flood,
// EnableQRP, BuildIndexes); indexes already built stay as they are.
func (nw *Network) UseLegacyStringIndex() {
	nw.dict = nil
	nw.termDF = nil
	for _, p := range nw.Peers {
		p.dict = nil
		p.legacy = true
	}
}

// TermDict returns the network-wide interned dictionary (nil for networks
// without one — hand-assembled peers or after UseLegacyStringIndex).
func (nw *Network) TermDict() *dict.Dict { return nw.dict }

// Match returns the library files matching the query criteria under the
// Gnutella keyword rule (every query token must appear in the file name).
func (p *Peer) Match(criteria string) []File {
	p.indexOnce.Do(p.buildIndex)
	if p.legacy {
		return p.matchTokensLegacy(TokenizeQuery(criteria))
	}
	toks := TokenizeQuery(criteria)
	if len(toks) == 0 {
		return nil
	}
	// Stack-sized scratch: real queries are a handful of terms, so the
	// one-shot Match path avoids the flood context's reusable buffers
	// without paying a heap allocation per call.
	var idsBuf [8]dict.TermID
	var s matchScratch
	ids, ok := p.dict.Resolve(toks, idsBuf[:0])
	if !ok {
		return nil
	}
	return p.matchIDs(ids, &s)
}

// MatchTokens is Match with tokenization hoisted out: toks must come from
// TokenizeQuery. scratch is grown as needed and returned for reuse across
// calls (floods use the richer matchForFlood instead).
func (p *Peer) MatchTokens(toks, scratch []string) ([]File, []string) {
	p.indexOnce.Do(p.buildIndex)
	if p.legacy {
		scratch = append(scratch[:0], toks...)
		return p.matchTokensLegacy(scratch), scratch
	}
	if len(toks) == 0 {
		return nil, scratch
	}
	ids, ok := p.dict.Resolve(toks, nil)
	if !ok {
		return nil, scratch
	}
	var s matchScratch
	return p.matchIDs(ids, &s), scratch
}

// matchForFlood matches one flood's query against this peer. d and qids are
// the flood's hoisted dictionary and resolved term IDs (d == nw.dict); toks
// are the deduped string tokens for peers that cannot use qids — legacy
// peers, and peers whose mutated library forced a local dictionary.
func (p *Peer) matchForFlood(d *dict.Dict, qids []dict.TermID, toks []string, s *matchScratch) []File {
	p.indexOnce.Do(p.buildIndex)
	if p.legacy {
		s.str = append(s.str[:0], toks...)
		return p.matchTokensLegacy(s.str)
	}
	ids := qids
	if p.dict != d {
		var ok bool
		s.ids, ok = p.dict.Resolve(toks, s.ids[:0])
		if !ok {
			return nil
		}
		ids = s.ids
	}
	return p.matchIDs(ids, s)
}

// matchScratch is per-flood match state, reused across every reached peer:
// resolved fallback IDs, the per-term refs being sorted, the decode buffer
// the rarest posting list lands in, and legacy-path token copies.
type matchScratch struct {
	ids  []dict.TermID
	sel  []postingsRef
	post []int32
	str  []string
}

// matchIDs intersects the posting lists of ids, rarest term first so the
// candidate set never grows. Any id missing from the index (including
// NoTerm) matches nothing — the conjunctive rule. Only the rarest list is
// decoded (into the reusable scratch); the rest stream through cursors.
func (p *Peer) matchIDs(ids []dict.TermID, s *matchScratch) []File {
	if len(ids) == 0 {
		return nil
	}
	s.sel = s.sel[:0]
	for _, id := range ids {
		ref, ok := p.idx.lookup(id)
		if !ok {
			return nil
		}
		s.sel = append(s.sel, ref)
	}
	sel := s.sel
	// Insertion sort by posting-list length: queries have a handful of
	// terms, and this replaces the legacy sort.Slice on strings.
	for i := 1; i < len(sel); i++ {
		for j := i; j > 0 && sel[j].count < sel[j-1].count; j-- {
			sel[j], sel[j-1] = sel[j-1], sel[j]
		}
	}
	cur := s.post[:0]
	if sel[0].count == 1 {
		cur = append(cur, sel[0].single)
	} else {
		c := vpost.NewCursor(sel[0].body, sel[0].count)
		for {
			v, ok := c.Next()
			if !ok {
				break
			}
			cur = append(cur, v)
		}
	}
	s.post = cur[:0] // retain the (possibly grown) buffer for the next peer
	for _, w := range sel[1:] {
		if len(cur) == 0 {
			return nil
		}
		cur = intersectRef(cur, w)
	}
	if len(cur) == 0 {
		return nil
	}
	out := make([]File, len(cur))
	for i, idx := range cur {
		out[i] = p.Library[idx]
	}
	return out
}

// intersectRef intersects the ascending candidate list cur with w's
// postings in place: survivors are written back into cur's prefix (the
// write index never passes the read index, and the arena is never
// mutated).
func intersectRef(cur []int32, w postingsRef) []int32 {
	if w.count == 1 {
		for _, v := range cur {
			if v == w.single {
				cur[0] = v
				return cur[:1]
			}
			if v > w.single {
				break
			}
		}
		return cur[:0]
	}
	c := vpost.NewCursor(w.body, w.count)
	out := cur[:0]
	v, ok := c.Next()
	for i := 0; i < len(cur) && ok; {
		switch {
		case cur[i] < v:
			i++
		case cur[i] > v:
			v, ok = c.Next()
		default:
			out = append(out, cur[i])
			i++
			v, ok = c.Next()
		}
	}
	return out
}

// intersectPostings intersects two ascending posting lists into a fresh
// slice (the legacy map path's helper; the compressed path streams through
// intersectRef instead).
func intersectPostings(a, b []int32) []int32 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	out := make([]int32, 0, n)
	for i, j := 0, 0; i < len(a) && j < len(b); {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// smallQueryDedupe is the token count below which TokenizeQuery dedupes
// with a quadratic scan instead of allocating a map — real queries are a
// few keywords, and the scan beats the map allocation there.
const smallQueryDedupe = 12

// TokenizeQuery returns the deduped keyword list the match path intersects,
// in first-appearance order. Hoist it out of any loop that matches one
// query against many peers (a flood matches every reached peer).
func TokenizeQuery(criteria string) []string {
	toks := terms.Tokenize(criteria)
	if len(toks) < 2 {
		return toks
	}
	if len(toks) <= smallQueryDedupe {
		return dedupeLinear(toks)
	}
	return dedupeMap(toks)
}

// dedupeLinear dedupes in place by scanning the kept prefix; first
// appearance wins.
func dedupeLinear(toks []string) []string {
	uniq := toks[:1]
	for _, t := range toks[1:] {
		dup := false
		for _, u := range uniq {
			if t == u {
				dup = true
				break
			}
		}
		if !dup {
			uniq = append(uniq, t)
		}
	}
	return uniq
}

// dedupeMap dedupes with a set; first appearance wins.
func dedupeMap(toks []string) []string {
	uniq := toks[:0]
	seen := make(map[string]struct{}, len(toks))
	for _, t := range toks {
		if _, dup := seen[t]; !dup {
			seen[t] = struct{}{}
			uniq = append(uniq, t)
		}
	}
	return uniq
}

// IndexStats summarizes the network's term-index footprint.
type IndexStats struct {
	Peers      int    // peers in the network
	DictTerms  int    // distinct terms in the shared dictionary (0 if none)
	IndexTerms int    // total distinct (peer, term) pairs
	Postings   int    // total posting entries across all peers
	HeapBytes  uint64 // estimated retained bytes: peer indexes + shared dictionary
	ArenaBytes uint64 // compressed posting-arena bytes (skip arrays + varint arenas)
}

// IndexStats builds all indexes (sequentially if not already built) and
// returns their footprint. Legacy-path networks report the map-based
// estimate: per-entry map overhead plus key headers plus posting slices —
// an undercount, since legacy keys also pin lowered copies of file names.
func (nw *Network) IndexStats() (IndexStats, error) {
	if err := nw.BuildIndexes(0); err != nil {
		return IndexStats{}, err
	}
	st := IndexStats{Peers: len(nw.Peers)}
	if nw.dict != nil {
		st.DictTerms = nw.dict.Len()
		st.HeapBytes += nw.dict.HeapBytes()
		st.HeapBytes += uint64(len(nw.termDF)) * 4
	}
	for _, p := range nw.Peers {
		if p.legacy {
			for tok, posts := range p.termIndex {
				st.IndexTerms++
				st.Postings += len(posts)
				// key header + bytes, slice header + data, ~map bucket share.
				st.HeapBytes += 16 + uint64(len(tok)) + 24 + uint64(len(posts))*4 + 16
			}
			continue
		}
		st.IndexTerms += p.idx.nTerms
		st.Postings += p.idx.nPostings
		st.HeapBytes += p.idx.heapBytes()
		st.ArenaBytes += p.idx.heapBytes()
	}
	return st, nil
}

// IndexChecksum builds all indexes and folds the dictionary plus every
// peer's decoded index — term IDs, counts, posting values, independent of
// the arena representation — into one FNV-1a fingerprint: the worker-count
// determinism gate for parallel construction and the snapshot round-trip
// gate for persistence.
func (nw *Network) IndexChecksum() (uint64, error) {
	if err := nw.BuildIndexes(0); err != nil {
		return 0, err
	}
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	if nw.dict != nil {
		put(nw.dict.Checksum())
		put(uint64(nw.dict.Len()))
	}
	for _, p := range nw.Peers {
		put(uint64(p.idx.nTerms))
		p.idx.forEach(func(id dict.TermID, ref postingsRef) {
			put(uint64(id))
			put(uint64(ref.count))
			c := ref.cursor()
			for {
				v, ok := c.Next()
				if !ok {
					break
				}
				put(uint64(uint32(v)))
			}
		})
	}
	return h.Sum64(), nil
}
