package gnet

import (
	"bufio"
	"errors"
	"io"

	"querycentric/internal/gmsg"
)

// errPeerDeparted ends a servent session when the fault plane makes the
// peer depart mid-response; the client just sees the connection close.
var errPeerDeparted = errors.New("gnet: peer departed")

// msgConn frames gmsg descriptors over a byte stream.
type msgConn struct {
	r *bufio.Reader
	w *bufio.Writer
}

func newMsgConn(rw io.ReadWriter) *msgConn {
	return &msgConn{r: bufio.NewReader(rw), w: bufio.NewWriter(rw)}
}

func (c *msgConn) read() (*gmsg.Message, error) {
	return gmsg.ReadMessage(c.r)
}

func (c *msgConn) write(m *gmsg.Message) error {
	if err := gmsg.WriteMessage(c.w, m); err != nil {
		return err
	}
	return c.w.Flush()
}

// handle answers one inbound descriptor on a servent connection.
func (nw *Network) handle(p *Peer, m *gmsg.Message, c *msgConn) error {
	switch m.Header.Type {
	case gmsg.TypePing:
		return nw.handlePing(p, m, c)
	case gmsg.TypeQuery:
		return nw.handleQuery(p, m, c)
	case gmsg.TypeBye:
		// The remote is announcing a clean shutdown: end the session so the
		// connection is torn down instead of lingering half-open.
		return errPeerDeparted
	default:
		// Pongs, pushes and query hits arriving at a servent that didn't
		// ask for them are dropped, per the spec's routing rules.
		return nil
	}
}

// handlePing answers with a Pong for the peer itself and, if the ping's TTL
// permits onward travel, cached Pongs for each neighbour (pong caching —
// this is what let crawlers discover topology quickly).
func (nw *Network) handlePing(p *Peer, m *gmsg.Message, c *msgConn) error {
	kb := uint32(0)
	for _, f := range p.Library {
		kb += f.Size / 1024
	}
	self := &gmsg.Message{
		Header: gmsg.Header{GUID: m.Header.GUID, Type: gmsg.TypePong, TTL: m.Header.Hops + 1},
		Pong: &gmsg.Pong{
			Port: p.Addr.Port, IP: p.Addr.IP,
			FilesCount: uint32(len(p.Library)), KBShared: kb,
		},
	}
	if err := c.write(self); err != nil {
		return err
	}
	if m.Header.TTL <= 1 {
		return nil
	}
	for _, nb := range p.Neighbors {
		q := nw.Peers[nb]
		pong := &gmsg.Message{
			Header: gmsg.Header{GUID: m.Header.GUID, Type: gmsg.TypePong, TTL: m.Header.Hops + 1, Hops: 1},
			Pong: &gmsg.Pong{
				Port: q.Addr.Port, IP: q.Addr.IP,
				FilesCount: uint32(len(q.Library)),
			},
		}
		if err := c.write(pong); err != nil {
			return err
		}
	}
	return nil
}

// handleQuery answers a keyword query (or a BrowseCriteria enumeration)
// with QueryHit descriptors, batching results to the wire limit. A query
// that matches nothing is answered with an empty QueryHit so that
// synchronous callers (the crawler) see a definite end of results; real
// servents stay silent, but the extra descriptor changes nothing the
// analyses measure.
func (nw *Network) handleQuery(p *Peer, m *gmsg.Message, c *msgConn) error {
	var files []File
	if m.Query.Criteria == BrowseCriteria {
		files = p.Library
	} else {
		files = p.Match(m.Query.Criteria)
	}
	// The stream ends at the first batch carrying fewer than
	// maxResultsPerHit results (possibly zero).
	for start := 0; ; {
		end := start + maxResultsPerHit
		if end > len(files) {
			end = len(files)
		}
		qh := &gmsg.QueryHit{
			Port: p.Addr.Port, IP: p.Addr.IP, Speed: 1000,
			ServentID: p.ServentID,
		}
		for _, f := range files[start:end] {
			qh.Results = append(qh.Results, gmsg.Result{
				FileIndex: f.Index, FileSize: f.Size, FileName: f.Name,
			})
		}
		msg := &gmsg.Message{
			Header:   gmsg.Header{GUID: m.Header.GUID, Type: gmsg.TypeQueryHit, TTL: m.Header.Hops + 1},
			QueryHit: qh,
		}
		if err := c.write(msg); err != nil {
			return err
		}
		if end-start < maxResultsPerHit {
			return nil
		}
		start = end
		// Session fault: the peer departs between result batches, leaving
		// the client with a partial enumeration and an EOF.
		if nw.faults.PeerDepart(p.ID) {
			return errPeerDeparted
		}
	}
}
