package gnet

import (
	"fmt"
	"io"

	"querycentric/internal/dict"
	"querycentric/internal/gmsg"
	"querycentric/internal/parallel"
)

// IndexState is the persistable form of one peer's compressed posting
// index: the raw skip arrays and varint arena, exactly as held in memory.
// The membership filter and the network-wide term frequencies are derived
// data and are rebuilt on restore.
type IndexState struct {
	NTerms     int
	NPostings  int
	BlockFirst []dict.TermID
	BlockOff   []uint32
	Arena      []byte
}

// PeerState is the persistable state of one peer. Addr and ID are derived
// from the peer's position and are not carried.
type PeerState struct {
	Ultrapeer bool
	ServentID gmsg.GUID
	Neighbors []int
	Library   []File
	Index     IndexState
}

// NetworkState is the deterministic substrate a snapshot persists: the
// topology configuration, every peer's identity/links/library/index, the
// firewalled mask and the shared interned dictionary (as its raw term
// arena; QRP hash products are recomputed on restore). Fault planes, QRP
// tables and observability attachments are runtime state and are not part
// of a snapshot.
type NetworkState struct {
	Config     Config
	Firewalled []bool
	Peers      []PeerState
	DictBytes  []byte   // concatenated term bytes, ID order
	DictOff    []uint32 // TermID → DictBytes offset; len = terms+1

	// Borrowed marks a state whose byte slices (file names, posting
	// arenas, skip arrays, dictionary arena) are zero-copy views of an
	// external mapping rather than heap memory; Backing, when non-nil, is
	// that mapping and is adopted by NewFromState so Network.Close can
	// release it. The loader guarantees the views are never written: all
	// mutable structures built over them are fresh heap allocations.
	Borrowed bool
	Backing  io.Closer
}

// ExportState builds every index (if not already built) and returns the
// network's persistable state. The returned state shares slices with the
// live network — treat it as an immutable view and do not mutate the
// network while it is in use. Only catalog-built networks on the interned
// path can be exported: legacy string-index networks and peers that fell
// back to a local dictionary (library mutated after construction) have no
// shared-dictionary representation to persist.
func (nw *Network) ExportState() (*NetworkState, error) {
	if nw.dict == nil {
		return nil, fmt.Errorf("gnet: ExportState: network has no shared dictionary (legacy or hand-assembled)")
	}
	if err := nw.BuildIndexes(0); err != nil {
		return nil, err
	}
	st := &NetworkState{
		Config:     nw.Config,
		Firewalled: nw.firewalled,
		Peers:      make([]PeerState, len(nw.Peers)),
	}
	st.DictBytes, st.DictOff = nw.dict.Raw()
	for i, p := range nw.Peers {
		if p.legacy || p.dict != nw.dict {
			return nil, fmt.Errorf("gnet: ExportState: peer %d does not use the shared dictionary", i)
		}
		st.Peers[i] = PeerState{
			Ultrapeer: p.Ultrapeer,
			ServentID: p.ServentID,
			Neighbors: p.Neighbors,
			Library:   p.Library,
			Index: IndexState{
				NTerms:     p.idx.nTerms,
				NPostings:  p.idx.nPostings,
				BlockFirst: p.idx.blockFirst,
				BlockOff:   p.idx.blockOff,
				Arena:      p.idx.arena,
			},
		}
	}
	return st, nil
}

// NewFromState reconstructs a network from a persisted state: peers get
// their identities, links, libraries and ready-built posting indexes back;
// membership filters, QRP hash products and the global term-frequency
// table are rebuilt (over up to `workers` goroutines) since they are pure
// functions of the persisted data. The state's slices are adopted, not
// copied — do not reuse st after a successful call.
//
// A restored network floods, crawls and serves byte-identically to the
// freshly built network it was exported from.
func NewFromState(st *NetworkState, workers int) (*Network, error) {
	n := len(st.Peers)
	if n <= 1 {
		return nil, fmt.Errorf("gnet: NewFromState: need at least 2 peers, got %d", n)
	}
	if len(st.Firewalled) != n {
		return nil, fmt.Errorf("gnet: NewFromState: firewalled mask has %d entries for %d peers", len(st.Firewalled), n)
	}
	d, err := dict.FromRaw(st.DictBytes, st.DictOff, workers)
	if err != nil {
		return nil, fmt.Errorf("gnet: NewFromState: %w", err)
	}
	nw := &Network{
		Config:     st.Config,
		Peers:      make([]*Peer, n),
		firewalled: st.Firewalled,
		dict:       d,
		backing:    st.Backing,
		borrowed:   st.Borrowed,
	}
	// Per-peer restoration is pure (validation, wiring, filter rebuild from
	// the peer's own arena), so it fans out without affecting the result.
	if err := parallel.ForEach(workers, n, func(i int) error {
		ps := &st.Peers[i]
		nBlocks := (ps.Index.NTerms + postingBlockLen - 1) / postingBlockLen
		if len(ps.Index.BlockFirst) != nBlocks || len(ps.Index.BlockOff) != nBlocks {
			return fmt.Errorf("gnet: NewFromState: peer %d index has %d/%d blocks for %d terms",
				i, len(ps.Index.BlockFirst), len(ps.Index.BlockOff), ps.Index.NTerms)
		}
		p := &Peer{
			ID:        i,
			Addr:      addrFor(i),
			Ultrapeer: ps.Ultrapeer,
			ServentID: ps.ServentID,
			Neighbors: ps.Neighbors,
			Library:   ps.Library,
			dict:      d,
			idx: postingIndex{
				nTerms:     ps.Index.NTerms,
				nPostings:  ps.Index.NPostings,
				blockFirst: ps.Index.BlockFirst,
				blockOff:   ps.Index.BlockOff,
				arena:      ps.Index.Arena,
			},
		}
		p.idx.buildFilter()
		// The restored index is live: Match and floods must use it as-is,
		// never rebuild. Burn the once so the lazy path stays cold.
		p.indexOnce.Do(func() {})
		nw.Peers[i] = p
		return nil
	}); err != nil {
		return nil, err
	}
	nw.buildTermDF(workers)
	return nw, nil
}
