package gnet

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// These tests pin the handshake failure paths the crawler's retry
// discipline depends on: a connection reset or a truncated write
// mid-handshake must surface promptly as an error the caller can classify
// as retryable (anything but ErrFirewalled) — never a hang, and never a
// nil handshake with a nil error.

// connectUnderFault dials peer id, wraps the client side in a faultConn
// with the given byte budget, and runs the handshake with a watchdog. It
// fails the test if Connect hangs.
func connectUnderFault(t *testing.T, nw *Network, id, budget int, truncate bool) error {
	t.Helper()
	client, server := net.Pipe()
	go func() {
		defer server.Close()
		_ = nw.ServeConn(id, server)
	}()
	conn := newFaultConn(client, budget, truncate)
	defer conn.Close()

	type outcome struct {
		h   *Handshake
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		h, err := Connect(conn, map[string]string{"User-Agent": "t"})
		done <- outcome{h, err}
	}()
	select {
	case out := <-done:
		if out.err == nil && out.h == nil {
			t.Fatal("Connect returned nil handshake with nil error")
		}
		return out.err
	case <-time.After(10 * time.Second):
		t.Fatal("Connect hung on a faulted connection")
		return nil
	}
}

func TestHandshakeConnResetIsRetryable(t *testing.T) {
	nw := populatedNet(t, 60)
	// Budgets straddle every phase of the handshake: mid-greeting,
	// mid-header block, mid-confirmation.
	for _, budget := range []int{1, 16, 40, 80, 120} {
		err := connectUnderFault(t, nw, 2, budget, false)
		if err == nil {
			// The whole handshake fit inside the budget; nothing to classify.
			continue
		}
		if errors.Is(err, ErrFirewalled) {
			t.Fatalf("budget %d: reset classified as firewalled (permanent), want retryable", budget)
		}
		if !errors.Is(err, ErrConnReset) && !errors.Is(err, io.EOF) &&
			!errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.ErrClosedPipe) {
			t.Fatalf("budget %d: unexpected reset-mode error: %v", budget, err)
		}
	}
	// A zero budget dies before the first byte and must error, not hang.
	if err := connectUnderFault(t, nw, 3, 0, false); err == nil {
		t.Fatal("handshake over a dead-on-arrival connection succeeded")
	}
}

func TestHandshakeTruncatedWriteIsRetryable(t *testing.T) {
	nw := populatedNet(t, 60)
	for _, budget := range []int{1, 16, 40, 80, 120} {
		err := connectUnderFault(t, nw, 4, budget, true)
		if err == nil {
			continue
		}
		if errors.Is(err, ErrFirewalled) {
			t.Fatalf("budget %d: truncation classified as firewalled (permanent), want retryable", budget)
		}
		// Truncate mode ends with a clean EOF mid-message; the handshake
		// reader must surface the EOF family, not silence.
		if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) &&
			!errors.Is(err, io.ErrClosedPipe) && !errors.Is(err, ErrConnReset) {
			t.Fatalf("budget %d: unexpected truncate-mode error: %v", budget, err)
		}
	}
}
