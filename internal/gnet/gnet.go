// Package gnet implements an in-process Gnutella 0.6 network: peers with
// shared libraries, a two-tier (ultrapeer/leaf) or flat topology, keyword
// query flooding over real encoded descriptors, the GNUTELLA/0.6 handshake,
// and a wire servent that answers crawler connections.
//
// It is the substitute substrate for the live network the paper crawled:
// the crawler in internal/crawler performs a genuine topology crawl (via
// X-Try-Ultrapeers handshake headers, as Cruiser did) and file crawl (via
// browse queries) against this network, and the downstream analyses consume
// only what the crawler observed.
package gnet

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"querycentric/internal/capacity"
	"querycentric/internal/catalog"
	"querycentric/internal/dict"
	"querycentric/internal/faults"
	"querycentric/internal/gmsg"
	"querycentric/internal/qrp"
	"querycentric/internal/rng"
)

// Addr is a synthetic peer address.
type Addr struct {
	IP   [4]byte
	Port uint16
}

// String renders the address as "a.b.c.d:port".
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d:%d", a.IP[0], a.IP[1], a.IP[2], a.IP[3], a.Port)
}

// File is one shared library entry.
type File struct {
	Index uint32
	Size  uint32
	Name  string
}

// Peer is one servent in the network.
type Peer struct {
	ID        int
	Addr      Addr
	Ultrapeer bool
	ServentID gmsg.GUID
	Neighbors []int // peer IDs of direct connections
	Library   []File

	// dict resolves tokens to TermIDs for the compact interned index: the
	// network-wide dictionary when the network was built from a catalog,
	// else a peer-local dictionary built lazily from the peer's own
	// library. idx is the posting index over dict's IDs (see index.go).
	dict *dict.Dict
	idx  postingIndex

	// termIndex is the pre-interning map-keyed index, built only when the
	// network is switched to the legacy path (see UseLegacyStringIndex);
	// retained as the reference implementation for the equivalence gate
	// and the before/after memory benchmarks.
	termIndex map[string][]int32
	legacy    bool

	// indexOnce guards lazy index construction (parallel floods may race
	// to the first Match).
	indexOnce sync.Once
}

// Config shapes the overlay topology.
type Config struct {
	Seed uint64
	// UltrapeerFrac is the fraction of peers promoted to ultrapeers. Zero
	// builds a flat random topology of degree FlatDegree.
	UltrapeerFrac float64
	// UltraDegree is the number of ultrapeer-to-ultrapeer connections.
	UltraDegree int
	// FlatDegree is the peer degree when UltrapeerFrac is zero.
	FlatDegree int
	// FirewalledFrac is the fraction of peers that refuse inbound crawler
	// connections (they still participate in the overlay).
	FirewalledFrac float64
}

// DefaultConfig is a modern-Gnutella-like two-tier topology: ~15%
// ultrapeers, each ultrapeer keeping ~10 ultrapeer links, leaves attached
// to 3 ultrapeers.
func DefaultConfig(seed uint64) Config {
	return Config{Seed: seed, UltrapeerFrac: 0.15, UltraDegree: 10, FlatDegree: 8}
}

// LeafUltras is how many ultrapeers each leaf connects to.
const LeafUltras = 3

// Network is a fully built Gnutella overlay.
type Network struct {
	Config     Config
	Peers      []*Peer
	firewalled []bool

	// dict is the network-wide interned term dictionary, built once from
	// the catalog all peers share (nil for networks assembled without one,
	// and after UseLegacyStringIndex). termDF[id] is the network-wide
	// posting count of term id, folded by BuildIndexes so floods can probe
	// each peer's index rarest-term-first (see sortByGlobalDF).
	dict   *dict.Dict
	termDF []int32

	// qrpTables[p] is leaf p's query-route table, held by its ultrapeers;
	// nil while QRP is disabled. qrpBits is the table width, recorded so
	// floods can hash a query's criteria once instead of per edge.
	qrpTables []*qrp.Table
	qrpBits   uint

	// faults is the injection plane consulted by Dial, servent sessions
	// and Flood; nil injects nothing (see SetFaults).
	faults *faults.Plane

	// capacity is the bounded-ingress overload plane consulted by Flood
	// and the Maintainer's pings; nil admits everything (see SetCapacity).
	capacity *capacity.Plane

	// obs is the attached observability plane; nil (the default) records
	// nothing and costs one pointer check per flood (see Instrument).
	obs *netObs

	// backing pins the storage a mapped-snapshot network borrows its bytes
	// from (file names, posting arenas, skip arrays point into it); nil for
	// heap-built networks. borrowed records that state for diagnostics.
	// Mutating operations never write through the views — neighbor lists
	// and libraries are freshly allocated heap arenas, and index rebuilds
	// replace the postingIndex wholesale — so a borrowed network needs no
	// other special casing (see NewFromState).
	backing  io.Closer
	borrowed bool
}

// Borrowed reports whether the network's file names and posting arenas
// are zero-copy views of a snapshot mapping rather than heap copies.
func (nw *Network) Borrowed() bool { return nw.borrowed }

// Close releases the snapshot mapping backing a network restored with
// snapshot.LoadMapped. After Close every borrowed view (file names,
// posting arenas) is invalid; drop the network. Close is idempotent and a
// no-op for heap-backed networks.
func (nw *Network) Close() error {
	b := nw.backing
	nw.backing = nil
	if b == nil {
		return nil
	}
	return b.Close()
}

// EnableQRP builds a QRP table for every leaf from its shared library, as
// deployed leaves push to their ultrapeers. Floods then apply last-hop
// filtering: an ultrapeer forwards a query to a leaf only if every query
// keyword hits the leaf's table. Only meaningful on two-tier topologies.
//
// With an interned dictionary the tables are built from each leaf's posting
// index: one precomputed hash per distinct library term, instead of
// re-tokenizing and re-hashing every file name. The set of marked slots is
// identical either way (duplicate keyword occurrences map to the same
// slot), so routing decisions do not depend on the path taken.
func (nw *Network) EnableQRP(bits uint) error {
	if _, err := qrp.NewTable(bits); err != nil {
		return err
	}
	interned := nw.dict != nil
	if interned {
		if err := nw.BuildIndexes(0); err != nil {
			return err
		}
	}
	tables := make([]*qrp.Table, len(nw.Peers))
	for _, p := range nw.Peers {
		if p.Ultrapeer {
			continue
		}
		t, err := qrp.NewTable(bits)
		if err != nil {
			return err
		}
		if interned && !p.legacy {
			// p.dict is the shared dictionary unless this peer's library
			// was mutated after construction and it fell back to a local
			// one; either way the index's term IDs resolve against p.dict.
			p.idx.forEach(func(id dict.TermID, _ postingsRef) {
				t.AddSlot(p.dict.Slot(id, bits))
			})
		} else {
			for _, f := range p.Library {
				t.AddName(f.Name)
			}
		}
		// The table travels encoded, as a leaf would ship it.
		back, err := qrp.Decode(t.Encode())
		if err != nil {
			return err
		}
		tables[p.ID] = back
	}
	nw.qrpTables = tables
	nw.qrpBits = bits
	return nil
}

// DisableQRP removes route tables (floods forward to every leaf again).
func (nw *Network) DisableQRP() { nw.qrpTables = nil }

// qrpAllows reports whether a query may be forwarded to peer id under the
// current routing tables (always true when QRP is off or id is not a leaf).
// Floods hoist the hash half of this test out of the per-edge loop; see
// hoistQRP in flood.go.
func (nw *Network) qrpAllows(id int, criteria string) bool {
	return nw.qrpAllowsHoisted(id, nw.hoistQRP(criteria))
}

// New builds a network of n peers with empty libraries.
func New(cfg Config, n int) (*Network, error) {
	if n <= 1 {
		return nil, fmt.Errorf("gnet: need at least 2 peers, got %d", n)
	}
	if cfg.UltrapeerFrac < 0 || cfg.UltrapeerFrac > 1 {
		return nil, fmt.Errorf("gnet: UltrapeerFrac out of range: %g", cfg.UltrapeerFrac)
	}
	if cfg.FirewalledFrac < 0 || cfg.FirewalledFrac > 1 {
		return nil, fmt.Errorf("gnet: FirewalledFrac out of range: %g", cfg.FirewalledFrac)
	}
	if cfg.UltraDegree <= 0 {
		cfg.UltraDegree = 10
	}
	if cfg.FlatDegree <= 0 {
		cfg.FlatDegree = 8
	}
	nw := &Network{Config: cfg, Peers: make([]*Peer, n), firewalled: make([]bool, n)}
	idRNG := rng.NewNamed(cfg.Seed, "gnet/ids")
	for i := 0; i < n; i++ {
		nw.Peers[i] = &Peer{
			ID:        i,
			Addr:      addrFor(i),
			ServentID: gmsg.GUIDFromUint64s(idRNG.Uint64(), idRNG.Uint64()),
		}
	}
	fwRNG := rng.NewNamed(cfg.Seed, "gnet/firewalled")
	for i := range nw.firewalled {
		nw.firewalled[i] = fwRNG.Bool(cfg.FirewalledFrac)
	}
	if cfg.UltrapeerFrac > 0 {
		nw.buildTwoTier()
	} else {
		nw.buildFlat()
	}
	return nw, nil
}

// NewFromCatalog builds a network whose peers share the libraries of a
// content catalog. The catalog must have been built for the same number of
// peers the network will have. Dictionary construction fans out over
// GOMAXPROCS workers; see NewFromCatalogWorkers.
func NewFromCatalog(cfg Config, cat *catalog.Catalog) (*Network, error) {
	return NewFromCatalogWorkers(cfg, cat, 0)
}

// NewFromCatalogWorkers is NewFromCatalog with an explicit worker bound for
// the parallel construction phases (the interned term dictionary; peer
// indexes stay lazy — see BuildIndexes). The built network is byte-identical
// for every worker count: dictionary IDs are assigned in sorted term order
// and the file-size draws stay on one sequential named stream.
func NewFromCatalogWorkers(cfg Config, cat *catalog.Catalog, workers int) (*Network, error) {
	nw, err := New(cfg, len(cat.Libraries))
	if err != nil {
		return nil, err
	}
	sizeRNG := NewFileSizeRNG(cfg.Seed)
	for p, lib := range cat.Libraries {
		files := make([]File, len(lib))
		for i, name := range lib {
			files[i] = File{
				Index: uint32(i),
				Size:  DrawFileSize(sizeRNG),
				Name:  name,
			}
		}
		nw.Peers[p].Library = files
	}
	nw.dict = dict.Build(cat.Libraries, workers)
	for _, p := range nw.Peers {
		p.dict = nw.dict
	}
	return nw, nil
}

// NewFileSizeRNG returns the named stream file sizes are drawn from: one
// sequential stream consumed in global peer order, then library order.
// The sharded snapshot builder draws from the same stream in the same
// order, which is what keeps its libraries byte-identical to this path's.
func NewFileSizeRNG(seed uint64) *rng.Source {
	return rng.NewNamed(seed, "gnet/file-sizes")
}

// DrawFileSize draws the next synthetic file size (1–8 MB) from r.
func DrawFileSize(r *rng.Source) uint32 {
	return uint32(1<<20 + r.Intn(7<<20))
}

// addrFor derives a deterministic synthetic address for peer id.
func addrFor(id int) Addr {
	return Addr{
		IP:   [4]byte{10, byte(id >> 16), byte(id >> 8), byte(id)},
		Port: 6346,
	}
}

// PeerByAddr returns the peer listening at addr, or nil.
func (nw *Network) PeerByAddr(addr Addr) *Peer {
	// addrFor is invertible for the IDs we generate.
	id := int(addr.IP[1])<<16 | int(addr.IP[2])<<8 | int(addr.IP[3])
	if addr.IP[0] != 10 || addr.Port != 6346 || id >= len(nw.Peers) {
		return nil
	}
	return nw.Peers[id]
}

// Firewalled reports whether peer id refuses inbound crawler connections.
func (nw *Network) Firewalled(id int) bool { return nw.firewalled[id] }

// buildTwoTier wires the ultrapeer/leaf topology: ultrapeers form a random
// graph of degree UltraDegree; each leaf attaches to LeafUltras ultrapeers.
func (nw *Network) buildTwoTier() {
	r := rng.NewNamed(nw.Config.Seed, "gnet/topology")
	n := len(nw.Peers)
	nUltra := int(float64(n) * nw.Config.UltrapeerFrac)
	if nUltra < 2 {
		nUltra = 2
	}
	perm := r.Perm(n)
	ultras := perm[:nUltra]
	for _, u := range ultras {
		nw.Peers[u].Ultrapeer = true
	}
	// Ultrapeer mesh: connected ring + random chords up to UltraDegree.
	for i, u := range ultras {
		v := ultras[(i+1)%len(ultras)]
		nw.connect(u, v)
	}
	for _, u := range ultras {
		for len(nw.Peers[u].Neighbors) < nw.Config.UltraDegree {
			v := ultras[r.Intn(len(ultras))]
			if v == u || nw.connected(u, v) {
				// Accept that dense small meshes may not reach the target.
				if len(ultras) <= nw.Config.UltraDegree {
					break
				}
				continue
			}
			if len(nw.Peers[v].Neighbors) >= nw.Config.UltraDegree+4 {
				break // don't overload v
			}
			nw.connect(u, v)
		}
	}
	// Leaves.
	for _, p := range perm[nUltra:] {
		for k := 0; k < LeafUltras && k < len(ultras); k++ {
			u := ultras[r.Intn(len(ultras))]
			if nw.connected(p, u) {
				continue
			}
			nw.connect(p, u)
		}
	}
}

// buildFlat wires a flat random topology: connected ring + random chords.
func (nw *Network) buildFlat() {
	r := rng.NewNamed(nw.Config.Seed, "gnet/topology")
	n := len(nw.Peers)
	for i := 0; i < n; i++ {
		nw.connect(i, (i+1)%n)
	}
	target := nw.Config.FlatDegree
	for i := 0; i < n; i++ {
		for attempt := 0; len(nw.Peers[i].Neighbors) < target && attempt < 20*target; attempt++ {
			j := r.Intn(n)
			if j == i || nw.connected(i, j) || len(nw.Peers[j].Neighbors) >= target+4 {
				continue
			}
			nw.connect(i, j)
		}
	}
}

func (nw *Network) connect(a, b int) {
	nw.Peers[a].Neighbors = append(nw.Peers[a].Neighbors, b)
	nw.Peers[b].Neighbors = append(nw.Peers[b].Neighbors, a)
}

// ConnectPeers adds the undirected overlay edge a–b at runtime (overlay
// maintenance: a repaired or re-established connection). It rejects
// self-loops, duplicate edges and out-of-range IDs. Topology mutation must
// not race floods: callers alternate maintenance and measurement phases.
func (nw *Network) ConnectPeers(a, b int) error {
	if a < 0 || a >= len(nw.Peers) || b < 0 || b >= len(nw.Peers) {
		return fmt.Errorf("gnet: connect %d–%d out of range", a, b)
	}
	if a == b {
		return fmt.Errorf("gnet: self-connection at peer %d", a)
	}
	if nw.connected(a, b) {
		return fmt.Errorf("gnet: peers %d and %d already connected", a, b)
	}
	nw.connect(a, b)
	return nil
}

// DisconnectPeers removes the undirected edge a–b (a departure, a detected
// failure, or a received Bye), reporting whether the edge existed. Removal
// preserves the order of the remaining neighbor lists so mutation sequences
// stay deterministic.
func (nw *Network) DisconnectPeers(a, b int) bool {
	if a < 0 || a >= len(nw.Peers) || b < 0 || b >= len(nw.Peers) || a == b {
		return false
	}
	if !removeNeighbor(nw.Peers[a], b) {
		return false
	}
	removeNeighbor(nw.Peers[b], a)
	return true
}

// AddFile installs a copy of (name, size) in peer id's library — the
// replication half of overlay adaptation — and invalidates the peer's
// posting index so its next match rebuilds over the grown library. The
// library is reallocated rather than appended in place, so mapped-snapshot
// networks never write through their borrowed views. Like ConnectPeers,
// library mutation must not race floods: callers alternate adaptation and
// measurement phases. QRP route tables built before the mutation go stale
// until EnableQRP runs again, and the global DF probe ordering drifts —
// which changes probe order, never match results.
func (nw *Network) AddFile(id int, name string, size uint32) error {
	if id < 0 || id >= len(nw.Peers) {
		return fmt.Errorf("gnet: add file: peer %d out of range", id)
	}
	if name == "" {
		return fmt.Errorf("gnet: add file: empty file name")
	}
	p := nw.Peers[id]
	lib := make([]File, len(p.Library)+1)
	copy(lib, p.Library)
	lib[len(p.Library)] = File{Index: uint32(len(p.Library)), Size: size, Name: name}
	p.Library = lib
	p.idx = postingIndex{}
	p.termIndex = nil
	p.indexOnce = sync.Once{}
	return nil
}

// removeNeighbor deletes id from p's neighbor list in place, keeping order.
func removeNeighbor(p *Peer, id int) bool {
	for i, x := range p.Neighbors {
		if x == id {
			p.Neighbors = append(p.Neighbors[:i], p.Neighbors[i+1:]...)
			return true
		}
	}
	return false
}

func (nw *Network) connected(a, b int) bool {
	pa := nw.Peers[a]
	for _, x := range pa.Neighbors {
		if x == b {
			return true
		}
	}
	return false
}

// Degrees returns the sorted degree sequence (for topology diagnostics).
func (nw *Network) Degrees() []int {
	out := make([]int, len(nw.Peers))
	for i, p := range nw.Peers {
		out[i] = len(p.Neighbors)
	}
	sort.Ints(out)
	return out
}

// IsConnected reports whether the overlay is a single component.
func (nw *Network) IsConnected() bool {
	if len(nw.Peers) == 0 {
		return true
	}
	seen := make([]bool, len(nw.Peers))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range nw.Peers[v].Neighbors {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == len(nw.Peers)
}
