package gnet

import (
	"errors"
	"net"
	"testing"

	"querycentric/internal/gmsg"
)

// dialPeer dials peer id directly regardless of firewall state (test hook).
func dialPeer(t *testing.T, nw *Network, id int) net.Conn {
	t.Helper()
	client, server := net.Pipe()
	go func() {
		defer server.Close()
		_ = nw.ServeConn(id, server)
	}()
	t.Cleanup(func() { client.Close() })
	return client
}

func TestHandshakeOverPipe(t *testing.T) {
	nw := twoTierNet(t, 100)
	conn := dialPeer(t, nw, 0)
	h, err := Connect(conn, map[string]string{"User-Agent": "crawler-test"})
	if err != nil {
		t.Fatal(err)
	}
	if h.Code != 200 {
		t.Fatalf("handshake code %d", h.Code)
	}
	if h.Headers["user-agent"] == "" {
		t.Error("missing server User-Agent header")
	}
	if _, ok := h.Headers["x-ultrapeer"]; !ok {
		t.Error("missing X-Ultrapeer header")
	}
}

func TestHandshakeAdvertisesUltrapeers(t *testing.T) {
	nw := twoTierNet(t, 200)
	// Find a leaf; its X-Try-Ultrapeers must list exactly its ultrapeers.
	var leaf *Peer
	for _, p := range nw.Peers {
		if !p.Ultrapeer && len(p.Neighbors) > 0 {
			leaf = p
			break
		}
	}
	if leaf == nil {
		t.Skip("no leaves")
	}
	conn := dialPeer(t, nw, leaf.ID)
	h, err := Connect(conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := ParseTryUltrapeers(h.Headers["x-try-ultrapeers"])
	if len(got) != len(leaf.Neighbors) {
		t.Fatalf("advertised %d ultrapeers, want %d", len(got), len(leaf.Neighbors))
	}
	for _, a := range got {
		p := nw.PeerByAddr(a)
		if p == nil || !p.Ultrapeer {
			t.Errorf("advertised non-ultrapeer %v", a)
		}
	}
}

func TestHandshakeBusyRejection(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	go func() {
		defer server.Close()
		_, _ = Accept(server, StatusBusy, nil)
	}()
	_, err := Connect(client, nil)
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("expected RejectedError, got %v", err)
	}
	if rej.Code != StatusBusy {
		t.Errorf("code %d, want %d", rej.Code, StatusBusy)
	}
}

func TestPingPongDiscovery(t *testing.T) {
	nw := twoTierNet(t, 150)
	// Dial an ultrapeer, ping with TTL 2, expect a pong for it and each
	// neighbour.
	var ultra *Peer
	for _, p := range nw.Peers {
		if p.Ultrapeer {
			ultra = p
			break
		}
	}
	conn := dialPeer(t, nw, ultra.ID)
	if _, err := Connect(conn, nil); err != nil {
		t.Fatal(err)
	}
	mc := newMsgConn(conn)
	ping := &gmsg.Message{Header: gmsg.Header{
		GUID: gmsg.GUIDFromUint64s(1, 2), Type: gmsg.TypePing, TTL: 2}}
	if err := mc.write(ping); err != nil {
		t.Fatal(err)
	}
	want := 1 + len(ultra.Neighbors)
	seen := map[Addr]bool{}
	for i := 0; i < want; i++ {
		m, err := mc.read()
		if err != nil {
			t.Fatalf("pong %d: %v", i, err)
		}
		if m.Header.Type != gmsg.TypePong {
			t.Fatalf("pong %d has type 0x%02x", i, m.Header.Type)
		}
		seen[Addr{IP: m.Pong.IP, Port: m.Pong.Port}] = true
	}
	if !seen[ultra.Addr] {
		t.Error("no pong for the dialed peer itself")
	}
	for _, nb := range ultra.Neighbors {
		if !seen[nw.Peers[nb].Addr] {
			t.Errorf("no pong for neighbour %d", nb)
		}
	}
}

func TestPingTTL1NoNeighbourPongs(t *testing.T) {
	nw := flatNet(t, 50)
	conn := dialPeer(t, nw, 0)
	if _, err := Connect(conn, nil); err != nil {
		t.Fatal(err)
	}
	mc := newMsgConn(conn)
	ping := &gmsg.Message{Header: gmsg.Header{
		GUID: gmsg.GUIDFromUint64s(3, 4), Type: gmsg.TypePing, TTL: 1}}
	if err := mc.write(ping); err != nil {
		t.Fatal(err)
	}
	m, err := mc.read()
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.Type != gmsg.TypePong {
		t.Fatalf("got type 0x%02x", m.Header.Type)
	}
	// Send a second ping; the very next message must be the self-pong of
	// that ping (i.e. no neighbour pongs were queued from the first).
	ping2 := &gmsg.Message{Header: gmsg.Header{
		GUID: gmsg.GUIDFromUint64s(5, 6), Type: gmsg.TypePing, TTL: 1}}
	if err := mc.write(ping2); err != nil {
		t.Fatal(err)
	}
	m2, err := mc.read()
	if err != nil {
		t.Fatal(err)
	}
	if m2.Header.GUID != ping2.Header.GUID {
		t.Error("unexpected queued pong from TTL-1 ping")
	}
}

func TestBrowseEnumeratesLibrary(t *testing.T) {
	nw := flatNet(t, 10)
	lib := make([]File, 0, 450) // forces 3 batches: 200+200+50
	for i := 0; i < 450; i++ {
		lib = append(lib, File{Index: uint32(i), Size: 1000, Name: "Some Song.mp3"})
	}
	nw.Peers[3].Library = lib
	conn := dialPeer(t, nw, 3)
	if _, err := Connect(conn, nil); err != nil {
		t.Fatal(err)
	}
	mc := newMsgConn(conn)
	q := &gmsg.Message{
		Header: gmsg.Header{GUID: gmsg.GUIDFromUint64s(7, 8), Type: gmsg.TypeQuery, TTL: 1},
		Query:  &gmsg.Query{Criteria: BrowseCriteria},
	}
	if err := mc.write(q); err != nil {
		t.Fatal(err)
	}
	total := 0
	batches := 0
	for {
		m, err := mc.read()
		if err != nil {
			t.Fatal(err)
		}
		if m.Header.Type != gmsg.TypeQueryHit {
			t.Fatalf("got type 0x%02x", m.Header.Type)
		}
		total += len(m.QueryHit.Results)
		batches++
		if len(m.QueryHit.Results) < maxResultsPerHit {
			break
		}
	}
	if total != 450 {
		t.Errorf("browse returned %d files, want 450", total)
	}
	if batches != 3 {
		t.Errorf("browse used %d batches, want 3", batches)
	}
}

func TestBrowseExactBatchMultiple(t *testing.T) {
	nw := flatNet(t, 10)
	lib := make([]File, maxResultsPerHit) // exactly one full batch
	for i := range lib {
		lib[i] = File{Index: uint32(i), Name: "X Y.mp3"}
	}
	nw.Peers[2].Library = lib
	conn := dialPeer(t, nw, 2)
	if _, err := Connect(conn, nil); err != nil {
		t.Fatal(err)
	}
	mc := newMsgConn(conn)
	q := &gmsg.Message{
		Header: gmsg.Header{GUID: gmsg.GUIDFromUint64s(9, 10), Type: gmsg.TypeQuery, TTL: 1},
		Query:  &gmsg.Query{Criteria: BrowseCriteria},
	}
	if err := mc.write(q); err != nil {
		t.Fatal(err)
	}
	total, batches := 0, 0
	for {
		m, err := mc.read()
		if err != nil {
			t.Fatal(err)
		}
		total += len(m.QueryHit.Results)
		batches++
		if len(m.QueryHit.Results) < maxResultsPerHit {
			break
		}
	}
	if total != maxResultsPerHit || batches != 2 {
		t.Errorf("got %d files in %d batches, want %d in 2", total, batches, maxResultsPerHit)
	}
}

func TestKeywordQueryOverWire(t *testing.T) {
	nw := flatNet(t, 10)
	nw.Peers[5].Library = []File{
		{Index: 0, Name: "Aaron Neville - I Don't Know Much.mp3"},
		{Index: 1, Name: "Other Song.mp3"},
	}
	conn := dialPeer(t, nw, 5)
	if _, err := Connect(conn, nil); err != nil {
		t.Fatal(err)
	}
	mc := newMsgConn(conn)
	q := &gmsg.Message{
		Header: gmsg.Header{GUID: gmsg.GUIDFromUint64s(11, 12), Type: gmsg.TypeQuery, TTL: 1},
		Query:  &gmsg.Query{Criteria: "aaron neville"},
	}
	if err := mc.write(q); err != nil {
		t.Fatal(err)
	}
	m, err := mc.read()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.QueryHit.Results) != 1 || m.QueryHit.Results[0].FileIndex != 0 {
		t.Errorf("results: %+v", m.QueryHit.Results)
	}
}

func TestDialFirewalled(t *testing.T) {
	nw, err := New(Config{Seed: 13, FlatDegree: 4, FirewalledFrac: 1.0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Dial(nw.Peers[0].Addr); !errors.Is(err, ErrFirewalled) {
		t.Errorf("expected ErrFirewalled, got %v", err)
	}
}

func TestDialAndHandshake(t *testing.T) {
	nw := flatNet(t, 20)
	conn, err := nw.Dial(nw.Peers[7].Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := Connect(conn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDialUnknownAddr(t *testing.T) {
	nw := flatNet(t, 20)
	if _, err := nw.Dial(Addr{IP: [4]byte{1, 2, 3, 4}, Port: 6346}); err == nil {
		t.Error("dial to unknown address succeeded")
	}
}
