package gnet

import (
	"errors"
	"io"
	"reflect"
	"testing"

	"querycentric/internal/catalog"
	"querycentric/internal/faults"
	"querycentric/internal/gmsg"
	"querycentric/internal/rng"
	"querycentric/internal/terms"
)

// fileOf returns a file name from the first non-empty library at or after
// peer index i.
func fileOf(t *testing.T, nw *Network, i int) string {
	t.Helper()
	for k := 0; k < len(nw.Peers); k++ {
		p := nw.Peers[(i+k)%len(nw.Peers)]
		if len(p.Library) > 0 {
			return p.Library[0].Name
		}
	}
	t.Fatal("no peer has a library")
	return ""
}

// populatedNet builds a two-tier network over a calibrated catalog.
func populatedNet(t *testing.T, peers int) *Network {
	t.Helper()
	cat, err := catalog.Build(catalog.Config{
		Seed: 5, Peers: peers, UniqueObjects: peers * 25, ReplicaAlpha: 2.45,
		VariantProb: 0.05, NonSpecificPeerFrac: 0.03,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewFromCatalog(DefaultConfig(5), cat)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestZeroFaultPlaneLeavesFloodIdentical(t *testing.T) {
	nwA := populatedNet(t, 150)
	nwB := populatedNet(t, 150)
	nwB.SetFaults(faults.New(faults.Config{Seed: 9}))

	for origin := 0; origin < 10; origin++ {
		criteria := fileOf(t, nwA, origin*13+7)
		ra, err := nwA.Flood(origin, criteria, 4, rng.New(uint64(origin)))
		if err != nil {
			t.Fatal(err)
		}
		rb, err := nwB.Flood(origin, criteria, 4, rng.New(uint64(origin)))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("zero-fault plane perturbed flood %d: %+v vs %+v", origin, ra, rb)
		}
	}
}

func TestFloodMessageLossDegradesReach(t *testing.T) {
	base := populatedNet(t, 200)
	criteria := fileOf(t, base, 42)
	clean, err := base.Flood(0, criteria, 5, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}

	lossy := populatedNet(t, 200)
	lossy.SetFaults(faults.New(faults.Config{Seed: 9, MessageLoss: 0.4}))
	faulted, err := lossy.Flood(0, criteria, 5, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if faulted.PeersReached >= clean.PeersReached {
		t.Errorf("40%% loss did not reduce reach: %d vs clean %d",
			faulted.PeersReached, clean.PeersReached)
	}
	if faulted.TotalResults > clean.TotalResults {
		t.Errorf("lossy flood found more results (%d) than clean (%d)",
			faulted.TotalResults, clean.TotalResults)
	}
}

func TestFloodDeadPeersNeverAnswer(t *testing.T) {
	nw := populatedNet(t, 120)
	plane := faults.New(faults.Config{Seed: 2})
	mask := make([]bool, 120)
	for i := range mask {
		mask[i] = i%2 == 0 // odd peers dead
	}
	plane.SetLiveness(mask)
	nw.SetFaults(plane)

	res, err := nw.Flood(0, BrowseCriteria, 5, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.PeersReached == 0 {
		t.Fatal("flood reached nobody")
	}
	for _, h := range res.Hits {
		if h.PeerID%2 != 0 {
			t.Errorf("dead peer %d answered the flood", h.PeerID)
		}
	}
}

func TestDialFaultsAreTransientAndTimeout(t *testing.T) {
	nw := populatedNet(t, 60)
	nw.SetFaults(faults.New(faults.Config{Seed: 4, DialTimeout: 0.5}))
	addr := nw.Peers[1].Addr

	sawTimeout, sawSuccess := false, false
	for attempt := 0; attempt < 40 && !(sawTimeout && sawSuccess); attempt++ {
		conn, err := nw.Dial(addr)
		switch {
		case errors.Is(err, ErrTimeout):
			sawTimeout = true
		case err == nil:
			conn.Close()
			sawSuccess = true
		default:
			t.Fatalf("unexpected dial error: %v", err)
		}
	}
	if !sawTimeout {
		t.Error("no dial ever timed out at 50% fault rate")
	}
	if !sawSuccess {
		t.Error("no dial ever succeeded at 50% fault rate (fault not transient)")
	}
}

func TestDialDeadPeerTimesOut(t *testing.T) {
	nw := populatedNet(t, 60)
	plane := faults.New(faults.Config{Seed: 4})
	mask := make([]bool, 60)
	mask[0] = true
	plane.SetLiveness(mask)
	nw.SetFaults(plane)

	if _, err := nw.Dial(nw.Peers[1].Addr); !errors.Is(err, ErrTimeout) {
		t.Errorf("dial to dead peer: got %v, want ErrTimeout", err)
	}
	conn, err := nw.Dial(nw.Peers[0].Addr)
	if err != nil {
		t.Fatalf("dial to live peer failed: %v", err)
	}
	conn.Close()
}

func TestHandshakeStallSurfacesAsError(t *testing.T) {
	nw := populatedNet(t, 60)
	nw.SetFaults(faults.New(faults.Config{Seed: 6, HandshakeStall: 1}))
	conn, err := nw.Dial(nw.Peers[2].Addr)
	if err != nil {
		t.Fatalf("dial failed: %v", err)
	}
	defer conn.Close()
	if _, err := Connect(conn, map[string]string{"User-Agent": "t"}); err == nil {
		t.Error("handshake against stalled servent succeeded")
	}
}

func TestConnResetKillsStreamMidway(t *testing.T) {
	nw := populatedNet(t, 60)
	nw.SetFaults(faults.New(faults.Config{Seed: 8, ConnReset: 1}))
	// Repeatedly browse: with ConnReset 1 every connection carries a
	// bounded byte budget, so some session must die with an explicit
	// reset once the enumeration outgrows the budget.
	sawReset := false
	for attempt := 0; attempt < 20 && !sawReset; attempt++ {
		addr := nw.Peers[2+attempt%40].Addr
		err := browseOnce(t, nw, addr)
		if err == nil {
			continue // small library fit inside the budget
		}
		if errors.Is(err, ErrConnReset) {
			sawReset = true
		} else if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) &&
			!errors.Is(err, io.ErrClosedPipe) && !errors.Is(err, ErrFirewalled) {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if !sawReset {
		t.Error("reset never fired across 20 budgeted sessions")
	}
}

// browseOnce dials addr, handshakes and drains a full browse; it returns
// the first error the stream surfaces (nil for a complete enumeration).
func browseOnce(t *testing.T, nw *Network, addr Addr) error {
	t.Helper()
	conn, err := nw.Dial(addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if _, err := Connect(conn, map[string]string{"User-Agent": "t"}); err != nil {
		return err
	}
	browse := &gmsg.Message{
		Header: gmsg.Header{GUID: gmsg.GUIDFromUint64s(1, 2), Type: gmsg.TypeQuery, TTL: 1},
		Query:  &gmsg.Query{Criteria: BrowseCriteria},
	}
	if err := gmsg.WriteMessage(conn, browse); err != nil {
		return err
	}
	for {
		m, err := gmsg.ReadMessage(conn)
		if err != nil {
			return err
		}
		if m.Header.Type == gmsg.TypeQueryHit && len(m.QueryHit.Results) < 200 {
			return nil
		}
	}
}

func TestMatchEquivalentToNaiveScan(t *testing.T) {
	// The posting-list intersection must return exactly what the naive
	// re-tokenizing scan returned, in the same order.
	nw := populatedNet(t, 80)
	queries := []string{"", "zzzznotaterm"}
	for _, p := range nw.Peers[:20] {
		if len(p.Library) > 0 {
			queries = append(queries, p.Library[0].Name)
			if len(p.Library) > 2 {
				queries = append(queries, p.Library[2].Name)
			}
		}
	}
	for _, p := range nw.Peers {
		for _, q := range queries {
			got := p.Match(q)
			want := naiveMatch(p, q)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("peer %d query %q: Match returned %d files, naive scan %d",
					p.ID, q, len(got), len(want))
			}
		}
	}
}

// naiveMatch is the pre-optimization matching rule: every query token must
// appear in the file name's token set.
func naiveMatch(p *Peer, criteria string) []File {
	toks := terms.Tokenize(criteria)
	if len(toks) == 0 {
		return nil
	}
	var out []File
	for _, f := range p.Library {
		name := terms.TokenSet(f.Name)
		ok := true
		for _, tok := range toks {
			if _, has := name[tok]; !has {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, f)
		}
	}
	return out
}

func BenchmarkMatch(b *testing.B) {
	cat, err := catalog.Build(catalog.Config{
		Seed: 5, Peers: 50, UniqueObjects: 4000, ReplicaAlpha: 2.45,
	})
	if err != nil {
		b.Fatal(err)
	}
	nw, err := NewFromCatalog(DefaultConfig(5), cat)
	if err != nil {
		b.Fatal(err)
	}
	var criteria []string
	for _, p := range nw.Peers[:10] {
		if len(p.Library) > 0 {
			criteria = append(criteria, p.Library[0].Name)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := nw.Peers[i%len(nw.Peers)]
		p.Match(criteria[i%len(criteria)])
	}
}
