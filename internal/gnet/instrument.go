package gnet

import (
	"querycentric/internal/obs"
)

// netObs holds the network's observability handles, registered once at
// Instrument time so the flood hot path pays one nil check plus atomic
// adds at flood end — never a registry lookup or an allocation.
//
// Determinism: every counter here accumulates per-flood totals that are
// pure functions of (topology, query, trial stream), so the sums are
// schedule-invariant at any worker count. The hop histograms observe
// per-hit values that are equally schedule-free.
type netObs struct {
	reg *obs.Registry

	floods        *obs.Counter // gnet_floods_total
	messages      *obs.Counter // gnet_flood_messages_total
	reached       *obs.Counter // gnet_flood_peers_reached_total
	results       *obs.Counter // gnet_flood_results_total
	lossDrops     *obs.Counter // gnet_flood_loss_drops_total
	deadDrops     *obs.Counter // gnet_flood_dead_drops_total
	qrpSuppressed *obs.Counter // gnet_flood_qrp_suppressed_total

	hitHops     *obs.Histogram // gnet_flood_hit_hops
	msgPerFlood *obs.Histogram // gnet_flood_messages

	traces *obs.FloodTraces
}

// Instrument attaches an observability registry (and, optionally, a
// bounded flood-trace recorder) to the network. Floods, maintenance and
// host caches then publish their counters; a nil registry detaches the
// plane (the default, zero-cost state). Call before floods run — the
// attachment itself is not synchronized with concurrent floods.
func (nw *Network) Instrument(reg *obs.Registry, traces *obs.FloodTraces) {
	if reg == nil {
		nw.obs = nil
		return
	}
	nw.obs = &netObs{
		reg:           reg,
		floods:        reg.Counter("gnet_floods_total"),
		messages:      reg.Counter("gnet_flood_messages_total"),
		reached:       reg.Counter("gnet_flood_peers_reached_total"),
		results:       reg.Counter("gnet_flood_results_total"),
		lossDrops:     reg.Counter("gnet_flood_loss_drops_total"),
		deadDrops:     reg.Counter("gnet_flood_dead_drops_total"),
		qrpSuppressed: reg.Counter("gnet_flood_qrp_suppressed_total"),
		hitHops:       reg.Histogram("gnet_flood_hit_hops", []int64{1, 2, 3, 4, 5, 6, 8}),
		msgPerFlood:   reg.Histogram("gnet_flood_messages", []int64{10, 100, 1000, 10000, 100000}),
		traces:        traces,
	}
}

// maintMetrics mirrors RepairStats into live counters. The zero value
// (all-nil handles) is the disabled state: Counter methods are nil-safe,
// so maintenance code increments unconditionally.
type maintMetrics struct {
	departures       *obs.Counter
	politeDepartures *obs.Counter
	arrivals         *obs.Counter
	pingsSent        *obs.Counter
	pongsReceived    *obs.Counter
	pingsLost        *obs.Counter
	failuresDetected *obs.Counter
	byesReceived     *obs.Counter
	repairAttempts   *obs.Counter
	repairFailures   *obs.Counter
	repairSuccesses  *obs.Counter
	hostRejected     *obs.Counter
}

func newMaintMetrics(reg *obs.Registry) maintMetrics {
	return maintMetrics{
		departures:       reg.Counter("gnet_maint_departures_total"),
		politeDepartures: reg.Counter("gnet_maint_polite_departures_total"),
		arrivals:         reg.Counter("gnet_maint_arrivals_total"),
		pingsSent:        reg.Counter("gnet_maint_pings_sent_total"),
		pongsReceived:    reg.Counter("gnet_maint_pongs_received_total"),
		pingsLost:        reg.Counter("gnet_maint_pings_lost_total"),
		failuresDetected: reg.Counter("gnet_maint_failures_detected_total"),
		byesReceived:     reg.Counter("gnet_maint_byes_received_total"),
		repairAttempts:   reg.Counter("gnet_maint_repair_attempts_total"),
		repairFailures:   reg.Counter("gnet_maint_repair_failures_total"),
		repairSuccesses:  reg.Counter("gnet_maint_repair_successes_total"),
		hostRejected:     reg.Counter("gnet_hostcache_rejected_total"),
	}
}
