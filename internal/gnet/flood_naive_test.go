package gnet

import (
	"fmt"
	"math/bits"
	"reflect"
	"testing"

	"querycentric/internal/faults"
	"querycentric/internal/gmsg"
	"querycentric/internal/rng"
)

// floodNaive is the pre-optimisation flood kept as a reference oracle and
// perf baseline: a fresh `seen` map per flood, one Decode per delivered
// envelope, one Encode per forwarding peer, and a per-edge QRP hash of the
// criteria. Fault semantics match the optimised path (per-flood salted
// loss schedule, liveness snapshot) so results must be byte-identical.
func floodNaive(nw *Network, origin int, criteria string, ttl int, r *rng.Source) (*FloodResult, error) {
	if origin < 0 || origin >= len(nw.Peers) {
		return nil, fmt.Errorf("gnet: origin %d out of range", origin)
	}
	if ttl < 1 || ttl > 255 {
		return nil, fmt.Errorf("gnet: TTL %d out of range", ttl)
	}
	ga, gb := r.Uint64(), r.Uint64()
	guid := gmsg.GUIDFromUint64s(ga, gb)
	salt := ga ^ bits.RotateLeft64(gb, 32)
	q := &gmsg.Message{
		Header: gmsg.Header{GUID: guid, Type: gmsg.TypeQuery, TTL: byte(ttl)},
		Query:  &gmsg.Query{Criteria: criteria},
	}
	res := &FloodResult{GUID: guid, Criteria: criteria, TTL: ttl}
	seen := map[int]bool{origin: true}
	lossAttempts := map[int]uint64{}
	plane := nw.faults
	alive := plane.LivenessSnapshot()
	lossy := plane.Config().MessageLoss > 0
	lost := func(to int) bool {
		if !lossy {
			return false
		}
		n := lossAttempts[to]
		lossAttempts[to] = n + 1
		return plane.MessageLossAt(salt, to, n)
	}

	type envelope struct {
		to  int
		raw []byte
	}
	frontier := make([]envelope, 0, len(nw.Peers[origin].Neighbors))
	raw, err := gmsg.Encode(q)
	if err != nil {
		return nil, err
	}
	for _, nb := range nw.Peers[origin].Neighbors {
		frontier = append(frontier, envelope{to: nb, raw: raw})
		res.Messages++
	}

	for len(frontier) > 0 {
		var next []envelope
		for _, env := range frontier {
			if seen[env.to] {
				continue
			}
			if (alive != nil && env.to < len(alive) && !alive[env.to]) || lost(env.to) {
				continue
			}
			seen[env.to] = true
			m, _, err := gmsg.Decode(env.raw)
			if err != nil {
				return nil, fmt.Errorf("gnet: hop decode: %w", err)
			}
			res.PeersReached++
			peer := nw.Peers[env.to]
			if files := peer.Match(m.Query.Criteria); len(files) > 0 {
				hit := Hit{PeerID: env.to, Hops: int(m.Header.Hops) + 1}
				for _, f := range files {
					hit.Files = append(hit.Files, gmsg.Result{
						FileIndex: f.Index, FileSize: f.Size, FileName: f.Name,
					})
				}
				res.Hits = append(res.Hits, hit)
				res.TotalResults += len(files)
			}
			if m.Header.TTL <= 1 {
				continue
			}
			if nw.Config.UltrapeerFrac > 0 && !peer.Ultrapeer {
				continue
			}
			fwd := *m
			fwd.Header.TTL--
			fwd.Header.Hops++
			fraw, err := gmsg.Encode(&fwd)
			if err != nil {
				return nil, err
			}
			for _, nb := range peer.Neighbors {
				if seen[nb] {
					continue
				}
				if !nw.qrpAllows(nb, criteria) {
					continue
				}
				next = append(next, envelope{to: nb, raw: fraw})
				res.Messages++
			}
		}
		frontier = next
	}
	return res, nil
}

// TestFloodMatchesNaiveReference cross-checks the optimised FloodCtx
// against the map-based reference on plain, QRP and lossy networks.
func TestFloodMatchesNaiveReference(t *testing.T) {
	for _, mode := range []string{"plain", "qrp", "lossy"} {
		t.Run(mode, func(t *testing.T) {
			nw := populatedNet(t, 180)
			switch mode {
			case "qrp":
				if err := nw.EnableQRP(16); err != nil {
					t.Fatal(err)
				}
			case "lossy":
				nw.SetFaults(faults.New(faults.Config{Seed: 11, MessageLoss: 0.2, PeerDepart: 0.1}))
			}
			ctx := nw.NewFloodCtx()
			for trial := 0; trial < 30; trial++ {
				origin := trial * 7 % len(nw.Peers)
				criteria := fileOf(t, nw, trial*13+2)
				want, err := floodNaive(nw, origin, criteria, 4, rng.New(uint64(trial)))
				if err != nil {
					t.Fatal(err)
				}
				got, err := ctx.Flood(origin, criteria, 4, rng.New(uint64(trial)))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s trial %d: optimised flood diverged from reference:\n%+v\nvs\n%+v",
						mode, trial, got, want)
				}
			}
		})
	}
}

// BenchmarkFloodNaive is the pre-optimisation baseline for
// BenchmarkFloodCtx (same network, same query stream).
func BenchmarkFloodNaive(b *testing.B) {
	for _, peers := range []int{500, 2000} {
		b.Run(fmt.Sprintf("peers=%d", peers), func(b *testing.B) {
			nw := benchNet(b, peers)
			criteria := ""
			for _, p := range nw.Peers {
				if len(p.Library) > 0 {
					criteria = p.Library[0].Name
					break
				}
			}
			r := rng.New(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := floodNaive(nw, i%peers, criteria, 4, r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
