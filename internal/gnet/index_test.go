package gnet

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"querycentric/internal/catalog"
	"querycentric/internal/faults"
	"querycentric/internal/rng"
)

// legacyTwin rebuilds the same populated network switched to the
// pre-interning string-keyed index, for path-equivalence comparisons.
func legacyTwin(t *testing.T, peers int) *Network {
	t.Helper()
	nw := populatedNet(t, peers)
	nw.UseLegacyStringIndex()
	return nw
}

// TestFloodMatchesLegacyStringIndex is the interning equivalence gate: the
// interned-ID match path must return FloodResults identical — hits, order,
// messages — to the retained string path, on plain, QRP and lossy networks.
func TestFloodMatchesLegacyStringIndex(t *testing.T) {
	for _, mode := range []string{"plain", "qrp", "lossy"} {
		t.Run(mode, func(t *testing.T) {
			interned := populatedNet(t, 180)
			legacy := legacyTwin(t, 180)
			switch mode {
			case "qrp":
				for _, nw := range []*Network{interned, legacy} {
					if err := nw.EnableQRP(16); err != nil {
						t.Fatal(err)
					}
				}
			case "lossy":
				for _, nw := range []*Network{interned, legacy} {
					nw.SetFaults(faults.New(faults.Config{Seed: 11, MessageLoss: 0.2, PeerDepart: 0.1}))
				}
			}
			ictx, lctx := interned.NewFloodCtx(), legacy.NewFloodCtx()
			for trial := 0; trial < 30; trial++ {
				origin := trial * 7 % len(interned.Peers)
				criteria := fileOf(t, interned, trial*13+2)
				if trial%5 == 0 {
					// Also exercise the mismatch case down both paths.
					criteria += " zqxjkwv"
				}
				want, err := lctx.Flood(origin, criteria, 4, rng.New(uint64(trial)))
				if err != nil {
					t.Fatal(err)
				}
				got, err := ictx.Flood(origin, criteria, 4, rng.New(uint64(trial)))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s trial %d (%q): interned flood diverged from legacy:\n%+v\nvs\n%+v",
						mode, trial, criteria, got, want)
				}
			}
		})
	}
}

// TestMatchEquivalentToLegacy spot-checks Peer.Match itself across paths,
// including multi-token and repeated-token criteria.
func TestMatchEquivalentToLegacy(t *testing.T) {
	interned := populatedNet(t, 120)
	legacy := legacyTwin(t, 120)
	for i, p := range interned.Peers {
		if len(p.Library) == 0 {
			continue
		}
		name := p.Library[len(p.Library)/2].Name
		for _, criteria := range []string{name, name + " " + name, "track", ""} {
			got := p.Match(criteria)
			want := legacy.Peers[i].Match(criteria)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("peer %d Match(%q): interned %v vs legacy %v", i, criteria, got, want)
			}
		}
	}
}

// TestMatchUnknownTerm covers the paper's query/annotation mismatch: a
// query term absent from every library resolves to NoTerm and must
// short-circuit to zero hits without panicking — alone, and conjoined with
// terms that do exist.
func TestMatchUnknownTerm(t *testing.T) {
	nw := populatedNet(t, 60)
	known := fileOf(t, nw, 3)
	for _, criteria := range []string{
		"zqxjkwv",
		known + " zqxjkwv",
		"zqxjkwv qqqqzz",
	} {
		for _, p := range nw.Peers {
			if files := p.Match(criteria); files != nil {
				t.Fatalf("Match(%q) on peer %d = %v, want nil", criteria, p.ID, files)
			}
		}
		res, err := nw.Flood(0, criteria, 4, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalResults != 0 || len(res.Hits) != 0 {
			t.Fatalf("Flood(%q) found %d results, want 0", criteria, res.TotalResults)
		}
		if res.PeersReached == 0 || res.Messages == 0 {
			t.Fatalf("Flood(%q) did not spread (reached %d, messages %d); the query must still flood",
				criteria, res.PeersReached, res.Messages)
		}
	}
}

// TestMatchEmptyCriteria: no keywords, no matches, down both paths.
func TestMatchEmptyCriteria(t *testing.T) {
	interned := populatedNet(t, 40)
	legacy := legacyTwin(t, 40)
	for _, nw := range []*Network{interned, legacy} {
		for _, criteria := range []string{"", "  ", "!!", "a"} { // below MinTokenLength too
			if files := nw.Peers[1].Match(criteria); files != nil {
				t.Fatalf("Match(%q) = %v, want nil", criteria, files)
			}
			res, err := nw.Flood(0, criteria, 3, rng.New(1))
			if err != nil {
				t.Fatal(err)
			}
			if res.TotalResults != 0 {
				t.Fatalf("Flood(%q) returned %d results, want 0", criteria, res.TotalResults)
			}
		}
	}
}

// TestLocalDictFallback plants a file whose tokens the shared dictionary
// has never seen after network construction; the peer must fall back to a
// peer-local dictionary and still answer.
func TestLocalDictFallback(t *testing.T) {
	nw := populatedNet(t, 40)
	p := nw.Peers[5]
	p.Library = append(p.Library, File{
		Index: uint32(len(p.Library)), Size: 99, Name: "Zzzz Novel Tokens Everywhere.mp3",
	})
	files := p.Match("novel tokens")
	if len(files) != 1 || files[0].Name != "Zzzz Novel Tokens Everywhere.mp3" {
		t.Fatalf("Match on mutated library = %v, want the planted file", files)
	}
	if p.dict == nw.dict {
		t.Fatal("peer did not fall back to a local dictionary")
	}
	// The flood path must also find it (peer re-resolves query tokens
	// against its local dictionary).
	res, err := nw.Flood(0, "novel tokens everywhere", 4, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range res.Hits {
		if h.PeerID == 5 {
			found = true
		}
	}
	if !found && res.PeersReached >= len(nw.Peers)-1 {
		t.Fatalf("flood reached %d peers but missed the planted file", res.PeersReached)
	}
}

// TestTokenizeQueryDedupe pins the dedupe semantics across the linear and
// map strategies: first appearance wins, order preserved.
func TestTokenizeQueryDedupe(t *testing.T) {
	cases := []struct {
		criteria string
		want     []string
	}{
		{"beta alpha beta gamma alpha", []string{"beta", "alpha", "gamma"}},
		{"one two three", []string{"one", "two", "three"}},
		{"dup dup dup", []string{"dup"}},
		{"", nil},
	}
	for _, c := range cases {
		got := TokenizeQuery(c.criteria)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("TokenizeQuery(%q) = %v, want %v", c.criteria, got, c.want)
		}
	}
	// Above the linear threshold the map path must agree with the scan.
	long := make([]string, 0, smallQueryDedupe+6)
	for i := 0; i < smallQueryDedupe+6; i++ {
		long = append(long, fmt.Sprintf("tok%02d", i%7))
	}
	criteria := strings.Join(long, " ")
	got := TokenizeQuery(criteria)
	want := dedupeMap(terms2(criteria))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("long-query dedupe diverged: %v vs %v", got, want)
	}
	if len(got) != 7 {
		t.Fatalf("long-query dedupe kept %d tokens, want 7", len(got))
	}
}

// terms2 re-tokenizes without dedupe (mirrors terms.Tokenize for the test).
func terms2(criteria string) []string {
	return strings.Fields(strings.ToLower(criteria))
}

// TestIndexChecksumWorkerInvariance: parallel index construction must be
// byte-identical to sequential (same dictionary, same flat arrays).
func TestIndexChecksumWorkerInvariance(t *testing.T) {
	base := populatedNet(t, 90)
	if err := base.BuildIndexes(1); err != nil {
		t.Fatal(err)
	}
	want, err := base.IndexChecksum()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		nw := populatedNet(t, 90)
		if err := nw.BuildIndexes(w); err != nil {
			t.Fatal(err)
		}
		got, err := nw.IndexChecksum()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("workers=%d index checksum %x, want %x", w, got, want)
		}
	}
}

// TestIndexStatsShrink pins the memory claim at test scale: the interned
// index estimate must be well under the legacy map estimate.
func TestIndexStatsShrink(t *testing.T) {
	interned := populatedNet(t, 120)
	legacy := legacyTwin(t, 120)
	si, err := interned.IndexStats()
	if err != nil {
		t.Fatal(err)
	}
	sl, err := legacy.IndexStats()
	if err != nil {
		t.Fatal(err)
	}
	if si.IndexTerms != sl.IndexTerms || si.Postings != sl.Postings {
		t.Fatalf("paths disagree on index contents: %+v vs %+v", si, sl)
	}
	if si.DictTerms == 0 || si.HeapBytes == 0 {
		t.Fatalf("interned stats empty: %+v", si)
	}
	if si.HeapBytes >= sl.HeapBytes {
		t.Fatalf("interned index (%d B) not smaller than legacy (%d B)", si.HeapBytes, sl.HeapBytes)
	}
}

// BenchmarkTokenizeQuery measures the small-query dedupe strategies; the
// linear scan avoids the map allocation that dominated 2–3-token queries.
func BenchmarkTokenizeQuery(b *testing.B) {
	queries := map[string]string{
		"2tok":  "artist song",
		"3tok":  "artist song remix",
		"3dup":  "song song artist",
		"12tok": "a1 b2 c3 d4 e5 f6 g7 h8 i9 j10 k11 l12",
	}
	for name, q := range queries {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				TokenizeQuery(q)
			}
		})
	}
}

// BenchmarkDedupe isolates the two strategies on identical token counts.
func BenchmarkDedupe(b *testing.B) {
	toks := []string{"artist", "song", "remix"}
	scratch := make([]string, 3)
	b.Run("linear", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			copy(scratch, toks)
			dedupeLinear(scratch)
		}
	})
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			copy(scratch, toks)
			dedupeMap(scratch)
		}
	})
}

// BenchmarkMatchLegacy is BenchmarkMatch on the retained string path (the
// before side of the interning speedup).
func BenchmarkMatchLegacy(b *testing.B) {
	nw := benchNetLegacy(b, 50)
	criteria := make([]string, 0, 64)
	for _, p := range nw.Peers {
		if len(p.Library) > 0 {
			criteria = append(criteria, p.Library[0].Name)
			if len(criteria) == 64 {
				break
			}
		}
	}
	p := nw.Peers[7]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Match(criteria[i%len(criteria)])
	}
}

// benchNetLegacy is benchNet switched to the string index before warmup.
func benchNetLegacy(b *testing.B, peers int) *Network {
	b.Helper()
	cat, err := catalog.Build(catalog.Config{
		Seed: 5, Peers: peers, UniqueObjects: peers * 25, ReplicaAlpha: 2.45,
		VariantProb: 0.05, NonSpecificPeerFrac: 0.03,
	})
	if err != nil {
		b.Fatal(err)
	}
	nw, err := NewFromCatalog(DefaultConfig(5), cat)
	if err != nil {
		b.Fatal(err)
	}
	nw.UseLegacyStringIndex()
	for _, p := range nw.Peers {
		p.Match("warmup")
	}
	return nw
}
