package gnet

import (
	"testing"

	"querycentric/internal/catalog"
	"querycentric/internal/rng"
)

func flatNet(t *testing.T, n int) *Network {
	t.Helper()
	nw, err := New(Config{Seed: 1, FlatDegree: 6}, n)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func twoTierNet(t *testing.T, n int) *Network {
	t.Helper()
	nw, err := New(DefaultConfig(2), n)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}, 1); err == nil {
		t.Error("single-peer network accepted")
	}
	if _, err := New(Config{UltrapeerFrac: 1.5}, 10); err == nil {
		t.Error("bad UltrapeerFrac accepted")
	}
	if _, err := New(Config{FirewalledFrac: -1}, 10); err == nil {
		t.Error("bad FirewalledFrac accepted")
	}
}

func TestFlatConnected(t *testing.T) {
	nw := flatNet(t, 500)
	if !nw.IsConnected() {
		t.Fatal("flat network not connected")
	}
	degs := nw.Degrees()
	if degs[0] < 2 {
		t.Errorf("min degree %d < 2", degs[0])
	}
}

func TestTwoTierConnected(t *testing.T) {
	nw := twoTierNet(t, 500)
	if !nw.IsConnected() {
		t.Fatal("two-tier network not connected")
	}
	ultras := 0
	for _, p := range nw.Peers {
		if p.Ultrapeer {
			ultras++
		}
	}
	if ultras < 50 || ultras > 100 {
		t.Errorf("ultrapeers = %d, want ~75 of 500", ultras)
	}
}

func TestLeavesOnlyConnectToUltras(t *testing.T) {
	nw := twoTierNet(t, 300)
	for _, p := range nw.Peers {
		if p.Ultrapeer {
			continue
		}
		for _, nb := range p.Neighbors {
			if !nw.Peers[nb].Ultrapeer {
				t.Fatalf("leaf %d connected to leaf %d", p.ID, nb)
			}
		}
	}
}

func TestDeterministicTopology(t *testing.T) {
	a := twoTierNet(t, 200)
	b := twoTierNet(t, 200)
	for i := range a.Peers {
		if len(a.Peers[i].Neighbors) != len(b.Peers[i].Neighbors) {
			t.Fatalf("peer %d degree differs across builds", i)
		}
		if a.Peers[i].Ultrapeer != b.Peers[i].Ultrapeer {
			t.Fatalf("peer %d role differs across builds", i)
		}
	}
}

func TestAddrRoundTrip(t *testing.T) {
	nw := flatNet(t, 100)
	for _, p := range nw.Peers {
		if got := nw.PeerByAddr(p.Addr); got == nil || got.ID != p.ID {
			t.Fatalf("PeerByAddr(%v) failed for peer %d", p.Addr, p.ID)
		}
	}
	if nw.PeerByAddr(Addr{IP: [4]byte{192, 168, 1, 1}, Port: 6346}) != nil {
		t.Error("foreign address resolved to a peer")
	}
}

func TestParseAddr(t *testing.T) {
	a, err := ParseAddr("10.0.1.2:6346")
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != "10.0.1.2:6346" {
		t.Errorf("round trip: %s", a.String())
	}
	for _, bad := range []string{"", "10.0.0.1", "10.0.0:6346", "10.0.0.999:6346", "a.b.c.d:1", "10.0.0.1:99999"} {
		if _, err := ParseAddr(bad); err == nil {
			t.Errorf("ParseAddr(%q) accepted", bad)
		}
	}
}

func TestTryUltrapeersRoundTrip(t *testing.T) {
	addrs := []Addr{addrFor(3), addrFor(77), addrFor(1000)}
	v := FormatTryUltrapeers(addrs)
	got := ParseTryUltrapeers(v)
	if len(got) != 3 {
		t.Fatalf("parsed %d addrs", len(got))
	}
	for i := range addrs {
		if got[i] != addrs[i] {
			t.Errorf("addr %d: %v vs %v", i, got[i], addrs[i])
		}
	}
	if got := ParseTryUltrapeers("garbage,, 10.0.0.1:6346 ,1.2.3:5"); len(got) != 1 {
		t.Errorf("lenient parse kept %d addrs, want 1", len(got))
	}
}

func TestMatch(t *testing.T) {
	p := &Peer{Library: []File{
		{Index: 0, Name: "Aaron Neville - I Don't Know Much.mp3"},
		{Index: 1, Name: "Linda Ronstadt - Blue Bayou.mp3"},
		{Index: 2, Name: "01 Track.wma"},
	}}
	if got := p.Match("aaron neville"); len(got) != 1 || got[0].Index != 0 {
		t.Errorf("Match(aaron neville) = %v", got)
	}
	if got := p.Match("mp3"); len(got) != 2 {
		t.Errorf("Match(mp3) found %d files, want 2", len(got))
	}
	if got := p.Match("aaron ronstadt"); got != nil {
		t.Errorf("conjunctive match violated: %v", got)
	}
	if got := p.Match(""); got != nil {
		t.Errorf("empty query matched %v", got)
	}
}

func TestNewFromCatalog(t *testing.T) {
	cat, err := catalog.Build(catalog.Config{
		Seed: 3, Peers: 100, UniqueObjects: 2000, ReplicaAlpha: 2.45,
	})
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewFromCatalog(DefaultConfig(3), cat)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range nw.Peers {
		total += len(p.Library)
	}
	if total != cat.TotalPlacements {
		t.Errorf("library total %d != placements %d", total, cat.TotalPlacements)
	}
}

func TestFloodFindsPlantedFile(t *testing.T) {
	nw := flatNet(t, 200)
	// Plant a unique file on a peer adjacent to the origin.
	origin := 0
	holder := nw.Peers[origin].Neighbors[0]
	nw.Peers[holder].Library = []File{{Index: 0, Size: 1, Name: "Unique Zanzibar Xylophone.mp3"}}
	res, err := nw.Flood(origin, "zanzibar xylophone", 2, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalResults != 1 || len(res.Hits) != 1 || res.Hits[0].PeerID != holder {
		t.Errorf("flood result: %+v", res)
	}
	if res.Hits[0].Hops != 1 {
		t.Errorf("hit hops = %d, want 1", res.Hits[0].Hops)
	}
}

func TestFloodTTLBoundsReach(t *testing.T) {
	nw := flatNet(t, 2000)
	r := rng.New(5)
	prev := 0
	for ttl := 1; ttl <= 4; ttl++ {
		res, err := nw.Flood(0, "nonexistentterm xyz", ttl, r)
		if err != nil {
			t.Fatal(err)
		}
		if res.PeersReached <= prev && res.PeersReached < len(nw.Peers)-1 {
			t.Errorf("TTL %d reached %d peers, not more than TTL %d's %d",
				ttl, res.PeersReached, ttl-1, prev)
		}
		prev = res.PeersReached
	}
	// TTL 1 must reach exactly the neighbours.
	res, _ := nw.Flood(0, "foo bar", 1, r)
	if res.PeersReached != len(nw.Peers[0].Neighbors) {
		t.Errorf("TTL1 reached %d, want %d", res.PeersReached, len(nw.Peers[0].Neighbors))
	}
}

func TestFloodReachAgreesWithFlood(t *testing.T) {
	nw := twoTierNet(t, 800)
	r := rng.New(7)
	for _, ttl := range []int{1, 2, 3} {
		res, err := nw.Flood(10, "zzz qqq", ttl, r)
		if err != nil {
			t.Fatal(err)
		}
		if got := nw.Reach(10, ttl); got != res.PeersReached {
			t.Errorf("TTL %d: Reach=%d Flood=%d", ttl, got, res.PeersReached)
		}
	}
}

func TestFloodValidation(t *testing.T) {
	nw := flatNet(t, 10)
	if _, err := nw.Flood(-1, "x", 2, rng.New(1)); err == nil {
		t.Error("negative origin accepted")
	}
	if _, err := nw.Flood(0, "x", 0, rng.New(1)); err == nil {
		t.Error("zero TTL accepted")
	}
}

func TestLeafDoesNotRelay(t *testing.T) {
	nw := twoTierNet(t, 400)
	// From any origin, TTL-5 flood must still cover at most ultrapeers +
	// their leaves; by TTL 5 in a 400-node net, flooding through ultras
	// covers nearly everything, but no query may have been *forwarded by*
	// a leaf. Structural check: a flood from a leaf reaches its ultrapeers
	// at hop 1 only via direct links.
	var leaf int = -1
	for _, p := range nw.Peers {
		if !p.Ultrapeer {
			leaf = p.ID
			break
		}
	}
	if leaf < 0 {
		t.Skip("no leaves")
	}
	res, err := nw.Flood(leaf, "anything here", 1, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.PeersReached != len(nw.Peers[leaf].Neighbors) {
		t.Errorf("leaf TTL1 reached %d, want %d", res.PeersReached, len(nw.Peers[leaf].Neighbors))
	}
}

func TestFirewalledFraction(t *testing.T) {
	nw, err := New(Config{Seed: 11, FlatDegree: 4, FirewalledFrac: 0.3}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	fw := 0
	for i := range nw.Peers {
		if nw.Firewalled(i) {
			fw++
		}
	}
	if fw < 230 || fw > 370 {
		t.Errorf("firewalled %d of 1000, want ~300", fw)
	}
}

func BenchmarkFloodTTL3(b *testing.B) {
	nw, err := New(DefaultConfig(1), 5000)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nw.Flood(i%5000, "some query terms", 3, r); err != nil {
			b.Fatal(err)
		}
	}
}
