package gnet

import (
	"fmt"
	"math"
	"math/bits"

	"querycentric/internal/capacity"
	"querycentric/internal/dict"
	"querycentric/internal/faults"
	"querycentric/internal/gmsg"
	"querycentric/internal/obs"
	"querycentric/internal/qrp"
	"querycentric/internal/rng"
)

// Hit is one QueryHit observed by the query originator.
type Hit struct {
	PeerID int
	Files  []gmsg.Result
	Hops   int // hops the query had taken when it was answered
}

// FloodResult summarizes one flooded query.
type FloodResult struct {
	GUID         gmsg.GUID
	Criteria     string
	TTL          int
	PeersReached int   // peers that processed the query (excluding origin)
	Hits         []Hit // responding peers and their matching files
	TotalResults int   // total matching files across all hits

	// Messages counts query descriptors transmitted — the paper's protocol
	// cost. A descriptor is counted when a peer puts it on a connection,
	// so copies sent to a peer that another same-ring copy reaches first
	// ARE counted (both were physically transmitted before the recipient's
	// duplicate-suppression state could exist) and then dropped unprocessed
	// at the receiver. Copies to peers already processed in an earlier ring
	// are never sent: by then the forwarding ultrapeer has itself seen the
	// GUID relayed, approximating per-connection routing tables.
	Messages int
}

// FloodCtx is a reusable, single-goroutine flood engine over one network:
// epoch-stamped visit and loss-counter arrays, reusable frontier buffers,
// and per-flood fault/QRP state. A context eliminates the per-flood `seen`
// map and per-peer descriptor re-encoding of the naive implementation; the
// parallel trial engine gives each worker its own context via NewFloodCtx.
//
// A FloodCtx must not be shared between goroutines. The network itself
// (topology, libraries, QRP tables, fault plane) must not be mutated while
// floods run.
type FloodCtx struct {
	nw *Network

	seen      []int32 // epoch stamp of the flood that processed the peer
	lossEpoch []int32 // epoch stamp validating lossN
	lossN     []int32 // per-flood deliveries attempted to the peer
	capEpoch  []int32 // epoch stamp validating capN
	capN      []int32 // per-flood queue-admission attempts at the peer
	epoch     int32

	frontier []int32
	next     []int32

	// qids holds the flood's query resolved to shared-dictionary TermIDs
	// (hoisted once per flood); qhash the hoisted QRP slots. ms is the
	// per-peer match scratch — deliberately distinct from qids, since a
	// peer on a local-dictionary fallback re-resolves into ms.ids and must
	// not clobber the hoisted IDs other peers still read.
	qids  []dict.TermID
	qhash []uint32
	ms    matchScratch

	// Path capture (opt-in, see SetPathCapture): pathParent[to] is the peer
	// whose copy peer `to` processed, epoch-stamped like seen, so AnswerPath
	// can walk a QueryHit back to the flood's origin. The from buffers ride
	// alongside frontier/next, recording which peer transmitted each entry.
	capturePaths bool
	pathParent   []int32
	pathEpoch    []int32
	pathOrigin   int32
	fromBuf      []int32
	nextFrom     []int32
}

// NewFloodCtx returns a flood context for this network, typically one per
// worker goroutine.
func (nw *Network) NewFloodCtx() *FloodCtx {
	n := len(nw.Peers)
	return &FloodCtx{
		nw:        nw,
		seen:      make([]int32, n),
		lossEpoch: make([]int32, n),
		lossN:     make([]int32, n),
		capEpoch:  make([]int32, n),
		capN:      make([]int32, n),
	}
}

// bump advances the flood epoch, clearing the stamp arrays on the (rare)
// wrap so stale stamps can never alias a live epoch.
func (c *FloodCtx) bump() int32 {
	c.epoch++
	if c.epoch == math.MaxInt32 {
		for i := range c.seen {
			c.seen[i] = 0
			c.lossEpoch[i] = 0
			c.capEpoch[i] = 0
		}
		for i := range c.pathEpoch {
			c.pathEpoch[i] = 0
		}
		c.epoch = 1
	}
	return c.epoch
}

// SetPathCapture toggles per-flood answer-path recording: with capture on,
// each flood additionally stamps the forwarding parent of every processed
// peer, so AnswerPath can reconstruct the overlay route a QueryHit took.
// Capture never changes a flood's result — same reach, hits, messages —
// it only records which copy won the race at each peer (the first one in
// deterministic frontier order, matching duplicate suppression).
func (c *FloodCtx) SetPathCapture(on bool) {
	c.capturePaths = on
	if on && c.pathParent == nil {
		n := len(c.nw.Peers)
		c.pathParent = make([]int32, n)
		c.pathEpoch = make([]int32, n)
	}
}

// AnswerPath reconstructs the path the most recent flood's query took from
// its origin to `peer`, inclusive at both ends and in origin→peer order.
// It is valid until the next flood on this context and returns nil when
// capture is off or the peer was not reached.
func (c *FloodCtx) AnswerPath(peer int) []int {
	if !c.capturePaths || peer < 0 || peer >= len(c.seen) {
		return nil
	}
	if int32(peer) == c.pathOrigin {
		if c.seen[peer] == c.epoch {
			return []int{peer}
		}
		return nil
	}
	if c.seen[peer] != c.epoch {
		return nil
	}
	rev := []int{peer}
	for cur := int32(peer); cur != c.pathOrigin; {
		if c.pathEpoch[cur] != c.epoch {
			return nil // captured state incomplete (capture toggled mid-run)
		}
		cur = c.pathParent[cur]
		rev = append(rev, int(cur))
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// lost decides whether this delivery attempt to peer `to` is dropped,
// counting attempts per (flood, destination) so the decision is a pure
// function of the flood's salt — independent of any other flood, on any
// worker.
func (c *FloodCtx) lost(plane *faults.Plane, salt uint64, to int32) bool {
	var n int32
	if c.lossEpoch[to] == c.epoch {
		n = c.lossN[to]
	} else {
		c.lossEpoch[to] = c.epoch
	}
	c.lossN[to] = n + 1
	return plane.MessageLossAt(salt, int(to), uint64(n))
}

// admit decides whether a delivered copy enters peer `to`'s bounded ingress
// queue, counting admission attempts per (flood, destination) exactly like
// lost() counts deliveries, so shedding is a pure function of the flood's
// salt and the phase-frozen queue depth — independent of worker count.
func (c *FloodCtx) admit(p *capacity.Plane, salt uint64, to int32, ttl, floodTTL int) bool {
	var n int32
	if c.capEpoch[to] == c.epoch {
		n = c.capN[to]
	} else {
		c.capEpoch[to] = c.epoch
	}
	c.capN[to] = n + 1
	return p.Admit(salt, int(to), uint64(n), ttl, floodTTL)
}

// Flood floods a keyword query from origin with the given TTL, following
// the Gnutella forwarding rules: decrement TTL / increment hops per hop,
// drop descriptors whose GUID was already seen, answer from each reached
// peer's library. The descriptor is encoded and re-decoded once per TTL
// ring — every copy at a given depth is byte-identical, so the wire format
// stays on the measurement path without being re-serialized per edge.
func (c *FloodCtx) Flood(origin int, criteria string, ttl int, r *rng.Source) (*FloodResult, error) {
	nw := c.nw
	if origin < 0 || origin >= len(nw.Peers) {
		return nil, fmt.Errorf("gnet: origin %d out of range", origin)
	}
	if ttl < 1 || ttl > 255 {
		return nil, fmt.Errorf("gnet: TTL %d out of range", ttl)
	}
	ga, gb := r.Uint64(), r.Uint64()
	guid := gmsg.GUIDFromUint64s(ga, gb)
	// The salt ties this flood's fault schedule to its own randomness, so
	// schedules are per-trial deterministic regardless of worker count.
	salt := ga ^ bits.RotateLeft64(gb, 32)
	q := &gmsg.Message{
		Header: gmsg.Header{GUID: guid, Type: gmsg.TypeQuery, TTL: byte(ttl)},
		Query:  &gmsg.Query{Criteria: criteria},
	}
	res := &FloodResult{GUID: guid, Criteria: criteria, TTL: ttl}
	epoch := c.bump()
	c.seen[origin] = epoch
	if c.capturePaths {
		c.pathOrigin = int32(origin)
	}

	// Per-flood hoists: the query's deduped token list resolved to shared
	// TermIDs (identical for every reached peer), the QRP hash of the
	// criteria (identical for every candidate edge), the liveness mask,
	// and whether loss rolls are live. A query term unknown to the shared
	// dictionary resolves to NoTerm, which no posting index contains, so
	// such floods still spread and count messages but miss at every peer
	// after one binary-search probe (the paper's query/annotation mismatch
	// case). The miss stays per-peer rather than flood-wide because a peer
	// whose library was mutated after construction matches through its own
	// local dictionary, which may know terms the shared one never saw.
	toks := TokenizeQuery(criteria)
	d := nw.dict
	matchable := len(toks) > 0
	if matchable && d != nil {
		c.qids, _ = d.Resolve(toks, c.qids[:0])
		// Probe order only: globally-rare terms miss at most peers, and one
		// miss ends a conjunctive match, so every reached peer's first
		// binary-search probe is the one likeliest to settle it.
		nw.sortByGlobalDF(c.qids)
	}
	hoist := c.hoistQRPToks(criteria, toks)
	plane := nw.faults
	alive := plane.LivenessSnapshot()
	lossy := plane.Config().MessageLoss > 0
	dead := func(to int32) bool {
		return alive != nil && int(to) < len(alive) && !alive[to]
	}
	cp := nw.capacity
	capOn := cp.Enabled()

	// Observability: local tallies accumulated in registers and published
	// once at flood end, so the disabled plane costs one nil check and the
	// enabled one a handful of atomic adds per flood. perRing is only
	// tracked when a hop-trace recorder is attached.
	ob := nw.obs
	tracing := ob != nil && ob.traces.Enabled()
	var perRing []int
	var deadDrops, lossDrops, qrpSkipped int
	// breakerSkips is published to the capacity plane at flood end; shed
	// copies are tallied by the plane itself inside Admit.
	var breakerSkips int

	raw, err := gmsg.Encode(q)
	if err != nil {
		return nil, err
	}
	frontier, next := c.frontier[:0], c.next[:0]
	defer func() { c.frontier, c.next = frontier[:0], next[:0] }()
	// With path capture on, `from` rides alongside frontier: from[i] is the
	// peer that transmitted frontier[i]'s copy.
	var from, nextFrom []int32
	if c.capturePaths {
		from, nextFrom = c.fromBuf[:0], c.nextFrom[:0]
		defer func() { c.fromBuf, c.nextFrom = from[:0], nextFrom[:0] }()
	}
	for _, nb := range nw.Peers[origin].Neighbors {
		// An open circuit breaker suppresses the send at the origin: the
		// copy is never transmitted and never counted.
		if capOn && cp.Blocked(nb) {
			breakerSkips++
			continue
		}
		frontier = append(frontier, int32(nb))
		res.Messages++
		if c.capturePaths {
			from = append(from, int32(origin))
		}
	}

	twoTier := nw.Config.UltrapeerFrac > 0
	for len(frontier) > 0 {
		// One decode per ring keeps the codec on the measurement path;
		// every envelope in the ring carries these exact bytes.
		m, _, err := gmsg.Decode(raw)
		if err != nil {
			return nil, fmt.Errorf("gnet: hop decode: %w", err)
		}
		hops := int(m.Header.Hops) + 1
		forwards := m.Header.TTL > 1
		ringStart := res.PeersReached
		var fraw []byte // next ring's bytes, encoded once on first use
		for fi, to := range frontier {
			if c.seen[to] == epoch {
				continue // duplicate suppression by GUID
			}
			// Per-hop faults: a dead peer never receives, and a lost copy
			// is transmitted (already counted) but not delivered. Neither
			// marks the peer seen, so a copy arriving over another overlay
			// edge may still get through.
			if dead(to) {
				deadDrops++
				continue
			}
			if lossy && c.lost(plane, salt, to) {
				lossDrops++
				continue
			}
			// Bounded-capacity ingress: a transmitted (counted) copy that the
			// destination's queue sheds is dropped unprocessed. The peer is
			// not marked seen — a later-ring copy may find room.
			if capOn && !c.admit(cp, salt, to, int(m.Header.TTL), ttl) {
				continue
			}
			c.seen[to] = epoch
			if c.capturePaths {
				c.pathParent[to] = from[fi]
				c.pathEpoch[to] = epoch
			}
			res.PeersReached++
			peer := nw.Peers[to]
			var files []File
			if matchable {
				files = peer.matchForFlood(d, c.qids, toks, &c.ms)
			}
			if len(files) > 0 {
				hit := Hit{PeerID: int(to), Hops: hops, Files: make([]gmsg.Result, 0, len(files))}
				for _, f := range files {
					hit.Files = append(hit.Files, gmsg.Result{
						FileIndex: f.Index, FileSize: f.Size, FileName: f.Name,
					})
				}
				res.Hits = append(res.Hits, hit)
				res.TotalResults += len(files)
			}
			// Forward if TTL remains; leaves don't forward in two-tier
			// Gnutella (only ultrapeers relay).
			if !forwards || (twoTier && !peer.Ultrapeer) {
				continue
			}
			if fraw == nil {
				fwd := *m
				fwd.Header.TTL--
				fwd.Header.Hops++
				if fraw, err = gmsg.Encode(&fwd); err != nil {
					return nil, err
				}
			}
			for _, nb := range peer.Neighbors {
				if c.seen[nb] == epoch {
					continue
				}
				// Last-hop QRP filtering: do not waste a message on a
				// recipient that would neither relay the query further
				// (a two-tier leaf, or any peer at the final TTL ring)
				// nor match it per its route table. Relaying recipients
				// are never table-filtered — on a flat network every
				// peer holds a table, and filtering mid-route would kill
				// propagation rather than trim its last hop. For
				// two-tier networks the conditions coincide (only
				// non-relaying leaves carry tables), so deployed-shape
				// results are unchanged.
				lastHop := m.Header.TTL <= 2 || (twoTier && !nw.Peers[nb].Ultrapeer)
				if lastHop && !nw.qrpAllowsHoisted(nb, hoist) {
					qrpSkipped++
					continue
				}
				if capOn && cp.Blocked(nb) {
					breakerSkips++
					continue
				}
				next = append(next, int32(nb))
				res.Messages++
				if c.capturePaths {
					nextFrom = append(nextFrom, to)
				}
			}
		}
		if tracing {
			perRing = append(perRing, res.PeersReached-ringStart)
		}
		frontier, next = next, frontier[:0]
		if c.capturePaths {
			from, nextFrom = nextFrom, from[:0]
		}
		raw = fraw
	}
	if breakerSkips > 0 {
		cp.AddSuppressed(int64(breakerSkips))
	}
	if ob != nil {
		ob.floods.Inc()
		ob.messages.Add(int64(res.Messages))
		ob.reached.Add(int64(res.PeersReached))
		ob.results.Add(int64(res.TotalResults))
		ob.deadDrops.Add(int64(deadDrops))
		ob.lossDrops.Add(int64(lossDrops))
		ob.qrpSuppressed.Add(int64(qrpSkipped))
		ob.msgPerFlood.Observe(int64(res.Messages))
		for _, h := range res.Hits {
			ob.hitHops.Observe(int64(h.Hops))
		}
		if tracing {
			// Keyed by the flood salt — the flood's own trial randomness —
			// so the recorder's bounded retention is a deterministic uniform
			// sample of the run's floods at any worker count.
			ob.traces.Record(obs.FloodTrace{
				Key: salt, Origin: origin, TTL: ttl, Criteria: criteria,
				PerRing: perRing, Messages: res.Messages, Results: res.TotalResults,
			})
		}
	}
	return res, nil
}

// Flood is the context-free convenience form: it builds a fresh FloodCtx
// per call, so it is safe for concurrent use but pays the context
// allocation. Hot paths (benchmarks, the parallel trial engine) should
// hold a FloodCtx per worker instead.
func (nw *Network) Flood(origin int, criteria string, ttl int, r *rng.Source) (*FloodResult, error) {
	return nw.NewFloodCtx().Flood(origin, criteria, ttl, r)
}

// qrpHoist is the per-flood QRP forwarding decision: inactive when QRP is
// off or the query is a browse (always forward); otherwise the criteria's
// pre-hashed slots (nil for a keywordless query, which no table matches).
type qrpHoist struct {
	active bool
	hashes []uint32
}

// hoistQRP computes the flood-wide QRP state for a query.
func (nw *Network) hoistQRP(criteria string) qrpHoist {
	if nw.qrpTables == nil || criteria == BrowseCriteria {
		return qrpHoist{}
	}
	return qrpHoist{active: true, hashes: qrp.QueryHashes(criteria, nw.qrpBits)}
}

// hoistQRPToks computes the flood-wide QRP state from the already-deduped
// token list, reusing the context's slot scratch. Known terms read their
// precomputed hash product from the dictionary; unknown query terms are
// still string-hashed — they can false-positive into a route table, and the
// forwarding decision must not depend on which path computed the slots.
// Checking deduped tokens is equivalent to the per-occurrence QueryHashes:
// duplicate occurrences test the same slot.
func (c *FloodCtx) hoistQRPToks(criteria string, toks []string) qrpHoist {
	nw := c.nw
	if nw.qrpTables == nil || criteria == BrowseCriteria {
		return qrpHoist{}
	}
	if len(toks) == 0 {
		// Keywordless query: active with no hashes, which no table matches.
		return qrpHoist{active: true}
	}
	hs := c.qhash[:0]
	for _, tok := range toks {
		if nw.dict != nil {
			if id, ok := nw.dict.Lookup(tok); ok {
				hs = append(hs, nw.dict.Slot(id, nw.qrpBits))
				continue
			}
		}
		hs = append(hs, qrp.Hash(tok, nw.qrpBits))
	}
	c.qhash = hs
	return qrpHoist{active: true, hashes: hs}
}

// qrpAllowsHoisted is qrpAllows with the query hash pre-computed.
func (nw *Network) qrpAllowsHoisted(id int, h qrpHoist) bool {
	if !h.active {
		return true
	}
	t := nw.qrpTables[id]
	if t == nil {
		return true
	}
	return t.ContainsAll(h.hashes)
}

// Reach returns how many peers a TTL-limited flood from origin would
// process, without matching any content (topology-only coverage).
func (nw *Network) Reach(origin, ttl int) int {
	if origin < 0 || origin >= len(nw.Peers) || ttl < 1 {
		return 0
	}
	seen := map[int]bool{origin: true}
	type hop struct{ id, ttl int }
	frontier := []hop{}
	for _, nb := range nw.Peers[origin].Neighbors {
		frontier = append(frontier, hop{nb, ttl})
	}
	reached := 0
	for len(frontier) > 0 {
		var next []hop
		for _, h := range frontier {
			if seen[h.id] {
				continue
			}
			seen[h.id] = true
			reached++
			peer := nw.Peers[h.id]
			if h.ttl <= 1 {
				continue
			}
			if nw.Config.UltrapeerFrac > 0 && !peer.Ultrapeer {
				continue
			}
			for _, nb := range peer.Neighbors {
				if !seen[nb] {
					next = append(next, hop{nb, h.ttl - 1})
				}
			}
		}
		frontier = next
	}
	return reached
}
