package gnet

import (
	"fmt"

	"querycentric/internal/gmsg"
	"querycentric/internal/rng"
)

// Hit is one QueryHit observed by the query originator.
type Hit struct {
	PeerID int
	Files  []gmsg.Result
	Hops   int // hops the query had taken when it was answered
}

// FloodResult summarizes one flooded query.
type FloodResult struct {
	GUID         gmsg.GUID
	Criteria     string
	TTL          int
	PeersReached int   // peers that processed the query (excluding origin)
	Hits         []Hit // responding peers and their matching files
	TotalResults int   // total matching files across all hits
	Messages     int   // query descriptors transmitted (protocol cost)
}

// Flood floods a keyword query from origin with the given TTL, following
// the Gnutella forwarding rules: decrement TTL / increment hops per hop,
// drop descriptors whose GUID was already seen, answer from each reached
// peer's library. Each hop encodes and re-decodes the descriptor so the
// wire format stays on the measurement path.
func (nw *Network) Flood(origin int, criteria string, ttl int, r *rng.Source) (*FloodResult, error) {
	if origin < 0 || origin >= len(nw.Peers) {
		return nil, fmt.Errorf("gnet: origin %d out of range", origin)
	}
	if ttl < 1 || ttl > 255 {
		return nil, fmt.Errorf("gnet: TTL %d out of range", ttl)
	}
	guid := gmsg.GUIDFromUint64s(r.Uint64(), r.Uint64())
	q := &gmsg.Message{
		Header: gmsg.Header{GUID: guid, Type: gmsg.TypeQuery, TTL: byte(ttl)},
		Query:  &gmsg.Query{Criteria: criteria},
	}
	res := &FloodResult{GUID: guid, Criteria: criteria, TTL: ttl}
	seen := map[int]bool{origin: true}

	type envelope struct {
		to  int
		raw []byte
	}
	frontier := make([]envelope, 0, len(nw.Peers[origin].Neighbors))
	raw, err := gmsg.Encode(q)
	if err != nil {
		return nil, err
	}
	for _, nb := range nw.Peers[origin].Neighbors {
		frontier = append(frontier, envelope{to: nb, raw: raw})
		res.Messages++
	}

	for len(frontier) > 0 {
		var next []envelope
		for _, env := range frontier {
			if seen[env.to] {
				continue // duplicate suppression by GUID
			}
			// Per-hop faults: a dead peer never receives, and a lost copy
			// is transmitted (already counted) but not delivered. Neither
			// marks the peer seen, so a copy arriving over another overlay
			// edge may still get through.
			if !nw.faults.Alive(env.to) || nw.faults.MessageLoss(env.to) {
				continue
			}
			seen[env.to] = true
			m, _, err := gmsg.Decode(env.raw)
			if err != nil {
				return nil, fmt.Errorf("gnet: hop decode: %w", err)
			}
			res.PeersReached++
			peer := nw.Peers[env.to]
			if files := peer.Match(m.Query.Criteria); len(files) > 0 {
				hit := Hit{PeerID: env.to, Hops: int(m.Header.Hops) + 1}
				for _, f := range files {
					hit.Files = append(hit.Files, gmsg.Result{
						FileIndex: f.Index, FileSize: f.Size, FileName: f.Name,
					})
				}
				res.Hits = append(res.Hits, hit)
				res.TotalResults += len(files)
			}
			// Forward if TTL remains; leaves don't forward in two-tier
			// Gnutella (only ultrapeers relay).
			if m.Header.TTL <= 1 {
				continue
			}
			if nw.Config.UltrapeerFrac > 0 && !peer.Ultrapeer {
				continue
			}
			fwd := *m
			fwd.Header.TTL--
			fwd.Header.Hops++
			fraw, err := gmsg.Encode(&fwd)
			if err != nil {
				return nil, err
			}
			for _, nb := range peer.Neighbors {
				if seen[nb] {
					continue
				}
				// Last-hop QRP filtering: do not waste a message on a
				// leaf whose route table cannot match.
				if !nw.qrpAllows(nb, criteria) {
					continue
				}
				next = append(next, envelope{to: nb, raw: fraw})
				res.Messages++
			}
		}
		frontier = next
	}
	return res, nil
}

// Reach returns how many peers a TTL-limited flood from origin would
// process, without matching any content (topology-only coverage).
func (nw *Network) Reach(origin, ttl int) int {
	if origin < 0 || origin >= len(nw.Peers) || ttl < 1 {
		return 0
	}
	seen := map[int]bool{origin: true}
	type hop struct{ id, ttl int }
	frontier := []hop{}
	for _, nb := range nw.Peers[origin].Neighbors {
		frontier = append(frontier, hop{nb, ttl})
	}
	reached := 0
	for len(frontier) > 0 {
		var next []hop
		for _, h := range frontier {
			if seen[h.id] {
				continue
			}
			seen[h.id] = true
			reached++
			peer := nw.Peers[h.id]
			if h.ttl <= 1 {
				continue
			}
			if nw.Config.UltrapeerFrac > 0 && !peer.Ultrapeer {
				continue
			}
			for _, nb := range peer.Neighbors {
				if !seen[nb] {
					next = append(next, hop{nb, h.ttl - 1})
				}
			}
		}
		frontier = next
	}
	return reached
}
