package gnet

import (
	"sort"

	"querycentric/internal/terms"
)

// The pre-interning string-keyed index and match path, switched on by
// Network.UseLegacyStringIndex. Kept as the reference implementation: the
// equivalence gate in index_equiv_test.go floods the same network down both
// paths and requires identical FloodResults, and qc-bench measures the two
// paths' retained heap and match latency against each other.

// buildLegacyIndex builds the peer's token → file map index.
func (p *Peer) buildLegacyIndex() {
	p.termIndex = make(map[string][]int32)
	for i, f := range p.Library {
		for tok := range terms.TokenSet(f.Name) {
			p.termIndex[tok] = append(p.termIndex[tok], int32(i))
		}
	}
}

// matchTokensLegacy intersects the peer's posting lists rarest token first.
// It reorders toks in place; callers pass a scratch copy. The index must
// already be built (callers go through indexOnce).
func (p *Peer) matchTokensLegacy(toks []string) []File {
	if len(toks) == 0 {
		return nil
	}
	sort.Slice(toks, func(i, j int) bool {
		return len(p.termIndex[toks[i]]) < len(p.termIndex[toks[j]])
	})
	cur := p.termIndex[toks[0]]
	for _, tok := range toks[1:] {
		if len(cur) == 0 {
			return nil
		}
		cur = intersectPostings(cur, p.termIndex[tok])
	}
	if len(cur) == 0 {
		return nil
	}
	out := make([]File, len(cur))
	for i, idx := range cur {
		out[i] = p.Library[idx]
	}
	return out
}
