package gnet

import (
	"errors"
	"io"
	"sync"
)

// ErrConnReset is the error surfaced by a connection the fault plane
// resets mid-stream.
var ErrConnReset = errors.New("gnet: connection reset by peer")

// ErrTimeout is returned by Dial when a connection attempt times out
// (dead peer or injected dial fault).
var ErrTimeout = errors.New("gnet: connection timed out")

// faultConn wraps the client side of a dialed connection and kills it
// after delivering a bounded number of bytes. In reset mode the death is
// loud (ErrConnReset on reads and writes); in truncate mode the final
// message is cut short and followed by a clean EOF, as if the servent
// closed mid-write.
type faultConn struct {
	inner io.ReadWriteCloser

	mu        sync.Mutex
	remaining int
	truncate  bool
	dead      bool
}

func newFaultConn(inner io.ReadWriteCloser, budget int, truncate bool) *faultConn {
	return &faultConn{inner: inner, remaining: budget, truncate: truncate}
}

func (c *faultConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if c.dead || c.remaining <= 0 {
		c.die()
		err := error(ErrConnReset)
		if c.truncate {
			err = io.EOF
		}
		c.mu.Unlock()
		return 0, err
	}
	if len(p) > c.remaining {
		p = p[:c.remaining]
	}
	c.mu.Unlock()

	n, err := c.inner.Read(p)

	c.mu.Lock()
	c.remaining -= n
	c.mu.Unlock()
	return n, err
}

func (c *faultConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.dead && !c.truncate {
		c.mu.Unlock()
		return 0, ErrConnReset
	}
	c.mu.Unlock()
	return c.inner.Write(p)
}

// die releases the servent goroutine, whose pipe writes would otherwise
// block forever once the client stops draining. Callers hold c.mu.
func (c *faultConn) die() {
	if !c.dead {
		c.dead = true
		c.inner.Close()
	}
}

func (c *faultConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dead = true
	return c.inner.Close()
}
