package gnet

import (
	"reflect"
	"testing"

	"querycentric/internal/rng"
)

// TestPathCaptureChangesNothing pins the capture contract: a flood with
// answer-path recording enabled returns the identical FloodResult to one
// without, and every reconstructed path is a valid overlay route from the
// origin to the answering peer with length matching the hit's hop count.
func TestPathCaptureChangesNothing(t *testing.T) {
	nw := populatedNet(t, 200)
	plain := nw.NewFloodCtx()
	captured := nw.NewFloodCtx()
	captured.SetPathCapture(true)

	paths := 0
	for origin := 0; origin < 25; origin++ {
		criteria := fileOf(t, nw, origin*17+3)
		ra, err := plain.Flood(origin, criteria, 4, rng.New(uint64(origin)))
		if err != nil {
			t.Fatal(err)
		}
		rb, err := captured.Flood(origin, criteria, 4, rng.New(uint64(origin)))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("path capture perturbed flood from %d:\n%+v\nvs\n%+v", origin, ra, rb)
		}
		if plain.AnswerPath(origin) != nil {
			t.Fatal("AnswerPath returned a path with capture disabled")
		}
		for _, h := range rb.Hits {
			path := captured.AnswerPath(h.PeerID)
			if path == nil {
				t.Fatalf("no path to answering peer %d", h.PeerID)
			}
			if path[0] != origin || path[len(path)-1] != h.PeerID {
				t.Fatalf("path %v does not run origin %d → peer %d", path, origin, h.PeerID)
			}
			if len(path)-1 != h.Hops {
				t.Fatalf("path %v has %d edges, hit reported %d hops", path, len(path)-1, h.Hops)
			}
			for i := 0; i+1 < len(path); i++ {
				if !nw.connected(path[i], path[i+1]) {
					t.Fatalf("path %v uses missing edge %d–%d", path, path[i], path[i+1])
				}
			}
			paths++
		}
	}
	if paths == 0 {
		t.Fatal("no hits produced any answer paths; workload too weak to test capture")
	}
}

// TestAnswerPathUnreachedPeer covers the miss cases: peers the flood never
// processed, out-of-range IDs, and the origin itself.
func TestAnswerPathUnreachedPeer(t *testing.T) {
	nw := populatedNet(t, 120)
	ctx := nw.NewFloodCtx()
	ctx.SetPathCapture(true)
	res, err := ctx.Flood(0, fileOf(t, nw, 7), 2, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if got := ctx.AnswerPath(0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("origin path = %v, want [0]", got)
	}
	if ctx.AnswerPath(-1) != nil || ctx.AnswerPath(len(nw.Peers)) != nil {
		t.Fatal("out-of-range peer produced a path")
	}
	if res.PeersReached < len(nw.Peers)-1 {
		// Some peer was not reached; it must have no path.
		seen := make(map[int]bool, res.PeersReached)
		for id := range nw.Peers {
			if ctx.AnswerPath(id) != nil {
				seen[id] = true
			}
		}
		if len(seen) != res.PeersReached+1 { // +1 for the origin
			t.Fatalf("%d peers have paths, flood reached %d", len(seen), res.PeersReached)
		}
	}
}

// TestAddFileRebuildsIndex pins the replication mutation contract: an
// installed copy is found by the peer's own Match and by floods, through
// the index rebuild (including the local-dictionary fallback when the
// shared dictionary predates the name).
func TestAddFileRebuildsIndex(t *testing.T) {
	nw := populatedNet(t, 120)
	name := fileOf(t, nw, 11)
	// Find a peer that does not match the name yet.
	target := -1
	for id := range nw.Peers {
		if len(nw.Peers[id].Match(name)) == 0 {
			target = id
			break
		}
	}
	if target < 0 {
		t.Fatal("every peer already matches the probe name")
	}
	before := len(nw.Peers[target].Library)
	if err := nw.AddFile(target, name, 4096); err != nil {
		t.Fatal(err)
	}
	p := nw.Peers[target]
	if len(p.Library) != before+1 {
		t.Fatalf("library grew to %d, want %d", len(p.Library), before+1)
	}
	if got := p.Match(name); len(got) == 0 {
		t.Fatal("peer does not match the installed file after index rebuild")
	}
	// A name the shared dictionary has never seen exercises the
	// local-dictionary fallback.
	if err := nw.AddFile(target, "zzqx unseen replica token", 1); err != nil {
		t.Fatal(err)
	}
	if got := p.Match("zzqx unseen"); len(got) == 0 {
		t.Fatal("peer does not match a post-construction name via local dictionary")
	}
	// Floods see the new copy via the mutated peer's local dictionary.
	neighbor := p.Neighbors[0]
	res, err := nw.NewFloodCtx().Flood(neighbor, "zzqx unseen replica token", 1, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalResults == 0 {
		t.Fatal("flood from a neighbor missed the installed file")
	}
	// Out-of-range and empty-name mutations are rejected.
	if err := nw.AddFile(-1, "x", 1); err == nil {
		t.Error("negative peer accepted")
	}
	if err := nw.AddFile(len(nw.Peers), "x", 1); err == nil {
		t.Error("out-of-range peer accepted")
	}
	if err := nw.AddFile(0, "", 1); err == nil {
		t.Error("empty name accepted")
	}
}
