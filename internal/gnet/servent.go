package gnet

import (
	"errors"
	"fmt"
	"io"
	"net"

	"querycentric/internal/capacity"
	"querycentric/internal/faults"
)

// BrowseCriteria is the query string that asks a peer to enumerate its
// entire shared library (our stand-in for Gnutella's browse-host feature,
// which the paper's file crawler relied on).
const BrowseCriteria = "*"

// maxResultsPerHit caps results per QueryHit descriptor (wire limit 255).
const maxResultsPerHit = 200

// ErrFirewalled is returned by Dial for peers behind a (modeled) firewall.
var ErrFirewalled = errors.New("gnet: peer is firewalled")

// SetFaults attaches a fault-injection plane to the network. All wire
// operations (Dial, handshakes, servent sessions, Flood) consult it; a nil
// plane — the default — injects nothing and leaves every code path
// byte-identical to the fault-free substrate.
func (nw *Network) SetFaults(p *faults.Plane) { nw.faults = p }

// Faults returns the attached fault plane (nil when none).
func (nw *Network) Faults() *faults.Plane { return nw.faults }

// SetCapacity attaches a bounded-ingress overload plane: floods and
// maintenance pings charge each destination's queue and respect its
// circuit breaker. A nil plane — the default — admits everything and
// leaves every code path byte-identical to the unbounded substrate.
func (nw *Network) SetCapacity(p *capacity.Plane) { nw.capacity = p }

// Capacity returns the attached overload plane (nil when none).
func (nw *Network) Capacity() *capacity.Plane { return nw.capacity }

// Dial opens a wire connection to the peer at addr, serving the peer's side
// on a background goroutine. The caller must Close the returned connection.
// Firewalled peers refuse the connection, as the crawler would observe.
// Under an attached fault plane a dial may time out (dead peer, injected
// dial fault), the servent may stall the handshake, or the returned
// connection may be primed to reset or truncate mid-stream.
func (nw *Network) Dial(addr Addr) (io.ReadWriteCloser, error) {
	p := nw.PeerByAddr(addr)
	if p == nil {
		return nil, fmt.Errorf("gnet: no peer at %s: %w", addr, ErrTimeout)
	}
	if !nw.faults.Alive(p.ID) || nw.faults.DialTimeout(p.ID) {
		return nil, fmt.Errorf("gnet: dial %s: %w", addr, ErrTimeout)
	}
	if nw.firewalled[p.ID] {
		return nil, ErrFirewalled
	}
	client, server := net.Pipe()
	if nw.faults.HandshakeStall(p.ID) {
		// The servent reads the client's greeting, goes silent and drops
		// the connection: the client observes EOF mid-handshake.
		go func() {
			defer server.Close()
			buf := make([]byte, 1024)
			_, _ = server.Read(buf)
		}()
		return client, nil
	}
	go func() {
		defer server.Close()
		// Errors on the servent side (e.g. client hangs up) end the session.
		_ = nw.ServeConn(p.ID, server)
	}()
	if budget, fire := nw.faults.ConnReset(p.ID); fire {
		return newFaultConn(client, budget, false), nil
	}
	if budget, fire := nw.faults.TruncateWrite(p.ID); fire {
		return newFaultConn(client, budget, true), nil
	}
	return client, nil
}

// ServeConn speaks the servent side of the protocol on conn for peer id:
// handshake, then Ping→Pong (with pong-cached neighbours) and
// Query→QueryHit until the connection closes.
func (nw *Network) ServeConn(id int, conn io.ReadWriteCloser) error {
	if id < 0 || id >= len(nw.Peers) {
		return fmt.Errorf("gnet: peer %d out of range", id)
	}
	p := nw.Peers[id]
	hdrs := map[string]string{
		"User-Agent":  "querycentric/0.1",
		"X-Ultrapeer": boolHeader(p.Ultrapeer),
	}
	if tries := nw.tryAddrs(p); len(tries) > 0 {
		hdrs["X-Try-Ultrapeers"] = FormatTryUltrapeers(tries)
	}
	if _, err := Accept(conn, 200, hdrs); err != nil {
		return err
	}
	buf := newMsgConn(conn)
	for {
		m, err := buf.read()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil
			}
			return err
		}
		// Session fault: the peer departs before serving this descriptor.
		if nw.faults.PeerDepart(p.ID) {
			return nil
		}
		if err := nw.handle(p, m, buf); err != nil {
			if errors.Is(err, errPeerDeparted) {
				return nil
			}
			return err
		}
	}
}

// tryAddrs lists the ultrapeer neighbours advertised in X-Try-Ultrapeers.
func (nw *Network) tryAddrs(p *Peer) []Addr {
	var out []Addr
	for _, nb := range p.Neighbors {
		q := nw.Peers[nb]
		if q.Ultrapeer || nw.Config.UltrapeerFrac == 0 {
			out = append(out, q.Addr)
		}
	}
	return out
}

func boolHeader(b bool) string {
	if b {
		return "True"
	}
	return "False"
}
