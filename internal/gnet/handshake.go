package gnet

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The GNUTELLA/0.6 handshake is a three-way, HTTP-header-style exchange:
//
//	client: GNUTELLA CONNECT/0.6\r\n<headers>\r\n\r\n
//	server: GNUTELLA/0.6 <code> <message>\r\n<headers>\r\n\r\n
//	client: GNUTELLA/0.6 200 OK\r\n\r\n
//
// Crawlers such as Cruiser exploit the X-Try-Ultrapeers response header,
// which lists other peers' addresses, to walk the topology without joining
// it; internal/crawler does the same here.

// Handshake carries the outcome of one handshake from either side.
type Handshake struct {
	Code    int               // response code (200 = accepted)
	Message string            // response message text
	Headers map[string]string // peer's headers, keys lowercased
}

// StatusBusy is the customary refusal code for a saturated peer.
const StatusBusy = 503

// Connect performs the client side of the handshake, sending hdrs and
// returning the server's response. A non-200 response is returned as a
// *RejectedError (the Handshake is still populated).
func Connect(rw io.ReadWriter, hdrs map[string]string) (*Handshake, error) {
	var b strings.Builder
	b.WriteString("GNUTELLA CONNECT/0.6\r\n")
	writeHeaders(&b, hdrs)
	b.WriteString("\r\n")
	if _, err := io.WriteString(rw, b.String()); err != nil {
		return nil, fmt.Errorf("gnet: handshake write: %w", err)
	}
	br := bufio.NewReader(rw)
	code, msg, respHdrs, err := readResponse(br)
	if err != nil {
		return nil, err
	}
	h := &Handshake{Code: code, Message: msg, Headers: respHdrs}
	if code != 200 {
		return h, &RejectedError{Code: code, Message: msg}
	}
	if _, err := io.WriteString(rw, "GNUTELLA/0.6 200 OK\r\n\r\n"); err != nil {
		return nil, fmt.Errorf("gnet: handshake confirm: %w", err)
	}
	return h, nil
}

// Accept performs the server side: it reads the client's request, responds
// with code (200 accepts; anything else rejects and ends the handshake) and
// hdrs, and on acceptance consumes the client's confirmation line. The
// returned Handshake carries the client's headers.
func Accept(rw io.ReadWriter, code int, hdrs map[string]string) (*Handshake, error) {
	br := bufio.NewReader(rw)
	line, err := readLine(br)
	if err != nil {
		return nil, fmt.Errorf("gnet: handshake read: %w", err)
	}
	if line != "GNUTELLA CONNECT/0.6" {
		return nil, fmt.Errorf("gnet: unexpected handshake greeting %q", line)
	}
	clientHdrs, err := readHeaderBlock(br)
	if err != nil {
		return nil, err
	}
	msg := "OK"
	if code != 200 {
		msg = "Service Unavailable"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "GNUTELLA/0.6 %d %s\r\n", code, msg)
	writeHeaders(&b, hdrs)
	b.WriteString("\r\n")
	if _, err := io.WriteString(rw, b.String()); err != nil {
		return nil, fmt.Errorf("gnet: handshake write: %w", err)
	}
	h := &Handshake{Code: code, Message: msg, Headers: clientHdrs}
	if code != 200 {
		return h, nil
	}
	ccode, _, _, err := readResponse(br)
	if err != nil {
		return nil, fmt.Errorf("gnet: reading confirmation: %w", err)
	}
	if ccode != 200 {
		return h, &RejectedError{Code: ccode, Message: "client declined"}
	}
	return h, nil
}

// RejectedError reports a non-200 handshake response.
type RejectedError struct {
	Code    int
	Message string
}

func (e *RejectedError) Error() string {
	return fmt.Sprintf("gnet: handshake rejected: %d %s", e.Code, e.Message)
}

func writeHeaders(b *strings.Builder, hdrs map[string]string) {
	keys := make([]string, 0, len(hdrs))
	for k := range hdrs {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic wire output
	for _, k := range keys {
		fmt.Fprintf(b, "%s: %s\r\n", k, hdrs[k])
	}
}

func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

func readHeaderBlock(br *bufio.Reader) (map[string]string, error) {
	hdrs := map[string]string{}
	for {
		line, err := readLine(br)
		if err != nil {
			return nil, fmt.Errorf("gnet: reading headers: %w", err)
		}
		if line == "" {
			return hdrs, nil
		}
		i := strings.IndexByte(line, ':')
		if i < 0 {
			return nil, fmt.Errorf("gnet: malformed header line %q", line)
		}
		key := strings.ToLower(strings.TrimSpace(line[:i]))
		hdrs[key] = strings.TrimSpace(line[i+1:])
	}
}

func readResponse(br *bufio.Reader) (code int, msg string, hdrs map[string]string, err error) {
	line, err := readLine(br)
	if err != nil {
		return 0, "", nil, fmt.Errorf("gnet: reading response: %w", err)
	}
	if !strings.HasPrefix(line, "GNUTELLA/0.6 ") {
		return 0, "", nil, fmt.Errorf("gnet: malformed response line %q", line)
	}
	rest := strings.TrimPrefix(line, "GNUTELLA/0.6 ")
	parts := strings.SplitN(rest, " ", 2)
	code, err = strconv.Atoi(parts[0])
	if err != nil {
		return 0, "", nil, fmt.Errorf("gnet: malformed response code in %q", line)
	}
	if len(parts) == 2 {
		msg = parts[1]
	}
	hdrs, err = readHeaderBlock(br)
	return code, msg, hdrs, err
}

// FormatTryUltrapeers renders addresses for the X-Try-Ultrapeers header.
func FormatTryUltrapeers(addrs []Addr) string {
	parts := make([]string, len(addrs))
	for i, a := range addrs {
		parts[i] = a.String()
	}
	return strings.Join(parts, ",")
}

// ParseTryUltrapeers parses an X-Try-Ultrapeers header value. Malformed
// entries are skipped, as deployed clients do.
func ParseTryUltrapeers(v string) []Addr {
	var out []Addr
	for _, part := range strings.Split(v, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		a, err := ParseAddr(part)
		if err != nil {
			continue
		}
		out = append(out, a)
	}
	return out
}

// ParseAddr parses "a.b.c.d:port".
func ParseAddr(s string) (Addr, error) {
	host, portStr, ok := strings.Cut(s, ":")
	if !ok {
		return Addr{}, fmt.Errorf("gnet: address %q missing port", s)
	}
	port, err := strconv.ParseUint(portStr, 10, 16)
	if err != nil {
		return Addr{}, fmt.Errorf("gnet: bad port in %q", s)
	}
	octets := strings.Split(host, ".")
	if len(octets) != 4 {
		return Addr{}, fmt.Errorf("gnet: bad IPv4 in %q", s)
	}
	var a Addr
	for i, o := range octets {
		v, err := strconv.ParseUint(o, 10, 8)
		if err != nil {
			return Addr{}, fmt.Errorf("gnet: bad octet in %q", s)
		}
		a.IP[i] = byte(v)
	}
	a.Port = uint16(port)
	return a, nil
}
