package experiments

import (
	"fmt"

	"querycentric/internal/churn"
	"querycentric/internal/overlay"
	"querycentric/internal/parallel"
	"querycentric/internal/rng"
	"querycentric/internal/search"
)

// ChurnResult compares search availability under session churn for uniform
// vs Zipf placements.
type ChurnResult struct {
	Nodes          int
	MeanOnline     float64
	UniformSuccess float64
	ZipfSuccess    float64
	// Series carry the per-sample success over time for plotting.
	UniformSeries []churn.Sample
	ZipfSeries    []churn.Sample
}

// ChurnComparison runs the churn experiment: the same overlay and session
// process, measured against the uniform placement prior evaluations
// assumed and the Zipf placement the paper observed. Churn amplifies the
// Zipf penalty: most objects have a single copy whose availability is one
// peer's uptime.
func ChurnComparison(e *Env) (*ChurnResult, error) {
	nodes := e.P.SimNodes / 16
	if nodes < 400 {
		nodes = 400
	}
	g, err := overlay.NewGnutella(nodes, overlay.DefaultGnutellaConfig(), e.Seed+80)
	if err != nil {
		return nil, err
	}
	objects := 80
	uni, err := search.UniformPlacement(nodes, objects, maxIntE(nodes/50, 2), e.Seed+81)
	if err != nil {
		return nil, err
	}
	zpf, err := search.ZipfPlacement(nodes, objects, 2.45, nodes/10, e.Seed+81)
	if err != nil {
		return nil, err
	}
	cfg := churn.DefaultConfig(e.Seed + 82)
	cfg.Duration = 2 * 3600
	cfg.QueriesPerSample = maxIntE(e.P.SimTrials/4, 50)
	// churn.Run validates too, but failing here keeps the error out of the
	// fanned-out goroutines and names the experiment that built the config.
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: churn comparison config: %w", err)
	}
	// The two placements are measured over independent churn runs; fan
	// them out (each run is internally deterministic from its own config).
	places := []*search.Placement{uni, zpf}
	runs, err := parallel.Map(e.workers(), len(places), func(i int) (*churn.Result, error) {
		return churn.Run(g, places[i], cfg)
	})
	if err != nil {
		return nil, err
	}
	rUni, rZpf := runs[0], runs[1]
	return &ChurnResult{
		Nodes:          nodes,
		MeanOnline:     rUni.MeanOnline,
		UniformSuccess: rUni.MeanSuccess,
		ZipfSuccess:    rZpf.MeanSuccess,
		UniformSeries:  rUni.Samples,
		ZipfSeries:     rZpf.Samples,
	}, nil
}

// WalkVsFloodResult compares the two unstructured mechanisms the paper's
// related work discusses, at (approximately) equal message budgets.
type WalkVsFloodResult struct {
	Nodes         int
	FloodSuccess  float64
	FloodMessages float64 // mean per query
	WalkSuccess   float64
	WalkMessages  float64
	RingSuccess   float64 // expanding ring
	RingMessages  float64
}

// WalkVsFlood measures TTL-3 flooding, 16-walker random walks and the
// expanding ring over the same Zipf placement. The paper's point applies
// to all three: none can find what is barely replicated; the mechanisms
// differ only in how much they pay to fail.
func WalkVsFlood(e *Env) (*WalkVsFloodResult, error) {
	nodes := e.P.SimNodes / 8
	if nodes < 500 {
		nodes = 500
	}
	g, err := overlay.NewGnutella(nodes, overlay.DefaultGnutellaConfig(), e.Seed+90)
	if err != nil {
		return nil, err
	}
	objects := 200
	p, err := search.ZipfPlacement(nodes, objects, 2.45, nodes/10, e.Seed+91)
	if err != nil {
		return nil, err
	}
	eng, err := search.NewEngine(g, p)
	if err != nil {
		return nil, err
	}
	trials := e.P.SimTrials
	if trials < 150 {
		trials = 150
	}
	base := rng.NewNamed(e.Seed, "experiments/walk-vs-flood")
	res := &WalkVsFloodResult{Nodes: nodes}
	// Trial i draws origin, object and walk randomness from the derived
	// stream "trial/i"; each worker searches through its own Searcher.
	type trial struct {
		fFound, wFound, rFound bool
		fMsgs, wMsgs, rMsgs    int
	}
	out, err := parallel.MapWith(e.workers(), trials,
		func() *search.Searcher { return eng.NewSearcher() },
		func(s *search.Searcher, i int) (trial, error) {
			r := base.Derive(fmt.Sprintf("trial/%d", i))
			origin := r.Intn(nodes)
			obj := r.Intn(objects)
			var t trial
			fl, err := s.Flood(origin, obj, 3)
			if err != nil {
				return t, err
			}
			t.fFound, t.fMsgs = fl.Found, fl.Messages
			// Walker budget below the flood cost (8 walkers × 48 steps).
			wk, err := s.RandomWalk(origin, obj, 8, 48, r)
			if err != nil {
				return t, err
			}
			t.wFound, t.wMsgs = wk.Found, wk.Messages
			er, err := s.ExpandingRing(origin, obj, 3)
			if err != nil {
				return t, err
			}
			t.rFound, t.rMsgs = er.Found, er.Messages
			return t, nil
		})
	if err != nil {
		return nil, err
	}
	var fHits, wHits, rHits int
	var fMsgs, wMsgs, rMsgs int
	for _, t := range out {
		if t.fFound {
			fHits++
		}
		if t.wFound {
			wHits++
		}
		if t.rFound {
			rHits++
		}
		fMsgs += t.fMsgs
		wMsgs += t.wMsgs
		rMsgs += t.rMsgs
	}
	ft := float64(trials)
	res.FloodSuccess, res.FloodMessages = float64(fHits)/ft, float64(fMsgs)/ft
	res.WalkSuccess, res.WalkMessages = float64(wHits)/ft, float64(wMsgs)/ft
	res.RingSuccess, res.RingMessages = float64(rHits)/ft, float64(rMsgs)/ft
	return res, nil
}

func maxIntE(a, b int) int {
	if a > b {
		return a
	}
	return b
}
