package experiments

import (
	"fmt"

	"querycentric/internal/catalog"
	"querycentric/internal/gnet"
	"querycentric/internal/parallel"
	"querycentric/internal/rng"
	"querycentric/internal/terms"
)

// QRPResult shows what deployed query routing can and cannot fix: QRP
// eliminates wasted last-hop messages, but it routes on *file* terms, so it
// cannot raise the success rate of a workload whose terms mismatch the
// annotations — the paper's argument, in protocol form.
type QRPResult struct {
	Peers          int
	Queries        int
	PlainSuccess   float64
	PlainMessages  int
	QRPSuccess     float64
	QRPMessages    int
	MessageSavings float64 // 1 - QRPMessages/PlainMessages
}

// QRPEffect floods one workload twice over the same wire-level network —
// without and with QRP route tables — and compares success and cost. The
// workload mixes queries derived from real file names (findable) with
// query-vocabulary terms (the mismatched majority, per Figure 7).
func QRPEffect(e *Env) (*QRPResult, error) {
	peers := e.P.GnutellaPeers / 2
	if peers < 200 {
		peers = 200
	}
	cat, err := catalog.Build(catalog.Config{
		Seed: e.Seed + 70, Peers: peers, UniqueObjects: peers * 20, ReplicaAlpha: 2.45,
	})
	if err != nil {
		return nil, err
	}
	nw, err := gnet.NewFromCatalog(gnet.DefaultConfig(e.Seed+70), cat)
	if err != nil {
		return nil, err
	}
	e.instrumentNetwork(nw)

	// Build the query list: 30% findable (two tokens of a random shared
	// name), 70% mismatched (query-vocabulary words absent from content).
	qr := rng.NewNamed(e.Seed, "experiments/qrp-queries")
	nQueries := e.P.SimTrials
	if nQueries < 150 {
		nQueries = 150
	}
	queries := make([]string, 0, nQueries)
	for len(queries) < nQueries {
		if qr.Bool(0.3) {
			p := nw.Peers[qr.Intn(peers)]
			if len(p.Library) == 0 {
				continue
			}
			toks := terms.Tokenize(p.Library[qr.Intn(len(p.Library))].Name)
			if len(toks) < 2 {
				continue
			}
			i := qr.Intn(len(toks) - 1)
			queries = append(queries, toks[i]+" "+toks[i+1])
		} else {
			queries = append(queries, "queryonly"+string(rune('a'+qr.Intn(26)))+
				" vocabword"+string(rune('a'+qr.Intn(26))))
		}
	}

	// Each query floods under its own derived stream "trial/i" on a
	// per-worker context; hits and messages are summed in query order, so
	// both passes (plain, QRP) are byte-identical at any worker count.
	run := func(seed uint64) (success float64, messages int, err error) {
		base := rng.NewNamed(seed, "experiments/qrp-run")
		type trial struct {
			hit  bool
			msgs int
		}
		out, err := parallel.MapWith(e.workers(), len(queries),
			func() *gnet.FloodCtx { return nw.NewFloodCtx() },
			func(ctx *gnet.FloodCtx, i int) (trial, error) {
				r := base.Derive(fmt.Sprintf("trial/%d", i))
				res, err := ctx.Flood(i%peers, queries[i], 4, r)
				if err != nil {
					return trial{}, err
				}
				return trial{hit: res.TotalResults > 0, msgs: res.Messages}, nil
			})
		if err != nil {
			return 0, 0, err
		}
		hits := 0
		for _, t := range out {
			if t.hit {
				hits++
			}
			messages += t.msgs
		}
		return float64(hits) / float64(len(queries)), messages, nil
	}

	out := &QRPResult{Peers: peers, Queries: len(queries)}
	if out.PlainSuccess, out.PlainMessages, err = run(e.Seed + 71); err != nil {
		return nil, err
	}
	if err := nw.EnableQRP(16); err != nil {
		return nil, err
	}
	if out.QRPSuccess, out.QRPMessages, err = run(e.Seed + 71); err != nil {
		return nil, err
	}
	if out.PlainMessages > 0 {
		out.MessageSavings = 1 - float64(out.QRPMessages)/float64(out.PlainMessages)
	}
	return out, nil
}
