package experiments

import (
	"encoding/json"
	"testing"

	"querycentric/internal/obs"
)

// tinyRecoveryConfig shrinks the recovery run to CI scale: one simulated
// hour, burst at 20 minutes, six ten-minute windows.
func tinyRecoveryConfig(seed uint64) RecoveryConfig {
	cfg := DefaultRecoveryConfig(seed)
	cfg.Duration = 3600
	cfg.BurstTime = 1200
	cfg.QueriesPerWindow = 40
	return cfg
}

func TestRecoveryConfigValidate(t *testing.T) {
	if err := DefaultRecoveryConfig(1).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*RecoveryConfig){
		func(c *RecoveryConfig) { c.BurstTime = 0 },
		func(c *RecoveryConfig) { c.BurstTime = c.Duration },
		func(c *RecoveryConfig) { c.BurstFrac = 1.5 },
		func(c *RecoveryConfig) { c.RecoverFrac = 0 },
		func(c *RecoveryConfig) { c.Window = 0 },
		func(c *RecoveryConfig) { c.QueriesPerWindow = -1 },
		func(c *RecoveryConfig) { c.TTL = 0 },
		func(c *RecoveryConfig) { c.Repair.PingTimeout = 0 },
	}
	for i, mutate := range bad {
		c := DefaultRecoveryConfig(1)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: invalid config passed Validate", i)
		}
	}
}

// TestRecoveryQualitative asserts the acceptance-criteria shape of the
// recovery curve at tiny scale: the burst dents success, the maintained
// overlay recovers to near its pre-burst baseline, the unmaintained one
// ends no better than the maintained one and leaves its ghost edges
// undisturbed.
func TestRecoveryQualitative(t *testing.T) {
	e := NewEnv(ScaleTiny, 42)
	e.Windows = obs.NewWindowLog()
	res, err := RecoveryWith(e, tinyRecoveryConfig(e.Seed))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Repair) != 6 || len(res.NoRepair) != 6 {
		t.Fatalf("got %d/%d windows, want 6/6", len(res.Repair), len(res.NoRepair))
	}
	if res.PreBurstSuccess < 0.5 {
		t.Fatalf("pre-burst success %.3f implausibly low", res.PreBurstSuccess)
	}
	// The burst takes ~30% of the population down and they stay down.
	for _, w := range res.Repair[2:] {
		if w.OnlineFrac > 0.75 || w.OnlineFrac < 0.6 {
			t.Fatalf("post-burst online frac %.3f, want ~0.7", w.OnlineFrac)
		}
	}
	if res.RecoveryTime < 0 {
		t.Fatalf("repair arm never recovered to %.2f of baseline: %+v", 0.95, res.Repair)
	}
	if res.RepairFinal < res.NoRepairFinal {
		t.Fatalf("repair arm ended at %.3f, below no-repair %.3f", res.RepairFinal, res.NoRepairFinal)
	}
	if res.RepairFinal < 0.9*res.PreBurstSuccess {
		t.Fatalf("repaired success %.3f never approached pre-burst %.3f", res.RepairFinal, res.PreBurstSuccess)
	}
	if res.RepairStats.RepairSuccesses == 0 {
		t.Fatal("repair arm recorded no successful repairs")
	}
	// Both arms' windowed series streamed into the environment's log.
	names := map[string]bool{}
	for _, s := range e.Windows.Snapshot() {
		names[s.Name] = true
	}
	for _, want := range []string{"recovery_repair_success", "recovery_norepair_success",
		"recovery_repair_partitions", "recovery_norepair_online_frac"} {
		if !names[want] {
			t.Fatalf("window series %q missing from log (have %v)", want, names)
		}
	}
}

// TestRecoveryWindowWorkerInvariance is the event-engine half of the
// determinism gate: the full windowed output — including the obs window
// series — must be byte-identical at workers=1 and workers=8.
func TestRecoveryWindowWorkerInvariance(t *testing.T) {
	marshal := func(workers int) []byte {
		e := NewEnv(ScaleTiny, 42)
		e.Workers = workers
		e.Windows = obs.NewWindowLog()
		res, err := RecoveryWith(e, tinyRecoveryConfig(e.Seed))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		b, err := json.Marshal(map[string]any{
			"result": res,
			"series": e.Windows.Snapshot(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	seq, par := marshal(1), marshal(8)
	if string(seq) != string(par) {
		t.Fatalf("recovery windows diverged between workers=1 and workers=8:\n%s\nvs\n%s", seq, par)
	}
}
