package experiments

import (
	"encoding/json"
	"testing"

	"querycentric/internal/catalog"
	"querycentric/internal/gnet"
)

// TestWorkerCountDoesNotChangeResults is the parallel-engine determinism
// regression: every ported runner must marshal byte-identically at one
// worker and at eight. Each trial owns a derived RNG stream and reductions
// walk trial order, so the worker count can only change who executes a
// trial — never what it computes.
func TestWorkerCountDoesNotChangeResults(t *testing.T) {
	runners := []struct {
		name string
		run  func(e *Env) (any, error)
	}{
		{"Fig8", func(e *Env) (any, error) { return Fig8(e) }},
		{"TTLCoverage", func(e *Env) (any, error) { return TTLCoverage(e) }},
		{"FaultSweep", func(e *Env) (any, error) {
			// Trim the grid: three rates cover clean, lossy and dead-peer
			// paths without tripling the tiny-scale runtime.
			return FaultSweepWith(e, FaultSweepConfig{
				Rates:    []float64{0, 0.2, 0.4},
				DeadFrac: 0.15,
			})
		}},
		{"QRPEffect", func(e *Env) (any, error) { return QRPEffect(e) }},
		{"WalkVsFlood", func(e *Env) (any, error) { return WalkVsFlood(e) }},
		// ChurnRepair marshals the full repair timeline (per-sample degree
		// and success for both scenarios plus maintenance counters), so
		// this doubles as the golden determinism check on topology repair.
		{"ChurnRepair", func(e *Env) (any, error) { return ChurnRepair(e) }},
		// Recovery marshals the event-engine windowed series of both arms,
		// extending the gate to discrete-event scheduling: interleaved
		// churn/fault/maintenance/query events must produce identical
		// windows at any worker count.
		{"Recovery", func(e *Env) (any, error) { return RecoveryWith(e, tinyRecoveryConfig(e.Seed)) }},
		// QueryCentric marshals all five strategy arms, extending the gate
		// across the adaptive overlay: parallel measurement batches,
		// event-scheduled adaptation rounds, topology rewiring and replica
		// installs must land byte-identically at any worker count.
		{"QueryCentric", func(e *Env) (any, error) { return QueryCentric(e) }},
		// NetworkConstruction covers the parallel build phases introduced
		// with term interning: catalog name generation, the shared
		// dictionary, and per-peer posting indexes must be byte-identical
		// at any worker count.
		{"NetworkConstruction", func(e *Env) (any, error) { return networkConstructionFingerprint(e) }},
	}
	for _, rn := range runners {
		rn := rn
		t.Run(rn.name, func(t *testing.T) {
			t.Parallel()
			marshal := func(workers int) []byte {
				e := NewEnv(ScaleTiny, 42)
				e.Workers = workers
				res, err := rn.run(e)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				b, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				return b
			}
			seq := marshal(1)
			par := marshal(8)
			if string(seq) != string(par) {
				t.Fatalf("%s diverged between workers=1 and workers=8:\n%s\nvs\n%s",
					rn.name, seq, par)
			}
			// And a repeat at 8 workers is stable run-to-run.
			if again := marshal(8); string(again) != string(par) {
				t.Fatalf("%s not stable across repeated workers=8 runs", rn.name)
			}
		})
	}
}

// networkConstructionFingerprint builds the catalog + network + indexes at
// the environment's worker count and returns everything the worker count
// could conceivably perturb: the per-peer library placements, the shared
// dictionary fingerprint, and the checksum over every peer's flat posting
// index.
func networkConstructionFingerprint(e *Env) (any, error) {
	cat, err := catalog.BuildWorkers(catalog.Config{
		Seed:                e.Seed,
		Peers:               e.P.GnutellaPeers,
		UniqueObjects:       e.P.UniqueObjects,
		ReplicaAlpha:        2.45,
		VariantProb:         0.08,
		NonSpecificPeerFrac: 0.05,
	}, e.Workers)
	if err != nil {
		return nil, err
	}
	gcfg := gnet.DefaultConfig(e.Seed)
	gcfg.FirewalledFrac = e.P.FirewalledFrac
	nw, err := gnet.NewFromCatalogWorkers(gcfg, cat, e.Workers)
	if err != nil {
		return nil, err
	}
	if err := nw.BuildIndexes(e.Workers); err != nil {
		return nil, err
	}
	sum, err := nw.IndexChecksum()
	if err != nil {
		return nil, err
	}
	st, err := nw.IndexStats()
	if err != nil {
		return nil, err
	}
	return map[string]any{
		"placements":     cat.TotalPlacements,
		"libraries":      cat.Libraries,
		"dict_terms":     nw.TermDict().Len(),
		"dict_checksum":  nw.TermDict().Checksum(),
		"index_checksum": sum,
		"index_stats":    st,
	}, nil
}
