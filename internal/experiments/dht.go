package experiments

import (
	"querycentric/internal/chord"
	"querycentric/internal/pastry"
	"querycentric/internal/rng"
)

// DHTRoutingResult compares the structured baselines' routing costs: the
// exact-match lookup hops a hybrid system pays when its flood fails.
type DHTRoutingResult struct {
	Nodes          int
	Lookups        int
	ChordMeanHops  float64
	PastryMeanHops float64
}

// DHTRouting measures mean lookup hops for Chord (binary branching,
// ~log2 N / 2) and Pastry (16-way branching, ~log16 N) at the simulation
// scale. Both DHTs always succeed; the point of the paper's comparison is
// that this small, predictable cost is what hybrid systems squander their
// flooding budget trying to avoid.
func DHTRouting(e *Env) (*DHTRoutingResult, error) {
	nodes := e.P.SimNodes / 8
	if nodes < 500 {
		nodes = 500
	}
	lookups := e.P.SimTrials * 2
	if lookups < 200 {
		lookups = 200
	}
	res := &DHTRoutingResult{Nodes: nodes, Lookups: lookups}

	ring, err := chord.New(nodes, e.Seed+60)
	if err != nil {
		return nil, err
	}
	mesh, err := pastry.New(nodes, e.Seed+61)
	if err != nil {
		return nil, err
	}
	r := rng.NewNamed(e.Seed, "experiments/dht-routing")
	var chordTotal, pastryTotal int
	for i := 0; i < lookups; i++ {
		key := r.Uint64()
		from := r.Intn(nodes)
		_, ch, err := ring.Lookup(key, ring.NodeByIndex(from))
		if err != nil {
			return nil, err
		}
		chordTotal += ch
		_, ph, err := mesh.Lookup(key, mesh.NodeByIndex(from))
		if err != nil {
			return nil, err
		}
		pastryTotal += ph
	}
	res.ChordMeanHops = float64(chordTotal) / float64(lookups)
	res.PastryMeanHops = float64(pastryTotal) / float64(lookups)
	return res, nil
}
