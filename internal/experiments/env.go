// Package experiments contains one runner per table and figure of the
// paper's evaluation, each producing the plotted series plus the headline
// statistics, at a configurable scale. The qc-figures command and the
// repository benchmarks drive these runners; EXPERIMENTS.md records their
// output against the paper's numbers.
package experiments

import (
	"fmt"
	"sync"

	"querycentric/internal/analysis"
	"querycentric/internal/catalog"
	"querycentric/internal/crawler"
	"querycentric/internal/daap"
	"querycentric/internal/faults"
	"querycentric/internal/gnet"
	"querycentric/internal/obs"
	"querycentric/internal/parallel"
	"querycentric/internal/querygen"
	"querycentric/internal/snapshot"
	"querycentric/internal/trace"
)

// Scale selects experiment sizing.
type Scale int

// Scales from smoke-test to paper-scale and beyond.
const (
	ScaleTiny  Scale = iota // CI smoke tests, < 1 s total
	ScaleSmall              // seconds
	ScaleDefault
	ScaleFull // paper-scale populations; needs minutes and several GB
	// Scale1M is a million-peer overlay sharing the paper's 8.1M-object
	// population — the substrate-stress scale. Building it in memory is out
	// of reach on small boxes; it exists for the sharded snapshot builder
	// and mmap loading (qc-bench -sharded-only, make scale1m-smoke).
	Scale1M
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case ScaleTiny:
		return "tiny"
	case ScaleSmall:
		return "small"
	case ScaleDefault:
		return "default"
	case ScaleFull:
		return "full"
	case Scale1M:
		return "1m"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// ParseScale parses a scale name.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "tiny":
		return ScaleTiny, nil
	case "small":
		return ScaleSmall, nil
	case "default", "":
		return ScaleDefault, nil
	case "full":
		return ScaleFull, nil
	case "1m":
		return Scale1M, nil
	}
	return 0, fmt.Errorf("experiments: unknown scale %q (tiny|small|default|full|1m)", s)
}

// Params are the size knobs derived from a Scale.
type Params struct {
	// Gnutella crawl population.
	GnutellaPeers  int
	UniqueObjects  int
	FirewalledFrac float64
	// iTunes population.
	Shares      int
	UniqueSongs int
	// Query workload.
	Queries       int
	TraceDuration int64
	// Flood simulation (Figure 8 / §V table).
	SimNodes  int
	SimTrials int
}

// ParamsFor returns the sizing for a scale. ScaleFull reproduces the
// paper's populations (37,572 peers / 8.1M objects / 2.5M queries / 40,000
// simulated nodes).
func ParamsFor(s Scale) Params {
	switch s {
	case ScaleTiny:
		return Params{
			GnutellaPeers: 120, UniqueObjects: 2500, FirewalledFrac: 0,
			Shares: 40, UniqueSongs: 1500,
			Queries: 15000, TraceDuration: 12 * 3600,
			SimNodes: 2000, SimTrials: 150,
		}
	case ScaleSmall:
		return Params{
			GnutellaPeers: 400, UniqueObjects: 16000, FirewalledFrac: 0.1,
			Shares: 60, UniqueSongs: 4000,
			Queries: 60000, TraceDuration: 48 * 3600,
			SimNodes: 8000, SimTrials: 300,
		}
	case ScaleFull:
		return Params{
			GnutellaPeers: 37572, UniqueObjects: 8100000, FirewalledFrac: 0.1,
			Shares: 620, UniqueSongs: 171068,
			Queries: 2500000, TraceDuration: 7 * 24 * 3600,
			SimNodes: 40000, SimTrials: 2000,
		}
	case Scale1M:
		// A 27× larger overlay over the paper's object population: content
		// density per peer drops accordingly (the interesting pressure at
		// this scale is substrate size, not per-peer library depth).
		return Params{
			GnutellaPeers: 1000000, UniqueObjects: 8100000, FirewalledFrac: 0.1,
			Shares: 620, UniqueSongs: 171068,
			Queries: 2500000, TraceDuration: 7 * 24 * 3600,
			SimNodes: 40000, SimTrials: 2000,
		}
	default: // ScaleDefault
		return Params{
			GnutellaPeers: 1000, UniqueObjects: 81000, FirewalledFrac: 0.1,
			Shares: 125, UniqueSongs: 11000,
			Queries: 250000, TraceDuration: 7 * 24 * 3600,
			SimNodes: 40000, SimTrials: 600,
		}
	}
}

// Env builds and memoizes the shared artifacts (crawled traces, query
// workload) so several figures can reuse one population, exactly as the
// paper derived all of Figures 1–3 and 7 from one crawl.
type Env struct {
	Seed uint64
	P    Params

	// Workers bounds the trial-level worker pool used by the experiment
	// runners; 0 (the default) resolves to GOMAXPROCS. Results are
	// byte-identical for every value — each trial derives its own RNG
	// stream and workers only change who executes it (see
	// internal/parallel).
	Workers int

	// Obs, when non-nil, receives metrics from every subsystem the
	// environment builds or drives (crawler funnel, flood counters, fault
	// fires, maintenance activity) plus per-phase artifact-build timings.
	// Attaching a registry never changes experiment results, and the
	// metric values themselves are invariant under Workers.
	Obs *obs.Registry

	// FloodTraces, when non-nil (and Obs is attached to a network), records
	// a bounded deterministic sample of per-flood hop traces.
	FloodTraces *obs.FloodTraces

	// Windows, when non-nil, receives the windowed time series streamed by
	// event-engine experiments (Recovery); the series land in the run
	// manifest next to the scalar metrics and are fingerprinted with them.
	Windows *obs.WindowLog

	// SnapshotLoad, when non-empty, restores the Gnutella population from
	// this snapshot file instead of building catalog + network + indexes
	// (ObjectTrace still runs the crawler against the restored network; a
	// restored network behaves byte-identically to a fresh build, so every
	// downstream figure is unchanged). SnapshotSave, when non-empty,
	// persists the population to this path once it exists — after a fresh
	// build or even after a load, re-saving what was restored.
	SnapshotLoad string
	SnapshotSave string

	// SnapshotMmap restores SnapshotLoad through a read-only memory mapping
	// (zero-copy file names and posting arenas); version-1 snapshots fall
	// back to the copying loader transparently.
	SnapshotMmap bool
	// SnapshotShardSize, when positive with SnapshotSave (and no
	// SnapshotLoad), builds the population shard-by-shard straight into the
	// snapshot file — peak memory one shard plus the dictionary — and then
	// loads the network back from that byte-identical file.
	SnapshotShardSize int

	mu        sync.Mutex
	objTrace  *trace.ObjectTrace
	objStats  *crawler.Stats
	songTrace *trace.SongTrace
	songStats *daap.CrawlStats
	workload  *querygen.Workload
	fileTerms []analysis.TermCount
}

// NewEnv creates an environment at the given scale.
func NewEnv(scale Scale, seed uint64) *Env {
	return &Env{Seed: seed, P: ParamsFor(scale)}
}

// workers resolves the environment's worker bound.
func (e *Env) workers() int { return parallel.Workers(e.Workers) }

// catalogConfig is the one content-population recipe every build path
// (in-heap, sharded, snapshot round trips) derives from, so they all draw
// the identical catalog.
func (e *Env) catalogConfig() catalog.Config {
	return catalog.Config{
		Seed:                e.Seed,
		Peers:               e.P.GnutellaPeers,
		UniqueObjects:       e.P.UniqueObjects,
		ReplicaAlpha:        2.45,
		VariantProb:         0.08,
		NonSpecificPeerFrac: 0.05,
	}
}

// instrumentNetwork attaches the environment's observability plane to a
// network the environment (or a runner) has built. Safe with a nil Obs.
func (e *Env) instrumentNetwork(nw *gnet.Network) {
	if e.Obs != nil {
		nw.Instrument(e.Obs, e.FloodTraces)
	}
}

// instrumentFaults attaches fault-fire counters to a plane a runner built.
func (e *Env) instrumentFaults(p *faults.Plane) {
	if e.Obs != nil {
		p.Instrument(e.Obs)
	}
}

// ObjectTrace builds (once) the synthetic Gnutella population, runs the
// wire-level crawler against it and returns the observed object trace.
func (e *Env) ObjectTrace() (*trace.ObjectTrace, *crawler.Stats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.objTrace != nil {
		return e.objTrace, e.objStats, nil
	}
	var nw *gnet.Network
	saved := false
	switch {
	case e.SnapshotLoad != "":
		stop := e.Obs.StartPhase("env/snapshot-load")
		var err error
		if e.SnapshotMmap {
			nw, _, err = snapshot.LoadPreferMapped(e.SnapshotLoad, e.Workers)
		} else {
			nw, err = snapshot.Load(e.SnapshotLoad, e.Workers)
		}
		stop()
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: loading snapshot: %w", err)
		}
	case e.SnapshotShardSize > 0 && e.SnapshotSave != "":
		// Shard-and-spill: the population goes straight to disk, then the
		// network comes back from the (byte-identical) snapshot — the whole
		// substrate is never resident during construction.
		gcfg := gnet.DefaultConfig(e.Seed)
		gcfg.FirewalledFrac = e.P.FirewalledFrac
		stop := e.Obs.StartPhase("env/snapshot-build-sharded")
		_, err := snapshot.BuildSharded(e.SnapshotSave, snapshot.BuildConfig{
			Catalog:   e.catalogConfig(),
			Network:   gcfg,
			Workers:   e.Workers,
			ShardSize: e.SnapshotShardSize,
		})
		stop()
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: sharded snapshot build: %w", err)
		}
		saved = true
		stop = e.Obs.StartPhase("env/snapshot-load")
		nw, err = snapshot.Load(e.SnapshotSave, e.Workers)
		stop()
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: loading sharded snapshot: %w", err)
		}
	default:
		stop := e.Obs.StartPhase("env/catalog")
		cat, err := catalog.BuildWorkers(e.catalogConfig(), e.Workers)
		stop()
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: building catalog: %w", err)
		}
		gcfg := gnet.DefaultConfig(e.Seed)
		gcfg.FirewalledFrac = e.P.FirewalledFrac
		stop = e.Obs.StartPhase("env/network")
		nw, err = gnet.NewFromCatalogWorkers(gcfg, cat, e.Workers)
		stop()
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: building network: %w", err)
		}
	}
	if e.SnapshotSave != "" && !saved {
		stop := e.Obs.StartPhase("env/snapshot-save")
		_, err := snapshot.Save(e.SnapshotSave, nw, e.Workers)
		stop()
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: saving snapshot: %w", err)
		}
	}
	e.instrumentNetwork(nw)
	ccfg := crawler.DefaultConfig()
	ccfg.Obs = e.Obs
	stop := e.Obs.StartPhase("env/crawl")
	tr, st, err := crawler.Crawl(nw, ccfg)
	stop()
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: crawling: %w", err)
	}
	if e.Obs != nil {
		// Population gauges, set once from this single-threaded build path.
		e.Obs.Gauge("env_gnutella_peers").Set(int64(e.P.GnutellaPeers))
		e.Obs.Gauge("env_object_records").Set(int64(len(tr.Records)))
	}
	e.objTrace, e.objStats = tr, st
	return tr, st, nil
}

// SongTrace builds (once) the iTunes share population and crawls it.
func (e *Env) SongTrace() (*trace.SongTrace, *daap.CrawlStats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.songTrace != nil {
		return e.songTrace, e.songStats, nil
	}
	cfg := daap.DefaultConfig(e.Seed)
	cfg.Shares = e.P.Shares
	cfg.UniqueSongs = e.P.UniqueSongs
	stop := e.Obs.StartPhase("env/song-trace")
	pop, err := daap.BuildPopulation(cfg)
	if err != nil {
		stop()
		return nil, nil, fmt.Errorf("experiments: building shares: %w", err)
	}
	tr, st, err := daap.Crawl(pop)
	stop()
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: crawling shares: %w", err)
	}
	if e.Obs != nil {
		e.Obs.Gauge("env_itunes_shares").Set(int64(e.P.Shares))
		e.Obs.Gauge("env_song_records").Set(int64(len(tr.Records)))
	}
	e.songTrace, e.songStats = tr, st
	return tr, st, nil
}

// FileTerms returns (once) the ranked file-term popularity list derived
// from the crawled object trace.
func (e *Env) FileTerms() ([]analysis.TermCount, error) {
	tr, _, err := e.ObjectTrace()
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.fileTerms == nil {
		e.fileTerms = analysis.RankedFileTerms(tr)
	}
	return e.fileTerms, nil
}

// Workload builds (once) the one-week query workload, with its vocabulary
// overlap wired to the crawled file terms (the Figure 7 coupling).
func (e *Env) Workload() (*querygen.Workload, error) {
	ranked, err := e.FileTerms()
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.workload != nil {
		return e.workload, nil
	}
	cfg := querygen.DefaultConfig(e.Seed + 1)
	cfg.Queries = e.P.Queries
	cfg.Duration = e.P.TraceDuration
	cfg.FileTerms = termStrings(ranked)
	stop := e.Obs.StartPhase("env/workload")
	w, err := querygen.Generate(cfg)
	stop()
	if err != nil {
		return nil, fmt.Errorf("experiments: generating workload: %w", err)
	}
	if e.Obs != nil {
		e.Obs.Gauge("env_workload_queries").Set(int64(len(w.Trace.Records)))
	}
	e.workload = w
	return w, nil
}

func termStrings(ranked []analysis.TermCount) []string {
	out := make([]string, len(ranked))
	for i, tc := range ranked {
		out[i] = tc.Term
	}
	return out
}
