package experiments

import (
	"querycentric/internal/analysis"
	"querycentric/internal/stats"
)

// Fig5Result is the transient-popularity sweep over evaluation intervals.
type Fig5Result struct {
	// PointsByInterval maps the evaluation interval (seconds) to the
	// per-interval transient counts.
	PointsByInterval map[int64][]analysis.TransientPoint
	// SummaryByInterval aggregates each series (the paper reports a low
	// mean with significant variance).
	SummaryByInterval map[int64]stats.Summary
}

// Fig5Intervals are the evaluation intervals swept (15, 30, 60, 120 min).
var Fig5Intervals = []int64{15 * 60, 30 * 60, 60 * 60, 120 * 60}

// Fig5 reproduces Figure 5: the number of transiently popular query terms
// per interval, for several evaluation interval lengths, after training on
// the leading 10% of the trace.
func Fig5(e *Env) (*Fig5Result, error) {
	w, err := e.Workload()
	if err != nil {
		return nil, err
	}
	out := &Fig5Result{
		PointsByInterval:  map[int64][]analysis.TransientPoint{},
		SummaryByInterval: map[int64]stats.Summary{},
	}
	for _, iv := range Fig5Intervals {
		pts, err := analysis.Transients(w.Trace, iv, analysis.DefaultTransientConfig())
		if err != nil {
			return nil, err
		}
		out.PointsByInterval[iv] = pts
		out.SummaryByInterval[iv] = analysis.TransientSummary(pts)
	}
	return out, nil
}

// Fig6Result is the popular-term stability series.
type Fig6Result struct {
	Series []analysis.SeriesPoint
	// MeanAfterWarmup averages the series past the paper's warmup window
	// (the first intervals have no established history).
	MeanAfterWarmup float64
}

// Fig6 reproduces Figure 6: Jaccard(Q*_t, Q̃_t) over a one-week trace with
// a 60-minute evaluation interval. Paper: >90% after stabilization.
func Fig6(e *Env) (*Fig6Result, error) {
	w, err := e.Workload()
	if err != nil {
		return nil, err
	}
	ivs, err := analysis.Intervals(w.Trace, analysis.DefaultIntervalConfig())
	if err != nil {
		return nil, err
	}
	series := analysis.StabilitySeries(ivs)
	out := &Fig6Result{Series: series}
	var o stats.Online
	for i, p := range series {
		if i < 2 {
			continue
		}
		o.Add(p.Value)
	}
	out.MeanAfterWarmup = o.Mean()
	return out, nil
}

// Fig7Result is the query/file mismatch series.
type Fig7Result struct {
	// PopularSeries compares popular query terms per interval with the
	// popular file terms F* (the figure's series).
	PopularSeries []analysis.SeriesPoint
	// AllTermsSeries compares every query term per interval with F* (the
	// paper's "5% similarity" statistic).
	AllTermsSeries []analysis.SeriesPoint
	MeanPopular    float64
	MeanAllTerms   float64
	FileTermCount  int
	// RankCorrelation is Spearman's ρ between file-term and query-term
	// popularity over the popular file vocabulary — the companion paper's
	// statistic ("little overall correlation between the relative
	// popularity of the query terms and the terms used in the file
	// annotations").
	RankCorrelation float64
}

// fStarSize is the size of the popular file term set F*.
const fStarSize = 500

// Fig7 reproduces Figure 7: the Jaccard similarity between interval query
// terms and the popular file terms stays low (<20%) at every interval.
func Fig7(e *Env) (*Fig7Result, error) {
	w, err := e.Workload()
	if err != nil {
		return nil, err
	}
	ranked, err := e.FileTerms()
	if err != nil {
		return nil, err
	}
	fstar := analysis.TopTerms(ranked, fStarSize)
	ivs, err := analysis.Intervals(w.Trace, analysis.DefaultIntervalConfig())
	if err != nil {
		return nil, err
	}
	out := &Fig7Result{
		PopularSeries:  analysis.MismatchSeries(ivs, fstar),
		AllTermsSeries: analysis.AllTermsMismatchSeries(ivs, fstar),
		FileTermCount:  len(fstar),
	}
	var po, ao stats.Online
	for i := range out.PopularSeries {
		if i < 2 {
			continue
		}
		po.Add(out.PopularSeries[i].Value)
		ao.Add(out.AllTermsSeries[i].Value)
	}
	out.MeanPopular = po.Mean()
	out.MeanAllTerms = ao.Mean()

	// Rank correlation between file popularity and query popularity over
	// the popular file vocabulary.
	queryCounts := map[string]int{}
	for _, iv := range ivs {
		for tok, c := range iv.Counts {
			queryCounts[tok] += c
		}
	}
	var fx, qy []float64
	for _, tc := range ranked[:minInt(len(ranked), fStarSize)] {
		fx = append(fx, float64(tc.Count))
		qy = append(qy, float64(queryCounts[tc.Term]))
	}
	if rho, err := stats.SpearmanRank(fx, qy); err == nil {
		out.RankCorrelation = rho
	}
	return out, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// SweepPoint is one evaluation-interval setting's mean statistic.
type SweepPoint struct {
	Interval  int64
	MeanValue float64
}

// Fig6Sweep repeats the Figure 6 stability analysis across evaluation
// intervals (the paper: "we witnessed consistent results across the
// different evaluation intervals").
func Fig6Sweep(e *Env) ([]SweepPoint, error) {
	w, err := e.Workload()
	if err != nil {
		return nil, err
	}
	out := make([]SweepPoint, 0, len(Fig5Intervals))
	for _, iv := range Fig5Intervals {
		cfg := analysis.DefaultIntervalConfig()
		cfg.Interval = iv
		ivs, err := analysis.Intervals(w.Trace, cfg)
		if err != nil {
			return nil, err
		}
		series := analysis.StabilitySeries(ivs)
		var o stats.Online
		for i, p := range series {
			if i < 2 {
				continue
			}
			o.Add(p.Value)
		}
		out = append(out, SweepPoint{Interval: iv, MeanValue: o.Mean()})
	}
	return out, nil
}

// Fig7Sweep repeats the Figure 7 mismatch analysis across evaluation
// intervals ("the similarity ... remained low (< 20%) for all evaluation
// interval values").
func Fig7Sweep(e *Env) ([]SweepPoint, error) {
	w, err := e.Workload()
	if err != nil {
		return nil, err
	}
	ranked, err := e.FileTerms()
	if err != nil {
		return nil, err
	}
	fstar := analysis.TopTerms(ranked, fStarSize)
	out := make([]SweepPoint, 0, len(Fig5Intervals))
	for _, iv := range Fig5Intervals {
		cfg := analysis.DefaultIntervalConfig()
		cfg.Interval = iv
		ivs, err := analysis.Intervals(w.Trace, cfg)
		if err != nil {
			return nil, err
		}
		series := analysis.MismatchSeries(ivs, fstar)
		var o stats.Online
		for i, p := range series {
			if i < 2 {
				continue
			}
			o.Add(p.Value)
		}
		out = append(out, SweepPoint{Interval: iv, MeanValue: o.Mean()})
	}
	return out, nil
}
