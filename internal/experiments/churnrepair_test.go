package experiments

import "testing"

// TestChurnRepairQualitative pins the experiment's headline claims at tiny
// scale: churn without maintenance erodes flood success well below the
// static overlay, and the self-healing stack recovers most of that gap.
// The measured tiny-scale numbers are ~1.0 static, ~0.5 without repair,
// ~1.0 with repair; the thresholds leave wide margins.
func TestChurnRepairQualitative(t *testing.T) {
	e := NewEnv(ScaleTiny, 42)
	res, err := ChurnRepair(e)
	if err != nil {
		t.Fatalf("ChurnRepair: %v", err)
	}
	if res.Events == 0 {
		t.Fatal("timeline produced no churn events")
	}
	if want := int(2 * 3600 / 600); len(res.NoRepair) != want || len(res.Repair) != want {
		t.Fatalf("sample counts %d/%d, want %d", len(res.NoRepair), len(res.Repair), want)
	}
	if res.StaticSuccess < 0.9 {
		t.Fatalf("static baseline success %.3f; the anchor itself is broken", res.StaticSuccess)
	}
	// Churn with no maintenance must hurt, measurably.
	if res.NoRepairMean > res.StaticSuccess-0.15 {
		t.Fatalf("no-repair mean %.3f too close to static %.3f: churn did not degrade search",
			res.NoRepairMean, res.StaticSuccess)
	}
	// And the damage compounds: the overlay is worse at the end than at
	// the start.
	first, last := res.NoRepair[0], res.NoRepair[len(res.NoRepair)-1]
	if last.Success >= first.Success {
		t.Fatalf("no-repair success did not erode over time: %.3f -> %.3f",
			first.Success, last.Success)
	}
	if last.MeanDegree >= first.MeanDegree {
		t.Fatalf("no-repair degree did not erode over time: %.2f -> %.2f",
			first.MeanDegree, last.MeanDegree)
	}
	// Maintenance recovers most of the gap.
	if res.RecoveredFrac < 0.7 {
		t.Fatalf("repair recovered only %.2f of the gap (static %.3f, no-repair %.3f, repair %.3f)",
			res.RecoveredFrac, res.StaticSuccess, res.NoRepairMean, res.RepairMean)
	}
	st := res.RepairStats
	if st.FailuresDetected == 0 || st.RepairSuccesses == 0 || st.ByesReceived == 0 {
		t.Fatalf("repair scenario exercised no maintenance machinery: %+v", st)
	}
}

func TestChurnRepairConfigValidate(t *testing.T) {
	if err := DefaultChurnRepairConfig(1).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*ChurnRepairConfig){
		func(c *ChurnRepairConfig) { c.Timeline.MeanOnline = -1 },
		func(c *ChurnRepairConfig) { c.Repair.PingInterval = 0 },
		func(c *ChurnRepairConfig) { c.SampleEvery = 0 },
		func(c *ChurnRepairConfig) { c.TTL = 0 },
		func(c *ChurnRepairConfig) { c.QueriesPerSample = -1 },
	}
	for i, mutate := range bad {
		c := DefaultChurnRepairConfig(1)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: invalid config passed Validate", i)
		}
	}
	e := NewEnv(ScaleTiny, 42)
	cfg := DefaultChurnRepairConfig(e.Seed)
	cfg.Timeline.Duration = -5
	if _, err := ChurnRepairWith(e, cfg); err == nil {
		t.Fatal("ChurnRepairWith accepted a negative duration")
	}
}
