package experiments

import (
	"fmt"

	"querycentric/internal/catalog"
	"querycentric/internal/events"
	"querycentric/internal/faults"
	"querycentric/internal/gnet"
)

// Recovery measures the overlay's recovery curve after a correlated crash
// burst, on the discrete-event engine: one population runs the
// fault-recovery scenario twice — once with the full maintenance stack and
// once with maintenance disabled — and the windowed success series show
// search quality dropping at the burst, then climbing back under repair
// while the unmaintained overlay stays degraded. This is the time-resolved
// companion to ChurnRepair: same machinery, but a single catastrophic
// event instead of steady background churn, so the output is a recovery
// time rather than an average.

// RecoveryConfig tunes the experiment.
type RecoveryConfig struct {
	// BurstTime is when the correlated crash fires (seconds into the run).
	BurstTime int64
	// BurstFrac is the fraction of the population crashing at BurstTime.
	BurstFrac float64
	// Duration and Window shape the event-engine horizon and the metrics
	// windows.
	Duration int64
	Window   int64
	// QueriesPerWindow is the measurement flood volume per window (0 scales
	// with the environment's SimTrials).
	QueriesPerWindow int
	// BatchesPerWindow spreads each window's queries over this many query
	// events.
	BatchesPerWindow int
	// TTL bounds the measurement floods.
	TTL int
	// Repair shapes the maintenance loop of the repair arm. Its Repair flag
	// is overridden per arm.
	Repair gnet.RepairConfig
	// RecoverFrac defines "recovered": windowed success at or above this
	// fraction of the pre-burst mean.
	RecoverFrac float64
}

// DefaultRecoveryConfig crashes 30% of the population one third into a
// two-hour run, with one-minute ping rounds, ten-minute windows and the
// 0.95x-of-baseline recovery bar.
func DefaultRecoveryConfig(seed uint64) RecoveryConfig {
	rp := gnet.DefaultRepairConfig(seed)
	rp.PingInterval = 60
	return RecoveryConfig{
		BurstTime:        2400,
		BurstFrac:        0.3,
		Duration:         2 * 3600,
		Window:           600,
		BatchesPerWindow: 4,
		TTL:              3,
		Repair:           rp,
		RecoverFrac:      0.95,
	}
}

// Validate rejects schedules that cannot run.
func (c RecoveryConfig) Validate() error {
	if err := (faults.Burst{Time: c.BurstTime, Frac: c.BurstFrac}).Validate(); err != nil {
		return err
	}
	switch {
	case c.BurstTime >= c.Duration:
		return fmt.Errorf("experiments: recovery burst at %d is outside the %d-second run", c.BurstTime, c.Duration)
	case c.RecoverFrac <= 0 || c.RecoverFrac > 1:
		return fmt.Errorf("experiments: recovery RecoverFrac must be in (0,1], got %v", c.RecoverFrac)
	case c.QueriesPerWindow < 0:
		return fmt.Errorf("experiments: recovery QueriesPerWindow must be non-negative, got %d", c.QueriesPerWindow)
	}
	// Duration/Window/BatchesPerWindow/TTL/Repair are checked by the
	// scenario config this expands into.
	scfg := events.ScenarioConfig{
		Kind: events.FaultRecovery, Duration: c.Duration, Window: c.Window,
		QueriesPerWindow: max(1, c.QueriesPerWindow), BatchesPerWindow: c.BatchesPerWindow,
		TTL: c.TTL, Repair: c.Repair,
	}
	return scfg.Validate()
}

// RecoveryResult is the two-arm recovery comparison.
type RecoveryResult struct {
	Peers     int     `json:"peers"`
	TTL       int     `json:"ttl"`
	BurstTime int64   `json:"burst_time"`
	BurstFrac float64 `json:"burst_frac"`
	// PreBurstSuccess is the repair arm's mean windowed success over the
	// windows closing at or before the burst — the recovery baseline.
	PreBurstSuccess float64 `json:"pre_burst_success"`
	// Repair and NoRepair are the windowed series of the two arms.
	Repair   []events.Window `json:"repair"`
	NoRepair []events.Window `json:"no_repair"`
	// RepairFinal and NoRepairFinal average each arm's last two windows.
	RepairFinal   float64 `json:"repair_final"`
	NoRepairFinal float64 `json:"no_repair_final"`
	// RecoveryTime is the seconds from the burst until the repair arm's
	// windowed success first reaches RecoverFrac of the pre-burst mean
	// again (-1: never within the horizon). NoRepairRecoveryTime is the
	// same bar for the unmaintained arm.
	RecoveryTime         int64 `json:"recovery_time_s"`
	NoRepairRecoveryTime int64 `json:"no_repair_recovery_time_s"`
	// RepairStats are the repair arm's maintenance counters.
	RepairStats gnet.RepairStats `json:"repair_stats"`
}

// Recovery runs the experiment with default configuration.
func Recovery(e *Env) (*RecoveryResult, error) {
	return RecoveryWith(e, DefaultRecoveryConfig(e.Seed))
}

// RecoveryWith runs the recovery comparison on the discrete-event engine.
// Each arm replays the identical event schedule (same burst victims, same
// query streams) against a fresh overlay; only the Repair flag differs, so
// the two curves isolate what maintenance buys.
func RecoveryWith(e *Env, cfg RecoveryConfig) (*RecoveryResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	queries := cfg.QueriesPerWindow
	if queries == 0 {
		queries = e.P.SimTrials / 4
		if queries < 40 {
			queries = 40
		}
		if queries > 200 {
			queries = 200
		}
	}
	cat, err := catalog.BuildWorkers(catalog.Config{
		Seed:                e.Seed,
		Peers:               e.P.GnutellaPeers,
		UniqueObjects:       e.P.UniqueObjects,
		ReplicaAlpha:        2.45,
		VariantProb:         0.08,
		NonSpecificPeerFrac: 0.05,
	}, e.Workers)
	if err != nil {
		return nil, fmt.Errorf("experiments: building catalog: %w", err)
	}

	run := func(repair bool, prefix string) (*events.ScenarioResult, error) {
		gcfg := gnet.DefaultConfig(e.Seed)
		gcfg.FirewalledFrac = e.P.FirewalledFrac
		nw, err := gnet.NewFromCatalogWorkers(gcfg, cat, e.Workers)
		if err != nil {
			return nil, err
		}
		e.instrumentNetwork(nw)
		rcfg := cfg.Repair
		rcfg.Repair = repair
		scfg := events.ScenarioConfig{
			Kind:             events.FaultRecovery,
			Seed:             e.Seed,
			Duration:         cfg.Duration,
			Window:           cfg.Window,
			QueriesPerWindow: queries,
			BatchesPerWindow: cfg.BatchesPerWindow,
			TTL:              cfg.TTL,
			Workers:          e.Workers,
			Repair:           rcfg,
			Bursts:           []faults.Burst{{Time: cfg.BurstTime, Frac: cfg.BurstFrac}},
			SeriesPrefix:     prefix,
		}
		s, err := events.NewScenario(nw, scfg)
		if err != nil {
			return nil, err
		}
		s.Instrument(e.Obs, e.Windows)
		return s.Run()
	}

	withRepair, err := run(true, "recovery_repair_")
	if err != nil {
		return nil, err
	}
	noRepair, err := run(false, "recovery_norepair_")
	if err != nil {
		return nil, err
	}

	res := &RecoveryResult{
		Peers:                e.P.GnutellaPeers,
		TTL:                  cfg.TTL,
		BurstTime:            cfg.BurstTime,
		BurstFrac:            cfg.BurstFrac,
		Repair:               withRepair.Windows,
		NoRepair:             noRepair.Windows,
		RecoveryTime:         -1,
		NoRepairRecoveryTime: -1,
		RepairStats:          withRepair.RepairStats,
	}

	pre, preN := 0.0, 0
	for _, w := range res.Repair {
		if w.End <= cfg.BurstTime {
			pre += w.Success
			preN++
		}
	}
	if preN > 0 {
		res.PreBurstSuccess = pre / float64(preN)
	}
	recoveryTime := func(ws []events.Window) int64 {
		bar := cfg.RecoverFrac * res.PreBurstSuccess
		for _, w := range ws {
			if w.End > cfg.BurstTime && w.Success >= bar {
				return w.End - cfg.BurstTime
			}
		}
		return -1
	}
	res.RecoveryTime = recoveryTime(res.Repair)
	res.NoRepairRecoveryTime = recoveryTime(res.NoRepair)
	res.RepairFinal = finalSuccess(res.Repair)
	res.NoRepairFinal = finalSuccess(res.NoRepair)
	return res, nil
}

// finalSuccess averages the last two windows of a series.
func finalSuccess(ws []events.Window) float64 {
	if len(ws) == 0 {
		return 0
	}
	tail := ws
	if len(tail) > 2 {
		tail = tail[len(tail)-2:]
	}
	sum := 0.0
	for _, w := range tail {
		sum += w.Success
	}
	return sum / float64(len(tail))
}
