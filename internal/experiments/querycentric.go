package experiments

import (
	"fmt"

	"querycentric/internal/adaptive"
	"querycentric/internal/chord"
	"querycentric/internal/events"
	"querycentric/internal/gnet"
	"querycentric/internal/overlay"
	"querycentric/internal/rng"
	"querycentric/internal/search"
	"querycentric/internal/shortcuts"
	"querycentric/internal/strategy"
	"querycentric/internal/zipf"
)

// QueryCentricArm is one strategy's measured row in the head-to-head.
type QueryCentricArm struct {
	Arm          string
	Success      float64
	MeanMessages float64
	MeanHops     float64
	ShortcutHits float64
	Rewires      int
	Replicas     int
}

// QueryCentricResult is the five-arm head-to-head under the paper's Zipf
// mismatch: static flooding, QRP, interest shortcuts, the adaptive overlay
// and a Chord baseline, all observing the identical (origin, object)
// query sequence.
type QueryCentricResult struct {
	Peers   int
	Objects int
	Warmup  int // adaptation warmup queries (adaptive and shortcuts arms)
	Queries int // measured queries per arm

	Arms []QueryCentricArm

	// AdaptiveGain is adaptive success over static-flood success — the
	// paper's recovered-success headline (CI gates on ≥ 2).
	AdaptiveGain float64
}

// Name implements Result.
func (r *QueryCentricResult) Name() string { return "query-centric" }

// Table implements Result.
func (r *QueryCentricResult) Table() [][]string {
	rows := [][]string{{"arm", "success", "msgs_per_query", "mean_hops", "adapted_hits", "rewires", "replicas"}}
	for _, a := range r.Arms {
		rows = append(rows, []string{
			a.Arm,
			fmt.Sprintf("%.4f", a.Success),
			fmt.Sprintf("%.2f", a.MeanMessages),
			fmt.Sprintf("%.2f", a.MeanHops),
			fmt.Sprintf("%.4f", a.ShortcutHits),
			fmt.Sprintf("%d", a.Rewires),
			fmt.Sprintf("%d", a.Replicas),
		})
	}
	rows = append(rows, []string{"adaptive_gain", fmt.Sprintf("%.2f", r.AdaptiveGain), "", "", "", "", ""})
	return rows
}

// Arm returns the named arm, or nil.
func (r *QueryCentricResult) Arm(name string) *QueryCentricArm {
	for i := range r.Arms {
		if r.Arms[i].Arm == name {
			return &r.Arms[i]
		}
	}
	return nil
}

// armFromStats converts a unified strategy.Stats into a table arm.
func armFromStats(name string, st *strategy.Stats) QueryCentricArm {
	return QueryCentricArm{
		Arm:          name,
		Success:      st.Success,
		MeanMessages: st.MeanMessages,
		MeanHops:     st.MeanHops,
		ShortcutHits: st.ShortcutHits,
		Rewires:      st.Rewires,
		Replicas:     st.Replicas,
	}
}

// qcPopulation is the experiment's mismatched population: object query
// rank and replica count are anti-correlated (the hottest queries target
// near-singletons, the fat replica mass sits on the query tail) — the
// paper's measured file/query mismatch in its sharpest form.
type qcPopulation struct {
	peers int
	objs  []adaptive.Object
	pick  func(r *rng.Source) int
}

// buildNet constructs a fresh, identical flat degree-4 wire-level network
// over the population. Each arm gets its own build because the adaptive
// arm mutates topology and libraries.
func (p *qcPopulation) buildNet(e *Env) (*gnet.Network, error) {
	libs := make([][]string, p.peers)
	for _, o := range p.objs {
		for _, h := range o.Holders {
			libs[h] = append(libs[h], o.Name)
		}
	}
	nw, err := gnet.New(gnet.Config{Seed: e.Seed + 121, FlatDegree: 4}, p.peers)
	if err != nil {
		return nil, err
	}
	sizeRNG := gnet.NewFileSizeRNG(e.Seed + 121)
	for id, lib := range libs {
		files := make([]gnet.File, len(lib))
		for i, name := range lib {
			files[i] = gnet.File{Index: uint32(i), Size: gnet.DrawFileSize(sizeRNG), Name: name}
		}
		nw.Peers[id].Library = files
	}
	e.instrumentNetwork(nw)
	return nw, nil
}

// qcBuildPopulation sizes the population from the environment: a flat
// overlay several times the Gnutella peer parameter, 60 objects under a
// Zipf(1.2) query distribution, and replica counts growing quadratically
// with query rank (reversed popularity).
func qcBuildPopulation(e *Env) (*qcPopulation, error) {
	peers := maxIntE(3*e.P.GnutellaPeers, 360)
	const m = 60
	qd, err := zipf.New(m, 1.2)
	if err != nil {
		return nil, err
	}
	place := rng.NewNamed(e.Seed+120, "experiments/query-centric/place")
	maxRep := maxIntE(peers/18, 8)
	objs := make([]adaptive.Object, m)
	for i := range objs {
		rep := 1 + i*i*maxRep/((m-1)*(m-1))
		objs[i] = adaptive.Object{
			Name: fmt.Sprintf("object%04d studio master", i),
			Size: 1 << 20,
		}
		for _, h := range place.SampleInts(peers, rep) {
			objs[i].Holders = append(objs[i].Holders, int32(h))
		}
	}
	return &qcPopulation{
		peers: peers,
		objs:  objs,
		pick:  func(r *rng.Source) int { return qd.Sample(r) - 1 },
	}, nil
}

// QueryCentricConfig exposes the adaptation knobs qc-sim surfaces as
// flags. A zero AdaptInterval or empty ReplScheme falls back to the
// adaptive package default; the budgets are taken verbatim (zero turns
// that mechanism off). The scheme must come from adaptive.Schemes().
type QueryCentricConfig struct {
	// AdaptInterval is the number of queries per adaptation round (and the
	// warmup batch size).
	AdaptInterval int
	// RewireBudget caps edge swaps per adaptation round (0 disables
	// rewiring).
	RewireBudget int
	// ReplicateBudget caps replica installs per adaptation round (0
	// disables replication).
	ReplicateBudget int
	// ReplScheme selects where replicas land (owner|path|random|sqrt).
	ReplScheme adaptive.Scheme
}

// DefaultQueryCentricConfig mirrors adaptive.DefaultConfig's knobs.
func DefaultQueryCentricConfig() QueryCentricConfig {
	d := adaptive.DefaultConfig(0)
	return QueryCentricConfig{
		AdaptInterval:   d.AdaptInterval,
		RewireBudget:    d.RewireBudget,
		ReplicateBudget: d.ReplicateBudget,
		ReplScheme:      d.ReplScheme,
	}
}

// QueryCentric is the repository's constructive deliverable: under the
// paper's query/file mismatch, a static TTL-3 flood mostly misses (the
// hot objects are near-singletons beyond its reach) and QRP only trims
// messages; the adaptive overlay — query-stream-driven rewiring plus
// hot-object replication — recovers the lost success at equal or lower
// message cost, while Chord finds everything but answers none of the
// paper's keyword-search objections. All five arms replay the identical
// workload under the unified strategy derivation.
func QueryCentric(e *Env) (*QueryCentricResult, error) {
	return QueryCentricWith(e, DefaultQueryCentricConfig())
}

// QueryCentricWith runs the head-to-head with explicit adaptation knobs.
func QueryCentricWith(e *Env, cfg QueryCentricConfig) (*QueryCentricResult, error) {
	pop, err := qcBuildPopulation(e)
	if err != nil {
		return nil, err
	}
	const ttl = 3
	acfg := adaptive.DefaultConfig(e.Seed + 122)
	acfg.TTL = ttl
	acfg.Workers = e.Workers
	if cfg.AdaptInterval > 0 {
		acfg.AdaptInterval = cfg.AdaptInterval
	}
	acfg.RewireBudget = cfg.RewireBudget
	acfg.ReplicateBudget = cfg.ReplicateBudget
	if cfg.ReplScheme != "" {
		acfg.ReplScheme = cfg.ReplScheme
	}
	warmBatches := 8
	warmup := warmBatches * acfg.AdaptInterval
	measured := maxIntE(2*e.P.SimTrials, 300)
	res := &QueryCentricResult{Objects: len(pop.objs), Peers: pop.peers, Warmup: warmup, Queries: measured}
	wseed, mseed := e.Seed+124, e.Seed+125

	// Arm 1: static flood — an inert adaptive system (AdaptInterval 0), so
	// accounting is identical to the adaptive arm's flood path.
	nwStatic, err := pop.buildNet(e)
	if err != nil {
		return nil, err
	}
	static, err := adaptive.New(nwStatic, pop.objs,
		adaptive.Config{Seed: e.Seed + 122, TTL: ttl, Workers: e.Workers, Label: "static-flood"})
	if err != nil {
		return nil, err
	}
	stStatic, err := static.RunWorkload(measured, pop.pick, mseed)
	if err != nil {
		return nil, err
	}
	res.Arms = append(res.Arms, armFromStats("static-flood", stStatic))

	// Arm 2: QRP — same floods over per-peer route tables. Routing on file
	// terms trims propagation but cannot move success.
	nwQRP, err := pop.buildNet(e)
	if err != nil {
		return nil, err
	}
	if err := nwQRP.EnableQRP(16); err != nil {
		return nil, err
	}
	qrpSys, err := adaptive.New(nwQRP, pop.objs,
		adaptive.Config{Seed: e.Seed + 122, TTL: ttl, Workers: e.Workers, Label: "qrp"})
	if err != nil {
		return nil, err
	}
	stQRP, err := qrpSys.RunWorkload(measured, pop.pick, mseed)
	if err != nil {
		return nil, err
	}
	res.Arms = append(res.Arms, armFromStats("qrp", stQRP))

	// Arm 3: interest shortcuts over the projected overlay (graph +
	// abstract placement; same topology seed, no wire-level messages).
	nwProj, err := pop.buildNet(e)
	if err != nil {
		return nil, err
	}
	g, err := overlay.NewGraph(pop.peers)
	if err != nil {
		return nil, err
	}
	for a, p := range nwProj.Peers {
		for _, b := range p.Neighbors {
			if a < b {
				if err := g.AddEdge(a, b); err != nil {
					return nil, err
				}
			}
		}
	}
	holders := make([][]int32, len(pop.objs))
	for i, o := range pop.objs {
		holders[i] = append([]int32(nil), o.Holders...)
	}
	scSys, err := shortcuts.New(g, &search.Placement{Nodes: pop.peers, Holders: holders},
		shortcuts.Config{ListSize: 10, TTL: ttl})
	if err != nil {
		return nil, err
	}
	if _, err := scSys.RunWorkload(warmup, pop.pick, wseed); err != nil {
		return nil, err
	}
	stSC, err := scSys.RunWorkload(measured, pop.pick, mseed)
	if err != nil {
		return nil, err
	}
	res.Arms = append(res.Arms, armFromStats("shortcuts", stSC))

	// Arm 4: the adaptive overlay. Warmup runs through the event engine —
	// query batches at PrioQuery, adaptation rounds at PrioAdapt — then the
	// measured workload continues adapting inline.
	nwAdapt, err := pop.buildNet(e)
	if err != nil {
		return nil, err
	}
	adaptSys, err := adaptive.New(nwAdapt, pop.objs, acfg)
	if err != nil {
		return nil, err
	}
	adaptSys.Instrument(e.Obs)
	const roundLen = 60 // simulated seconds per (batch, adaptation) round
	eng, err := events.New(e.Seed+123, int64(warmBatches-1)*roundLen)
	if err != nil {
		return nil, err
	}
	warmBase := strategy.WorkloadStream(wseed)
	for b := 0; b < warmBatches; b++ {
		start := b * acfg.AdaptInterval
		err := eng.Schedule(int64(b)*roundLen, events.PrioQuery, fmt.Sprintf("qc-batch/%d", b),
			func(int64, *rng.Source) error {
				return adaptSys.RunBatch(warmBase, start, acfg.AdaptInterval, pop.pick)
			})
		if err != nil {
			return nil, err
		}
	}
	err = events.ScheduleAdaptationRounds(eng, roundLen, roundLen, func(int, int64) error {
		adaptSys.AdaptRound()
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := eng.Run(); err != nil {
		return nil, err
	}
	stAdapt, err := adaptSys.RunWorkload(measured, pop.pick, mseed)
	if err != nil {
		return nil, err
	}
	res.Arms = append(res.Arms, armFromStats("adaptive", stAdapt))

	// Arm 5: Chord — every lookup succeeds in O(log n) hops, but a DHT
	// resolves exact keys, not the paper's keyword queries; it brackets the
	// cost axis rather than competing on the success one.
	ring, err := chord.New(pop.peers, e.Seed+126)
	if err != nil {
		return nil, err
	}
	mBase := strategy.WorkloadStream(mseed)
	var chordHops int
	for i := 0; i < measured; i++ {
		r := strategy.QueryStream(mBase, i)
		origin := r.Intn(pop.peers)
		obj := pop.pick(r)
		_, hops, err := ring.Lookup(chord.HashKey(pop.objs[obj].Name), ring.NodeByIndex(origin))
		if err != nil {
			return nil, err
		}
		chordHops += hops
	}
	res.Arms = append(res.Arms, QueryCentricArm{
		Arm:          "chord",
		Success:      1,
		MeanMessages: float64(chordHops) / float64(measured),
		MeanHops:     float64(chordHops) / float64(measured),
	})

	if stStatic.Success > 0 {
		res.AdaptiveGain = stAdapt.Success / stStatic.Success
	}
	return res, nil
}
