package experiments

import (
	"querycentric/internal/overlay"
	"querycentric/internal/rng"
	"querycentric/internal/search"
	"querycentric/internal/shortcuts"
	"querycentric/internal/zipf"
)

// ShortcutsResult is the interest-based-shortcuts extension: shortcut hit
// rates and costs while query interests are stable versus after the
// popular vocabulary shifts.
type ShortcutsResult struct {
	Nodes          int
	WarmupHits     float64
	SteadyHits     float64
	SteadyMessages float64
	ShiftedHits    float64
	FloodMessages  float64 // no-shortcut baseline mean cost
}

// ShortcutsExperiment runs interest-based shortcuts through the paper's
// two temporal regimes: the stable popular vocabulary of Figure 6 (where
// interest links keep paying off) and a vocabulary shift à la Figure 5's
// transients (where they stop helping until relearned). Query-centric
// structures must therefore track popularity over time — the thesis again.
func ShortcutsExperiment(e *Env) (*ShortcutsResult, error) {
	nodes := e.P.SimNodes / 16
	if nodes < 400 {
		nodes = 400
	}
	const objects = 120
	g, err := overlay.NewGnutella(nodes, overlay.DefaultGnutellaConfig(), e.Seed+110)
	if err != nil {
		return nil, err
	}
	p, err := search.UniformPlacement(nodes, objects, maxIntE(nodes/60, 2), e.Seed+111)
	if err != nil {
		return nil, err
	}
	sys, err := shortcuts.New(g, p, shortcuts.DefaultConfig())
	if err != nil {
		return nil, err
	}
	qd, err := zipf.New(objects/2, 1.2)
	if err != nil {
		return nil, err
	}
	oldPick := func(r *rng.Source) int { return qd.Sample(r) - 1 }
	newPick := func(r *rng.Source) int { return objects/2 + qd.Sample(r) - 1 }

	queries := e.P.SimTrials * 3
	if queries < 600 {
		queries = 600
	}
	res := &ShortcutsResult{Nodes: nodes}
	warm, err := sys.RunWorkload(queries, oldPick, e.Seed+112)
	if err != nil {
		return nil, err
	}
	res.WarmupHits = warm.ShortcutHits
	steady, err := sys.RunWorkload(queries/2, oldPick, e.Seed+113)
	if err != nil {
		return nil, err
	}
	res.SteadyHits = steady.ShortcutHits
	res.SteadyMessages = steady.MeanMessages
	shifted, err := sys.RunWorkload(queries/2, newPick, e.Seed+114)
	if err != nil {
		return nil, err
	}
	res.ShiftedHits = shifted.ShortcutHits

	// Flood-only baseline cost over the same steady workload.
	eng, err := search.NewEngine(g, p)
	if err != nil {
		return nil, err
	}
	r := rng.NewNamed(e.Seed, "experiments/shortcuts-baseline")
	msgs := 0
	n := queries / 2
	for i := 0; i < n; i++ {
		fl, err := eng.Flood(r.Intn(nodes), oldPick(r), shortcuts.DefaultConfig().TTL)
		if err != nil {
			return nil, err
		}
		msgs += fl.Messages
	}
	res.FloodMessages = float64(msgs) / float64(n)
	return res, nil
}
