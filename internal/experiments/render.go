package experiments

import (
	"fmt"
	"io"
	"strings"

	"querycentric/internal/analysis"
)

// Result is the common rendering interface every experiment result
// implements: a stable name (the figure/table it reproduces) and the
// tab-separated table qc-sim and qc-figures emit. Table()[0] is the header
// row, written with a leading "# " by WriteTable; subsequent rows are the
// data. Tables are fully deterministic: map-backed results iterate fixed
// orderings, never Go map order.
type Result interface {
	Name() string
	Table() [][]string
}

// WriteTable renders a Result as a commented-header TSV table.
func WriteTable(w io.Writer, r Result) error {
	rows := r.Table()
	if len(rows) == 0 {
		return nil
	}
	if _, err := fmt.Fprintln(w, "# "+strings.Join(rows[0], "\t")); err != nil {
		return err
	}
	for _, row := range rows[1:] {
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// Every experiment result implements Result.
var _ = []Result{
	(*DistResult)(nil), (*Fig4Result)(nil), (*Fig5Result)(nil),
	(*Fig6Result)(nil), (*Fig7Result)(nil), (*Fig8Result)(nil),
	(*TTLCoverageResult)(nil), (*HybridVsDHTResult)(nil), (*GiaResult)(nil),
	(*QRPResult)(nil), (*ChurnResult)(nil), (*ChurnRepairResult)(nil),
	(*WalkVsFloodResult)(nil), (*ReplicationResult)(nil),
	(*ShortcutsResult)(nil), (*DHTRoutingResult)(nil),
	(*FaultSweepResult)(nil), (*SynopsisResult)(nil), (*RareObjectResult)(nil),
	(*RecoveryResult)(nil), (*SaturationResult)(nil), (*QueryCentricResult)(nil),
}

// kv builds a two-column metric/value table from alternating pairs.
func kv(pairs ...string) [][]string {
	rows := [][]string{{"metric", "value"}}
	for i := 0; i+1 < len(pairs); i += 2 {
		rows = append(rows, []string{pairs[i], pairs[i+1]})
	}
	return rows
}

// Name returns the distribution's label (fig1/fig2/fig3).
func (r *DistResult) Name() string { return r.Label }

// Table renders the rank/count distribution.
func (r *DistResult) Table() [][]string {
	rows := [][]string{{"rank", "count"}}
	for _, p := range r.RankFreq {
		rows = append(rows, []string{fmt.Sprintf("%d", p.Rank), fmt.Sprintf("%d", p.Count)})
	}
	return rows
}

// fig4Annotations fixes the rendering order of the four annotation kinds.
var fig4Annotations = []analysis.Annotation{
	analysis.AnnotationSong, analysis.AnnotationGenre,
	analysis.AnnotationAlbum, analysis.AnnotationArtist,
}

// Name identifies the iTunes annotation distributions.
func (r *Fig4Result) Name() string { return "fig4-annotations" }

// Table renders all four annotation distributions in fixed order.
func (r *Fig4Result) Table() [][]string {
	rows := [][]string{{"annotation", "rank", "count"}}
	for _, a := range fig4Annotations {
		rep := r.Reports[a]
		if rep == nil {
			continue
		}
		for _, p := range rep.RankFreq() {
			rows = append(rows, []string{a.String(),
				fmt.Sprintf("%d", p.Rank), fmt.Sprintf("%d", p.Count)})
		}
	}
	return rows
}

// Name identifies the transient-popularity sweep.
func (r *Fig5Result) Name() string { return "fig5-transients" }

// Table renders the per-interval transient counts, iterating the fixed
// Fig5Intervals order (not the backing map).
func (r *Fig5Result) Table() [][]string {
	rows := [][]string{{"interval_s", "start", "transient_count"}}
	for _, iv := range Fig5Intervals {
		for _, p := range r.PointsByInterval[iv] {
			rows = append(rows, []string{fmt.Sprintf("%d", iv),
				fmt.Sprintf("%d", p.Start), fmt.Sprintf("%d", p.Count)})
		}
	}
	return rows
}

// Name identifies the popular-term stability series.
func (r *Fig6Result) Name() string { return "fig6-stability" }

// Table renders the stability series.
func (r *Fig6Result) Table() [][]string {
	rows := [][]string{{"start", "jaccard"}}
	for _, p := range r.Series {
		rows = append(rows, []string{fmt.Sprintf("%d", p.Start), fmt.Sprintf("%.4f", p.Value)})
	}
	return rows
}

// Name identifies the query/file mismatch series.
func (r *Fig7Result) Name() string { return "fig7-mismatch" }

// Table renders the popular-terms-vs-F* series (the figure's line).
func (r *Fig7Result) Table() [][]string {
	rows := [][]string{{"start", "jaccard_popular"}}
	for _, p := range r.PopularSeries {
		rows = append(rows, []string{fmt.Sprintf("%d", p.Start), fmt.Sprintf("%.4f", p.Value)})
	}
	return rows
}

// Name identifies the flood-success sweep.
func (r *Fig8Result) Name() string { return "fig8-flood-success" }

// Table renders success-vs-TTL, one column per placement curve.
func (r *Fig8Result) Table() [][]string {
	header := []string{"ttl"}
	for _, c := range r.Curves {
		header = append(header, c.Label)
	}
	rows := [][]string{header}
	if len(r.Curves) == 0 {
		return rows
	}
	for ttl := 1; ttl <= len(r.Curves[0].Success); ttl++ {
		row := []string{fmt.Sprintf("%d", ttl)}
		for _, c := range r.Curves {
			row = append(row, fmt.Sprintf("%.4f", c.Success[ttl-1]))
		}
		rows = append(rows, row)
	}
	return rows
}

// Name identifies the §V TTL/coverage table.
func (r *TTLCoverageResult) Name() string { return "ttl-coverage" }

// Table renders the fraction of the overlay reached per TTL.
func (r *TTLCoverageResult) Table() [][]string {
	rows := [][]string{{"ttl", "fraction_reached"}}
	for i, f := range r.Fractions {
		rows = append(rows, []string{fmt.Sprintf("%d", i+1), fmt.Sprintf("%.5f", f)})
	}
	return rows
}

// Name identifies the hybrid-vs-DHT comparison.
func (r *HybridVsDHTResult) Name() string { return "hybrid-vs-dht" }

// Table renders the comparison headline metrics.
func (r *HybridVsDHTResult) Table() [][]string {
	c := r.Comparison
	return kv(
		"nodes", fmt.Sprintf("%d", r.Nodes),
		"hybrid_success", fmt.Sprintf("%.3f", c.HybridSuccess),
		"hybrid_mean_cost", fmt.Sprintf("%.1f", c.HybridMeanCost),
		"dht_success", fmt.Sprintf("%.3f", c.DHTSuccess),
		"dht_mean_cost", fmt.Sprintf("%.1f", c.DHTMeanCost),
		"dht_fallback_frac", fmt.Sprintf("%.3f", c.DHTFallbackFrac),
	)
}

// Name identifies the Gia rebuttal.
func (r *GiaResult) Name() string { return "gia-comparison" }

// Table renders the Gia comparison.
func (r *GiaResult) Table() [][]string {
	return kv(
		"nodes", fmt.Sprintf("%d", r.Nodes),
		"uniform_0.5pct_success", fmt.Sprintf("%.3f", r.UniformSuccess),
		"zipf_success", fmt.Sprintf("%.3f", r.ZipfSuccess),
	)
}

// Name identifies the QRP ablation.
func (r *QRPResult) Name() string { return "qrp-effect" }

// Table renders the QRP comparison.
func (r *QRPResult) Table() [][]string {
	return kv(
		"peers", fmt.Sprintf("%d", r.Peers),
		"queries", fmt.Sprintf("%d", r.Queries),
		"plain_success", fmt.Sprintf("%.3f", r.PlainSuccess),
		"plain_messages", fmt.Sprintf("%d", r.PlainMessages),
		"qrp_success", fmt.Sprintf("%.3f", r.QRPSuccess),
		"qrp_messages", fmt.Sprintf("%d", r.QRPMessages),
		"message_savings", fmt.Sprintf("%.1f%%", 100*r.MessageSavings),
	)
}

// Name identifies the churn comparison.
func (r *ChurnResult) Name() string { return "churn-comparison" }

// Table renders the churn time series (uniform vs Zipf placement).
func (r *ChurnResult) Table() [][]string {
	rows := [][]string{{"time", "online_frac", "uniform_success", "zipf_success"}}
	for i := range r.UniformSeries {
		u, z := r.UniformSeries[i], r.ZipfSeries[i]
		rows = append(rows, []string{fmt.Sprintf("%d", u.Time),
			fmt.Sprintf("%.3f", u.OnlineFrac),
			fmt.Sprintf("%.3f", u.SuccessRate),
			fmt.Sprintf("%.3f", z.SuccessRate)})
	}
	return rows
}

// Name identifies the self-healing-overlay experiment.
func (r *ChurnRepairResult) Name() string { return "churn-repair" }

// Table renders the repair-vs-no-repair time series.
func (r *ChurnRepairResult) Table() [][]string {
	rows := [][]string{{"time", "online", "deg_norepair", "succ_norepair", "deg_repair", "succ_repair"}}
	for i := range r.NoRepair {
		nr, rp := r.NoRepair[i], r.Repair[i]
		rows = append(rows, []string{fmt.Sprintf("%d", nr.Time),
			fmt.Sprintf("%.3f", nr.OnlineFrac),
			fmt.Sprintf("%.2f", nr.MeanDegree), fmt.Sprintf("%.4f", nr.Success),
			fmt.Sprintf("%.2f", rp.MeanDegree), fmt.Sprintf("%.4f", rp.Success)})
	}
	return rows
}

// Name identifies the mechanism comparison.
func (r *WalkVsFloodResult) Name() string { return "walk-vs-flood" }

// Table renders per-mechanism success and cost.
func (r *WalkVsFloodResult) Table() [][]string {
	row := func(name string, success, msgs float64) []string {
		return []string{name, fmt.Sprintf("%.3f", success), fmt.Sprintf("%.0f", msgs)}
	}
	return [][]string{
		{"mechanism", "success", "messages"},
		row("flood", r.FloodSuccess, r.FloodMessages),
		row("walk", r.WalkSuccess, r.WalkMessages),
		row("ring", r.RingSuccess, r.RingMessages),
	}
}

// Name identifies the replica-allocation ablation.
func (r *ReplicationResult) Name() string { return "replication-strategies" }

// Table renders per-strategy success.
func (r *ReplicationResult) Table() [][]string {
	rows := [][]string{{"strategy", "basis", "success"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Strategy, row.Basis, fmt.Sprintf("%.3f", row.Success)})
	}
	return rows
}

// Name identifies the interest-based-shortcuts extension.
func (r *ShortcutsResult) Name() string { return "shortcuts" }

// Table renders the shortcut hit rates and costs.
func (r *ShortcutsResult) Table() [][]string {
	return kv(
		"nodes", fmt.Sprintf("%d", r.Nodes),
		"warmup_shortcut_hits", fmt.Sprintf("%.3f", r.WarmupHits),
		"steady_shortcut_hits", fmt.Sprintf("%.3f", r.SteadyHits),
		"shifted_shortcut_hits", fmt.Sprintf("%.3f", r.ShiftedHits),
		"steady_mean_messages", fmt.Sprintf("%.1f", r.SteadyMessages),
		"flood_mean_messages", fmt.Sprintf("%.1f", r.FloodMessages),
	)
}

// Name identifies the structured-baseline routing measurement.
func (r *DHTRoutingResult) Name() string { return "dht-routing" }

// Table renders Chord and Pastry lookup costs.
func (r *DHTRoutingResult) Table() [][]string {
	return kv(
		"nodes", fmt.Sprintf("%d", r.Nodes),
		"lookups", fmt.Sprintf("%d", r.Lookups),
		"chord_mean_hops", fmt.Sprintf("%.2f", r.ChordMeanHops),
		"pastry_mean_hops", fmt.Sprintf("%.2f", r.PastryMeanHops),
	)
}

// Name identifies the fault-rate sweep.
func (r *FaultSweepResult) Name() string { return "fault-sweep" }

// Table renders crawl coverage and flood success per fault rate.
func (r *FaultSweepResult) Table() [][]string {
	rows := [][]string{{"rate", "coverage", "partial", "failed", "record_frac", "retried", "flood_success"}}
	for _, p := range r.Points {
		rows = append(rows, []string{fmt.Sprintf("%.3f", p.Rate),
			fmt.Sprintf("%.4f", p.Coverage), fmt.Sprintf("%.4f", p.PartialFrac),
			fmt.Sprintf("%.4f", p.FailedFrac), fmt.Sprintf("%.4f", p.RecordFrac),
			fmt.Sprintf("%d", p.Retried), fmt.Sprintf("%.4f", p.FloodSuccess)})
	}
	return rows
}

// Name identifies the adaptive-synopsis ablation.
func (r *SynopsisResult) Name() string { return "synopsis-ablation" }

// Table renders the three-mechanism comparison.
func (r *SynopsisResult) Table() [][]string {
	return kv(
		"nodes", fmt.Sprintf("%d", r.Nodes),
		"rounds", fmt.Sprintf("%d", r.Rounds),
		"queries_per_round", fmt.Sprintf("%d", r.QueriesPerRound),
		"flood_success", fmt.Sprintf("%.3f", r.FloodSuccess),
		"static_synopsis_success", fmt.Sprintf("%.3f", r.StaticSuccess),
		"adaptive_synopsis_success", fmt.Sprintf("%.3f", r.AdaptiveSuccess),
	)
}

// Name identifies the fault-burst recovery experiment.
func (r *RecoveryResult) Name() string { return "recovery" }

// Table renders the two recovery curves side by side, then the headline
// recovery statistics.
func (r *RecoveryResult) Table() [][]string {
	rows := [][]string{{"window_end", "succ_repair", "succ_norepair",
		"online", "parts_repair", "parts_norepair", "repair_latency_s"}}
	for i := range r.Repair {
		rp := r.Repair[i]
		row := []string{fmt.Sprintf("%d", rp.End),
			fmt.Sprintf("%.4f", rp.Success), "",
			fmt.Sprintf("%.3f", rp.OnlineFrac),
			fmt.Sprintf("%d", rp.Partitions), "",
			fmt.Sprintf("%.0f", rp.RepairLatency)}
		if i < len(r.NoRepair) {
			nr := r.NoRepair[i]
			row[2] = fmt.Sprintf("%.4f", nr.Success)
			row[5] = fmt.Sprintf("%d", nr.Partitions)
		}
		rows = append(rows, row)
	}
	rows = append(rows,
		[]string{"# pre_burst_success", fmt.Sprintf("%.4f", r.PreBurstSuccess), "", "", "", "", ""},
		[]string{"# recovery_time_s", fmt.Sprintf("%d", r.RecoveryTime),
			fmt.Sprintf("%d", r.NoRepairRecoveryTime), "", "", "", ""},
		[]string{"# final_success", fmt.Sprintf("%.4f", r.RepairFinal),
			fmt.Sprintf("%.4f", r.NoRepairFinal), "", "", "", ""},
	)
	return rows
}

// Name identifies the §VI rare-object check.
func (r *RareObjectResult) Name() string { return "rare-objects" }

// Table renders the rare-object statistics.
func (r *RareObjectResult) Table() [][]string {
	return kv(
		"frac_at_least_20_peers", fmt.Sprintf("%.4f", r.FracAtLeast20),
		"mean_replicas", fmt.Sprintf("%.2f", r.MeanReplicas),
	)
}
