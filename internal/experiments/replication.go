package experiments

import (
	"querycentric/internal/overlay"
	"querycentric/internal/replication"
	"querycentric/internal/rng"
	"querycentric/internal/search"
	"querycentric/internal/zipf"
)

// ReplicationRow is one allocation strategy's measured outcome.
type ReplicationRow struct {
	Strategy string
	Basis    string // "query" or "file" popularity drove the allocation
	Success  float64
}

// ReplicationResult is the allocation-strategy ablation.
type ReplicationResult struct {
	Nodes  int
	Budget int
	Rows   []ReplicationRow
}

// ReplicationStrategies quantifies the paper's thesis with the classic
// allocation theory: distribute one replica budget by uniform,
// proportional and square-root rules, driven either by the query
// popularity (what a query-centric system would do) or by an uncorrelated
// file popularity of the same Zipf shape (what annotation-driven systems
// effectively do), and measure flooding success under the query
// distribution. Square-root allocation is near-optimal when driven by
// query popularity and near-worthless when driven by file popularity.
func ReplicationStrategies(e *Env) (*ReplicationResult, error) {
	nodes := e.P.SimNodes / 8
	if nodes < 500 {
		nodes = 500
	}
	// A scarce budget (mean 1.5 replicas/object, the paper's measured
	// mean) and a shallow TTL keep the regime where allocation matters;
	// generous budgets saturate every strategy.
	const objects = 250
	budget := objects * 3 / 2
	g, err := overlay.NewGnutella(nodes, overlay.DefaultGnutellaConfig(), e.Seed+100)
	if err != nil {
		return nil, err
	}
	qDist, err := zipf.New(objects, 1.0)
	if err != nil {
		return nil, err
	}
	qPop := make([]float64, objects)
	for i := 1; i <= objects; i++ {
		qPop[i-1] = qDist.Prob(i)
	}
	// File popularity: same Zipf shape over permuted ranks (Figure 7's
	// mismatch as a rank permutation).
	fPop := make([]float64, objects)
	perm := rng.NewNamed(e.Seed, "experiments/replication-perm").Perm(objects)
	for i, j := range perm {
		fPop[i] = qPop[j]
	}

	trials := e.P.SimTrials
	if trials < 200 {
		trials = 200
	}
	placeRNG := rng.NewNamed(e.Seed, "experiments/replication-place")
	pick := func(r *rng.Source) int { return qDist.Sample(r) - 1 }

	res := &ReplicationResult{Nodes: nodes, Budget: budget}
	for _, row := range []struct {
		strategy replication.Strategy
		basis    string
		pop      []float64
	}{
		{replication.Uniform, "query", qPop},
		{replication.SquareRoot, "query", qPop},
		{replication.Proportional, "query", qPop},
		{replication.SquareRoot, "file", fPop},
		{replication.Proportional, "file", fPop},
	} {
		counts, err := replication.Allocate(row.strategy, row.pop, budget, nodes)
		if err != nil {
			return nil, err
		}
		p := &search.Placement{Nodes: nodes, Holders: make([][]int32, objects)}
		for obj, c := range counts {
			idx := placeRNG.SampleInts(nodes, c)
			h := make([]int32, c)
			for j, v := range idx {
				h[j] = int32(v)
			}
			p.Holders[obj] = h
		}
		eng, err := search.NewEngine(g, p)
		if err != nil {
			return nil, err
		}
		rate, err := eng.SuccessRate(2, trials, pick, e.Seed+101)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, ReplicationRow{
			Strategy: row.strategy.String(), Basis: row.basis, Success: rate,
		})
	}
	return res, nil
}
