package experiments

import (
	"fmt"

	"querycentric/internal/catalog"
	"querycentric/internal/churn"
	"querycentric/internal/gnet"
	"querycentric/internal/parallel"
	"querycentric/internal/rng"
)

// ChurnRepair measures what overlay maintenance buys under session churn.
// One generated churn timeline (arrivals, polite departures, crashes)
// drives real topology mutation twice over the same population: once with
// no maintenance protocol — polite leavers erode the overlay, crashes
// leave ghost edges — and once with the full self-healing stack
// (ping/pong failure detection plus host-cache repair). TTL-bounded
// known-item floods sample search success over time; the static fault-free
// network anchors the comparison.

// ChurnRepairConfig tunes the experiment.
type ChurnRepairConfig struct {
	// Timeline shapes the session process the overlay endures.
	Timeline churn.TimelineConfig
	// Repair shapes the maintenance loop. Its Repair flag is overridden
	// per scenario.
	Repair gnet.RepairConfig
	// SampleEvery is the measurement period in seconds.
	SampleEvery int64
	// TTL bounds the measurement floods.
	TTL int
	// QueriesPerSample is the flood count per measurement point (0 scales
	// with the environment's SimTrials).
	QueriesPerSample int
}

// DefaultChurnRepairConfig measures two simulated hours of churn with
// one-minute ping rounds and ten-minute samples.
func DefaultChurnRepairConfig(seed uint64) ChurnRepairConfig {
	tl := churn.DefaultTimelineConfig(seed)
	tl.Duration = 2 * 3600
	rp := gnet.DefaultRepairConfig(seed)
	rp.PingInterval = 60
	return ChurnRepairConfig{
		Timeline:    tl,
		Repair:      rp,
		SampleEvery: 600,
		TTL:         3,
	}
}

// Validate rejects schedules that cannot make progress.
func (c ChurnRepairConfig) Validate() error {
	if err := c.Timeline.Validate(); err != nil {
		return err
	}
	if err := c.Repair.Validate(); err != nil {
		return err
	}
	switch {
	case c.SampleEvery <= 0:
		return fmt.Errorf("experiments: churn-repair SampleEvery must be positive, got %d", c.SampleEvery)
	case c.TTL < 1:
		return fmt.Errorf("experiments: churn-repair TTL must be at least 1, got %d", c.TTL)
	case c.QueriesPerSample < 0:
		return fmt.Errorf("experiments: churn-repair QueriesPerSample must be non-negative, got %d", c.QueriesPerSample)
	}
	return nil
}

// ChurnRepairSample is one measurement point of one scenario.
type ChurnRepairSample struct {
	Time       int64
	OnlineFrac float64
	// MeanDegree averages connection counts over online peers — the
	// topology-health signal (ghost edges count: the peer believes in
	// them).
	MeanDegree float64
	// Success is the known-item flood hit fraction at the configured TTL.
	Success float64
}

// ChurnRepairResult is the three-way comparison.
type ChurnRepairResult struct {
	Peers  int
	TTL    int
	Events int // timeline transitions applied to each scenario
	// StaticSuccess is flood success on the untouched fault-free overlay,
	// averaged over the same per-sample query streams.
	StaticSuccess float64
	NoRepair      []ChurnRepairSample
	Repair        []ChurnRepairSample
	NoRepairMean  float64
	RepairMean    float64
	// RecoveredFrac is how much of the static-vs-no-repair gap the
	// maintenance protocol wins back (1 = full recovery).
	RecoveredFrac float64
	// RepairStats are the repair-scenario maintenance counters.
	RepairStats gnet.RepairStats
}

// ChurnRepair runs the experiment with default configuration.
func ChurnRepair(e *Env) (*ChurnRepairResult, error) {
	return ChurnRepairWith(e, DefaultChurnRepairConfig(e.Seed))
}

// ChurnRepairWith runs the churn-repair comparison. Maintenance is
// sequential (it mutates topology); only the measurement floods fan out,
// each trial on its own derived stream, so results are byte-identical at
// every worker count.
func ChurnRepairWith(e *Env, cfg ChurnRepairConfig) (*ChurnRepairResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	queries := cfg.QueriesPerSample
	if queries == 0 {
		queries = e.P.SimTrials / 4
		if queries < 40 {
			queries = 40
		}
		if queries > 200 {
			queries = 200
		}
	}
	cat, err := catalog.Build(catalog.Config{
		Seed:                e.Seed,
		Peers:               e.P.GnutellaPeers,
		UniqueObjects:       e.P.UniqueObjects,
		ReplicaAlpha:        2.45,
		VariantProb:         0.08,
		NonSpecificPeerFrac: 0.05,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: building catalog: %w", err)
	}
	tl, err := churn.GenerateTimeline(cfg.Timeline, e.P.GnutellaPeers)
	if err != nil {
		return nil, err
	}

	res := &ChurnRepairResult{
		Peers:  e.P.GnutellaPeers,
		TTL:    cfg.TTL,
		Events: len(tl.Events),
	}

	build := func() (*gnet.Network, error) {
		gcfg := gnet.DefaultConfig(e.Seed)
		gcfg.FirewalledFrac = e.P.FirewalledFrac
		nw, err := gnet.NewFromCatalog(gcfg, cat)
		if err == nil {
			e.instrumentNetwork(nw)
		}
		return nw, err
	}

	// measure floods known-item queries from live origins; sample si of
	// every scenario shares the stream family "sample/si/trial/*", so
	// scenarios differ only through topology and liveness.
	measure := func(nw *gnet.Network, si int) (float64, error) {
		base := rng.NewNamed(e.Seed, "experiments/churn-repair-queries")
		plane := nw.Faults()
		found, err := parallel.MapWith(e.workers(), queries,
			func() *gnet.FloodCtx { return nw.NewFloodCtx() },
			func(ctx *gnet.FloodCtx, q int) (bool, error) {
				r := base.Derive(fmt.Sprintf("sample/%d/trial/%d", si, q))
				origin := pickAlive(nw, plane, r, -1)
				target := pickAlive(nw, plane, r, origin)
				if origin < 0 || target < 0 {
					return false, nil
				}
				lib := nw.Peers[target].Library
				criteria := lib[r.Intn(len(lib))].Name
				fr, err := ctx.Flood(origin, criteria, cfg.TTL, r)
				return err == nil && fr.TotalResults > 0, nil
			})
		if err != nil {
			return 0, err
		}
		hits := 0
		for _, f := range found {
			if f {
				hits++
			}
		}
		return float64(hits) / float64(queries), nil
	}

	samples := int(cfg.Timeline.Duration / cfg.SampleEvery)

	// Static anchor: the untouched overlay, everyone online, same query
	// streams averaged over the same sample indices.
	static, err := build()
	if err != nil {
		return nil, err
	}
	sum := 0.0
	for si := 0; si < samples; si++ {
		s, err := measure(static, si)
		if err != nil {
			return nil, err
		}
		sum += s
	}
	if samples > 0 {
		res.StaticSuccess = sum / float64(samples)
	}

	// run replays the timeline against a fresh overlay, interleaving
	// churn events, maintenance ticks and measurements in time order.
	run := func(repair bool) ([]ChurnRepairSample, gnet.RepairStats, error) {
		nw, err := build()
		if err != nil {
			return nil, gnet.RepairStats{}, err
		}
		rcfg := cfg.Repair
		rcfg.Repair = repair
		m, err := gnet.NewMaintainer(nw, rcfg, tl.Initial)
		if err != nil {
			return nil, gnet.RepairStats{}, err
		}
		var out []ChurnRepairSample
		ei, si := 0, 0
		for now := int64(1); now <= cfg.Timeline.Duration; now++ {
			for ei < len(tl.Events) && tl.Events[ei].Time == now {
				ev := tl.Events[ei]
				ei++
				if ev.Up {
					err = m.PeerUp(int(ev.Peer), now)
				} else {
					err = m.PeerDown(int(ev.Peer), ev.Polite)
				}
				if err != nil {
					return nil, gnet.RepairStats{}, err
				}
			}
			if now%rcfg.PingInterval == 0 {
				m.Tick(now)
			}
			if now%cfg.SampleEvery == 0 && si < samples {
				s := ChurnRepairSample{Time: now}
				online, degSum := 0, 0
				for id, up := range m.Online() {
					if up {
						online++
						degSum += len(nw.Peers[id].Neighbors)
					}
				}
				n := len(nw.Peers)
				s.OnlineFrac = float64(online) / float64(n)
				if online > 0 {
					s.MeanDegree = float64(degSum) / float64(online)
				}
				if s.Success, err = measure(nw, si); err != nil {
					return nil, gnet.RepairStats{}, err
				}
				out = append(out, s)
				si++
			}
		}
		return out, m.Stats(), nil
	}

	if res.NoRepair, _, err = run(false); err != nil {
		return nil, err
	}
	if res.Repair, res.RepairStats, err = run(true); err != nil {
		return nil, err
	}
	res.NoRepairMean = meanSuccess(res.NoRepair)
	res.RepairMean = meanSuccess(res.Repair)
	if gap := res.StaticSuccess - res.NoRepairMean; gap > 0 {
		res.RecoveredFrac = (res.RepairMean - res.NoRepairMean) / gap
	}
	return res, nil
}

func meanSuccess(ss []ChurnRepairSample) float64 {
	if len(ss) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range ss {
		sum += s.Success
	}
	return sum / float64(len(ss))
}
