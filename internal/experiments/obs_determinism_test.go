package experiments

import (
	"encoding/json"
	"testing"

	"querycentric/internal/obs"
	"querycentric/internal/parallel"
)

// runInstrumented runs one Fig8 + FaultSweep pass at the given worker
// count, optionally with the observability plane attached, and returns the
// marshalled experiment results plus the registry and trace recorder.
//
// Not parallel-safe: parallel.Instrument installs process-global
// instrumentation, so the callers below must not use t.Parallel().
func runInstrumented(t *testing.T, workers int, withObs bool) ([]byte, *obs.Registry, *obs.FloodTraces) {
	t.Helper()
	e := NewEnv(ScaleTiny, 42)
	e.Workers = workers
	if withObs {
		e.Obs = obs.NewRegistry()
		e.FloodTraces = obs.NewFloodTraces(0)
		parallel.Instrument(e.Obs)
		defer parallel.Instrument(nil)
	}
	f8, err := Fig8(e)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := FaultSweepWith(e, FaultSweepConfig{
		Rates:    []float64{0, 0.3},
		DeadFrac: 0.15,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal([]any{f8, fs})
	if err != nil {
		t.Fatal(err)
	}
	return raw, e.Obs, e.FloodTraces
}

// TestMetricsDoNotChangeResults pins the plane's zero-interference
// contract: attaching a live registry and flood-trace recorder must leave
// every experiment result byte-identical to a bare run.
func TestMetricsDoNotChangeResults(t *testing.T) {
	bare, _, _ := runInstrumented(t, 2, false)
	instrumented, reg, _ := runInstrumented(t, 2, true)
	if string(bare) != string(instrumented) {
		t.Fatalf("attaching the observability plane changed experiment results:\n%s\nvs\n%s",
			bare, instrumented)
	}
	if len(reg.Snapshot().Metrics) == 0 {
		t.Fatal("instrumented run recorded no metrics")
	}
}

// TestMetricsSnapshotWorkerInvariance pins the other half of the contract:
// with the plane enabled, the metrics snapshot, the sampled flood traces
// and the manifest fingerprint are identical at 1 and 8 workers.
func TestMetricsSnapshotWorkerInvariance(t *testing.T) {
	manifest := func(workers int) (*obs.Manifest, []byte) {
		_, reg, traces := runInstrumented(t, workers, true)
		m := &obs.Manifest{
			Command: "determinism-test", Mode: "fig8+faults", Scale: "tiny",
			Seed: 42, Workers: workers,
			Metrics:     reg.Snapshot(),
			FloodTraces: traces.Snapshot(),
		}
		m.Finalize()
		snap, err := json.Marshal(m.Metrics)
		if err != nil {
			t.Fatal(err)
		}
		return m, snap
	}
	m1, snap1 := manifest(1)
	m8, snap8 := manifest(8)
	if string(snap1) != string(snap8) {
		t.Fatalf("metrics snapshot diverged between workers=1 and workers=8:\n%s\nvs\n%s",
			snap1, snap8)
	}
	if len(m1.FloodTraces) != len(m8.FloodTraces) {
		t.Fatalf("flood-trace sample size diverged: %d vs %d",
			len(m1.FloodTraces), len(m8.FloodTraces))
	}
	if m1.Fingerprint != m8.Fingerprint {
		t.Fatalf("manifest fingerprint diverged between workers=1 and workers=8: %s vs %s",
			m1.Fingerprint, m8.Fingerprint)
	}
}
