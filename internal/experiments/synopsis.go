package experiments

import (
	"fmt"

	"querycentric/internal/core"
	"querycentric/internal/dict"
	"querycentric/internal/gia"
	"querycentric/internal/overlay"
	"querycentric/internal/rng"
	"querycentric/internal/search"
	"querycentric/internal/synopsis"
	"querycentric/internal/terms"
	"querycentric/internal/zipf"
)

// SynopsisResult is the §VII extension experiment: success rates of plain
// flooding, static synopses and query-centric adaptive synopses under a
// drifting popular query vocabulary.
type SynopsisResult struct {
	Nodes           int
	Rounds          int
	QueriesPerRound int
	FloodSuccess    float64 // advertisement-free flood upper bound at equal TTL
	StaticSuccess   float64
	AdaptiveSuccess float64
}

// synopsisTTL is the routing depth used by all three systems.
const synopsisTTL = 4

// SynopsisAblation runs the adaptive-synopsis experiment: peers' content
// comes from the crawled object trace; queries use a sliding window of
// popular file terms (so popularity drifts round to round); the adaptive
// network re-advertises according to the online Tracker's popular set.
func SynopsisAblation(e *Env) (*SynopsisResult, error) {
	tr, _, err := e.ObjectTrace()
	if err != nil {
		return nil, err
	}
	// Per-peer content term lists from the crawl. Tokens are interned
	// through a trace-wide dictionary so the retained lists share one
	// canonical string per term instead of pinning a lowered copy of every
	// record name they were sliced from.
	names := make([]string, len(tr.Records))
	for i, rec := range tr.Records {
		names[i] = rec.Name
	}
	d := dict.FromNames(names, e.Workers)
	content := make([][]string, tr.Peers)
	seen := make([]map[string]struct{}, tr.Peers)
	for i := range seen {
		seen[i] = map[string]struct{}{}
	}
	const maxTermsPerPeer = 120
	for _, rec := range tr.Records {
		if rec.Peer >= tr.Peers {
			continue
		}
		for _, tok := range terms.Tokenize(rec.Name) {
			if len(content[rec.Peer]) >= maxTermsPerPeer {
				break
			}
			tok, _ = d.Intern(tok)
			if _, dup := seen[rec.Peer][tok]; dup {
				continue
			}
			seen[rec.Peer][tok] = struct{}{}
			content[rec.Peer] = append(content[rec.Peer], tok)
		}
	}
	g, err := overlay.NewErdosRenyi(tr.Peers, 8, e.Seed+40)
	if err != nil {
		return nil, err
	}

	// The drifting query model: each round's hot vocabulary is a window
	// over the ranked file terms, sliding by half a window per round.
	ranked, err := e.FileTerms()
	if err != nil {
		return nil, err
	}
	// Hot vocabulary: a small sliding window over mid-ranked file terms.
	// Small, so the adaptive advertisement budget can cover it; mid-ranked,
	// so holding peers are scarce enough that synopsis visibility actually
	// gates success (the head terms are on nearly every peer).
	const window = 20
	const hotOffset = 200
	const rounds = 6
	queriesPerRound := e.P.SimTrials
	if queriesPerRound < 100 {
		queriesPerRound = 100
	}
	if need := hotOffset + window*(rounds+2); len(ranked) < need {
		return nil, fmt.Errorf("experiments: only %d file terms, need %d", len(ranked), need)
	}
	hotDist, err := zipf.New(window, 0.8)
	if err != nil {
		return nil, err
	}
	roundTerms := func(round int, r *rng.Source) []string {
		start := hotOffset + round*window/2
		out := make([]string, 0, 1)
		out = append(out, ranked[start+hotDist.Sample(r)-1].Term)
		return out
	}

	res := &SynopsisResult{Nodes: tr.Peers, Rounds: rounds, QueriesPerRound: queriesPerRound}

	// Flood upper bound: success if any peer within TTL holds the terms.
	cov := overlay.NewCoverage(g)
	has := func(v int32, q []string) bool {
		for _, t := range q {
			if _, ok := seen[v][t]; !ok {
				return false
			}
		}
		return true
	}
	fr := rng.NewNamed(e.Seed, "experiments/synopsis-flood")
	floodHits, floodTrials := 0, 0
	for round := 1; round < rounds; round++ {
		for i := 0; i < queriesPerRound; i++ {
			q := roundTerms(round, fr)
			origin := fr.Intn(tr.Peers)
			if has(int32(origin), q) {
				floodHits++
				floodTrials++
				continue
			}
			found := false
			for _, v := range cov.Reached(origin, synopsisTTL) {
				if has(v, q) {
					found = true
					break
				}
			}
			if found {
				floodHits++
			}
			floodTrials++
		}
	}
	res.FloodSuccess = float64(floodHits) / float64(floodTrials)

	run := func(adaptive bool) (float64, error) {
		scfg := synopsis.DefaultConfig(e.Seed + 41)
		scfg.SynopsisTerms = 16
		scfg.Adaptive = adaptive
		net, err := synopsis.New(g, content, scfg)
		if err != nil {
			return 0, err
		}
		tcfg := core.DefaultTrackerConfig()
		tcfg.Interval = 1 // one "interval" per round
		tcfg.MinPopularCount = 3
		tracker, err := core.NewTracker(tcfg, nil)
		if err != nil {
			return 0, err
		}
		qr := rng.NewNamed(e.Seed, fmt.Sprintf("experiments/synopsis-run-%v", adaptive))
		hits, trials := 0, 0
		for round := 0; round < rounds; round++ {
			// Queries of this round: measure (except round 0, warmup) and
			// feed the tracker.
			for i := 0; i < queriesPerRound; i++ {
				q := roundTerms(round, qr)
				if round > 0 {
					r, err := net.Search(qr.Intn(tr.Peers), q, synopsisTTL)
					if err != nil {
						return 0, err
					}
					if r.Found {
						hits++
					}
					trials++
				}
				if err := tracker.Observe(int64(round), join(q)); err != nil {
					return 0, err
				}
			}
			tracker.Flush()
			if err := net.SetPopular(tracker.PopularTerms()); err != nil {
				return 0, err
			}
		}
		return float64(hits) / float64(trials), nil
	}
	if res.StaticSuccess, err = run(false); err != nil {
		return nil, err
	}
	if res.AdaptiveSuccess, err = run(true); err != nil {
		return nil, err
	}
	return res, nil
}

// GiaResult compares Gia under its published uniform evaluation against
// the measured Zipf placement (the §VI Related Work rebuttal).
type GiaResult struct {
	Nodes          int
	UniformSuccess float64 // 0.5% uniform replication, Gia's setting
	ZipfSuccess    float64
}

// GiaComparison reproduces the Gia rebuttal.
func GiaComparison(e *Env) (*GiaResult, error) {
	nodes := e.P.SimNodes / 8
	if nodes < 500 {
		nodes = 500
	}
	objects := 150
	reps := nodes / 200 // 0.5%
	if reps < 1 {
		reps = 1
	}
	uni, err := search.UniformPlacement(nodes, objects, reps, e.Seed+50)
	if err != nil {
		return nil, err
	}
	zpf, err := search.ZipfPlacement(nodes, objects, 2.45, nodes/10, e.Seed+51)
	if err != nil {
		return nil, err
	}
	pick := func(r *rng.Source) int { return r.Intn(objects) }
	trials := e.P.SimTrials / 2
	if trials < 100 {
		trials = 100
	}
	sysU, err := gia.New(nodes, uni, gia.DefaultConfig(e.Seed+52))
	if err != nil {
		return nil, err
	}
	sysZ, err := gia.New(nodes, zpf, gia.DefaultConfig(e.Seed+52))
	if err != nil {
		return nil, err
	}
	res := &GiaResult{Nodes: nodes}
	if res.UniformSuccess, err = sysU.SuccessRate(128, trials, pick, e.Seed+53); err != nil {
		return nil, err
	}
	if res.ZipfSuccess, err = sysZ.SuccessRate(128, trials, pick, e.Seed+53); err != nil {
		return nil, err
	}
	return res, nil
}

func join(ts []string) string {
	out := ""
	for i, t := range ts {
		if i > 0 {
			out += " "
		}
		out += t
	}
	return out
}
