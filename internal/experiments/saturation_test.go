package experiments

import (
	"testing"
)

func TestSaturationConfigValidate(t *testing.T) {
	if err := DefaultSaturationConfig(1).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*SaturationConfig){
		func(c *SaturationConfig) { c.Loads = []int{40} },
		func(c *SaturationConfig) { c.Loads = []int{40, 40} },
		func(c *SaturationConfig) { c.Loads = []int{120, 40} },
		func(c *SaturationConfig) { c.Loads[0] = 0 },
		func(c *SaturationConfig) { c.Capacity.ServiceCostMs = 0 },
		func(c *SaturationConfig) { c.Capacity.QueueDepth = 0 },
		func(c *SaturationConfig) { c.Arms = []string{"droptail"} },
		func(c *SaturationConfig) { c.Window = 0 },
		func(c *SaturationConfig) { c.TTL = 0 },
		func(c *SaturationConfig) { c.QueryRetries = -1 },
	}
	for i, mutate := range bad {
		c := DefaultSaturationConfig(1)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: invalid config passed Validate", i)
		}
	}
}

// TestSaturationQualitative pins the acceptance-criteria shape of the
// sweep at tiny scale: the unbounded arm's per-query message cost grows
// monotonically with offered load (super-linear total cost) and its
// backlog explodes, every bounded arm stays within queue-capacity bounds,
// and TTL-aware shedding retains at least twice drop-tail's success at
// the highest swept load.
func TestSaturationQualitative(t *testing.T) {
	e := NewEnv(ScaleTiny, 42)
	res, err := Saturation(e)
	if err != nil {
		t.Fatal(err)
	}
	byArm := map[string]SaturationArm{}
	for _, a := range res.Arms {
		byArm[a.Arm] = a
		if len(a.Points) != len(DefaultSaturationConfig(42).Loads) {
			t.Fatalf("arm %s: %d points", a.Arm, len(a.Points))
		}
	}
	for _, arm := range []string{"unbounded", "drop-tail", "red", "ttl"} {
		if _, ok := byArm[arm]; !ok {
			t.Fatalf("arm %s missing from sweep", arm)
		}
	}

	// Unbounded: cost per query grows with load; the backlog explodes far
	// past the bounded arms' queue bound; the flash is fatal at peak.
	ub := byArm["unbounded"].Points
	for i := 1; i < len(ub); i++ {
		if ub[i].MsgPerQuery <= ub[i-1].MsgPerQuery {
			t.Errorf("unbounded msg/query not growing: load %d %.1f -> load %d %.1f",
				ub[i-1].Load, ub[i-1].MsgPerQuery, ub[i].Load, ub[i].MsgPerQuery)
		}
	}
	ubPeak := ub[len(ub)-1]
	if ubPeak.MsgPerQuery < 1.5*ub[0].MsgPerQuery {
		t.Errorf("unbounded cost not super-linear: %.1f at base vs %.1f at peak",
			ub[0].MsgPerQuery, ubPeak.MsgPerQuery)
	}
	if ubPeak.FlashSuccess != 0 {
		t.Errorf("unbounded flash success at peak = %.4f, want collapse to 0", ubPeak.FlashSuccess)
	}

	// Bounded arms: committed depth stays within the queue bound plus the
	// optimistic-admission overshoot (one sub-batch of CommitEvery floods
	// can each land a handful of copies per queue before the fold; the
	// TTL-aware express lane doubles the bound). The unbounded arm's
	// backlog must dwarf all of them.
	cfg := DefaultSaturationConfig(42)
	overshoot := int64(cfg.Capacity.CommitEvery) * 4
	for _, arm := range []string{"drop-tail", "red"} {
		for _, p := range byArm[arm].Points {
			if p.MaxDepth > int64(cfg.Capacity.QueueDepth)+overshoot {
				t.Errorf("%s max depth %d exceeds bound %d+%d", arm, p.MaxDepth, cfg.Capacity.QueueDepth, overshoot)
			}
		}
	}
	for _, p := range byArm["ttl"].Points {
		if p.MaxDepth > 2*int64(cfg.Capacity.QueueDepth)+overshoot {
			t.Errorf("ttl max depth %d exceeds two-lane bound %d+%d", p.MaxDepth, 2*cfg.Capacity.QueueDepth, overshoot)
		}
	}
	for _, arm := range []string{"drop-tail", "red", "ttl"} {
		peak := byArm[arm].Points[len(byArm[arm].Points)-1]
		if peak.MaxDepth*8 > ubPeak.MaxDepth {
			t.Errorf("%s peak depth %d not dwarfed by unbounded %d", arm, peak.MaxDepth, ubPeak.MaxDepth)
		}
		if peak.ShedFrac == 0 {
			t.Errorf("%s sheds nothing at peak load", arm)
		}
	}

	// TTL-aware beats drop-tail at the highest swept load: at least 2x on
	// both whole-run and flash-window success, with breakers engaged.
	dtPeak := byArm["drop-tail"].Points[len(byArm["drop-tail"].Points)-1]
	ttlPeak := byArm["ttl"].Points[len(byArm["ttl"].Points)-1]
	if ttlPeak.Success < 2*dtPeak.Success {
		t.Errorf("ttl peak success %.4f < 2x drop-tail %.4f", ttlPeak.Success, dtPeak.Success)
	}
	if ttlPeak.FlashSuccess < 2*dtPeak.FlashSuccess {
		t.Errorf("ttl peak flash success %.4f < 2x drop-tail %.4f", ttlPeak.FlashSuccess, dtPeak.FlashSuccess)
	}
	if ttlPeak.BreakerOpens == 0 {
		t.Error("ttl arm never opened a breaker at peak load")
	}
	if dtPeak.BreakerOpens != 0 {
		t.Errorf("drop-tail arm opened %d breakers; breakers ride the ttl arm only", dtPeak.BreakerOpens)
	}
}

// TestSaturationArmFilter checks that cfg.Arms restricts the sweep.
func TestSaturationArmFilter(t *testing.T) {
	e := NewEnv(ScaleTiny, 42)
	cfg := DefaultSaturationConfig(e.Seed)
	cfg.Loads = []int{20, 60}
	cfg.Arms = []string{"unbounded", "ttl"}
	res, err := SaturationWith(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arms) != 2 || res.Arms[0].Arm != "unbounded" || res.Arms[1].Arm != "ttl" {
		t.Fatalf("arm filter broken: %+v", res.Arms)
	}
	if res.Peak("drop-tail") != nil {
		t.Error("Peak returned a point for an arm not swept")
	}
	if p := res.Peak("ttl"); p == nil || p.Load != 60 {
		t.Errorf("Peak(ttl) = %+v, want load 60", p)
	}
}
