package experiments

import (
	"fmt"

	"querycentric/internal/analysis"
	"querycentric/internal/crawler"
	"querycentric/internal/daap"
	"querycentric/internal/stats"
)

// DistResult packages a Figure 1/2/3 distribution with its headline
// statistics and the paper's reference values for EXPERIMENTS.md.
type DistResult struct {
	Label         string
	Report        *analysis.DistReport
	CrawlStats    *crawler.Stats
	SingletonFrac float64
	FracAtMost37  float64 // the paper's "≤0.1% of 37,572 peers" threshold
	RankFreq      []stats.RankFreqPoint
}

// Fig1 reproduces Figure 1: the replica distribution of exact object
// names. Paper: 8.1M unique, 70.5% on a single peer, 99.5% on ≤37 peers.
func Fig1(e *Env) (*DistResult, error) {
	tr, st, err := e.ObjectTrace()
	if err != nil {
		return nil, err
	}
	rep := analysis.Replicas(tr, false)
	return &DistResult{
		Label:         "fig1-object-replicas",
		Report:        rep,
		CrawlStats:    st,
		SingletonFrac: rep.SingletonFrac,
		FracAtMost37:  rep.FracAtMost(37),
		RankFreq:      rep.RankFreq(),
	}, nil
}

// Fig2 reproduces Figure 2: the same distribution after sanitizing names
// (lowercase, stripped punctuation). Paper: 7.9M unique, 69.8% singleton,
// 99.4% on ≤37 peers.
func Fig2(e *Env) (*DistResult, error) {
	tr, st, err := e.ObjectTrace()
	if err != nil {
		return nil, err
	}
	rep := analysis.Replicas(tr, true)
	return &DistResult{
		Label:         "fig2-sanitized-replicas",
		Report:        rep,
		CrawlStats:    st,
		SingletonFrac: rep.SingletonFrac,
		FracAtMost37:  rep.FracAtMost(37),
		RankFreq:      rep.RankFreq(),
	}, nil
}

// Fig3 reproduces Figure 3: the per-term distribution under protocol
// tokenization. Paper: 1.22M unique terms, 71.3% on one peer, 98.3% on
// ≤37 peers.
func Fig3(e *Env) (*DistResult, error) {
	tr, st, err := e.ObjectTrace()
	if err != nil {
		return nil, err
	}
	rep := analysis.TermPeers(tr)
	return &DistResult{
		Label:         "fig3-term-peers",
		Report:        rep,
		CrawlStats:    st,
		SingletonFrac: rep.SingletonFrac,
		FracAtMost37:  rep.FracAtMost(37),
		RankFreq:      rep.RankFreq(),
	}, nil
}

// Fig4Result holds the four iTunes annotation distributions.
type Fig4Result struct {
	Reports    map[analysis.Annotation]*analysis.AnnotationReport
	CrawlStats *daap.CrawlStats
	TotalSongs int
}

// Fig4 reproduces Figure 4(a–d): the iTunes song/genre/album/artist
// distributions. Paper: 64% of songs on a single client; ~1,452 genres
// (8.7% of songs without genre, 56% of genres on one peer); 32,353 albums
// (8.1% w/o album, 65.7% unreplicated); 25,309 artists (65% on one peer).
func Fig4(e *Env) (*Fig4Result, error) {
	tr, st, err := e.SongTrace()
	if err != nil {
		return nil, err
	}
	out := &Fig4Result{
		Reports:    map[analysis.Annotation]*analysis.AnnotationReport{},
		CrawlStats: st,
		TotalSongs: len(tr.Records),
	}
	for _, a := range []analysis.Annotation{
		analysis.AnnotationSong, analysis.AnnotationGenre,
		analysis.AnnotationAlbum, analysis.AnnotationArtist,
	} {
		rep, err := analysis.Annotations(tr, a)
		if err != nil {
			return nil, err
		}
		out.Reports[a] = rep
	}
	return out, nil
}

// RareObjectResult is the §VI check against the Loo et al. rare-query rule.
type RareObjectResult struct {
	FracAtLeast20 float64 // paper: fewer than 4% of objects on ≥20 peers
	MeanReplicas  float64
}

// RareObjectFraction reproduces the §VI statistic: the fraction of objects
// replicated on 20 or more peers.
func RareObjectFraction(e *Env) (*RareObjectResult, error) {
	tr, _, err := e.ObjectTrace()
	if err != nil {
		return nil, err
	}
	rep := analysis.Replicas(tr, false)
	mean := 0.0
	if rep.Unique > 0 {
		mean = float64(rep.TotalPlacements) / float64(rep.Unique)
	}
	return &RareObjectResult{
		FracAtLeast20: rep.FracAtLeast(20),
		MeanReplicas:  mean,
	}, nil
}

// FormatDist renders a DistResult for reports.
func FormatDist(r *DistResult) string {
	return fmt.Sprintf("%s: unique=%d placements=%d singleton=%.1f%% ≤37peers=%.1f%% zipf_s=%.2f (crawl %s)",
		r.Label, r.Report.Unique, r.Report.TotalPlacements,
		100*r.SingletonFrac, 100*r.FracAtMost37, r.Report.Fit.S, r.CrawlStats)
}
