package experiments

import (
	"fmt"

	"querycentric/internal/catalog"
	"querycentric/internal/churn"
	"querycentric/internal/crawler"
	"querycentric/internal/faults"
	"querycentric/internal/gnet"
	"querycentric/internal/parallel"
	"querycentric/internal/rng"
)

// FaultPoint is the measurement at one fault rate: how much of the
// population the crawl still covers, how it degrades, and how flooded
// queries fare under the same loss.
type FaultPoint struct {
	Rate float64
	// Crawl funnel, as fractions of the peer population.
	Coverage    float64 // fully crawled peers / population
	PartialFrac float64 // partial-browse peers / population
	FailedFrac  float64 // peers lost entirely / population
	Retried     int     // retry attempts the crawler performed
	// RecordFrac is trace records observed vs. the fault-free crawl: the
	// trace-bias measure for Figures 1–4 (a lossy crawl undercounts
	// replicas and terms by exactly this factor).
	RecordFrac float64
	// FloodSuccess is the fraction of flooded known-item queries that
	// returned at least one hit (the Figure 8 degradation).
	FloodSuccess float64
}

// FaultSweepResult sweeps fault rates against crawl coverage and flood
// success, quantifying how much trace bias a lossy network introduces
// into the paper's measurements.
type FaultSweepResult struct {
	Peers       int
	DeadFrac    float64 // fraction of peers offline under the churn mask
	MaxAttempts int
	Points      []FaultPoint
}

// DefaultFaultRates is the sweep grid used when the caller passes none.
var DefaultFaultRates = []float64{0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5}

// FaultSweepConfig tunes the sweep.
type FaultSweepConfig struct {
	// Rates are the fault rates to sweep; nil uses DefaultFaultRates.
	// Each rate r maps to faults.Config{DialTimeout: r, HandshakeStall:
	// r/2, ConnReset: r/2, TruncateWrite: r/2, PeerDepart: r/4,
	// MessageLoss: r}.
	Rates []float64
	// DeadFrac, when positive, additionally marks a churn-sampled
	// fraction of peers offline for every non-zero rate (the liveness
	// mask shared with internal/churn).
	DeadFrac float64
	// MaxAttempts is the crawler's per-peer attempt budget (0 → 3).
	MaxAttempts int
}

// FaultSweep runs the sweep with default configuration.
func FaultSweep(e *Env) (*FaultSweepResult, error) {
	return FaultSweepWith(e, FaultSweepConfig{})
}

// FaultSweepWith crawls and floods one calibrated population under
// increasing substrate fault rates. The rate-zero point is provably
// identical to the fault-free substrate (the plane is inert), so the
// curve reads directly as degradation relative to the paper's ideal
// crawl.
func FaultSweepWith(e *Env, cfg FaultSweepConfig) (*FaultSweepResult, error) {
	rates := cfg.Rates
	if rates == nil {
		rates = DefaultFaultRates
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	cat, err := catalog.Build(catalog.Config{
		Seed:                e.Seed,
		Peers:               e.P.GnutellaPeers,
		UniqueObjects:       e.P.UniqueObjects,
		ReplicaAlpha:        2.45,
		VariantProb:         0.08,
		NonSpecificPeerFrac: 0.05,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: building catalog: %w", err)
	}

	res := &FaultSweepResult{
		Peers:       e.P.GnutellaPeers,
		DeadFrac:    cfg.DeadFrac,
		MaxAttempts: cfg.MaxAttempts,
	}
	queries := e.P.SimTrials / 4
	if queries < 50 {
		queries = 50
	}
	if queries > 300 {
		queries = 300
	}

	cleanRecords := 0
	for i, rate := range rates {
		if rate < 0 || rate > 1 {
			return nil, fmt.Errorf("experiments: fault rate %g out of range", rate)
		}
		gcfg := gnet.DefaultConfig(e.Seed)
		gcfg.FirewalledFrac = e.P.FirewalledFrac
		nw, err := gnet.NewFromCatalog(gcfg, cat)
		if err != nil {
			return nil, fmt.Errorf("experiments: building network: %w", err)
		}
		e.instrumentNetwork(nw)
		if rate > 0 {
			plane := faults.New(faults.Config{
				Seed:           e.Seed + uint64(i),
				DialTimeout:    rate,
				HandshakeStall: rate / 2,
				ConnReset:      rate / 2,
				TruncateWrite:  rate / 2,
				PeerDepart:     rate / 4,
				MessageLoss:    rate,
			})
			if cfg.DeadFrac > 0 {
				// Session churn: offline peers time out and drop floods.
				mask, err := churn.OnlineMask(e.Seed, len(nw.Peers), 1-cfg.DeadFrac, cfg.DeadFrac)
				if err != nil {
					return nil, err
				}
				plane.SetLiveness(mask)
			}
			e.instrumentFaults(plane)
			nw.SetFaults(plane)
		}

		ccfg := crawler.DefaultConfig()
		ccfg.Obs = e.Obs
		ccfg.Seed = e.Seed
		ccfg.MaxAttempts = cfg.MaxAttempts
		ccfg.BackoffBase = 0 // bounded retries; no wall-clock waits in experiments
		// A production crawler bootstraps from several addresses so one
		// dead seed cannot zero the crawl; spread four across the
		// population.
		for s := 0; s < 4; s++ {
			ccfg.Seeds = append(ccfg.Seeds, nw.Peers[s*len(nw.Peers)/4].Addr)
		}
		tr, st, err := crawler.Crawl(nw, ccfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: crawling at rate %g: %w", rate, err)
		}
		if rate == 0 {
			cleanRecords = len(tr.Records)
		}

		pt := FaultPoint{
			Rate:        rate,
			Coverage:    float64(st.Crawled) / float64(len(nw.Peers)),
			PartialFrac: float64(st.PartialBrowses) / float64(len(nw.Peers)),
			FailedFrac:  float64(st.Failed) / float64(len(nw.Peers)),
			Retried:     st.Retried,
		}
		if cleanRecords > 0 {
			pt.RecordFrac = float64(len(tr.Records)) / float64(cleanRecords)
		}
		pt.FloodSuccess = floodSuccess(nw, queries, e.Seed+uint64(i), e.workers())
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// floodSuccess floods known-item queries (an existing file name, held by
// at least one other peer) from random live origins and reports the hit
// fraction — the crawl-independent flood-degradation measure. Query q
// draws everything (origin, target, flood randomness) from the derived
// stream "trial/q" and each worker floods through its own context, so the
// fraction is byte-identical at every worker count.
func floodSuccess(nw *gnet.Network, queries int, seed uint64, workers int) float64 {
	base := rng.NewNamed(seed, "experiments/faultsweep-queries")
	plane := nw.Faults()
	found, _ := parallel.MapWith(workers, queries,
		func() *gnet.FloodCtx { return nw.NewFloodCtx() },
		func(ctx *gnet.FloodCtx, q int) (bool, error) {
			r := base.Derive(fmt.Sprintf("trial/%d", q))
			origin := pickAlive(nw, plane, r, -1)
			target := pickAlive(nw, plane, r, origin)
			if origin < 0 || target < 0 {
				return false, nil
			}
			lib := nw.Peers[target].Library
			criteria := lib[r.Intn(len(lib))].Name
			res, err := ctx.Flood(origin, criteria, 4, r)
			// Flood errors count as misses, as in the sequential sweep.
			return err == nil && res.TotalResults > 0, nil
		})
	hits := 0
	for _, f := range found {
		if f {
			hits++
		}
	}
	return float64(hits) / float64(queries)
}

// pickAlive draws a live, non-empty-library peer distinct from exclude
// (bounded rejection sampling; -1 when none found).
func pickAlive(nw *gnet.Network, plane *faults.Plane, r *rng.Source, exclude int) int {
	n := len(nw.Peers)
	for tries := 0; tries < 4*n; tries++ {
		id := r.Intn(n)
		if id == exclude || !plane.Alive(id) || len(nw.Peers[id].Library) == 0 {
			continue
		}
		return id
	}
	return -1
}
