package experiments

import (
	"fmt"

	"querycentric/internal/capacity"
	"querycentric/internal/catalog"
	"querycentric/internal/events"
	"querycentric/internal/gnet"
)

// Saturation measures graceful degradation under flash-crowd overload:
// the same flash-crowd scenario swept over offered load, once per
// capacity arm — unbounded queues (the infinite-capacity assumption every
// prior message-cost number silently made), drop-tail shedding, random
// early drop, and TTL-aware shedding with circuit breakers. The unbounded
// arm's per-query message cost explodes past the saturation knee (growing
// backlog makes answers untimely, and untimely queries retry at full
// flood cost) while the bounded arms cap cost at the queue bound and
// trade it for a smooth success decline — with TTL-aware shedding keeping
// near-origin delivery alive where drop-tail blacks out entire rings.

// Saturation arm indices, in sweep and rendering order.
const (
	armUnbounded = iota
	armDropTail
	armRED
	armTTL
	armCount
)

// armPolicies maps arm index to its shedding policy.
var armPolicies = [armCount]capacity.Policy{
	capacity.Unbounded, capacity.DropTail, capacity.RED, capacity.TTLAware,
}

// armName labels an arm in tables and series prefixes.
func armName(arm int) string {
	return armPolicies[arm].String()
}

// SaturationConfig tunes the sweep.
type SaturationConfig struct {
	// Loads is the offered-load sweep in base queries per window, strictly
	// increasing. The flash crowd multiplies each by Flash.Boost inside the
	// flash interval.
	Loads []int
	// Duration and Window shape the event-engine horizon and the metrics
	// windows.
	Duration int64
	Window   int64
	// BatchesPerWindow spreads each window's queries over this many query
	// events.
	BatchesPerWindow int
	// TTL bounds the measurement floods.
	TTL int
	// Flash shapes the mid-run crowd all arms share.
	Flash events.FlashConfig
	// Capacity is the bounded arms' plane template; Policy and Breakers
	// are overridden per arm (breakers ride on the TTL-aware arm only),
	// and the unbounded arm keeps the same service model with shedding
	// disabled.
	Capacity capacity.Config
	// QueryRetries is the extra flood attempts an untimely query makes —
	// the feedback loop that makes the unbounded arm's cost super-linear.
	QueryRetries int
	// AnswerDeadlineS is the queueing-delay budget for a hit to count.
	AnswerDeadlineS int64
	// Repair shapes the maintenance loop (pings charge the same queues).
	Repair gnet.RepairConfig
	// Arms restricts the sweep to the named arms (policy tokens); empty
	// runs all four.
	Arms []string
}

// DefaultSaturationConfig sweeps a one-hour flash-crowd run over an 81x
// offered-load range: 16-deep queues served at one message per 4
// simulated seconds (a drain rate the lowest load fits under with room
// for keepalives, and the flash at the highest load exceeds severalfold),
// admission folded every 8 queries, two retries per unanswered query, and
// a last-resort 15-of-16 breaker with a one-minute cooldown on the
// TTL-aware arm.
func DefaultSaturationConfig(seed uint64) SaturationConfig {
	rp := gnet.DefaultRepairConfig(seed)
	rp.PingInterval = 300
	ccfg := capacity.DefaultConfig(seed)
	ccfg.ServiceCostMs = 4000
	return SaturationConfig{
		Loads:            []int{40, 120, 360, 1080, 3240},
		Duration:         3600,
		Window:           600,
		BatchesPerWindow: 4,
		TTL:              3,
		Flash:            events.FlashConfig{Start: 1200, End: 2400, Frac: 0.5, Boost: 3},
		Capacity:         ccfg,
		QueryRetries:     1,
		AnswerDeadlineS:  600,
		Repair:           rp,
	}
}

// Validate rejects sweeps that cannot run.
func (c SaturationConfig) Validate() error {
	if len(c.Loads) < 2 {
		return fmt.Errorf("experiments: saturation needs at least 2 loads, got %d", len(c.Loads))
	}
	for i, l := range c.Loads {
		if l < 1 {
			return fmt.Errorf("experiments: saturation load %d must be positive, got %d", i, l)
		}
		if i > 0 && l <= c.Loads[i-1] {
			return fmt.Errorf("experiments: saturation loads must be strictly increasing, got %v", c.Loads)
		}
	}
	if !c.Capacity.Enabled() {
		return fmt.Errorf("experiments: saturation Capacity must be enabled (positive ServiceCostMs)")
	}
	for _, a := range c.Arms {
		if _, err := capacity.ParsePolicy(a); err != nil {
			return fmt.Errorf("experiments: saturation arm: %w", err)
		}
	}
	// The remaining fields are checked by the scenario config each point
	// expands into; validate the most demanding arm once up front.
	return c.scenarioConfig(0, armTTL, c.Loads[0], "probe_").Validate()
}

// scenarioConfig expands one (arm, load) point into its scenario config.
func (c SaturationConfig) scenarioConfig(seed uint64, arm, load int, prefix string) events.ScenarioConfig {
	ccfg := c.Capacity
	ccfg.Policy = armPolicies[arm]
	ccfg.Breakers = arm == armTTL
	flash := c.Flash
	return events.ScenarioConfig{
		Kind:             events.FlashCrowd,
		Seed:             seed,
		Duration:         c.Duration,
		Window:           c.Window,
		QueriesPerWindow: load,
		BatchesPerWindow: c.BatchesPerWindow,
		TTL:              c.TTL,
		Repair:           c.Repair,
		Flash:            &flash,
		Capacity:         &ccfg,
		QueryRetries:     c.QueryRetries,
		AnswerDeadlineS:  c.AnswerDeadlineS,
		SeriesPrefix:     prefix,
	}
}

// SaturationPoint is one (arm, load) measurement.
type SaturationPoint struct {
	// Load is the base offered load in queries per window.
	Load int `json:"load"`
	// Success is mean windowed success across the whole run; FlashSuccess
	// restricts the mean to windows overlapping the flash interval — the
	// number that shows who survives the crowd.
	Success      float64 `json:"success"`
	FlashSuccess float64 `json:"flash_success"`
	// Queries and Messages total the run; MsgPerQuery is their ratio (every
	// retry's floods count toward the query that issued them).
	Queries     int     `json:"queries"`
	Messages    int64   `json:"messages"`
	MsgPerQuery float64 `json:"msg_per_query"`
	// ShedFrac is the shed fraction of all admission attempts; MaxDepth the
	// deepest committed queue; BreakerOpens the breaker transitions.
	ShedFrac     float64 `json:"shed_frac"`
	MaxDepth     int64   `json:"max_depth"`
	BreakerOpens int64   `json:"breaker_opens"`
}

// SaturationArm is one policy's load sweep.
type SaturationArm struct {
	Arm    string            `json:"arm"`
	Points []SaturationPoint `json:"points"`
}

// SaturationResult is the full sweep.
type SaturationResult struct {
	Peers      int             `json:"peers"`
	TTL        int             `json:"ttl"`
	QueueDepth int             `json:"queue_depth"`
	Arms       []SaturationArm `json:"arms"`
}

// Name identifies the saturation sweep.
func (r *SaturationResult) Name() string { return "saturation" }

// Table renders arm x load points in fixed order.
func (r *SaturationResult) Table() [][]string {
	rows := [][]string{{"arm", "load", "success", "flash_success", "msg_per_query", "shed_frac", "max_depth", "breaker_opens"}}
	for _, a := range r.Arms {
		for _, p := range a.Points {
			rows = append(rows, []string{
				a.Arm, fmt.Sprintf("%d", p.Load),
				fmt.Sprintf("%.4f", p.Success), fmt.Sprintf("%.4f", p.FlashSuccess),
				fmt.Sprintf("%.1f", p.MsgPerQuery), fmt.Sprintf("%.4f", p.ShedFrac),
				fmt.Sprintf("%d", p.MaxDepth), fmt.Sprintf("%d", p.BreakerOpens),
			})
		}
	}
	return rows
}

// Peak returns the named arm's point at the highest swept load (nil when
// absent).
func (r *SaturationResult) Peak(arm string) *SaturationPoint {
	for i := range r.Arms {
		if r.Arms[i].Arm == arm && len(r.Arms[i].Points) > 0 {
			return &r.Arms[i].Points[len(r.Arms[i].Points)-1]
		}
	}
	return nil
}

// Saturation runs the sweep with default configuration.
func Saturation(e *Env) (*SaturationResult, error) {
	return SaturationWith(e, DefaultSaturationConfig(e.Seed))
}

// SaturationWith sweeps the flash-crowd scenario over offered load for
// every capacity arm. All points share one catalog; each gets a fresh
// overlay so topology mutations (maintenance under overload degrades
// failure detection) never leak across points.
func SaturationWith(e *Env, cfg SaturationConfig) (*SaturationResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cat, err := catalog.BuildWorkers(catalog.Config{
		Seed:                e.Seed,
		Peers:               e.P.GnutellaPeers,
		UniqueObjects:       e.P.UniqueObjects,
		ReplicaAlpha:        2.45,
		VariantProb:         0.08,
		NonSpecificPeerFrac: 0.05,
	}, e.Workers)
	if err != nil {
		return nil, fmt.Errorf("experiments: building catalog: %w", err)
	}

	res := &SaturationResult{
		Peers:      e.P.GnutellaPeers,
		TTL:        cfg.TTL,
		QueueDepth: cfg.Capacity.QueueDepth,
	}
	wanted := func(arm int) bool {
		if len(cfg.Arms) == 0 {
			return true
		}
		for _, a := range cfg.Arms {
			if a == armName(arm) {
				return true
			}
		}
		return false
	}
	for arm := 0; arm < armCount; arm++ {
		if !wanted(arm) {
			continue
		}
		a := SaturationArm{Arm: armName(arm)}
		for _, load := range cfg.Loads {
			gcfg := gnet.DefaultConfig(e.Seed)
			gcfg.FirewalledFrac = e.P.FirewalledFrac
			nw, err := gnet.NewFromCatalogWorkers(gcfg, cat, e.Workers)
			if err != nil {
				return nil, err
			}
			e.instrumentNetwork(nw)
			prefix := fmt.Sprintf("saturation_%s_%d_", armName(arm), load)
			scfg := cfg.scenarioConfig(e.Seed, arm, load, prefix)
			scfg.Workers = e.Workers
			s, err := events.NewScenario(nw, scfg)
			if err != nil {
				return nil, err
			}
			s.Instrument(e.Obs, e.Windows)
			sr, err := s.Run()
			if err != nil {
				return nil, err
			}
			a.Points = append(a.Points, saturationPoint(load, cfg.Flash, sr))
		}
		res.Arms = append(res.Arms, a)
	}
	return res, nil
}

// saturationPoint folds one scenario run into its sweep point.
func saturationPoint(load int, flash events.FlashConfig, sr *events.ScenarioResult) SaturationPoint {
	p := SaturationPoint{Load: load}
	var succ, flashSucc float64
	var nWin, nFlash int
	for _, w := range sr.Windows {
		succ += w.Success
		nWin++
		if w.Start < flash.End && w.End > flash.Start {
			flashSucc += w.Success
			nFlash++
		}
		p.Queries += w.Queries
		p.Messages += w.Messages
	}
	if nWin > 0 {
		p.Success = succ / float64(nWin)
	}
	if nFlash > 0 {
		p.FlashSuccess = flashSucc / float64(nFlash)
	}
	if p.Queries > 0 {
		p.MsgPerQuery = float64(p.Messages) / float64(p.Queries)
	}
	if st := sr.Capacity; st != nil {
		if att := st.Enqueued + st.Shed; att > 0 {
			p.ShedFrac = float64(st.Shed) / float64(att)
		}
		p.MaxDepth = st.MaxDepth
		p.BreakerOpens = st.BreakerOpens
	}
	return p
}
