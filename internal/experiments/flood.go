package experiments

import (
	"fmt"
	"math"

	"querycentric/internal/hybrid"
	"querycentric/internal/overlay"
	"querycentric/internal/rng"
	"querycentric/internal/search"
)

// MaxTTL is the deepest flood the paper sweeps.
const MaxTTL = 5

// TTLCoverageResult is the §V table: mean fraction of peers processed per
// TTL, plus the mean query hop count (paper: 2.47 hops in 2006).
type TTLCoverageResult struct {
	Nodes     int
	Fractions []float64 // index 0 = TTL 1
	MeanHops  float64
}

// TTLCoverage reproduces the §V coverage table: on a 40,000-node
// Gnutella-like network, TTL 1..5 floods reach ≈0.05%, ~0.3%, ~2.6%,
// 26.25% and 82.95% of peers.
func TTLCoverage(e *Env) (*TTLCoverageResult, error) {
	g, err := overlay.NewGnutella(e.P.SimNodes, overlay.DefaultGnutellaConfig(), e.Seed+2)
	if err != nil {
		return nil, err
	}
	samples := e.P.SimTrials / 10
	if samples < 20 {
		samples = 20
	}
	fracs, err := overlay.CoverageStatsN(g, MaxTTL, samples, e.Seed+3, e.workers())
	if err != nil {
		return nil, err
	}
	hops, err := overlay.MeanQueryHopsN(g, 3, samples, e.Seed+4, e.workers())
	if err != nil {
		return nil, err
	}
	return &TTLCoverageResult{Nodes: e.P.SimNodes, Fractions: fracs, MeanHops: hops}, nil
}

// Fig8Curve is one success-rate curve of Figure 8.
type Fig8Curve struct {
	Label    string
	Replicas int       // 0 for the Zipf curve
	Success  []float64 // index 0 = TTL 1
}

// Fig8Result holds every curve of Figure 8.
type Fig8Result struct {
	Nodes       int
	Curves      []Fig8Curve
	ZipfMean    float64 // measured mean replicas of the Zipf placement
	ZipfAtTTL3  float64
	Uni39AtTTL3 float64
}

// fig8UniformReplicas are the paper's uniform replica counts at 40,000
// nodes; other scales use the same replication ratios.
var fig8UniformReplicas = []int{1, 4, 9, 19, 39}

// Fig8 reproduces Figure 8: flood success rates for uniform placements
// (r ∈ {1,4,9,19,39} at 40,000 nodes) and the measured Zipf placement, for
// TTL 1..5. The paper's shape: the Zipf curve tracks the sparsest uniform
// curves; at TTL 3 Zipf succeeds ≈5% while the 0.1%-uniform model predicts
// ≈62%.
func Fig8(e *Env) (*Fig8Result, error) {
	nodes := e.P.SimNodes
	g, err := overlay.NewGnutella(nodes, overlay.DefaultGnutellaConfig(), e.Seed+5)
	if err != nil {
		return nil, err
	}
	out := &Fig8Result{Nodes: nodes}
	objects := 300
	trials := e.P.SimTrials
	pick := func(r *rng.Source) int { return r.Intn(objects) }

	for _, base := range fig8UniformReplicas {
		reps := scaleReplicas(base, nodes)
		p, err := search.UniformPlacement(nodes, objects, reps, e.Seed+6)
		if err != nil {
			return nil, err
		}
		eng, err := search.NewEngine(g, p)
		if err != nil {
			return nil, err
		}
		curve := Fig8Curve{Label: fmt.Sprintf("uniform-%d", base), Replicas: reps}
		for ttl := 1; ttl <= MaxTTL; ttl++ {
			rate, err := eng.SuccessRateN(ttl, trials, pick, e.Seed+7+uint64(ttl), e.workers())
			if err != nil {
				return nil, err
			}
			curve.Success = append(curve.Success, rate)
		}
		if base == 39 {
			out.Uni39AtTTL3 = curve.Success[2]
		}
		out.Curves = append(out.Curves, curve)
	}

	zp, err := search.ZipfPlacement(nodes, objects, 2.45, nodes/10, e.Seed+8)
	if err != nil {
		return nil, err
	}
	eng, err := search.NewEngine(g, zp)
	if err != nil {
		return nil, err
	}
	curve := Fig8Curve{Label: "zipf"}
	for ttl := 1; ttl <= MaxTTL; ttl++ {
		rate, err := eng.SuccessRateN(ttl, trials, pick, e.Seed+20+uint64(ttl), e.workers())
		if err != nil {
			return nil, err
		}
		curve.Success = append(curve.Success, rate)
	}
	out.ZipfAtTTL3 = curve.Success[2]
	out.ZipfMean = zp.MeanReplicas()
	out.Curves = append(out.Curves, curve)
	return out, nil
}

// scaleReplicas converts a 40,000-node replica count into the equivalent
// replication ratio at the simulated size.
func scaleReplicas(base, nodes int) int {
	r := int(math.Round(float64(base) * float64(nodes) / 40000))
	if r < 1 {
		r = 1
	}
	if r > nodes {
		r = nodes
	}
	return r
}

// HybridVsDHTResult is the §V/§VII comparison.
type HybridVsDHTResult struct {
	Nodes      int
	Comparison *hybrid.Comparison
}

// HybridVsDHT reproduces the hybrid-vs-DHT claim: under the observed Zipf
// placement, a hybrid system's TTL-3 flood almost always fails the
// rare-query test, so it pays flood + DHT and ends up costlier than a pure
// DHT at equal success.
func HybridVsDHT(e *Env) (*HybridVsDHTResult, error) {
	nodes := e.P.SimNodes / 8
	if nodes < 500 {
		nodes = 500
	}
	g, err := overlay.NewGnutella(nodes, overlay.DefaultGnutellaConfig(), e.Seed+30)
	if err != nil {
		return nil, err
	}
	objects := 200
	p, err := search.ZipfPlacement(nodes, objects, 2.45, nodes/10, e.Seed+31)
	if err != nil {
		return nil, err
	}
	sys, err := hybrid.New(g, p, e.Seed+32)
	if err != nil {
		return nil, err
	}
	trials := e.P.SimTrials / 2
	if trials < 100 {
		trials = 100
	}
	cmp, err := sys.Compare(hybrid.DefaultConfig(), trials,
		func(r *rng.Source) int { return r.Intn(objects) }, e.Seed+33)
	if err != nil {
		return nil, err
	}
	return &HybridVsDHTResult{Nodes: nodes, Comparison: cmp}, nil
}
