package experiments

import (
	"testing"

	"querycentric/internal/analysis"
)

// One tiny Env shared by all tests: building it exercises catalog, gnet,
// crawler, daap and querygen end to end.
func tinyEnv(t *testing.T) *Env {
	t.Helper()
	return NewEnv(ScaleTiny, 42)
}

func TestScaleParsing(t *testing.T) {
	for _, name := range []string{"tiny", "small", "default", "full", ""} {
		if _, err := ParseScale(name); err != nil {
			t.Errorf("ParseScale(%q): %v", name, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("unknown scale accepted")
	}
	if ScaleTiny.String() != "tiny" || Scale(9).String() == "" {
		t.Error("Scale.String broken")
	}
}

func TestFig123Shapes(t *testing.T) {
	e := tinyEnv(t)
	f1, err := Fig1(e)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Fig2(e)
	if err != nil {
		t.Fatal(err)
	}
	f3, err := Fig3(e)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 1 shape: most objects unreplicated, nearly all on ≤37 peers.
	if f1.SingletonFrac < 0.55 || f1.SingletonFrac > 0.90 {
		t.Errorf("fig1 singleton = %v, want ~0.70", f1.SingletonFrac)
	}
	if f1.FracAtMost37 < 0.97 {
		t.Errorf("fig1 ≤37-peer fraction = %v, want ≥0.97", f1.FracAtMost37)
	}
	// Figure 2 shape: sanitization merges variants, reducing uniques.
	if f2.Report.Unique >= f1.Report.Unique {
		t.Errorf("sanitized uniques %d not below raw %d", f2.Report.Unique, f1.Report.Unique)
	}
	// Figure 3 shape: far fewer terms than names; Zipf-ish fit.
	if f3.Report.Unique >= f1.Report.Unique {
		t.Errorf("terms %d not fewer than names %d", f3.Report.Unique, f1.Report.Unique)
	}
	if f3.Report.FitErr != nil {
		t.Errorf("fig3 fit error: %v", f3.Report.FitErr)
	}
	if f1.Report.Fit.S < 0.3 {
		t.Errorf("fig1 zipf exponent %v suspiciously flat", f1.Report.Fit.S)
	}
	if FormatDist(f1) == "" {
		t.Error("FormatDist empty")
	}
}

func TestFig4Shapes(t *testing.T) {
	e := tinyEnv(t)
	f4, err := Fig4(e)
	if err != nil {
		t.Fatal(err)
	}
	song := f4.Reports[analysis.AnnotationSong]
	if song.SingletonFrac < 0.45 || song.SingletonFrac > 0.85 {
		t.Errorf("song singleton = %v, want ~0.64", song.SingletonFrac)
	}
	genre := f4.Reports[analysis.AnnotationGenre]
	if genre.MissingFrac < 0.04 || genre.MissingFrac > 0.14 {
		t.Errorf("no-genre fraction = %v, want ~0.087", genre.MissingFrac)
	}
	album := f4.Reports[analysis.AnnotationAlbum]
	if album.MissingFrac < 0.04 || album.MissingFrac > 0.13 {
		t.Errorf("no-album fraction = %v, want ~0.081", album.MissingFrac)
	}
	artist := f4.Reports[analysis.AnnotationArtist]
	if artist.Unique == 0 || artist.Unique >= song.Unique {
		t.Errorf("artists %d vs songs %d", artist.Unique, song.Unique)
	}
	if f4.CrawlStats.Collected == 0 || f4.CrawlStats.Firewalled == 0 {
		t.Errorf("funnel degenerate: %s", f4.CrawlStats)
	}
}

func TestFig5Shape(t *testing.T) {
	e := tinyEnv(t)
	f5, err := Fig5(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, iv := range Fig5Intervals {
		sum, ok := f5.SummaryByInterval[iv]
		if !ok {
			t.Fatalf("missing interval %d", iv)
		}
		// Paper: low mean, nonzero variance.
		if sum.Mean > 15 {
			t.Errorf("interval %d: mean transients %v too high", iv, sum.Mean)
		}
	}
	any := false
	for _, pts := range f5.PointsByInterval {
		for _, p := range pts {
			if p.Count > 0 {
				any = true
			}
		}
	}
	if !any {
		t.Error("no transients detected at any interval")
	}
}

func TestFig6Shape(t *testing.T) {
	e := tinyEnv(t)
	f6, err := Fig6(e)
	if err != nil {
		t.Fatal(err)
	}
	if f6.MeanAfterWarmup < 0.70 {
		t.Errorf("stability mean = %v, want high (paper >0.9 at full scale)", f6.MeanAfterWarmup)
	}
}

func TestFig7Shape(t *testing.T) {
	e := tinyEnv(t)
	f7, err := Fig7(e)
	if err != nil {
		t.Fatal(err)
	}
	if f7.MeanPopular > 0.25 {
		t.Errorf("popular mismatch mean = %v, want < 0.25 (paper <0.20)", f7.MeanPopular)
	}
	if f7.MeanAllTerms > 0.25 {
		t.Errorf("all-terms mismatch mean = %v, want low (paper ~0.05)", f7.MeanAllTerms)
	}
}

func TestRareObjectFraction(t *testing.T) {
	e := tinyEnv(t)
	r, err := RareObjectFraction(e)
	if err != nil {
		t.Fatal(err)
	}
	if r.FracAtLeast20 > 0.04 {
		t.Errorf("fraction on ≥20 peers = %v, paper says <4%%", r.FracAtLeast20)
	}
	if r.MeanReplicas < 1 || r.MeanReplicas > 3 {
		t.Errorf("mean replicas = %v", r.MeanReplicas)
	}
}

func TestTTLCoverageShape(t *testing.T) {
	e := tinyEnv(t)
	c, err := TTLCoverage(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Fractions) != MaxTTL {
		t.Fatalf("%d fractions", len(c.Fractions))
	}
	for i := 1; i < len(c.Fractions); i++ {
		if c.Fractions[i] < c.Fractions[i-1] {
			t.Errorf("coverage not monotone: %v", c.Fractions)
		}
	}
	// TTL-1 tiny, TTL-5 large (paper: 0.05% → 82.95%).
	if c.Fractions[0] > 0.05 {
		t.Errorf("TTL-1 coverage = %v, want small", c.Fractions[0])
	}
	if c.Fractions[4] < 0.4 {
		t.Errorf("TTL-5 coverage = %v, want large", c.Fractions[4])
	}
	if c.MeanHops < 1 || c.MeanHops > 3.5 {
		t.Errorf("mean hops = %v (paper: 2.47)", c.MeanHops)
	}
}

func TestFig8Shape(t *testing.T) {
	e := tinyEnv(t)
	f8, err := Fig8(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(f8.Curves) != len(fig8UniformReplicas)+1 {
		t.Fatalf("%d curves", len(f8.Curves))
	}
	for _, c := range f8.Curves {
		for i := 1; i < len(c.Success); i++ {
			if c.Success[i]+0.02 < c.Success[i-1] {
				t.Errorf("curve %s not monotone: %v", c.Label, c.Success)
			}
		}
	}
	// Who wins: denser uniform placements dominate sparser, comparing the
	// whole curves (single-TTL points can saturate at small scales).
	sum := func(c Fig8Curve) float64 {
		s := 0.0
		for _, v := range c.Success {
			s += v
		}
		return s
	}
	if u1, u39 := sum(f8.Curves[0]), sum(f8.Curves[4]); u39 <= u1 {
		t.Errorf("uniform-39 curve sum %v not above uniform-1 %v", u39, u1)
	}
	// The paper's headline: Zipf TTL-3 success far below the uniform-39.
	if f8.ZipfAtTTL3 >= f8.Uni39AtTTL3 {
		t.Errorf("Zipf TTL3 %v not below uniform-39 TTL3 %v", f8.ZipfAtTTL3, f8.Uni39AtTTL3)
	}
	if f8.ZipfMean < 1 || f8.ZipfMean > 3 {
		t.Errorf("Zipf placement mean = %v, want ~1.5", f8.ZipfMean)
	}
}

func TestHybridVsDHTShape(t *testing.T) {
	e := tinyEnv(t)
	h, err := HybridVsDHT(e)
	if err != nil {
		t.Fatal(err)
	}
	c := h.Comparison
	if c.HybridSuccess < 0.99 || c.DHTSuccess < 0.99 {
		t.Errorf("success: hybrid=%v dht=%v", c.HybridSuccess, c.DHTSuccess)
	}
	if c.HybridMeanCost <= c.DHTMeanCost {
		t.Errorf("hybrid cost %v not above DHT %v", c.HybridMeanCost, c.DHTMeanCost)
	}
	if c.DHTFallbackFrac < 0.85 {
		t.Errorf("fallback fraction = %v, want near 1", c.DHTFallbackFrac)
	}
}

func TestSynopsisAblationShape(t *testing.T) {
	e := tinyEnv(t)
	s, err := SynopsisAblation(e)
	if err != nil {
		t.Fatal(err)
	}
	if s.AdaptiveSuccess <= s.StaticSuccess {
		t.Errorf("adaptive %v not above static %v", s.AdaptiveSuccess, s.StaticSuccess)
	}
	if s.FloodSuccess < s.AdaptiveSuccess-0.05 {
		t.Errorf("flood upper bound %v below adaptive %v", s.FloodSuccess, s.AdaptiveSuccess)
	}
}

func TestGiaComparisonShape(t *testing.T) {
	e := tinyEnv(t)
	g, err := GiaComparison(e)
	if err != nil {
		t.Fatal(err)
	}
	if g.ZipfSuccess >= g.UniformSuccess {
		t.Errorf("Gia Zipf success %v not below uniform %v", g.ZipfSuccess, g.UniformSuccess)
	}
	if g.UniformSuccess < 0.4 {
		t.Errorf("Gia uniform success %v unexpectedly weak", g.UniformSuccess)
	}
}

func TestDHTRoutingShape(t *testing.T) {
	e := tinyEnv(t)
	r, err := DHTRouting(e)
	if err != nil {
		t.Fatal(err)
	}
	if r.ChordMeanHops <= 0 || r.PastryMeanHops <= 0 {
		t.Fatalf("degenerate hop counts: %+v", r)
	}
	// Pastry's 16-way branching routes in fewer hops than Chord's binary.
	if r.PastryMeanHops >= r.ChordMeanHops {
		t.Errorf("pastry %.2f hops not below chord %.2f", r.PastryMeanHops, r.ChordMeanHops)
	}
}

func TestQRPEffectShape(t *testing.T) {
	e := tinyEnv(t)
	r, err := QRPEffect(e)
	if err != nil {
		t.Fatal(err)
	}
	// QRP must not lose any successful query (no false negatives)...
	if r.QRPSuccess < r.PlainSuccess-1e-9 {
		t.Errorf("QRP success %v below plain %v", r.QRPSuccess, r.PlainSuccess)
	}
	// ...and must not create success either: it routes on file terms, so
	// mismatched queries stay unanswerable.
	if r.QRPSuccess > r.PlainSuccess+0.02 {
		t.Errorf("QRP success %v above plain %v (?)", r.QRPSuccess, r.PlainSuccess)
	}
	if r.MessageSavings < 0.2 {
		t.Errorf("QRP message savings %v too small", r.MessageSavings)
	}
}

func TestChurnComparisonShape(t *testing.T) {
	e := tinyEnv(t)
	c, err := ChurnComparison(e)
	if err != nil {
		t.Fatal(err)
	}
	if c.ZipfSuccess >= c.UniformSuccess {
		t.Errorf("churned Zipf success %v not below uniform %v", c.ZipfSuccess, c.UniformSuccess)
	}
	if c.MeanOnline < 0.5 || c.MeanOnline > 0.9 {
		t.Errorf("mean online fraction %v outside the session model's range", c.MeanOnline)
	}
	if len(c.UniformSeries) == 0 || len(c.ZipfSeries) == 0 {
		t.Error("empty sample series")
	}
}

func TestWalkVsFloodShape(t *testing.T) {
	e := tinyEnv(t)
	w, err := WalkVsFlood(e)
	if err != nil {
		t.Fatal(err)
	}
	// All mechanisms struggle under Zipf placement; none dominates with an
	// order-of-magnitude success advantage.
	for name, s := range map[string]float64{
		"flood": w.FloodSuccess, "walk": w.WalkSuccess, "ring": w.RingSuccess,
	} {
		if s < 0 || s > 1 {
			t.Errorf("%s success out of range: %v", name, s)
		}
	}
	// The expanding ring must not cost more than a straight TTL-3 flood on
	// *successful* early terminations... at minimum it must record cost.
	if w.RingMessages <= 0 || w.FloodMessages <= 0 || w.WalkMessages <= 0 {
		t.Error("missing message costs")
	}
	// Walkers are budgeted far below the flood: their mean cost must be
	// lower.
	if w.WalkMessages >= w.FloodMessages {
		t.Errorf("walk cost %v not below flood %v", w.WalkMessages, w.FloodMessages)
	}
}

func TestReplicationStrategiesShape(t *testing.T) {
	e := tinyEnv(t)
	r, err := ReplicationStrategies(e)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]float64{}
	for _, row := range r.Rows {
		byKey[row.Strategy+"/"+row.Basis] = row.Success
	}
	// Query-driven allocations must beat uniform under query-weighted load.
	if byKey["square-root/query"] <= byKey["uniform/query"] {
		t.Errorf("query sqrt %v not above uniform %v",
			byKey["square-root/query"], byKey["uniform/query"])
	}
	// The mismatch penalty: file-driven sqrt must lose most of the gain.
	gainQuery := byKey["square-root/query"] - byKey["uniform/query"]
	gainFile := byKey["square-root/file"] - byKey["uniform/query"]
	if gainFile > gainQuery*0.6 {
		t.Errorf("file-driven sqrt kept too much advantage: %v of %v", gainFile, gainQuery)
	}
}

func TestShortcutsExperimentShape(t *testing.T) {
	e := tinyEnv(t)
	r, err := ShortcutsExperiment(e)
	if err != nil {
		t.Fatal(err)
	}
	if r.SteadyHits <= r.WarmupHits*0.8 {
		t.Errorf("steady hit rate %v did not hold up vs warmup %v", r.SteadyHits, r.WarmupHits)
	}
	if r.ShiftedHits >= r.SteadyHits {
		t.Errorf("interest shift did not degrade shortcuts: %v vs %v", r.ShiftedHits, r.SteadyHits)
	}
	if r.SteadyMessages >= r.FloodMessages {
		t.Errorf("shortcuts did not cut cost: %v vs flood %v", r.SteadyMessages, r.FloodMessages)
	}
}

func TestFig6And7Sweeps(t *testing.T) {
	e := tinyEnv(t)
	s6, err := Fig6Sweep(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(s6) != len(Fig5Intervals) {
		t.Fatalf("fig6 sweep has %d points", len(s6))
	}
	for _, p := range s6 {
		if p.MeanValue < 0.6 {
			t.Errorf("stability at %ds = %v, not consistent across intervals", p.Interval, p.MeanValue)
		}
	}
	s7, err := Fig7Sweep(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s7 {
		if p.MeanValue > 0.25 {
			t.Errorf("mismatch at %ds = %v, paper: <0.20 at every interval", p.Interval, p.MeanValue)
		}
	}
}

func TestParamsForScalesMonotone(t *testing.T) {
	prev := Params{}
	for i, s := range []Scale{ScaleTiny, ScaleSmall, ScaleDefault, ScaleFull} {
		p := ParamsFor(s)
		if p.GnutellaPeers <= 0 || p.UniqueObjects <= 0 || p.Queries <= 0 || p.SimNodes <= 0 {
			t.Fatalf("%s: degenerate params %+v", s, p)
		}
		if i > 0 {
			if p.GnutellaPeers < prev.GnutellaPeers || p.UniqueObjects < prev.UniqueObjects ||
				p.Queries < prev.Queries || p.SimNodes < prev.SimNodes {
				t.Errorf("%s params not monotone vs previous scale", s)
			}
		}
		prev = p
	}
	full := ParamsFor(ScaleFull)
	if full.GnutellaPeers != 37572 || full.UniqueObjects != 8100000 {
		t.Errorf("full scale does not match the paper: %+v", full)
	}
}

func TestFaultSweepShape(t *testing.T) {
	e := tinyEnv(t)
	res, err := FaultSweepWith(e, FaultSweepConfig{Rates: []float64{0, 0.4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("%d sweep points", len(res.Points))
	}
	clean, faulted := res.Points[0], res.Points[1]
	// The rate-zero point is the inert plane: full coverage, full record
	// count, no retries, nothing partial or failed.
	if clean.Coverage+clean.PartialFrac < 0.999 {
		t.Errorf("clean coverage = %v (+%v partial), want ~1 of non-firewalled reachable",
			clean.Coverage, clean.PartialFrac)
	}
	if clean.RecordFrac != 1 {
		t.Errorf("clean record fraction = %v, want exactly 1", clean.RecordFrac)
	}
	if clean.Retried != 0 || clean.FailedFrac != 0 || clean.PartialFrac != 0 {
		t.Errorf("clean point shows fault activity: %+v", clean)
	}
	if clean.FloodSuccess < 0.8 {
		t.Errorf("clean flood success = %v for known-item queries", clean.FloodSuccess)
	}
	// At a 40% fault rate the crawl degrades and the crawler works for it.
	if faulted.Coverage >= clean.Coverage {
		t.Errorf("faulted coverage %v not below clean %v", faulted.Coverage, clean.Coverage)
	}
	if faulted.RecordFrac >= 1 {
		t.Errorf("faulted record fraction %v not below 1", faulted.RecordFrac)
	}
	if faulted.Retried == 0 {
		t.Error("no retries at a 40% fault rate")
	}
	if faulted.FloodSuccess > clean.FloodSuccess {
		t.Errorf("flood success improved under 40%% loss: %v vs %v",
			faulted.FloodSuccess, clean.FloodSuccess)
	}
}

func TestFaultSweepDeterministic(t *testing.T) {
	cfg := FaultSweepConfig{Rates: []float64{0.3}, DeadFrac: 0.2}
	a, err := FaultSweepWith(tinyEnv(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FaultSweepWith(tinyEnv(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Points[0] != b.Points[0] {
		t.Errorf("sweep not deterministic: %+v vs %+v", a.Points[0], b.Points[0])
	}
}

func TestFaultSweepRejectsBadRates(t *testing.T) {
	e := tinyEnv(t)
	for _, rates := range [][]float64{{-0.1}, {1.5}} {
		if _, err := FaultSweepWith(e, FaultSweepConfig{Rates: rates}); err == nil {
			t.Errorf("rate set %v accepted", rates)
		}
	}
}

func TestFig7RankCorrelationLow(t *testing.T) {
	e := tinyEnv(t)
	f7, err := Fig7(e)
	if err != nil {
		t.Fatal(err)
	}
	// The companion statistic: popularity orders are weakly related.
	if f7.RankCorrelation > 0.5 || f7.RankCorrelation < -0.5 {
		t.Errorf("rank correlation = %v, want weak (|ρ| ≤ 0.5)", f7.RankCorrelation)
	}
}
