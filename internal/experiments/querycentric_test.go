package experiments

import (
	"encoding/json"
	"testing"

	"querycentric/internal/obs"
)

// TestQueryCentric pins the experiment's headline claims at tiny scale:
// the adaptive overlay recovers at least twice the static TTL-3 success at
// equal or lower message cost, QRP trims messages without moving success,
// and Chord resolves everything.
func TestQueryCentric(t *testing.T) {
	e := NewEnv(ScaleTiny, 42)
	res, err := QueryCentric(e)
	if err != nil {
		t.Fatal(err)
	}
	static, qrp := res.Arm("static-flood"), res.Arm("qrp")
	adaptiveArm, chordArm := res.Arm("adaptive"), res.Arm("chord")
	if static == nil || qrp == nil || adaptiveArm == nil || chordArm == nil || res.Arm("shortcuts") == nil {
		t.Fatalf("missing arms: %+v", res.Arms)
	}
	if static.Success <= 0.05 || static.Success >= 0.6 {
		t.Fatalf("static baseline %v outside the mismatch regime", static.Success)
	}
	if res.AdaptiveGain < 2 {
		t.Errorf("adaptive gain %.2f below the 2x recovery bar (adaptive %v vs static %v)",
			res.AdaptiveGain, adaptiveArm.Success, static.Success)
	}
	if adaptiveArm.MeanMessages > static.MeanMessages {
		t.Errorf("adaptive cost %v above static %v", adaptiveArm.MeanMessages, static.MeanMessages)
	}
	if adaptiveArm.Rewires == 0 || adaptiveArm.Replicas == 0 {
		t.Errorf("adaptive arm did not adapt: %+v", adaptiveArm)
	}
	if qrp.Success != static.Success {
		t.Errorf("QRP moved success: %v vs static %v", qrp.Success, static.Success)
	}
	if qrp.MeanMessages >= static.MeanMessages {
		t.Errorf("QRP saved no messages: %v vs static %v", qrp.MeanMessages, static.MeanMessages)
	}
	if chordArm.Success != 1 {
		t.Errorf("chord success %v, want 1", chordArm.Success)
	}

	rows := res.Table()
	if len(rows) != 7 { // header + five arms + gain row
		t.Fatalf("table has %d rows, want 7", len(rows))
	}
	for i, row := range rows {
		if len(row) != len(rows[0]) {
			t.Fatalf("row %d has %d columns, want %d", i, len(row), len(rows[0]))
		}
	}
}

// TestQueryCentricMetricsInert pins the observability contract for the new
// experiment: attaching a registry changes nothing, and the adaptive arm's
// counters land in it.
func TestQueryCentricMetricsInert(t *testing.T) {
	run := func(withObs bool) ([]byte, *obs.Registry) {
		e := NewEnv(ScaleTiny, 42)
		e.Workers = 2
		if withObs {
			e.Obs = obs.NewRegistry()
		}
		res, err := QueryCentric(e)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return raw, e.Obs
	}
	bare, _ := run(false)
	instrumented, reg := run(true)
	if string(bare) != string(instrumented) {
		t.Fatalf("attaching metrics changed query-centric results:\n%s\nvs\n%s", bare, instrumented)
	}
	var sawAdaptive bool
	for _, m := range reg.Snapshot().Metrics {
		if m.Name == "adaptive_rewires_total" && m.Value > 0 {
			sawAdaptive = true
		}
	}
	if !sawAdaptive {
		t.Error("instrumented run recorded no adaptive rewires")
	}
}
