package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"querycentric/internal/snapshot"
)

// TestSnapshotRoundTripMatchesFreshBuild is the persistence leg of the
// determinism gate: an environment restored from a snapshot must produce
// figures byte-identical to the environment that saved it. The crawl runs
// against the restored network, so this exercises the full substrate —
// topology, firewalled mask, libraries, dictionary and posting indexes —
// not just the serializer.
func TestSnapshotRoundTripMatchesFreshBuild(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "tiny.qcsnap")

	fingerprint := func(e *Env) []byte {
		t.Helper()
		tr, stats, err := e.ObjectTrace()
		if err != nil {
			t.Fatal(err)
		}
		f1, err := Fig1(e)
		if err != nil {
			t.Fatal(err)
		}
		// Counts is an unordered map spill; sort before fingerprinting.
		counts := append([]int(nil), f1.Report.Counts...)
		sort.Ints(counts)
		f7, err := Fig7(e)
		if err != nil {
			t.Fatal(err)
		}
		// Fold the full record sequence — order included — so the restored
		// network's crawl must match the fresh one observation for
		// observation, not just in aggregate.
		rh := fnv.New64a()
		for _, rec := range tr.Records {
			fmt.Fprintf(rh, "%d\x00%s\x00", rec.Peer, rec.Name)
		}
		b, err := json.Marshal(map[string]any{
			"records":        len(tr.Records),
			"record_hash":    rh.Sum64(),
			"stats":          stats,
			"fig1_label":     f1.Label,
			"fig1_unique":    f1.Report.Unique,
			"fig1_single":    f1.SingletonFrac,
			"fig1_at37":      f1.FracAtMost37,
			"fig1_counts":    counts,
			"fig1_rank_freq": f1.RankFreq,
			"fig7":           f7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	fresh := NewEnv(ScaleTiny, 42)
	fresh.SnapshotSave = snap
	want := fingerprint(fresh)
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}

	loaded := NewEnv(ScaleTiny, 42)
	loaded.SnapshotLoad = snap
	if got := fingerprint(loaded); string(got) != string(want) {
		t.Fatalf("snapshot-restored environment diverged from fresh build:\n%s\nvs\n%s", got, want)
	}

	// A resave of what was just restored must be byte-identical to the
	// original file: the snapshot is a fixed point.
	resnap := filepath.Join(t.TempDir(), "again.qcsnap")
	resave := NewEnv(ScaleTiny, 42)
	resave.SnapshotLoad = snap
	resave.SnapshotSave = resnap
	if _, _, err := resave.ObjectTrace(); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(resnap)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("resaving a restored network changed the snapshot (%d vs %d bytes)", len(b), len(a))
	}
}

// TestSnapshotLoadFailsLoudlyInEnv: a damaged snapshot must abort the
// environment build with a typed snapshot error, never fall back to a
// silent rebuild.
func TestSnapshotLoadFailsLoudlyInEnv(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "tiny.qcsnap")
	e := NewEnv(ScaleTiny, 42)
	e.SnapshotSave = snap
	if _, _, err := e.ObjectTrace(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 1
	if err := os.WriteFile(snap, b, 0o644); err != nil {
		t.Fatal(err)
	}
	bad := NewEnv(ScaleTiny, 42)
	bad.SnapshotLoad = snap
	_, _, err = bad.ObjectTrace()
	if err == nil {
		t.Fatal("ObjectTrace accepted a corrupted snapshot")
	}
	for _, sentinel := range []error{snapshot.ErrFingerprint, snapshot.ErrCorrupt, snapshot.ErrTruncated} {
		if errors.Is(err, sentinel) {
			t.Logf("rejected with: %v", err)
			return
		}
	}
	t.Fatalf("corruption produced an untyped error: %v", err)
}
