package shortcuts

import (
	"testing"

	"querycentric/internal/overlay"
	"querycentric/internal/rng"
	"querycentric/internal/search"
	"querycentric/internal/zipf"
)

func testSystem(t *testing.T, nodes, objects, replicas int) *System {
	t.Helper()
	g, err := overlay.NewGnutella(nodes, overlay.DefaultGnutellaConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := search.UniformPlacement(nodes, objects, replicas, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(g, p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	g, _ := overlay.NewErdosRenyi(10, 4, 1)
	p, _ := search.UniformPlacement(10, 2, 1, 1)
	if _, err := New(g, p, Config{ListSize: 0, TTL: 3}); err == nil {
		t.Error("zero list accepted")
	}
	if _, err := New(g, p, Config{ListSize: 5, TTL: 0}); err == nil {
		t.Error("zero TTL accepted")
	}
	wrong, _ := search.UniformPlacement(20, 2, 1, 1)
	if _, err := New(g, wrong, DefaultConfig()); err == nil {
		t.Error("mismatched placement accepted")
	}
}

func TestSearchValidation(t *testing.T) {
	s := testSystem(t, 100, 10, 3)
	if _, err := s.Search(-1, 0); err == nil {
		t.Error("bad origin accepted")
	}
	if _, err := s.Search(0, 99); err == nil {
		t.Error("bad object accepted")
	}
}

func TestShortcutInstalledAfterFloodSuccess(t *testing.T) {
	s := testSystem(t, 300, 5, 60)
	// Find an origin that doesn't hold object 0.
	origin := 0
	holders := map[int32]bool{}
	for _, h := range s.p.Holders[0] {
		holders[h] = true
	}
	for holders[int32(origin)] {
		origin++
	}
	res, err := s.Search(origin, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Skip("flood missed; placement unlucky at this seed")
	}
	if res.ViaShortcut {
		t.Fatal("first query cannot be a shortcut hit")
	}
	if s.ShortcutLen(origin) != 1 {
		t.Fatalf("shortcut not installed: len=%d", s.ShortcutLen(origin))
	}
	// Second identical query must hit the shortcut at unit cost.
	res2, err := s.Search(origin, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Found || !res2.ViaShortcut {
		t.Errorf("repeat query missed the shortcut: %+v", res2)
	}
	if res2.Messages != 1 {
		t.Errorf("shortcut hit cost %d messages, want 1", res2.Messages)
	}
}

func TestListCapAndDedup(t *testing.T) {
	g, _ := overlay.NewErdosRenyi(50, 4, 5)
	p, _ := search.UniformPlacement(50, 30, 2, 6)
	s, err := New(g, p, Config{ListSize: 3, TTL: 3})
	if err != nil {
		t.Fatal(err)
	}
	for sc := int32(1); sc <= 10; sc++ {
		s.install(0, sc)
	}
	if got := s.ShortcutLen(0); got != 3 {
		t.Fatalf("list length %d, want 3", got)
	}
	// Re-installing an existing shortcut must not duplicate.
	before := s.ShortcutLen(0)
	s.install(0, s.lists[0][1])
	if s.ShortcutLen(0) != before {
		t.Error("duplicate shortcut installed")
	}
}

func TestStableInterestsCutCost(t *testing.T) {
	// A stable Zipf query distribution: after warmup, most queries for
	// popular objects resolve through shortcuts, cutting mean messages.
	const nodes = 400
	g, err := overlay.NewGnutella(nodes, overlay.DefaultGnutellaConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	p, err := search.UniformPlacement(nodes, 50, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(g, p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	qd, err := zipf.New(50, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	pick := func(r *rng.Source) int { return qd.Sample(r) - 1 }
	warm, err := s.RunWorkload(500, pick, 9)
	if err != nil {
		t.Fatal(err)
	}
	steady, err := s.RunWorkload(500, pick, 10)
	if err != nil {
		t.Fatal(err)
	}
	if steady.ShortcutHits <= warm.ShortcutHits {
		t.Errorf("shortcut hit rate did not improve: %v -> %v",
			warm.ShortcutHits, steady.ShortcutHits)
	}
	if steady.MeanMessages >= warm.MeanMessages {
		t.Errorf("mean cost did not drop: %v -> %v", warm.MeanMessages, steady.MeanMessages)
	}
	// Each origin issues only ~2.5 queries across both phases, so the
	// absolute hit rate is modest; the improvement above is the claim.
	if steady.ShortcutHits < 0.15 {
		t.Errorf("steady-state shortcut hit rate %v too low", steady.ShortcutHits)
	}
}

func TestInterestShiftDegradesShortcuts(t *testing.T) {
	// When the popular vocabulary shifts (the paper's transients), warm
	// shortcuts stop helping until relearned.
	const nodes = 400
	g, _ := overlay.NewGnutella(nodes, overlay.DefaultGnutellaConfig(), 11)
	p, _ := search.UniformPlacement(nodes, 100, 8, 12)
	s, err := New(g, p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	qd, _ := zipf.New(50, 1.2)
	oldPick := func(r *rng.Source) int { return qd.Sample(r) - 1 }      // objects 0..49
	newPick := func(r *rng.Source) int { return 50 + qd.Sample(r) - 1 } // objects 50..99
	if _, err := s.RunWorkload(800, oldPick, 13); err != nil {
		t.Fatal(err)
	}
	steady, err := s.RunWorkload(300, oldPick, 14)
	if err != nil {
		t.Fatal(err)
	}
	shifted, err := s.RunWorkload(300, newPick, 15)
	if err != nil {
		t.Fatal(err)
	}
	if shifted.ShortcutHits >= steady.ShortcutHits {
		t.Errorf("interest shift did not degrade shortcuts: %v vs %v",
			shifted.ShortcutHits, steady.ShortcutHits)
	}
}

func BenchmarkShortcutSearch(b *testing.B) {
	g, err := overlay.NewGnutella(2000, overlay.DefaultGnutellaConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	p, err := search.ZipfPlacement(2000, 200, 2.45, 200, 2)
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(g, p, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Search(i%2000, i%200); err != nil {
			b.Fatal(err)
		}
	}
}
