// Package shortcuts implements interest-based shortcuts (Sripanidkulchai,
// Maggs & Zhang, INFOCOM 2003): a query-centric adaptation at the topology
// level. Each peer remembers the peers that answered its past queries and
// tries those shortcuts first; only on a miss does it fall back to
// flooding. Because interests are what queries express, shortcut quality
// tracks the *query* distribution automatically — unlike the annotation-
// driven structures the paper indicts.
//
// The experiment built on this package shows shortcuts sharply cut
// flooding cost while query interests are stable (the paper's Figure 6
// regime) and decay when the popular vocabulary shifts (the Figure 5
// transients), reinforcing the need for temporal awareness.
package shortcuts

import (
	"fmt"

	"querycentric/internal/overlay"
	"querycentric/internal/rng"
	"querycentric/internal/search"
	"querycentric/internal/strategy"
)

// Config tunes the shortcut lists.
type Config struct {
	// ListSize caps each peer's shortcut list (the published system used
	// small lists, ~10).
	ListSize int
	// TTL bounds the fallback flood.
	TTL int
}

// DefaultConfig matches the published setup.
func DefaultConfig() Config { return Config{ListSize: 10, TTL: 3} }

// System layers shortcut lists over a search engine.
type System struct {
	cfg Config
	eng *search.Engine
	g   *overlay.Graph
	p   *search.Placement
	// lists[v] = shortcut peers, most recently useful first.
	lists [][]int32
}

// New builds a shortcut system over graph and placement.
func New(g *overlay.Graph, p *search.Placement, cfg Config) (*System, error) {
	if cfg.ListSize < 1 {
		return nil, fmt.Errorf("shortcuts: ListSize must be at least 1, got %d", cfg.ListSize)
	}
	if cfg.TTL < 1 {
		return nil, fmt.Errorf("shortcuts: TTL must be at least 1, got %d", cfg.TTL)
	}
	eng, err := search.NewEngine(g, p)
	if err != nil {
		return nil, err
	}
	return &System{cfg: cfg, eng: eng, g: g, p: p, lists: make([][]int32, g.N())}, nil
}

// Result extends the search result with how the object was located.
type Result struct {
	search.Result
	ViaShortcut bool
}

// Search tries the origin's shortcuts (one message each), then falls back
// to a TTL-bounded flood. Successful floods install the first responding
// holder as a shortcut (move-to-front, capped list).
func (s *System) Search(origin, obj int) (Result, error) {
	if origin < 0 || origin >= s.g.N() {
		return Result{}, fmt.Errorf("shortcuts: origin %d out of range", origin)
	}
	if obj < 0 || obj >= s.p.Objects() {
		return Result{}, fmt.Errorf("shortcuts: object %d out of range", obj)
	}
	res := Result{}
	holders := make(map[int32]struct{}, len(s.p.Holders[obj]))
	for _, h := range s.p.Holders[obj] {
		holders[h] = struct{}{}
	}
	if _, ok := holders[int32(origin)]; ok {
		res.Found = true
		res.Results = 1
		return res, nil
	}
	// Shortcut probes: one unicast message each.
	for i, sc := range s.lists[origin] {
		res.Messages++
		if _, ok := holders[sc]; ok {
			res.Found = true
			res.Results = 1
			res.ViaShortcut = true
			res.Hops = 1
			s.promote(origin, i)
			return res, nil
		}
	}
	// Fallback flood.
	fl, err := s.eng.Flood(origin, obj, s.cfg.TTL)
	if err != nil {
		return Result{}, err
	}
	res.Found = fl.Found
	res.Hops = fl.Hops
	res.Results = fl.Results
	res.Messages += fl.Messages
	res.Peers = fl.Peers
	if fl.Found {
		// Install the nearest holder as a shortcut. Flood does not report
		// which holder answered first; any holder is a valid interest link.
		s.install(origin, s.p.Holders[obj][0])
	}
	return res, nil
}

// promote moves list entry i to the front (most recently useful).
func (s *System) promote(v, i int) {
	l := s.lists[v]
	sc := l[i]
	copy(l[1:i+1], l[:i])
	l[0] = sc
}

// install prepends a shortcut, deduplicating and trimming to the cap.
func (s *System) install(v int, sc int32) {
	l := s.lists[v]
	for i, existing := range l {
		if existing == sc {
			s.promote(v, i)
			return
		}
	}
	l = append([]int32{sc}, l...)
	if len(l) > s.cfg.ListSize {
		l = l[:s.cfg.ListSize]
	}
	s.lists[v] = l
}

// ShortcutLen returns peer v's current shortcut count (for tests).
func (s *System) ShortcutLen(v int) int { return len(s.lists[v]) }

// Name implements strategy.AdaptivePolicy.
func (s *System) Name() string { return "shortcuts" }

// RunWorkload implements strategy.AdaptivePolicy: queries follow the
// unified workload derivation (see strategy.WorkloadStream), so a shortcut
// run and any other strategy at the same seed observe the identical
// (origin, object) sequence. Shortcut lists warm up and adapt during the
// run and persist across calls.
func (s *System) RunWorkload(queries int, pick func(r *rng.Source) int, seed uint64) (*strategy.Stats, error) {
	if queries < 1 {
		return nil, fmt.Errorf("shortcuts: queries must be positive")
	}
	base := strategy.WorkloadStream(seed)
	st := &strategy.Stats{Queries: queries}
	var hits, scHits, msgs, hops int
	for i := 0; i < queries; i++ {
		r := strategy.QueryStream(base, i)
		res, err := s.Search(r.Intn(s.g.N()), pick(r))
		if err != nil {
			return nil, err
		}
		if res.Found {
			hits++
			hops += res.Hops
			if res.ViaShortcut {
				scHits++
			}
		}
		msgs += res.Messages
	}
	st.Success = float64(hits) / float64(queries)
	if hits > 0 {
		st.ShortcutHits = float64(scHits) / float64(hits)
		st.MeanHops = float64(hops) / float64(hits)
	}
	st.MeanMessages = float64(msgs) / float64(queries)
	return st, nil
}

// The unified interface is implemented.
var _ strategy.AdaptivePolicy = (*System)(nil)
