package namegen

import (
	"strings"
	"testing"

	"querycentric/internal/rng"
	"querycentric/internal/vocab"
)

func testGen(t *testing.T, cfg Config) *Generator {
	t.Helper()
	v, err := vocab.New(vocab.Config{Seed: 1, Artists: 200, Titles: 500, Albums: 100, Genres: 30, Extra: 20})
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(v, cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, DefaultConfig(), 1); err == nil {
		t.Error("expected error for nil vocabulary")
	}
	v, _ := vocab.New(vocab.Config{Seed: 1, Artists: 5, Titles: 5, Albums: 5})
	bad := DefaultConfig()
	bad.MisspellProb = 1.5
	if _, err := New(v, bad, 1); err == nil {
		t.Error("expected error for probability > 1")
	}
}

func TestCanonicalDeterministic(t *testing.T) {
	g := testGen(t, DefaultConfig())
	for i := 0; i < 100; i++ {
		if g.Canonical(i) != g.Canonical(i) {
			t.Fatalf("Canonical(%d) not deterministic", i)
		}
	}
}

func TestCanonicalMostlyDistinct(t *testing.T) {
	g := testGen(t, DefaultConfig())
	seen := map[string]int{}
	for i := 0; i < 5000; i++ {
		seen[g.Canonical(i)]++
	}
	// With 200 artists x 500 titles the collision rate should be small.
	if len(seen) < 4500 {
		t.Errorf("only %d distinct names out of 5000", len(seen))
	}
}

func TestCanonicalHasExtension(t *testing.T) {
	g := testGen(t, DefaultConfig())
	for i := 0; i < 500; i++ {
		name := g.Canonical(i)
		if !strings.Contains(name, ".") {
			t.Fatalf("Canonical(%d) = %q has no extension", i, name)
		}
	}
}

func TestVariantZeroConfigIsIdentity(t *testing.T) {
	g := testGen(t, Config{})
	r := rng.New(1)
	name := "Aaron Neville - I Don't Know Much.mp3"
	for i := 0; i < 50; i++ {
		if got := g.Variant(name, r); got != name {
			t.Fatalf("zero-config variant changed name: %q", got)
		}
	}
}

func TestVariantProducesDiversity(t *testing.T) {
	g := testGen(t, DefaultConfig())
	r := rng.New(2)
	name := "Aaron Neville - I Don't Know Much.mp3"
	variants := map[string]struct{}{}
	for i := 0; i < 200; i++ {
		variants[g.Variant(name, r)] = struct{}{}
	}
	if len(variants) < 10 {
		t.Errorf("only %d distinct variants in 200 draws", len(variants))
	}
	// The unchanged name should still be the most common outcome class:
	// most perturbations are off for any given draw.
	if _, ok := variants[name]; !ok {
		t.Error("identity variant never produced")
	}
}

func TestVariantKeepsSanitizedIdentityMostly(t *testing.T) {
	// Case and punctuation variants must collapse under sanitization
	// (that's what Figure 2 measures). Misspellings and feat-credits do
	// not, so only check the case/punct-only configuration.
	g := testGen(t, Config{CaseVariantProb: 1, PunctVariantProb: 0.5, ExtCaseProb: 1})
	r := rng.New(3)
	name := "Aaron Neville - I Dont Know Much.mp3"
	sanitize := func(s string) string {
		s = strings.ToLower(s)
		var b strings.Builder
		for _, c := range s {
			if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' {
				b.WriteRune(c)
			}
		}
		return b.String()
	}
	want := sanitize(name)
	for i := 0; i < 100; i++ {
		v := g.Variant(name, r)
		if got := sanitize(v); got != want {
			t.Fatalf("case/punct variant %q does not sanitize to canonical: %q vs %q", v, got, want)
		}
	}
}

func TestMisspellChangesString(t *testing.T) {
	r := rng.New(4)
	s := "linda ronstadt"
	changed := 0
	for i := 0; i < 100; i++ {
		if misspell(s, r) != s {
			changed++
		}
	}
	if changed < 80 {
		t.Errorf("misspell left string unchanged %d/100 times", 100-changed)
	}
}

func TestMisspellShortString(t *testing.T) {
	r := rng.New(5)
	if got := misspell("a", r); got != "a" {
		t.Errorf("misspell of 1-letter string = %q", got)
	}
	if got := misspell("-- 12 --", r); got != "-- 12 --" {
		t.Errorf("misspell of letterless string = %q", got)
	}
}

func TestNonSpecific(t *testing.T) {
	g := testGen(t, DefaultConfig())
	r := rng.New(6)
	for i := 0; i < 50; i++ {
		name := g.NonSpecific(r)
		found := false
		for _, n := range NonSpecificNames {
			if n == name {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("NonSpecific returned unknown name %q", name)
		}
	}
}

func TestSplitExt(t *testing.T) {
	tests := []struct{ in, base, ext string }{
		{"a - b.mp3", "a - b", ".mp3"},
		{"noext", "noext", ""},
		{"weird.verylongext", "weird.verylongext", ""},
		{".hidden", ".hidden", ""},
		{"a.b.mp3", "a.b", ".mp3"},
	}
	for _, tc := range tests {
		base, ext := splitExt(tc.in)
		if base != tc.base || ext != tc.ext {
			t.Errorf("splitExt(%q) = (%q, %q), want (%q, %q)", tc.in, base, ext, tc.base, tc.ext)
		}
	}
}

func TestFlipOneCase(t *testing.T) {
	r := rng.New(7)
	s := "abc"
	got := flipOneCase(s, r)
	if strings.ToLower(got) != s {
		t.Errorf("flipOneCase changed letters: %q", got)
	}
	if got == s {
		t.Errorf("flipOneCase changed nothing")
	}
	if flipOneCase("123", r) != "123" {
		t.Error("flipOneCase on letterless string should be identity")
	}
}

func BenchmarkCanonical(b *testing.B) {
	v, _ := vocab.New(vocab.DefaultConfig(1))
	g, _ := New(v, DefaultConfig(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Canonical(i)
	}
}

func BenchmarkVariant(b *testing.B) {
	v, _ := vocab.New(vocab.DefaultConfig(1))
	g, _ := New(v, DefaultConfig(), 1)
	r := rng.New(1)
	name := g.Canonical(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Variant(name, r)
	}
}

func TestCanonicalJunkTokens(t *testing.T) {
	g := testGen(t, DefaultConfig())
	withJunk := 0
	const n = 2000
	junkLike := func(name string) bool {
		return strings.Contains(name, "[") || strings.Contains(name, "kbps") ||
			strings.Contains(name, "cat") || strings.ContainsAny(name, "0123456789")
	}
	for i := 0; i < n; i++ {
		if junkLike(g.Canonical(i)) {
			withJunk++
		}
	}
	// ~65% of names carry a junk token (plus incidental digits); require a
	// substantial majority to carry some digit/tag material.
	if withJunk < n/2 {
		t.Errorf("only %d/%d names carry junk-like tokens", withJunk, n)
	}
}

func TestJunkTokensMostlyUnique(t *testing.T) {
	// Junk tokens exist to create singleton terms: across many objects,
	// the junk vocabulary must be nearly collision-free.
	g := testGen(t, DefaultConfig())
	seen := map[string]int{}
	for i := 0; i < 5000; i++ {
		name := g.Canonical(i)
		for _, tok := range strings.Fields(name) {
			if len(tok) >= 8 && strings.Trim(tok, "0123456789abcdef[]()") == "" {
				seen[tok]++
			}
		}
	}
	if len(seen) == 0 {
		t.Skip("no hex-like junk tokens sampled")
	}
	dup := 0
	for _, c := range seen {
		if c > 1 {
			dup++
		}
	}
	if frac := float64(dup) / float64(len(seen)); frac > 0.05 {
		t.Errorf("junk token collision rate %v too high", frac)
	}
}
