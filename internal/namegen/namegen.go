// Package namegen synthesizes Gnutella-style shared file names.
//
// The paper's Gnutella analysis is driven entirely by file-name strings:
// canonical names like "Aaron Neville - I Don't Know Much.mp3", near-variant
// replicas that differ only in case, punctuation, featuring credits or
// spelling ("Aaron Neville ft. Linda Ronstadt- I Dont Know Much.MP3"), and
// non-specific names like "01 Track.wma" that appear on thousands of peers
// without being the same object. This package generates all three classes
// deterministically so the Figure 1/2 sanitization experiment has real
// material to work on.
package namegen

import (
	"fmt"
	"strings"

	"querycentric/internal/rng"
	"querycentric/internal/vocab"
)

// Extensions and their weights, loosely following the media mix the paper
// reports (most shared content is audio; video and images trail).
var extensions = []struct {
	ext    string
	weight float64
}{
	{".mp3", 0.62},
	{".wma", 0.10},
	{".avi", 0.07},
	{".mpg", 0.04},
	{".wmv", 0.03},
	{".jpg", 0.05},
	{".ogg", 0.02},
	{".m4a", 0.04},
	{".zip", 0.02},
	{".exe", 0.01},
}

// NonSpecificNames are names that recur across many peers without denoting
// the same object (the paper found "01 Track.wma" on 2,681 peers).
var NonSpecificNames = []string{
	"01 Track.wma", "02 Track.wma", "03 Track.wma", "Track 1.mp3",
	"Track 2.mp3", "intro.mp3", "Intro.mp3", "untitled.mp3", "AudioTrack 01.mp3",
	"New Recording.mp3", "track01.cda.mp3",
}

// Config controls variant generation.
type Config struct {
	// CaseVariantProb is the chance a replica's name changes letter case.
	CaseVariantProb float64
	// PunctVariantProb is the chance punctuation is altered (dash spacing,
	// dropped apostrophes).
	PunctVariantProb float64
	// FeatVariantProb is the chance a featuring credit is added/reworded.
	FeatVariantProb float64
	// MisspellProb is the chance of a single-character misspelling; the
	// paper cites Zaharia et al.: ~20% of descriptions are misspelt.
	MisspellProb float64
	// ExtCaseProb is the chance the extension changes case (.mp3 → .MP3).
	ExtCaseProb float64
}

// DefaultConfig mirrors the paper's observations (≈20% misspellings, case
// and punctuation noise common).
func DefaultConfig() Config {
	return Config{
		CaseVariantProb:  0.25,
		PunctVariantProb: 0.20,
		FeatVariantProb:  0.10,
		MisspellProb:     0.20,
		ExtCaseProb:      0.15,
	}
}

// Generator derives canonical names and their replica variants.
type Generator struct {
	vocab *vocab.Vocabulary
	cfg   Config
	seed  uint64
	cum   []float64 // cumulative extension weights
}

// New creates a Generator over the vocabulary.
func New(v *vocab.Vocabulary, cfg Config, seed uint64) (*Generator, error) {
	if v == nil || len(v.Artists) == 0 || len(v.Titles) == 0 {
		return nil, fmt.Errorf("namegen: vocabulary must have artists and titles")
	}
	for _, p := range []float64{cfg.CaseVariantProb, cfg.PunctVariantProb,
		cfg.FeatVariantProb, cfg.MisspellProb, cfg.ExtCaseProb} {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("namegen: probability out of range in %+v", cfg)
		}
	}
	g := &Generator{vocab: v, cfg: cfg, seed: seed}
	total := 0.0
	g.cum = make([]float64, len(extensions))
	for i, e := range extensions {
		total += e.weight
		g.cum[i] = total
	}
	return g, nil
}

// Canonical returns the canonical shared name of object objID. The mapping
// is a pure function of (seed, objID).
//
// A substantial fraction of names carry an object-specific junk token
// (release-group tags, rip hashes, bitrates): real Gnutella names are full
// of them, and they are what makes the term-level distribution of Figure 3
// so heavy-tailed — 71% of the 1.22M distinct terms appeared on a single
// peer.
func (g *Generator) Canonical(objID int) string {
	r := rng.NewNamed(g.seed, fmt.Sprintf("namegen/obj/%d", objID))
	artist := g.vocab.Artists[r.Intn(len(g.vocab.Artists))]
	title := g.vocab.Titles[r.Intn(len(g.vocab.Titles))]
	ext := extensions[r.WeightedIndex(g.cum)].ext
	var base string
	switch r.Intn(10) {
	case 0: // track-number prefix
		base = fmt.Sprintf("%02d - %s - %s", 1+r.Intn(15), artist, title)
	case 1: // underscores instead of spaces
		base = strings.ReplaceAll(fmt.Sprintf("%s - %s", artist, title), " ", "_")
	case 2: // title only
		base = title
	default:
		base = fmt.Sprintf("%s - %s", artist, title)
	}
	if r.Bool(0.65) {
		base += " " + junkToken(r)
		if r.Bool(0.25) {
			base += " " + junkToken(r)
		}
	}
	return base + ext
}

// junkToken fabricates the rip-specific tags real shared names carry.
func junkToken(r *rng.Source) string {
	const hexdigits = "0123456789abcdef"
	switch r.Intn(4) {
	case 0: // release-group style tag
		b := make([]byte, 6)
		for i := range b {
			b[i] = hexdigits[r.Intn(16)]
		}
		return "[" + string(b) + "]"
	case 1: // rip hash
		b := make([]byte, 8)
		for i := range b {
			b[i] = hexdigits[r.Intn(16)]
		}
		return string(b)
	case 2: // bitrate/encoder tag with a unique suffix
		return fmt.Sprintf("(%dkbps-%c%c)", 64*(1+r.Intn(4)),
			'a'+byte(r.Intn(26)), 'a'+byte(r.Intn(26)))
	default: // catalog number
		return fmt.Sprintf("cat%06d", r.Intn(1000000))
	}
}

// Variant derives a replica-name variant of name. With the zero Config it
// returns name unchanged; with DefaultConfig it perturbs case, punctuation,
// featuring credits and spelling the way real Gnutella replicas differ.
func (g *Generator) Variant(name string, r *rng.Source) string {
	base, ext := splitExt(name)
	if r.Bool(g.cfg.FeatVariantProb) {
		other := g.vocab.Artists[r.Intn(len(g.vocab.Artists))]
		conj := []string{" ft. ", " feat. ", " and ", " & "}[r.Intn(4)]
		if i := strings.Index(base, " - "); i >= 0 {
			base = base[:i] + conj + other + base[i:]
		} else {
			base = base + conj + other
		}
	}
	if r.Bool(g.cfg.CaseVariantProb) {
		switch r.Intn(3) {
		case 0:
			base = strings.ToLower(base)
		case 1:
			base = strings.ToUpper(base)
		default:
			base = flipOneCase(base, r)
		}
	}
	if r.Bool(g.cfg.PunctVariantProb) {
		switch r.Intn(4) {
		case 0:
			base = strings.ReplaceAll(base, " - ", "- ")
		case 1:
			base = strings.ReplaceAll(base, " - ", " -")
		case 2:
			base = strings.ReplaceAll(base, "'", "")
		default:
			base = strings.ReplaceAll(base, " ", "  ")
		}
	}
	if r.Bool(g.cfg.MisspellProb) {
		base = misspell(base, r)
	}
	if r.Bool(g.cfg.ExtCaseProb) {
		ext = strings.ToUpper(ext)
	}
	return base + ext
}

// NonSpecific returns one of the generic recurring names.
func (g *Generator) NonSpecific(r *rng.Source) string {
	return NonSpecificNames[r.Intn(len(NonSpecificNames))]
}

// splitExt splits a name into base and extension ("" if none).
func splitExt(name string) (base, ext string) {
	if i := strings.LastIndexByte(name, '.'); i > 0 && len(name)-i <= 5 {
		return name[:i], name[i:]
	}
	return name, ""
}

// misspell applies one of: drop a letter, transpose two adjacent letters,
// duplicate a letter. Only ASCII letters are touched.
func misspell(s string, r *rng.Source) string {
	letters := []int{}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
			letters = append(letters, i)
		}
	}
	if len(letters) < 2 {
		return s
	}
	b := []byte(s)
	switch r.Intn(3) {
	case 0: // drop
		i := letters[r.Intn(len(letters))]
		return string(b[:i]) + string(b[i+1:])
	case 1: // transpose with next byte if also a letter
		i := letters[r.Intn(len(letters)-1)]
		if i+1 < len(b) && isLetter(b[i+1]) {
			b[i], b[i+1] = b[i+1], b[i]
		}
		return string(b)
	default: // duplicate
		i := letters[r.Intn(len(letters))]
		return string(b[:i+1]) + string(b[i:])
	}
}

func isLetter(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func flipOneCase(s string, r *rng.Source) string {
	b := []byte(s)
	idx := []int{}
	for i, c := range b {
		if isLetter(c) {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		return s
	}
	i := idx[r.Intn(len(idx))]
	b[i] ^= 0x20
	return string(b)
}
