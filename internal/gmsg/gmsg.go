// Package gmsg implements the Gnutella 0.6 wire format: the 23-byte
// descriptor header and the Ping, Pong, Query, QueryHit and Push payloads.
//
// The synthetic Gnutella network (internal/gnet) and the crawler
// (internal/crawler) exchange real encoded descriptors so that the
// measurement path of the reproduction exercises the same framing,
// tokenization and TTL/hops rules as the deployed system the paper studied.
// Encoding follows "The Gnutella Protocol Specification v0.6" (RFC draft):
// multi-byte integers are little-endian except IPv4 addresses, which are
// big-endian (network order).
package gmsg

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Descriptor type codes.
const (
	TypePing     byte = 0x00
	TypePong     byte = 0x01
	TypeBye      byte = 0x02
	TypePush     byte = 0x40
	TypeQuery    byte = 0x80
	TypeQueryHit byte = 0x81
)

// HeaderSize is the fixed descriptor header length.
const HeaderSize = 23

// MaxPayload bounds accepted payload lengths; the spec recommends dropping
// descriptors larger than a few KB. Generous here to allow big QueryHits.
const MaxPayload = 1 << 20

// GUID is a 16-byte globally unique descriptor identifier.
type GUID [16]byte

// String renders the GUID as lowercase hex.
func (g GUID) String() string {
	const hexdigits = "0123456789abcdef"
	out := make([]byte, 32)
	for i, b := range g {
		out[2*i] = hexdigits[b>>4]
		out[2*i+1] = hexdigits[b&0x0f]
	}
	return string(out)
}

// GUIDFromUint64s builds a GUID from two 64-bit values (e.g. an rng stream).
// Per the modern convention, byte 8 is 0xff and byte 15 is 0x00.
func GUIDFromUint64s(a, b uint64) GUID {
	var g GUID
	binary.LittleEndian.PutUint64(g[0:8], a)
	binary.LittleEndian.PutUint64(g[8:16], b)
	g[8] = 0xff
	g[15] = 0x00
	return g
}

// Header is the 23-byte descriptor header.
type Header struct {
	GUID       GUID
	Type       byte
	TTL        byte
	Hops       byte
	PayloadLen uint32
}

// EncodeHeader appends the wire form of h to dst.
func EncodeHeader(dst []byte, h Header) []byte {
	dst = append(dst, h.GUID[:]...)
	dst = append(dst, h.Type, h.TTL, h.Hops)
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], h.PayloadLen)
	return append(dst, l[:]...)
}

// DecodeHeader parses a descriptor header from b.
func DecodeHeader(b []byte) (Header, error) {
	if len(b) < HeaderSize {
		return Header{}, fmt.Errorf("gmsg: short header: %d bytes", len(b))
	}
	var h Header
	copy(h.GUID[:], b[0:16])
	h.Type = b[16]
	h.TTL = b[17]
	h.Hops = b[18]
	h.PayloadLen = binary.LittleEndian.Uint32(b[19:23])
	switch h.Type {
	case TypePing, TypePong, TypeBye, TypePush, TypeQuery, TypeQueryHit:
	default:
		return Header{}, fmt.Errorf("gmsg: unknown descriptor type 0x%02x", h.Type)
	}
	if h.PayloadLen > MaxPayload {
		return Header{}, fmt.Errorf("gmsg: payload length %d exceeds limit", h.PayloadLen)
	}
	return h, nil
}

// Message is a decoded descriptor: the header plus exactly one non-nil
// payload field matching Header.Type (Ping has no payload struct).
type Message struct {
	Header   Header
	Pong     *Pong
	Bye      *Bye
	Query    *Query
	QueryHit *QueryHit
	Push     *Push
}

// Pong carries a peer's address and shared-content summary.
type Pong struct {
	Port       uint16
	IP         [4]byte
	FilesCount uint32
	KBShared   uint32
}

const pongSize = 14

func (p *Pong) encode(dst []byte) []byte {
	var buf [pongSize]byte
	binary.LittleEndian.PutUint16(buf[0:2], p.Port)
	copy(buf[2:6], p.IP[:])
	binary.LittleEndian.PutUint32(buf[6:10], p.FilesCount)
	binary.LittleEndian.PutUint32(buf[10:14], p.KBShared)
	return append(dst, buf[:]...)
}

func decodePong(b []byte) (*Pong, error) {
	if len(b) != pongSize {
		return nil, fmt.Errorf("gmsg: pong payload is %d bytes, want %d", len(b), pongSize)
	}
	p := &Pong{}
	p.Port = binary.LittleEndian.Uint16(b[0:2])
	copy(p.IP[:], b[2:6])
	p.FilesCount = binary.LittleEndian.Uint32(b[6:10])
	p.KBShared = binary.LittleEndian.Uint32(b[10:14])
	return p, nil
}

// Bye is the graceful-close descriptor (the Bye extension, widely deployed
// in modern servents): a departing peer sends it on every connection before
// closing, so neighbors learn of the departure immediately instead of
// waiting for a failure detector to time the connection out. The payload is
// a little-endian status code followed by a NUL-terminated reason string.
type Bye struct {
	Code   uint16
	Reason string
}

// Customary Bye status codes.
const (
	ByeCodeShutdown    = 200 // clean user-initiated shutdown
	ByeCodeMaintenance = 201 // leaving to rebalance connections
)

func (b *Bye) encode(dst []byte) []byte {
	var s [2]byte
	binary.LittleEndian.PutUint16(s[:], b.Code)
	dst = append(dst, s[:]...)
	dst = append(dst, b.Reason...)
	return append(dst, 0)
}

func decodeBye(b []byte) (*Bye, error) {
	if len(b) < 3 {
		return nil, fmt.Errorf("gmsg: bye payload too short: %d bytes", len(b))
	}
	out := &Bye{Code: binary.LittleEndian.Uint16(b[0:2])}
	rest := b[2:]
	i := 0
	for i < len(rest) && rest[i] != 0 {
		i++
	}
	if i == len(rest) {
		return nil, fmt.Errorf("gmsg: bye reason not null-terminated")
	}
	out.Reason = string(rest[:i])
	return out, nil
}

// Query is a search request: minimum speed and the search criteria string.
type Query struct {
	MinSpeed uint16
	Criteria string
}

func (q *Query) encode(dst []byte) []byte {
	var s [2]byte
	binary.LittleEndian.PutUint16(s[:], q.MinSpeed)
	dst = append(dst, s[:]...)
	dst = append(dst, q.Criteria...)
	return append(dst, 0)
}

func decodeQuery(b []byte) (*Query, error) {
	if len(b) < 3 {
		return nil, fmt.Errorf("gmsg: query payload too short: %d bytes", len(b))
	}
	q := &Query{MinSpeed: binary.LittleEndian.Uint16(b[0:2])}
	rest := b[2:]
	// Criteria is null-terminated; anything after the null is a GGEP/HUGE
	// extension block, which we accept and ignore.
	i := 0
	for i < len(rest) && rest[i] != 0 {
		i++
	}
	if i == len(rest) {
		return nil, fmt.Errorf("gmsg: query criteria not null-terminated")
	}
	q.Criteria = string(rest[:i])
	return q, nil
}

// Result is one file record inside a QueryHit.
type Result struct {
	FileIndex uint32
	FileSize  uint32
	FileName  string
}

// QueryHit carries search results plus the responding servent's identity.
type QueryHit struct {
	Port      uint16
	IP        [4]byte
	Speed     uint32
	Results   []Result
	ServentID GUID
}

func (qh *QueryHit) encode(dst []byte) []byte {
	dst = append(dst, byte(len(qh.Results)))
	var buf [10]byte
	binary.LittleEndian.PutUint16(buf[0:2], qh.Port)
	copy(buf[2:6], qh.IP[:])
	binary.LittleEndian.PutUint32(buf[6:10], qh.Speed)
	dst = append(dst, buf[:]...)
	for _, r := range qh.Results {
		var rb [8]byte
		binary.LittleEndian.PutUint32(rb[0:4], r.FileIndex)
		binary.LittleEndian.PutUint32(rb[4:8], r.FileSize)
		dst = append(dst, rb[:]...)
		dst = append(dst, r.FileName...)
		dst = append(dst, 0, 0) // name terminator + empty extension block
	}
	return append(dst, qh.ServentID[:]...)
}

func decodeQueryHit(b []byte) (*QueryHit, error) {
	if len(b) < 11+16 {
		return nil, fmt.Errorf("gmsg: queryhit payload too short: %d bytes", len(b))
	}
	qh := &QueryHit{}
	n := int(b[0])
	qh.Port = binary.LittleEndian.Uint16(b[1:3])
	copy(qh.IP[:], b[3:7])
	qh.Speed = binary.LittleEndian.Uint32(b[7:11])
	rest := b[11 : len(b)-16]
	copy(qh.ServentID[:], b[len(b)-16:])
	for i := 0; i < n; i++ {
		if len(rest) < 8 {
			return nil, fmt.Errorf("gmsg: queryhit result %d truncated", i)
		}
		var r Result
		r.FileIndex = binary.LittleEndian.Uint32(rest[0:4])
		r.FileSize = binary.LittleEndian.Uint32(rest[4:8])
		rest = rest[8:]
		j := 0
		for j < len(rest) && rest[j] != 0 {
			j++
		}
		if j == len(rest) {
			return nil, fmt.Errorf("gmsg: queryhit result %d name not terminated", i)
		}
		r.FileName = string(rest[:j])
		rest = rest[j+1:]
		// Skip the extension block up to its null terminator.
		k := 0
		for k < len(rest) && rest[k] != 0 {
			k++
		}
		if k == len(rest) {
			return nil, fmt.Errorf("gmsg: queryhit result %d extensions not terminated", i)
		}
		rest = rest[k+1:]
		qh.Results = append(qh.Results, r)
	}
	return qh, nil
}

// Push asks a firewalled servent to open a connection back to the requester.
type Push struct {
	ServentID GUID
	FileIndex uint32
	IP        [4]byte
	Port      uint16
}

const pushSize = 26

func (p *Push) encode(dst []byte) []byte {
	dst = append(dst, p.ServentID[:]...)
	var buf [10]byte
	binary.LittleEndian.PutUint32(buf[0:4], p.FileIndex)
	copy(buf[4:8], p.IP[:])
	binary.LittleEndian.PutUint16(buf[8:10], p.Port)
	return append(dst, buf[:]...)
}

func decodePush(b []byte) (*Push, error) {
	if len(b) != pushSize {
		return nil, fmt.Errorf("gmsg: push payload is %d bytes, want %d", len(b), pushSize)
	}
	p := &Push{}
	copy(p.ServentID[:], b[0:16])
	p.FileIndex = binary.LittleEndian.Uint32(b[16:20])
	copy(p.IP[:], b[20:24])
	p.Port = binary.LittleEndian.Uint16(b[24:26])
	return p, nil
}

// Encode serializes m, computing Header.PayloadLen from the payload.
func Encode(m *Message) ([]byte, error) {
	var payload []byte
	switch m.Header.Type {
	case TypePing:
	case TypePong:
		if m.Pong == nil {
			return nil, fmt.Errorf("gmsg: pong message without pong payload")
		}
		payload = m.Pong.encode(nil)
	case TypeBye:
		if m.Bye == nil {
			return nil, fmt.Errorf("gmsg: bye message without bye payload")
		}
		payload = m.Bye.encode(nil)
	case TypeQuery:
		if m.Query == nil {
			return nil, fmt.Errorf("gmsg: query message without query payload")
		}
		payload = m.Query.encode(nil)
	case TypeQueryHit:
		if m.QueryHit == nil {
			return nil, fmt.Errorf("gmsg: queryhit message without queryhit payload")
		}
		if len(m.QueryHit.Results) > 255 {
			return nil, fmt.Errorf("gmsg: queryhit with %d results exceeds 255", len(m.QueryHit.Results))
		}
		payload = m.QueryHit.encode(nil)
	case TypePush:
		if m.Push == nil {
			return nil, fmt.Errorf("gmsg: push message without push payload")
		}
		payload = m.Push.encode(nil)
	default:
		return nil, fmt.Errorf("gmsg: unknown descriptor type 0x%02x", m.Header.Type)
	}
	h := m.Header
	h.PayloadLen = uint32(len(payload))
	out := EncodeHeader(make([]byte, 0, HeaderSize+len(payload)), h)
	return append(out, payload...), nil
}

// Decode parses one descriptor from b, returning the message and the number
// of bytes consumed.
func Decode(b []byte) (*Message, int, error) {
	h, err := DecodeHeader(b)
	if err != nil {
		return nil, 0, err
	}
	total := HeaderSize + int(h.PayloadLen)
	if len(b) < total {
		return nil, 0, fmt.Errorf("gmsg: truncated payload: have %d of %d bytes", len(b)-HeaderSize, h.PayloadLen)
	}
	payload := b[HeaderSize:total]
	m := &Message{Header: h}
	switch h.Type {
	case TypePing:
		if len(payload) != 0 {
			return nil, 0, fmt.Errorf("gmsg: ping with %d-byte payload", len(payload))
		}
	case TypePong:
		if m.Pong, err = decodePong(payload); err != nil {
			return nil, 0, err
		}
	case TypeBye:
		if m.Bye, err = decodeBye(payload); err != nil {
			return nil, 0, err
		}
	case TypeQuery:
		if m.Query, err = decodeQuery(payload); err != nil {
			return nil, 0, err
		}
	case TypeQueryHit:
		if m.QueryHit, err = decodeQueryHit(payload); err != nil {
			return nil, 0, err
		}
	case TypePush:
		if m.Push, err = decodePush(payload); err != nil {
			return nil, 0, err
		}
	}
	return m, total, nil
}

// WriteMessage encodes m and writes it to w.
func WriteMessage(w io.Writer, m *Message) error {
	b, err := Encode(m)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// ReadMessage reads exactly one descriptor from r.
func ReadMessage(r io.Reader) (*Message, error) {
	var hb [HeaderSize]byte
	if _, err := io.ReadFull(r, hb[:]); err != nil {
		return nil, err
	}
	h, err := DecodeHeader(hb[:])
	if err != nil {
		return nil, err
	}
	buf := make([]byte, HeaderSize+int(h.PayloadLen))
	copy(buf, hb[:])
	if _, err := io.ReadFull(r, buf[HeaderSize:]); err != nil {
		return nil, fmt.Errorf("gmsg: reading payload: %w", err)
	}
	m, _, err := Decode(buf)
	return m, err
}
