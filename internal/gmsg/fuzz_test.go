package gmsg

import (
	"testing"
)

// fuzzSeeds returns one well-formed encoded descriptor per type, so the
// fuzzer starts from valid wire messages and mutates toward the edge cases.
func fuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	msgs := []*Message{
		{Header: Header{GUID: testGUID(), Type: TypePing, TTL: 7}},
		{Header: Header{GUID: testGUID(), Type: TypePong, TTL: 1},
			Pong: &Pong{Port: 6346, IP: [4]byte{10, 0, 0, 7}, FilesCount: 12, KBShared: 34}},
		{Header: Header{GUID: testGUID(), Type: TypeBye, TTL: 1},
			Bye: &Bye{Code: ByeCodeShutdown, Reason: "shutting down"}},
		{Header: Header{GUID: testGUID(), Type: TypeQuery, TTL: 5},
			Query: &Query{MinSpeed: 4, Criteria: "aaron neville know much"}},
		{Header: Header{GUID: testGUID(), Type: TypeQueryHit, TTL: 3},
			QueryHit: &QueryHit{Port: 6346, IP: [4]byte{10, 1, 2, 3}, Speed: 1000,
				Results: []Result{
					{FileIndex: 1, FileSize: 4096, FileName: "Aaron Neville - I Don't Know Much.mp3"},
					{FileIndex: 9, FileSize: 123, FileName: "01 Track.wma"},
				},
				ServentID: testGUID()}},
		{Header: Header{GUID: testGUID(), Type: TypePush, TTL: 1},
			Push: &Push{ServentID: testGUID(), FileIndex: 42, IP: [4]byte{1, 2, 3, 4}, Port: 6347}},
	}
	var seeds [][]byte
	for _, m := range msgs {
		b, err := Encode(m)
		if err != nil {
			tb.Fatalf("encoding seed type 0x%02x: %v", m.Header.Type, err)
		}
		seeds = append(seeds, b)
	}
	return seeds
}

// FuzzDecodeMessage asserts that Decode never panics or over-reads on
// arbitrary input: it either returns an error, or a message whose consumed
// byte count lies inside the input and whose re-encoding round-trips.
func FuzzDecodeMessage(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	// Hand-crafted adversarial seeds: truncations, bad types, bad lengths.
	f.Add([]byte{})
	f.Add(make([]byte, HeaderSize-1))
	f.Add(EncodeHeader(nil, Header{Type: TypeQueryHit, PayloadLen: 27}))
	f.Fuzz(func(t *testing.T, b []byte) {
		m, n, err := Decode(b)
		if err != nil {
			if m != nil {
				t.Fatalf("Decode returned both a message and an error: %v", err)
			}
			return
		}
		if m == nil {
			t.Fatal("Decode returned nil message without an error")
		}
		if n < HeaderSize || n > len(b) {
			t.Fatalf("Decode consumed %d bytes of a %d-byte input", n, len(b))
		}
		if int(m.Header.PayloadLen) != n-HeaderSize {
			t.Fatalf("consumed %d bytes but header claims %d-byte payload", n, m.Header.PayloadLen)
		}
		// A successfully decoded descriptor must re-encode: Decode may only
		// accept messages Encode can represent.
		if _, err := Encode(m); err != nil {
			t.Fatalf("decoded message does not re-encode: %v", err)
		}
	})
}
