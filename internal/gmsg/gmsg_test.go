package gmsg

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
	"testing/quick"
)

func testGUID() GUID {
	return GUIDFromUint64s(0x0123456789abcdef, 0xfedcba9876543210)
}

func TestGUIDString(t *testing.T) {
	g := GUID{0x01, 0xab}
	s := g.String()
	if len(s) != 32 {
		t.Fatalf("GUID string length %d", len(s))
	}
	if s[:4] != "01ab" {
		t.Errorf("GUID string prefix %q", s[:4])
	}
}

func TestGUIDConvention(t *testing.T) {
	g := GUIDFromUint64s(^uint64(0), ^uint64(0))
	if g[8] != 0xff || g[15] != 0x00 {
		t.Errorf("GUID convention bytes: g[8]=0x%02x g[15]=0x%02x", g[8], g[15])
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{GUID: testGUID(), Type: TypeQuery, TTL: 7, Hops: 2, PayloadLen: 55}
	b := EncodeHeader(nil, h)
	if len(b) != HeaderSize {
		t.Fatalf("encoded header is %d bytes", len(b))
	}
	got, err := DecodeHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("round trip: got %+v, want %+v", got, h)
	}
}

func TestHeaderWireLayout(t *testing.T) {
	// Byte-for-byte check against the spec: GUID[16], type, ttl, hops,
	// little-endian length.
	h := Header{GUID: testGUID(), Type: TypePong, TTL: 3, Hops: 1, PayloadLen: 0x01020304}
	b := EncodeHeader(nil, h)
	if !bytes.Equal(b[0:16], h.GUID[:]) {
		t.Error("GUID bytes misplaced")
	}
	if b[16] != TypePong || b[17] != 3 || b[18] != 1 {
		t.Error("type/ttl/hops bytes misplaced")
	}
	if binary.LittleEndian.Uint32(b[19:23]) != 0x01020304 {
		t.Error("payload length not little-endian at offset 19")
	}
}

func TestDecodeHeaderErrors(t *testing.T) {
	if _, err := DecodeHeader(make([]byte, 10)); err == nil {
		t.Error("short header accepted")
	}
	b := EncodeHeader(nil, Header{Type: TypePing})
	b[16] = 0x55 // unknown type
	if _, err := DecodeHeader(b); err == nil {
		t.Error("unknown type accepted")
	}
	b2 := EncodeHeader(nil, Header{Type: TypePing, PayloadLen: MaxPayload + 1})
	if _, err := DecodeHeader(b2); err == nil {
		t.Error("oversized payload length accepted")
	}
}

func roundTrip(t *testing.T, m *Message) *Message {
	t.Helper()
	b, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) {
		t.Fatalf("Decode consumed %d of %d bytes", n, len(b))
	}
	return got
}

func TestPingRoundTrip(t *testing.T) {
	m := &Message{Header: Header{GUID: testGUID(), Type: TypePing, TTL: 7}}
	got := roundTrip(t, m)
	if got.Header.Type != TypePing || got.Header.TTL != 7 {
		t.Errorf("ping round trip: %+v", got.Header)
	}
}

func TestPingWithPayloadRejected(t *testing.T) {
	b := EncodeHeader(nil, Header{Type: TypePing, PayloadLen: 1})
	b = append(b, 0xaa)
	if _, _, err := Decode(b); err == nil {
		t.Error("ping with payload accepted")
	}
}

func TestPongRoundTrip(t *testing.T) {
	m := &Message{
		Header: Header{GUID: testGUID(), Type: TypePong, TTL: 1},
		Pong:   &Pong{Port: 6346, IP: [4]byte{10, 1, 2, 3}, FilesCount: 321, KBShared: 999},
	}
	got := roundTrip(t, m)
	if !reflect.DeepEqual(got.Pong, m.Pong) {
		t.Errorf("pong round trip: %+v vs %+v", got.Pong, m.Pong)
	}
}

func TestByeRoundTrip(t *testing.T) {
	m := &Message{
		Header: Header{GUID: testGUID(), Type: TypeBye, TTL: 1},
		Bye:    &Bye{Code: ByeCodeShutdown, Reason: "going home"},
	}
	got := roundTrip(t, m)
	if !reflect.DeepEqual(got.Bye, m.Bye) {
		t.Errorf("bye round trip: %+v vs %+v", got.Bye, m.Bye)
	}
}

func TestByeUnterminatedReasonRejected(t *testing.T) {
	payload := (&Bye{Code: 200, Reason: "bye"}).encode(nil)
	payload = payload[:len(payload)-1] // strip the NUL
	b := EncodeHeader(nil, Header{GUID: testGUID(), Type: TypeBye, TTL: 1, PayloadLen: uint32(len(payload))})
	b = append(b, payload...)
	if _, _, err := Decode(b); err == nil {
		t.Error("bye without reason terminator accepted")
	}
}

func TestQueryRoundTrip(t *testing.T) {
	m := &Message{
		Header: Header{GUID: testGUID(), Type: TypeQuery, TTL: 5},
		Query:  &Query{MinSpeed: 0, Criteria: "aaron neville know much"},
	}
	got := roundTrip(t, m)
	if got.Query.Criteria != m.Query.Criteria {
		t.Errorf("criteria %q vs %q", got.Query.Criteria, m.Query.Criteria)
	}
}

func TestQueryUTF8Criteria(t *testing.T) {
	// The paper notes UTF-8 names on the wire; multi-byte must survive.
	m := &Message{
		Header: Header{GUID: testGUID(), Type: TypeQuery, TTL: 5},
		Query:  &Query{Criteria: "日本語 ノート ümlaut"},
	}
	got := roundTrip(t, m)
	if got.Query.Criteria != m.Query.Criteria {
		t.Errorf("UTF-8 criteria corrupted: %q", got.Query.Criteria)
	}
}

func TestQueryWithExtensionBlock(t *testing.T) {
	// Bytes after the criteria null are extensions; decoder must ignore.
	q := &Query{MinSpeed: 4, Criteria: "test"}
	payload := q.encode(nil)
	payload = append(payload, []byte{0xc3, 0x01, 0x02}...) // fake GGEP
	b := EncodeHeader(nil, Header{GUID: testGUID(), Type: TypeQuery, TTL: 1, PayloadLen: uint32(len(payload))})
	b = append(b, payload...)
	m, _, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Query.Criteria != "test" {
		t.Errorf("criteria = %q", m.Query.Criteria)
	}
}

func TestQueryHitRoundTrip(t *testing.T) {
	m := &Message{
		Header: Header{GUID: testGUID(), Type: TypeQueryHit, TTL: 5},
		QueryHit: &QueryHit{
			Port:  6346,
			IP:    [4]byte{192, 168, 0, 7},
			Speed: 1000,
			Results: []Result{
				{FileIndex: 1, FileSize: 4096, FileName: "Aaron Neville - I Don't Know Much.mp3"},
				{FileIndex: 9, FileSize: 123, FileName: "01 Track.wma"},
			},
			ServentID: testGUID(),
		},
	}
	got := roundTrip(t, m)
	if !reflect.DeepEqual(got.QueryHit, m.QueryHit) {
		t.Errorf("queryhit round trip:\n got %+v\nwant %+v", got.QueryHit, m.QueryHit)
	}
}

func TestQueryHitEmptyResults(t *testing.T) {
	m := &Message{
		Header:   Header{GUID: testGUID(), Type: TypeQueryHit, TTL: 1},
		QueryHit: &QueryHit{Port: 1, ServentID: testGUID()},
	}
	got := roundTrip(t, m)
	if len(got.QueryHit.Results) != 0 {
		t.Errorf("expected no results, got %d", len(got.QueryHit.Results))
	}
}

func TestQueryHitTooManyResults(t *testing.T) {
	qh := &QueryHit{ServentID: testGUID()}
	for i := 0; i < 256; i++ {
		qh.Results = append(qh.Results, Result{FileName: "x"})
	}
	_, err := Encode(&Message{Header: Header{Type: TypeQueryHit}, QueryHit: qh})
	if err == nil {
		t.Error("256-result queryhit accepted")
	}
}

func TestPushRoundTrip(t *testing.T) {
	m := &Message{
		Header: Header{GUID: testGUID(), Type: TypePush, TTL: 1},
		Push:   &Push{ServentID: testGUID(), FileIndex: 42, IP: [4]byte{1, 2, 3, 4}, Port: 6347},
	}
	got := roundTrip(t, m)
	if !reflect.DeepEqual(got.Push, m.Push) {
		t.Errorf("push round trip: %+v vs %+v", got.Push, m.Push)
	}
}

func TestEncodeMissingPayload(t *testing.T) {
	for _, typ := range []byte{TypePong, TypeQuery, TypeQueryHit, TypePush} {
		if _, err := Encode(&Message{Header: Header{Type: typ}}); err == nil {
			t.Errorf("type 0x%02x without payload accepted", typ)
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	m := &Message{Header: Header{GUID: testGUID(), Type: TypeQuery, TTL: 3},
		Query: &Query{Criteria: "hello world"}}
	b, _ := Encode(m)
	for cut := 1; cut < len(b); cut++ {
		if _, _, err := Decode(b[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestDecodeCorruptQueryHit(t *testing.T) {
	// Claim 3 results but provide 1.
	qh := &QueryHit{Results: []Result{{FileName: "a"}}, ServentID: testGUID()}
	payload := qh.encode(nil)
	payload[0] = 3
	b := EncodeHeader(nil, Header{GUID: testGUID(), Type: TypeQueryHit, TTL: 1, PayloadLen: uint32(len(payload))})
	b = append(b, payload...)
	if _, _, err := Decode(b); err == nil {
		t.Error("queryhit with inconsistent result count accepted")
	}
}

func TestReadWriteMessage(t *testing.T) {
	var buf bytes.Buffer
	msgs := []*Message{
		{Header: Header{GUID: testGUID(), Type: TypePing, TTL: 7}},
		{Header: Header{GUID: testGUID(), Type: TypeQuery, TTL: 5}, Query: &Query{Criteria: "zeppelin"}},
		{Header: Header{GUID: testGUID(), Type: TypePong, TTL: 1}, Pong: &Pong{Port: 6346}},
	}
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if got.Header.Type != want.Header.Type {
			t.Errorf("message %d type 0x%02x, want 0x%02x", i, got.Header.Type, want.Header.Type)
		}
	}
	if _, err := ReadMessage(&buf); err == nil {
		t.Error("read from empty stream succeeded")
	}
}

func TestQuickQueryRoundTrip(t *testing.T) {
	f := func(speed uint16, criteria string) bool {
		// Criteria cannot contain NUL on the wire.
		clean := make([]byte, 0, len(criteria))
		for i := 0; i < len(criteria); i++ {
			if criteria[i] != 0 {
				clean = append(clean, criteria[i])
			}
		}
		m := &Message{Header: Header{GUID: testGUID(), Type: TypeQuery, TTL: 2},
			Query: &Query{MinSpeed: speed, Criteria: string(clean)}}
		b, err := Encode(m)
		if err != nil {
			return false
		}
		got, n, err := Decode(b)
		return err == nil && n == len(b) &&
			got.Query.MinSpeed == speed && got.Query.Criteria == string(clean)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickPongRoundTrip(t *testing.T) {
	f := func(port uint16, ip [4]byte, files, kb uint32) bool {
		m := &Message{Header: Header{GUID: testGUID(), Type: TypePong, TTL: 1},
			Pong: &Pong{Port: port, IP: ip, FilesCount: files, KBShared: kb}}
		b, err := Encode(m)
		if err != nil {
			return false
		}
		got, _, err := Decode(b)
		return err == nil && *got.Pong == *m.Pong
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeQuery(b *testing.B) {
	m := &Message{Header: Header{GUID: testGUID(), Type: TypeQuery, TTL: 5},
		Query: &Query{Criteria: "aaron neville linda ronstadt"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeQueryHit(b *testing.B) {
	qh := &QueryHit{Port: 6346, ServentID: testGUID()}
	for i := 0; i < 20; i++ {
		qh.Results = append(qh.Results, Result{FileIndex: uint32(i), FileSize: 1 << 20,
			FileName: "Some Artist - Some Fairly Long Song Title (Remastered).mp3"})
	}
	raw, _ := Encode(&Message{Header: Header{GUID: testGUID(), Type: TypeQueryHit, TTL: 3}, QueryHit: qh})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(raw); err != nil {
			b.Fatal(err)
		}
	}
}
