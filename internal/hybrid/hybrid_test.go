package hybrid

import (
	"testing"

	"querycentric/internal/overlay"
	"querycentric/internal/rng"
	"querycentric/internal/search"
)

func buildSystem(t *testing.T, placement *search.Placement, n int) *System {
	t.Helper()
	g, err := overlay.NewGnutella(n, overlay.DefaultGnutellaConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(g, placement, 4)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestHybridAlwaysFindsPublished(t *testing.T) {
	p, err := search.ZipfPlacement(1000, 200, 2.45, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := buildSystem(t, p, 1000)
	r := rng.New(6)
	for i := 0; i < 100; i++ {
		res, err := s.Search(r.Intn(1000), r.Intn(200), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Fatalf("trial %d: published object not found (res=%+v)", i, res)
		}
	}
}

func TestRareRuleTriggersDHT(t *testing.T) {
	// Single-replica objects: floods can't find 20 results, so every
	// query must fall back to the DHT.
	p, err := search.UniformPlacement(500, 50, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	s := buildSystem(t, p, 500)
	res, err := s.Search(3, 10, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.UsedDHT {
		t.Error("rare query did not fall back to DHT")
	}
	if !res.Found {
		t.Error("DHT fallback failed to find the object")
	}
	if res.FloodMessages == 0 {
		t.Error("no flooding cost recorded before fallback")
	}
}

func TestPopularObjectAvoidsDHT(t *testing.T) {
	// Plant an object on 40% of nodes: a TTL-3 flood sees >= 20 of them.
	p, err := search.UniformPlacement(500, 5, 200, 8)
	if err != nil {
		t.Fatal(err)
	}
	s := buildSystem(t, p, 500)
	// Pick an origin that does not hold object 0, so the flood actually
	// runs and must gather >= 20 results on its own.
	origin := -1
	holders := map[int32]bool{}
	for _, h := range p.Holders[0] {
		holders[h] = true
	}
	for v := 0; v < 500; v++ {
		if !holders[int32(v)] {
			origin = v
			break
		}
	}
	res, err := s.Search(origin, 0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.UsedDHT {
		t.Errorf("widely replicated object triggered DHT fallback (results=%d)", res.FloodResults)
	}
	if !res.Found {
		t.Error("widely replicated object not found by flood")
	}
}

func TestSearchValidation(t *testing.T) {
	p, _ := search.UniformPlacement(100, 5, 1, 9)
	s := buildSystem(t, p, 100)
	if _, err := s.Search(0, 0, Config{FloodTTL: 0, RareThreshold: 20}); err == nil {
		t.Error("zero TTL accepted")
	}
	if _, err := s.Search(0, 0, Config{FloodTTL: 2, RareThreshold: 0}); err == nil {
		t.Error("zero threshold accepted")
	}
}

func TestDHTOnly(t *testing.T) {
	p, _ := search.UniformPlacement(300, 20, 2, 10)
	s := buildSystem(t, p, 300)
	res, err := s.DHTOnly(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || !res.UsedDHT {
		t.Errorf("DHTOnly result: %+v", res)
	}
	if res.FloodMessages != 0 {
		t.Error("DHTOnly incurred flooding cost")
	}
}

func TestCompareHybridCostsMoreUnderZipf(t *testing.T) {
	// The paper's claim: under the observed Zipf placement, hybrid search
	// pays flood + DHT for nearly every query, so its mean cost exceeds
	// pure DHT while success is identical (both end at the DHT).
	p, err := search.ZipfPlacement(1000, 300, 2.45, 100, 11)
	if err != nil {
		t.Fatal(err)
	}
	s := buildSystem(t, p, 1000)
	pick := func(r *rng.Source) int { return r.Intn(300) }
	c, err := s.Compare(DefaultConfig(), 150, pick, 12)
	if err != nil {
		t.Fatal(err)
	}
	if c.HybridSuccess < 0.99 || c.DHTSuccess < 0.99 {
		t.Errorf("success rates: hybrid=%v dht=%v", c.HybridSuccess, c.DHTSuccess)
	}
	if c.HybridMeanCost <= c.DHTMeanCost {
		t.Errorf("hybrid mean cost %v not above DHT %v under Zipf placement",
			c.HybridMeanCost, c.DHTMeanCost)
	}
	if c.DHTFallbackFrac < 0.9 {
		t.Errorf("DHT fallback fraction %v, expected nearly all queries rare", c.DHTFallbackFrac)
	}
}

func TestPublishCostRecorded(t *testing.T) {
	p, _ := search.UniformPlacement(200, 50, 3, 13)
	s := buildSystem(t, p, 200)
	if s.PublishHops <= 0 {
		t.Error("no publish cost recorded")
	}
}

func BenchmarkHybridSearch(b *testing.B) {
	g, err := overlay.NewGnutella(5000, overlay.DefaultGnutellaConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	p, err := search.ZipfPlacement(5000, 500, 2.45, 500, 2)
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(g, p, 3)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Search(i%5000, i%500, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDHTOnlyMissingObjectStillRoutes(t *testing.T) {
	// DHTOnly on a valid object always finds it; corrupting the search by
	// querying with an origin that equals a holder should also work.
	p, _ := search.UniformPlacement(120, 10, 1, 21)
	s := buildSystem(t, p, 120)
	holder := int(p.Holders[2][0])
	res, err := s.DHTOnly(holder, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Error("DHT lookup from the holder itself failed")
	}
}

func TestCompareValidation(t *testing.T) {
	p, _ := search.UniformPlacement(100, 5, 1, 22)
	s := buildSystem(t, p, 100)
	if _, err := s.Compare(DefaultConfig(), 0, func(r *rng.Source) int { return 0 }, 1); err == nil {
		t.Error("zero trials accepted")
	}
}
