// Package hybrid implements the hybrid search infrastructure of Loo et al.
// (IPTPS'04), the design the paper argues against: a query first floods the
// unstructured overlay with a small TTL; if it looks rare — fewer than a
// threshold of results (Loo et al. used 20) — it is reissued over the
// structured overlay (Chord here), where publishers have registered their
// objects.
//
// The paper's Section V/VII claim is reproduced by comparing this system
// against a pure DHT under the measured Zipf replica placement: because so
// few objects are replicated widely enough for the flood to succeed, the
// hybrid pays the flooding cost *and then* the DHT cost for nearly every
// query.
package hybrid

import (
	"fmt"

	"querycentric/internal/chord"
	"querycentric/internal/overlay"
	"querycentric/internal/rng"
	"querycentric/internal/search"
)

// Config tunes the hybrid policy.
type Config struct {
	// FloodTTL is the unstructured phase's TTL (hybrid systems keep it
	// small to identify rare queries quickly).
	FloodTTL int
	// RareThreshold: a flood returning fewer results than this classifies
	// the query as rare and triggers the structured lookup.
	RareThreshold int
}

// DefaultConfig uses TTL 3 and the Loo et al. 20-result rare rule.
func DefaultConfig() Config { return Config{FloodTTL: 3, RareThreshold: 20} }

// System couples an unstructured search engine with a Chord ring holding
// object publications.
type System struct {
	Engine *search.Engine
	Ring   *chord.Ring
	Store  *chord.Store

	place       *search.Placement
	keys        []uint64
	PublishHops int // total routing hops spent publishing all replicas
}

// New builds the hybrid system: a Chord ring congruent with the overlay's
// node set, with every object replica published under the object's key by
// its holder.
func New(g *overlay.Graph, p *search.Placement, seed uint64) (*System, error) {
	eng, err := search.NewEngine(g, p)
	if err != nil {
		return nil, err
	}
	ring, err := chord.New(g.N(), seed)
	if err != nil {
		return nil, err
	}
	s := &System{
		Engine: eng,
		Ring:   ring,
		Store:  chord.NewStore(ring),
		place:  p,
		keys:   make([]uint64, p.Objects()),
	}
	for obj := 0; obj < p.Objects(); obj++ {
		s.keys[obj] = chord.HashKey(fmt.Sprintf("object-%d", obj))
		for _, holder := range p.Holders[obj] {
			hops, err := s.Store.Put(s.keys[obj], holder, ring.NodeByIndex(int(holder)))
			if err != nil {
				return nil, err
			}
			s.PublishHops += hops
		}
	}
	return s, nil
}

// Result reports one hybrid search.
type Result struct {
	Found         bool
	UsedDHT       bool
	FloodMessages int
	FloodPeers    int
	FloodResults  int
	DHTHops       int
}

// TotalCost is a single comparable cost figure: overlay messages plus DHT
// routing hops (each hop is one message).
func (r Result) TotalCost() int { return r.FloodMessages + r.DHTHops }

// Search runs the hybrid policy for object obj from origin.
func (s *System) Search(origin, obj int, cfg Config) (Result, error) {
	if cfg.FloodTTL < 1 {
		return Result{}, fmt.Errorf("hybrid: FloodTTL must be at least 1, got %d", cfg.FloodTTL)
	}
	if cfg.RareThreshold < 1 {
		return Result{}, fmt.Errorf("hybrid: RareThreshold must be at least 1, got %d", cfg.RareThreshold)
	}
	fl, err := s.Engine.Flood(origin, obj, cfg.FloodTTL)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Found:         fl.Found,
		FloodMessages: fl.Messages,
		FloodPeers:    fl.Peers,
		FloodResults:  fl.Results,
	}
	if fl.Found && fl.Hops == 0 {
		return res, nil // the origin's own library satisfied the query
	}
	if fl.Results >= cfg.RareThreshold {
		return res, nil // popular enough: unstructured phase suffices
	}
	// Rare query: reissue over the DHT.
	res.UsedDHT = true
	vals, hops, err := s.Store.Get(s.keys[obj], s.Ring.NodeByIndex(origin))
	if err != nil {
		return Result{}, err
	}
	res.DHTHops = hops
	if len(vals) > 0 {
		res.Found = true
	}
	return res, nil
}

// DHTOnly performs the pure structured lookup for comparison.
func (s *System) DHTOnly(origin, obj int) (Result, error) {
	vals, hops, err := s.Store.Get(s.keys[obj], s.Ring.NodeByIndex(origin))
	if err != nil {
		return Result{}, err
	}
	return Result{Found: len(vals) > 0, UsedDHT: true, DHTHops: hops}, nil
}

// Comparison aggregates a head-to-head run of hybrid vs pure DHT.
type Comparison struct {
	Trials          int
	HybridSuccess   float64
	DHTSuccess      float64
	HybridMeanCost  float64
	DHTMeanCost     float64
	DHTFallbackFrac float64 // fraction of hybrid queries that needed the DHT
}

// Compare runs trials random queries through both systems. Targets are
// drawn by pick (uniform over objects reproduces the paper's setting where
// query popularity is uncorrelated with replica counts).
func (s *System) Compare(cfg Config, trials int, pick func(r *rng.Source) int, seed uint64) (*Comparison, error) {
	if trials < 1 {
		return nil, fmt.Errorf("hybrid: trials must be positive")
	}
	r := rng.NewNamed(seed, "hybrid/compare")
	c := &Comparison{Trials: trials}
	var hybridCost, dhtCost float64
	var hybridHits, dhtHits, fallbacks int
	for i := 0; i < trials; i++ {
		origin := r.Intn(s.Engine.GraphN())
		obj := pick(r)
		h, err := s.Search(origin, obj, cfg)
		if err != nil {
			return nil, err
		}
		d, err := s.DHTOnly(origin, obj)
		if err != nil {
			return nil, err
		}
		hybridCost += float64(h.TotalCost())
		dhtCost += float64(d.TotalCost())
		if h.Found {
			hybridHits++
		}
		if d.Found {
			dhtHits++
		}
		if h.UsedDHT {
			fallbacks++
		}
	}
	c.HybridSuccess = float64(hybridHits) / float64(trials)
	c.DHTSuccess = float64(dhtHits) / float64(trials)
	c.HybridMeanCost = hybridCost / float64(trials)
	c.DHTMeanCost = dhtCost / float64(trials)
	c.DHTFallbackFrac = float64(fallbacks) / float64(trials)
	return c, nil
}
