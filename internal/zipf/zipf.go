// Package zipf implements bounded Zipf and Zipf–Mandelbrot distributions and
// estimators for their exponents.
//
// The paper's central empirical observation is that object names, object
// annotation terms and query terms all follow Zipf-like long-tail
// distributions. This package provides (a) samplers used by the synthetic
// trace generators and (b) fitting used by the analyses to verify that the
// generated and measured distributions really are Zipf-like.
package zipf

import (
	"fmt"
	"math"
	"sort"

	"querycentric/internal/rng"
)

// Dist is a bounded Zipf–Mandelbrot distribution over ranks 1..N:
//
//	P(rank = k) ∝ 1 / (k + q)^s
//
// with q = 0 giving the classical Zipf distribution. Sampling is by inverse
// transform over a precomputed cumulative table (O(log N) per draw).
type Dist struct {
	n   int
	s   float64
	q   float64
	cum []float64 // cum[i] = P(rank <= i+1), cum[n-1] == 1
}

// New returns a Zipf distribution over ranks 1..n with exponent s > 0.
func New(n int, s float64) (*Dist, error) {
	return NewMandelbrot(n, s, 0)
}

// NewMandelbrot returns a Zipf–Mandelbrot distribution over ranks 1..n with
// exponent s > 0 and shift q >= 0.
func NewMandelbrot(n int, s, q float64) (*Dist, error) {
	if n <= 0 {
		return nil, fmt.Errorf("zipf: n must be positive, got %d", n)
	}
	if s <= 0 {
		return nil, fmt.Errorf("zipf: exponent must be positive, got %g", s)
	}
	if q < 0 {
		return nil, fmt.Errorf("zipf: shift must be non-negative, got %g", q)
	}
	cum := make([]float64, n)
	total := 0.0
	for k := 1; k <= n; k++ {
		total += math.Pow(float64(k)+q, -s)
		cum[k-1] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	cum[n-1] = 1 // exact, despite rounding
	return &Dist{n: n, s: s, q: q, cum: cum}, nil
}

// N returns the number of ranks.
func (d *Dist) N() int { return d.n }

// S returns the exponent.
func (d *Dist) S() float64 { return d.s }

// Prob returns P(rank = k) for k in 1..N.
func (d *Dist) Prob(k int) float64 {
	if k < 1 || k > d.n {
		return 0
	}
	if k == 1 {
		return d.cum[0]
	}
	return d.cum[k-1] - d.cum[k-2]
}

// Sample draws a rank in 1..N.
func (d *Dist) Sample(r *rng.Source) int {
	x := r.Float64()
	i := sort.SearchFloat64s(d.cum, x)
	if i >= d.n {
		i = d.n - 1
	}
	return i + 1
}

// Quantile returns the smallest rank k with P(rank <= k) >= u, for
// u in [0, 1]. It is the inverse transform Sample uses, exposed so callers
// can couple this distribution's rank to another variable's rank.
func (d *Dist) Quantile(u float64) int {
	if u <= 0 {
		return 1
	}
	if u >= 1 {
		return d.n
	}
	i := sort.SearchFloat64s(d.cum, u)
	if i >= d.n {
		i = d.n - 1
	}
	return i + 1
}

// SampleMany draws k ranks.
func (d *Dist) SampleMany(r *rng.Source, k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = d.Sample(r)
	}
	return out
}

// ExpectedCounts returns the expected number of occurrences of each rank in
// total draws: counts[k-1] = total * P(rank = k).
func (d *Dist) ExpectedCounts(total int) []float64 {
	out := make([]float64, d.n)
	for k := 1; k <= d.n; k++ {
		out[k-1] = float64(total) * d.Prob(k)
	}
	return out
}

// Counts deterministically apportions total occurrences to ranks 1..n in
// Zipf proportion with every rank receiving at least min. It is used to
// build replica-count profiles (e.g. "12.1M objects over 8.1M unique names")
// without per-object sampling noise. Apportioning uses largest-remainder
// rounding so the counts sum exactly to max(total, n*min).
func (d *Dist) Counts(total, min int) []int {
	if min < 0 {
		min = 0
	}
	out := make([]int, d.n)
	base := d.n * min
	rem := total - base
	if rem < 0 {
		rem = 0
	}
	type frac struct {
		idx int
		f   float64
	}
	fracs := make([]frac, d.n)
	assigned := 0
	for k := 1; k <= d.n; k++ {
		exact := float64(rem) * d.Prob(k)
		whole := int(exact)
		out[k-1] = min + whole
		assigned += whole
		fracs[k-1] = frac{idx: k - 1, f: exact - float64(whole)}
	}
	// Distribute the remainder to the largest fractional parts; ties break
	// toward lower ranks for determinism.
	left := rem - assigned
	sort.Slice(fracs, func(i, j int) bool {
		if fracs[i].f != fracs[j].f {
			return fracs[i].f > fracs[j].f
		}
		return fracs[i].idx < fracs[j].idx
	})
	for i := 0; i < left && i < len(fracs); i++ {
		out[fracs[i].idx]++
	}
	return out
}

// Fit holds an estimated Zipf exponent.
type Fit struct {
	S  float64 // estimated exponent
	R2 float64 // goodness of the log–log linear fit (LSQ method only)
}

// FitRankFrequency estimates the Zipf exponent from a rank–frequency series
// (counts sorted descending is not required; the function sorts). It fits
// log(count) = -s*log(rank) + b by least squares over ranks with positive
// count. This is the estimator used throughout the paper's figures.
func FitRankFrequency(counts []int) (Fit, error) {
	cp := make([]int, 0, len(counts))
	for _, c := range counts {
		if c > 0 {
			cp = append(cp, c)
		}
	}
	if len(cp) < 2 {
		return Fit{}, fmt.Errorf("zipf: need at least 2 positive counts, have %d", len(cp))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(cp)))
	var sxx, sxy, syy, sx, sy float64
	n := float64(len(cp))
	for i, c := range cp {
		x := math.Log(float64(i + 1))
		y := math.Log(float64(c))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		syy += y * y
	}
	den := sxx - sx*sx/n
	if den == 0 {
		return Fit{}, fmt.Errorf("zipf: degenerate rank values")
	}
	slope := (sxy - sx*sy/n) / den
	r2 := 0.0
	if vy := syy - sy*sy/n; vy > 0 {
		r2 = (sxy - sx*sy/n) * (sxy - sx*sy/n) / (den * vy)
	}
	return Fit{S: -slope, R2: r2}, nil
}

// FitMLE estimates the exponent of a bounded Zipf distribution over ranks
// 1..n by maximum likelihood given observed per-rank counts (counts[k-1] is
// the number of occurrences of rank k). It solves d/ds log L = 0 by
// bisection on s in (0.1, 5].
func FitMLE(counts []int) (Fit, error) {
	n := len(counts)
	total := 0
	var sumLogK float64 // sum over observations of log(rank)
	for k := 1; k <= n; k++ {
		c := counts[k-1]
		if c < 0 {
			return Fit{}, fmt.Errorf("zipf: negative count at rank %d", k)
		}
		total += c
		sumLogK += float64(c) * math.Log(float64(k))
	}
	if total == 0 || n < 2 {
		return Fit{}, fmt.Errorf("zipf: insufficient data for MLE")
	}
	// d/ds log L = -sumLogK + total * (sum k^-s log k / sum k^-s) = 0.
	score := func(s float64) float64 {
		var num, den float64
		for k := 1; k <= n; k++ {
			w := math.Pow(float64(k), -s)
			num += w * math.Log(float64(k))
			den += w
		}
		return -sumLogK + float64(total)*num/den
	}
	lo, hi := 0.1, 5.0
	flo, fhi := score(lo), score(hi)
	if flo < 0 || fhi > 0 {
		// Root not bracketed: the data is extreme; fall back to LSQ.
		return FitRankFrequency(counts)
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if score(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return Fit{S: (lo + hi) / 2}, nil
}
