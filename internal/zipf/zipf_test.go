package zipf

import (
	"math"
	"testing"
	"testing/quick"

	"querycentric/internal/rng"
)

func TestNewValidation(t *testing.T) {
	for _, tc := range []struct {
		n int
		s float64
		q float64
	}{{0, 1, 0}, {-3, 1, 0}, {10, 0, 0}, {10, -1, 0}, {10, 1, -0.5}} {
		if _, err := NewMandelbrot(tc.n, tc.s, tc.q); err == nil {
			t.Errorf("NewMandelbrot(%d, %v, %v): expected error", tc.n, tc.s, tc.q)
		}
	}
	if _, err := New(10, 1); err != nil {
		t.Fatalf("New(10, 1): %v", err)
	}
}

func TestProbSumsToOne(t *testing.T) {
	d, err := New(1000, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for k := 1; k <= d.N(); k++ {
		sum += d.Prob(k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", sum)
	}
	if d.Prob(0) != 0 || d.Prob(1001) != 0 {
		t.Error("out-of-range Prob should be 0")
	}
}

func TestProbMonotone(t *testing.T) {
	d, _ := New(500, 1.2)
	for k := 2; k <= 500; k++ {
		if d.Prob(k) > d.Prob(k-1)+1e-15 {
			t.Fatalf("Prob not monotone at rank %d", k)
		}
	}
}

func TestSampleRange(t *testing.T) {
	d, _ := New(37, 1.0)
	r := rng.New(1)
	for i := 0; i < 10000; i++ {
		k := d.Sample(r)
		if k < 1 || k > 37 {
			t.Fatalf("sample %d out of range", k)
		}
	}
}

func TestSampleMatchesProb(t *testing.T) {
	d, _ := New(10, 1.0)
	r := rng.New(2)
	const n = 200000
	counts := make([]int, 10)
	for i := 0; i < n; i++ {
		counts[d.Sample(r)-1]++
	}
	for k := 1; k <= 10; k++ {
		want := float64(n) * d.Prob(k)
		got := float64(counts[k-1])
		if math.Abs(got-want) > 5*math.Sqrt(want) {
			t.Errorf("rank %d: got %v draws, want ~%v", k, got, want)
		}
	}
}

func TestSampleMany(t *testing.T) {
	d, _ := New(5, 1.0)
	out := d.SampleMany(rng.New(3), 17)
	if len(out) != 17 {
		t.Fatalf("SampleMany returned %d values", len(out))
	}
}

func TestMandelbrotFlattensHead(t *testing.T) {
	plain, _ := New(100, 1.0)
	shifted, _ := NewMandelbrot(100, 1.0, 10)
	// Shifting flattens the head: rank-1 probability must drop.
	if shifted.Prob(1) >= plain.Prob(1) {
		t.Errorf("Mandelbrot shift did not flatten head: %v >= %v",
			shifted.Prob(1), plain.Prob(1))
	}
}

func TestExpectedCounts(t *testing.T) {
	d, _ := New(4, 1.0)
	ec := d.ExpectedCounts(1000)
	sum := 0.0
	for _, c := range ec {
		sum += c
	}
	if math.Abs(sum-1000) > 1e-6 {
		t.Errorf("expected counts sum to %v", sum)
	}
	if ec[0] <= ec[3] {
		t.Error("expected counts should decrease with rank")
	}
}

func TestCountsExactTotal(t *testing.T) {
	d, _ := New(1000, 1.1)
	counts := d.Counts(12100, 1)
	sum := 0
	for _, c := range counts {
		sum += c
		if c < 1 {
			t.Fatal("count below minimum")
		}
	}
	if sum != 12100 {
		t.Errorf("counts sum to %d, want 12100", sum)
	}
	// Head must dominate tail.
	if counts[0] <= counts[999] {
		t.Error("counts not decreasing")
	}
}

func TestCountsTotalBelowMinimum(t *testing.T) {
	d, _ := New(10, 1.0)
	counts := d.Counts(5, 1) // total below n*min: everyone still gets min
	for _, c := range counts {
		if c != 1 {
			t.Errorf("count = %d, want 1", c)
		}
	}
}

func TestCountsDeterministic(t *testing.T) {
	d, _ := New(500, 0.9)
	a := d.Counts(7777, 1)
	b := d.Counts(7777, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Counts not deterministic")
		}
	}
}

func TestCountsProperty(t *testing.T) {
	d, _ := New(50, 1.0)
	f := func(totRaw uint16) bool {
		total := int(totRaw)
		counts := d.Counts(total, 1)
		sum := 0
		for _, c := range counts {
			if c < 1 {
				return false
			}
			sum += c
		}
		want := total
		if want < 50 {
			want = 50
		}
		return sum == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFitRankFrequencyRecovers(t *testing.T) {
	for _, s := range []float64{0.8, 1.0, 1.4} {
		d, _ := New(2000, s)
		counts := d.Counts(2000000, 0)
		fit, err := FitRankFrequency(counts)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fit.S-s) > 0.15 {
			t.Errorf("s=%v: fitted %v", s, fit.S)
		}
		if fit.R2 < 0.95 {
			t.Errorf("s=%v: R2 = %v too low", s, fit.R2)
		}
	}
}

func TestFitRankFrequencyErrors(t *testing.T) {
	if _, err := FitRankFrequency([]int{5}); err == nil {
		t.Error("expected error for single count")
	}
	if _, err := FitRankFrequency([]int{0, 0}); err == nil {
		t.Error("expected error for all-zero counts")
	}
}

func TestFitMLERecovers(t *testing.T) {
	for _, s := range []float64{0.9, 1.2} {
		d, _ := New(500, s)
		r := rng.New(7)
		counts := make([]int, 500)
		for i := 0; i < 200000; i++ {
			counts[d.Sample(r)-1]++
		}
		fit, err := FitMLE(counts)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fit.S-s) > 0.05 {
			t.Errorf("s=%v: MLE fitted %v", s, fit.S)
		}
	}
}

func TestFitMLEErrors(t *testing.T) {
	if _, err := FitMLE([]int{0, 0, 0}); err == nil {
		t.Error("expected error for empty data")
	}
	if _, err := FitMLE([]int{3, -1}); err == nil {
		t.Error("expected error for negative count")
	}
}

func BenchmarkSample(b *testing.B) {
	d, _ := New(100000, 1.0)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Sample(r)
	}
}

func BenchmarkCounts(b *testing.B) {
	d, _ := New(100000, 1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Counts(1000000, 1)
	}
}

func TestQuantile(t *testing.T) {
	d, _ := New(100, 1.0)
	if d.Quantile(0) != 1 || d.Quantile(-1) != 1 {
		t.Error("Quantile at u<=0 should be rank 1")
	}
	if d.Quantile(1) != 100 || d.Quantile(2) != 100 {
		t.Error("Quantile at u>=1 should be rank n")
	}
	// Monotone in u.
	prev := 0
	for u := 0.0; u <= 1.0; u += 0.01 {
		k := d.Quantile(u)
		if k < prev {
			t.Fatalf("Quantile not monotone at u=%v", u)
		}
		prev = k
	}
}

func TestQuantileMatchesSample(t *testing.T) {
	// Sample is inverse-transform over the same table, so the quantile of
	// a uniform draw must reproduce the sampling distribution: check the
	// median rank region.
	d, _ := New(1000, 1.0)
	half := d.Quantile(0.5)
	// For Zipf s=1 over 1000 ranks, half the mass sits in the first ~30
	// ranks (H(31)≈H(1000)/2).
	if half < 5 || half > 100 {
		t.Errorf("median rank = %d, want small head rank", half)
	}
}

func TestQuantileProperty(t *testing.T) {
	d, _ := New(50, 1.2)
	f := func(raw uint16) bool {
		u := float64(raw) / 65535
		k := d.Quantile(u)
		return k >= 1 && k <= 50
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
