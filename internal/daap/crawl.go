package daap

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"

	"querycentric/internal/dmap"
	"querycentric/internal/trace"
)

// CrawlStats is the share funnel the crawl observed, mirroring the paper's
// report (620 discovered → 45 password, 33 busy, firewalled remainder, 239
// collected).
type CrawlStats struct {
	Discovered int
	Collected  int
	Password   int
	Busy       int
	Firewalled int
	Failed     int
}

// String formats the funnel.
func (s *CrawlStats) String() string {
	return fmt.Sprintf("discovered=%d collected=%d password=%d busy=%d firewalled=%d failed=%d",
		s.Discovered, s.Collected, s.Password, s.Busy, s.Firewalled, s.Failed)
}

// errFirewalled simulates a TCP connection timeout to a firewalled share.
var errFirewalled = errors.New("daap: connection timed out (firewalled)")

// Crawl visits every share in the population the way AppleRecords did —
// Zeroconf discovery (here: the population listing), then per share
// /server-info, /login, /databases/1/items over HTTP+DMAP — and returns the
// observed song trace. Firewalled shares fail to connect; password and busy
// shares are counted and skipped.
func Crawl(p *Population) (*trace.SongTrace, *CrawlStats, error) {
	stats := &CrawlStats{Discovered: len(p.Shares)}
	tr := &trace.SongTrace{Source: "itunes-sim-crawl"}
	peerIdx := 0
	for _, share := range p.Shares {
		songs, err := crawlShare(share)
		switch {
		case errors.Is(err, errFirewalled):
			stats.Firewalled++
		case isStatus(err, http.StatusUnauthorized):
			stats.Password++
		case isStatus(err, http.StatusServiceUnavailable):
			stats.Busy++
		case err != nil:
			stats.Failed++
		default:
			stats.Collected++
			for _, s := range songs {
				tr.Records = append(tr.Records, trace.SongRecord{
					Peer: peerIdx, Track: s.Track, Artist: s.Artist,
					Album: s.Album, Genre: s.Genre,
				})
			}
			peerIdx++
		}
	}
	tr.Peers = stats.Collected
	return tr, stats, nil
}

func isStatus(err error, code int) bool {
	var se *statusError
	return errors.As(err, &se) && se.Code == code
}

// crawlShare speaks the DAAP subset against one share through an in-memory
// HTTP round tripper (the handler is real; only the TCP socket is elided).
func crawlShare(share *Share) ([]SongMeta, error) {
	if share.Status == StatusFirewalled {
		return nil, errFirewalled
	}
	client := &http.Client{Transport: &handlerTransport{h: Serve(share)}}
	return CrawlURL(client, "http://share.local", share.ID)
}

// CrawlURL runs the crawl conversation against a DAAP endpoint reachable
// through client at baseURL. Exported so integration tests (and the
// qc-itunes tool) can crawl real TCP listeners.
func CrawlURL(client *http.Client, baseURL string, shareID int) ([]SongMeta, error) {
	get := func(op, path string) (*dmap.Node, error) {
		req, err := http.NewRequest(http.MethodGet, baseURL+path, nil)
		if err != nil {
			return nil, err
		}
		req.Header.Set(clientIPHeader, "10.99.0.1")
		resp, err := client.Do(req)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			return nil, &statusError{ShareID: shareID, Code: resp.StatusCode, Op: op}
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		return dmap.Decode(body)
	}

	if _, err := get("server-info", "/server-info"); err != nil {
		return nil, err
	}
	login, err := get("login", "/login")
	if err != nil {
		return nil, err
	}
	sess := login.ChildUint("mlid")
	if sess == 0 {
		return nil, fmt.Errorf("daap: share %d: login returned no session", shareID)
	}
	if _, err := get("databases", fmt.Sprintf("/databases?session-id=%d", sess)); err != nil {
		return nil, err
	}
	items, err := get("items", fmt.Sprintf("/databases/1/items?session-id=%d", sess))
	if err != nil {
		return nil, err
	}
	mlcl := items.Child("mlcl")
	if mlcl == nil {
		return nil, fmt.Errorf("daap: share %d: items response missing mlcl", shareID)
	}
	var songs []SongMeta
	for _, item := range mlcl.Children {
		if item.Code != "mlit" {
			continue
		}
		songs = append(songs, SongMeta{
			Track:  item.ChildString("minm"),
			Artist: item.ChildString("asar"),
			Album:  item.ChildString("asal"),
			Genre:  item.ChildString("asgn"),
		})
	}
	return songs, nil
}

// handlerTransport dispatches HTTP requests straight into a handler,
// avoiding per-share TCP listeners during large crawls.
type handlerTransport struct{ h http.Handler }

func (t *handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	// Strip the host so the mux sees the bare path.
	clone := req.Clone(req.Context())
	clone.RequestURI = ""
	clone.URL.Scheme = ""
	clone.URL.Host = ""
	if !strings.HasPrefix(clone.URL.Path, "/") {
		clone.URL.Path = "/" + clone.URL.Path
	}
	t.h.ServeHTTP(rec, clone)
	return rec.Result(), nil
}
