// Package daap implements the iTunes-sharing substrate: an annotated song
// population across shares, a DAAP-like HTTP server speaking DMAP, the
// share restriction model the paper encountered (password protection, the
// five-clients-per-day busy limit, firewalls), a Gracenote-like canonical
// metadata service, and an AppleRecords-style crawler producing song
// traces.
//
// It substitutes for the paper's Notre Dame measurement: 620 shares
// discovered, of which 45 were password-protected, 33 busy, many
// firewalled, and 239 readable, yielding 533,768 songs (171,068 unique)
// with Zipf-like song/genre/album/artist annotation distributions.
package daap

import (
	"fmt"
	"sort"

	"querycentric/internal/rng"
	"querycentric/internal/vocab"
	"querycentric/internal/zipf"
)

// SongMeta is one song's annotations as stored by a client.
type SongMeta struct {
	SongID int // global identity (what Gracenote keys on)
	Track  string
	Artist string
	Album  string
	Genre  string
}

// Gracenote is the deterministic canonical-metadata service: the paper
// notes ripped songs were annotated automatically from Gracenote, which is
// why album/artist strings converge across clients. Artist, album and
// genre popularity are Zipf: a handful of head artists account for many
// songs while most artists contribute one or two — that skew is what makes
// 65% of artists appear on a single client (Figure 4d).
type Gracenote struct {
	vocab      *vocab.Vocabulary
	seed       uint64
	totalSongs int // 0 disables rank coupling
	artistDist *zipf.Dist
	albumDist  *zipf.Dist
	genreDist  *zipf.Dist
}

// NewGracenote builds the service over a vocabulary. totalSongs, when
// positive, enables rank coupling: low song IDs (the popular songs) map to
// popular artists/albums and high song IDs to obscure ones — the
// correlation that makes 65% of observed artists appear on a single client
// (an obscure artist's one song is itself rarely replicated).
func NewGracenote(v *vocab.Vocabulary, seed uint64, totalSongs int) (*Gracenote, error) {
	if v == nil || len(v.Titles) == 0 || len(v.Artists) == 0 || len(v.Albums) == 0 {
		return nil, fmt.Errorf("daap: vocabulary must have titles, artists and albums")
	}
	g := &Gracenote{vocab: v, seed: seed, totalSongs: totalSongs}
	var err error
	if g.artistDist, err = zipf.New(len(v.Artists), 1.05); err != nil {
		return nil, err
	}
	if g.albumDist, err = zipf.New(len(v.Albums), 1.05); err != nil {
		return nil, err
	}
	if len(v.Genres) > 0 {
		if g.genreDist, err = zipf.New(len(v.Genres), 1.4); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Lookup returns the canonical metadata of songID. Identical inputs always
// return identical metadata.
func (g *Gracenote) Lookup(songID int) SongMeta {
	r := rng.NewNamed(g.seed, fmt.Sprintf("gracenote/%d", songID))
	meta := SongMeta{
		SongID: songID,
		Track:  g.vocab.Titles[r.Intn(len(g.vocab.Titles))],
		Artist: g.vocab.Artists[g.rankDraw(g.artistDist, songID, r)-1],
		Album:  g.vocab.Albums[g.rankDraw(g.albumDist, songID, r)-1],
	}
	if g.genreDist != nil {
		meta.Genre = g.vocab.Genres[g.rankDraw(g.genreDist, songID, r)-1]
	}
	return meta
}

// rankDraw samples a rank from d, coupled (with jitter) to the song's own
// popularity rank when coupling is enabled.
func (g *Gracenote) rankDraw(d *zipf.Dist, songID int, r *rng.Source) int {
	if g.totalSongs <= 0 || songID < 0 || songID >= g.totalSongs {
		return d.Sample(r)
	}
	// Jittered quantile coupling: the song's popularity quantile, blurred
	// by ±12%, drives the annotation's popularity quantile.
	u := (float64(songID) + r.Float64()) / float64(g.totalSongs)
	u += (r.Float64() - 0.5) * 0.25
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return d.Quantile(u)
}

// ShareStatus is the reachability class of a share.
type ShareStatus int

const (
	StatusOK ShareStatus = iota
	StatusPassword
	StatusBusy
	StatusFirewalled
)

// String names the status.
func (s ShareStatus) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusPassword:
		return "password"
	case StatusBusy:
		return "busy"
	case StatusFirewalled:
		return "firewalled"
	default:
		return fmt.Sprintf("ShareStatus(%d)", int(s))
	}
}

// Share is one iTunes share.
type Share struct {
	ID           int
	Name         string
	Status       ShareStatus
	Password     string // non-empty for StatusPassword
	PriorClients int    // distinct clients already seen today (busy model)
	Songs        []SongMeta
}

// Config sizes and shapes a share population.
type Config struct {
	Seed   uint64
	Shares int // total shares discovered by the Zeroconf sweep

	// The funnel, as fractions of Shares (remainder is readable). The
	// paper's funnel: 45/620 password, 33/620 busy, 239/620 readable.
	PasswordFrac   float64
	BusyFrac       float64
	FirewalledFrac float64

	UniqueSongs  int     // distinct songs across readable shares
	ReplicaAlpha float64 // P(clients holding song = k) ∝ k^-α; ≈2.05
	MaxReplicas  int     // 0 ⇒ number of readable shares

	NoGenreFrac      float64 // songs stored without a genre (paper: 8.7%)
	NoAlbumFrac      float64 // songs stored without an album (paper: 8.1%)
	GenreVariantProb float64 // user-edited genre strings ("rock", "ROCK!!!")

	Vocab vocab.Config // zero ⇒ sized from UniqueSongs
}

// DefaultConfig is the scaled-down Notre Dame population: 125 shares with
// the paper's funnel proportions, ~11,000 unique songs.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:             seed,
		Shares:           125,
		PasswordFrac:     45.0 / 620,
		BusyFrac:         33.0 / 620,
		FirewalledFrac:   303.0 / 620,
		UniqueSongs:      11000,
		ReplicaAlpha:     2.05,
		NoGenreFrac:      0.087,
		NoAlbumFrac:      0.081,
		GenreVariantProb: 0.10,
	}
}

// Population is a fully built set of shares.
type Population struct {
	Config Config
	Shares []*Share
	// Readable indexes the shares with StatusOK.
	Readable []*Share
}

// BuildPopulation constructs the share population for cfg.
func BuildPopulation(cfg Config) (*Population, error) {
	if cfg.Shares <= 0 {
		return nil, fmt.Errorf("daap: Shares must be positive, got %d", cfg.Shares)
	}
	if cfg.UniqueSongs <= 0 {
		return nil, fmt.Errorf("daap: UniqueSongs must be positive, got %d", cfg.UniqueSongs)
	}
	if cfg.ReplicaAlpha <= 1 {
		return nil, fmt.Errorf("daap: ReplicaAlpha must exceed 1, got %g", cfg.ReplicaAlpha)
	}
	for _, f := range []float64{cfg.PasswordFrac, cfg.BusyFrac, cfg.FirewalledFrac,
		cfg.NoGenreFrac, cfg.NoAlbumFrac, cfg.GenreVariantProb} {
		if f < 0 || f > 1 {
			return nil, fmt.Errorf("daap: fraction out of range in %+v", cfg)
		}
	}
	if cfg.PasswordFrac+cfg.BusyFrac+cfg.FirewalledFrac >= 1 {
		return nil, fmt.Errorf("daap: funnel fractions leave no readable shares")
	}

	vcfg := cfg.Vocab
	if vcfg.Artists == 0 {
		vcfg = vocab.Config{
			Seed:    cfg.Seed,
			Artists: maxInt(400, cfg.UniqueSongs),
			// Titles must comfortably exceed songs: the paper saw 171,068
			// unique objects collapse only to 152,850 unique song names,
			// i.e. ~10% title collision.
			Titles: maxInt(2000, 4*cfg.UniqueSongs),
			Albums: maxInt(300, (cfg.UniqueSongs*4)/5),
			Genres: 500,
			Extra:  200,
		}
	}
	voc, err := vocab.New(vcfg)
	if err != nil {
		return nil, err
	}
	gn, err := NewGracenote(voc, cfg.Seed, cfg.UniqueSongs)
	if err != nil {
		return nil, err
	}

	p := &Population{Config: cfg}
	statusRNG := rng.NewNamed(cfg.Seed, "daap/status")
	nameRNG := rng.NewNamed(cfg.Seed, "daap/share-names")
	for i := 0; i < cfg.Shares; i++ {
		s := &Share{ID: i, Name: fmt.Sprintf("%s's Music", voc.Artists[nameRNG.Intn(len(voc.Artists))])}
		u := statusRNG.Float64()
		switch {
		case u < cfg.PasswordFrac:
			s.Status = StatusPassword
			s.Password = fmt.Sprintf("secret-%d", i)
		case u < cfg.PasswordFrac+cfg.BusyFrac:
			s.Status = StatusBusy
			s.PriorClients = BusyClientLimit + statusRNG.Intn(5)
		case u < cfg.PasswordFrac+cfg.BusyFrac+cfg.FirewalledFrac:
			s.Status = StatusFirewalled
		default:
			s.Status = StatusOK
			s.PriorClients = statusRNG.Intn(3)
			p.Readable = append(p.Readable, s)
		}
		p.Shares = append(p.Shares, s)
	}
	if len(p.Readable) == 0 {
		return nil, fmt.Errorf("daap: no readable shares materialized; increase Shares")
	}

	// Place songs across the readable shares with power-law replica counts.
	maxRep := cfg.MaxReplicas
	if maxRep <= 0 || maxRep > len(p.Readable) {
		maxRep = len(p.Readable)
	}
	repDist, err := zipf.New(maxRep, cfg.ReplicaAlpha)
	if err != nil {
		return nil, err
	}
	repRNG := rng.NewNamed(cfg.Seed, "daap/replicas")
	placeRNG := rng.NewNamed(cfg.Seed, "daap/placement")
	editRNG := rng.NewNamed(cfg.Seed, "daap/edits")
	// Replica counts sorted descending by song ID: song 0 is the most
	// replicated. Sorting preserves the marginal power law while creating
	// the popularity correlation Gracenote's rank coupling relies on.
	ks := make([]int, cfg.UniqueSongs)
	for i := range ks {
		ks[i] = repDist.Sample(repRNG)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ks)))
	for songID := 0; songID < cfg.UniqueSongs; songID++ {
		meta := gn.Lookup(songID)
		k := ks[songID]
		for _, si := range placeRNG.SampleInts(len(p.Readable), k) {
			inst := meta
			if editRNG.Bool(cfg.NoGenreFrac) {
				inst.Genre = ""
			} else if editRNG.Bool(cfg.GenreVariantProb) {
				inst.Genre = genreVariant(inst.Genre, editRNG)
			}
			if editRNG.Bool(cfg.NoAlbumFrac) {
				inst.Album = ""
			}
			p.Readable[si].Songs = append(p.Readable[si].Songs, inst)
		}
	}
	return p, nil
}

// genreVariant perturbs a genre string the way users do.
func genreVariant(g string, r *rng.Source) string {
	if g == "" {
		return g
	}
	switch r.Intn(3) {
	case 0:
		return lower(g)
	case 1:
		return upper(g) + "!!!"
	default:
		return "My " + g
	}
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 32
		}
	}
	return string(b)
}

func upper(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'a' && c <= 'z' {
			b[i] = c - 32
		}
	}
	return string(b)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TotalSongs counts song instances across readable shares.
func (p *Population) TotalSongs() int {
	n := 0
	for _, s := range p.Readable {
		n += len(s.Songs)
	}
	return n
}
