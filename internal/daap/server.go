package daap

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"querycentric/internal/dmap"
)

// BusyClientLimit is iTunes' restriction: at most this many distinct
// clients may connect to a share within 24 hours.
const BusyClientLimit = 5

// clientIPHeader carries the (simulated) source address of a crawler
// request; the busy limit counts distinct values of it.
const clientIPHeader = "X-Client-IP"

// server is the HTTP handler for one share.
type server struct {
	share *Share

	mu       sync.Mutex
	sessions map[uint32]bool
	nextSess uint32
	clients  map[string]bool // distinct client addresses seen "today"
}

// Serve returns the DAAP HTTP handler for a share. The handler implements
// the subset of endpoints AppleRecords used: /server-info, /login,
// /databases and /databases/1/items.
func Serve(s *Share) http.Handler {
	srv := &server{share: s, sessions: map[uint32]bool{}, nextSess: 100, clients: map[string]bool{}}
	mux := http.NewServeMux()
	mux.HandleFunc("/server-info", srv.serverInfo)
	mux.HandleFunc("/login", srv.login)
	mux.HandleFunc("/databases", srv.databases)
	mux.HandleFunc("/databases/1/items", srv.items)
	return mux
}

func writeDMAP(w http.ResponseWriter, n *dmap.Node) {
	b, err := dmap.Encode(n)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/x-dmap-tagged")
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}

func (s *server) serverInfo(w http.ResponseWriter, r *http.Request) {
	loginRequired := uint64(0)
	if s.share.Status == StatusPassword {
		loginRequired = 1
	}
	writeDMAP(w, dmap.Container("msrv",
		dmap.Uint32("mstt", 200),
		dmap.Version("mpro", 2, 0),
		dmap.Version("apro", 3, 0),
		dmap.String("minm", s.share.Name),
		dmap.Uint("mslr", loginRequired, 1),
		dmap.Uint("mstm", 1800, 4),
	))
}

// login enforces the restriction model: password shares require basic auth
// with the share's password; the busy limit rejects a sixth distinct
// client in the window.
func (s *server) login(w http.ResponseWriter, r *http.Request) {
	if s.share.Status == StatusPassword {
		_, pass, ok := r.BasicAuth()
		if !ok || pass != s.share.Password {
			w.Header().Set("WWW-Authenticate", `Basic realm="daap"`)
			http.Error(w, "password required", http.StatusUnauthorized)
			return
		}
	}
	client := r.Header.Get(clientIPHeader)
	if client == "" {
		client = r.RemoteAddr
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.clients[client] {
		if s.share.PriorClients+len(s.clients) >= BusyClientLimit {
			http.Error(w, "too many connections today", http.StatusServiceUnavailable)
			return
		}
		s.clients[client] = true
	}
	s.nextSess++
	sess := s.nextSess
	s.sessions[sess] = true
	writeDMAP(w, dmap.Container("mlog",
		dmap.Uint32("mstt", 200),
		dmap.Uint32("mlid", sess),
	))
}

// validSession checks the session-id query parameter.
func (s *server) validSession(r *http.Request) bool {
	id, err := strconv.ParseUint(r.URL.Query().Get("session-id"), 10, 32)
	if err != nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[uint32(id)]
}

func (s *server) databases(w http.ResponseWriter, r *http.Request) {
	if !s.validSession(r) {
		http.Error(w, "invalid session", http.StatusForbidden)
		return
	}
	writeDMAP(w, dmap.Container("avdb",
		dmap.Uint32("mstt", 200),
		dmap.Uint32("mtco", 1),
		dmap.Uint32("mrco", 1),
		dmap.Container("mlcl",
			dmap.Container("mlit",
				dmap.Uint32("miid", 1),
				dmap.String("minm", s.share.Name),
				dmap.Uint32("mtco", uint32(len(s.share.Songs))),
			),
		),
	))
}

func (s *server) items(w http.ResponseWriter, r *http.Request) {
	if !s.validSession(r) {
		http.Error(w, "invalid session", http.StatusForbidden)
		return
	}
	items := make([]*dmap.Node, 0, len(s.share.Songs))
	for i, song := range s.share.Songs {
		item := dmap.Container("mlit",
			dmap.Uint32("miid", uint32(i+1)),
			dmap.String("minm", song.Track),
			dmap.String("asar", song.Artist),
			dmap.String("asal", song.Album),
			dmap.String("asgn", song.Genre),
			dmap.String("asfm", "mp3"),
			dmap.Uint32("astm", 200000),
			dmap.Uint32("assr", 44100),
			dmap.Uint32("asbr", 192),
		)
		items = append(items, item)
	}
	writeDMAP(w, dmap.Container("adbs",
		dmap.Uint32("mstt", 200),
		dmap.Uint32("mtco", uint32(len(items))),
		dmap.Uint32("mrco", uint32(len(items))),
		dmap.Container("mlcl", items...),
	))
}

// statusError annotates HTTP failures with the share context.
type statusError struct {
	ShareID int
	Code    int
	Op      string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("daap: share %d: %s returned HTTP %d", e.ShareID, e.Op, e.Code)
}
