package daap

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"querycentric/internal/stats"
	"querycentric/internal/vocab"
)

func smallConfig(seed uint64) Config {
	cfg := DefaultConfig(seed)
	cfg.Shares = 60
	cfg.UniqueSongs = 4000
	return cfg
}

func TestBuildPopulationValidation(t *testing.T) {
	bad := []Config{
		{Shares: 0, UniqueSongs: 10, ReplicaAlpha: 2},
		{Shares: 10, UniqueSongs: 0, ReplicaAlpha: 2},
		{Shares: 10, UniqueSongs: 10, ReplicaAlpha: 0.5},
		{Shares: 10, UniqueSongs: 10, ReplicaAlpha: 2, NoGenreFrac: 2},
		{Shares: 10, UniqueSongs: 10, ReplicaAlpha: 2, PasswordFrac: 0.5, BusyFrac: 0.5},
	}
	for i, cfg := range bad {
		if _, err := BuildPopulation(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestPopulationFunnel(t *testing.T) {
	p, err := BuildPopulation(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	var pw, busy, fw, ok int
	for _, s := range p.Shares {
		switch s.Status {
		case StatusPassword:
			pw++
		case StatusBusy:
			busy++
		case StatusFirewalled:
			fw++
		case StatusOK:
			ok++
		}
	}
	if pw+busy+fw+ok != 60 {
		t.Fatal("statuses do not partition the shares")
	}
	if ok != len(p.Readable) {
		t.Errorf("Readable list inconsistent: %d vs %d", ok, len(p.Readable))
	}
	if fw == 0 || ok == 0 {
		t.Errorf("degenerate funnel: pw=%d busy=%d fw=%d ok=%d", pw, busy, fw, ok)
	}
}

func TestPopulationDeterministic(t *testing.T) {
	a, _ := BuildPopulation(smallConfig(5))
	b, _ := BuildPopulation(smallConfig(5))
	if a.TotalSongs() != b.TotalSongs() {
		t.Fatalf("song totals differ: %d vs %d", a.TotalSongs(), b.TotalSongs())
	}
	for i := range a.Shares {
		if a.Shares[i].Status != b.Shares[i].Status {
			t.Fatalf("share %d status differs", i)
		}
	}
}

func TestAnnotationCalibration(t *testing.T) {
	p, err := BuildPopulation(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	// Song-name singleton fraction ~64% (paper) — accept 0.50–0.78.
	holders := map[string]map[int]struct{}{}
	var noGenre, noAlbum, total int
	for _, s := range p.Readable {
		for _, song := range s.Songs {
			total++
			if song.Genre == "" {
				noGenre++
			}
			if song.Album == "" {
				noAlbum++
			}
			m, ok := holders[song.Track]
			if !ok {
				m = map[int]struct{}{}
				holders[song.Track] = m
			}
			m[s.ID] = struct{}{}
		}
	}
	counts := make([]int, 0, len(holders))
	for _, m := range holders {
		counts = append(counts, len(m))
	}
	single := stats.FractionEqual(counts, 1)
	if single < 0.50 || single > 0.78 {
		t.Errorf("song singleton fraction = %v, want ~0.64", single)
	}
	if f := float64(noGenre) / float64(total); f < 0.05 || f > 0.13 {
		t.Errorf("no-genre fraction = %v, want ~0.087", f)
	}
	if f := float64(noAlbum) / float64(total); f < 0.05 || f > 0.12 {
		t.Errorf("no-album fraction = %v, want ~0.081", f)
	}
	// Mean placements per unique song ~2–4 (paper: 3.1).
	mean := float64(total) / float64(len(holders))
	if mean < 1.5 || mean > 4.5 {
		t.Errorf("mean song replication = %v, want ~3", mean)
	}
}

func TestGracenoteDeterministic(t *testing.T) {
	v, err := vocab.New(vocab.Config{Seed: 9, Artists: 100, Titles: 500, Albums: 80, Genres: 40})
	if err != nil {
		t.Fatal(err)
	}
	gnA, err := NewGracenote(v, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	gnB, err := NewGracenote(v, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if gnA.Lookup(i) != gnB.Lookup(i) {
			t.Fatal("Gracenote lookup not deterministic")
		}
	}
	if gnA.Lookup(1) == gnA.Lookup(2) {
		t.Error("distinct songs share identical metadata (suspicious)")
	}
}

func TestGracenoteValidation(t *testing.T) {
	if _, err := NewGracenote(nil, 1, 0); err == nil {
		t.Error("nil vocabulary accepted")
	}
}

func TestCrawlFunnelAndTrace(t *testing.T) {
	p, err := BuildPopulation(smallConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	tr, cs, err := Crawl(p)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Discovered != 60 {
		t.Errorf("discovered %d", cs.Discovered)
	}
	if cs.Collected != len(p.Readable) {
		t.Errorf("collected %d, want %d readable", cs.Collected, len(p.Readable))
	}
	var wantPW, wantBusy, wantFW int
	for _, s := range p.Shares {
		switch s.Status {
		case StatusPassword:
			wantPW++
		case StatusBusy:
			wantBusy++
		case StatusFirewalled:
			wantFW++
		}
	}
	if cs.Password != wantPW || cs.Busy != wantBusy || cs.Firewalled != wantFW {
		t.Errorf("funnel %s, want pw=%d busy=%d fw=%d", cs, wantPW, wantBusy, wantFW)
	}
	if cs.Failed != 0 {
		t.Errorf("unexpected failures: %s", cs)
	}
	if len(tr.Records) != p.TotalSongs() {
		t.Errorf("trace has %d records, population has %d songs", len(tr.Records), p.TotalSongs())
	}
	if tr.Peers != cs.Collected {
		t.Errorf("trace.Peers = %d, want %d", tr.Peers, cs.Collected)
	}
}

func TestCrawlPreservesAnnotations(t *testing.T) {
	p, err := BuildPopulation(smallConfig(13))
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := Crawl(p)
	if err != nil {
		t.Fatal(err)
	}
	want := map[SongMeta]int{}
	for _, s := range p.Readable {
		for _, song := range s.Songs {
			key := SongMeta{Track: song.Track, Artist: song.Artist, Album: song.Album, Genre: song.Genre}
			want[key]++
		}
	}
	got := map[SongMeta]int{}
	for _, r := range tr.Records {
		got[SongMeta{Track: r.Track, Artist: r.Artist, Album: r.Album, Genre: r.Genre}]++
	}
	if len(got) != len(want) {
		t.Fatalf("distinct annotation tuples: got %d, want %d", len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("tuple %+v: got %d, want %d", k, got[k], n)
		}
	}
}

func TestServerOverRealTCP(t *testing.T) {
	p, err := BuildPopulation(smallConfig(15))
	if err != nil {
		t.Fatal(err)
	}
	share := p.Readable[0]
	ts := httptest.NewServer(Serve(share))
	defer ts.Close()
	songs, err := CrawlURL(ts.Client(), ts.URL, share.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(songs) != len(share.Songs) {
		t.Errorf("crawled %d songs over TCP, want %d", len(songs), len(share.Songs))
	}
}

func TestPasswordShareRejects(t *testing.T) {
	share := &Share{ID: 1, Name: "locked", Status: StatusPassword, Password: "pw",
		Songs: []SongMeta{{Track: "x"}}}
	if _, err := crawlShare(share); !isStatus(err, http.StatusUnauthorized) {
		t.Errorf("expected 401, got %v", err)
	}
}

func TestPasswordShareAcceptsCorrectAuth(t *testing.T) {
	share := &Share{ID: 1, Name: "locked", Status: StatusPassword, Password: "pw",
		Songs: []SongMeta{{Track: "x", Artist: "y"}}}
	ts := httptest.NewServer(Serve(share))
	defer ts.Close()
	// Hand-rolled conversation with auth.
	client := ts.Client()
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/login", nil)
	req.SetBasicAuth("", "pw")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("authorized login returned %d", resp.StatusCode)
	}
}

func TestBusyShareRejects(t *testing.T) {
	share := &Share{ID: 2, Name: "popular", Status: StatusBusy, PriorClients: BusyClientLimit}
	if _, err := crawlShare(share); !isStatus(err, http.StatusServiceUnavailable) {
		t.Errorf("expected 503, got %v", err)
	}
}

func TestBusyLimitCountsDistinctClients(t *testing.T) {
	share := &Share{ID: 3, Name: "s", Status: StatusOK, PriorClients: BusyClientLimit - 1}
	ts := httptest.NewServer(Serve(share))
	defer ts.Close()
	login := func(ip string) int {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/login", nil)
		req.Header.Set(clientIPHeader, ip)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if code := login("10.0.0.1"); code != http.StatusOK {
		t.Fatalf("first client rejected with %d", code)
	}
	if code := login("10.0.0.1"); code != http.StatusOK {
		t.Fatalf("same client re-login rejected with %d", code)
	}
	if code := login("10.0.0.2"); code != http.StatusServiceUnavailable {
		t.Fatalf("over-limit client got %d, want 503", code)
	}
}

func TestSessionRequired(t *testing.T) {
	share := &Share{ID: 4, Name: "s", Status: StatusOK, Songs: []SongMeta{{Track: "x"}}}
	ts := httptest.NewServer(Serve(share))
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/databases/1/items?session-id=999")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("bogus session got %d, want 403", resp.StatusCode)
	}
}

func TestShareStatusString(t *testing.T) {
	for s, want := range map[ShareStatus]string{
		StatusOK: "ok", StatusPassword: "password", StatusBusy: "busy",
		StatusFirewalled: "firewalled", ShareStatus(9): "ShareStatus(9)",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
}

func BenchmarkCrawlPopulation(b *testing.B) {
	p, err := BuildPopulation(smallConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Crawl(p); err != nil {
			b.Fatal(err)
		}
	}
}
