// Package profiling wires the standard pprof endpoints into the CLI
// commands: a -cpuprofile flag captures the run's CPU samples and a
// -memprofile flag writes a final heap snapshot, so flood and trial-engine
// optimisations can be driven by measured profiles instead of guesses.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (no-op when empty) and returns a
// finish function that stops the CPU profile and, when memPath is
// non-empty, writes a heap profile. Call finish exactly once, after the
// measured work.
func Start(cpuPath, memPath string) (finish func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		return nil
	}, nil
}
