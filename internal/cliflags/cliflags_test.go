package cliflags

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"querycentric/internal/obs"
)

func TestObsDisabledByDefault(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	o := AddObs(fs, "qc-test")
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	reg, traces := o.Setup()
	if reg != nil || traces != nil || o.Enabled() {
		t.Fatal("plane must be disabled without -metrics")
	}
	path, err := o.WriteManifest("", "tiny", 42, 1)
	if err != nil || path != "" {
		t.Fatalf("disabled WriteManifest = (%q, %v), want no-op", path, err)
	}
}

func TestTraceFloodsImpliesMetrics(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	o := AddObs(fs, "qc-test")
	if err := fs.Parse([]string{"-trace-floods"}); err != nil {
		t.Fatal(err)
	}
	reg, traces := o.Setup()
	if reg == nil || traces == nil {
		t.Fatal("-trace-floods must enable both registry and trace recorder")
	}
}

func TestWriteManifest(t *testing.T) {
	dir := t.TempDir()
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	o := AddObs(fs, "qc-test")
	if err := fs.Parse([]string{"-metrics", "-metrics-dir", dir}); err != nil {
		t.Fatal(err)
	}
	reg, _ := o.Setup()
	reg.Counter("a_total").Add(3)
	path, err := o.WriteManifest("fig8", "tiny", 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "RUN_qc-test_fig8_tiny_seed7.json" {
		t.Errorf("manifest name = %s", filepath.Base(path))
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m obs.Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m.Command != "qc-test" || m.Mode != "fig8" || m.Seed != 7 || m.Workers != 4 {
		t.Errorf("manifest header = %+v", m)
	}
	if m.Fingerprint == "" || m.SchemaVersion != obs.ManifestSchemaVersion {
		t.Errorf("manifest not finalized: %+v", m)
	}
	prom, err := os.ReadFile(strings.TrimSuffix(path, ".json") + ".prom")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prom), "a_total 3") {
		t.Errorf("prom exposition missing counter: %q", prom)
	}
}

func TestChecks(t *testing.T) {
	if CheckWorkers(0) != nil || CheckWorkers(8) != nil {
		t.Error("valid workers rejected")
	}
	if CheckWorkers(-1) == nil {
		t.Error("negative workers accepted")
	}
	if CheckFrac("-dead", 0) != nil || CheckFrac("-dead", 1) != nil {
		t.Error("valid fraction rejected")
	}
	if CheckFrac("-dead", -0.1) == nil || CheckFrac("-dead", 1.1) == nil {
		t.Error("out-of-range fraction accepted")
	}
	if CheckPositive("-peers", 1) != nil || CheckPositive("-peers", 0) == nil {
		t.Error("CheckPositive wrong")
	}
	if CheckNonNegative("-attempts", 0) != nil || CheckNonNegative("-attempts", -1) == nil {
		t.Error("CheckNonNegative wrong")
	}
	if CheckPositiveSeconds("-interval", 60) != nil || CheckPositiveSeconds("-interval", 0) == nil {
		t.Error("CheckPositiveSeconds wrong")
	}
}

// TestAdaptiveKnobChecks covers the qc-sim query-centric-mode flags: the
// adaptation interval must be positive, the budgets non-negative (zero
// disables the mechanism), and the replica scheme must come from the
// adaptive package's set.
func TestAdaptiveKnobChecks(t *testing.T) {
	valid := AddAdaptive(flag.NewFlagSet("x", flag.ContinueOnError))
	if err := valid.Check(); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*AdaptiveFlags)
		ok     bool
	}{
		{"defaults", func(*AdaptiveFlags) {}, true},
		{"interval one", func(a *AdaptiveFlags) { a.Interval = 1 }, true},
		{"interval zero", func(a *AdaptiveFlags) { a.Interval = 0 }, false},
		{"interval negative", func(a *AdaptiveFlags) { a.Interval = -5 }, false},
		{"rewire zero", func(a *AdaptiveFlags) { a.RewireBudget = 0 }, true},
		{"rewire negative", func(a *AdaptiveFlags) { a.RewireBudget = -1 }, false},
		{"replicate zero", func(a *AdaptiveFlags) { a.ReplicateBudget = 0 }, true},
		{"replicate negative", func(a *AdaptiveFlags) { a.ReplicateBudget = -1 }, false},
		{"scheme owner", func(a *AdaptiveFlags) { a.Scheme = "owner" }, true},
		{"scheme path", func(a *AdaptiveFlags) { a.Scheme = "path" }, true},
		{"scheme random", func(a *AdaptiveFlags) { a.Scheme = "random" }, true},
		{"scheme sqrt", func(a *AdaptiveFlags) { a.Scheme = "sqrt" }, true},
		{"scheme empty", func(a *AdaptiveFlags) { a.Scheme = "" }, false},
		{"scheme unknown", func(a *AdaptiveFlags) { a.Scheme = "square-root" }, false},
		{"scheme case", func(a *AdaptiveFlags) { a.Scheme = "Owner" }, false},
	}
	for _, tc := range cases {
		a := AddAdaptive(flag.NewFlagSet("x", flag.ContinueOnError))
		tc.mutate(a)
		if err := a.Check(); (err == nil) != tc.ok {
			t.Errorf("%s: got err=%v, want ok=%v", tc.name, err, tc.ok)
		}
	}
	if err := (&AdaptiveFlags{Interval: 1, Scheme: "nope"}).Check(); err == nil ||
		!strings.Contains(err.Error(), "owner|path|random|sqrt") {
		t.Errorf("-repl-scheme error %v does not list choices", err)
	}
}

// TestCapacityKnobChecks covers the qc-sim saturation-mode flags: queue
// depth and service cost must be positive, and the shed policy must come
// from the known set.
func TestCapacityKnobChecks(t *testing.T) {
	intCases := []struct {
		name  string
		check func() error
		ok    bool
	}{
		{"queue-depth ok", func() error { return CheckPositive("-queue-depth", 16) }, true},
		{"queue-depth zero", func() error { return CheckPositive("-queue-depth", 0) }, false},
		{"queue-depth negative", func() error { return CheckPositive("-queue-depth", -4) }, false},
		{"service-cost ok", func() error { return CheckPositive("-service-cost", 10000) }, true},
		{"service-cost zero", func() error { return CheckPositive("-service-cost", 0) }, false},
		{"service-cost negative", func() error { return CheckPositive("-service-cost", -1) }, false},
	}
	for _, tc := range intCases {
		if err := tc.check(); (err == nil) != tc.ok {
			t.Errorf("%s: got err=%v, want ok=%v", tc.name, err, tc.ok)
		}
	}
	policies := []string{"all", "unbounded", "drop-tail", "red", "ttl"}
	polCases := []struct {
		value string
		ok    bool
	}{
		{"all", true}, {"unbounded", true}, {"drop-tail", true},
		{"red", true}, {"ttl", true},
		{"", false}, {"droptail", false}, {"RED", false}, {"tail-drop", false},
	}
	for _, tc := range polCases {
		err := CheckOneOf("-shed-policy", tc.value, policies...)
		if (err == nil) != tc.ok {
			t.Errorf("-shed-policy %q: got err=%v, want ok=%v", tc.value, err, tc.ok)
		}
		if err != nil && !strings.Contains(err.Error(), "all|unbounded|drop-tail|red|ttl") {
			t.Errorf("-shed-policy %q: error %q does not list choices", tc.value, err)
		}
	}
}
