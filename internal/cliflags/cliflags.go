// Package cliflags unifies the flag surface of the qc-* commands: one
// registration helper per shared flag (identical name, default and help
// text everywhere), uniform out-of-range rejection, and the observability
// flags (-metrics, -trace-floods, -metrics-dir) every command exposes.
//
// Commands register the subset of shared flags they need against their own
// flag.FlagSet (normally flag.CommandLine), parse, validate with the Check
// helpers, and — when the observability plane is enabled — finish by
// writing a run manifest with ObsFlags.WriteManifest.
package cliflags

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"querycentric/internal/adaptive"
	"querycentric/internal/obs"
)

// AddScale registers the shared -scale flag with the given default.
func AddScale(fs *flag.FlagSet, def string) *string {
	return fs.String("scale", def, "population scale (tiny|small|default|full|1m)")
}

// AddSeed registers the shared -seed flag.
func AddSeed(fs *flag.FlagSet) *uint64 {
	return fs.Uint64("seed", 42, "root random seed")
}

// AddWorkers registers the shared -workers flag.
func AddWorkers(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0, "trial worker pool size (0 = GOMAXPROCS); results are identical for every value")
}

// SnapshotFlags holds the shared network-snapshot persistence flag values.
type SnapshotFlags struct {
	// Save is a path to persist the built Gnutella population to (empty:
	// don't save). Load restores the population from an existing snapshot
	// instead of rebuilding it (empty: build fresh).
	Save string
	Load string
	// Mmap restores via a zero-copy read-only memory mapping instead of
	// copying the snapshot onto the heap (v2 snapshots; v1 files fall back
	// to the copying loader). Only meaningful with Load.
	Mmap bool
	// ShardSize, when positive with Save (and no Load), builds the
	// population shard-by-shard directly into the snapshot file instead of
	// materializing it in memory first; peak memory is one shard plus the
	// shared dictionary and the result is byte-identical.
	ShardSize int
}

// AddSnapshot registers the shared -snapshot-save/-snapshot-load flags
// plus their -mmap/-shard-size modifiers.
func AddSnapshot(fs *flag.FlagSet) *SnapshotFlags {
	s := &SnapshotFlags{}
	fs.StringVar(&s.Save, "snapshot-save", "", "persist the built Gnutella population to this snapshot file")
	fs.StringVar(&s.Load, "snapshot-load", "", "restore the Gnutella population from this snapshot file instead of rebuilding it (byte-identical results, ~10x faster)")
	fs.BoolVar(&s.Mmap, "mmap", false, "with -snapshot-load: map the snapshot read-only and serve file names and posting arenas zero-copy from the mapping")
	fs.IntVar(&s.ShardSize, "shard-size", 0, "with -snapshot-save: build the population in shards of this many peers, spilling each to the snapshot as it completes (0 = in-memory build; output is byte-identical)")
	return s
}

// Check validates the flag combination after parsing.
func (s *SnapshotFlags) Check() error {
	if s.ShardSize < 0 {
		return fmt.Errorf("-shard-size must be >= 0, got %d", s.ShardSize)
	}
	if s.Mmap && s.Load == "" {
		return fmt.Errorf("-mmap needs -snapshot-load")
	}
	if s.ShardSize > 0 && s.Save == "" {
		return fmt.Errorf("-shard-size needs -snapshot-save")
	}
	if s.ShardSize > 0 && s.Load != "" {
		return fmt.Errorf("-shard-size builds a new snapshot and cannot be combined with -snapshot-load")
	}
	return nil
}

// AdaptiveFlags holds the query-centric adaptation knobs (qc-sim
// -mode query-centric).
type AdaptiveFlags struct {
	// Interval is the number of queries between adaptation rounds.
	Interval int
	// RewireBudget caps edge swaps per round (0 disables rewiring).
	RewireBudget int
	// ReplicateBudget caps replica installs per round (0 disables
	// replication).
	ReplicateBudget int
	// Scheme is the replica-placement scheme (adaptive.Schemes()).
	Scheme string
}

// AddAdaptive registers -adapt-interval, -rewire-budget,
// -replicate-budget and -repl-scheme with the adaptive package defaults.
func AddAdaptive(fs *flag.FlagSet) *AdaptiveFlags {
	d := adaptive.DefaultConfig(0)
	a := &AdaptiveFlags{}
	fs.IntVar(&a.Interval, "adapt-interval", d.AdaptInterval, "queries between overlay adaptation rounds in -mode query-centric")
	fs.IntVar(&a.RewireBudget, "rewire-budget", d.RewireBudget, "max shortcut rewires per adaptation round in -mode query-centric (0 disables rewiring)")
	fs.IntVar(&a.ReplicateBudget, "replicate-budget", d.ReplicateBudget, "max replica installs per adaptation round in -mode query-centric (0 disables replication)")
	fs.StringVar(&a.Scheme, "repl-scheme", string(d.ReplScheme), "replica placement scheme in -mode query-centric (owner|path|random|sqrt)")
	return a
}

// Check validates the adaptation knobs after parsing.
func (a *AdaptiveFlags) Check() error {
	if err := CheckPositive("-adapt-interval", a.Interval); err != nil {
		return err
	}
	if err := CheckNonNegative("-rewire-budget", a.RewireBudget); err != nil {
		return err
	}
	if err := CheckNonNegative("-replicate-budget", a.ReplicateBudget); err != nil {
		return err
	}
	return CheckOneOf("-repl-scheme", a.Scheme, adaptive.Schemes()...)
}

// Profiles holds the shared profiling flag values.
type Profiles struct {
	CPU string
	Mem string
}

// AddProfiles registers the shared -cpuprofile/-memprofile flags.
func AddProfiles(fs *flag.FlagSet) *Profiles {
	p := &Profiles{}
	fs.StringVar(&p.CPU, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.Mem, "memprofile", "", "write a heap profile to this file")
	return p
}

// ObsFlags holds the observability flag values of one command.
type ObsFlags struct {
	// Command is the qc-* command name, used in the manifest and the
	// RUN_*.json file name.
	Command string
	// Metrics enables the deterministic metrics registry.
	Metrics bool
	// TraceFloods additionally records a bounded deterministic sample of
	// per-flood hop traces (implies Metrics).
	TraceFloods bool
	// Dir is where run manifests are written.
	Dir string

	reg     *obs.Registry
	traces  *obs.FloodTraces
	windows *obs.WindowLog
}

// AddObs registers -metrics, -trace-floods and -metrics-dir for command.
func AddObs(fs *flag.FlagSet, command string) *ObsFlags {
	o := &ObsFlags{Command: command}
	fs.BoolVar(&o.Metrics, "metrics", false, "collect deterministic run metrics and write a RUN_*.json manifest under -metrics-dir")
	fs.BoolVar(&o.TraceFloods, "trace-floods", false, "record a bounded deterministic sample of per-flood hop traces (implies -metrics)")
	fs.StringVar(&o.Dir, "metrics-dir", "out", "directory for run manifests (RUN_*.json plus a .prom exposition sibling)")
	return o
}

// Setup builds the registry (and, with -trace-floods, the trace recorder)
// when the plane is enabled; both are nil when it is not. Call once after
// flag parsing.
func (o *ObsFlags) Setup() (*obs.Registry, *obs.FloodTraces) {
	if o == nil || (!o.Metrics && !o.TraceFloods) {
		return nil, nil
	}
	o.reg = obs.NewRegistry()
	o.windows = obs.NewWindowLog()
	if o.TraceFloods {
		o.traces = obs.NewFloodTraces(0)
	}
	return o.reg, o.traces
}

// Windows returns the windowed-series log built by Setup (nil when the
// plane is disabled). Event-engine modes stream per-window metrics into it;
// WriteManifest folds the series into the manifest and its fingerprint.
func (o *ObsFlags) Windows() *obs.WindowLog {
	if o == nil {
		return nil
	}
	return o.windows
}

// Enabled reports whether Setup built a registry.
func (o *ObsFlags) Enabled() bool { return o != nil && o.reg != nil }

// Registry returns the registry built by Setup (nil when disabled).
func (o *ObsFlags) Registry() *obs.Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// WriteManifest finalizes the run manifest and writes it as
// <dir>/RUN_<command>[_<mode>][_<scale>]_seed<seed>.json plus a Prometheus
// text-exposition sibling with the .prom extension. It is a no-op (and
// returns "") when the plane is disabled, so commands call it
// unconditionally.
func (o *ObsFlags) WriteManifest(mode, scale string, seed uint64, workers int) (string, error) {
	if !o.Enabled() {
		return "", nil
	}
	m := &obs.Manifest{
		Command: o.Command,
		Mode:    mode,
		Scale:   scale,
		Seed:    seed,
		Workers: workers,
		Phases:  o.reg.Phases(),
		Metrics: o.reg.Snapshot(),
	}
	if o.traces != nil {
		m.FloodTraces = o.traces.Snapshot()
	}
	if o.windows.Len() > 0 {
		m.Windows = o.windows.Snapshot()
	}
	m.Finalize()
	path := filepath.Join(o.Dir, obs.RunFileName(o.Command, mode, scale, seed))
	if err := m.WriteFile(path); err != nil {
		return "", err
	}
	var buf bytes.Buffer
	if err := m.Metrics.WritePrometheus(&buf); err != nil {
		return "", err
	}
	prom := strings.TrimSuffix(path, ".json") + ".prom"
	if err := os.WriteFile(prom, buf.Bytes(), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// CheckWorkers rejects negative -workers values.
func CheckWorkers(workers int) error {
	if workers < 0 {
		return fmt.Errorf("-workers must be >= 1, or 0 for GOMAXPROCS; got %d", workers)
	}
	return nil
}

// CheckFrac rejects values outside [0, 1] for probability/fraction flags.
func CheckFrac(name string, v float64) error {
	if v < 0 || v > 1 {
		return fmt.Errorf("%s must be in [0,1], got %g", name, v)
	}
	return nil
}

// CheckPositive rejects non-positive values for count flags.
func CheckPositive(name string, v int) error {
	if v <= 0 {
		return fmt.Errorf("%s must be positive, got %d", name, v)
	}
	return nil
}

// CheckNonNegative rejects negative values for count flags where zero
// means "use the default".
func CheckNonNegative(name string, v int) error {
	if v < 0 {
		return fmt.Errorf("%s must be >= 0, got %d", name, v)
	}
	return nil
}

// CheckPositiveSeconds rejects non-positive interval flags.
func CheckPositiveSeconds(name string, v int64) error {
	if v <= 0 {
		return fmt.Errorf("%s must be a positive number of seconds, got %d", name, v)
	}
	return nil
}

// CheckOneOf rejects enum-flag values outside the allowed set.
func CheckOneOf(name, v string, allowed ...string) error {
	for _, a := range allowed {
		if v == a {
			return nil
		}
	}
	return fmt.Errorf("%s must be one of %s; got %q", name, strings.Join(allowed, "|"), v)
}
