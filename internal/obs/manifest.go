package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ManifestSchemaVersion is bumped whenever the manifest layout changes
// incompatibly, so downstream tooling can reject files it cannot parse.
const ManifestSchemaVersion = 1

// PhaseTiming is one wall-clock phase duration. Timings are for humans
// reading the manifest; they are volatile and never fingerprinted.
type PhaseTiming struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// Manifest is the versioned run record a command writes next to its
// artifacts (out/RUN_*.json): what ran, at what scale and seed, how long
// each phase took, and every metric the run accumulated.
//
// Workers and Phases are declared volatile: they legitimately differ
// between two otherwise identical runs (a workers=8 run IS a different
// invocation than workers=1, and wall-clock never repeats). Everything
// else must be a pure function of (command, scale, seed), which is what
// Fingerprint pins: the determinism gate compares fingerprints across
// worker counts, and a fingerprint mismatch means the metrics plane leaked
// schedule dependence into a snapshot.
type Manifest struct {
	SchemaVersion int    `json:"schema_version"`
	Command       string `json:"command"`
	Mode          string `json:"mode,omitempty"`
	Scale         string `json:"scale,omitempty"`
	Seed          uint64 `json:"seed"`

	Workers int           `json:"workers"` // volatile
	Phases  []PhaseTiming `json:"phases"`  // volatile

	Metrics     Snapshot     `json:"metrics"`
	FloodTraces []FloodTrace `json:"flood_traces,omitempty"`

	// Windows carries the windowed time series a long-horizon event-engine
	// run streamed (success rate, message cost, partitions per window).
	// The series are deterministic simulated-time data, so they are part
	// of the fingerprint; runs that record none omit the field, keeping
	// pre-existing fingerprints stable.
	Windows []WindowSeries `json:"windows,omitempty"`

	// Fingerprint is the SHA-256 of the manifest's deterministic content,
	// set by Finalize.
	Fingerprint string `json:"fingerprint,omitempty"`
}

// fingerprintView is the deterministic subset of a manifest: the volatile
// fields (Workers, Phases, Fingerprint itself) are excluded.
type fingerprintView struct {
	SchemaVersion int            `json:"schema_version"`
	Command       string         `json:"command"`
	Mode          string         `json:"mode,omitempty"`
	Scale         string         `json:"scale,omitempty"`
	Seed          uint64         `json:"seed"`
	Metrics       Snapshot       `json:"metrics"`
	FloodTraces   []FloodTrace   `json:"flood_traces,omitempty"`
	Windows       []WindowSeries `json:"windows,omitempty"`
}

// ComputeFingerprint returns the SHA-256 hex digest of the manifest's
// deterministic content. Two runs of the same (command, mode, scale, seed)
// must produce equal fingerprints at any worker count.
func (m *Manifest) ComputeFingerprint() (string, error) {
	b, err := json.Marshal(fingerprintView{
		SchemaVersion: m.SchemaVersion,
		Command:       m.Command,
		Mode:          m.Mode,
		Scale:         m.Scale,
		Seed:          m.Seed,
		Metrics:       m.Metrics,
		FloodTraces:   m.FloodTraces,
		Windows:       m.Windows,
	})
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Finalize stamps the schema version and fingerprint.
func (m *Manifest) Finalize() error {
	m.SchemaVersion = ManifestSchemaVersion
	fp, err := m.ComputeFingerprint()
	if err != nil {
		return err
	}
	m.Fingerprint = fp
	return nil
}

// WriteFile writes the manifest as indented JSON (with trailing newline),
// creating the parent directory if needed.
func (m *Manifest) WriteFile(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// RunFileName is the canonical manifest file name for one invocation:
// RUN_<command>[_<mode>]_<scale>_seed<seed>.json. Deterministic, so rerunning
// the same invocation overwrites its own manifest instead of accumulating.
func RunFileName(command, mode, scale string, seed uint64) string {
	name := "RUN_" + command
	if mode != "" {
		name += "_" + mode
	}
	if scale != "" {
		name += "_" + scale
	}
	return fmt.Sprintf("%s_seed%d.json", name, seed)
}
