package obs

import "sort"

// StreamSketch is a bounded space-saving frequency sketch over int32 keys,
// the observation structure behind query-stream-driven adaptation: a peer
// (or a whole simulation) feeds every query's target object through
// Observe, and the sketch maintains an approximate top-k by popularity in
// O(capacity) space no matter how many distinct objects flow past. Each
// tracked key also accumulates outcome evidence — how many of its queries
// found anything and how many results they returned — so an adaptation
// policy can separate hot-and-well-replicated objects from the
// hot-but-rare ones worth replicating.
//
// Unlike the registry's metrics, the sketch is not thread-safe: it belongs
// to the single-threaded fold/adapt phase of a measurement loop (the same
// discipline as Gauge.Set). All tie-breaks are by smallest key, so the
// sketch's state is a pure function of the observation sequence and its
// snapshots are byte-identical across runs and worker counts.
type StreamSketch struct {
	cap     int
	entries map[int32]*SketchEntry
}

// SketchEntry is one tracked key's accumulated evidence.
type SketchEntry struct {
	Key     int32 // object id
	Count   int64 // space-saving popularity estimate (decays)
	Hits    int64 // observations that found at least one result
	Results int64 // total results across observations
}

// NewStreamSketch returns an empty sketch tracking at most capacity keys.
// Panics on a non-positive capacity — a configuration bug, not a runtime
// condition.
func NewStreamSketch(capacity int) *StreamSketch {
	if capacity < 1 {
		panic("obs: stream sketch capacity must be positive")
	}
	return &StreamSketch{cap: capacity, entries: make(map[int32]*SketchEntry, capacity)}
}

// Observe records one query for key, with its outcome: whether it found
// anything and how many results it returned. A key already tracked is
// incremented in place; a new key either takes a free slot or, when the
// sketch is full, evicts the minimum-count entry (smallest key on ties)
// and inherits its count plus one — the space-saving overestimate that
// guarantees no key with true frequency above the minimum is missed.
func (s *StreamSketch) Observe(key int32, hit bool, results int) {
	e := s.entries[key]
	if e == nil {
		if len(s.entries) < s.cap {
			e = &SketchEntry{Key: key}
		} else {
			victim := s.minEntry()
			delete(s.entries, victim.Key)
			e = &SketchEntry{Key: key, Count: victim.Count}
		}
		s.entries[key] = e
	}
	e.Count++
	if hit {
		e.Hits++
	}
	e.Results += int64(results)
}

// minEntry returns the tracked entry with the smallest count, breaking
// ties toward the smallest key. Only called on a non-empty sketch.
func (s *StreamSketch) minEntry() *SketchEntry {
	var min *SketchEntry
	for _, e := range s.entries {
		if min == nil || e.Count < min.Count || (e.Count == min.Count && e.Key < min.Key) {
			min = e
		}
	}
	return min
}

// Decay halves every count (and hit/result tally) and drops entries whose
// count reaches zero, aging out objects that stopped being queried. Called
// once per adaptation round, it turns the all-time counts into an
// exponentially windowed popularity estimate.
func (s *StreamSketch) Decay() {
	for k, e := range s.entries {
		e.Count /= 2
		e.Hits /= 2
		e.Results /= 2
		if e.Count == 0 {
			delete(s.entries, k)
		}
	}
}

// Len returns the number of keys currently tracked.
func (s *StreamSketch) Len() int { return len(s.entries) }

// Get returns the entry for key, or nil if untracked. The returned entry
// is live — callers must not mutate it.
func (s *StreamSketch) Get(key int32) *SketchEntry {
	return s.entries[key]
}

// Top returns up to k entries sorted by count descending, key ascending —
// the sketch's estimate of the hottest objects. The entries are copies,
// safe to hold across further observations.
func (s *StreamSketch) Top(k int) []SketchEntry {
	out := make([]SketchEntry, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}
