// Package obs is the deterministic observability plane: counters, gauges
// and fixed-bucket histograms registered in a Registry, plus a bounded
// per-flood hop-trace recorder and a versioned run manifest. The plane
// exists to give every experiment measured evidence — crawl funnels,
// per-TTL flood coverage, repair convergence — without perturbing the
// numbers it observes.
//
// Two properties are contractual:
//
//   - Zero cost when disabled. Every metric handle is nil-safe: a nil
//     *Registry hands out nil handles, and Inc/Add/Set/Observe on a nil
//     handle are no-ops. Instrumented hot paths pay one nil check, draw no
//     randomness and allocate nothing, so outputs with the plane disabled
//     are byte-identical to outputs without the plane compiled in at all.
//
//   - Worker-count invariance when enabled. Counters and histograms only
//     accumulate through commutative atomic additions, so their totals
//     depend on *which* events happened, never on the schedule that
//     interleaved them; gauges must only be Set from single-threaded
//     phases. Snapshots sort by metric name and read no wall clock, so a
//     snapshot is byte-identical at any -workers value. Wall-clock phase
//     timings are collected separately (see StartPhase) and are excluded
//     from Snapshot and from the manifest fingerprint.
package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is unusable;
// obtain counters from Registry.Counter. All methods are nil-safe.
type Counter struct {
	name string
	v    atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d (no-op on a nil counter).
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins metric. To keep snapshots worker-count
// invariant, Set must only be called from single-threaded phases
// (construction, post-processing) — never from racing trial workers.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set records v (no-op on a nil gauge).
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the last value set (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution over int64 observations. An
// observation v lands in the first bucket whose upper bound is >= v
// (inclusive bounds); values above every bound land in the overflow
// bucket, rendered with bound +Inf. Buckets are fixed at registration so
// two runs — at any worker count — always agree on the layout.
type Histogram struct {
	name   string
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; the last is the overflow bucket
	sum    atomic.Int64
}

// Observe records v (no-op on a nil histogram).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observations (0 for nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Registry holds one run's metrics. The zero value is not usable; a nil
// *Registry is the disabled plane: it hands out nil handles and empty
// snapshots. Handle registration takes the registry mutex; the handles
// themselves are lock-free, so hot paths register once and increment often.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	phases   []PhaseTiming
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, registering it on first use. Returns
// nil (a valid no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, registering it with the given
// inclusive upper bounds on first use. Bounds must be strictly increasing;
// later calls reuse the first registration's bounds (the layout is fixed
// for the run). Panics on empty or non-increasing bounds — a registration
// bug, not a runtime condition.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h != nil {
		return h
	}
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %q registered with no buckets", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly increasing", name))
		}
	}
	h = &Histogram{
		name:   name,
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.hists[name] = h
	return h
}

// StartPhase starts a named wall-clock phase and returns its stop func.
// Phase timings go into the run manifest for humans; they are volatile by
// definition and excluded from Snapshot and the manifest fingerprint.
// Phases must start and stop from a single goroutine so their order is
// deterministic. Nil-safe: a nil registry returns a no-op stop.
func (r *Registry) StartPhase(name string) func() {
	if r == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		secs := time.Since(start).Seconds()
		r.mu.Lock()
		r.phases = append(r.phases, PhaseTiming{Name: name, Seconds: secs})
		r.mu.Unlock()
	}
}

// Phases returns the recorded phase timings in completion order (a copy).
func (r *Registry) Phases() []PhaseTiming {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]PhaseTiming(nil), r.phases...)
}

// Bucket is one histogram bucket in a snapshot. Le is the inclusive upper
// bound; math.MaxInt64 encodes the overflow (+Inf) bucket. Count is the
// per-bucket (not cumulative) observation count.
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// InfBound is the Le value of the overflow bucket.
const InfBound = math.MaxInt64

// SnapshotMetric is one metric's frozen state.
type SnapshotMetric struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "counter", "gauge" or "histogram"
	// Value is the counter/gauge value; for histograms, the observation
	// count (with Sum and Buckets carrying the distribution).
	Value   int64    `json:"value"`
	Sum     int64    `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a frozen, name-sorted view of a registry. Equal runs produce
// byte-identical JSON regardless of worker count or registration order.
type Snapshot struct {
	Metrics []SnapshotMetric `json:"metrics"`
}

// Snapshot freezes the registry. Sorted by metric name; empty (never nil
// Metrics) for a nil registry so JSON output is stable either way.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Metrics: []SnapshotMetric{}}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Metrics = append(s.Metrics, SnapshotMetric{Name: name, Kind: "counter", Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Metrics = append(s.Metrics, SnapshotMetric{Name: name, Kind: "gauge", Value: g.Value()})
	}
	for name, h := range r.hists {
		m := SnapshotMetric{Name: name, Kind: "histogram", Value: h.Count(), Sum: h.Sum()}
		for i, b := range h.bounds {
			m.Buckets = append(m.Buckets, Bucket{Le: b, Count: h.counts[i].Load()})
		}
		m.Buckets = append(m.Buckets, Bucket{Le: InfBound, Count: h.counts[len(h.bounds)].Load()})
		s.Metrics = append(s.Metrics, m)
	}
	sort.Slice(s.Metrics, func(i, j int) bool { return s.Metrics[i].Name < s.Metrics[j].Name })
	return s
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (counters and gauges as-is, histograms with cumulative le
// buckets), for scraping long runs. Metric names are expected to already
// be legal Prometheus identifiers ([a-z0-9_]); the plane's own metrics are.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, m := range s.Metrics {
		switch m.Kind {
		case "counter", "gauge":
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", m.Name, m.Kind, m.Name, m.Value); err != nil {
				return err
			}
		case "histogram":
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", m.Name); err != nil {
				return err
			}
			cum := int64(0)
			for _, b := range m.Buckets {
				cum += b.Count
				le := fmt.Sprintf("%d", b.Le)
				if b.Le == InfBound {
					le = "+Inf"
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.Name, le, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", m.Name, m.Sum, m.Name, m.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// PublishExpvar exposes the registry under the given expvar name (for
// net/http/pprof-style debug endpoints on long runs). Publishing the same
// name twice is a no-op rather than the expvar panic, so commands can call
// it unconditionally.
func (r *Registry) PublishExpvar(name string) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
