package obs

import (
	"sort"
	"sync"
)

// Windowed time series complement the registry's end-of-run counters: a
// long-horizon simulation (internal/events) closes a metrics window every
// few simulated minutes and appends one point per series, so a run's
// manifest carries the *shape* of a failure — the success-rate dip after a
// crash burst and the repair-driven climb back — instead of only its
// end-of-trial average.
//
// The same determinism contract as the registry applies: points are
// appended from the single-goroutine window-close path in simulated-time
// order, values are pure functions of the event schedule, and Snapshot
// sorts series by name, so the serialized log is byte-identical across
// runs and worker counts and is safe to include in the manifest
// fingerprint.

// WindowPoint is one window of one series: the half-open simulated-time
// interval [Start, End) and the metric value measured over it.
type WindowPoint struct {
	Start int64   `json:"start"`
	End   int64   `json:"end"`
	Value float64 `json:"value"`
}

// WindowSeries is one named windowed metric.
type WindowSeries struct {
	Name   string        `json:"name"`
	Points []WindowPoint `json:"points"`
}

// WindowLog accumulates windowed series. A nil *WindowLog is the disabled
// plane: Add records nothing and Snapshot returns an empty slice, so
// instrumented code never branches on attachment. The log is mutex-guarded
// for incidental cross-goroutine snapshots, but appends must come from a
// single goroutine in time order (the event engine's window-close handler)
// for the output to be deterministic.
type WindowLog struct {
	mu     sync.Mutex
	series map[string]*WindowSeries
}

// NewWindowLog returns an empty, enabled window log.
func NewWindowLog() *WindowLog {
	return &WindowLog{series: map[string]*WindowSeries{}}
}

// Add appends one point to the named series (no-op on a nil log).
func (l *WindowLog) Add(name string, start, end int64, value float64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.series[name]
	if s == nil {
		s = &WindowSeries{Name: name}
		l.series[name] = s
	}
	s.Points = append(s.Points, WindowPoint{Start: start, End: end, Value: value})
}

// Len returns the number of series recorded (0 for a nil log).
func (l *WindowLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.series)
}

// Snapshot returns the recorded series sorted by name, points in append
// (simulated-time) order. Empty, never nil, for a nil or empty log.
func (l *WindowLog) Snapshot() []WindowSeries {
	out := []WindowSeries{}
	if l == nil {
		return out
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, s := range l.series {
		cp := WindowSeries{Name: s.Name, Points: append([]WindowPoint(nil), s.Points...)}
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
