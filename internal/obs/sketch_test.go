package obs

import (
	"reflect"
	"testing"
)

func TestSketchTracksExactWhenUnderCapacity(t *testing.T) {
	s := NewStreamSketch(8)
	for i := 0; i < 5; i++ {
		for j := 0; j <= i; j++ {
			s.Observe(int32(i), i%2 == 0, i)
		}
	}
	if s.Len() != 5 {
		t.Fatalf("tracked %d keys, want 5", s.Len())
	}
	top := s.Top(3)
	want := []int32{4, 3, 2}
	for i, e := range top {
		if e.Key != want[i] {
			t.Fatalf("top = %v, want keys %v", top, want)
		}
		if e.Count != int64(e.Key)+1 {
			t.Errorf("key %d count %d, want %d", e.Key, e.Count, e.Key+1)
		}
	}
	// Outcome evidence: key 4 was observed 5 times, never a miss, 4 results each.
	e := s.Get(4)
	if e == nil || e.Hits != 5 || e.Results != 20 {
		t.Errorf("key 4 entry %+v, want hits 5 results 20", e)
	}
	if s.Get(99) != nil {
		t.Error("untracked key returned an entry")
	}
}

func TestSketchEvictsMinimumDeterministically(t *testing.T) {
	s := NewStreamSketch(3)
	s.Observe(10, false, 0)
	s.Observe(20, false, 0)
	s.Observe(20, false, 0)
	s.Observe(30, false, 0)
	// Full. Keys 10 and 30 both have count 1; the smallest key (10) must
	// be the victim, and the newcomer inherits count+1 = 2.
	s.Observe(40, false, 0)
	if s.Get(10) != nil {
		t.Error("min-count smallest-key entry survived eviction")
	}
	if e := s.Get(40); e == nil || e.Count != 2 {
		t.Errorf("newcomer entry %+v, want count 2 (inherited 1, +1)", s.Get(40))
	}
	if s.Len() != 3 {
		t.Fatalf("sketch grew past capacity: %d", s.Len())
	}
}

func TestSketchDeterministicAcrossRuns(t *testing.T) {
	run := func() []SketchEntry {
		s := NewStreamSketch(4)
		keys := []int32{7, 3, 7, 9, 1, 3, 7, 5, 5, 9, 2, 7}
		for i, k := range keys {
			s.Observe(k, i%3 == 0, i%2)
		}
		s.Decay()
		s.Observe(7, true, 1)
		return s.Top(4)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical observation sequences diverged:\n%v\nvs\n%v", a, b)
	}
}

func TestSketchDecayDropsCold(t *testing.T) {
	s := NewStreamSketch(4)
	s.Observe(1, true, 2)
	s.Observe(1, true, 2)
	s.Observe(2, false, 0)
	s.Decay()
	if s.Get(2) != nil {
		t.Error("count-1 entry survived halving")
	}
	if e := s.Get(1); e == nil || e.Count != 1 || e.Hits != 1 || e.Results != 2 {
		t.Errorf("entry after decay %+v, want count 1 hits 1 results 2", s.Get(1))
	}
	s.Decay()
	if s.Len() != 0 {
		t.Error("fully decayed sketch not empty")
	}
}

func TestSketchCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero capacity accepted")
		}
	}()
	NewStreamSketch(0)
}
