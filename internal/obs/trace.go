package obs

import (
	"sort"
	"sync"
)

// FloodTrace is one flood's hop-resolved footprint: how many peers each
// TTL ring reached, plus the flood's cost and yield. Key is the flood's
// fault salt — a pure function of the flood's own GUID randomness — so a
// trace's identity is deterministic at any worker count.
type FloodTrace struct {
	Key      uint64 `json:"key"`
	Origin   int    `json:"origin"`
	TTL      int    `json:"ttl"`
	Criteria string `json:"criteria,omitempty"`
	// PerRing[i] is the number of peers first reached at hop depth i+1.
	PerRing  []int `json:"per_ring"`
	Messages int   `json:"messages"`
	Results  int   `json:"results"`
}

// DefaultFloodTraceCap bounds the recorder when no explicit capacity is
// given: enough floods to see ring-by-ring structure, small enough that a
// manifest stays readable.
const DefaultFloodTraceCap = 64

// FloodTraces is a bounded, deterministic per-flood trace recorder. It
// retains the capacity traces with the smallest keys. Because keys are
// uniform per-flood randomness, the retained set is a uniform sample of
// the run's floods — and because "smallest keys" is a property of the
// trace set, not of arrival order, the retained sample is byte-identical
// at any worker count and any scheduling. Safe for concurrent use.
type FloodTraces struct {
	mu  sync.Mutex
	cap int
	m   map[uint64]FloodTrace
}

// NewFloodTraces returns a recorder bounded to capacity traces
// (capacity <= 0 falls back to DefaultFloodTraceCap).
func NewFloodTraces(capacity int) *FloodTraces {
	if capacity <= 0 {
		capacity = DefaultFloodTraceCap
	}
	return &FloodTraces{cap: capacity, m: make(map[uint64]FloodTrace, capacity)}
}

// Enabled reports whether the recorder exists; hot paths gate their
// per-ring bookkeeping on it.
func (t *FloodTraces) Enabled() bool { return t != nil }

// Record offers one trace. Kept if the recorder has room or the key is
// smaller than the current largest retained key (which is then evicted).
// Re-recording an existing key overwrites it — with deterministic inputs
// both records are identical anyway. Nil-safe no-op.
func (t *FloodTraces) Record(tr FloodTrace) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.m[tr.Key]; ok || len(t.m) < t.cap {
		t.m[tr.Key] = tr
		return
	}
	var maxKey uint64
	for k := range t.m {
		if k > maxKey {
			maxKey = k
		}
	}
	if tr.Key >= maxKey {
		return
	}
	delete(t.m, maxKey)
	t.m[tr.Key] = tr
}

// Len returns the number of retained traces.
func (t *FloodTraces) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// Snapshot returns the retained traces sorted by key (never nil).
func (t *FloodTraces) Snapshot() []FloodTrace {
	out := []FloodTrace{}
	if t == nil {
		return out
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, tr := range t.m {
		out = append(out, tr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
