package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestNilSafety: the disabled plane must be a total no-op — nil registries
// hand out nil handles and every handle method tolerates nil.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", []int64{1, 2})
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry handed out non-nil handles: %v %v %v", c, g, h)
	}
	c.Inc()
	c.Add(5)
	g.Set(7)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles accumulated state")
	}
	r.StartPhase("p")()
	if ph := r.Phases(); ph != nil {
		t.Fatalf("nil registry recorded phases: %v", ph)
	}
	s := r.Snapshot()
	if len(s.Metrics) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"metrics":[]}` {
		t.Fatalf("nil snapshot JSON = %s", b)
	}

	var ft *FloodTraces
	ft.Record(FloodTrace{Key: 1})
	if ft.Enabled() || ft.Len() != 0 || len(ft.Snapshot()) != 0 {
		t.Fatal("nil FloodTraces not inert")
	}
}

// TestHistogramBucketEdges pins the inclusive-upper-bound rule: an
// observation equal to a bound lands in that bound's bucket, one above it
// in the next, and values above every bound overflow into +Inf.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []int64{0, 10, 100})
	for _, v := range []int64{-5, 0, 1, 10, 11, 100, 101, 1 << 40} {
		h.Observe(v)
	}
	s := r.Snapshot()
	if len(s.Metrics) != 1 {
		t.Fatalf("want 1 metric, got %d", len(s.Metrics))
	}
	m := s.Metrics[0]
	want := []Bucket{
		{Le: 0, Count: 2},        // -5, 0
		{Le: 10, Count: 2},       // 1, 10
		{Le: 100, Count: 2},      // 11, 100
		{Le: InfBound, Count: 2}, // 101, 1<<40
	}
	if len(m.Buckets) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(m.Buckets), len(want))
	}
	for i := range want {
		if m.Buckets[i] != want[i] {
			t.Errorf("bucket[%d] = %+v, want %+v", i, m.Buckets[i], want[i])
		}
	}
	if m.Value != 8 {
		t.Errorf("observation count = %d, want 8", m.Value)
	}
	wantSum := int64(-5 + 0 + 1 + 10 + 11 + 100 + 101 + (1 << 40))
	if m.Sum != wantSum {
		t.Errorf("sum = %d, want %d", m.Sum, wantSum)
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	r := NewRegistry()
	for _, bounds := range [][]int64{nil, {}, {5, 5}, {5, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v did not panic", bounds)
				}
			}()
			r.Histogram("bad", bounds)
		}()
	}
}

// TestSnapshotSortedAndStable: snapshots sort by name regardless of
// registration order, and re-registering returns the same handle.
func TestSnapshotSortedAndStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("zebra").Add(1)
	r.Gauge("alpha").Set(2)
	r.Histogram("mid", []int64{1}).Observe(1)
	if r.Counter("zebra") != r.Counter("zebra") {
		t.Fatal("re-registration returned a different counter")
	}
	names := []string{}
	for _, m := range r.Snapshot().Metrics {
		names = append(names, m.Name)
	}
	if strings.Join(names, ",") != "alpha,mid,zebra" {
		t.Fatalf("snapshot order = %v", names)
	}
}

// TestCounterConcurrentSum: counters accumulate through commutative atomic
// adds, so a fanned-out total equals the sequential one.
func TestCounterConcurrentSum(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
}

// TestFloodTracesTruncation pins the bounded recorder's retention rule:
// the capacity smallest keys survive, independent of insertion order.
func TestFloodTracesTruncation(t *testing.T) {
	// Two insertion orders of the same records must retain the same set.
	orders := [][]uint64{
		{9, 1, 8, 2, 7, 3, 6, 4, 5},
		{5, 4, 6, 3, 7, 2, 8, 1, 9},
	}
	var snaps [][]FloodTrace
	for _, keys := range orders {
		ft := NewFloodTraces(4)
		for _, k := range keys {
			ft.Record(FloodTrace{Key: k, Messages: int(k)})
		}
		if ft.Len() != 4 {
			t.Fatalf("len = %d, want 4", ft.Len())
		}
		snaps = append(snaps, ft.Snapshot())
	}
	for i, tr := range snaps[0] {
		if want := uint64(i + 1); tr.Key != want {
			t.Errorf("retained key[%d] = %d, want %d", i, tr.Key, want)
		}
	}
	a, _ := json.Marshal(snaps[0])
	b, _ := json.Marshal(snaps[1])
	if !bytes.Equal(a, b) {
		t.Fatalf("retention depends on insertion order:\n%s\nvs\n%s", a, b)
	}
	// A duplicate key overwrites rather than evicting.
	ft := NewFloodTraces(2)
	ft.Record(FloodTrace{Key: 1, Messages: 1})
	ft.Record(FloodTrace{Key: 2})
	ft.Record(FloodTrace{Key: 1, Messages: 99})
	if ft.Len() != 2 || ft.Snapshot()[0].Messages != 99 {
		t.Fatalf("duplicate key handling wrong: %+v", ft.Snapshot())
	}
	// A key above the retained max bounces off a full recorder.
	ft.Record(FloodTrace{Key: 50})
	if ft.Len() != 2 || ft.Snapshot()[1].Key != 2 {
		t.Fatalf("over-max key was retained: %+v", ft.Snapshot())
	}
}

// TestPrometheusExposition pins the text format, including cumulative
// histogram buckets and the +Inf rendering.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total").Add(3)
	r.Gauge("depth").Set(-2)
	h := r.Histogram("lat", []int64{1, 10})
	h.Observe(1)
	h.Observe(5)
	h.Observe(500)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE depth gauge
depth -2
# TYPE lat histogram
lat_bucket{le="1"} 1
lat_bucket{le="10"} 2
lat_bucket{le="+Inf"} 3
lat_sum 506
lat_count 3
# TYPE reqs_total counter
reqs_total 3
`
	if buf.String() != want {
		t.Fatalf("prometheus output:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// TestManifestFingerprint: the fingerprint ignores the declared-volatile
// fields (workers, phase timings) and changes with the deterministic ones.
func TestManifestFingerprint(t *testing.T) {
	mk := func(workers int, seed uint64, phases []PhaseTiming) *Manifest {
		r := NewRegistry()
		r.Counter("floods").Add(10)
		return &Manifest{
			Command: "qc-sim", Mode: "fig8", Scale: "tiny", Seed: seed,
			Workers: workers, Phases: phases, Metrics: r.Snapshot(),
		}
	}
	a := mk(1, 42, nil)
	b := mk(8, 42, []PhaseTiming{{Name: "run", Seconds: 1.23}})
	if err := a.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := b.Finalize(); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint == "" || a.Fingerprint != b.Fingerprint {
		t.Fatalf("fingerprint varies with volatile fields: %q vs %q", a.Fingerprint, b.Fingerprint)
	}
	c := mk(1, 43, nil)
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint == a.Fingerprint {
		t.Fatal("fingerprint ignored the seed")
	}
	if a.SchemaVersion != ManifestSchemaVersion {
		t.Fatalf("Finalize did not stamp schema version: %d", a.SchemaVersion)
	}
}

func TestRunFileName(t *testing.T) {
	cases := []struct {
		cmd, mode, scale string
		seed             uint64
		want             string
	}{
		{"qc-sim", "fig8", "tiny", 42, "RUN_qc-sim_fig8_tiny_seed42.json"},
		{"qc-figures", "", "default", 7, "RUN_qc-figures_default_seed7.json"},
		{"qc-analyze", "", "", 1, "RUN_qc-analyze_seed1.json"},
	}
	for _, c := range cases {
		if got := RunFileName(c.cmd, c.mode, c.scale, c.seed); got != c.want {
			t.Errorf("RunFileName(%q,%q,%q,%d) = %q, want %q", c.cmd, c.mode, c.scale, c.seed, got, c.want)
		}
	}
}
