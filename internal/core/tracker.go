// Package core is the paper's primary contribution turned into a reusable
// component: an *online* query-centric popularity engine that a P2P node
// (or an analysis pipeline) feeds its observed query stream, and that
// maintains, per evaluation interval —
//
//   - the popular query-term set Q*_t,
//   - the persistently popular set Q̃_t = Q*_t ∩ Q*_{t−1},
//   - the transiently popular terms (significant deviations from the
//     trained historical rate),
//   - the interval-to-interval stability series (Figure 6), and
//   - on request, the similarity against a file-term set (Figure 7).
//
// The Tracker is what the adaptive-synopsis system (internal/synopsis)
// consumes: its Popular set drives which content terms a peer advertises.
// Unlike the offline functions in internal/analysis, the Tracker works
// incrementally over an unbounded stream with O(active terms) memory.
package core

import (
	"fmt"

	"querycentric/internal/stats"
	"querycentric/internal/terms"
)

// TrackerConfig tunes the online engine.
type TrackerConfig struct {
	// Interval is the evaluation interval in seconds.
	Interval int64
	// PopularFrac and MinPopularCount define interval popularity exactly
	// as analysis.IntervalConfig does.
	PopularFrac     float64
	MinPopularCount int
	// TrainIntervals is how many leading intervals feed the historical
	// model before transient detection starts.
	TrainIntervals int
	// TransientRatio and TransientMinCount mirror analysis.TransientConfig.
	TransientRatio    float64
	TransientMinCount int
	// HistoryDecay in (0,1] exponentially ages the historical rates each
	// interval; 1 keeps an all-time average. Aging lets the tracker follow
	// slow drift, which the offline analysis cannot.
	HistoryDecay float64
}

// DefaultTrackerConfig matches the paper's 60-minute interval analysis.
func DefaultTrackerConfig() TrackerConfig {
	return TrackerConfig{
		Interval:          3600,
		PopularFrac:       0.0025,
		MinPopularCount:   3,
		TrainIntervals:    4,
		TransientRatio:    5,
		TransientMinCount: 8,
		HistoryDecay:      1,
	}
}

// IntervalReport is emitted when an interval closes.
type IntervalReport struct {
	Index      int
	Start      int64
	Queries    int
	Volume     int
	Popular    map[string]struct{}
	Persistent map[string]struct{}
	Transients []string
	Stability  float64 // Jaccard(Q*_t, Q̃_t); NaN-free: 1 for the first interval
}

// Tracker is the online engine. Feed it with Observe in non-decreasing
// time order; completed intervals are reported through the callback given
// to NewTracker (or collected via Reports).
type Tracker struct {
	cfg     TrackerConfig
	onClose func(*IntervalReport)

	curIndex int
	curStart int64
	counts   map[string]int
	queries  int
	volume   int

	prevPopular map[string]struct{}
	history     map[string]float64 // decayed per-interval term rates
	histVolume  float64
	intervals   int
	reports     []*IntervalReport
}

// NewTracker builds a Tracker. onClose may be nil; every closed interval is
// also retained and available via Reports.
func NewTracker(cfg TrackerConfig, onClose func(*IntervalReport)) (*Tracker, error) {
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("core: Interval must be positive, got %d", cfg.Interval)
	}
	if cfg.PopularFrac < 0 || cfg.PopularFrac > 1 {
		return nil, fmt.Errorf("core: PopularFrac out of range: %g", cfg.PopularFrac)
	}
	if cfg.TransientRatio <= 1 {
		return nil, fmt.Errorf("core: TransientRatio must exceed 1, got %g", cfg.TransientRatio)
	}
	if cfg.HistoryDecay <= 0 || cfg.HistoryDecay > 1 {
		return nil, fmt.Errorf("core: HistoryDecay must be in (0,1], got %g", cfg.HistoryDecay)
	}
	if cfg.TrainIntervals < 1 {
		cfg.TrainIntervals = 1
	}
	return &Tracker{
		cfg:     cfg,
		onClose: onClose,
		counts:  map[string]int{},
		history: map[string]float64{},
	}, nil
}

// Observe records one query at the given time (seconds). Time must be
// non-decreasing; crossing an interval boundary closes the open interval.
func (t *Tracker) Observe(now int64, query string) error {
	if now < t.curStart {
		return fmt.Errorf("core: time went backwards: %d < %d", now, t.curStart)
	}
	for now >= t.curStart+t.cfg.Interval {
		t.closeInterval()
	}
	t.queries++
	for _, tok := range terms.Tokenize(query) {
		t.counts[tok]++
		t.volume++
	}
	return nil
}

// Flush closes the currently open interval (e.g. at end of stream).
func (t *Tracker) Flush() {
	t.closeInterval()
}

// closeInterval finalizes the open interval and starts the next.
func (t *Tracker) closeInterval() {
	rep := &IntervalReport{
		Index:   t.curIndex,
		Start:   t.curStart,
		Queries: t.queries,
		Volume:  t.volume,
		Popular: map[string]struct{}{},
	}
	thresh := int(t.cfg.PopularFrac * float64(t.volume))
	if thresh < t.cfg.MinPopularCount {
		thresh = t.cfg.MinPopularCount
	}
	for tok, c := range t.counts {
		if c >= thresh {
			rep.Popular[tok] = struct{}{}
		}
	}
	// Persistence and stability.
	rep.Persistent = map[string]struct{}{}
	if t.prevPopular != nil {
		for tok := range rep.Popular {
			if _, ok := t.prevPopular[tok]; ok {
				rep.Persistent[tok] = struct{}{}
			}
		}
		rep.Stability = stats.Jaccard(rep.Popular, rep.Persistent)
	} else {
		for tok := range rep.Popular {
			rep.Persistent[tok] = struct{}{}
		}
		rep.Stability = 1
	}
	// Transients against the trained history.
	if t.intervals >= t.cfg.TrainIntervals && t.histVolume > 0 {
		for tok, c := range t.counts {
			if c < t.cfg.TransientMinCount {
				continue
			}
			expected := t.history[tok] / t.histVolume * float64(t.volume)
			if float64(c) >= t.cfg.TransientRatio*expected+float64(t.cfg.TransientMinCount)-1 {
				rep.Transients = append(rep.Transients, tok)
			}
		}
	}
	// Fold this interval into the decayed history.
	if t.cfg.HistoryDecay < 1 {
		for tok := range t.history {
			t.history[tok] *= t.cfg.HistoryDecay
			if t.history[tok] < 1e-9 {
				delete(t.history, tok)
			}
		}
		t.histVolume *= t.cfg.HistoryDecay
	}
	for tok, c := range t.counts {
		t.history[tok] += float64(c)
	}
	t.histVolume += float64(t.volume)
	t.intervals++

	t.prevPopular = rep.Popular
	t.reports = append(t.reports, rep)
	if t.onClose != nil {
		t.onClose(rep)
	}

	// Reset the open interval.
	t.curIndex++
	t.curStart += t.cfg.Interval
	t.counts = map[string]int{}
	t.queries = 0
	t.volume = 0
}

// Popular returns the most recently closed interval's popular set (nil
// before any interval closes).
func (t *Tracker) Popular() map[string]struct{} {
	if len(t.reports) == 0 {
		return nil
	}
	return t.reports[len(t.reports)-1].Popular
}

// PopularTerms returns Popular as a slice (order unspecified).
func (t *Tracker) PopularTerms() []string {
	pop := t.Popular()
	out := make([]string, 0, len(pop))
	for tok := range pop {
		out = append(out, tok)
	}
	return out
}

// Reports returns every closed interval in order.
func (t *Tracker) Reports() []*IntervalReport { return t.reports }

// StabilitySeries extracts the Figure 6 series from the closed intervals.
func (t *Tracker) StabilitySeries() []float64 {
	out := make([]float64, 0, len(t.reports))
	for _, r := range t.reports {
		out = append(out, r.Stability)
	}
	return out
}

// MismatchAgainst computes the Figure 7 value for the latest interval:
// Jaccard similarity between its popular query terms and fileTerms.
func (t *Tracker) MismatchAgainst(fileTerms map[string]struct{}) float64 {
	pop := t.Popular()
	if pop == nil {
		return 0
	}
	return stats.Jaccard(pop, fileTerms)
}
