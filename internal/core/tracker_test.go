package core

import (
	"testing"

	"querycentric/internal/querygen"
	"querycentric/internal/stats"
)

func TestNewTrackerValidation(t *testing.T) {
	bad := []TrackerConfig{
		{Interval: 0, TransientRatio: 5, HistoryDecay: 1},
		{Interval: 10, PopularFrac: 2, TransientRatio: 5, HistoryDecay: 1},
		{Interval: 10, TransientRatio: 0.5, HistoryDecay: 1},
		{Interval: 10, TransientRatio: 5, HistoryDecay: 0},
		{Interval: 10, TransientRatio: 5, HistoryDecay: 1.5},
	}
	for i, cfg := range bad {
		if _, err := NewTracker(cfg, nil); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestTrackerIntervalsClose(t *testing.T) {
	cfg := DefaultTrackerConfig()
	cfg.Interval = 100
	var closed []int
	tr, err := NewTracker(cfg, func(r *IntervalReport) { closed = append(closed, r.Index) })
	if err != nil {
		t.Fatal(err)
	}
	tr.Observe(0, "madonna music")
	tr.Observe(50, "madonna")
	tr.Observe(150, "zeppelin") // closes interval 0
	tr.Observe(350, "zeppelin") // closes 1 and 2
	tr.Flush()                  // closes 3
	if len(closed) != 4 {
		t.Fatalf("closed %d intervals: %v", len(closed), closed)
	}
	reports := tr.Reports()
	if reports[0].Queries != 2 || reports[0].Volume != 3 {
		t.Errorf("interval 0: %+v", reports[0])
	}
	if reports[2].Queries != 0 {
		t.Errorf("empty interval 2 has %d queries", reports[2].Queries)
	}
	if reports[3].Queries != 1 {
		t.Errorf("interval 3 has %d queries", reports[3].Queries)
	}
}

func TestTrackerTimeMonotonic(t *testing.T) {
	tr, _ := NewTracker(DefaultTrackerConfig(), nil)
	tr.Observe(5000, "a b")
	if err := tr.Observe(100, "c d"); err == nil {
		t.Error("time regression accepted")
	}
}

func TestTrackerPopularAndPersistence(t *testing.T) {
	cfg := DefaultTrackerConfig()
	cfg.Interval = 100
	cfg.MinPopularCount = 3
	tr, _ := NewTracker(cfg, nil)
	// Interval 0: madonna x5, noise x1.
	for i := int64(0); i < 5; i++ {
		tr.Observe(i, "madonna")
	}
	tr.Observe(6, "noise")
	// Interval 1: madonna x5, zeppelin x4.
	for i := int64(100); i < 105; i++ {
		tr.Observe(i, "madonna")
	}
	for i := int64(110); i < 114; i++ {
		tr.Observe(i, "zeppelin")
	}
	tr.Flush()
	reports := tr.Reports()
	if len(reports) != 2 {
		t.Fatalf("%d reports", len(reports))
	}
	if _, ok := reports[0].Popular["madonna"]; !ok {
		t.Error("madonna not popular in interval 0")
	}
	if _, ok := reports[0].Popular["noise"]; ok {
		t.Error("noise popular in interval 0")
	}
	if _, ok := reports[1].Persistent["madonna"]; !ok {
		t.Error("madonna not persistent in interval 1")
	}
	if _, ok := reports[1].Persistent["zeppelin"]; ok {
		t.Error("newly popular zeppelin marked persistent")
	}
	// Stability = |{madonna}| / |{madonna, zeppelin}| = 0.5.
	if reports[1].Stability != 0.5 {
		t.Errorf("stability = %v, want 0.5", reports[1].Stability)
	}
	if got := tr.Popular(); len(got) != 2 {
		t.Errorf("latest popular set: %v", got)
	}
	if got := tr.PopularTerms(); len(got) != 2 {
		t.Errorf("PopularTerms: %v", got)
	}
}

func TestTrackerTransients(t *testing.T) {
	cfg := DefaultTrackerConfig()
	cfg.Interval = 100
	cfg.TrainIntervals = 2
	cfg.TransientMinCount = 5
	cfg.TransientRatio = 4
	tr, _ := NewTracker(cfg, nil)
	// Two training intervals of steady traffic.
	for iv := int64(0); iv < 2; iv++ {
		for i := int64(0); i < 20; i++ {
			tr.Observe(iv*100+i, "steady traffic")
		}
	}
	// Interval 2: steady + a flash term.
	for i := int64(0); i < 20; i++ {
		tr.Observe(200+i, "steady traffic")
	}
	for i := int64(40); i < 50; i++ {
		tr.Observe(200+i, "flashterm")
	}
	tr.Flush()
	reports := tr.Reports()
	last := reports[len(reports)-1]
	foundFlash := false
	for _, tok := range last.Transients {
		if tok == "flashterm" {
			foundFlash = true
		}
		if tok == "steady" || tok == "traffic" {
			t.Errorf("steady term %q flagged transient", tok)
		}
	}
	if !foundFlash {
		t.Errorf("flashterm not flagged; transients = %v", last.Transients)
	}
}

func TestTrackerNoTransientsDuringTraining(t *testing.T) {
	cfg := DefaultTrackerConfig()
	cfg.Interval = 100
	cfg.TrainIntervals = 5
	tr, _ := NewTracker(cfg, nil)
	for i := int64(0); i < 50; i++ {
		tr.Observe(i, "boom boom boom")
	}
	tr.Flush()
	if got := tr.Reports()[0].Transients; got != nil {
		t.Errorf("transients during training: %v", got)
	}
}

func TestTrackerHistoryDecay(t *testing.T) {
	cfg := DefaultTrackerConfig()
	cfg.Interval = 100
	cfg.TrainIntervals = 1
	cfg.HistoryDecay = 0.5
	cfg.TransientMinCount = 5
	cfg.TransientRatio = 3
	tr, err := NewTracker(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A term popular early, silent for many intervals, then returning:
	// with decay, its historical rate fades, so the return is transient.
	for i := int64(0); i < 20; i++ {
		tr.Observe(i, "comeback")
	}
	for iv := int64(1); iv < 10; iv++ {
		for i := int64(0); i < 20; i++ {
			tr.Observe(iv*100+i, "filler noise")
		}
	}
	for i := int64(0); i < 20; i++ {
		tr.Observe(1000+i, "comeback")
	}
	tr.Flush()
	last := tr.Reports()[len(tr.Reports())-1]
	found := false
	for _, tok := range last.Transients {
		if tok == "comeback" {
			found = true
		}
	}
	if !found {
		t.Errorf("decayed history did not flag the comeback: %v", last.Transients)
	}
}

func TestTrackerMismatch(t *testing.T) {
	cfg := DefaultTrackerConfig()
	cfg.Interval = 100
	cfg.MinPopularCount = 2
	tr, _ := NewTracker(cfg, nil)
	for i := int64(0); i < 5; i++ {
		tr.Observe(i, "alpha beta")
	}
	tr.Flush()
	file := map[string]struct{}{"beta": {}, "gamma": {}, "delta": {}}
	// popular {alpha,beta} vs file {beta,gamma,delta}: J = 1/4.
	if got := tr.MismatchAgainst(file); got != 0.25 {
		t.Errorf("mismatch = %v, want 0.25", got)
	}
	empty, _ := NewTracker(cfg, nil)
	if empty.MismatchAgainst(file) != 0 {
		t.Error("mismatch before any interval should be 0")
	}
	if empty.Popular() != nil {
		t.Error("Popular before any interval should be nil")
	}
}

func TestTrackerAgainstOfflineAnalysis(t *testing.T) {
	// The online tracker must agree with the offline interval bucketing on
	// the same workload (same popularity definition).
	w, err := querygen.Generate(func() querygen.Config {
		c := querygen.DefaultConfig(31)
		c.Queries = 20000
		c.Duration = 12 * 3600
		c.TailSize = 3000
		return c
	}())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrackerConfig()
	tr, _ := NewTracker(cfg, nil)
	for _, rec := range w.Trace.Records {
		if err := tr.Observe(rec.Time, rec.Query); err != nil {
			t.Fatal(err)
		}
	}
	tr.Flush()
	series := tr.StabilitySeries()
	var o stats.Online
	for _, v := range series[2:] {
		o.Add(v)
	}
	if o.Mean() < 0.70 {
		t.Errorf("online stability mean = %v, want > 0.70", o.Mean())
	}
}

func BenchmarkTrackerObserve(b *testing.B) {
	tr, _ := NewTracker(DefaultTrackerConfig(), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Observe(int64(i/100), "some query terms here")
	}
}
