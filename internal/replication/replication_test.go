package replication

import (
	"math"
	"testing"
	"testing/quick"

	"querycentric/internal/rng"
	"querycentric/internal/zipf"
)

func zipfPopularity(m int, s float64) []float64 {
	d, _ := zipf.New(m, s)
	out := make([]float64, m)
	for i := 1; i <= m; i++ {
		out[i-1] = d.Prob(i)
	}
	return out
}

func TestAllocateValidation(t *testing.T) {
	if _, err := Allocate(Uniform, nil, 10, 5); err == nil {
		t.Error("empty popularity accepted")
	}
	if _, err := Allocate(Uniform, []float64{1}, 10, 0); err == nil {
		t.Error("maxPer 0 accepted")
	}
	if _, err := Allocate(Uniform, []float64{-1}, 10, 5); err == nil {
		t.Error("negative popularity accepted")
	}
	if _, err := Allocate(Strategy(9), []float64{1}, 10, 5); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestAllocateBudgetExact(t *testing.T) {
	pop := zipfPopularity(100, 1.0)
	for _, s := range []Strategy{Uniform, Proportional, SquareRoot} {
		counts, err := Allocate(s, pop, 1000, 1000)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0
		for _, c := range counts {
			if c < 1 {
				t.Fatalf("%s produced count %d below minimum", s, c)
			}
			sum += c
		}
		if sum != 1000 {
			t.Errorf("%s allocated %d, want 1000", s, sum)
		}
	}
}

func TestAllocateMaxPerCap(t *testing.T) {
	pop := zipfPopularity(10, 1.2)
	counts, err := Allocate(Proportional, pop, 500, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c > 20 {
			t.Errorf("object %d has %d replicas above cap", i, c)
		}
	}
}

func TestUniformIsFlat(t *testing.T) {
	pop := zipfPopularity(50, 1.0)
	counts, _ := Allocate(Uniform, pop, 500, 500)
	for _, c := range counts {
		if c != 10 {
			t.Fatalf("uniform counts not flat: %v", counts)
		}
	}
}

func TestProportionalFollowsPopularity(t *testing.T) {
	pop := []float64{8, 4, 2, 1, 1}
	counts, _ := Allocate(Proportional, pop, 160, 1000)
	if counts[0] <= counts[1] || counts[1] <= counts[2] {
		t.Errorf("proportional counts not ordered: %v", counts)
	}
	// Ratios approximate popularity ratios.
	if r := float64(counts[0]) / float64(counts[1]); r < 1.5 || r > 2.5 {
		t.Errorf("head ratio %v, want ~2", r)
	}
}

func TestSquareRootBetweenUniformAndProportional(t *testing.T) {
	pop := zipfPopularity(100, 1.0)
	uni, _ := Allocate(Uniform, pop, 2000, 2000)
	pro, _ := Allocate(Proportional, pop, 2000, 2000)
	sqr, _ := Allocate(SquareRoot, pop, 2000, 2000)
	// Head object: uniform < sqrt < proportional.
	if !(uni[0] <= sqr[0] && sqr[0] <= pro[0]) {
		t.Errorf("head counts: uni=%d sqrt=%d prop=%d", uni[0], sqr[0], pro[0])
	}
	// Tail object: proportional < sqrt < uniform (weak inequalities).
	last := len(pop) - 1
	if !(pro[last] <= sqr[last] && sqr[last] <= uni[last]) {
		t.Errorf("tail counts: uni=%d sqrt=%d prop=%d", uni[last], sqr[last], pro[last])
	}
}

func TestSquareRootMinimizesSearchSize(t *testing.T) {
	// The Cohen–Shenker theorem: square-root allocation minimizes expected
	// search size when the allocation uses the query distribution.
	pop := zipfPopularity(200, 1.0)
	const nodes, budget = 10000, 4000
	var sizes [3]float64
	for i, s := range []Strategy{Uniform, Proportional, SquareRoot} {
		counts, err := Allocate(s, pop, budget, nodes)
		if err != nil {
			t.Fatal(err)
		}
		sizes[i], err = ExpectedSearchSize(counts, pop, nodes)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !(sizes[2] < sizes[0] && sizes[2] < sizes[1]) {
		t.Errorf("square-root %v not below uniform %v and proportional %v",
			sizes[2], sizes[0], sizes[1])
	}
}

func TestMismatchDestroysAllocationAdvantage(t *testing.T) {
	// The paper's thesis, quantitatively: allocate by FILE popularity but
	// score by QUERY popularity (an uncorrelated permutation). The
	// sqrt-by-file advantage over uniform must collapse relative to
	// sqrt-by-query.
	const m, nodes, budget, probe = 300, 5000, 6000, 50
	qPop := zipfPopularity(m, 1.0)
	fPop := make([]float64, m)
	perm := rng.New(7).Perm(m)
	for i, j := range perm {
		fPop[i] = qPop[j] // file popularity: same shape, shuffled ranks
	}
	succ := func(strategy Strategy, basis []float64) float64 {
		counts, err := Allocate(strategy, basis, budget, nodes)
		if err != nil {
			t.Fatal(err)
		}
		s, err := ExpectedSuccess(counts, qPop, nodes, probe)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	uniform := succ(Uniform, qPop)
	byQuery := succ(SquareRoot, qPop)
	byFile := succ(SquareRoot, fPop)
	if byQuery <= uniform {
		t.Errorf("query-driven sqrt %v not above uniform %v", byQuery, uniform)
	}
	gainQuery := byQuery - uniform
	gainFile := byFile - uniform
	if gainFile > gainQuery/2 {
		t.Errorf("file-driven allocation kept too much advantage: %v vs %v", gainFile, gainQuery)
	}
}

func TestExpectedSuccessBounds(t *testing.T) {
	counts := []int{1, 100}
	q := []float64{0.5, 0.5}
	s, err := ExpectedSuccess(counts, q, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 || s > 1 {
		t.Errorf("success %v out of range", s)
	}
	// Full replication ⇒ certain success.
	s, _ = ExpectedSuccess([]int{100}, []float64{1}, 100, 1)
	if math.Abs(s-1) > 1e-12 {
		t.Errorf("full replication success %v", s)
	}
	if _, err := ExpectedSuccess([]int{1}, []float64{1, 2}, 10, 1); err == nil {
		t.Error("length mismatch accepted")
	}
}

// TestZeroPopularityClamps pins the degenerate case an adaptive system hits
// before its sketch has observed any queries: an all-zero query popularity
// clamps to uniform weights instead of erroring, agreeing with Allocate.
func TestZeroPopularityClamps(t *testing.T) {
	counts := []int{2, 2}
	zero := []float64{0, 0}
	uniform := []float64{1, 1}
	sZero, err := ExpectedSuccess(counts, zero, 10, 3)
	if err != nil {
		t.Fatalf("zero popularity: %v", err)
	}
	sUni, err := ExpectedSuccess(counts, uniform, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sZero-sUni) > 1e-12 {
		t.Errorf("zero-popularity success %v != uniform %v", sZero, sUni)
	}
	zZero, err := ExpectedSearchSize(counts, zero, 10)
	if err != nil {
		t.Fatalf("zero popularity: %v", err)
	}
	zUni, err := ExpectedSearchSize(counts, uniform, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(zZero-zUni) > 1e-12 {
		t.Errorf("zero-popularity search size %v != uniform %v", zZero, zUni)
	}
	if _, err := ExpectedSuccess(nil, nil, 10, 1); err == nil {
		t.Error("empty object set accepted by ExpectedSuccess")
	}
	if _, err := ExpectedSearchSize(nil, nil, 10); err == nil {
		t.Error("empty object set accepted by ExpectedSearchSize")
	}
}

// TestAllocationBoundaries covers the edges an adaptation round can reach:
// an empty (zero) budget, a hard maxPer=1 cap, and a single-node network.
func TestAllocationBoundaries(t *testing.T) {
	// Empty budget: every object still receives its floor of one replica.
	counts, err := Allocate(SquareRoot, []float64{5, 1, 0}, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Errorf("zero budget: object %d got %d replicas, want 1", i, c)
		}
	}
	// maxPer=1: the cap binds before the budget is spent.
	counts, err = Allocate(Proportional, []float64{9, 1}, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Errorf("maxPer=1: object %d got %d replicas, want 1", i, c)
		}
	}
	// Single-node network: one replica means certain success in one probe.
	s, err := ExpectedSuccess([]int{1}, []float64{3}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1) > 1e-12 {
		t.Errorf("single-node success %v, want 1", s)
	}
	z, err := ExpectedSearchSize([]int{1}, []float64{3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z-1) > 1e-12 {
		t.Errorf("single-node search size %v, want 1", z)
	}
}

func TestQuickAllocateInvariants(t *testing.T) {
	f := func(raw []uint8, budgetRaw uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 50 {
			raw = raw[:50]
		}
		pop := make([]float64, len(raw))
		for i, v := range raw {
			pop[i] = float64(v)
		}
		budget := int(budgetRaw)
		counts, err := Allocate(SquareRoot, pop, budget, 1<<20)
		if err != nil {
			return false
		}
		sum := 0
		for _, c := range counts {
			if c < 1 {
				return false
			}
			sum += c
		}
		want := budget
		if want < len(pop) {
			want = len(pop)
		}
		return sum == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStrategyString(t *testing.T) {
	for s, want := range map[Strategy]string{
		Uniform: "uniform", Proportional: "proportional", SquareRoot: "square-root",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
	if Strategy(7).String() == "" {
		t.Error("unknown strategy String empty")
	}
}

func BenchmarkAllocate(b *testing.B) {
	pop := zipfPopularity(10000, 1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Allocate(SquareRoot, pop, 50000, 100000); err != nil {
			b.Fatal(err)
		}
	}
}
