// Package replication implements the classic replica-allocation strategies
// for unstructured search (Cohen & Shenker, SIGCOMM 2002): uniform,
// proportional and square-root allocation of a replica budget across
// objects, plus the analytic success/search-size model for random probing.
//
// Its role in the reproduction is to sharpen the paper's position into a
// quantitative statement: these strategies take a popularity vector as
// input, and the paper shows deployed systems effectively feed them *file*
// popularity while success is scored under *query* popularity. The
// experiment built on this package allocates replicas both ways and shows
// that under the measured mismatch even the optimal square-root strategy
// loses most of its advantage unless it is driven by the query
// distribution — the query-centric thesis.
package replication

import (
	"fmt"
	"math"
	"sort"
)

// Strategy selects an allocation rule.
type Strategy int

// The three classic allocations.
const (
	Uniform Strategy = iota
	Proportional
	SquareRoot
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Uniform:
		return "uniform"
	case Proportional:
		return "proportional"
	case SquareRoot:
		return "square-root"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Allocate distributes a total replica budget over len(popularity) objects
// according to the strategy, with every object receiving at least one
// replica and no object exceeding maxPer. Popularity values must be
// non-negative and not all zero. Largest-remainder rounding keeps the sum
// at max(budget, len(popularity)) exactly (up to the maxPer cap).
func Allocate(strategy Strategy, popularity []float64, budget, maxPer int) ([]int, error) {
	m := len(popularity)
	if m == 0 {
		return nil, fmt.Errorf("replication: no objects")
	}
	if maxPer < 1 {
		return nil, fmt.Errorf("replication: maxPer must be at least 1, got %d", maxPer)
	}
	weights := make([]float64, m)
	var total float64
	for i, p := range popularity {
		if p < 0 {
			return nil, fmt.Errorf("replication: negative popularity at %d", i)
		}
		switch strategy {
		case Uniform:
			weights[i] = 1
		case Proportional:
			weights[i] = p
		case SquareRoot:
			weights[i] = math.Sqrt(p)
		default:
			return nil, fmt.Errorf("replication: unknown strategy %d", strategy)
		}
		total += weights[i]
	}
	if total == 0 {
		// All-zero popularity degenerates to uniform.
		for i := range weights {
			weights[i] = 1
		}
		total = float64(m)
	}

	counts := make([]int, m)
	extra := budget - m
	if extra < 0 {
		extra = 0
	}
	type frac struct {
		idx int
		f   float64
	}
	fracs := make([]frac, m)
	assigned := 0
	for i := range counts {
		exact := float64(extra) * weights[i] / total
		whole := int(exact)
		counts[i] = 1 + whole
		assigned += whole
		fracs[i] = frac{idx: i, f: exact - float64(whole)}
	}
	sort.Slice(fracs, func(a, b int) bool {
		if fracs[a].f != fracs[b].f {
			return fracs[a].f > fracs[b].f
		}
		return fracs[a].idx < fracs[b].idx
	})
	for left := extra - assigned; left > 0; {
		progressed := false
		for _, fr := range fracs {
			if left == 0 {
				break
			}
			if counts[fr.idx] < maxPer {
				counts[fr.idx]++
				left--
				progressed = true
			}
		}
		if !progressed {
			break // every object capped
		}
	}
	for i := range counts {
		if counts[i] > maxPer {
			counts[i] = maxPer
		}
	}
	return counts, nil
}

// ExpectedSuccess returns the query-weighted probability that probing
// `probe` uniformly random nodes (with replacement, out of `nodes`) finds
// the target: Σ_i q_i · (1 − (1 − c_i/nodes)^probe), with q normalized.
// An all-zero query popularity clamps to uniform weights, mirroring
// Allocate's degenerate case — a popularity sketch that observed no
// queries yet must not abort an adaptation round.
func ExpectedSuccess(counts []int, queryPopularity []float64, nodes, probe int) (float64, error) {
	if len(counts) != len(queryPopularity) {
		return 0, fmt.Errorf("replication: %d counts for %d popularities", len(counts), len(queryPopularity))
	}
	if len(counts) == 0 {
		return 0, fmt.Errorf("replication: no objects")
	}
	if nodes < 1 || probe < 1 {
		return 0, fmt.Errorf("replication: nodes and probe must be positive")
	}
	weight := normalizedQueryWeights(queryPopularity)
	var success float64
	for i, c := range counts {
		if c > nodes {
			c = nodes
		}
		miss := math.Pow(1-float64(c)/float64(nodes), float64(probe))
		success += weight(i) * (1 - miss)
	}
	return success, nil
}

// ExpectedSearchSize returns the query-weighted expected number of probes
// to the first replica, E[probes] = nodes/c_i for random probing, a
// standard figure of merit for allocation strategies. An all-zero query
// popularity clamps to uniform weights (see ExpectedSuccess); replica
// counts below one clamp to one.
func ExpectedSearchSize(counts []int, queryPopularity []float64, nodes int) (float64, error) {
	if len(counts) != len(queryPopularity) {
		return 0, fmt.Errorf("replication: %d counts for %d popularities", len(counts), len(queryPopularity))
	}
	if len(counts) == 0 {
		return 0, fmt.Errorf("replication: no objects")
	}
	if nodes < 1 {
		return 0, fmt.Errorf("replication: nodes must be positive")
	}
	weight := normalizedQueryWeights(queryPopularity)
	var size float64
	for i, c := range counts {
		if c < 1 {
			c = 1
		}
		size += weight(i) * float64(nodes) / float64(c)
	}
	return size, nil
}

// normalizedQueryWeights returns the normalized query-popularity weight
// function, clamping an all-zero vector to uniform.
func normalizedQueryWeights(queryPopularity []float64) func(i int) float64 {
	var qTotal float64
	for _, q := range queryPopularity {
		qTotal += q
	}
	if qTotal == 0 {
		uniform := 1 / float64(len(queryPopularity))
		return func(int) float64 { return uniform }
	}
	return func(i int) float64 { return queryPopularity[i] / qTotal }
}
