package vocab

import (
	"strings"
	"testing"
)

func TestWordsDistinct(t *testing.T) {
	ws := Words(1, "test", 5000)
	if len(ws) != 5000 {
		t.Fatalf("got %d words", len(ws))
	}
	seen := map[string]struct{}{}
	for _, w := range ws {
		if w == "" {
			t.Fatal("empty word")
		}
		if _, dup := seen[w]; dup {
			t.Fatalf("duplicate word %q", w)
		}
		seen[w] = struct{}{}
	}
}

func TestWordsDeterministic(t *testing.T) {
	a := Words(7, "x", 100)
	b := Words(7, "x", 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Words not deterministic")
		}
	}
}

func TestWordsStreamsIndependent(t *testing.T) {
	a := Words(7, "x", 50)
	b := Words(7, "y", 50)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams overlap in %d/50 positions", same)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Seed: 1}); err == nil {
		t.Error("expected error for zero sizes")
	}
	if _, err := New(Config{Seed: 1, Artists: 10, Titles: 10, Albums: 10, Genres: -1}); err == nil {
		t.Error("expected error for negative genres")
	}
}

func TestNewSizes(t *testing.T) {
	cfg := Config{Seed: 3, Artists: 500, Titles: 1000, Albums: 300, Genres: 100, Extra: 50}
	v, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Artists) != 500 || len(v.Titles) != 1000 || len(v.Albums) != 300 ||
		len(v.Genres) != 100 || len(v.Extra) != 50 {
		t.Fatalf("sizes: %d/%d/%d/%d/%d", len(v.Artists), len(v.Titles),
			len(v.Albums), len(v.Genres), len(v.Extra))
	}
}

func TestNewAllDistinct(t *testing.T) {
	v, err := New(DefaultConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	for name, list := range map[string][]string{
		"artists": v.Artists, "titles": v.Titles, "albums": v.Albums, "genres": v.Genres,
	} {
		seen := map[string]struct{}{}
		for _, s := range list {
			if s == "" {
				t.Fatalf("%s contains empty string", name)
			}
			if _, dup := seen[s]; dup {
				t.Fatalf("%s contains duplicate %q", name, s)
			}
			seen[s] = struct{}{}
		}
	}
}

func TestGenresIncludeStock(t *testing.T) {
	v, err := New(Config{Seed: 5, Artists: 10, Titles: 10, Albums: 10, Genres: 50})
	if err != nil {
		t.Fatal(err)
	}
	set := map[string]struct{}{}
	for _, g := range v.Genres {
		set[g] = struct{}{}
	}
	for _, g := range StockGenres {
		if _, ok := set[g]; !ok {
			t.Errorf("stock genre %q missing", g)
		}
	}
}

func TestGenresFewerThanStock(t *testing.T) {
	// Asking for fewer genres than the stock list still returns the full
	// stock list (callers always get at least the iTunes defaults).
	v, err := New(Config{Seed: 5, Artists: 10, Titles: 10, Albums: 10, Genres: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Genres) < len(StockGenres) {
		t.Errorf("got %d genres, want at least %d", len(v.Genres), len(StockGenres))
	}
}

func TestDeterministicCorpus(t *testing.T) {
	cfg := DefaultConfig(99)
	a, _ := New(cfg)
	b, _ := New(cfg)
	for i := range a.Artists {
		if a.Artists[i] != b.Artists[i] {
			t.Fatal("artists differ across builds")
		}
	}
	for i := range a.Titles {
		if a.Titles[i] != b.Titles[i] {
			t.Fatal("titles differ across builds")
		}
	}
}

func TestArtistShapes(t *testing.T) {
	v, _ := New(Config{Seed: 13, Artists: 1000, Titles: 10, Albums: 10})
	var theCount int
	for _, a := range v.Artists {
		if strings.HasPrefix(a, "The ") {
			theCount++
		}
		if strings.TrimSpace(a) != a {
			t.Errorf("artist %q has surrounding whitespace", a)
		}
	}
	if theCount == 0 {
		t.Error(`no "The ..." artists generated`)
	}
}

func BenchmarkNew(b *testing.B) {
	cfg := DefaultConfig(1)
	for i := 0; i < b.N; i++ {
		if _, err := New(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
