// Package vocab builds the deterministic synthetic vocabularies from which
// object annotations and query strings are composed.
//
// The paper analyzed real file names ("Aaron Neville and Linda Ronstad - I
// Don t Know Much.mp3") and iTunes annotations (artist, album, genre). We
// cannot ship those traces, so this package synthesizes a pronounceable,
// collision-free vocabulary of words, artist names, song titles, album
// names and genres. Every generator is a pure function of (seed, index), so
// the same configuration always yields the same corpus.
package vocab

import (
	"fmt"
	"strings"

	"querycentric/internal/rng"
)

// Syllable inventory used to compose pronounceable words. Chosen so that
// onset×nucleus×coda × length-2..4 gives far more combinations than any
// experiment needs, keeping accidental collisions negligible.
var (
	onsets = []string{"b", "br", "c", "ch", "d", "dr", "f", "fl", "g", "gr",
		"h", "j", "k", "kl", "l", "m", "n", "p", "pr", "qu", "r", "s", "sh",
		"sl", "st", "t", "th", "tr", "v", "w", "z"}
	nuclei = []string{"a", "e", "i", "o", "u", "ai", "ea", "ee", "io", "oo", "ou"}
	codas  = []string{"", "", "", "l", "m", "n", "r", "s", "t", "nd", "st", "ck", "ng"}
)

// word deterministically derives a pronounceable word from a 64-bit code.
func word(code uint64) string {
	r := rng.New(code*0x9e3779b97f4a7c15 + 1)
	n := 2 + r.Intn(3) // 2-4 syllables
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(onsets[r.Intn(len(onsets))])
		b.WriteString(nuclei[r.Intn(len(nuclei))])
		if i == n-1 || r.Bool(0.3) {
			b.WriteString(codas[r.Intn(len(codas))])
		}
	}
	return b.String()
}

// Words returns n distinct pronounceable lowercase words for the stream
// identified by (seed, name). Distinctness is guaranteed by suffixing the
// rare collision with a deterministic discriminator.
func Words(seed uint64, name string, n int) []string {
	r := rng.NewNamed(seed, "vocab/"+name)
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for len(out) < n {
		w := word(r.Uint64())
		if _, dup := seen[w]; dup {
			w = fmt.Sprintf("%s%d", w, len(out))
			if _, dup2 := seen[w]; dup2 {
				continue
			}
		}
		seen[w] = struct{}{}
		out = append(out, w)
	}
	return out
}

// StockGenres is the genre list iTunes shipped with (the paper notes 24
// stock genres that users were free to extend).
var StockGenres = []string{
	"Alternative", "Blues", "Books & Spoken", "Children's Music", "Classical",
	"Comedy", "Country", "Dance", "Easy Listening", "Electronic", "Folk",
	"Hip Hop/Rap", "Holiday", "Industrial", "Jazz", "Latin", "New Age", "Pop",
	"R&B", "Reggae", "Rock", "Soundtrack", "Unclassifiable", "World",
}

// Config sizes a Vocabulary.
type Config struct {
	Seed    uint64
	Artists int // distinct artist names
	Titles  int // distinct song title cores
	Albums  int // distinct album names
	Genres  int // total genres including the 24 stock ones
	Extra   int // extra free words (query slang, tags: "remix", "live", ...)
}

// DefaultConfig returns a vocabulary sized for the scaled-down experiments.
func DefaultConfig(seed uint64) Config {
	return Config{Seed: seed, Artists: 4000, Titles: 20000, Albums: 6000, Genres: 300, Extra: 500}
}

// Vocabulary is an immutable corpus of name components.
type Vocabulary struct {
	Artists []string // "The Braimos", "Shanu Kleed", ...
	Titles  []string // "Dream Of The Flouson", ...
	Albums  []string
	Genres  []string
	Extra   []string // standalone words: tags, slang, qualifiers
}

// New builds the vocabulary for cfg. The same cfg always yields the same
// corpus.
func New(cfg Config) (*Vocabulary, error) {
	if cfg.Artists <= 0 || cfg.Titles <= 0 || cfg.Albums <= 0 {
		return nil, fmt.Errorf("vocab: artists, titles and albums must be positive: %+v", cfg)
	}
	if cfg.Genres < 0 || cfg.Extra < 0 {
		return nil, fmt.Errorf("vocab: negative corpus size: %+v", cfg)
	}
	v := &Vocabulary{}

	// Artists: compose from a word pool with a few realistic patterns.
	aw := Words(cfg.Seed, "artist-words", max(64, cfg.Artists/2))
	ar := rng.NewNamed(cfg.Seed, "vocab/artist-compose")
	seen := make(map[string]struct{}, cfg.Artists)
	for len(v.Artists) < cfg.Artists {
		var name string
		switch ar.Intn(6) {
		case 0:
			name = "The " + title(aw[ar.Intn(len(aw))]) + "s"
		case 1:
			name = title(aw[ar.Intn(len(aw))]) + " " + title(aw[ar.Intn(len(aw))])
		case 2:
			name = "DJ " + title(aw[ar.Intn(len(aw))])
		case 3:
			name = title(aw[ar.Intn(len(aw))])
		case 4:
			name = title(aw[ar.Intn(len(aw))]) + " & The " + title(aw[ar.Intn(len(aw))]) + "s"
		default:
			name = title(aw[ar.Intn(len(aw))]) + " " + title(aw[ar.Intn(len(aw))]) + " Band"
		}
		if _, dup := seen[name]; dup {
			name = fmt.Sprintf("%s %d", name, len(v.Artists))
		}
		seen[name] = struct{}{}
		v.Artists = append(v.Artists, name)
	}

	// Titles: 1-5 word phrases sprinkled with common function words so that
	// term-frequency analyses see realistic head terms ("the", "of", "love").
	tw := Words(cfg.Seed, "title-words", max(64, cfg.Titles/4))
	common := []string{"the", "of", "my", "you", "love", "in", "a", "to", "me", "your", "night", "heart", "and"}
	tr := rng.NewNamed(cfg.Seed, "vocab/title-compose")
	seenT := make(map[string]struct{}, cfg.Titles)
	for len(v.Titles) < cfg.Titles {
		n := 1 + tr.Intn(5)
		parts := make([]string, 0, n)
		for i := 0; i < n; i++ {
			if tr.Bool(0.35) {
				parts = append(parts, common[tr.Intn(len(common))])
			} else {
				parts = append(parts, tw[tr.Intn(len(tw))])
			}
		}
		name := title(strings.Join(parts, " "))
		if _, dup := seenT[name]; dup {
			name = fmt.Sprintf("%s %d", name, len(v.Titles))
		}
		seenT[name] = struct{}{}
		v.Titles = append(v.Titles, name)
	}

	// Albums: like short titles.
	alw := Words(cfg.Seed, "album-words", max(64, cfg.Albums/3))
	alr := rng.NewNamed(cfg.Seed, "vocab/album-compose")
	seenA := make(map[string]struct{}, cfg.Albums)
	for len(v.Albums) < cfg.Albums {
		n := 1 + alr.Intn(3)
		parts := make([]string, 0, n)
		for i := 0; i < n; i++ {
			parts = append(parts, alw[alr.Intn(len(alw))])
		}
		name := title(strings.Join(parts, " "))
		if _, dup := seenA[name]; dup {
			name = fmt.Sprintf("%s Vol %d", name, len(v.Albums))
		}
		seenA[name] = struct{}{}
		v.Albums = append(v.Albums, name)
	}

	// Genres: the stock list first, then user-created variants ("Indie
	// Rock", "rock", "ROCK!!!", novel words) as the paper observed 1,452
	// distinct genre strings.
	v.Genres = append(v.Genres, StockGenres...)
	gr := rng.NewNamed(cfg.Seed, "vocab/genre-compose")
	gw := Words(cfg.Seed, "genre-words", max(16, cfg.Genres/4))
	seenG := make(map[string]struct{}, cfg.Genres)
	for _, g := range v.Genres {
		seenG[g] = struct{}{}
	}
	for len(v.Genres) < cfg.Genres {
		var g string
		switch gr.Intn(5) {
		case 0: // casing variant of a stock genre
			g = strings.ToLower(StockGenres[gr.Intn(len(StockGenres))])
		case 1: // qualified stock genre
			g = title(gw[gr.Intn(len(gw))]) + " " + StockGenres[gr.Intn(len(StockGenres))]
		case 2: // shouted
			g = strings.ToUpper(StockGenres[gr.Intn(len(StockGenres))]) + "!!!"
		default: // novel
			g = title(gw[gr.Intn(len(gw))])
		}
		if _, dup := seenG[g]; dup {
			g = fmt.Sprintf("%s %d", g, len(v.Genres))
		}
		seenG[g] = struct{}{}
		v.Genres = append(v.Genres, g)
	}

	if cfg.Extra > 0 {
		v.Extra = Words(cfg.Seed, "extra", cfg.Extra)
	}
	return v, nil
}

// title uppercases the first letter of each space-separated word.
func title(s string) string {
	parts := strings.Split(s, " ")
	for i, p := range parts {
		if p == "" {
			continue
		}
		parts[i] = strings.ToUpper(p[:1]) + p[1:]
	}
	return strings.Join(parts, " ")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
