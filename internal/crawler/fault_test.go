package crawler

import (
	"testing"
	"time"

	"querycentric/internal/catalog"
	"querycentric/internal/faults"
	"querycentric/internal/gnet"
)

// faultedNet attaches a plane to a populated network.
func faultedNet(t *testing.T, peers int, fcfg faults.Config) *gnet.Network {
	t.Helper()
	nw := buildPopulatedNet(t, peers, 0)
	nw.SetFaults(faults.New(fcfg))
	return nw
}

func TestZeroFaultPlaneLeavesCrawlIdentical(t *testing.T) {
	nwA := buildPopulatedNet(t, 100, 0.1)
	nwB := buildPopulatedNet(t, 100, 0.1)
	nwB.SetFaults(faults.New(faults.Config{Seed: 77}))

	trA, statsA, err := Crawl(nwA, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	trB, statsB, err := Crawl(nwB, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if *statsA != *statsB {
		t.Fatalf("stats differ: %s vs %s", statsA, statsB)
	}
	if len(trA.Records) != len(trB.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(trA.Records), len(trB.Records))
	}
	for i := range trA.Records {
		if trA.Records[i] != trB.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestRetriesRecoverFromTransientDialFaults(t *testing.T) {
	// A single-attempt crawler loses peers to 30% dial faults; the same
	// crawl with a 5-attempt budget recovers nearly all of them.
	fcfg := faults.Config{Seed: 3, DialTimeout: 0.3}

	one := DefaultConfig()
	one.MaxAttempts = 1
	one.BackoffBase = 0
	_, statsOne, err := Crawl(faultedNet(t, 150, fcfg), one)
	if err != nil {
		t.Fatal(err)
	}
	if statsOne.Failed == 0 {
		t.Fatal("no failures at 30% dial-fault rate with a single attempt")
	}
	if statsOne.Retried != 0 {
		t.Errorf("single-attempt crawl retried %d times", statsOne.Retried)
	}

	five := DefaultConfig()
	five.MaxAttempts = 5
	five.BackoffBase = 0
	_, statsFive, err := Crawl(faultedNet(t, 150, fcfg), five)
	if err != nil {
		t.Fatal(err)
	}
	if statsFive.Retried == 0 {
		t.Error("retrying crawl performed no retries")
	}
	if statsFive.Crawled <= statsOne.Crawled {
		t.Errorf("retries did not improve coverage: %d (5 attempts) vs %d (1 attempt)",
			statsFive.Crawled, statsOne.Crawled)
	}
	if statsFive.Failed >= statsOne.Failed {
		t.Errorf("retries did not reduce failures: %d vs %d", statsFive.Failed, statsOne.Failed)
	}
	// Failed counts peers, not attempts: it can never exceed the number
	// of discovered peers.
	if statsFive.Failed+statsFive.Crawled+statsFive.Firewalled+statsFive.PartialBrowses > statsFive.Discovered {
		t.Errorf("funnel exceeds discovered peers: %s", statsFive)
	}
	if statsFive.GaveUp != statsFive.Failed+statsFive.PartialBrowses {
		t.Errorf("GaveUp (%d) should equal Failed+PartialBrowses (%d+%d) under transient-only faults",
			statsFive.GaveUp, statsFive.Failed, statsFive.PartialBrowses)
	}
}

func TestBackoffIsExponentialWithJitter(t *testing.T) {
	fcfg := faults.Config{Seed: 5, DialTimeout: 0.6}
	cfg := DefaultConfig()
	cfg.MaxAttempts = 4
	cfg.BackoffBase = 8 * time.Millisecond
	cfg.BackoffMax = 100 * time.Millisecond
	var waits []time.Duration
	cfg.sleep = func(d time.Duration) { waits = append(waits, d) }

	if _, _, err := Crawl(faultedNet(t, 60, fcfg), cfg); err != nil {
		t.Fatal(err)
	}
	if len(waits) == 0 {
		t.Fatal("no backoff waits recorded at 60% dial-fault rate")
	}
	distinct := map[time.Duration]bool{}
	for _, d := range waits {
		// Retry k waits in [base·2^(k-1)/2, base·2^(k-1)), capped at max.
		if d < cfg.BackoffBase/2 {
			t.Fatalf("wait %v below half the base backoff", d)
		}
		if d >= cfg.BackoffMax {
			t.Fatalf("wait %v at or above the cap %v", d, cfg.BackoffMax)
		}
		distinct[d] = true
	}
	if len(waits) > 4 && len(distinct) < 2 {
		t.Error("jitter produced no variation across waits")
	}
}

func TestPartialBrowseKeepsFilesRead(t *testing.T) {
	// Large libraries (multi-batch browses) + mid-session departures and
	// truncations: peers that die mid-browse must still contribute the
	// files already enumerated.
	cat, err := catalog.Build(catalog.Config{
		Seed: 11, Peers: 30, UniqueObjects: 9000, ReplicaAlpha: 1.6,
		VariantProb: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	gcfg := gnet.DefaultConfig(11)
	nw, err := gnet.NewFromCatalog(gcfg, cat)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	multiBatch := 0
	for _, p := range nw.Peers {
		total += len(p.Library)
		if len(p.Library) > 200 {
			multiBatch++
		}
	}
	if multiBatch == 0 {
		t.Fatalf("population has no multi-batch libraries (max needed > 200 files)")
	}
	nw.SetFaults(faults.New(faults.Config{Seed: 2, PeerDepart: 0.35, TruncateWrite: 0.5}))

	cfg := DefaultConfig()
	cfg.MaxAttempts = 2
	cfg.BackoffBase = 0
	tr, stats, err := Crawl(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PartialBrowses == 0 {
		t.Fatalf("no partial browses under heavy mid-session faults: %s", stats)
	}
	if len(tr.Records) == 0 || len(tr.Records) >= total {
		t.Errorf("partial crawl observed %d of %d records", len(tr.Records), total)
	}
	// Partial peers appear in the trace.
	if tr.Peers != stats.Crawled+stats.PartialBrowses {
		t.Errorf("trace.Peers = %d, want crawled+partial = %d",
			tr.Peers, stats.Crawled+stats.PartialBrowses)
	}
}

func TestCrawlDeterministicUnderFaults(t *testing.T) {
	fcfg := faults.Config{
		Seed: 21, DialTimeout: 0.25, HandshakeStall: 0.15, ConnReset: 0.15,
		TruncateWrite: 0.15, PeerDepart: 0.05,
	}
	cfg := DefaultConfig()
	cfg.MaxAttempts = 3
	cfg.BackoffBase = 0

	trA, statsA, err := Crawl(faultedNet(t, 120, fcfg), cfg)
	if err != nil {
		t.Fatal(err)
	}
	trB, statsB, err := Crawl(faultedNet(t, 120, fcfg), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *statsA != *statsB {
		t.Fatalf("stats differ under identical fault seeds: %s vs %s", statsA, statsB)
	}
	if len(trA.Records) != len(trB.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(trA.Records), len(trB.Records))
	}
	for i := range trA.Records {
		if trA.Records[i] != trB.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	if statsA.Retried == 0 && statsA.Failed == 0 && statsA.PartialBrowses == 0 {
		t.Error("fault schedule injected nothing; test is vacuous")
	}
}

func TestMaxPeersHonoredBeforeDialing(t *testing.T) {
	nw := buildPopulatedNet(t, 100, 0)
	// Count dials via a dial-fault plane with rate 0 but liveness mask:
	// use a full-rate dial fault beyond the cap instead — if the crawler
	// dialed past the cap, those dials would show up as failures.
	cfg := DefaultConfig()
	cfg.MaxPeers = 5
	tr, stats, err := Crawl(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Crawled != 5 {
		t.Errorf("crawled %d, want 5", stats.Crawled)
	}
	if stats.Failed != 0 || stats.Retried != 0 {
		t.Errorf("cap-bounded crawl recorded failures: %s", stats)
	}
	if tr.Peers != 5 {
		t.Errorf("trace.Peers = %d, want 5", tr.Peers)
	}
}
