// Package crawler implements a Cruiser-style two-phase Gnutella crawler
// against the in-process network of internal/gnet.
//
// Phase 1 (topology crawl) walks the overlay by dialing peers, reading the
// X-Try-Ultrapeers handshake header and harvesting pong-cached neighbour
// addresses from a TTL-2 ping — exactly the discovery channels deployed
// crawlers used. Phase 2 (file crawl) re-connects to every discovered peer
// and enumerates its shared library with a browse query. The output is a
// trace.ObjectTrace: the only artifact downstream analyses may consume, so
// nothing the generator knows leaks around the measurement path.
package crawler

import (
	"errors"
	"fmt"
	"io"

	"querycentric/internal/gmsg"
	"querycentric/internal/gnet"
	"querycentric/internal/trace"
)

// Config controls a crawl.
type Config struct {
	// Seeds are bootstrap addresses. Empty defaults to the first peer.
	Seeds []gnet.Addr
	// MaxPeers caps how many peers are file-crawled (0 = no cap).
	MaxPeers int
	// PingTTL is the TTL of the discovery ping; 2 asks for pong-cached
	// neighbours, 1 only for the peer itself.
	PingTTL byte
}

// DefaultConfig returns the standard crawl configuration.
func DefaultConfig() Config { return Config{PingTTL: 2} }

// Stats summarizes crawl outcomes, mirroring the funnel the paper reports.
type Stats struct {
	Discovered int // distinct addresses learned
	Crawled    int // peers whose library was fully read
	Firewalled int // connection refused
	Failed     int // other connection/protocol failures
}

// String formats the funnel for reports.
func (s *Stats) String() string {
	return fmt.Sprintf("discovered=%d crawled=%d firewalled=%d failed=%d",
		s.Discovered, s.Crawled, s.Firewalled, s.Failed)
}

// Crawl performs the two-phase crawl and returns the object trace.
func Crawl(nw *gnet.Network, cfg Config) (*trace.ObjectTrace, *Stats, error) {
	if len(nw.Peers) == 0 {
		return nil, nil, errors.New("crawler: empty network")
	}
	seeds := cfg.Seeds
	if len(seeds) == 0 {
		seeds = []gnet.Addr{nw.Peers[0].Addr}
	}
	if cfg.PingTTL == 0 {
		cfg.PingTTL = 2
	}

	stats := &Stats{}
	seen := map[gnet.Addr]bool{}
	frontier := make([]gnet.Addr, 0, len(seeds))
	for _, s := range seeds {
		if !seen[s] {
			seen[s] = true
			frontier = append(frontier, s)
		}
	}

	tr := &trace.ObjectTrace{Source: "gnutella-sim-crawl"}
	peerIndex := map[gnet.Addr]int{}

	for len(frontier) > 0 {
		addr := frontier[0]
		frontier = frontier[1:]
		if cfg.MaxPeers > 0 && stats.Crawled >= cfg.MaxPeers {
			break
		}
		discovered, files, err := crawlOne(nw, addr, cfg.PingTTL)
		switch {
		case errors.Is(err, gnet.ErrFirewalled):
			stats.Firewalled++
		case err != nil:
			stats.Failed++
		default:
			idx, ok := peerIndex[addr]
			if !ok {
				idx = len(peerIndex)
				peerIndex[addr] = idx
			}
			stats.Crawled++
			tr.Peers = stats.Crawled
			for _, name := range files {
				tr.Records = append(tr.Records, trace.ObjectRecord{Peer: idx, Name: name})
			}
		}
		for _, a := range discovered {
			if !seen[a] {
				seen[a] = true
				frontier = append(frontier, a)
			}
		}
	}
	stats.Discovered = len(seen)
	return tr, stats, nil
}

// crawlOne dials one peer, discovers its neighbours and browses its
// library. Even on failure, any addresses already learned are returned.
func crawlOne(nw *gnet.Network, addr gnet.Addr, pingTTL byte) (discovered []gnet.Addr, files []string, err error) {
	conn, err := nw.Dial(addr)
	if err != nil {
		return nil, nil, err
	}
	defer conn.Close()

	h, err := gnet.Connect(conn, map[string]string{
		"User-Agent": "querycentric-cruiser/0.1",
		"X-Crawler":  "True",
	})
	if err != nil {
		return nil, nil, err
	}
	if v, ok := h.Headers["x-try-ultrapeers"]; ok {
		discovered = append(discovered, gnet.ParseTryUltrapeers(v)...)
	}

	// Send the discovery ping and the browse query back to back; the
	// servent answers in order, so every Pong precedes the first QueryHit.
	pingGUID := gmsg.GUIDFromUint64s(uint64(addr.Port)<<32|uint64(addr.IP[3]), 0x637261776c6572)
	browseGUID := gmsg.GUIDFromUint64s(0x62726f777365, uint64(addr.IP[2])<<8|uint64(addr.IP[1]))
	ping := &gmsg.Message{Header: gmsg.Header{GUID: pingGUID, Type: gmsg.TypePing, TTL: pingTTL}}
	browse := &gmsg.Message{
		Header: gmsg.Header{GUID: browseGUID, Type: gmsg.TypeQuery, TTL: 1},
		Query:  &gmsg.Query{Criteria: gnet.BrowseCriteria},
	}
	// Write concurrently with reading: the transport may be unbuffered
	// (net.Pipe), so the servent's responses to the ping must be drained
	// while the browse query is still being written.
	writeErr := make(chan error, 1)
	go func() { writeErr <- writeAll(conn, ping, browse) }()
	defer func() {
		if werr := <-writeErr; werr != nil && err == nil {
			err = werr
		}
	}()

	for {
		m, err := gmsg.ReadMessage(conn)
		if err != nil {
			return discovered, nil, fmt.Errorf("crawler: reading from %s: %w", addr, err)
		}
		switch m.Header.Type {
		case gmsg.TypePong:
			discovered = append(discovered, gnet.Addr{IP: m.Pong.IP, Port: m.Pong.Port})
		case gmsg.TypeQueryHit:
			for _, r := range m.QueryHit.Results {
				files = append(files, r.FileName)
			}
			if len(m.QueryHit.Results) < browseBatch {
				return discovered, files, nil
			}
		default:
			// Ignore anything else.
		}
	}
}

// browseBatch mirrors gnet's per-QueryHit batching: a hit with fewer
// results than this ends the browse stream.
const browseBatch = 200

func writeAll(w io.Writer, msgs ...*gmsg.Message) error {
	for _, m := range msgs {
		if err := gmsg.WriteMessage(w, m); err != nil {
			return err
		}
	}
	return nil
}
