// Package crawler implements a Cruiser-style two-phase Gnutella crawler
// against the in-process network of internal/gnet.
//
// Phase 1 (topology crawl) walks the overlay by dialing peers, reading the
// X-Try-Ultrapeers handshake header and harvesting pong-cached neighbour
// addresses from a TTL-2 ping — exactly the discovery channels deployed
// crawlers used. Phase 2 (file crawl) re-connects to every discovered peer
// and enumerates its shared library with a browse query. The output is a
// trace.ObjectTrace: the only artifact downstream analyses may consume, so
// nothing the generator knows leaks around the measurement path.
//
// The crawler is shaped for a failure-prone substrate (see internal/faults):
// transient connection failures are retried with exponential backoff and
// jitter under a per-peer attempt budget, peers that die mid-browse keep
// the files already read (partial-browse tolerance), and the Stats funnel
// makes every degradation mode observable. With a fault-free network none
// of this machinery fires and the crawl is byte-identical to a single-pass
// crawler.
package crawler

import (
	"errors"
	"fmt"
	"io"
	"time"

	"querycentric/internal/gmsg"
	"querycentric/internal/gnet"
	"querycentric/internal/obs"
	"querycentric/internal/rng"
	"querycentric/internal/trace"
)

// Config controls a crawl.
type Config struct {
	// Seeds are bootstrap addresses. Empty defaults to the first peer.
	Seeds []gnet.Addr
	// MaxPeers caps how many peers are file-crawled (0 = no cap). The cap
	// is honored before dialing: no connection is opened whose results
	// would be discarded.
	MaxPeers int
	// PingTTL is the TTL of the discovery ping; 2 asks for pong-cached
	// neighbours, 1 only for the peer itself.
	PingTTL byte
	// MaxAttempts is the per-peer connection attempt budget; transient
	// failures are re-queued until it is exhausted. 0 means 1 (a single
	// attempt, no retries). Firewall refusals are permanent and never
	// retried.
	MaxAttempts int
	// BackoffBase and BackoffMax shape the exponential backoff between
	// attempts to the same peer: attempt k waits
	// min(BackoffBase·2^(k-1), BackoffMax), halved and jittered. A zero
	// BackoffBase disables waiting (retries are still bounded and
	// re-queued).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed drives backoff jitter (and nothing else): crawl results are
	// identical for any Seed; only retry pacing varies.
	Seed uint64

	// Obs, when non-nil, publishes the crawl funnel (discovered → crawled →
	// firewalled/failed plus the degradation counters) to the observability
	// registry at crawl end. Purely observational: attaching a registry
	// never changes what the crawl records.
	Obs *obs.Registry

	// sleep is the backoff clock, replaceable in tests.
	sleep func(time.Duration)
}

// DefaultConfig returns the standard crawl configuration: pong-cached
// discovery, three attempts per peer, millisecond-scale backoff.
func DefaultConfig() Config {
	return Config{
		PingTTL:     2,
		MaxAttempts: 3,
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	}
}

// Stats summarizes crawl outcomes, mirroring the funnel the paper reports
// (discovered → crawled → firewalled/failed) extended with the degradation
// counters a lossy substrate makes necessary. Every terminal bucket counts
// peers, never attempts.
type Stats struct {
	Discovered     int // distinct addresses learned
	Crawled        int // peers whose library was fully read
	Firewalled     int // connection refused (permanent, never retried)
	Failed         int // peers that ultimately failed with nothing read
	Retried        int // retry attempts performed beyond each peer's first
	PartialBrowses int // peers that died mid-browse; their partial library is kept
	GaveUp         int // peers whose attempt budget was exhausted
}

// String formats the funnel for reports. The degradation counters are
// appended only when any is nonzero, so fault-free output matches the
// classic funnel byte for byte.
func (s *Stats) String() string {
	out := fmt.Sprintf("discovered=%d crawled=%d firewalled=%d failed=%d",
		s.Discovered, s.Crawled, s.Firewalled, s.Failed)
	if s.Retried != 0 || s.PartialBrowses != 0 || s.GaveUp != 0 {
		out += fmt.Sprintf(" retried=%d partial=%d gaveup=%d",
			s.Retried, s.PartialBrowses, s.GaveUp)
	}
	return out
}

// peerState tracks retry bookkeeping for one discovered address.
type peerState struct {
	attempts int
	// bestFiles is the longest partial enumeration observed so far, kept
	// in case every remaining attempt also dies mid-browse.
	bestFiles []string
}

// Crawl performs the two-phase crawl and returns the object trace.
func Crawl(nw *gnet.Network, cfg Config) (*trace.ObjectTrace, *Stats, error) {
	if len(nw.Peers) == 0 {
		return nil, nil, errors.New("crawler: empty network")
	}
	seeds := cfg.Seeds
	if len(seeds) == 0 {
		seeds = []gnet.Addr{nw.Peers[0].Addr}
	}
	if cfg.PingTTL == 0 {
		cfg.PingTTL = 2
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 1
	}
	sleep := cfg.sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	jitter := rng.NewNamed(cfg.Seed, "crawler/backoff")

	stats := &Stats{}
	seen := map[gnet.Addr]bool{}
	state := map[gnet.Addr]*peerState{}
	frontier := make([]gnet.Addr, 0, len(seeds))
	for _, s := range seeds {
		if !seen[s] {
			seen[s] = true
			frontier = append(frontier, s)
		}
	}

	tr := &trace.ObjectTrace{Source: "gnutella-sim-crawl"}
	peerIndex := map[gnet.Addr]int{}
	record := func(addr gnet.Addr, files []string) {
		idx, ok := peerIndex[addr]
		if !ok {
			idx = len(peerIndex)
			peerIndex[addr] = idx
		}
		tr.Peers = len(peerIndex)
		for _, name := range files {
			tr.Records = append(tr.Records, trace.ObjectRecord{Peer: idx, Name: name})
		}
	}

	for len(frontier) > 0 {
		if cfg.MaxPeers > 0 && stats.Crawled >= cfg.MaxPeers {
			break
		}
		addr := frontier[0]
		frontier = frontier[1:]

		st := state[addr]
		if st == nil {
			st = &peerState{}
			state[addr] = st
		}
		if st.attempts > 0 {
			stats.Retried++
			if d := backoff(cfg, st.attempts, jitter); d > 0 {
				sleep(d)
			}
		}
		st.attempts++

		discovered, files, err := crawlOne(nw, addr, cfg.PingTTL)
		switch {
		case errors.Is(err, gnet.ErrFirewalled):
			stats.Firewalled++
		case err != nil:
			if len(files) > len(st.bestFiles) {
				st.bestFiles = files
			}
			if st.attempts < cfg.MaxAttempts {
				frontier = append(frontier, addr) // re-queue the transient failure
			} else {
				stats.GaveUp++
				if len(st.bestFiles) > 0 {
					stats.PartialBrowses++
					record(addr, st.bestFiles)
				} else {
					stats.Failed++
				}
			}
		default:
			stats.Crawled++
			record(addr, files)
		}
		for _, a := range discovered {
			if !seen[a] {
				seen[a] = true
				frontier = append(frontier, a)
			}
		}
	}
	stats.Discovered = len(seen)
	if cfg.Obs != nil {
		// The funnel is accumulated by the (single-goroutine) crawl loop
		// and published once, so the counters are trivially deterministic.
		add := func(name string, v int) { cfg.Obs.Counter(name).Add(int64(v)) }
		add("crawler_discovered_total", stats.Discovered)
		add("crawler_crawled_total", stats.Crawled)
		add("crawler_firewalled_total", stats.Firewalled)
		add("crawler_failed_total", stats.Failed)
		add("crawler_retried_total", stats.Retried)
		add("crawler_partial_browses_total", stats.PartialBrowses)
		add("crawler_gaveup_total", stats.GaveUp)
		add("crawler_records_total", len(tr.Records))
	}
	return tr, stats, nil
}

// backoff returns the jittered exponential wait before retry number
// attempt (1 = first retry).
func backoff(cfg Config, attempt int, jitter *rng.Source) time.Duration {
	if cfg.BackoffBase <= 0 {
		return 0
	}
	d := cfg.BackoffBase
	for i := 1; i < attempt && (cfg.BackoffMax <= 0 || d < cfg.BackoffMax); i++ {
		d *= 2
	}
	if cfg.BackoffMax > 0 && d > cfg.BackoffMax {
		d = cfg.BackoffMax
	}
	// Half fixed, half jittered: wait in [d/2, d).
	return d/2 + time.Duration(jitter.Float64()*float64(d/2))
}

// crawlOne dials one peer, discovers its neighbours and browses its
// library. Even on failure, any addresses and files already read are
// returned, so the caller can keep partial progress.
func crawlOne(nw *gnet.Network, addr gnet.Addr, pingTTL byte) (discovered []gnet.Addr, files []string, err error) {
	conn, err := nw.Dial(addr)
	if err != nil {
		return nil, nil, err
	}
	defer conn.Close()

	h, err := gnet.Connect(conn, map[string]string{
		"User-Agent": "querycentric-cruiser/0.1",
		"X-Crawler":  "True",
	})
	if err != nil {
		return nil, nil, err
	}
	if v, ok := h.Headers["x-try-ultrapeers"]; ok {
		discovered = append(discovered, gnet.ParseTryUltrapeers(v)...)
	}

	// Send the discovery ping and the browse query back to back; the
	// servent answers in order, so every Pong precedes the first QueryHit.
	pingGUID := gmsg.GUIDFromUint64s(uint64(addr.Port)<<32|uint64(addr.IP[3]), 0x637261776c6572)
	browseGUID := gmsg.GUIDFromUint64s(0x62726f777365, uint64(addr.IP[2])<<8|uint64(addr.IP[1]))
	ping := &gmsg.Message{Header: gmsg.Header{GUID: pingGUID, Type: gmsg.TypePing, TTL: pingTTL}}
	browse := &gmsg.Message{
		Header: gmsg.Header{GUID: browseGUID, Type: gmsg.TypeQuery, TTL: 1},
		Query:  &gmsg.Query{Criteria: gnet.BrowseCriteria},
	}
	// Write concurrently with reading: the transport may be unbuffered
	// (net.Pipe), so the servent's responses to the ping must be drained
	// while the browse query is still being written.
	writeErr := make(chan error, 1)
	go func() { writeErr <- writeAll(conn, ping, browse) }()
	defer func() {
		if werr := <-writeErr; werr != nil && err == nil {
			err = werr
		}
	}()

	for {
		m, err := gmsg.ReadMessage(conn)
		if err != nil {
			// A connection that dies mid-browse still yields the files
			// already enumerated.
			return discovered, files, fmt.Errorf("crawler: reading from %s: %w", addr, err)
		}
		switch m.Header.Type {
		case gmsg.TypePong:
			discovered = append(discovered, gnet.Addr{IP: m.Pong.IP, Port: m.Pong.Port})
		case gmsg.TypeQueryHit:
			for _, r := range m.QueryHit.Results {
				files = append(files, r.FileName)
			}
			if len(m.QueryHit.Results) < browseBatch {
				return discovered, files, nil
			}
		default:
			// Ignore anything else.
		}
	}
}

// browseBatch mirrors gnet's per-QueryHit batching: a hit with fewer
// results than this ends the browse stream.
const browseBatch = 200

func writeAll(w io.Writer, msgs ...*gmsg.Message) error {
	for _, m := range msgs {
		if err := gmsg.WriteMessage(w, m); err != nil {
			return err
		}
	}
	return nil
}
