package crawler

import (
	"testing"

	"querycentric/internal/catalog"
	"querycentric/internal/gnet"
)

func buildPopulatedNet(t *testing.T, peers int, firewalled float64) *gnet.Network {
	t.Helper()
	cat, err := catalog.Build(catalog.Config{
		Seed: 7, Peers: peers, UniqueObjects: peers * 20, ReplicaAlpha: 2.45,
		VariantProb: 0.05, NonSpecificPeerFrac: 0.03,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := gnet.DefaultConfig(7)
	cfg.FirewalledFrac = firewalled
	nw, err := gnet.NewFromCatalog(cfg, cat)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestCrawlCoversOpenNetwork(t *testing.T) {
	nw := buildPopulatedNet(t, 150, 0)
	tr, stats, err := Crawl(nw, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Discovered != 150 {
		t.Errorf("discovered %d of 150 peers", stats.Discovered)
	}
	if stats.Crawled != 150 {
		t.Errorf("crawled %d of 150 peers", stats.Crawled)
	}
	if stats.Firewalled != 0 || stats.Failed != 0 {
		t.Errorf("unexpected failures: %s", stats)
	}
	// Every placement in every library must appear in the trace.
	want := 0
	for _, p := range nw.Peers {
		want += len(p.Library)
	}
	if len(tr.Records) != want {
		t.Errorf("trace has %d records, libraries hold %d files", len(tr.Records), want)
	}
	if tr.Peers != 150 {
		t.Errorf("trace.Peers = %d", tr.Peers)
	}
}

func TestCrawlObservesExactNames(t *testing.T) {
	nw := buildPopulatedNet(t, 60, 0)
	tr, _, err := Crawl(nw, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Multiset of names in the trace must equal the multiset in libraries.
	wantCounts := map[string]int{}
	for _, p := range nw.Peers {
		for _, f := range p.Library {
			wantCounts[f.Name]++
		}
	}
	gotCounts := map[string]int{}
	for _, r := range tr.Records {
		gotCounts[r.Name]++
	}
	if len(gotCounts) != len(wantCounts) {
		t.Fatalf("distinct names: got %d, want %d", len(gotCounts), len(wantCounts))
	}
	for name, want := range wantCounts {
		if gotCounts[name] != want {
			t.Errorf("name %q: got %d, want %d", name, gotCounts[name], want)
		}
	}
}

func TestCrawlFirewalledFunnel(t *testing.T) {
	nw := buildPopulatedNet(t, 200, 0.25)
	_, stats, err := Crawl(nw, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Firewalled == 0 {
		t.Error("no firewalled peers observed despite 25% firewall rate")
	}
	if stats.Crawled+stats.Firewalled > stats.Discovered {
		t.Errorf("funnel inconsistent: %s", stats)
	}
	if stats.Crawled == 0 {
		t.Error("nothing crawled")
	}
}

func TestCrawlMaxPeers(t *testing.T) {
	nw := buildPopulatedNet(t, 100, 0)
	cfg := DefaultConfig()
	cfg.MaxPeers = 10
	tr, stats, err := Crawl(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Crawled != 10 {
		t.Errorf("crawled %d, want 10", stats.Crawled)
	}
	if tr.Peers != 10 {
		t.Errorf("trace.Peers = %d, want 10", tr.Peers)
	}
}

func TestCrawlDeterministic(t *testing.T) {
	nwA := buildPopulatedNet(t, 80, 0.1)
	nwB := buildPopulatedNet(t, 80, 0.1)
	trA, statsA, err := Crawl(nwA, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	trB, statsB, err := Crawl(nwB, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if *statsA != *statsB {
		t.Fatalf("stats differ: %s vs %s", statsA, statsB)
	}
	if len(trA.Records) != len(trB.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(trA.Records), len(trB.Records))
	}
	for i := range trA.Records {
		if trA.Records[i] != trB.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestCrawlEmptyNetwork(t *testing.T) {
	nw := &gnet.Network{}
	if _, _, err := Crawl(nw, DefaultConfig()); err == nil {
		t.Error("crawl of empty network succeeded")
	}
}

func TestCrawlPingTTL1StillCoversViaXTry(t *testing.T) {
	// With TTL-1 pings (no pong-cached neighbours) only the X-Try header
	// drives discovery, so leaves behind ultrapeers are reachable only if
	// some ultrapeer's pong or header mentions them; coverage must still
	// include all ultrapeers.
	nw := buildPopulatedNet(t, 120, 0)
	cfg := DefaultConfig()
	cfg.PingTTL = 1
	_, stats, err := Crawl(nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ultras := 0
	for _, p := range nw.Peers {
		if p.Ultrapeer {
			ultras++
		}
	}
	if stats.Crawled < ultras {
		t.Errorf("crawled %d peers, fewer than %d ultrapeers", stats.Crawled, ultras)
	}
}

func BenchmarkCrawl(b *testing.B) {
	cat, err := catalog.Build(catalog.Config{
		Seed: 7, Peers: 100, UniqueObjects: 2000, ReplicaAlpha: 2.45,
	})
	if err != nil {
		b.Fatal(err)
	}
	nw, err := gnet.NewFromCatalog(gnet.DefaultConfig(7), cat)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Crawl(nw, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
