// Package gia implements the Gia search system (Chawathe et al.,
// SIGCOMM'03), the strongest unstructured baseline the paper discusses:
// heterogeneous node capacities, capacity-driven topology adaptation
// (high-capacity nodes take proportionally more neighbours), one-hop
// replication of content pointers (each node indexes its neighbours'
// content), and capacity-biased random walks.
//
// The paper's point against Gia: it was evaluated with uniform object
// distributions at replication ratios of 0.05–0.5%, but under the measured
// Zipf replica distribution, fewer than 1% of objects are replicated that
// widely, so Gia's measured success does not transfer to real workloads.
package gia

import (
	"fmt"
	"sort"

	"querycentric/internal/overlay"
	"querycentric/internal/rng"
	"querycentric/internal/search"
	"querycentric/internal/strategy"
)

// Capacity levels follow the Gia paper's distribution: most nodes are 1x,
// with 10x/100x/1000x minorities.
var capacityLevels = []struct {
	cap  float64
	frac float64
}{
	{1, 0.20},
	{10, 0.45},
	{100, 0.30},
	{1000, 0.049},
	{10000, 0.001},
}

// Config tunes the Gia build.
type Config struct {
	Seed uint64
	// AvgDegree is the mean node degree after adaptation.
	AvgDegree int
	// MaxDegreeFactor caps a node's degree at MaxDegreeFactor*AvgDegree.
	MaxDegreeFactor int
	// WalkSteps is the per-query step budget RunWorkload gives each
	// capacity-biased walk (0 ⇒ 128, the published evaluation's budget).
	WalkSteps int
}

// DefaultConfig matches the published evaluation's shape.
func DefaultConfig(seed uint64) Config {
	return Config{Seed: seed, AvgDegree: 8, MaxDegreeFactor: 16, WalkSteps: 128}
}

// System is a built Gia network bound to a replica placement.
type System struct {
	Graph      *overlay.Graph
	Capacities []float64

	place *search.Placement
	// oneHop[v] = set of objects replicated on v or any neighbour of v,
	// realized as a sorted slice for binary search.
	holderOf  [][]int32 // object -> holders (from placement)
	mark      []int32
	epoch     int32
	walkSteps int
}

// New builds the capacity-adapted topology and the one-hop replication
// index for the given placement.
func New(n int, p *search.Placement, cfg Config) (*System, error) {
	if n <= 1 {
		return nil, fmt.Errorf("gia: need at least 2 nodes, got %d", n)
	}
	if p.Nodes != n {
		return nil, fmt.Errorf("gia: placement covers %d nodes, want %d", p.Nodes, n)
	}
	if cfg.AvgDegree < 2 {
		return nil, fmt.Errorf("gia: AvgDegree must be at least 2, got %d", cfg.AvgDegree)
	}
	if cfg.MaxDegreeFactor < 2 {
		cfg.MaxDegreeFactor = 16
	}

	s := &System{place: p, holderOf: p.Holders, walkSteps: cfg.WalkSteps}
	r := rng.NewNamed(cfg.Seed, "gia/capacities")
	s.Capacities = make([]float64, n)
	cum := make([]float64, len(capacityLevels))
	total := 0.0
	for i, l := range capacityLevels {
		total += l.frac
		cum[i] = total
	}
	for i := range s.Capacities {
		u := r.Float64() * total
		idx := sort.SearchFloat64s(cum, u)
		if idx >= len(capacityLevels) {
			idx = len(capacityLevels) - 1
		}
		s.Capacities[i] = capacityLevels[idx].cap
	}

	// Topology adaptation (simplified steady state): degree budget grows
	// with log10(capacity); edges pair stubs with a ring for connectivity.
	g, err := overlay.NewGraph(n)
	if err != nil {
		return nil, err
	}
	tr := rng.NewNamed(cfg.Seed, "gia/topology")
	for i := 0; i < n; i++ {
		if err := g.AddEdge(i, (i+1)%n); err != nil {
			return nil, err
		}
	}
	budget := make([]int, n)
	maxDeg := cfg.AvgDegree * cfg.MaxDegreeFactor
	var totalLog float64
	logs := make([]float64, n)
	for i, c := range s.Capacities {
		l := 1.0
		for c >= 10 {
			l++
			c /= 10
		}
		logs[i] = l
		totalLog += l
	}
	extraEdges := n * (cfg.AvgDegree - 2) / 2
	for i := range budget {
		budget[i] = int(float64(2*extraEdges) * logs[i] / totalLog)
		if budget[i] > maxDeg {
			budget[i] = maxDeg
		}
	}
	var stubs []int
	for i, b := range budget {
		for k := 0; k < b; k++ {
			stubs = append(stubs, i)
		}
	}
	tr.ShuffleInts(stubs)
	for attempts := 0; len(stubs) >= 2 && attempts < 20*len(stubs)+100; attempts++ {
		u, v := stubs[len(stubs)-1], stubs[len(stubs)-2]
		if u != v && !g.HasEdge(u, v) {
			if err := g.AddEdge(u, v); err != nil {
				return nil, err
			}
			stubs = stubs[:len(stubs)-2]
			continue
		}
		tr.ShuffleInts(stubs)
	}
	s.Graph = g
	s.mark = make([]int32, n)
	for i := range s.mark {
		s.mark[i] = -1
	}
	return s, nil
}

// hasOneHop reports whether node v or any of its neighbours holds obj —
// the one-hop replication check.
func (s *System) hasOneHop(v int32, holders map[int32]struct{}) bool {
	if _, ok := holders[v]; ok {
		return true
	}
	for _, nb := range s.Graph.Neighbors(int(v)) {
		if _, ok := holders[nb]; ok {
			return true
		}
	}
	return false
}

// Search runs one capacity-biased random walk with one-hop replication:
// at each step the walker moves to the highest-capacity unvisited
// neighbour (falling back to random when all are visited) and checks the
// one-hop index.
func (s *System) Search(origin, obj, maxSteps int, r *rng.Source) (search.Result, error) {
	if origin < 0 || origin >= s.Graph.N() {
		return search.Result{}, fmt.Errorf("gia: origin %d out of range", origin)
	}
	if obj < 0 || obj >= len(s.holderOf) {
		return search.Result{}, fmt.Errorf("gia: object %d out of range", obj)
	}
	if maxSteps < 1 {
		return search.Result{}, fmt.Errorf("gia: maxSteps must be positive")
	}
	holders := make(map[int32]struct{}, len(s.holderOf[obj]))
	for _, h := range s.holderOf[obj] {
		holders[h] = struct{}{}
	}
	res := search.Result{}
	s.epoch++
	cur := int32(origin)
	s.mark[cur] = s.epoch
	if s.hasOneHop(cur, holders) {
		res.Found = true
		res.Results = 1
		return res, nil
	}
	for step := 1; step <= maxSteps; step++ {
		nbs := s.Graph.Neighbors(int(cur))
		if len(nbs) == 0 {
			break
		}
		// Highest-capacity unvisited neighbour; random fallback.
		best := int32(-1)
		var bestCap float64
		for _, nb := range nbs {
			if s.mark[nb] == s.epoch {
				continue
			}
			if c := s.Capacities[nb]; best < 0 || c > bestCap {
				best, bestCap = nb, c
			}
		}
		if best < 0 {
			best = nbs[r.Intn(len(nbs))]
		}
		cur = best
		res.Messages++
		if s.mark[cur] != s.epoch {
			s.mark[cur] = s.epoch
			res.Peers++
		}
		if s.hasOneHop(cur, holders) {
			res.Found = true
			res.Hops = step
			res.Results = 1
			return res, nil
		}
	}
	return res, nil
}

// Name implements strategy.AdaptivePolicy.
func (s *System) Name() string { return "gia" }

// RunWorkload implements strategy.AdaptivePolicy: queries follow the
// unified workload derivation (see strategy.WorkloadStream) with the
// config's WalkSteps budget per query, so Gia and any other strategy at
// the same seed observe the identical (origin, object) sequence.
func (s *System) RunWorkload(queries int, pick func(r *rng.Source) int, seed uint64) (*strategy.Stats, error) {
	if queries < 1 {
		return nil, fmt.Errorf("gia: queries must be positive")
	}
	steps := s.walkSteps
	if steps <= 0 {
		steps = 128
	}
	base := strategy.WorkloadStream(seed)
	st := &strategy.Stats{Queries: queries}
	var hits, msgs, hops int
	for i := 0; i < queries; i++ {
		r := strategy.QueryStream(base, i)
		res, err := s.Search(r.Intn(s.Graph.N()), pick(r), steps, r)
		if err != nil {
			return nil, err
		}
		if res.Found {
			hits++
			hops += res.Hops
		}
		msgs += res.Messages
	}
	st.Success = float64(hits) / float64(queries)
	if hits > 0 {
		st.MeanHops = float64(hops) / float64(hits)
	}
	st.MeanMessages = float64(msgs) / float64(queries)
	return st, nil
}

// The unified interface is implemented.
var _ strategy.AdaptivePolicy = (*System)(nil)

// SuccessRate measures Gia's success over random (origin, object) trials
// with a per-query step budget.
//
// Deprecated: RunWorkload is the unified strategy entry point. SuccessRate
// is retained (with its original sequential stream) so the Gia comparison
// experiment's published numbers stay bit-stable.
func (s *System) SuccessRate(maxSteps, trials int, pick func(r *rng.Source) int, seed uint64) (float64, error) {
	if trials < 1 {
		return 0, fmt.Errorf("gia: trials must be positive")
	}
	r := rng.NewNamed(seed, "gia/success")
	hits := 0
	for i := 0; i < trials; i++ {
		res, err := s.Search(r.Intn(s.Graph.N()), pick(r), maxSteps, r)
		if err != nil {
			return 0, err
		}
		if res.Found {
			hits++
		}
	}
	return float64(hits) / float64(trials), nil
}
