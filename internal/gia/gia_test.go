package gia

import (
	"testing"

	"querycentric/internal/rng"
	"querycentric/internal/search"
)

func buildGia(t *testing.T, n int, p *search.Placement) *System {
	t.Helper()
	s, err := New(n, p, DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	p, _ := search.UniformPlacement(10, 2, 1, 1)
	if _, err := New(1, p, DefaultConfig(1)); err == nil {
		t.Error("single node accepted")
	}
	if _, err := New(20, p, DefaultConfig(1)); err == nil {
		t.Error("mismatched placement accepted")
	}
	bad := DefaultConfig(1)
	bad.AvgDegree = 1
	if _, err := New(10, p, bad); err == nil {
		t.Error("AvgDegree 1 accepted")
	}
}

func TestCapacityDistribution(t *testing.T) {
	p, _ := search.UniformPlacement(5000, 10, 1, 2)
	s := buildGia(t, 5000, p)
	counts := map[float64]int{}
	for _, c := range s.Capacities {
		counts[c]++
	}
	if counts[1] == 0 || counts[10] == 0 || counts[100] == 0 {
		t.Errorf("capacity levels missing: %v", counts)
	}
	// 10x should be the most common level (45%).
	if counts[10] < counts[1] || counts[10] < counts[100] {
		t.Errorf("capacity distribution off: %v", counts)
	}
}

func TestTopologyCapacityCorrelation(t *testing.T) {
	p, _ := search.UniformPlacement(3000, 10, 1, 3)
	s := buildGia(t, 3000, p)
	if !s.Graph.IsConnected() {
		t.Fatal("gia topology disconnected")
	}
	// Mean degree of 100x+ nodes should exceed mean degree of 1x nodes.
	var hiDeg, hiN, loDeg, loN float64
	for v := 0; v < 3000; v++ {
		d := float64(s.Graph.Degree(v))
		if s.Capacities[v] >= 100 {
			hiDeg += d
			hiN++
		} else if s.Capacities[v] == 1 {
			loDeg += d
			loN++
		}
	}
	if hiN == 0 || loN == 0 {
		t.Skip("degenerate capacity draw")
	}
	if hiDeg/hiN <= loDeg/loN {
		t.Errorf("high-capacity mean degree %.1f not above low-capacity %.1f",
			hiDeg/hiN, loDeg/loN)
	}
}

func TestSearchFindsNeighbourReplica(t *testing.T) {
	p, _ := search.UniformPlacement(100, 1, 1, 4)
	s := buildGia(t, 100, p)
	holder := int(p.Holders[0][0])
	// Search from a neighbour of the holder: one-hop replication makes it
	// an immediate hit.
	nbs := s.Graph.Neighbors(holder)
	origin := int(nbs[0])
	res, err := s.Search(origin, 0, 10, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Hops != 0 {
		t.Errorf("one-hop replication miss: %+v", res)
	}
}

func TestSearchValidation(t *testing.T) {
	p, _ := search.UniformPlacement(50, 2, 1, 6)
	s := buildGia(t, 50, p)
	r := rng.New(7)
	if _, err := s.Search(-1, 0, 5, r); err == nil {
		t.Error("bad origin accepted")
	}
	if _, err := s.Search(0, 5, 5, r); err == nil {
		t.Error("bad object accepted")
	}
	if _, err := s.Search(0, 0, 0, r); err == nil {
		t.Error("zero steps accepted")
	}
}

func TestSuccessRateUniformVsZipf(t *testing.T) {
	// Gia's published evaluation: uniform 0.5% replication works well. The
	// paper's rebuttal: Zipf-placed objects (mean ~1.5 replicas) fare far
	// worse under the same budget.
	const n = 2000
	uni, err := search.UniformPlacement(n, 100, 10, 8) // 0.5%
	if err != nil {
		t.Fatal(err)
	}
	zpf, err := search.ZipfPlacement(n, 100, 2.45, 200, 8)
	if err != nil {
		t.Fatal(err)
	}
	pick := func(r *rng.Source) int { return r.Intn(100) }
	sUni := buildGia(t, n, uni)
	sZpf := buildGia(t, n, zpf)
	rUni, err := sUni.SuccessRate(128, 200, pick, 9)
	if err != nil {
		t.Fatal(err)
	}
	rZpf, err := sZpf.SuccessRate(128, 200, pick, 9)
	if err != nil {
		t.Fatal(err)
	}
	if rUni < 0.5 {
		t.Errorf("uniform-0.5%% Gia success = %v, expected strong", rUni)
	}
	if rZpf >= rUni {
		t.Errorf("Zipf success %v not below uniform %v", rZpf, rUni)
	}
}

func TestSuccessRateValidation(t *testing.T) {
	p, _ := search.UniformPlacement(50, 2, 1, 10)
	s := buildGia(t, 50, p)
	if _, err := s.SuccessRate(5, 0, func(r *rng.Source) int { return 0 }, 1); err == nil {
		t.Error("zero trials accepted")
	}
}

func BenchmarkGiaSearch(b *testing.B) {
	p, err := search.ZipfPlacement(5000, 500, 2.45, 500, 1)
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(5000, p, DefaultConfig(2))
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Search(i%5000, i%500, 128, r); err != nil {
			b.Fatal(err)
		}
	}
}
