package churn

import (
	"reflect"
	"testing"
)

func TestTimelineConfigValidate(t *testing.T) {
	if err := DefaultTimelineConfig(1).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*TimelineConfig){
		func(c *TimelineConfig) { c.MeanOnline = 0 },
		func(c *TimelineConfig) { c.MeanOnline = -5 },
		func(c *TimelineConfig) { c.MeanOffline = -1 },
		func(c *TimelineConfig) { c.Duration = 0 },
		func(c *TimelineConfig) { c.PoliteFrac = -0.1 },
		func(c *TimelineConfig) { c.PoliteFrac = 1.5 },
	}
	for i, mutate := range bad {
		c := DefaultTimelineConfig(1)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: invalid config passed Validate", i)
		}
	}
	if _, err := GenerateTimeline(TimelineConfig{Seed: 1, MeanOnline: -1, MeanOffline: 1, Duration: 100}, 10); err == nil {
		t.Fatal("GenerateTimeline accepted a negative session mean")
	}
	if _, err := GenerateTimeline(DefaultTimelineConfig(1), -1); err == nil {
		t.Fatal("GenerateTimeline accepted a negative peer count")
	}
}

func TestGenerateTimelineShape(t *testing.T) {
	cfg := DefaultTimelineConfig(42)
	const n = 200
	tl, err := GenerateTimeline(cfg, n)
	if err != nil {
		t.Fatalf("GenerateTimeline: %v", err)
	}
	if len(tl.Initial) != n {
		t.Fatalf("Initial covers %d peers, want %d", len(tl.Initial), n)
	}
	if len(tl.Events) == 0 {
		t.Fatal("six simulated hours produced no session transitions")
	}
	state := make([]bool, n)
	copy(state, tl.Initial)
	for i, ev := range tl.Events {
		if ev.Time <= 0 || ev.Time > cfg.Duration {
			t.Fatalf("event %d at time %d outside (0, %d]", i, ev.Time, cfg.Duration)
		}
		if i > 0 {
			prev := tl.Events[i-1]
			if ev.Time < prev.Time || (ev.Time == prev.Time && ev.Peer <= prev.Peer) {
				t.Fatalf("events %d..%d out of (Time, Peer) order", i-1, i)
			}
		}
		// Transitions alternate: an arrival only for an offline peer, a
		// departure only for an online one.
		if state[ev.Peer] == ev.Up {
			t.Fatalf("event %d: peer %d transitioned to its current state", i, ev.Peer)
		}
		if ev.Up && ev.Polite {
			t.Fatalf("event %d: arrival marked polite", i)
		}
		state[ev.Peer] = ev.Up
	}
	// Some departures should be polite and some not, at PoliteFrac=0.67.
	polite, crashes := 0, 0
	for _, ev := range tl.Events {
		if ev.Up {
			continue
		}
		if ev.Polite {
			polite++
		} else {
			crashes++
		}
	}
	if polite == 0 || crashes == 0 {
		t.Fatalf("departure mix degenerate: %d polite, %d crashes", polite, crashes)
	}
}

func TestGenerateTimelineDeterministic(t *testing.T) {
	cfg := DefaultTimelineConfig(7)
	a, err := GenerateTimeline(cfg, 150)
	if err != nil {
		t.Fatalf("GenerateTimeline: %v", err)
	}
	b, err := GenerateTimeline(cfg, 150)
	if err != nil {
		t.Fatalf("GenerateTimeline: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same-seed timelines differ")
	}
	cfg2 := cfg
	cfg2.Seed++
	c, err := GenerateTimeline(cfg2, 150)
	if err != nil {
		t.Fatalf("GenerateTimeline: %v", err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different-seed timelines coincide")
	}
}

func TestTimelineOnlineAt(t *testing.T) {
	tl := &Timeline{
		Initial: []bool{true, false, true},
		Events: []Event{
			{Time: 10, Peer: 1, Up: true},
			{Time: 20, Peer: 0, Up: false, Polite: true},
			{Time: 20, Peer: 2, Up: false},
		},
	}
	cases := []struct {
		t    int64
		want []bool
	}{
		{0, []bool{true, false, true}},
		{10, []bool{true, true, true}},
		{19, []bool{true, true, true}},
		{20, []bool{false, true, false}},
		{99, []bool{false, true, false}},
	}
	for _, c := range cases {
		if got := tl.OnlineAt(c.t); !reflect.DeepEqual(got, c.want) {
			t.Fatalf("OnlineAt(%d) = %v, want %v", c.t, got, c.want)
		}
	}
}
