package churn

import (
	"math"
	"testing"

	"querycentric/internal/overlay"
	"querycentric/internal/search"
)

func testGraph(t *testing.T, n int) *overlay.Graph {
	t.Helper()
	g, err := overlay.NewGnutella(n, overlay.DefaultGnutellaConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunValidation(t *testing.T) {
	g := testGraph(t, 100)
	p, _ := search.UniformPlacement(100, 10, 2, 1)
	bad := DefaultConfig(1)
	bad.MeanOnline = 0
	if _, err := Run(g, p, bad); err == nil {
		t.Error("zero session mean accepted")
	}
	bad2 := DefaultConfig(1)
	bad2.TTL = 0
	if _, err := Run(g, p, bad2); err == nil {
		t.Error("zero TTL accepted")
	}
	wrong, _ := search.UniformPlacement(50, 10, 2, 1)
	if _, err := Run(g, wrong, DefaultConfig(1)); err == nil {
		t.Error("mismatched placement accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(1).Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	mutations := map[string]func(*Config){
		"zero MeanOnline":      func(c *Config) { c.MeanOnline = 0 },
		"negative MeanOnline":  func(c *Config) { c.MeanOnline = -10 },
		"NaN MeanOnline":       func(c *Config) { c.MeanOnline = math.NaN() },
		"Inf MeanOnline":       func(c *Config) { c.MeanOnline = math.Inf(1) },
		"negative MeanOffline": func(c *Config) { c.MeanOffline = -1 },
		"NaN MeanOffline":      func(c *Config) { c.MeanOffline = math.NaN() },
		"zero Duration":        func(c *Config) { c.Duration = 0 },
		"negative Duration":    func(c *Config) { c.Duration = -600 },
		"zero SampleEvery":     func(c *Config) { c.SampleEvery = 0 },
		"negative SampleEvery": func(c *Config) { c.SampleEvery = -5 },
		"zero TTL":             func(c *Config) { c.TTL = 0 },
		"zero queries":         func(c *Config) { c.QueriesPerSample = 0 },
	}
	for name, mutate := range mutations {
		cfg := DefaultConfig(1)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestRunRejectsInvalidSchedules(t *testing.T) {
	// These configurations used to loop forever or panic; they must be
	// rejected up front.
	g := testGraph(t, 60)
	p, _ := search.UniformPlacement(60, 5, 2, 1)
	for _, mutate := range []func(*Config){
		func(c *Config) { c.SampleEvery = 0 },
		func(c *Config) { c.SampleEvery = -10 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.MeanOnline = -3000 },
		func(c *Config) { c.MeanOffline = -1200 },
	} {
		cfg := DefaultConfig(4)
		mutate(&cfg)
		if _, err := Run(g, p, cfg); err == nil {
			t.Errorf("invalid schedule %+v accepted", cfg)
		}
	}
}

func TestOnlineMask(t *testing.T) {
	a, err := OnlineMask(9, 5000, 3000, 1200)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OnlineMask(9, 5000, 3000, 1200)
	if err != nil {
		t.Fatal(err)
	}
	up := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("OnlineMask is not deterministic")
		}
		if a[i] {
			up++
		}
	}
	want := 3000.0 / 4200.0
	if got := float64(up) / float64(len(a)); math.Abs(got-want) > 0.03 {
		t.Errorf("online fraction %v, want ~%v (stationary)", got, want)
	}
	if _, err := OnlineMask(9, -1, 3000, 1200); err == nil {
		t.Error("negative peer count accepted")
	}
	if _, err := OnlineMask(9, 10, 0, 1200); err == nil {
		t.Error("zero MeanOnline accepted")
	}
	if _, err := OnlineMask(9, 10, 3000, -1); err == nil {
		t.Error("negative MeanOffline accepted")
	}
	// All-online degenerate case: zero offline mean.
	all, err := OnlineMask(9, 50, 3000, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, up := range all {
		if !up {
			t.Fatal("zero MeanOffline should leave every peer online")
		}
	}
}

func TestStationaryOnlineFraction(t *testing.T) {
	g := testGraph(t, 500)
	p, _ := search.UniformPlacement(500, 20, 5, 2)
	cfg := DefaultConfig(2)
	cfg.Duration = 4 * 3600
	res, err := Run(g, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.MeanOnline / (cfg.MeanOnline + cfg.MeanOffline)
	if math.Abs(res.MeanOnline-want) > 0.08 {
		t.Errorf("mean online fraction %v, want ~%v", res.MeanOnline, want)
	}
	if len(res.Samples) != int(cfg.Duration/cfg.SampleEvery) {
		t.Errorf("got %d samples", len(res.Samples))
	}
}

func TestAlwaysOnlineMatchesStaticSearch(t *testing.T) {
	// With offline mean 0 every peer stays up: success should be high for
	// a well-replicated object set.
	g := testGraph(t, 300)
	p, _ := search.UniformPlacement(300, 20, 30, 3)
	cfg := DefaultConfig(3)
	cfg.MeanOffline = 0
	cfg.Duration = 3600
	cfg.SampleEvery = 600
	res, err := Run(g, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanOnline < 0.999 {
		t.Errorf("mean online %v with zero offline mean", res.MeanOnline)
	}
	if res.MeanSuccess < 0.9 {
		t.Errorf("success %v for 10%% replication with no churn", res.MeanSuccess)
	}
}

func TestChurnAmplifiesZipfPenalty(t *testing.T) {
	// The headline property: at equal churn, uniform replication keeps
	// most queries alive while single-copy-heavy Zipf placement loses
	// whatever its holder's uptime loses.
	g := testGraph(t, 600)
	uni, err := search.UniformPlacement(600, 60, 12, 4) // 2% replication
	if err != nil {
		t.Fatal(err)
	}
	zpf, err := search.ZipfPlacement(600, 60, 2.45, 60, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(5)
	cfg.Duration = 2 * 3600
	rUni, err := Run(g, uni, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rZpf, err := Run(g, zpf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rZpf.MeanSuccess >= rUni.MeanSuccess {
		t.Errorf("Zipf success %v not below uniform %v under churn",
			rZpf.MeanSuccess, rUni.MeanSuccess)
	}
	// The Zipf ceiling: ~70% of objects have one copy and that copy is
	// online ~71% of the time, so success should sit well under uniform's.
	if rUni.MeanSuccess-rZpf.MeanSuccess < 0.1 {
		t.Errorf("churn gap too small: uniform %v vs zipf %v",
			rUni.MeanSuccess, rZpf.MeanSuccess)
	}
}

func TestDeterministic(t *testing.T) {
	g := testGraph(t, 200)
	p, _ := search.UniformPlacement(200, 20, 4, 6)
	cfg := DefaultConfig(7)
	cfg.Duration = 3600
	a, err := Run(g, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, a.Samples[i], b.Samples[i])
		}
	}
}

func BenchmarkChurnRun(b *testing.B) {
	g, err := overlay.NewGnutella(500, overlay.DefaultGnutellaConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	p, err := search.ZipfPlacement(500, 50, 2.45, 50, 2)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(3)
	cfg.Duration = 3600
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, p, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
