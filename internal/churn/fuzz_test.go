package churn

import (
	"math"
	"testing"
)

// FuzzTimelineConfig asserts GenerateTimeline's contract over arbitrary
// configurations: Validate-rejected configs must error (never panic), and
// accepted ones must produce a canonical timeline — events strictly ordered
// by (Time, Peer), every transition inside (0, Duration], per-peer
// alternation consistent with the initial state, and OnlineAt agreeing with
// a full replay.
func FuzzTimelineConfig(f *testing.F) {
	d := DefaultTimelineConfig(42)
	f.Add(d.Seed, d.MeanOnline, d.MeanOffline, d.Duration, d.PoliteFrac, 16)
	f.Add(uint64(0), 1.0, 0.0, int64(1), 0.0, 0)       // minimal viable
	f.Add(uint64(1), 0.5, 0.5, int64(3600), 1.0, 3)    // all-polite, sub-second means
	f.Add(uint64(7), -1.0, 100.0, int64(100), 0.5, 4)  // invalid mean
	f.Add(uint64(7), 100.0, 100.0, int64(0), 0.5, 4)   // invalid duration
	f.Add(uint64(7), 100.0, 100.0, int64(100), 1.5, 4) // invalid frac
	f.Add(uint64(7), math.NaN(), 100.0, int64(100), 0.5, 4)
	f.Add(uint64(7), 100.0, 100.0, int64(100), 0.5, -2) // negative population
	f.Fuzz(func(t *testing.T, seed uint64, meanOn, meanOff float64, duration int64, polite float64, n int) {
		// Bound the work, not the validity: a peer emits at most one event
		// per simulated second, so capping Duration and n keeps worst-case
		// event counts small while still exercising every Validate branch.
		if duration > 1<<15 {
			duration %= 1 << 15
		}
		if n > 128 {
			n %= 129
		}
		cfg := TimelineConfig{
			Seed:        seed,
			MeanOnline:  meanOn,
			MeanOffline: meanOff,
			Duration:    duration,
			PoliteFrac:  polite,
		}
		tl, err := GenerateTimeline(cfg, n)
		if cfg.Validate() != nil || n < 0 {
			if err == nil {
				t.Fatalf("invalid input accepted: %+v n=%d", cfg, n)
			}
			return
		}
		if err != nil {
			t.Fatalf("valid config rejected: %v (%+v n=%d)", err, cfg, n)
		}
		if len(tl.Initial) != n {
			t.Fatalf("Initial covers %d peers, want %d", len(tl.Initial), n)
		}
		state := append([]bool(nil), tl.Initial...)
		for i, ev := range tl.Events {
			if ev.Time < 1 || ev.Time > cfg.Duration {
				t.Fatalf("event %d at t=%d outside (0,%d]", i, ev.Time, cfg.Duration)
			}
			if ev.Peer < 0 || int(ev.Peer) >= n {
				t.Fatalf("event %d for peer %d outside population %d", i, ev.Peer, n)
			}
			if i > 0 {
				prev := tl.Events[i-1]
				if ev.Time < prev.Time || (ev.Time == prev.Time && ev.Peer <= prev.Peer) {
					t.Fatalf("events %d,%d out of canonical (Time,Peer) order: %+v then %+v", i-1, i, prev, ev)
				}
			}
			if ev.Up == state[ev.Peer] {
				t.Fatalf("event %d does not alternate: peer %d already %v", i, ev.Peer, ev.Up)
			}
			if ev.Up && ev.Polite {
				t.Fatalf("event %d: arrival marked polite", i)
			}
			state[ev.Peer] = ev.Up
		}
		final := tl.OnlineAt(cfg.Duration)
		for v := 0; v < n; v++ {
			if final[v] != state[v] {
				t.Fatalf("OnlineAt(%d) disagrees with replay at peer %d", cfg.Duration, v)
			}
		}
		// Determinism: a second generation is identical.
		again, err := GenerateTimeline(cfg, n)
		if err != nil {
			t.Fatalf("regeneration failed: %v", err)
		}
		if len(again.Events) != len(tl.Events) {
			t.Fatalf("regeneration produced %d events, want %d", len(again.Events), len(tl.Events))
		}
		for i := range tl.Events {
			if again.Events[i] != tl.Events[i] {
				t.Fatalf("regeneration diverged at event %d", i)
			}
		}
	})
}
