// Package churn simulates peer session dynamics — the defining property of
// the systems the paper studies. Peers alternate between online and offline
// sessions (exponential durations, as measured in Gnutella), driven by the
// discrete-event kernel; at sampling points a TTL-bounded flood over the
// *currently online* subgraph measures search success.
//
// The experiment built on this package shows that churn amplifies the
// paper's finding: under uniform replication a query survives any single
// departure, but under the measured Zipf placement most objects have one
// copy, so their availability tracks a single peer's uptime.
package churn

import (
	"fmt"
	"math"

	"querycentric/internal/overlay"
	"querycentric/internal/rng"
	"querycentric/internal/search"
	"querycentric/internal/sim"
)

// Config shapes a churn simulation.
type Config struct {
	Seed uint64
	// MeanOnline and MeanOffline are the exponential session means in
	// seconds (Gnutella measurements put median online sessions at tens of
	// minutes).
	MeanOnline  float64
	MeanOffline float64
	// Duration is the simulated horizon in seconds.
	Duration int64
	// SampleEvery is the measurement period in seconds.
	SampleEvery int64
	// TTL bounds the measurement floods.
	TTL int
	// QueriesPerSample is how many (origin, object) probes each sample
	// takes.
	QueriesPerSample int
}

// DefaultConfig models ~50-minute online sessions with ~70% availability.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:             seed,
		MeanOnline:       3000,
		MeanOffline:      1200,
		Duration:         6 * 3600,
		SampleEvery:      600,
		TTL:              4,
		QueriesPerSample: 100,
	}
}

// Validate rejects configurations that would panic or loop forever: the
// session means must be finite (MeanOnline positive, MeanOffline
// non-negative) and the schedule must make progress (positive Duration and
// SampleEvery, TTL ≥ 1, at least one query per sample).
func (c Config) Validate() error {
	switch {
	case math.IsNaN(c.MeanOnline) || math.IsInf(c.MeanOnline, 0) || c.MeanOnline <= 0:
		return fmt.Errorf("churn: MeanOnline must be a positive finite duration, got %v", c.MeanOnline)
	case math.IsNaN(c.MeanOffline) || math.IsInf(c.MeanOffline, 0) || c.MeanOffline < 0:
		return fmt.Errorf("churn: MeanOffline must be a non-negative finite duration, got %v", c.MeanOffline)
	case c.Duration <= 0:
		return fmt.Errorf("churn: Duration must be positive, got %d", c.Duration)
	case c.SampleEvery <= 0:
		return fmt.Errorf("churn: SampleEvery must be positive, got %d", c.SampleEvery)
	case c.TTL < 1:
		return fmt.Errorf("churn: TTL must be at least 1, got %d", c.TTL)
	case c.QueriesPerSample < 1:
		return fmt.Errorf("churn: QueriesPerSample must be at least 1, got %d", c.QueriesPerSample)
	}
	return nil
}

// OnlineMask samples each of n peers' online state from the stationary
// distribution of the (meanOnline, meanOffline) session process — the same
// distribution Run uses to initialize its session state machines. Fault
// planes (internal/faults) install the result as a liveness mask, so
// crawls and floods observe the session dynamics this package models.
func OnlineMask(seed uint64, n int, meanOnline, meanOffline float64) ([]bool, error) {
	if n < 0 {
		return nil, fmt.Errorf("churn: negative peer count %d", n)
	}
	if math.IsNaN(meanOnline) || math.IsInf(meanOnline, 0) || meanOnline <= 0 {
		return nil, fmt.Errorf("churn: MeanOnline must be a positive finite duration, got %v", meanOnline)
	}
	if math.IsNaN(meanOffline) || math.IsInf(meanOffline, 0) || meanOffline < 0 {
		return nil, fmt.Errorf("churn: MeanOffline must be a non-negative finite duration, got %v", meanOffline)
	}
	stationary := meanOnline / (meanOnline + meanOffline)
	r := rng.NewNamed(seed, "churn/liveness")
	mask := make([]bool, n)
	for i := range mask {
		mask[i] = r.Bool(stationary)
	}
	return mask, nil
}

// Sample is one measurement point.
type Sample struct {
	Time        int64
	OnlineFrac  float64
	SuccessRate float64
}

// Result is a full churn run.
type Result struct {
	Samples []Sample
	// MeanSuccess averages the per-sample success rates.
	MeanSuccess float64
	// MeanOnline averages the online fraction (sanity: should approach
	// MeanOnline/(MeanOnline+MeanOffline)).
	MeanOnline float64
}

// Run simulates churn over the graph with the given placement and measures
// flood success over time. Origins are drawn among online peers; a query
// succeeds when some online replica is reachable through online relays
// within the TTL.
func Run(g *overlay.Graph, p *search.Placement, cfg Config) (*Result, error) {
	if p.Nodes != g.N() {
		return nil, fmt.Errorf("churn: placement covers %d nodes, graph has %d", p.Nodes, g.N())
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	n := g.N()
	online := make([]bool, n)
	r := rng.NewNamed(cfg.Seed, "churn/sessions")
	k := sim.New()

	// Session state machines: initialize from the stationary distribution
	// and schedule transitions.
	stationary := cfg.MeanOnline / (cfg.MeanOnline + cfg.MeanOffline)
	var schedule func(v int)
	schedule = func(v int) {
		var d int64
		if online[v] {
			d = 1 + int64(r.ExpFloat64()*cfg.MeanOnline)
		} else {
			d = 1 + int64(r.ExpFloat64()*cfg.MeanOffline)
		}
		if err := k.After(d, func(int64) {
			online[v] = !online[v]
			schedule(v)
		}); err != nil {
			panic(err) // After only fails on negative delay
		}
	}
	for v := 0; v < n; v++ {
		online[v] = r.Bool(stationary)
		schedule(v)
	}

	res := &Result{}
	qr := rng.NewNamed(cfg.Seed, "churn/queries")
	mark := make([]int64, n)
	for i := range mark {
		mark[i] = -1
	}
	var epoch int64

	measure := func(now int64) {
		onlineCount := 0
		for _, up := range online {
			if up {
				onlineCount++
			}
		}
		s := Sample{Time: now, OnlineFrac: float64(onlineCount) / float64(n)}
		if onlineCount > 0 {
			hits := 0
			for q := 0; q < cfg.QueriesPerSample; q++ {
				origin := qr.Intn(n)
				for !online[origin] {
					origin = qr.Intn(n)
				}
				obj := qr.Intn(p.Objects())
				epoch++
				if aliveFlood(g, online, mark, epoch, origin, cfg.TTL, p.Holders[obj]) {
					hits++
				}
			}
			s.SuccessRate = float64(hits) / float64(cfg.QueriesPerSample)
		}
		res.Samples = append(res.Samples, s)
	}
	for t := cfg.SampleEvery; t <= cfg.Duration; t += cfg.SampleEvery {
		if err := k.Schedule(t, measure); err != nil {
			return nil, err
		}
	}
	k.RunUntil(cfg.Duration)

	var sSum, oSum float64
	for _, s := range res.Samples {
		sSum += s.SuccessRate
		oSum += s.OnlineFrac
	}
	if len(res.Samples) > 0 {
		res.MeanSuccess = sSum / float64(len(res.Samples))
		res.MeanOnline = oSum / float64(len(res.Samples))
	}
	return res, nil
}

// aliveFlood runs a TTL-bounded flood from origin over online nodes only,
// returning whether any online holder was reached (or the origin holds it).
func aliveFlood(g *overlay.Graph, online []bool, mark []int64, epoch int64, origin, ttl int, holders []int32) bool {
	for _, h := range holders {
		if int(h) == origin {
			return true
		}
	}
	holderSet := make(map[int32]struct{}, len(holders))
	for _, h := range holders {
		if online[h] {
			holderSet[h] = struct{}{}
		}
	}
	if len(holderSet) == 0 {
		return false
	}
	mark[origin] = epoch
	frontier := make([]int32, 0, 16)
	for _, nb := range g.Neighbors(origin) {
		if online[nb] {
			frontier = append(frontier, nb)
		}
	}
	var next []int32
	for hop := 1; hop <= ttl && len(frontier) > 0; hop++ {
		next = next[:0]
		for _, v := range frontier {
			if mark[v] == epoch {
				continue
			}
			mark[v] = epoch
			if _, ok := holderSet[v]; ok {
				return true
			}
			if hop == ttl || !g.Ultra(int(v)) {
				continue
			}
			for _, nb := range g.Neighbors(int(v)) {
				if online[nb] && mark[nb] != epoch {
					next = append(next, nb)
				}
			}
		}
		frontier, next = next, frontier
	}
	return false
}
