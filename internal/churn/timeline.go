package churn

import (
	"fmt"
	"math"
	"sort"

	"querycentric/internal/rng"
)

// This file turns the package's session model into an *event timeline* —
// an explicit, replayable sequence of arrivals and departures — instead of
// the instantaneous liveness masks OnlineMask produces. A timeline is what
// an overlay-maintenance layer needs: topology mutation happens at event
// boundaries (a departing peer sends Bye or just vanishes; an arriving
// peer bootstraps connections), not at sampling instants.

// TimelineConfig shapes a generated churn timeline.
type TimelineConfig struct {
	Seed uint64
	// MeanOnline and MeanOffline are the exponential session means in
	// seconds, as in Config.
	MeanOnline  float64
	MeanOffline float64
	// Duration is the simulated horizon in seconds; events are generated
	// in (0, Duration].
	Duration int64
	// PoliteFrac is the probability a departure is announced with a Bye
	// rather than an abrupt crash. Gnutella measurements attribute most
	// session ends to user shutdowns, so the default leans polite.
	PoliteFrac float64
}

// DefaultTimelineConfig matches DefaultConfig's session dynamics
// (~50-minute online sessions, ~70% availability) with two-thirds of
// departures announced.
func DefaultTimelineConfig(seed uint64) TimelineConfig {
	return TimelineConfig{
		Seed:        seed,
		MeanOnline:  3000,
		MeanOffline: 1200,
		Duration:    6 * 3600,
		PoliteFrac:  0.67,
	}
}

// Validate rejects timelines that would panic or never terminate.
func (c TimelineConfig) Validate() error {
	switch {
	case math.IsNaN(c.MeanOnline) || math.IsInf(c.MeanOnline, 0) || c.MeanOnline <= 0:
		return fmt.Errorf("churn: MeanOnline must be a positive finite duration, got %v", c.MeanOnline)
	case math.IsNaN(c.MeanOffline) || math.IsInf(c.MeanOffline, 0) || c.MeanOffline < 0:
		return fmt.Errorf("churn: MeanOffline must be a non-negative finite duration, got %v", c.MeanOffline)
	case c.Duration <= 0:
		return fmt.Errorf("churn: Duration must be positive, got %d", c.Duration)
	case math.IsNaN(c.PoliteFrac) || c.PoliteFrac < 0 || c.PoliteFrac > 1:
		return fmt.Errorf("churn: PoliteFrac must be in [0,1], got %v", c.PoliteFrac)
	}
	return nil
}

// Event is one session transition. Polite is meaningful only on
// departures (Up == false): it marks a Bye-announced shutdown as opposed
// to a crash the rest of the overlay must detect.
type Event struct {
	Time   int64
	Peer   int32
	Up     bool
	Polite bool
}

// Timeline is a replayable churn history: the initial liveness state plus
// every transition in time order.
type Timeline struct {
	Initial []bool
	Events  []Event
}

// OnlineAt replays the timeline up to and including time t, returning the
// liveness mask at that instant.
func (tl *Timeline) OnlineAt(t int64) []bool {
	mask := make([]bool, len(tl.Initial))
	copy(mask, tl.Initial)
	for _, ev := range tl.Events {
		if ev.Time > t {
			break
		}
		mask[ev.Peer] = ev.Up
	}
	return mask
}

// GenerateTimeline builds a deterministic churn timeline for n peers.
// Each peer evolves on its own derived stream, so the timeline is
// invariant to peer-iteration order; per-peer session boundaries are
// strictly increasing, so (Time, Peer) is a unique sort key and the final
// ordering is canonical.
func GenerateTimeline(cfg TimelineConfig, n int) (*Timeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("churn: negative peer count %d", n)
	}
	base := rng.NewNamed(cfg.Seed, "churn/timeline")
	stationary := cfg.MeanOnline / (cfg.MeanOnline + cfg.MeanOffline)
	tl := &Timeline{Initial: make([]bool, n)}
	for v := 0; v < n; v++ {
		r := base.Derive(fmt.Sprintf("peer/%d", v))
		up := r.Bool(stationary)
		tl.Initial[v] = up
		t := int64(0)
		for {
			mean := cfg.MeanOffline
			if up {
				mean = cfg.MeanOnline
			}
			t += 1 + int64(r.ExpFloat64()*mean)
			if t > cfg.Duration {
				break
			}
			up = !up
			ev := Event{Time: t, Peer: int32(v), Up: up}
			if !up {
				ev.Polite = r.Bool(cfg.PoliteFrac)
			}
			tl.Events = append(tl.Events, ev)
		}
	}
	sort.Slice(tl.Events, func(i, j int) bool {
		a, b := tl.Events[i], tl.Events[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		return a.Peer < b.Peer
	})
	return tl, nil
}
