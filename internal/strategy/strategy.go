// Package strategy defines the unified overlay-strategy surface every
// query-centric search system in this repository implements: interest
// shortcuts (internal/shortcuts), Gia (internal/gia) and the adaptive
// overlay (internal/adaptive). Before this interface each package exposed
// its own ad-hoc workload entry point with its own stats shape and its own
// RNG discipline; callers comparing strategies had to stitch three APIs
// together and could not even feed them the same query stream. The
// interface fixes all three at once:
//
//   - one entry point, RunWorkload(queries, pick, seed);
//   - one Stats shape, so experiment tables render uniformly;
//   - one derivation contract (see WorkloadStream), so two strategies run
//     with the same (n, queries, pick, seed) observe the *identical*
//     sequence of (origin, object) pairs — arm-to-arm comparisons measure
//     the strategy, never the workload draw.
package strategy

import (
	"fmt"

	"querycentric/internal/rng"
)

// Stats is the common workload aggregate every strategy reports. Fields a
// strategy cannot populate stay zero (a static arm performs no rewiring;
// Chord-style baselines have no shortcut hits).
type Stats struct {
	// Queries is the number of queries issued.
	Queries int
	// Success is the fraction of queries answered.
	Success float64
	// ShortcutHits is the fraction of successes answered by an adapted
	// link (a shortcut probe or candidate probe) rather than a flood.
	ShortcutHits float64
	// MeanMessages is the mean protocol messages per query (probes plus
	// flood descriptors).
	MeanMessages float64
	// MeanHops is the mean hop count of the first answer over successes.
	MeanHops float64
	// Rewires and Replicas count topology swaps and replica installs the
	// strategy performed during the run (adaptive overlays only).
	Rewires  int
	Replicas int
}

// AdaptivePolicy is the unified strategy interface. RunWorkload issues
// `queries` queries whose origins and targets derive per the WorkloadStream
// contract, adapting whatever state the strategy keeps (shortcut lists,
// candidate lists, topology, replicas) as the stream unfolds.
type AdaptivePolicy interface {
	// Name is the strategy's stable identifier (table row label).
	Name() string
	// RunWorkload issues queries with targets drawn by pick and returns
	// aggregate statistics. Implementations must follow the WorkloadStream
	// derivation so results are byte-identical at any worker count and the
	// query sequence is identical across strategies for a given seed.
	RunWorkload(queries int, pick func(r *rng.Source) int, seed uint64) (*Stats, error)
}

// RewireDecision records one topology swap an adaptive strategy performed:
// at round Round, Peer dropped its edge to Dropped and connected to Added
// (-1 when the corresponding half did not happen).
type RewireDecision struct {
	Round   int
	Peer    int
	Dropped int
	Added   int
}

// Rewirer is implemented by strategies that mutate the overlay topology;
// the decision log pins convergence behavior in oracle tests.
type Rewirer interface {
	AdaptivePolicy
	RewireLog() []RewireDecision
}

// WorkloadStream returns the base stream of the unified workload
// derivation. The contract every RunWorkload implementation follows:
//
//	base := strategy.WorkloadStream(seed)
//	r := base.Derive(fmt.Sprintf("query/%d", i))  // query i's private stream
//	origin := r.Intn(n)
//	obj := pick(r)
//	... all of query i's remaining draws come from r, in a fixed order ...
//
// Per-query derived streams are order-independent, so a strategy may fan
// queries out over internal/parallel and still produce byte-identical
// results at every worker count — and two different strategies over the
// same population see the same (origin, object) sequence.
func WorkloadStream(seed uint64) *rng.Source {
	return rng.NewNamed(seed, "strategy/workload")
}

// QueryStream derives query i's private stream from the workload base.
func QueryStream(base *rng.Source, i int) *rng.Source {
	return base.Derive(fmt.Sprintf("query/%d", i))
}
