package querygen

import (
	"strings"
	"testing"

	"querycentric/internal/stats"
	"querycentric/internal/terms"
)

func smallConfig(seed uint64) Config {
	cfg := DefaultConfig(seed)
	cfg.Queries = 30000
	cfg.Duration = 24 * 3600
	cfg.TailSize = 4000
	cfg.BurstsPerDay = 20
	cfg.BurstDuration = 2 * 3600
	return cfg
}

func TestGenerateValidation(t *testing.T) {
	bad := []Config{
		{Queries: 0, Duration: 1, CoreSize: 1, TailSize: 1},
		{Queries: 1, Duration: 0, CoreSize: 1, TailSize: 1},
		{Queries: 1, Duration: 1, CoreSize: 0, TailSize: 1},
		{Queries: 1, Duration: 1, CoreSize: 1, TailSize: 1, CoreMass: 1.5},
		{Queries: 1, Duration: 1, CoreSize: 1, TailSize: 1, CoreMass: 0.8, BurstMass: 0.3},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	w, err := Generate(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Trace.Records) != 30000 {
		t.Fatalf("got %d queries", len(w.Trace.Records))
	}
	if len(w.Core) != 120 || len(w.Tail) != 4000 {
		t.Fatalf("vocab sizes: core=%d tail=%d", len(w.Core), len(w.Tail))
	}
	// Times are sorted and within [0, Duration).
	var prev int64 = -1
	for _, r := range w.Trace.Records {
		if r.Time < prev {
			t.Fatal("timestamps not sorted")
		}
		if r.Time < 0 || r.Time >= w.Trace.Duration {
			t.Fatalf("time %d outside [0,%d)", r.Time, w.Trace.Duration)
		}
		prev = r.Time
		n := len(strings.Fields(r.Query))
		if n < 1 || n > 3 {
			t.Fatalf("query %q has %d terms", r.Query, n)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Trace.Records {
		if a.Trace.Records[i] != b.Trace.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	if len(a.Bursts) != len(b.Bursts) {
		t.Fatal("burst schedules differ")
	}
}

func TestVocabDisjoint(t *testing.T) {
	w, err := Generate(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, s := range w.Core {
		if seen[s] {
			t.Fatalf("duplicate core term %q", s)
		}
		seen[s] = true
	}
	for _, s := range w.Tail {
		if seen[s] {
			t.Fatalf("term %q appears in both core and tail", s)
		}
		seen[s] = true
	}
}

func TestCoreDominatesCounts(t *testing.T) {
	w, err := Generate(smallConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	total := 0
	for _, r := range w.Trace.Records {
		for _, tok := range strings.Fields(r.Query) {
			counts[tok]++
			total++
		}
	}
	coreTotal := 0
	for _, c := range w.Core {
		coreTotal += counts[c]
	}
	frac := float64(coreTotal) / float64(total)
	if frac < 0.45 || frac > 0.70 {
		t.Errorf("core mass = %v, want ~0.55", frac)
	}
	// Every core term should appear a non-trivial number of times.
	minCount := total
	for _, c := range w.Core {
		if counts[c] < minCount {
			minCount = counts[c]
		}
	}
	if minCount < 20 {
		t.Errorf("least popular core term appeared only %d times", minCount)
	}
}

func TestPopularSetStability(t *testing.T) {
	// The headline Figure 6 behaviour: consecutive intervals' popular sets
	// overlap strongly.
	w, err := Generate(smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	interval := int64(3600)
	buckets := map[int64]map[string]int{}
	for _, r := range w.Trace.Records {
		b := r.Time / interval
		if buckets[b] == nil {
			buckets[b] = map[string]int{}
		}
		for _, tok := range strings.Fields(r.Query) {
			buckets[b][tok]++
		}
	}
	popular := func(m map[string]int, qn int) map[string]struct{} {
		out := map[string]struct{}{}
		thresh := qn / 400 // 0.25% of interval term volume
		if thresh < 3 {
			thresh = 3
		}
		for tok, c := range m {
			if c >= thresh {
				out[tok] = struct{}{}
			}
		}
		return out
	}
	var sims []float64
	nb := int64(len(buckets))
	for b := int64(2); b < nb; b++ { // skip warmup
		prevN, curN := 0, 0
		for _, c := range buckets[b-1] {
			prevN += c
		}
		for _, c := range buckets[b] {
			curN += c
		}
		sims = append(sims, stats.Jaccard(popular(buckets[b-1], prevN), popular(buckets[b], curN)))
	}
	mean := stats.Mean(sims)
	if mean < 0.75 {
		t.Errorf("mean consecutive-interval popular-set Jaccard = %v, want > 0.75", mean)
	}
}

func TestBurstTermsSpike(t *testing.T) {
	cfg := smallConfig(6)
	cfg.BurstsPerDay = 8
	cfg.BurstDuration = 3 * 3600
	cfg.BurstMass = 0.08
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Bursts) == 0 {
		t.Skip("no bursts scheduled at this seed")
	}
	b := w.Bursts[0]
	inside, outside := 0, 0
	for _, r := range w.Trace.Records {
		hit := false
		for _, tok := range strings.Fields(r.Query) {
			if tok == b.Term {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		if r.Time >= b.Start && r.Time < b.End {
			inside++
		} else {
			outside++
		}
	}
	// Burst terms are tail terms: the burst window is a small part of the
	// day, so without the burst the inside count would be tiny.
	if inside == 0 {
		t.Fatalf("burst term %q never queried during its window", b.Term)
	}
	winFrac := float64(b.End-b.Start) / float64(cfg.Duration)
	insideRate := float64(inside) / winFrac
	outsideRate := float64(outside) / (1 - winFrac)
	if insideRate < 3*outsideRate {
		t.Errorf("burst term rate inside window %.1f not >> outside %.1f", insideRate, outsideRate)
	}
}

func TestFileTermOverlapControlsJaccard(t *testing.T) {
	fileTerms := make([]string, 2000)
	for i := range fileTerms {
		fileTerms[i] = "file" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676))
	}
	low := smallConfig(7)
	low.FileTerms = fileTerms
	low.CoreFileOverlap = 0.10
	high := smallConfig(7)
	high.FileTerms = fileTerms
	high.CoreFileOverlap = 0.90

	overlap := func(cfg Config) float64 {
		w, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		head := stats.ToSet(fileTerms[:cfg.CoreSize])
		return stats.Jaccard(stats.ToSet(w.Core), head)
	}
	lo, hi := overlap(low), overlap(high)
	if lo >= hi {
		t.Errorf("overlap knob ineffective: low=%v high=%v", lo, hi)
	}
	if lo > 0.2 {
		t.Errorf("low overlap configuration produced Jaccard %v", lo)
	}
	if hi < 0.5 {
		t.Errorf("high overlap configuration produced Jaccard %v", hi)
	}
}

func TestQueriesTokenizeCleanly(t *testing.T) {
	w, err := Generate(smallConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range w.Trace.Records[:500] {
		toks := terms.Tokenize(r.Query)
		if len(toks) == 0 {
			t.Fatalf("query %q tokenizes to nothing", r.Query)
		}
	}
}

func BenchmarkGenerate(b *testing.B) {
	cfg := smallConfig(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDiurnalModulation(t *testing.T) {
	base := smallConfig(9)
	base.Duration = 2 * 86400
	base.Queries = 60000
	flat := base
	flat.DiurnalAmplitude = 0
	wavy := base
	wavy.DiurnalAmplitude = 0.5

	volumeSpread := func(cfg Config) float64 {
		w, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Queries per 4-hour bucket.
		buckets := map[int64]int{}
		for _, r := range w.Trace.Records {
			buckets[r.Time/(4*3600)]++
		}
		min, max := 1<<30, 0
		for _, c := range buckets {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		return float64(max-min) / float64(max)
	}
	fs, ws := volumeSpread(flat), volumeSpread(wavy)
	if fs > 0.05 {
		t.Errorf("flat arrivals spread %v, want near 0", fs)
	}
	if ws < 0.2 {
		t.Errorf("diurnal arrivals spread %v, want substantial", ws)
	}
}

func TestDiurnalTimesSortedAndInRange(t *testing.T) {
	cfg := smallConfig(10)
	cfg.DiurnalAmplitude = 0.6
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var prev int64 = -1
	for _, r := range w.Trace.Records {
		if r.Time < prev {
			t.Fatal("diurnal times not sorted")
		}
		if r.Time < 0 || r.Time >= cfg.Duration {
			t.Fatalf("time %d out of range", r.Time)
		}
		prev = r.Time
	}
}

func TestDiurnalValidation(t *testing.T) {
	cfg := smallConfig(11)
	cfg.DiurnalAmplitude = 1.0
	if _, err := Generate(cfg); err == nil {
		t.Error("amplitude 1.0 accepted")
	}
	cfg.DiurnalAmplitude = -0.1
	if _, err := Generate(cfg); err == nil {
		t.Error("negative amplitude accepted")
	}
}
