// Package querygen generates synthetic Gnutella query workloads with the
// temporal structure the paper measured in its one-week Phex trace:
//
//   - a stable core of persistently popular terms (the paper found >90%
//     Jaccard similarity between consecutive intervals' popular terms);
//   - transiently popular terms that flare up for a bounded window and
//     then fade (low mean count per interval, high variance — Figure 5);
//   - a long Zipf tail of rare terms;
//   - a controlled, *low* overlap between the query vocabulary and the
//     file-annotation vocabulary (the paper's central mismatch finding —
//     Figure 7 shows <20% similarity).
//
// The model is a three-way mixture. Each query term comes from the
// persistent core (probability CoreMass), from the currently active
// transient bursts (BurstMass, when any burst is active), or from the Zipf
// tail. The core is deliberately flat-ish so every core term clears any
// reasonable per-interval popularity threshold, which is exactly the
// "bulk of popular terms are persistently popular" structure observed.
package querygen

import (
	"fmt"
	"math"
	"sort"

	"querycentric/internal/rng"
	"querycentric/internal/trace"
	"querycentric/internal/vocab"
	"querycentric/internal/zipf"
)

// Config shapes a workload.
type Config struct {
	Seed     uint64
	Duration int64 // seconds covered by the trace (one week = 604800)
	Queries  int   // total queries to emit

	// Vocabulary structure.
	CoreSize  int     // persistently popular terms
	TailSize  int     // rare terms
	CoreMass  float64 // probability a term is drawn from the core
	CoreZipfS float64 // within-core Zipf exponent (small ⇒ flat core)
	TailZipfS float64 // within-tail Zipf exponent

	// FileTerms, if non-nil, is the file-annotation term vocabulary ranked
	// by popularity (most popular first). CoreFileOverlap of the core and
	// TailFileOverlap of the tail are drawn from it; everything else is
	// query-only vocabulary. This is the knob behind Figure 7.
	FileTerms       []string
	CoreFileOverlap float64
	TailFileOverlap float64

	// Transient bursts (Figure 5).
	BurstsPerDay  float64 // expected new bursts per day
	BurstDuration int64   // seconds a burst stays active
	BurstMass     float64 // probability a term comes from the active bursts

	// Query shape.
	MaxTermsPerQuery int // terms per query drawn uniformly in [1, max]

	// DiurnalAmplitude in [0,1) modulates query arrival density over the
	// day (rate ∝ 1 + A·sin(2πt/86400)); real traces show strong diurnal
	// cycles, which is part of Figure 5's per-interval variance. Zero
	// keeps arrivals uniform.
	DiurnalAmplitude float64
}

// DefaultConfig is the scaled one-week workload.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:             seed,
		Duration:         7 * 24 * 3600,
		Queries:          250000,
		CoreSize:         120,
		TailSize:         20000,
		CoreMass:         0.55,
		CoreZipfS:        0.4,
		TailZipfS:        1.05,
		CoreFileOverlap:  0.35,
		TailFileOverlap:  0.25,
		BurstsPerDay:     10,
		BurstDuration:    4 * 3600,
		BurstMass:        0.04,
		MaxTermsPerQuery: 3,
		DiurnalAmplitude: 0.3,
	}
}

// Workload is a generated query trace plus the ground truth the ablation
// experiments compare against.
type Workload struct {
	Trace *trace.QueryTrace
	// Core is the persistent popular vocabulary (ground truth).
	Core []string
	// Tail is the rare-term vocabulary.
	Tail []string
	// Bursts records every scheduled transient burst.
	Bursts []Burst
}

// Burst is one scheduled transient popularity episode.
type Burst struct {
	Term  string
	Start int64
	End   int64
}

// Generate builds the workload for cfg.
func Generate(cfg Config) (*Workload, error) {
	if cfg.Queries <= 0 {
		return nil, fmt.Errorf("querygen: Queries must be positive, got %d", cfg.Queries)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("querygen: Duration must be positive, got %d", cfg.Duration)
	}
	if cfg.CoreSize <= 0 || cfg.TailSize <= 0 {
		return nil, fmt.Errorf("querygen: CoreSize and TailSize must be positive")
	}
	for _, p := range []float64{cfg.CoreMass, cfg.BurstMass, cfg.CoreFileOverlap, cfg.TailFileOverlap} {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("querygen: probability out of range in config")
		}
	}
	if cfg.CoreMass+cfg.BurstMass > 1 {
		return nil, fmt.Errorf("querygen: CoreMass+BurstMass exceeds 1")
	}
	if cfg.MaxTermsPerQuery <= 0 {
		cfg.MaxTermsPerQuery = 3
	}
	if cfg.CoreZipfS <= 0 {
		cfg.CoreZipfS = 0.4
	}
	if cfg.TailZipfS <= 0 {
		cfg.TailZipfS = 1.0
	}

	w := &Workload{}
	var err error
	if w.Core, w.Tail, err = buildVocab(cfg); err != nil {
		return nil, err
	}
	coreDist, err := zipf.New(len(w.Core), cfg.CoreZipfS)
	if err != nil {
		return nil, err
	}
	tailDist, err := zipf.New(len(w.Tail), cfg.TailZipfS)
	if err != nil {
		return nil, err
	}

	// Schedule bursts over the timeline: Poisson arrivals at BurstsPerDay,
	// each boosting one tail term for BurstDuration.
	bRNG := rng.NewNamed(cfg.Seed, "querygen/bursts")
	if cfg.BurstsPerDay > 0 && cfg.BurstDuration > 0 {
		days := float64(cfg.Duration) / 86400
		n := bRNG.Poisson(cfg.BurstsPerDay * days)
		for i := 0; i < n; i++ {
			start := int64(bRNG.Float64() * float64(cfg.Duration))
			// Burst terms come uniformly from the tail: transiently hot
			// terms are ones with little standing popularity, which is
			// what makes their deviation from history detectable.
			w.Bursts = append(w.Bursts, Burst{
				Term:  w.Tail[bRNG.Intn(len(w.Tail))],
				Start: start,
				End:   start + cfg.BurstDuration,
			})
		}
		sort.Slice(w.Bursts, func(i, j int) bool { return w.Bursts[i].Start < w.Bursts[j].Start })
	}

	if cfg.DiurnalAmplitude < 0 || cfg.DiurnalAmplitude >= 1 {
		return nil, fmt.Errorf("querygen: DiurnalAmplitude must be in [0,1), got %g", cfg.DiurnalAmplitude)
	}
	clock := newDiurnalClock(cfg.Duration, cfg.DiurnalAmplitude)

	qRNG := rng.NewNamed(cfg.Seed, "querygen/queries")
	tr := &trace.QueryTrace{Source: "querygen", Duration: cfg.Duration}
	tr.Records = make([]trace.QueryRecord, 0, cfg.Queries)

	active := newBurstWindow(w.Bursts)
	for i := 0; i < cfg.Queries; i++ {
		t := clock.at(float64(i) / float64(cfg.Queries))
		activeTerms := active.at(t)
		nTerms := 1 + qRNG.Intn(cfg.MaxTermsPerQuery)
		qterms := make([]string, 0, nTerms)
		for j := 0; j < nTerms; j++ {
			qterms = append(qterms, sampleTerm(cfg, w, coreDist, tailDist, activeTerms, qRNG))
		}
		tr.Records = append(tr.Records, trace.QueryRecord{Time: t, Query: join(qterms)})
	}
	w.Trace = tr
	return w, nil
}

// sampleTerm draws one query term from the three-way mixture.
func sampleTerm(cfg Config, w *Workload, core, tail *zipf.Dist, bursts []string, r *rng.Source) string {
	u := r.Float64()
	switch {
	case u < cfg.CoreMass:
		return w.Core[core.Sample(r)-1]
	case u < cfg.CoreMass+cfg.BurstMass && len(bursts) > 0:
		return bursts[r.Intn(len(bursts))]
	default:
		return w.Tail[tail.Sample(r)-1]
	}
}

// buildVocab assembles the core and tail vocabularies, drawing the
// configured overlap fractions from the (ranked) file terms.
func buildVocab(cfg Config) (core, tail []string, err error) {
	need := cfg.CoreSize + cfg.TailSize
	own := vocab.Words(cfg.Seed, "querygen/query-only", need)
	fileHead, fileRest := splitFileTerms(cfg.FileTerms, cfg.CoreSize)

	pick := rng.NewNamed(cfg.Seed, "querygen/vocab-mix")
	seen := map[string]struct{}{}
	add := func(dst *[]string, s string) bool {
		if _, dup := seen[s]; dup {
			return false
		}
		seen[s] = struct{}{}
		*dst = append(*dst, s)
		return true
	}

	ownIdx := 0
	nextOwn := func() string {
		for ownIdx < len(own) {
			s := own[ownIdx]
			ownIdx++
			if _, dup := seen[s]; !dup {
				return s
			}
		}
		// Vocabulary exhausted by duplicates; extend deterministically.
		return fmt.Sprintf("qterm%d", ownIdx)
	}

	// Draw the file-term quota as distinct samples (shuffled prefix), then
	// top up with query-only words; a with-replacement draw would silently
	// undershoot the configured overlap on small pools.
	takeFile := func(dst *[]string, pool []string, quota int) {
		if quota <= 0 || len(pool) == 0 {
			return
		}
		order := pick.Perm(len(pool))
		for _, idx := range order {
			if quota == 0 {
				return
			}
			if add(dst, pool[idx]) {
				quota--
			}
		}
	}
	takeFile(&core, fileHead, int(float64(cfg.CoreSize)*cfg.CoreFileOverlap))
	for len(core) < cfg.CoreSize {
		add(&core, nextOwn())
	}
	takeFile(&tail, fileRest, int(float64(cfg.TailSize)*cfg.TailFileOverlap))
	for len(tail) < cfg.TailSize {
		add(&tail, nextOwn())
	}
	return core, tail, nil
}

// splitFileTerms separates the popular head of the ranked file terms from
// the rest.
func splitFileTerms(fileTerms []string, headSize int) (head, rest []string) {
	if len(fileTerms) == 0 {
		return nil, nil
	}
	h := headSize
	if h > len(fileTerms) {
		h = len(fileTerms)
	}
	return fileTerms[:h], fileTerms[h:]
}

// burstWindow iterates active bursts along a non-decreasing time cursor.
type burstWindow struct {
	bursts []Burst
	next   int
	active []Burst
}

func newBurstWindow(bursts []Burst) *burstWindow {
	return &burstWindow{bursts: bursts}
}

// at returns the terms of bursts active at time t. Calls must have
// non-decreasing t.
func (bw *burstWindow) at(t int64) []string {
	for bw.next < len(bw.bursts) && bw.bursts[bw.next].Start <= t {
		bw.active = append(bw.active, bw.bursts[bw.next])
		bw.next++
	}
	out := bw.active[:0]
	var terms []string
	for _, b := range bw.active {
		if b.End > t {
			out = append(out, b)
			terms = append(terms, b.Term)
		}
	}
	bw.active = out
	return terms
}

// diurnalClock maps a query's quantile u ∈ [0,1) to its arrival time so
// that the arrival rate follows 1 + A·sin(2πt/day): the inverse of the
// cumulative rate, tabulated per minute and interpolated.
type diurnalClock struct {
	duration int64
	cum      []float64 // cum[i] = normalized arrivals in [0, i minutes]
}

func newDiurnalClock(duration int64, amplitude float64) *diurnalClock {
	c := &diurnalClock{duration: duration}
	if amplitude == 0 {
		return c
	}
	minutes := int(duration/60) + 1
	c.cum = make([]float64, minutes+1)
	total := 0.0
	for i := 0; i < minutes; i++ {
		t := float64(i) * 60
		rate := 1 + amplitude*math.Sin(2*math.Pi*t/86400)
		total += rate
		c.cum[i+1] = total
	}
	for i := range c.cum {
		c.cum[i] /= total
	}
	return c
}

// at returns the arrival time for quantile u.
func (c *diurnalClock) at(u float64) int64 {
	if c.cum == nil {
		return int64(u * float64(c.duration))
	}
	// Binary search the minute whose cumulative share covers u.
	lo, hi := 0, len(c.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.cum[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	minute := lo - 1
	if minute < 0 {
		minute = 0
	}
	// Interpolate inside the minute.
	span := c.cum[minute+1] - c.cum[minute]
	frac := 0.0
	if span > 0 {
		frac = (u - c.cum[minute]) / span
	}
	t := int64((float64(minute) + frac) * 60)
	if t >= c.duration {
		t = c.duration - 1
	}
	if t < 0 {
		t = 0
	}
	return t
}

func join(terms []string) string {
	n := 0
	for _, t := range terms {
		n += len(t) + 1
	}
	b := make([]byte, 0, n)
	for i, t := range terms {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, t...)
	}
	return string(b)
}
