package terms

import (
	"reflect"
	"testing"
	"testing/quick"
	"unicode"
)

func TestTokenize(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"Aaron Neville - I Don't Know Much.mp3",
			[]string{"aaron", "neville", "don", "know", "much", "mp3"}},
		{"01 Track.wma", []string{"01", "track", "wma"}},
		{"", nil},
		{"---", nil},
		{"a b c", nil}, // all below minimum length
		{"ab", []string{"ab"}},
		{"The_Quick_Brown_Fox", []string{"the", "quick", "brown", "fox"}},
		{"AC/DC", []string{"ac", "dc"}},
		{"Don't", []string{"don"}},
		{"über straße", []string{"über", "straße"}},
	}
	for _, tc := range tests {
		if got := Tokenize(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestTokenizeLowercases(t *testing.T) {
	for _, tok := range Tokenize("MADONNA Like A PRAYER.MP3") {
		for _, r := range tok {
			if unicode.IsUpper(r) {
				t.Fatalf("token %q contains uppercase", tok)
			}
		}
	}
}

func TestTokenizeProperty(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tokenLen(tok) < MinTokenLength {
				return false
			}
			for _, r := range tok {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTokenSet(t *testing.T) {
	set := TokenSet("love love me do")
	if len(set) != 3 { // love, me, do — duplicates collapse
		t.Fatalf("set size %d, want 3", len(set))
	}
	if _, ok := set["love"]; !ok {
		t.Error("missing token love")
	}
}

func TestMatches(t *testing.T) {
	name := TokenSet("Aaron Neville - I Don't Know Much.mp3")
	tests := []struct {
		query string
		want  bool
	}{
		{"aaron neville", true},
		{"AARON", true},
		{"neville much", true},
		{"aaron ronstadt", false},
		{"", false},
		{"---", false},
		{"mp3", true},
	}
	for _, tc := range tests {
		if got := Matches(Tokenize(tc.query), name); got != tc.want {
			t.Errorf("Matches(%q) = %v, want %v", tc.query, got, tc.want)
		}
	}
}

func TestMatchesSubsetProperty(t *testing.T) {
	// Any non-empty subset of a name's tokens must match the name.
	name := "the quick brown fox jumps over the lazy dog"
	set := TokenSet(name)
	toks := Tokenize(name)
	for i := range toks {
		if !Matches(toks[i:i+1], set) {
			t.Errorf("single token %q does not match its own name", toks[i])
		}
	}
	if !Matches(toks, set) {
		t.Error("full token list does not match its own name")
	}
}

func TestSanitize(t *testing.T) {
	tests := []struct{ in, want string }{
		{"Aaron Neville - I Don't Know Much.mp3", "aaronnevilleidontknowmuchmp3"},
		{"AARON NEVILLE- i dont know much.MP3", "aaronnevilleidontknowmuchmp3"},
		{"", ""},
		{"123-456", "123456"},
		{"ÜBER", "über"},
	}
	for _, tc := range tests {
		if got := Sanitize(tc.in); got != tc.want {
			t.Errorf("Sanitize(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestSanitizeCollapsesCaseAndPunctVariants(t *testing.T) {
	variants := []string{
		"Aaron Neville - I Dont Know Much.mp3",
		"aaron neville - i dont know much.MP3",
		"Aaron Neville- I Dont Know Much.mp3",
		"AARON NEVILLE  -  I DONT KNOW MUCH.mp3",
	}
	want := Sanitize(variants[0])
	for _, v := range variants[1:] {
		if got := Sanitize(v); got != want {
			t.Errorf("variant %q sanitized to %q, want %q", v, got, want)
		}
	}
}

func TestSanitizeIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := Sanitize(s)
		return Sanitize(once) == once
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTokenize(b *testing.B) {
	s := "Aaron Neville and Linda Ronstadt - I Don't Know Much (But I Know I Love You).mp3"
	for i := 0; i < b.N; i++ {
		Tokenize(s)
	}
}

func BenchmarkSanitize(b *testing.B) {
	s := "Aaron Neville and Linda Ronstadt - I Don't Know Much (But I Know I Love You).mp3"
	for i := 0; i < b.N; i++ {
		Sanitize(s)
	}
}
