// Package terms implements the two string normalizations the paper's
// analyses rely on: the Gnutella protocol tokenization mechanism used to
// split file names and query strings into terms (Figure 3 and Section IV),
// and the file-name sanitization (lowercasing and stripping special
// characters) used for Figure 2.
package terms

import (
	"strings"
	"unicode"
)

// MinTokenLength is the shortest token the protocol tokenization keeps,
// matching Gnutella query-routing practice of dropping one-character
// fragments.
const MinTokenLength = 2

// Tokenize splits s the way Gnutella splits file names and query strings
// for keyword matching: Unicode letter/digit runs, lowercased, with tokens
// shorter than MinTokenLength dropped. The result preserves order and may
// contain duplicates (callers needing a set use TokenSet).
func Tokenize(s string) []string {
	var out []string
	start := -1
	lower := strings.ToLower(s)
	for i, r := range lower {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			if tok := lower[start:i]; tokenLen(tok) >= MinTokenLength {
				out = append(out, tok)
			}
			start = -1
		}
	}
	if start >= 0 {
		if tok := lower[start:]; tokenLen(tok) >= MinTokenLength {
			out = append(out, tok)
		}
	}
	return out
}

// tokenLen counts runes, not bytes, so multi-byte single characters are
// still dropped by the minimum-length rule.
func tokenLen(s string) int {
	n := 0
	for range s {
		n++
	}
	return n
}

// TokenSet returns the distinct tokens of s.
func TokenSet(s string) map[string]struct{} {
	toks := Tokenize(s)
	set := make(map[string]struct{}, len(toks))
	for _, t := range toks {
		set[t] = struct{}{}
	}
	return set
}

// Matches reports whether every token of query appears in the token set of
// name — the Gnutella keyword-match rule ("the system searched for all
// objects that matched the set of terms in the query string"). A query with
// no tokens matches nothing.
func Matches(queryTokens []string, nameTokens map[string]struct{}) bool {
	if len(queryTokens) == 0 {
		return false
	}
	for _, q := range queryTokens {
		if _, ok := nameTokens[q]; !ok {
			return false
		}
	}
	return true
}

// Sanitize normalizes a file name the way the paper's Figure 2 analysis
// does: lowercase, with capitalization and special characters (dashes,
// apostrophes, spaces, punctuation) removed. Only letters and digits
// survive.
func Sanitize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range strings.ToLower(s) {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(r)
		}
	}
	return b.String()
}
