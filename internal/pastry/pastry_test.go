package pastry

import (
	"math"
	"testing"

	"querycentric/internal/rng"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Error("zero nodes accepted")
	}
}

func TestDigitExtraction(t *testing.T) {
	id := uint64(0xfedcba9876543210)
	want := []int{0xf, 0xe, 0xd, 0xc, 0xb, 0xa, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0}
	for i, w := range want {
		if got := digit(id, i); got != w {
			t.Errorf("digit %d = %x, want %x", i, got, w)
		}
	}
}

func TestSharedPrefixLen(t *testing.T) {
	tests := []struct {
		a, b uint64
		want int
	}{
		{0, 0, Digits},
		{0xff00000000000000, 0xfe00000000000000, 1},
		{0xff00000000000000, 0x0f00000000000000, 0},
		{0x1234567800000000, 0x1234567900000000, 7},
	}
	for _, tc := range tests {
		if got := sharedPrefixLen(tc.a, tc.b); got != tc.want {
			t.Errorf("sharedPrefixLen(%x, %x) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestPrefixRange(t *testing.T) {
	// Row 0, column 5: all IDs starting with digit 5.
	lo, hi := prefixRange(0xabcdef0000000000, 0, 5)
	if lo != 0x5000000000000000 || hi != 0x5fffffffffffffff {
		t.Errorf("row0 range = [%x, %x]", lo, hi)
	}
	// Row 1 of an ID starting 0xA, column 3: IDs starting 0xa3.
	lo, hi = prefixRange(0xabcdef0000000000, 1, 3)
	if lo != 0xa300000000000000 || hi != 0xa3ffffffffffffff {
		t.Errorf("row1 range = [%x, %x]", lo, hi)
	}
}

func TestOwnerIsNumericallyClosest(t *testing.T) {
	m, err := New(500, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := rng.New(3)
	for trial := 0; trial < 300; trial++ {
		key := g.Uint64()
		owner := m.Owner(key)
		for _, n := range m.nodes {
			if absDist(n.ID, key) < absDist(owner.ID, key) {
				t.Fatalf("node %x closer to key %x than owner %x", n.ID, key, owner.ID)
			}
		}
	}
}

func TestLookupCorrectness(t *testing.T) {
	m, err := New(1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := rng.New(5)
	for trial := 0; trial < 400; trial++ {
		key := g.Uint64()
		from := m.NodeByIndex(g.Intn(1000))
		owner, hops, err := m.Lookup(key, from)
		if err != nil {
			t.Fatal(err)
		}
		if owner != m.Owner(key) {
			t.Fatalf("wrong owner for %x", key)
		}
		if hops < 0 || hops > Digits+8 {
			t.Fatalf("hops = %d", hops)
		}
	}
}

func TestLookupLogarithmicHops(t *testing.T) {
	m, err := New(4096, 6)
	if err != nil {
		t.Fatal(err)
	}
	g := rng.New(7)
	total := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		_, hops, err := m.Lookup(g.Uint64(), m.NodeByIndex(g.Intn(4096)))
		if err != nil {
			t.Fatal(err)
		}
		total += hops
	}
	mean := float64(total) / trials
	// Pastry routes in ~log_16(N) hops: log_16(4096) = 3.
	if mean > 2*math.Log(4096)/math.Log(16) {
		t.Errorf("mean hops %.2f, want ~%.1f", mean, math.Log(4096)/math.Log(16))
	}
	if mean < 0.5 {
		t.Errorf("mean hops %.2f suspiciously small", mean)
	}
}

func TestPastryBeatsChordOnHops(t *testing.T) {
	// With 16-way branching Pastry should need roughly a quarter of
	// Chord's binary-branching hops. We only assert it's strictly better
	// on average at equal size.
	m, err := New(2048, 8)
	if err != nil {
		t.Fatal(err)
	}
	g := rng.New(9)
	total := 0
	const trials = 300
	for i := 0; i < trials; i++ {
		_, hops, err := m.Lookup(g.Uint64(), m.NodeByIndex(g.Intn(2048)))
		if err != nil {
			t.Fatal(err)
		}
		total += hops
	}
	pastryMean := float64(total) / trials
	chordExpected := math.Log2(2048) / 2 // ~5.5, Chord's typical half-log2
	if pastryMean >= chordExpected {
		t.Errorf("pastry mean hops %.2f not below Chord-like %.2f", pastryMean, chordExpected)
	}
}

func TestLookupFromOwner(t *testing.T) {
	m, _ := New(64, 10)
	n := m.nodes[5]
	owner, hops, err := m.Lookup(n.ID, n)
	if err != nil {
		t.Fatal(err)
	}
	if owner != n || hops != 0 {
		t.Errorf("self lookup: hops=%d", hops)
	}
	if _, _, err := m.Lookup(1, nil); err == nil {
		t.Error("nil start accepted")
	}
}

func TestSingleNodeMesh(t *testing.T) {
	m, err := New(1, 11)
	if err != nil {
		t.Fatal(err)
	}
	owner, hops, err := m.Lookup(0xdeadbeef, m.NodeByIndex(0))
	if err != nil {
		t.Fatal(err)
	}
	if owner != m.NodeByIndex(0) || hops != 0 {
		t.Errorf("single-node lookup: hops=%d", hops)
	}
}

func TestDeterministicMesh(t *testing.T) {
	a, _ := New(200, 12)
	b, _ := New(200, 12)
	for i := range a.nodes {
		if a.nodes[i].ID != b.nodes[i].ID {
			t.Fatal("IDs differ across builds")
		}
	}
	g := rng.New(13)
	for i := 0; i < 50; i++ {
		key := g.Uint64()
		_, ha, _ := a.Lookup(key, a.NodeByIndex(7))
		_, hb, _ := b.Lookup(key, b.NodeByIndex(7))
		if ha != hb {
			t.Fatal("lookups differ across builds")
		}
	}
}

func BenchmarkLookup(b *testing.B) {
	m, err := New(10000, 1)
	if err != nil {
		b.Fatal(err)
	}
	g := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.Lookup(g.Uint64(), m.NodeByIndex(i%10000)); err != nil {
			b.Fatal(err)
		}
	}
}
