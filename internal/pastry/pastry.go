// Package pastry implements Pastry-style prefix routing (Rowstron &
// Druschel, Middleware 2001) over simulated nodes: 64-bit identifiers read
// as sixteen 4-bit digits, per-node routing tables indexed by shared-prefix
// length, leaf sets of numerically close neighbours, and greedy prefix
// routing with the numerically-closer fallback rule.
//
// The paper names Pastry (with Tapestry) as the archetypal structured
// overlay whose exact-match lookups hybrid systems fall back to; this
// package provides it as a second structured baseline next to Chord, so
// the structured-lookup costs in the comparisons are not an artifact of
// one DHT design.
package pastry

import (
	"fmt"
	"sort"

	"querycentric/internal/rng"
)

// DigitBits is the size of one identifier digit (2^2b routing columns).
const DigitBits = 4

// Digits is the number of digits in a 64-bit identifier.
const Digits = 64 / DigitBits

// cols is the number of columns per routing-table row.
const cols = 1 << DigitBits

// leafHalf is the number of leaf-set entries on each side.
const leafHalf = 4

// Node is one Pastry participant.
type Node struct {
	ID    uint64
	Index int // application-level index
	pos   int // position in the mesh's sorted node slice

	// table[r][c] is the position (in the mesh's sorted node slice) of a
	// node sharing the first r digits with this node and having digit c at
	// position r, or -1.
	table [][]int32
	// leaf holds positions of the numerically adjacent nodes.
	leaf []int32
}

// Mesh is a stabilized Pastry overlay.
type Mesh struct {
	nodes []*Node // sorted by ID
	byIdx map[int]*Node
}

// digit extracts the i-th (0 = most significant) 4-bit digit of id.
func digit(id uint64, i int) int {
	return int(id >> (64 - DigitBits*(i+1)) & (cols - 1))
}

// sharedPrefixLen counts leading digits common to a and b.
func sharedPrefixLen(a, b uint64) int {
	x := a ^ b
	if x == 0 {
		return Digits
	}
	n := 0
	for digit(x, n) == 0 {
		n++
	}
	return n
}

// New builds a mesh of n nodes with pseudo-random identifiers.
func New(n int, seed uint64) (*Mesh, error) {
	if n <= 0 {
		return nil, fmt.Errorf("pastry: node count must be positive, got %d", n)
	}
	r := rng.NewNamed(seed, "pastry/ids")
	m := &Mesh{byIdx: make(map[int]*Node, n)}
	used := map[uint64]bool{}
	for i := 0; i < n; i++ {
		id := r.Uint64()
		for used[id] {
			id = r.Uint64()
		}
		used[id] = true
		node := &Node{ID: id, Index: i}
		m.nodes = append(m.nodes, node)
		m.byIdx[i] = node
	}
	sort.Slice(m.nodes, func(i, j int) bool { return m.nodes[i].ID < m.nodes[j].ID })
	for pos, node := range m.nodes {
		node.pos = pos
	}
	m.build()
	return m, nil
}

// Size returns the number of nodes.
func (m *Mesh) Size() int { return len(m.nodes) }

// NodeByIndex returns the node with the given application index, or nil.
func (m *Mesh) NodeByIndex(idx int) *Node { return m.byIdx[idx] }

// build fills every node's routing table and leaf set from the global
// view (the simulated equivalent of a converged join protocol).
func (m *Mesh) build() {
	n := len(m.nodes)
	ids := make([]uint64, n)
	for i, node := range m.nodes {
		ids[i] = node.ID
	}
	for pos, node := range m.nodes {
		node.table = make([][]int32, 0, 8)
		for row := 0; row < Digits; row++ {
			// Prefix of this node's ID up to row digits.
			var tr []int32
			filled := false
			for c := 0; c < cols; c++ {
				if c == digit(node.ID, row) {
					if tr == nil {
						tr = make([]int32, cols)
					}
					tr[c] = -1 // own digit: no entry needed
					continue
				}
				lo, hi := prefixRange(node.ID, row, c)
				i := sort.Search(n, func(k int) bool { return ids[k] >= lo })
				if tr == nil {
					tr = make([]int32, cols)
				}
				if i < n && ids[i] <= hi {
					tr[c] = int32(i)
					filled = true
				} else {
					tr[c] = -1
				}
			}
			node.table = append(node.table, tr)
			if !filled && row > 0 {
				// No other node shares even this prefix: deeper rows are
				// necessarily empty too.
				break
			}
		}
		// Leaf set: numerically adjacent nodes on both sides (wrapping).
		node.leaf = node.leaf[:0]
		for d := 1; d <= leafHalf && d < n; d++ {
			node.leaf = append(node.leaf,
				int32((pos+d)%n), int32((pos-d+n)%n))
		}
	}
}

// prefixRange returns the identifier interval of IDs that share the first
// row digits with id and have digit c at position row.
func prefixRange(id uint64, row, c int) (lo, hi uint64) {
	shift := 64 - DigitBits*row
	var prefix uint64
	if shift < 64 {
		prefix = id >> shift << shift
	}
	digShift := 64 - DigitBits*(row+1)
	lo = prefix | uint64(c)<<digShift
	hi = lo | (uint64(1)<<digShift - 1)
	return lo, hi
}

// Owner returns the node numerically closest to key (plain absolute
// distance, as Pastry defines key ownership; ties toward the lower ID).
func (m *Mesh) Owner(key uint64) *Node {
	n := len(m.nodes)
	i := sort.Search(n, func(k int) bool { return m.nodes[k].ID >= key })
	switch {
	case i == 0:
		return m.nodes[0]
	case i == n:
		return m.nodes[n-1]
	}
	a, b := m.nodes[i-1], m.nodes[i] // a.ID < key <= b.ID
	if key-a.ID < b.ID-key {
		return a
	}
	if key-a.ID > b.ID-key {
		return b
	}
	return a // tie: lower ID
}

// absDist is the plain numeric distance between identifiers.
func absDist(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

// Lookup routes from the given node to the owner of key, returning the
// owner and the hop count.
func (m *Mesh) Lookup(key uint64, from *Node) (*Node, int, error) {
	if from == nil {
		return nil, 0, fmt.Errorf("pastry: lookup from nil node")
	}
	owner := m.Owner(key)
	cur := from
	hops := 0
	for cur != owner {
		if hops > 2*Digits+len(m.nodes) {
			return nil, hops, fmt.Errorf("pastry: lookup for %x did not converge", key)
		}
		next := m.route(cur, key, owner)
		if next == cur {
			return nil, hops, fmt.Errorf("pastry: routing stalled at node %d for %x", cur.Index, key)
		}
		cur = next
		hops++
	}
	return owner, hops, nil
}

// route picks the next hop per the Pastry rules: (1) if the key falls
// within the current node's leaf-set window, deliver directly to the
// numerically closest node there (which is the owner); (2) otherwise take
// the routing-table entry extending the shared prefix; (3) in the rare
// case the entry is empty, move to any known node at least as long in
// shared prefix and strictly numerically closer — each rule strictly
// increases shared prefix or decreases distance, so routing terminates.
func (m *Mesh) route(cur *Node, key uint64, owner *Node) *Node {
	// Rule 1: the owner sits inside cur's leaf window.
	if d := cur.pos - owner.pos; d >= -leafHalf && d <= leafHalf {
		return owner
	}
	// Rule 2: prefix extension.
	l := sharedPrefixLen(cur.ID, key)
	if l < len(cur.table) {
		if p := cur.table[l][digit(key, l)]; p >= 0 {
			return m.nodes[p]
		}
	}
	// Rule 3: rare-case fallback over leaf set and table.
	best := cur
	bestD := absDist(cur.ID, key)
	consider := func(p int32) {
		if p < 0 {
			return
		}
		node := m.nodes[p]
		if sharedPrefixLen(node.ID, key) < l {
			return
		}
		if d := absDist(node.ID, key); d < bestD {
			best, bestD = node, d
		}
	}
	for _, p := range cur.leaf {
		consider(p)
	}
	for _, row := range cur.table {
		for _, p := range row {
			consider(p)
		}
	}
	if best != cur {
		return best
	}
	// Degenerate corner (digit-boundary keys): walk the sorted ring
	// toward the owner; position distance strictly decreases.
	if owner.pos > cur.pos {
		return m.nodes[cur.pos+1]
	}
	return m.nodes[cur.pos-1]
}
