package search

import (
	"testing"

	"querycentric/internal/overlay"
	"querycentric/internal/rng"
	"querycentric/internal/stats"
)

func ringGraph(t *testing.T, n int) *overlay.Graph {
	t.Helper()
	g, err := overlay.NewGraph(n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := g.AddEdge(i, (i+1)%n); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func placementAt(nodes int, holders ...int32) *Placement {
	return &Placement{Nodes: nodes, Holders: [][]int32{holders}}
}

func TestUniformPlacement(t *testing.T) {
	p, err := UniformPlacement(100, 50, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Objects() != 50 {
		t.Fatalf("objects = %d", p.Objects())
	}
	for i, h := range p.Holders {
		if len(h) != 5 {
			t.Fatalf("object %d has %d replicas", i, len(h))
		}
		seen := map[int32]bool{}
		for _, v := range h {
			if v < 0 || v >= 100 || seen[v] {
				t.Fatalf("object %d has invalid holders %v", i, h)
			}
			seen[v] = true
		}
	}
	if p.MeanReplicas() != 5 {
		t.Errorf("mean replicas = %v", p.MeanReplicas())
	}
	if _, err := UniformPlacement(10, 5, 11, 1); err == nil {
		t.Error("replicas > nodes accepted")
	}
	if _, err := UniformPlacement(0, 5, 1, 1); err == nil {
		t.Error("zero nodes accepted")
	}
}

func TestZipfPlacementShape(t *testing.T) {
	p, err := ZipfPlacement(1000, 5000, 2.45, 200, 2)
	if err != nil {
		t.Fatal(err)
	}
	counts := p.ReplicaCounts()
	single := stats.FractionEqual(counts, 1)
	if single < 0.5 || single > 0.9 {
		t.Errorf("singleton fraction = %v", single)
	}
	mean := p.MeanReplicas()
	if mean < 1.1 || mean > 3 {
		t.Errorf("mean replicas = %v, want ~1.5 (paper)", mean)
	}
	for i, h := range p.Holders {
		seen := map[int32]bool{}
		for _, v := range h {
			if seen[v] {
				t.Fatalf("object %d has duplicate holder", i)
			}
			seen[v] = true
		}
	}
}

func TestFloodFindsAdjacentReplica(t *testing.T) {
	g := ringGraph(t, 10)
	e, err := NewEngine(g, placementAt(10, 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Flood(0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Hops != 1 {
		t.Errorf("result: %+v", res)
	}
}

func TestFloodRespectsTTL(t *testing.T) {
	g := ringGraph(t, 20)
	e, _ := NewEngine(g, placementAt(20, 5)) // 5 hops away from 0
	res, err := e.Flood(0, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Error("found object beyond TTL")
	}
	if res.Peers != 8 { // 4 in each ring direction
		t.Errorf("peers = %d, want 8", res.Peers)
	}
	res, _ = e.Flood(0, 0, 5)
	if !res.Found || res.Hops != 5 {
		t.Errorf("TTL 5 result: %+v", res)
	}
}

func TestFloodOriginHolds(t *testing.T) {
	g := ringGraph(t, 5)
	e, _ := NewEngine(g, placementAt(5, 2))
	res, err := e.Flood(2, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Hops != 0 || res.Messages != 0 {
		t.Errorf("origin-hit result: %+v", res)
	}
}

func TestFloodValidation(t *testing.T) {
	g := ringGraph(t, 5)
	e, _ := NewEngine(g, placementAt(5, 2))
	if _, err := e.Flood(-1, 0, 1); err == nil {
		t.Error("bad origin accepted")
	}
	if _, err := e.Flood(0, 7, 1); err == nil {
		t.Error("bad object accepted")
	}
	if _, err := e.Flood(0, 0, 0); err == nil {
		t.Error("zero TTL accepted")
	}
}

func TestNewEngineValidation(t *testing.T) {
	g := ringGraph(t, 5)
	if _, err := NewEngine(g, placementAt(6, 0)); err == nil {
		t.Error("mismatched placement accepted")
	}
}

func TestExpandingRingStopsEarly(t *testing.T) {
	g := ringGraph(t, 30)
	e, _ := NewEngine(g, placementAt(30, 2)) // 2 hops away
	res, err := e.ExpandingRing(0, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Hops != 2 {
		t.Errorf("result: %+v", res)
	}
	// Cost = ring1 (2 peers) + ring2 (4 peers).
	if res.Peers != 2+4 {
		t.Errorf("cumulative peers = %d, want 6", res.Peers)
	}
}

func TestExpandingRingFailure(t *testing.T) {
	g := ringGraph(t, 30)
	e, _ := NewEngine(g, placementAt(30, 15))
	res, err := e.ExpandingRing(0, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Error("found unreachable object")
	}
	if res.Peers == 0 {
		t.Error("no cost recorded")
	}
}

func TestRandomWalkFindsOnRing(t *testing.T) {
	g := ringGraph(t, 10)
	e, _ := NewEngine(g, placementAt(10, 5))
	r := rng.New(3)
	found := 0
	for i := 0; i < 50; i++ {
		res, err := e.RandomWalk(0, 0, 4, 50, r)
		if err != nil {
			t.Fatal(err)
		}
		if res.Found {
			found++
		}
	}
	if found < 40 {
		t.Errorf("random walk found target only %d/50 times", found)
	}
}

func TestRandomWalkRespectsBudget(t *testing.T) {
	g := ringGraph(t, 1000)
	e, _ := NewEngine(g, placementAt(1000, 500))
	r := rng.New(4)
	res, err := e.RandomWalk(0, 0, 2, 10, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Error("found object 500 hops away with 10-step walks")
	}
	if res.Messages > 20 {
		t.Errorf("messages = %d, exceeds walker budget", res.Messages)
	}
}

func TestSuccessRateUniformTheory(t *testing.T) {
	// On a well-mixed graph, success ≈ 1-(1-ρ)^peers for replication
	// ratio ρ. Just check monotonicity in replicas and sane bounds.
	g, err := overlay.NewGnutella(4000, overlay.DefaultGnutellaConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, reps := range []int{1, 10, 40, 160} {
		p, err := UniformPlacement(4000, 200, reps, 6)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(g, p)
		if err != nil {
			t.Fatal(err)
		}
		rate, err := e.SuccessRate(3, 300, func(r *rng.Source) int { return r.Intn(200) }, 7)
		if err != nil {
			t.Fatal(err)
		}
		if rate < prev {
			t.Errorf("success rate not monotone in replicas: %v after %v", rate, prev)
		}
		prev = rate
	}
	if prev < 0.3 {
		t.Errorf("160-replica TTL-3 success = %v, suspiciously low", prev)
	}
}

func TestZipfSuccessBelowUniform(t *testing.T) {
	// The paper's Figure 8 headline: Zipf placement (mean ~1.5) performs
	// far worse than uniform placement with ~0.1% replication.
	g, err := overlay.NewGnutella(4000, overlay.DefaultGnutellaConfig(), 8)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := UniformPlacement(4000, 300, 39, 9) // ~1% at this scale
	if err != nil {
		t.Fatal(err)
	}
	zpf, err := ZipfPlacement(4000, 300, 2.45, 400, 9)
	if err != nil {
		t.Fatal(err)
	}
	pick := func(r *rng.Source) int { return r.Intn(300) }
	eU, _ := NewEngine(g, uni)
	eZ, _ := NewEngine(g, zpf)
	rU, err := eU.SuccessRate(3, 400, pick, 10)
	if err != nil {
		t.Fatal(err)
	}
	rZ, err := eZ.SuccessRate(3, 400, pick, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rZ >= rU {
		t.Errorf("Zipf success %v not below uniform-39 %v", rZ, rU)
	}
}

func BenchmarkFloodTTL5(b *testing.B) {
	g, err := overlay.NewGnutella(40000, overlay.DefaultGnutellaConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	p, err := ZipfPlacement(40000, 1000, 2.45, 5000, 2)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEngine(g, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Flood(i%40000, i%1000, 5); err != nil {
			b.Fatal(err)
		}
	}
}
