// Package search implements the object-location mechanisms compared in the
// paper's Section V simulation: TTL-bounded flooding, expanding ring, and
// k-walker random walks over an overlay graph, against configurable replica
// placements (uniform with fixed replica counts, or the power-law placement
// observed in real systems).
//
// The central quantity is the Figure 8 one: the probability that a
// TTL-bounded search from a random origin locates any replica of a target
// object, as a function of TTL and of the placement model.
package search

import (
	"fmt"

	"querycentric/internal/overlay"
	"querycentric/internal/parallel"
	"querycentric/internal/rng"
	"querycentric/internal/zipf"
)

// Placement assigns object replicas to nodes.
type Placement struct {
	Nodes   int
	Holders [][]int32 // Holders[obj] = nodes holding a replica of obj
}

// Objects returns the number of placed objects.
func (p *Placement) Objects() int { return len(p.Holders) }

// MeanReplicas returns the mean replica count per object.
func (p *Placement) MeanReplicas() float64 {
	if len(p.Holders) == 0 {
		return 0
	}
	total := 0
	for _, h := range p.Holders {
		total += len(h)
	}
	return float64(total) / float64(len(p.Holders))
}

// ReplicaCounts returns the per-object replica counts.
func (p *Placement) ReplicaCounts() []int {
	out := make([]int, len(p.Holders))
	for i, h := range p.Holders {
		out[i] = len(h)
	}
	return out
}

// UniformPlacement places each of objects on exactly replicas distinct
// random nodes — the model prior P2P evaluations assumed (the paper varies
// replicas over 1, 4, 9, 19, 39 on 40,000 nodes).
func UniformPlacement(nodes, objects, replicas int, seed uint64) (*Placement, error) {
	if nodes <= 0 || objects <= 0 {
		return nil, fmt.Errorf("search: nodes and objects must be positive")
	}
	if replicas < 1 || replicas > nodes {
		return nil, fmt.Errorf("search: replicas %d out of range [1,%d]", replicas, nodes)
	}
	r := rng.NewNamed(seed, "search/uniform-placement")
	p := &Placement{Nodes: nodes, Holders: make([][]int32, objects)}
	for i := range p.Holders {
		idx := r.SampleInts(nodes, replicas)
		h := make([]int32, replicas)
		for j, v := range idx {
			h[j] = int32(v)
		}
		p.Holders[i] = h
	}
	return p, nil
}

// ZipfPlacement draws each object's replica count from the truncated power
// law P(k) ∝ k^-alpha, k ∈ [1, maxReplicas] — the distribution the paper
// measured in deployed systems — and places the replicas on distinct random
// nodes.
func ZipfPlacement(nodes, objects int, alpha float64, maxReplicas int, seed uint64) (*Placement, error) {
	if nodes <= 0 || objects <= 0 {
		return nil, fmt.Errorf("search: nodes and objects must be positive")
	}
	if maxReplicas <= 0 || maxReplicas > nodes {
		maxReplicas = nodes
	}
	dist, err := zipf.New(maxReplicas, alpha)
	if err != nil {
		return nil, err
	}
	r := rng.NewNamed(seed, "search/zipf-placement")
	p := &Placement{Nodes: nodes, Holders: make([][]int32, objects)}
	for i := range p.Holders {
		k := dist.Sample(r)
		idx := r.SampleInts(nodes, k)
		h := make([]int32, k)
		for j, v := range idx {
			h[j] = int32(v)
		}
		p.Holders[i] = h
	}
	return p, nil
}

// Result is the outcome of one search.
type Result struct {
	Found    bool
	Hops     int // hops at which the first replica was found (0 if origin holds it)
	Messages int // query transmissions
	Peers    int // peers that processed the query (excluding origin)
	Results  int // replica holders encountered (the hybrid rare-query rule counts these)
}

// Engine holds the immutable state of one (graph, placement) pair. Its
// search methods delegate to a default Searcher, so a single-goroutine
// caller can use the Engine directly; parallel trial loops give each worker
// its own Searcher via NewSearcher.
type Engine struct {
	g     *overlay.Graph
	place *Placement
	def   *Searcher
}

// Searcher carries the per-goroutine scratch of one search worker:
// epoch-stamped visited and holder marks, so no per-search map or clearing
// pass is needed. A Searcher must not be shared between goroutines; the
// Engine it was built from is read-only and may be shared freely.
type Searcher struct {
	e          *Engine
	mark       []int32 // visited stamp
	holderMark []int32 // current object's holders stamp
	epoch      int32
}

// NewEngine builds a search engine. The placement must cover the graph's
// node set.
func NewEngine(g *overlay.Graph, p *Placement) (*Engine, error) {
	if p.Nodes != g.N() {
		return nil, fmt.Errorf("search: placement for %d nodes, graph has %d", p.Nodes, g.N())
	}
	e := &Engine{g: g, place: p}
	e.def = e.NewSearcher()
	return e, nil
}

// NewSearcher returns a fresh search worker over this engine's graph and
// placement.
func (e *Engine) NewSearcher() *Searcher {
	n := e.g.N()
	return &Searcher{e: e, mark: make([]int32, n), holderMark: make([]int32, n)}
}

// GraphN returns the number of nodes in the engine's graph.
func (e *Engine) GraphN() int { return e.g.N() }

// Flood, ExpandingRing and RandomWalk on the Engine use its default
// searcher (single-goroutine convenience).
func (e *Engine) Flood(origin, obj, ttl int) (Result, error) {
	return e.def.Flood(origin, obj, ttl)
}

func (e *Engine) ExpandingRing(origin, obj, maxTTL int) (Result, error) {
	return e.def.ExpandingRing(origin, obj, maxTTL)
}

func (e *Engine) RandomWalk(origin, obj, walkers, maxSteps int, r *rng.Source) (Result, error) {
	return e.def.RandomWalk(origin, obj, walkers, maxSteps, r)
}

// begin opens a new search epoch and stamps obj's holders, replacing the
// per-search holder map of the naive implementation with an O(replicas)
// stamping pass over a reused array.
func (s *Searcher) begin(obj int) int32 {
	s.epoch++
	if s.epoch == 1<<31-1 {
		for i := range s.mark {
			s.mark[i] = 0
			s.holderMark[i] = 0
		}
		s.epoch = 1
	}
	for _, h := range s.e.place.Holders[obj] {
		s.holderMark[h] = s.epoch
	}
	return s.epoch
}

// Flood performs a TTL-bounded flood from origin for object obj. The origin
// holding the object counts as an immediate hit at hop 0.
func (s *Searcher) Flood(origin, obj, ttl int) (Result, error) {
	e := s.e
	if err := e.check(origin, obj); err != nil {
		return Result{}, err
	}
	if ttl < 1 {
		return Result{}, fmt.Errorf("search: TTL must be at least 1, got %d", ttl)
	}
	epoch := s.begin(obj)
	res := Result{}
	if s.holderMark[origin] == epoch {
		res.Found = true
		res.Results = 1
		// The origin's own copy counts, but the flood still goes out (a
		// real servent searches its own library first and would stop; for
		// measurement we report the immediate hit).
		return res, nil
	}
	s.mark[origin] = epoch
	frontier := make([]int32, 0, len(e.g.Neighbors(origin)))
	for _, nb := range e.g.Neighbors(origin) {
		frontier = append(frontier, nb)
		res.Messages++
	}
	var next []int32
	found := false
	for hop := 1; hop <= ttl && len(frontier) > 0; hop++ {
		next = next[:0]
		for _, v := range frontier {
			if s.mark[v] == epoch {
				continue
			}
			s.mark[v] = epoch
			res.Peers++
			if s.holderMark[v] == epoch {
				res.Results++
				if !found {
					found = true
					res.Found = true
					res.Hops = hop
					// A real flood keeps propagating after the first hit;
					// cost keeps accruing but the first-hit hop is kept.
				}
			}
			if hop == ttl || !e.g.Ultra(int(v)) {
				continue
			}
			for _, nb := range e.g.Neighbors(int(v)) {
				if s.mark[nb] != epoch {
					next = append(next, nb)
					res.Messages++
				}
			}
		}
		frontier, next = next, frontier
	}
	return res, nil
}

// ExpandingRing floods with TTL 1, 2, ... maxTTL until the object is found,
// accumulating cost across rings (the classic flooding-cost reduction).
func (s *Searcher) ExpandingRing(origin, obj, maxTTL int) (Result, error) {
	if maxTTL < 1 {
		return Result{}, fmt.Errorf("search: maxTTL must be at least 1, got %d", maxTTL)
	}
	total := Result{}
	for ttl := 1; ttl <= maxTTL; ttl++ {
		res, err := s.Flood(origin, obj, ttl)
		if err != nil {
			return Result{}, err
		}
		total.Messages += res.Messages
		total.Peers += res.Peers
		if res.Found {
			total.Found = true
			total.Hops = res.Hops
			return total, nil
		}
	}
	return total, nil
}

// RandomWalk launches walkers concurrent random walks of at most maxSteps
// steps each (Lv et al. style). Walkers check every visited node for the
// object; success is any walker finding a replica.
func (s *Searcher) RandomWalk(origin, obj, walkers, maxSteps int, r *rng.Source) (Result, error) {
	e := s.e
	if err := e.check(origin, obj); err != nil {
		return Result{}, err
	}
	if walkers < 1 || maxSteps < 1 {
		return Result{}, fmt.Errorf("search: walkers and maxSteps must be positive")
	}
	epoch := s.begin(obj)
	if s.holderMark[origin] == epoch {
		return Result{Found: true, Hops: 0}, nil
	}
	s.mark[origin] = epoch
	res := Result{}
	for w := 0; w < walkers; w++ {
		cur := int32(origin)
		for step := 1; step <= maxSteps; step++ {
			nbs := e.g.Neighbors(int(cur))
			if len(nbs) == 0 {
				break
			}
			cur = nbs[r.Intn(len(nbs))]
			res.Messages++
			if s.mark[cur] != epoch {
				s.mark[cur] = epoch
				res.Peers++
			}
			if s.holderMark[cur] == epoch {
				if !res.Found || step < res.Hops {
					res.Found = true
					res.Hops = step
				}
				break
			}
		}
	}
	return res, nil
}

func (e *Engine) check(origin, obj int) error {
	if origin < 0 || origin >= e.g.N() {
		return fmt.Errorf("search: origin %d out of range", origin)
	}
	if obj < 0 || obj >= len(e.place.Holders) {
		return fmt.Errorf("search: object %d out of range", obj)
	}
	return nil
}

// SuccessRate measures the fraction of trials in which a flood at the given
// TTL finds the target, with targets chosen by pick (e.g. uniform over
// objects, or popularity-weighted) and origins uniform at random. It is
// SuccessRateN on one worker: trial i draws from the derived stream
// "trial/i", so the measured rate is identical at any worker count.
func (e *Engine) SuccessRate(ttl, trials int, pick func(r *rng.Source) int, seed uint64) (float64, error) {
	return e.SuccessRateN(ttl, trials, pick, seed, 1)
}

// SuccessRateN is SuccessRate fanned out over a bounded worker pool. Each
// trial derives its own RNG stream from the seed by trial index and each
// worker floods through its own Searcher, so the result is byte-identical
// for every workers value (hits are summed in trial order). pick must be
// safe for concurrent calls (pure functions of r are).
func (e *Engine) SuccessRateN(ttl, trials int, pick func(r *rng.Source) int, seed uint64, workers int) (float64, error) {
	if trials < 1 {
		return 0, fmt.Errorf("search: trials must be positive")
	}
	base := rng.NewNamed(seed, "search/success")
	found, err := parallel.MapWith(workers, trials,
		func() *Searcher { return e.NewSearcher() },
		func(s *Searcher, i int) (bool, error) {
			r := base.Derive(fmt.Sprintf("trial/%d", i))
			origin := r.Intn(e.g.N())
			obj := pick(r)
			res, err := s.Flood(origin, obj, ttl)
			return res.Found, err
		})
	if err != nil {
		return 0, err
	}
	hits := 0
	for _, f := range found {
		if f {
			hits++
		}
	}
	return float64(hits) / float64(trials), nil
}
