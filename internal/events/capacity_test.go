package events

import (
	"encoding/json"
	"testing"

	"querycentric/internal/capacity"
	"querycentric/internal/obs"
)

// capacityScenario is a flash-crowd config with a tight bounded-capacity
// plane attached: small queues, slow service, retries on untimely answers.
func capacityScenario(seed uint64, pol capacity.Policy, workers int) ScenarioConfig {
	cfg := shortScenario(FlashCrowd, seed)
	cfg.Flash = &FlashConfig{Start: 1200, End: 2400, Frac: 0.5, Boost: 3}
	cfg.Workers = workers
	cfg.QueryRetries = 1
	ccfg := capacity.DefaultConfig(seed)
	ccfg.QueueDepth = 8
	ccfg.Policy = pol
	ccfg.Breakers = pol == capacity.TTLAware
	cfg.Capacity = &ccfg
	return cfg
}

// TestCapacityScenarioWorkerInvariant extends the schedule-invariance
// contract to the overload plane: the full windowed result — shed counts,
// breaker transitions, retried queries and all — must be byte-identical
// across reruns and worker counts, for every shedding policy.
func TestCapacityScenarioWorkerInvariant(t *testing.T) {
	for _, pol := range []capacity.Policy{capacity.DropTail, capacity.RED, capacity.TTLAware} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			run := func(workers int) []byte {
				cfg := capacityScenario(61, pol, workers)
				res := runScenario(t, testNetwork(t, 61), cfg)
				b, err := json.Marshal(res)
				if err != nil {
					t.Fatalf("marshal: %v", err)
				}
				return b
			}
			w1a, w1b, w8 := run(1), run(1), run(8)
			if string(w1a) != string(w1b) {
				t.Fatal("identical capacity runs diverged")
			}
			if string(w1a) != string(w8) {
				t.Fatal("worker count changed capacity-enabled scenario output")
			}
			var res ScenarioResult
			if err := json.Unmarshal(w1a, &res); err != nil {
				t.Fatal(err)
			}
			if res.Capacity == nil || res.Capacity.Shed == 0 {
				t.Fatalf("capacity plane never shed under the flash crowd: %+v", res.Capacity)
			}
		})
	}
}

// TestCapacityDisabledIsInert pins the inert-by-default contract at the
// scenario level: a nil Capacity config and a disabled (zero) one must
// produce byte-identical windowed results AND byte-identical enabled-obs
// snapshots — attaching the plane machinery without enabling it changes
// nothing.
func TestCapacityDisabledIsInert(t *testing.T) {
	run := func(cap *capacity.Config) (string, string) {
		cfg := shortScenario(FlashCrowd, 67)
		cfg.Capacity = cap
		cfg.Workers = 2
		nw := testNetwork(t, 67)
		s, err := NewScenario(nw, cfg)
		if err != nil {
			t.Fatalf("NewScenario: %v", err)
		}
		reg := obs.NewRegistry()
		wl := obs.NewWindowLog()
		s.Instrument(reg, wl)
		res, err := s.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		wb, err := json.Marshal(wl.Snapshot())
		if err != nil {
			t.Fatalf("marshal windows: %v", err)
		}
		return string(b), string(wb)
	}
	nilRes, nilWin := run(nil)
	zeroRes, zeroWin := run(&capacity.Config{})
	if nilRes != zeroRes {
		t.Fatal("disabled capacity config changed scenario output vs nil")
	}
	if nilWin != zeroWin {
		t.Fatal("disabled capacity config changed window series vs nil")
	}
}
