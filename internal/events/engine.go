// Package events is the deterministic discrete-event simulation engine:
// one timestamped priority queue onto which churn arrivals and departures,
// overlay-maintenance cycles, correlated fault bursts and query floods are
// all scheduled as interleaved events over a simulated horizon. The static
// trial engine (internal/experiments) takes independent snapshots; this
// engine is what expresses the time-dependent failure modes a production
// overlay actually faces — cascading churn, flash crowds on transiently
// popular terms, repair racing decay — and streams windowed metrics
// through the observability plane instead of end-of-trial aggregates.
//
// # Determinism contract
//
// The engine is schedule-invariant by construction:
//
//   - Events execute in (Time, Priority, sequence) order. The sequence
//     number is assigned at Schedule time from the single scheduling
//     goroutine, so the execution order is a pure function of what was
//     scheduled, never of heap internals or map iteration.
//   - Every event draws randomness from a stream derived by name from the
//     engine seed (the same rng.Derive trick churn.Timeline uses), so an
//     event's decisions depend only on (seed, event name) — adding,
//     removing or reordering *other* events never perturbs them.
//   - Handlers run sequentially on the engine goroutine. A handler may fan
//     work out through internal/parallel (per-item derived streams,
//     index-ordered reduction), which is how windowed query measurements
//     stay byte-identical at every worker count.
package events

import (
	"container/heap"
	"fmt"

	"querycentric/internal/obs"
	"querycentric/internal/rng"
)

// Priority orders events that share a timestamp: session transitions
// apply first, then correlated fault bursts, then maintenance (so failure
// detection sees the new liveness state), then query load (measuring the
// maintained overlay), and window closes last (reading a settled instant).
type Priority uint8

// Priorities in same-timestamp execution order.
const (
	PrioChurn Priority = iota
	PrioFault
	PrioMaint
	// PrioAdapt orders overlay-adaptation rounds (rewiring, replication)
	// after maintenance but before the instant's queries, so a query batch
	// at time t always runs over the topology adapted through time t.
	PrioAdapt
	PrioQuery
	PrioWindow
)

// Handler is one event's action. now is the event's timestamp; r is the
// event's private stream, derived from (engine seed, event name).
type Handler func(now int64, r *rng.Source) error

// event is one queue entry.
type event struct {
	time int64
	prio Priority
	seq  uint64
	name string
	fn   Handler
}

// eventHeap is a min-heap over (time, prio, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.time != b.time {
		return a.time < b.time
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is one deterministic event queue. It is single-goroutine: Schedule
// and Run must be called from the same goroutine (handlers may schedule
// follow-up events — that is how periodic cycles self-perpetuate).
type Engine struct {
	seed    uint64
	base    *rng.Source
	horizon int64
	now     int64
	queue   eventHeap
	seq     uint64
	running bool

	processed uint64

	// Obs handles; nil-safe, so the engine publishes unconditionally.
	scheduled *obs.Counter
	executed  *obs.Counter
	depth     *obs.Gauge
}

// New returns an engine for the simulated horizon (0, horizon]. Events are
// dispatched in timestamp order until the queue drains or the horizon
// passes.
func New(seed uint64, horizon int64) (*Engine, error) {
	if horizon <= 0 {
		return nil, fmt.Errorf("events: horizon must be positive, got %d", horizon)
	}
	return &Engine{
		seed:    seed,
		base:    rng.NewNamed(seed, "events/engine"),
		horizon: horizon,
	}, nil
}

// Instrument attaches engine counters (events_scheduled_total,
// events_executed_total, events_queue_depth) to reg; nil detaches.
func (e *Engine) Instrument(reg *obs.Registry) {
	if reg == nil {
		e.scheduled, e.executed, e.depth = nil, nil, nil
		return
	}
	e.scheduled = reg.Counter("events_scheduled_total")
	e.executed = reg.Counter("events_executed_total")
	e.depth = reg.Gauge("events_queue_depth")
}

// Now returns the engine's current simulated time (the timestamp of the
// event being dispatched, 0 before Run).
func (e *Engine) Now() int64 { return e.now }

// Horizon returns the simulated end time.
func (e *Engine) Horizon() int64 { return e.horizon }

// Processed returns how many events have executed.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the current queue depth.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule enqueues an event at time `at` with the given priority. The
// name must be unique per event (it derives the event's rng stream and
// labels scheduling errors); periodic events bake an index into it, e.g.
// "maint/42". Scheduling into the past — before the event currently being
// dispatched — is a bug in the caller and is rejected; scheduling beyond
// the horizon is allowed (the event is silently shed when Run ends).
func (e *Engine) Schedule(at int64, prio Priority, name string, fn Handler) error {
	if fn == nil {
		return fmt.Errorf("events: event %q scheduled with nil handler", name)
	}
	if at < e.now {
		return fmt.Errorf("events: event %q scheduled at t=%d, before current t=%d", name, at, e.now)
	}
	ev := &event{time: at, prio: prio, seq: e.seq, name: name, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	e.scheduled.Inc()
	return nil
}

// Run dispatches events in (time, priority, sequence) order until the
// queue is empty or the next event lies beyond the horizon. The first
// handler error aborts the run.
func (e *Engine) Run() error {
	if e.running {
		return fmt.Errorf("events: Run re-entered")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 {
		if e.queue[0].time > e.horizon {
			break // shed events stay queued, visible through Pending
		}
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.time
		r := e.base.Derive(ev.name)
		if err := ev.fn(ev.time, r); err != nil {
			return fmt.Errorf("events: %q at t=%d: %w", ev.name, ev.time, err)
		}
		e.processed++
		e.executed.Inc()
		e.depth.Set(int64(len(e.queue)))
	}
	e.now = e.horizon
	return nil
}
