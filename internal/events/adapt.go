package events

import (
	"fmt"

	"querycentric/internal/rng"
)

// ScheduleAdaptationRounds schedules a self-rescheduling adaptation tick:
// fn(round, now) runs at start, start+interval, ... at PrioAdapt — after
// the instant's maintenance, before its queries — until the next tick
// would pass the engine's horizon. This is how a query-centric overlay's
// adaptation loop (internal/adaptive.AdaptRound) enters simulated time:
// query batches observe the stream at PrioQuery, and the rounds scheduled
// here mutate topology and placement between them, preserving the
// phase-alternation contract because handlers never overlap.
//
// Rounds are numbered from 0 and named "adapt/<round>", so each gets its
// own derived stream; fn typically ignores it in favor of the adaptive
// system's internal per-(round, peer) streams.
func ScheduleAdaptationRounds(e *Engine, start, interval int64, fn func(round int, now int64) error) error {
	if interval < 1 {
		return fmt.Errorf("events: adaptation interval must be positive, got %d", interval)
	}
	if start < 0 {
		return fmt.Errorf("events: adaptation start must be non-negative, got %d", start)
	}
	round := 0
	var tick Handler
	tick = func(now int64, _ *rng.Source) error {
		if err := fn(round, now); err != nil {
			return err
		}
		next := now + interval
		if next > e.Horizon() {
			return nil
		}
		round++
		return e.Schedule(next, PrioAdapt, fmt.Sprintf("adapt/%d", round), tick)
	}
	if start > e.Horizon() {
		return nil
	}
	return e.Schedule(start, PrioAdapt, "adapt/0", tick)
}
