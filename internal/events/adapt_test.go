package events

import (
	"fmt"
	"testing"

	"querycentric/internal/rng"
)

// TestScheduleAdaptationRounds pins the adaptation-tick contract: rounds
// fire at start, start+interval, ... up to the horizon, numbered from
// zero, and a round at time t runs after that instant's maintenance but
// before its queries.
func TestScheduleAdaptationRounds(t *testing.T) {
	e, err := New(5, 100)
	if err != nil {
		t.Fatal(err)
	}
	var trace []string
	note := func(kind string) Handler {
		return func(now int64, _ *rng.Source) error {
			trace = append(trace, fmt.Sprintf("%s@%d", kind, now))
			return nil
		}
	}
	// Co-scheduled maintenance and queries at an adaptation instant.
	if err := e.Schedule(40, PrioMaint, "m", note("maint")); err != nil {
		t.Fatal(err)
	}
	if err := e.Schedule(40, PrioQuery, "q", note("query")); err != nil {
		t.Fatal(err)
	}
	rounds := []int{}
	err = ScheduleAdaptationRounds(e, 10, 30, func(round int, now int64) error {
		rounds = append(rounds, round)
		trace = append(trace, fmt.Sprintf("adapt%d@%d", round, now))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	wantRounds := []int{0, 1, 2, 3} // t = 10, 40, 70, 100
	if len(rounds) != len(wantRounds) {
		t.Fatalf("rounds %v, want %v", rounds, wantRounds)
	}
	for i, r := range rounds {
		if r != wantRounds[i] {
			t.Fatalf("rounds %v, want %v", rounds, wantRounds)
		}
	}
	want := []string{"adapt0@10", "maint@40", "adapt1@40", "query@40", "adapt2@70", "adapt3@100"}
	if len(trace) != len(want) {
		t.Fatalf("trace %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace %v, want %v", trace, want)
		}
	}
}

func TestScheduleAdaptationRoundsValidation(t *testing.T) {
	e, err := New(1, 50)
	if err != nil {
		t.Fatal(err)
	}
	fn := func(int, int64) error { return nil }
	if err := ScheduleAdaptationRounds(e, 0, 0, fn); err == nil {
		t.Error("zero interval accepted")
	}
	if err := ScheduleAdaptationRounds(e, -1, 10, fn); err == nil {
		t.Error("negative start accepted")
	}
	// A start beyond the horizon schedules nothing and is not an error.
	if err := ScheduleAdaptationRounds(e, 60, 10, fn); err != nil {
		t.Errorf("past-horizon start rejected: %v", err)
	}
	if e.Pending() != 0 {
		t.Errorf("past-horizon start queued %d events", e.Pending())
	}
}
