package events

import (
	"fmt"
	"testing"

	"querycentric/internal/obs"
	"querycentric/internal/rng"
)

func mustEngine(t *testing.T, seed uint64, horizon int64) *Engine {
	t.Helper()
	e, err := New(seed, horizon)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e
}

func TestEngineValidation(t *testing.T) {
	if _, err := New(1, 0); err == nil {
		t.Fatal("zero horizon accepted")
	}
	if _, err := New(1, -5); err == nil {
		t.Fatal("negative horizon accepted")
	}
	e := mustEngine(t, 1, 100)
	if err := e.Schedule(10, PrioQuery, "nil-handler", nil); err == nil {
		t.Fatal("nil handler accepted")
	}
}

func TestEngineOrdering(t *testing.T) {
	e := mustEngine(t, 7, 1000)
	var got []string
	rec := func(label string) Handler {
		return func(int64, *rng.Source) error {
			got = append(got, label)
			return nil
		}
	}
	// Scheduled deliberately out of execution order: later times first,
	// same-time events across priorities, same-time same-priority pairs
	// relying on scheduling sequence.
	if err := e.Schedule(50, PrioQuery, "e", rec("t50/query")); err != nil {
		t.Fatal(err)
	}
	if err := e.Schedule(10, PrioWindow, "d", rec("t10/window")); err != nil {
		t.Fatal(err)
	}
	if err := e.Schedule(10, PrioChurn, "a", rec("t10/churn-first")); err != nil {
		t.Fatal(err)
	}
	if err := e.Schedule(10, PrioChurn, "b", rec("t10/churn-second")); err != nil {
		t.Fatal(err)
	}
	if err := e.Schedule(10, PrioMaint, "c", rec("t10/maint")); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"t10/churn-first", "t10/churn-second", "t10/maint", "t10/window", "t50/query"}
	if len(got) != len(want) {
		t.Fatalf("executed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
	if e.Now() != 1000 {
		t.Fatalf("Now after Run = %d, want horizon 1000", e.Now())
	}
	if e.Processed() != 5 {
		t.Fatalf("Processed = %d, want 5", e.Processed())
	}
}

// TestEngineStreamsIndependent is the determinism keystone: an event's rng
// stream is a pure function of (seed, name), so scheduling extra events
// around it never changes what it observes.
func TestEngineStreamsIndependent(t *testing.T) {
	draw := func(withNoise bool) uint64 {
		e := mustEngine(t, 99, 1000)
		var got uint64
		if withNoise {
			for i := 0; i < 10; i++ {
				name := fmt.Sprintf("noise/%d", i)
				if err := e.Schedule(int64(i+1), PrioChurn, name, func(_ int64, r *rng.Source) error {
					r.Uint64()
					return nil
				}); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := e.Schedule(500, PrioQuery, "probe", func(_ int64, r *rng.Source) error {
			got = r.Uint64()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return got
	}
	bare, noisy := draw(false), draw(true)
	if bare != noisy {
		t.Fatalf("probe stream perturbed by unrelated events: %d vs %d", bare, noisy)
	}
	if bare == 0 {
		t.Fatal("probe never ran")
	}
}

func TestEngineSelfScheduling(t *testing.T) {
	e := mustEngine(t, 3, 100)
	ticks := 0
	var tick Handler
	tick = func(now int64, _ *rng.Source) error {
		ticks++
		return e.Schedule(now+10, PrioMaint, fmt.Sprintf("tick/%d", ticks), tick)
	}
	if err := e.Schedule(10, PrioMaint, "tick/0", tick); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// t=10,20,...,100 execute; the one scheduled for 110 is shed.
	if ticks != 10 {
		t.Fatalf("ticked %d times, want 10", ticks)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1 shed event", e.Pending())
	}
}

func TestEngineRejectsSchedulingIntoPast(t *testing.T) {
	e := mustEngine(t, 3, 100)
	var insideErr error
	if err := e.Schedule(50, PrioQuery, "late", func(now int64, _ *rng.Source) error {
		insideErr = e.Schedule(now-1, PrioQuery, "past", func(int64, *rng.Source) error { return nil })
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if insideErr == nil {
		t.Fatal("scheduling into the past accepted")
	}
}

func TestEngineHandlerErrorAborts(t *testing.T) {
	e := mustEngine(t, 3, 100)
	ran := false
	if err := e.Schedule(10, PrioChurn, "boom", func(int64, *rng.Source) error {
		return fmt.Errorf("synthetic failure")
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Schedule(20, PrioChurn, "after", func(int64, *rng.Source) error {
		ran = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err == nil {
		t.Fatal("handler error swallowed")
	}
	if ran {
		t.Fatal("events after a failed handler still executed")
	}
}

func TestEngineRunReentry(t *testing.T) {
	e := mustEngine(t, 3, 100)
	var reentry error
	if err := e.Schedule(10, PrioChurn, "re", func(int64, *rng.Source) error {
		reentry = e.Run()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if reentry == nil {
		t.Fatal("re-entrant Run accepted")
	}
}

func TestEngineInstrument(t *testing.T) {
	reg := obs.NewRegistry()
	e := mustEngine(t, 3, 100)
	e.Instrument(reg)
	for i := 0; i < 4; i++ {
		at := int64(10 * (i + 1))
		if err := e.Schedule(at, PrioQuery, fmt.Sprintf("q/%d", i), func(int64, *rng.Source) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	snap := map[string]int64{}
	for _, m := range reg.Snapshot().Metrics {
		snap[m.Name] = m.Value
	}
	if snap["events_scheduled_total"] != 4 || snap["events_executed_total"] != 4 {
		t.Fatalf("counters = %v, want 4 scheduled and 4 executed", snap)
	}
	if snap["events_queue_depth"] != 0 {
		t.Fatalf("queue depth = %d after drain, want 0", snap["events_queue_depth"])
	}
}
