package events

import (
	"fmt"
	"math"

	"querycentric/internal/capacity"
	"querycentric/internal/churn"
	"querycentric/internal/faults"
	"querycentric/internal/gnet"
	"querycentric/internal/obs"
	"querycentric/internal/parallel"
	"querycentric/internal/rng"
)

// The scenario layer turns the bare queue into named long-horizon
// workloads: it wires one overlay network, its maintenance loop, a churn
// timeline, a fault-burst schedule and a query load onto the engine, and
// measures *windowed* metrics — success rate, message cost, partition
// count, repair latency — instead of end-of-trial aggregates. Four
// canonical scenarios cover the failure modes the static trial engine
// cannot express: steady state (the oracle case), fault-burst + recovery,
// flash crowds on a transiently popular term, and diurnal load.

// Kind names a canonical scenario shape. It is descriptive metadata — the
// config fields drive behavior — but the constructors below keep the two
// in sync.
type Kind int

// Canonical scenario kinds.
const (
	SteadyState Kind = iota
	FaultRecovery
	FlashCrowd
	DiurnalLoad
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case SteadyState:
		return "steady-state"
	case FaultRecovery:
		return "fault-recovery"
	case FlashCrowd:
		return "flash-crowd"
	case DiurnalLoad:
		return "diurnal"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// FlashConfig shapes a flash crowd: between Start and End, query volume is
// multiplied by Boost and a fraction Frac of queries all chase one
// transiently popular object (the paper's Figure 5 population, compressed
// to a single term).
type FlashConfig struct {
	Start int64   `json:"start"`
	End   int64   `json:"end"`
	Frac  float64 `json:"frac"`
	Boost float64 `json:"boost"`
}

// Validate rejects malformed flash crowds.
func (f FlashConfig) Validate() error {
	switch {
	case f.Start < 0 || f.End <= f.Start:
		return fmt.Errorf("events: flash window [%d,%d) is empty or negative", f.Start, f.End)
	case math.IsNaN(f.Frac) || f.Frac < 0 || f.Frac > 1:
		return fmt.Errorf("events: flash Frac must be in [0,1], got %v", f.Frac)
	case math.IsNaN(f.Boost) || f.Boost <= 0:
		return fmt.Errorf("events: flash Boost must be positive, got %v", f.Boost)
	}
	return nil
}

// ScenarioConfig shapes one long-horizon simulation.
type ScenarioConfig struct {
	Kind Kind
	// Seed roots the engine's per-event streams and the query workload.
	Seed uint64
	// Duration is the simulated horizon in seconds; it must be a whole
	// number of windows.
	Duration int64
	// Window is the metrics-window length in seconds.
	Window int64
	// QueriesPerWindow is the base query volume per window (flash crowds
	// and diurnal modulation scale it).
	QueriesPerWindow int
	// BatchesPerWindow spreads each window's queries over this many query
	// events, so topology changes interleave with load inside a window.
	// Each batch fans its floods out through internal/parallel.
	BatchesPerWindow int
	// TTL bounds the measurement floods.
	TTL int
	// Workers bounds the per-batch flood fan-out (0 = GOMAXPROCS).
	// Results are byte-identical for every value.
	Workers int
	// Repair shapes the maintenance loop; Repair.Repair false disables
	// failure detection and rewiring (the no-maintenance arm).
	Repair gnet.RepairConfig
	// Churn, when non-nil, generates a session-churn timeline whose events
	// are scheduled onto the queue.
	Churn *churn.TimelineConfig
	// Bursts is the correlated-failure schedule (strictly increasing
	// times).
	Bursts []faults.Burst
	// Flash, when non-nil, adds a flash crowd.
	Flash *FlashConfig
	// DiurnalAmp modulates query volume sinusoidally over the horizon
	// (peak = base*(1+amp), trough = base*(1-amp)); 0 disables.
	DiurnalAmp float64
	// Capacity, when non-nil and enabled, attaches a bounded-ingress
	// overload plane to the network: floods and keepalives charge per-peer
	// queues, shedding policies drop overload, and query batches fold queue
	// state every Capacity.CommitEvery trials. Nil (or a disabled config)
	// leaves the run byte-identical to the unbounded engine.
	Capacity *capacity.Config
	// QueryRetries is how many extra flood attempts an unanswered (or
	// untimely) query makes, each a full-cost flood on its own derived
	// stream — the user-behavior feedback loop that makes overload
	// self-amplifying. 0 (the default) preserves single-attempt behavior.
	QueryRetries int
	// AnswerDeadlineS is the queueing-delay budget for a hit to count:
	// a query succeeds only if some answering peer's committed queue delay
	// is within the deadline. 0 defaults to Window. Only consulted when a
	// capacity plane is attached.
	AnswerDeadlineS int64
	// SeriesPrefix prefixes the windowed obs series names; empty uses
	// "events_".
	SeriesPrefix string
}

// Validate rejects schedules that cannot run.
func (c ScenarioConfig) Validate() error {
	switch {
	case c.Duration <= 0:
		return fmt.Errorf("events: Duration must be positive, got %d", c.Duration)
	case c.Window <= 0:
		return fmt.Errorf("events: Window must be positive, got %d", c.Window)
	case c.Duration%c.Window != 0:
		return fmt.Errorf("events: Duration %d is not a whole number of %d-second windows", c.Duration, c.Window)
	case c.QueriesPerWindow < 1:
		return fmt.Errorf("events: QueriesPerWindow must be at least 1, got %d", c.QueriesPerWindow)
	case c.BatchesPerWindow < 1:
		return fmt.Errorf("events: BatchesPerWindow must be at least 1, got %d", c.BatchesPerWindow)
	case c.TTL < 1:
		return fmt.Errorf("events: TTL must be at least 1, got %d", c.TTL)
	case math.IsNaN(c.DiurnalAmp) || c.DiurnalAmp < 0 || c.DiurnalAmp >= 1:
		return fmt.Errorf("events: DiurnalAmp must be in [0,1), got %v", c.DiurnalAmp)
	}
	if err := c.Repair.Validate(); err != nil {
		return err
	}
	if c.Churn != nil {
		if err := c.Churn.Validate(); err != nil {
			return err
		}
	}
	if err := faults.ValidateBursts(c.Bursts); err != nil {
		return err
	}
	if c.Flash != nil {
		if err := c.Flash.Validate(); err != nil {
			return err
		}
	}
	if c.Capacity != nil {
		if err := c.Capacity.Validate(); err != nil {
			return err
		}
	}
	if c.QueryRetries < 0 {
		return fmt.Errorf("events: QueryRetries must be >= 0, got %d", c.QueryRetries)
	}
	if c.AnswerDeadlineS < 0 {
		return fmt.Errorf("events: AnswerDeadlineS must be >= 0, got %d", c.AnswerDeadlineS)
	}
	return nil
}

// defaultScenario is the shared base for the canonical constructors: two
// simulated hours in ten-minute windows, 80 TTL-3 known-item queries per
// window spread over four batches, one-minute maintenance rounds.
func defaultScenario(kind Kind, seed uint64) ScenarioConfig {
	rp := gnet.DefaultRepairConfig(seed)
	rp.PingInterval = 60
	return ScenarioConfig{
		Kind:             kind,
		Seed:             seed,
		Duration:         2 * 3600,
		Window:           600,
		QueriesPerWindow: 80,
		BatchesPerWindow: 4,
		TTL:              3,
		Repair:           rp,
	}
}

// SteadyStateScenario is the oracle case: no churn, no faults — windowed
// success must agree with the static trial engine within tolerance.
func SteadyStateScenario(seed uint64) ScenarioConfig {
	return defaultScenario(SteadyState, seed)
}

// FaultRecoveryScenario crashes frac of the population at burstTime and
// measures the recovery curve.
func FaultRecoveryScenario(seed uint64, burstTime int64, frac float64) ScenarioConfig {
	cfg := defaultScenario(FaultRecovery, seed)
	cfg.Bursts = []faults.Burst{{Time: burstTime, Frac: frac}}
	return cfg
}

// FlashCrowdScenario concentrates a mid-run load spike on one transiently
// popular object: 3x volume, 60% of queries on the flash term, for the
// middle two windows.
func FlashCrowdScenario(seed uint64) ScenarioConfig {
	cfg := defaultScenario(FlashCrowd, seed)
	cfg.Flash = &FlashConfig{Start: 3600, End: 3600 + 1200, Frac: 0.6, Boost: 3}
	return cfg
}

// DiurnalScenario modulates query volume sinusoidally over the horizon
// (one full day compressed into the run), with background churn.
func DiurnalScenario(seed uint64) ScenarioConfig {
	cfg := defaultScenario(DiurnalLoad, seed)
	cfg.DiurnalAmp = 0.6
	tl := churn.DefaultTimelineConfig(seed)
	tl.Duration = cfg.Duration
	cfg.Churn = &tl
	return cfg
}

// Window is one closed metrics window.
type Window struct {
	Start int64 `json:"start"`
	End   int64 `json:"end"`
	// Queries and Hits count the window's known-item floods and how many
	// returned at least one timely result; Success is their ratio.
	Queries int     `json:"queries"`
	Hits    int     `json:"hits"`
	Success float64 `json:"success"`
	// Messages counts query descriptors transmitted; MsgPerQuery is the
	// per-flood mean.
	Messages    int64   `json:"messages"`
	MsgPerQuery float64 `json:"msg_per_query"`
	// OnlineFrac and MeanDegree describe the population at window close
	// (ghost edges count toward degree — the peer still believes in them).
	OnlineFrac float64 `json:"online_frac"`
	MeanDegree float64 `json:"mean_degree"`
	// Partitions is the number of connected components among online peers
	// at window close (1 = healthy, higher = fragmentation).
	Partitions int `json:"partitions"`
	// Repaired counts peers whose repair-relevant degree returned to
	// target during the window; RepairLatency is their mean
	// deficit-to-restoration time in seconds (0 when none).
	Repaired      int     `json:"repaired"`
	RepairLatency float64 `json:"repair_latency_s"`
	// Capacity-plane deltas for the window, zero (and omitted from JSON)
	// when no plane is attached: messages shed by bounded queues, the shed
	// fraction of all admission attempts, and breaker open transitions.
	Shed         int64   `json:"shed,omitempty"`
	ShedFrac     float64 `json:"shed_frac,omitempty"`
	BreakerOpens int64   `json:"breaker_opens,omitempty"`
}

// ScenarioResult is one scenario run's windowed output.
type ScenarioResult struct {
	Kind            string           `json:"kind"`
	Peers           int              `json:"peers"`
	TTL             int              `json:"ttl"`
	EventsProcessed uint64           `json:"events_processed"`
	ChurnEvents     int              `json:"churn_events"`
	Windows         []Window         `json:"windows"`
	RepairStats     gnet.RepairStats `json:"repair_stats"`
	// Capacity is the overload plane's end-of-run tallies; nil (omitted)
	// when no plane was attached.
	Capacity *capacity.Stats `json:"capacity,omitempty"`
}

// Scenario is one configured run: an engine, a network under maintenance,
// and the windowed accumulators.
type Scenario struct {
	cfg ScenarioConfig
	nw  *gnet.Network
	m   *gnet.Maintainer
	eng *Engine
	tl  *churn.Timeline

	qbase *rng.Source // query workload stream family

	// capPlane is the attached overload plane (nil when disabled); lastCap
	// is its stats snapshot at the previous window close, for deltas.
	capPlane *capacity.Plane
	lastCap  capacity.Stats

	flashCriteria string

	// Current-window accumulators, reset at each window close.
	winQueries  int
	winHits     int
	winMessages int64
	winRepaired int
	winLatency  int64

	// deficitSince[id] is when peer id's repair-relevant degree fell below
	// target (-1 = none). Restoration during a window feeds the window's
	// repair-latency metric.
	deficitSince []int64

	windows []Window
	wlog    *obs.WindowLog
	prefix  string
}

// NewScenario wires cfg onto nw: builds the maintenance loop (seeded from
// the churn timeline's initial liveness when churn is configured) and
// schedules every event of the run — churn transitions, fault bursts,
// maintenance rounds, query batches and window closes.
func NewScenario(nw *gnet.Network, cfg ScenarioConfig) (*Scenario, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(nw.Peers)
	eng, err := New(cfg.Seed, cfg.Duration)
	if err != nil {
		return nil, err
	}
	s := &Scenario{
		cfg:          cfg,
		nw:           nw,
		eng:          eng,
		qbase:        rng.NewNamed(cfg.Seed, "events/queries"),
		deficitSince: make([]int64, n),
		prefix:       cfg.SeriesPrefix,
	}
	if s.prefix == "" {
		s.prefix = "events_"
	}
	for i := range s.deficitSince {
		s.deficitSince[i] = -1
	}

	var initial []bool
	if cfg.Churn != nil {
		tcfg := *cfg.Churn
		tcfg.Duration = cfg.Duration
		tl, err := churn.GenerateTimeline(tcfg, n)
		if err != nil {
			return nil, err
		}
		s.tl = tl
		initial = tl.Initial
	}
	m, err := gnet.NewMaintainer(nw, cfg.Repair, initial)
	if err != nil {
		return nil, err
	}
	s.m = m
	if cfg.Capacity != nil {
		pl, err := capacity.New(*cfg.Capacity, n)
		if err != nil {
			return nil, err
		}
		// A disabled config yields an inert plane; leave it detached so the
		// run stays byte-identical to the unbounded engine.
		if pl.Enabled() {
			nw.SetCapacity(pl)
			s.capPlane = pl
		}
	}
	if cfg.Flash != nil {
		s.flashCriteria = pickFlashObject(nw, cfg.Seed)
	}
	if err := s.schedule(); err != nil {
		return nil, err
	}
	return s, nil
}

// Instrument attaches the observability plane: engine counters into reg,
// windowed series into wl (either may be nil). The network's own flood and
// maintenance counters attach through Network.Instrument as usual.
func (s *Scenario) Instrument(reg *obs.Registry, wl *obs.WindowLog) {
	s.eng.Instrument(reg)
	s.capPlane.Instrument(reg)
	s.wlog = wl
}

// CapacityStats exposes the overload plane's committed tallies (zero when
// no plane is attached).
func (s *Scenario) CapacityStats() capacity.Stats { return s.capPlane.Stats() }

// Engine exposes the underlying queue (for diagnostics and tests).
func (s *Scenario) Engine() *Engine { return s.eng }

// pickFlashObject deterministically selects the transiently popular object
// a flash crowd chases: a library entry of a deterministically drawn peer.
func pickFlashObject(nw *gnet.Network, seed uint64) string {
	r := rng.NewNamed(seed, "events/flash")
	n := len(nw.Peers)
	for tries := 0; tries < 4*n; tries++ {
		p := nw.Peers[r.Intn(n)]
		if len(p.Library) > 0 {
			return p.Library[r.Intn(len(p.Library))].Name
		}
	}
	return ""
}

// schedule enqueues every event of the run.
func (s *Scenario) schedule() error {
	cfg := s.cfg

	// Churn transitions, one event each, in timeline order.
	if s.tl != nil {
		for i, ev := range s.tl.Events {
			ev := ev
			name := fmt.Sprintf("churn/%d", i)
			err := s.eng.Schedule(ev.Time, PrioChurn, name, func(now int64, _ *rng.Source) error {
				var err error
				if ev.Up {
					err = s.m.PeerUp(int(ev.Peer), now)
				} else {
					err = s.m.PeerDown(int(ev.Peer), ev.Polite)
				}
				if err != nil {
					return err
				}
				s.noteDeficits(now)
				return nil
			})
			if err != nil {
				return err
			}
		}
	}

	// Correlated fault bursts. Victims are a pure function of (seed, burst
	// time, population); politeness draws from the event's own stream.
	for _, b := range cfg.Bursts {
		b := b
		name := fmt.Sprintf("burst/%d", b.Time)
		err := s.eng.Schedule(b.Time, PrioFault, name, func(now int64, r *rng.Source) error {
			for _, id := range b.Victims(cfg.Seed, len(s.nw.Peers)) {
				if err := s.m.PeerDown(id, r.Bool(b.Polite)); err != nil {
					return err
				}
			}
			s.noteDeficits(now)
			return nil
		})
		if err != nil {
			return err
		}
	}

	// Maintenance rounds, self-rescheduling every PingInterval. The
	// no-repair arm skips them entirely (Tick would be a no-op).
	if cfg.Repair.Repair {
		interval := cfg.Repair.PingInterval
		var tick func(now int64, r *rng.Source) error
		round := 0
		tick = func(now int64, _ *rng.Source) error {
			// Service time elapses before the round's pings charge the
			// queues; the round's admissions fold immediately after.
			s.capPlane.Advance(now)
			s.m.Tick(now)
			s.capPlane.Commit(now)
			s.noteDeficits(now)
			next := now + interval
			if next > cfg.Duration {
				return nil
			}
			round++
			return s.eng.Schedule(next, PrioMaint, fmt.Sprintf("maint/%d", round), tick)
		}
		if interval <= cfg.Duration {
			if err := s.eng.Schedule(interval, PrioMaint, "maint/0", tick); err != nil {
				return err
			}
		}
	}

	// Query batches: each window's volume spread over BatchesPerWindow
	// events strictly inside the window, then modulated by the diurnal
	// cycle and any flash crowd.
	nWindows := int(cfg.Duration / cfg.Window)
	for w := 0; w < nWindows; w++ {
		wStart := int64(w) * cfg.Window
		for b := 0; b < cfg.BatchesPerWindow; b++ {
			at := wStart + int64(b+1)*cfg.Window/int64(cfg.BatchesPerWindow+1)
			count := s.batchSize(at, w, b)
			if count == 0 {
				continue
			}
			name := fmt.Sprintf("query/%d/%d", w, b)
			err := s.eng.Schedule(at, PrioQuery, name, func(now int64, _ *rng.Source) error {
				return s.queryBatch(now, name, count)
			})
			if err != nil {
				return err
			}
		}
	}

	// Window closes, after everything else at the boundary instant.
	for w := 1; w <= nWindows; w++ {
		w := w
		at := int64(w) * cfg.Window
		name := fmt.Sprintf("window/%d", w)
		err := s.eng.Schedule(at, PrioWindow, name, func(now int64, _ *rng.Source) error {
			s.closeWindow(now-cfg.Window, now)
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// batchSize is the query count of batch b of window w: the base per-batch
// share, scaled by the diurnal cycle at the batch instant and by a flash
// crowd's volume boost.
func (s *Scenario) batchSize(at int64, w, b int) int {
	cfg := s.cfg
	base := cfg.QueriesPerWindow / cfg.BatchesPerWindow
	if b < cfg.QueriesPerWindow%cfg.BatchesPerWindow {
		base++
	}
	scale := 1.0
	if cfg.DiurnalAmp > 0 {
		// One full cycle over the horizon, peaking at the quarter point.
		phase := 2 * math.Pi * float64(at) / float64(cfg.Duration)
		scale *= 1 + cfg.DiurnalAmp*math.Sin(phase)
	}
	if cfg.Flash != nil && at >= cfg.Flash.Start && at < cfg.Flash.End {
		scale *= cfg.Flash.Boost
	}
	return int(math.Round(float64(base) * scale))
}

// flashFrac returns the fraction of queries redirected at the flash object
// at time `at` (0 outside the flash window).
func (s *Scenario) flashFrac(at int64) float64 {
	f := s.cfg.Flash
	if f == nil || s.flashCriteria == "" || at < f.Start || at >= f.End {
		return 0
	}
	return f.Frac
}

// queryBatch floods count known-item queries at sim-time now, fanned out
// through the parallel engine: each trial owns a stream derived from the
// batch name, so results are byte-identical at every worker count.
//
// Under an attached capacity plane the batch runs in sub-batches of
// Capacity.CommitEvery trials with a queue-state fold between them:
// admission inside a sub-batch is optimistic against the phase-frozen
// depths (so a queue can overshoot by at most the sub-batch size), and
// every fold is keyed by trial index, not scheduling order, so the split
// is worker-invariant. An unanswered — or untimely — query retries up to
// QueryRetries extra floods on its own derived streams.
func (s *Scenario) queryBatch(now int64, name string, count int) error {
	online := s.m.Online()
	flashFrac := s.flashFrac(now)
	pl := s.capPlane
	pl.Advance(now)
	deadline := s.answerDeadline()
	type trial struct {
		hit  bool
		msgs int
	}
	runTrial := func(ctx *gnet.FloodCtx, q int) (trial, error) {
		r := s.qbase.Derive(fmt.Sprintf("%s/trial/%d", name, q))
		criteria := ""
		if flashFrac > 0 && r.Bool(flashFrac) {
			criteria = s.flashCriteria
		}
		origin := pickOnline(s.nw, online, r, -1)
		if origin < 0 {
			return trial{}, nil
		}
		if criteria == "" {
			target := pickOnline(s.nw, online, r, origin)
			if target < 0 {
				return trial{}, nil
			}
			lib := s.nw.Peers[target].Library
			criteria = lib[r.Intn(len(lib))].Name
		}
		var t trial
		for a := 0; a <= s.cfg.QueryRetries; a++ {
			ar := r
			if a > 0 {
				ar = s.qbase.Derive(fmt.Sprintf("%s/trial/%d/retry/%d", name, q, a))
			}
			fr, err := ctx.Flood(origin, criteria, s.cfg.TTL, ar)
			if err != nil {
				break // flood errors count as misses
			}
			t.msgs += fr.Messages
			if s.timelyHit(fr, deadline) {
				t.hit = true
				break
			}
		}
		return t, nil
	}
	stride := count
	if ce := pl.Config().CommitEvery; pl.Enabled() && ce > 0 && ce < stride {
		stride = ce
	}
	for lo := 0; lo < count; lo += stride {
		n := stride
		if lo+n > count {
			n = count - lo
		}
		results, err := parallel.MapWith(parallel.Workers(s.cfg.Workers), n,
			func() *gnet.FloodCtx { return s.nw.NewFloodCtx() },
			func(ctx *gnet.FloodCtx, j int) (trial, error) {
				return runTrial(ctx, lo+j)
			})
		if err != nil {
			return err
		}
		for _, t := range results {
			s.winQueries++
			if t.hit {
				s.winHits++
			}
			s.winMessages += int64(t.msgs)
		}
		pl.Commit(now)
	}
	return nil
}

// answerDeadline is the queueing-delay budget for a hit to count.
func (s *Scenario) answerDeadline() int64 {
	if s.cfg.AnswerDeadlineS > 0 {
		return s.cfg.AnswerDeadlineS
	}
	return s.cfg.Window
}

// timelyHit reports whether a flood's results arrive within the deadline:
// at least one answering peer whose committed queue backlog services the
// query in time. Without a capacity plane every hit is instant (the
// unbounded assumption the plane exists to interrogate).
func (s *Scenario) timelyHit(fr *gnet.FloodResult, deadline int64) bool {
	if fr.TotalResults == 0 {
		return false
	}
	if s.capPlane == nil {
		return true
	}
	for _, h := range fr.Hits {
		if s.capPlane.QueueDelayS(h.PeerID) <= deadline {
			return true
		}
	}
	return false
}

// pickOnline draws an online, non-empty-library peer distinct from exclude
// (bounded rejection sampling; -1 when none found).
func pickOnline(nw *gnet.Network, online []bool, r *rng.Source, exclude int) int {
	n := len(nw.Peers)
	for tries := 0; tries < 4*n; tries++ {
		id := r.Intn(n)
		if id == exclude || !online[id] || len(nw.Peers[id].Library) == 0 {
			continue
		}
		return id
	}
	return -1
}

// liveDegree is peer id's ground-truth repair-relevant degree: connections
// to currently online peers, restricted to the class repair maintains
// (ultrapeer links on two-tier topologies). Unlike Maintainer.RepairDegree
// it does not count ghost edges — a crash opens a deficit here immediately,
// even though the peer itself won't notice until failure detection fires.
func (s *Scenario) liveDegree(id int) int {
	online := s.m.Online()
	d := 0
	for _, nb := range s.nw.Peers[id].Neighbors {
		if !online[nb] {
			continue
		}
		if s.nw.Config.UltrapeerFrac > 0 && !s.nw.Peers[nb].Ultrapeer {
			continue
		}
		d++
	}
	return d
}

// noteDeficits updates the per-peer degree-deficit clocks after a
// topology-affecting event. A deficit opens when an online peer's live
// degree (ghost edges excluded) drops below target — at the crash itself —
// and closes when maintenance restores the target with live edges, so the
// recorded latency spans detection plus repair.
func (s *Scenario) noteDeficits(now int64) {
	for id := range s.nw.Peers {
		if !s.m.Online()[id] {
			s.deficitSince[id] = -1
			continue
		}
		deficit := s.liveDegree(id) < s.m.TargetDegree(id)
		switch {
		case deficit && s.deficitSince[id] < 0:
			s.deficitSince[id] = now
		case !deficit && s.deficitSince[id] >= 0:
			s.winRepaired++
			s.winLatency += now - s.deficitSince[id]
			s.deficitSince[id] = -1
		}
	}
}

// closeWindow freezes the current window's metrics and resets the
// accumulators.
func (s *Scenario) closeWindow(start, end int64) {
	w := Window{
		Start:    start,
		End:      end,
		Queries:  s.winQueries,
		Hits:     s.winHits,
		Messages: s.winMessages,
		Repaired: s.winRepaired,
	}
	if w.Queries > 0 {
		w.Success = float64(w.Hits) / float64(w.Queries)
		w.MsgPerQuery = float64(w.Messages) / float64(w.Queries)
	}
	if w.Repaired > 0 {
		w.RepairLatency = float64(s.winLatency) / float64(w.Repaired)
	}
	online := s.m.Online()
	n := len(s.nw.Peers)
	up, degSum := 0, 0
	for id, ok := range online {
		if ok {
			up++
			degSum += len(s.nw.Peers[id].Neighbors)
		}
	}
	if n > 0 {
		w.OnlineFrac = float64(up) / float64(n)
	}
	if up > 0 {
		w.MeanDegree = float64(degSum) / float64(up)
	}
	w.Partitions = onlinePartitions(s.nw, online)
	if s.capPlane != nil {
		s.capPlane.Advance(end)
		st := s.capPlane.Stats()
		w.Shed = st.Shed - s.lastCap.Shed
		w.BreakerOpens = st.BreakerOpens - s.lastCap.BreakerOpens
		if att := w.Shed + (st.Enqueued - s.lastCap.Enqueued); att > 0 {
			w.ShedFrac = float64(w.Shed) / float64(att)
		}
		s.lastCap = st
	}
	s.windows = append(s.windows, w)

	s.wlog.Add(s.prefix+"success", start, end, w.Success)
	s.wlog.Add(s.prefix+"msg_per_query", start, end, w.MsgPerQuery)
	s.wlog.Add(s.prefix+"online_frac", start, end, w.OnlineFrac)
	s.wlog.Add(s.prefix+"mean_degree", start, end, w.MeanDegree)
	s.wlog.Add(s.prefix+"partitions", start, end, float64(w.Partitions))
	s.wlog.Add(s.prefix+"repair_latency_s", start, end, w.RepairLatency)
	s.wlog.Add(s.prefix+"queries", start, end, float64(w.Queries))
	// The shed series only exists when the plane is attached, keeping
	// capacity-disabled window logs byte-identical to the unbounded engine.
	if s.capPlane != nil {
		s.wlog.Add(s.prefix+"shed_frac", start, end, w.ShedFrac)
	}

	s.winQueries, s.winHits, s.winMessages = 0, 0, 0
	s.winRepaired, s.winLatency = 0, 0
}

// onlinePartitions counts connected components of the subgraph induced by
// online peers (edges to offline peers don't carry queries).
func onlinePartitions(nw *gnet.Network, online []bool) int {
	n := len(nw.Peers)
	seen := make([]bool, n)
	parts := 0
	var stack []int
	for v := 0; v < n; v++ {
		if !online[v] || seen[v] {
			continue
		}
		parts++
		seen[v] = true
		stack = append(stack[:0], v)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range nw.Peers[u].Neighbors {
				if online[w] && !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
	}
	return parts
}

// Run executes the scenario to the horizon and returns the windowed
// result.
func (s *Scenario) Run() (*ScenarioResult, error) {
	if err := s.eng.Run(); err != nil {
		return nil, err
	}
	res := &ScenarioResult{
		Kind:            s.cfg.Kind.String(),
		Peers:           len(s.nw.Peers),
		TTL:             s.cfg.TTL,
		EventsProcessed: s.eng.Processed(),
		Windows:         s.windows,
		RepairStats:     s.m.Stats(),
	}
	if s.tl != nil {
		res.ChurnEvents = len(s.tl.Events)
	}
	if s.capPlane != nil {
		st := s.capPlane.Stats()
		res.Capacity = &st
	}
	return res, nil
}
