package events

import (
	"encoding/json"
	"fmt"
	"testing"

	"querycentric/internal/catalog"
	"querycentric/internal/churn"
	"querycentric/internal/faults"
	"querycentric/internal/gnet"
	"querycentric/internal/obs"
	"querycentric/internal/parallel"
	"querycentric/internal/rng"
)

// testNetwork builds a small populated two-tier overlay (fresh per call —
// scenarios mutate topology).
func testNetwork(t *testing.T, seed uint64) *gnet.Network {
	t.Helper()
	cat, err := catalog.Build(catalog.Config{
		Seed:                seed,
		Peers:               120,
		UniqueObjects:       2500,
		ReplicaAlpha:        2.45,
		VariantProb:         0.08,
		NonSpecificPeerFrac: 0.05,
	})
	if err != nil {
		t.Fatalf("catalog.Build: %v", err)
	}
	nw, err := gnet.NewFromCatalog(gnet.DefaultConfig(seed), cat)
	if err != nil {
		t.Fatalf("NewFromCatalog: %v", err)
	}
	return nw
}

// shortScenario shrinks the canonical config to CI scale: one simulated
// hour, six ten-minute windows, 40 queries per window.
func shortScenario(kind Kind, seed uint64) ScenarioConfig {
	cfg := defaultScenario(kind, seed)
	cfg.Duration = 3600
	cfg.QueriesPerWindow = 40
	return cfg
}

func runScenario(t *testing.T, nw *gnet.Network, cfg ScenarioConfig) *ScenarioResult {
	t.Helper()
	s, err := NewScenario(nw, cfg)
	if err != nil {
		t.Fatalf("NewScenario: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestScenarioConfigValidate(t *testing.T) {
	if err := SteadyStateScenario(1).Validate(); err != nil {
		t.Fatalf("canonical steady-state config invalid: %v", err)
	}
	if err := FaultRecoveryScenario(1, 3600, 0.3).Validate(); err != nil {
		t.Fatalf("canonical fault-recovery config invalid: %v", err)
	}
	if err := FlashCrowdScenario(1).Validate(); err != nil {
		t.Fatalf("canonical flash-crowd config invalid: %v", err)
	}
	if err := DiurnalScenario(1).Validate(); err != nil {
		t.Fatalf("canonical diurnal config invalid: %v", err)
	}
	bad := []func(*ScenarioConfig){
		func(c *ScenarioConfig) { c.Duration = 0 },
		func(c *ScenarioConfig) { c.Window = 0 },
		func(c *ScenarioConfig) { c.Duration = 3601 }, // not a whole window count
		func(c *ScenarioConfig) { c.QueriesPerWindow = 0 },
		func(c *ScenarioConfig) { c.BatchesPerWindow = 0 },
		func(c *ScenarioConfig) { c.TTL = 0 },
		func(c *ScenarioConfig) { c.DiurnalAmp = 1.5 },
		func(c *ScenarioConfig) { c.Repair.PingInterval = 0 },
		func(c *ScenarioConfig) { c.Bursts = []faults.Burst{{Time: 0, Frac: 0.5}} },
		func(c *ScenarioConfig) { c.Flash = &FlashConfig{Start: 100, End: 50, Frac: 0.5, Boost: 2} },
		func(c *ScenarioConfig) {
			tl := churn.DefaultTimelineConfig(1)
			tl.MeanOnline = 0
			c.Churn = &tl
		},
	}
	for i, mutate := range bad {
		c := SteadyStateScenario(1)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: invalid config passed Validate", i)
		}
	}
}

// staticSuccess is the oracle: the static trial engine's measurement loop
// (independent known-item floods on the untouched overlay), on its own
// stream family.
func staticSuccess(t *testing.T, nw *gnet.Network, seed uint64, queries, ttl int) float64 {
	t.Helper()
	base := rng.NewNamed(seed, "events/test/static-oracle")
	found, err := parallel.MapWith(parallel.Workers(0), queries,
		func() *gnet.FloodCtx { return nw.NewFloodCtx() },
		func(ctx *gnet.FloodCtx, q int) (bool, error) {
			r := base.Derive(fmt.Sprintf("trial/%d", q))
			n := len(nw.Peers)
			origin, target := r.Intn(n), r.Intn(n)
			for len(nw.Peers[target].Library) == 0 || target == origin {
				target = r.Intn(n)
			}
			lib := nw.Peers[target].Library
			fr, err := ctx.Flood(origin, lib[r.Intn(len(lib))].Name, ttl, r)
			return err == nil && fr.TotalResults > 0, nil
		})
	if err != nil {
		t.Fatalf("static floods: %v", err)
	}
	hits := 0
	for _, f := range found {
		if f {
			hits++
		}
	}
	return float64(hits) / float64(queries)
}

// TestSteadyStateMatchesStaticOracle is the acceptance gate for the event
// engine: with no churn and no faults, windowed success must agree with
// the static trial engine within the documented tolerance (0.05 — both
// sides are binomial samples of the same population success rate).
func TestSteadyStateMatchesStaticOracle(t *testing.T) {
	const seed = 31
	cfg := shortScenario(SteadyState, seed)
	res := runScenario(t, testNetwork(t, seed), cfg)

	if len(res.Windows) != 6 {
		t.Fatalf("got %d windows, want 6", len(res.Windows))
	}
	sum := 0.0
	for _, w := range res.Windows {
		if w.Queries == 0 {
			t.Fatalf("window [%d,%d) measured no queries", w.Start, w.End)
		}
		if w.OnlineFrac != 1 {
			t.Fatalf("steady state lost peers: online frac %v", w.OnlineFrac)
		}
		if w.Partitions != 1 {
			t.Fatalf("steady state fragmented: %d partitions", w.Partitions)
		}
		sum += w.Success
	}
	eventMean := sum / float64(len(res.Windows))

	oracle := staticSuccess(t, testNetwork(t, seed), seed, 240, cfg.TTL)
	if diff := eventMean - oracle; diff > 0.05 || diff < -0.05 {
		t.Fatalf("event-engine steady-state success %.3f vs static oracle %.3f: |diff| > 0.05", eventMean, oracle)
	}
}

// TestScenarioDeterministicAndWorkerInvariant marshals the full windowed
// result and requires byte-identical output across a rerun and across
// worker counts — the schedule-invariance contract.
func TestScenarioDeterministicAndWorkerInvariant(t *testing.T) {
	run := func(workers int) []byte {
		cfg := shortScenario(FaultRecovery, 47)
		cfg.Bursts = []faults.Burst{{Time: 1500, Frac: 0.3}}
		cfg.Workers = workers
		res := runScenario(t, testNetwork(t, 47), cfg)
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	w1a, w1b, w8 := run(1), run(1), run(8)
	if string(w1a) != string(w1b) {
		t.Fatal("identical runs diverged")
	}
	if string(w1a) != string(w8) {
		t.Fatal("worker count changed windowed scenario output")
	}
}

// TestFaultRecoveryCurve drives the headline scenario: a correlated 30%
// crash burst must dent windowed success, and the maintained overlay must
// climb back while the unmaintained one stays degraded.
func TestFaultRecoveryCurve(t *testing.T) {
	const seed = 53
	run := func(repair bool) *ScenarioResult {
		cfg := shortScenario(FaultRecovery, seed)
		cfg.Bursts = []faults.Burst{{Time: 1200, Frac: 0.3}}
		cfg.Repair.Repair = repair
		return runScenario(t, testNetwork(t, seed), cfg)
	}
	with, without := run(true), run(false)

	pre := (with.Windows[0].Success + with.Windows[1].Success) / 2
	last := len(with.Windows) - 1
	recovered := (with.Windows[last-1].Success + with.Windows[last].Success) / 2
	degraded := (without.Windows[last-1].Success + without.Windows[last].Success) / 2

	if pre < 0.5 {
		t.Fatalf("pre-burst success %.3f implausibly low", pre)
	}
	for _, res := range []*ScenarioResult{with, without} {
		if f := res.Windows[2].OnlineFrac; f > 0.75 || f < 0.6 {
			t.Fatalf("post-burst online frac %.3f, want ~0.7", f)
		}
	}
	if recovered < degraded {
		t.Fatalf("repair arm (%.3f) ended below no-repair arm (%.3f)", recovered, degraded)
	}
	if recovered < 0.9*pre {
		t.Fatalf("repaired success %.3f never recovered toward pre-burst %.3f", recovered, pre)
	}
	if with.RepairStats.RepairSuccesses == 0 {
		t.Fatal("repair arm recorded no successful repairs")
	}
	if without.RepairStats.RepairSuccesses != 0 {
		t.Fatal("no-repair arm repaired edges")
	}
	// The burst opens degree deficits that maintenance then closes: the
	// repair-latency metric must have fired after the burst.
	repairedAfterBurst := 0
	for _, w := range with.Windows[2:] {
		repairedAfterBurst += w.Repaired
	}
	if repairedAfterBurst == 0 {
		t.Fatal("no degree restorations recorded after the burst")
	}
}

// TestFlashCrowdShapesLoad checks the volume boost and the windowed series
// plumbing into the obs plane.
func TestFlashCrowdShapesLoad(t *testing.T) {
	const seed = 61
	cfg := shortScenario(FlashCrowd, seed)
	cfg.Flash = &FlashConfig{Start: 1200, End: 2400, Frac: 0.6, Boost: 3}

	nw := testNetwork(t, seed)
	s, err := NewScenario(nw, cfg)
	if err != nil {
		t.Fatalf("NewScenario: %v", err)
	}
	reg := obs.NewRegistry()
	wl := obs.NewWindowLog()
	s.Instrument(reg, wl)
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	base := res.Windows[0].Queries
	for _, w := range res.Windows {
		inFlash := w.Start >= cfg.Flash.Start && w.End <= cfg.Flash.End
		if inFlash && w.Queries < 2*base {
			t.Fatalf("flash window [%d,%d) saw %d queries, want >= %d", w.Start, w.End, w.Queries, 2*base)
		}
		if !inFlash && w.Queries != base {
			t.Fatalf("off-flash window [%d,%d) saw %d queries, want %d", w.Start, w.End, w.Queries, base)
		}
	}

	series := map[string]int{}
	for _, ws := range wl.Snapshot() {
		series[ws.Name] = len(ws.Points)
	}
	for _, name := range []string{"events_success", "events_msg_per_query", "events_partitions", "events_queries"} {
		if series[name] != len(res.Windows) {
			t.Fatalf("series %q has %d points, want %d (all: %v)", name, series[name], len(res.Windows), series)
		}
	}
	snap := map[string]int64{}
	for _, m := range reg.Snapshot().Metrics {
		snap[m.Name] = m.Value
	}
	if snap["events_executed_total"] != int64(res.EventsProcessed) {
		t.Fatalf("events_executed_total = %d, want %d", snap["events_executed_total"], res.EventsProcessed)
	}
}

// TestDiurnalLoadVaries checks the sinusoidal volume modulation: peak
// windows above base, trough windows below.
func TestDiurnalLoadVaries(t *testing.T) {
	const seed = 71
	cfg := shortScenario(DiurnalLoad, seed)
	cfg.DiurnalAmp = 0.6
	cfg.Churn = nil // isolate the load shape
	res := runScenario(t, testNetwork(t, seed), cfg)

	minQ, maxQ := res.Windows[0].Queries, res.Windows[0].Queries
	for _, w := range res.Windows {
		if w.Queries < minQ {
			minQ = w.Queries
		}
		if w.Queries > maxQ {
			maxQ = w.Queries
		}
	}
	if maxQ <= cfg.QueriesPerWindow || minQ >= cfg.QueriesPerWindow {
		t.Fatalf("diurnal modulation flat: min %d, max %d around base %d", minQ, maxQ, cfg.QueriesPerWindow)
	}
}

// TestScenarioChurnTimelineApplied checks churn transitions route through
// the engine: online fraction moves and churn events are counted.
func TestScenarioChurnTimelineApplied(t *testing.T) {
	const seed = 83
	cfg := shortScenario(SteadyState, seed)
	tl := churn.DefaultTimelineConfig(seed)
	cfg.Churn = &tl
	res := runScenario(t, testNetwork(t, seed), cfg)
	if res.ChurnEvents == 0 {
		t.Fatal("timeline generated no events")
	}
	moved := false
	for _, w := range res.Windows {
		if w.OnlineFrac != 1 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("churn never took a peer offline")
	}
}
