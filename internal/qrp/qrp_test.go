package qrp

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestNewTableValidation(t *testing.T) {
	for _, bits := range []uint{0, 25, 99} {
		if _, err := NewTable(bits); err == nil {
			t.Errorf("bits=%d accepted", bits)
		}
	}
	if _, err := NewTable(DefaultBits); err != nil {
		t.Fatal(err)
	}
}

func TestHashDeterministicAndCaseFolded(t *testing.T) {
	if Hash("Madonna", 16) != Hash("madonna", 16) {
		t.Error("hash not case-insensitive")
	}
	if Hash("madonna", 16) != Hash("madonna", 16) {
		t.Error("hash not deterministic")
	}
	if Hash("madonna", 16) == Hash("zeppelin", 16) {
		t.Error("suspicious collision")
	}
}

func TestHashRange(t *testing.T) {
	f := func(s string) bool {
		return Hash(s, 12) < 1<<12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNoFalseNegatives(t *testing.T) {
	tab, _ := NewTable(16)
	names := []string{
		"Aaron Neville - I Don't Know Much.mp3",
		"Linda Ronstadt - Blue Bayou.mp3",
		"01 Track.wma",
	}
	for _, n := range names {
		tab.AddName(n)
	}
	for _, q := range []string{"aaron neville", "blue bayou", "track", "mp3", "NEVILLE"} {
		if !tab.MatchesQuery(q) {
			t.Errorf("query %q missed despite matching content", q)
		}
	}
}

func TestQueryHashesEquivalentToMatchesQuery(t *testing.T) {
	tab, _ := NewTable(12)
	tab.AddName("Aaron Neville - I Don't Know Much.mp3")
	tab.AddName("Linda Ronstadt - Blue Bayou.mp3")
	queries := []string{
		"aaron neville", "blue bayou", "mp3", "aaron ronstadt",
		"zzz unknown", "", "---", "NEVILLE",
	}
	for _, q := range queries {
		hoisted := tab.ContainsAll(QueryHashes(q, tab.Bits()))
		if direct := tab.MatchesQuery(q); hoisted != direct {
			t.Errorf("query %q: hoisted=%v direct=%v", q, hoisted, direct)
		}
	}
	if QueryHashes("", 12) != nil || QueryHashes("---", 12) != nil {
		t.Error("keywordless query produced hashes")
	}
}

func TestConjunctiveReject(t *testing.T) {
	tab, _ := NewTable(16)
	tab.AddName("Aaron Neville - Bayou.mp3")
	if tab.MatchesQuery("aaron ronstadt") {
		t.Error("query with an unknown keyword matched")
	}
	if tab.MatchesQuery("") || tab.MatchesQuery("---") {
		t.Error("keywordless query matched")
	}
}

func TestFalsePositivesBounded(t *testing.T) {
	tab, _ := NewTable(16)
	for i := 0; i < 2000; i++ {
		tab.AddKeyword(fmt.Sprintf("inword%d", i))
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if tab.MatchesQuery(fmt.Sprintf("outword%d", i)) {
			fp++
		}
	}
	// 2000 of 65536 slots ≈ 3% fill; single-keyword FP rate ≈ fill ratio.
	if rate := float64(fp) / probes; rate > 0.1 {
		t.Errorf("false positive rate %v too high", rate)
	}
	if tab.FillRatio() <= 0 || tab.FillRatio() > 0.05 {
		t.Errorf("fill ratio = %v", tab.FillRatio())
	}
}

func TestMerge(t *testing.T) {
	a, _ := NewTable(12)
	b, _ := NewTable(12)
	a.AddKeyword("alpha")
	b.AddKeyword("beta")
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if !a.MatchesQuery("alpha") || !a.MatchesQuery("beta") {
		t.Error("merge lost keywords")
	}
	c, _ := NewTable(13)
	if err := a.Merge(c); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestReset(t *testing.T) {
	tab, _ := NewTable(10)
	tab.AddKeyword("gone")
	tab.Reset()
	if tab.MatchesQuery("gone") || tab.N() != 0 || tab.FillRatio() != 0 {
		t.Error("reset incomplete")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tab, _ := NewTable(12)
	for i := 0; i < 300; i++ {
		tab.AddKeyword(fmt.Sprintf("kw%d", i))
	}
	blob := tab.Encode()
	back, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.Bits() != 12 || back.N() != 300 {
		t.Errorf("decoded bits=%d n=%d", back.Bits(), back.N())
	}
	for i := 0; i < 300; i++ {
		if !back.MatchesQuery(fmt.Sprintf("kw%d", i)) {
			t.Fatalf("keyword kw%d lost in round trip", i)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	tab, _ := NewTable(10)
	blob := tab.Encode()
	if _, err := Decode(blob[:4]); err == nil {
		t.Error("short blob accepted")
	}
	bad := append([]byte{}, blob...)
	bad[0] = 'X'
	if _, err := Decode(bad); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := Decode(blob[:len(blob)-1]); err == nil {
		t.Error("truncated blob accepted")
	}
	oversize := append([]byte{}, blob...)
	oversize[4] = 30 // invalid bits
	if _, err := Decode(oversize); err == nil {
		t.Error("invalid bits accepted")
	}
}

func TestQuickAddThenMatch(t *testing.T) {
	tab, _ := NewTable(16)
	f := func(word string) bool {
		// Only keywords that survive tokenization can be queried back.
		tab.AddKeyword(word)
		return tab.contains(word)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAddName(b *testing.B) {
	tab, _ := NewTable(16)
	for i := 0; i < b.N; i++ {
		tab.AddName("Some Artist - A Reasonably Long Song Title (Live).mp3")
	}
}

func BenchmarkMatchesQuery(b *testing.B) {
	tab, _ := NewTable(16)
	for i := 0; i < 5000; i++ {
		tab.AddKeyword(fmt.Sprintf("kw%d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.MatchesQuery("kw123 kw456")
	}
}

func TestHashSplitsIntoProductAndSlot(t *testing.T) {
	words := []string{"artist", "SONG", "Remix", "a", "zz99", "Track.wma"}
	for _, w := range words {
		prod := HashProduct(w)
		for _, bits := range []uint{1, 8, 16, 24} {
			if got, want := SlotOf(prod, bits), Hash(w, bits); got != want {
				t.Fatalf("SlotOf(HashProduct(%q), %d) = %d, Hash = %d", w, bits, got, want)
			}
		}
	}
	// Case folding happens in the product, so folded pairs share one.
	if HashProduct("SoNg") != HashProduct("song") {
		t.Fatal("HashProduct is not case-folded")
	}
}

func TestAddSlotMatchesAddKeyword(t *testing.T) {
	byKeyword, _ := NewTable(16)
	bySlot, _ := NewTable(16)
	words := []string{"alpha", "beta", "gamma", "delta"}
	for _, w := range words {
		byKeyword.AddKeyword(w)
		bySlot.AddSlot(Hash(w, 16))
	}
	for _, w := range words {
		if !bySlot.contains(w) {
			t.Fatalf("AddSlot table missing %q", w)
		}
	}
	if byKeyword.N() != bySlot.N() {
		t.Fatalf("N mismatch: %d vs %d", byKeyword.N(), bySlot.N())
	}
	if byKeyword.FillRatio() != bySlot.FillRatio() {
		t.Fatal("fill ratios diverge between AddKeyword and AddSlot")
	}
}
