// Package qrp implements the Gnutella Query Routing Protocol: the
// deployed ancestor of content synopses. A leaf hashes every keyword of
// every shared file into a fixed-size bit table and ships it to its
// ultrapeers (RESET + PATCH route-table-update messages); an ultrapeer
// forwards a query to a leaf only when every query keyword hits the leaf's
// table.
//
// QRP is the production counterpart of internal/synopsis: it advertises
// *all* file terms (no budget, no adaptivity), which is exactly the design
// the paper's mismatch finding indicts — the table faithfully routes on
// file annotations, but users query with different terms. The ablation
// experiments compare QRP routing against the query-centric adaptive
// synopsis under the same workloads.
package qrp

import (
	"fmt"

	"querycentric/internal/terms"
)

// DefaultBits is the customary table size (2^16 slots).
const DefaultBits = 16

// Hash is the QRP hash: fold the lowercased keyword into 32 bits, multiply
// by the golden-ratio constant 0x4F1BBCDC, and keep the top bits — the
// function deployed clients agreed on so tables compose across vendors.
func Hash(word string, bits uint) uint32 {
	return SlotOf(HashProduct(word), bits)
}

// HashProduct is the table-width-independent half of Hash: the folded,
// multiplied 32-bit product before the final shift. A term dictionary
// computes it once per interned term; SlotOf then derives the slot for any
// table width without touching the string again.
func HashProduct(word string) uint32 {
	var x uint32
	j := uint(0)
	for i := 0; i < len(word); i++ {
		c := word[i]
		if c >= 'A' && c <= 'Z' {
			c += 32
		}
		x ^= uint32(c) << (j * 8)
		j = (j + 1) & 3
	}
	return x * 0x4F1BBCDC
}

// SlotOf converts a HashProduct into the slot index of a 2^bits-slot table.
func SlotOf(prod uint32, bits uint) uint32 {
	return prod >> (32 - bits)
}

// Table is a QRP route table: one bit per slot (deployed tables carry
// 4-bit hop counts; presence/absence is what routing decisions use).
type Table struct {
	bits  uint
	slots []uint64
	n     int // keywords added
}

// NewTable creates a table with 2^bits slots (1 <= bits <= 24).
func NewTable(bits uint) (*Table, error) {
	if bits < 1 || bits > 24 {
		return nil, fmt.Errorf("qrp: bits must be in [1,24], got %d", bits)
	}
	return &Table{bits: bits, slots: make([]uint64, (1<<bits+63)/64)}, nil
}

// Bits returns the table's size exponent.
func (t *Table) Bits() uint { return t.bits }

// N returns the number of keywords added.
func (t *Table) N() int { return t.n }

// AddKeyword marks one keyword.
func (t *Table) AddKeyword(word string) {
	t.AddSlot(Hash(word, t.bits))
}

// AddSlot marks a pre-hashed slot (from Hash or SlotOf at this table's bit
// width). Interned-dictionary callers use it to build tables without
// re-hashing term strings.
func (t *Table) AddSlot(slot uint32) {
	t.slots[slot/64] |= 1 << (slot % 64)
	t.n++
}

// AddName tokenizes a shared file name and marks every keyword.
func (t *Table) AddName(name string) {
	for _, tok := range terms.Tokenize(name) {
		t.AddKeyword(tok)
	}
}

// contains reports whether a keyword's slot is set.
func (t *Table) contains(word string) bool {
	h := Hash(word, t.bits)
	return t.slots[h/64]&(1<<(h%64)) != 0
}

// MatchesQuery reports whether every keyword of the query hits the table —
// the ultrapeer's forwarding test. Queries without keywords match nothing.
func (t *Table) MatchesQuery(query string) bool {
	return t.ContainsAll(QueryHashes(query, t.bits))
}

// QueryHashes tokenizes a query once and returns the slot index of every
// keyword. Floods hoist this out of the per-edge forwarding test: the hash
// of the criteria is the same for every candidate leaf, so one flood
// computes it once instead of once per (ultrapeer, leaf) edge. An empty
// result means the query has no keywords and can match no table.
func QueryHashes(query string, bits uint) []uint32 {
	toks := terms.Tokenize(query)
	if len(toks) == 0 {
		return nil
	}
	hs := make([]uint32, len(toks))
	for i, tok := range toks {
		hs[i] = Hash(tok, bits)
	}
	return hs
}

// ContainsAll reports whether every pre-hashed slot in hs is set — the
// MatchesQuery decision against hashes from QueryHashes with this table's
// bit width. An empty hs matches nothing, mirroring MatchesQuery on a
// keyword-free query.
func (t *Table) ContainsAll(hs []uint32) bool {
	if len(hs) == 0 {
		return false
	}
	for _, h := range hs {
		if t.slots[h/64]&(1<<(h%64)) == 0 {
			return false
		}
	}
	return true
}

// Merge ORs other into t (ultrapeers aggregate their leaves' tables to
// advertise upward). Sizes must match.
func (t *Table) Merge(other *Table) error {
	if t.bits != other.bits {
		return fmt.Errorf("qrp: merging %d-bit table into %d-bit table", other.bits, t.bits)
	}
	for i := range t.slots {
		t.slots[i] |= other.slots[i]
	}
	t.n += other.n
	return nil
}

// FillRatio returns the fraction of set slots (routing quality degrades as
// the table saturates).
func (t *Table) FillRatio() float64 {
	set := 0
	for _, w := range t.slots {
		for x := w; x != 0; x &= x - 1 {
			set++
		}
	}
	return float64(set) / float64(uint(1)<<t.bits)
}

// Reset clears the table (the RESET route-table-update).
func (t *Table) Reset() {
	for i := range t.slots {
		t.slots[i] = 0
	}
	t.n = 0
}

// --- Route-table-update wire form ---------------------------------------
//
// Deployed QRP ships a RESET message (table size + infinity) followed by
// PATCH messages carrying the (optionally compressed) slot array. This
// implementation frames an uncompressed 1-bit patch, sufficient for the
// crawler-scale networks simulated here.

// patchMagic guards decoding.
var patchMagic = []byte{'Q', 'R', 'P', '1'}

// Encode serializes the table as a RESET+PATCH blob.
func (t *Table) Encode() []byte {
	out := make([]byte, 0, 8+len(t.slots)*8)
	out = append(out, patchMagic...)
	out = append(out, byte(t.bits))
	out = append(out, byte(t.n>>16), byte(t.n>>8), byte(t.n))
	for _, w := range t.slots {
		for shift := 0; shift < 64; shift += 8 {
			out = append(out, byte(w>>shift))
		}
	}
	return out
}

// Decode parses a blob produced by Encode.
func Decode(b []byte) (*Table, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("qrp: blob too short: %d bytes", len(b))
	}
	for i, m := range patchMagic {
		if b[i] != m {
			return nil, fmt.Errorf("qrp: bad magic")
		}
	}
	bits := uint(b[4])
	t, err := NewTable(bits)
	if err != nil {
		return nil, err
	}
	t.n = int(b[5])<<16 | int(b[6])<<8 | int(b[7])
	want := 8 + len(t.slots)*8
	if len(b) != want {
		return nil, fmt.Errorf("qrp: blob is %d bytes, want %d for %d-bit table", len(b), want, bits)
	}
	p := b[8:]
	for i := range t.slots {
		var w uint64
		for shift := 0; shift < 64; shift += 8 {
			w |= uint64(p[0]) << shift
			p = p[1:]
		}
		t.slots[i] = w
	}
	return t, nil
}
