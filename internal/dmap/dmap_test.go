package dmap

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestStringRoundTrip(t *testing.T) {
	n := String("minm", "Blue Bayou")
	b, err := Encode(n)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Code != "minm" || got.Str != "Blue Bayou" || got.Kind != KindString {
		t.Errorf("round trip: %+v", got)
	}
}

func TestWireLayout(t *testing.T) {
	b, err := Encode(String("minm", "ab"))
	if err != nil {
		t.Fatal(err)
	}
	if string(b[0:4]) != "minm" {
		t.Errorf("code bytes: %q", b[0:4])
	}
	if binary.BigEndian.Uint32(b[4:8]) != 2 {
		t.Errorf("length: %d", binary.BigEndian.Uint32(b[4:8]))
	}
	if string(b[8:]) != "ab" {
		t.Errorf("payload: %q", b[8:])
	}
}

func TestUintSizes(t *testing.T) {
	for _, size := range []int{1, 2, 4, 8} {
		v := uint64(0x7f)
		n := Uint("mstt", v, size)
		b, err := Encode(n)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if len(b) != 8+size {
			t.Fatalf("size %d: encoded %d bytes", size, len(b))
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if got.Uint != v {
			t.Errorf("size %d: value %d", size, got.Uint)
		}
	}
	if _, err := Encode(Uint("mstt", 1, 3)); err == nil {
		t.Error("invalid uint size accepted")
	}
}

func TestVersion(t *testing.T) {
	n := Version("mpro", 2, 10)
	b, err := Encode(n)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Uint>>16 != 2 || got.Uint&0xffff != 10 {
		t.Errorf("version: %x", got.Uint)
	}
}

func TestContainerTree(t *testing.T) {
	song := Container("mlit",
		Uint32("miid", 7),
		String("minm", "Blue Bayou"),
		String("asar", "Linda Ronstadt"),
		String("asal", "Simple Dreams"),
		String("asgn", "Rock"),
		Uint32("astn", 4),
	)
	listing := Container("adbs",
		Uint32("mstt", 200),
		Uint32("mtco", 1),
		Uint32("mrco", 1),
		Container("mlcl", song),
	)
	b, err := Encode(listing)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.ChildUint("mstt") != 200 {
		t.Errorf("mstt = %d", got.ChildUint("mstt"))
	}
	mlcl := got.Child("mlcl")
	if mlcl == nil || len(mlcl.Children) != 1 {
		t.Fatal("missing mlcl/mlit")
	}
	item := mlcl.Children[0]
	if item.ChildString("asar") != "Linda Ronstadt" {
		t.Errorf("asar = %q", item.ChildString("asar"))
	}
	if item.ChildString("asgn") != "Rock" {
		t.Errorf("asgn = %q", item.ChildString("asgn"))
	}
	if item.ChildUint("miid") != 7 {
		t.Errorf("miid = %d", item.ChildUint("miid"))
	}
	if item.ChildString("nope") != "" || item.ChildUint("nope") != 0 || item.Child("nope") != nil {
		t.Error("absent child accessors should return zero values")
	}
}

func TestUnknownCodeDecodesAsRaw(t *testing.T) {
	var b []byte
	b = append(b, "zzzz"...)
	b = binary.BigEndian.AppendUint32(b, 3)
	b = append(b, 1, 2, 3)
	n, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if n.Kind != KindRaw || !bytes.Equal(n.Raw, []byte{1, 2, 3}) {
		t.Errorf("raw decode: %+v", n)
	}
}

func TestDecodeErrors(t *testing.T) {
	good, _ := Encode(String("minm", "hello"))
	for cut := 1; cut < len(good); cut++ {
		if _, err := Decode(good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Trailing garbage.
	if _, err := Decode(append(append([]byte{}, good...), 0xff)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Bad integer width.
	var b []byte
	b = append(b, "mstt"...)
	b = binary.BigEndian.AppendUint32(b, 3)
	b = append(b, 1, 2, 3)
	if _, err := Decode(b); err == nil {
		t.Error("3-byte integer accepted")
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := Encode(&Node{Code: "toolong", Kind: KindString}); err == nil {
		t.Error("long code accepted")
	}
	if _, err := Encode(&Node{Code: "mini", Kind: Kind(99)}); err == nil {
		t.Error("unknown kind accepted")
	}
	// Error inside a container must propagate.
	if _, err := Encode(Container("mlit", &Node{Code: "x", Kind: KindString})); err == nil {
		t.Error("bad child accepted")
	}
}

func TestKindOf(t *testing.T) {
	if k, ok := KindOf("asar"); !ok || k != KindString {
		t.Error("asar should be a known string code")
	}
	if _, ok := KindOf("zzzz"); ok {
		t.Error("zzzz should be unknown")
	}
}

func TestQuickStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		b, err := Encode(String("minm", s))
		if err != nil {
			return false
		}
		got, err := Decode(b)
		return err == nil && got.Str == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDeepNesting(t *testing.T) {
	n := String("minm", "leaf")
	tree := Container("mlit", n)
	for i := 0; i < 20; i++ {
		tree = Container("mlcl", tree)
	}
	b, err := Encode(tree)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	for got.Kind == KindContainer {
		if len(got.Children) == 0 {
			t.Fatal("lost children while descending")
		}
		got = got.Children[0]
	}
	if got.Str != "leaf" {
		t.Errorf("leaf = %q", got.Str)
	}
}

func BenchmarkEncodeListing(b *testing.B) {
	var items []*Node
	for i := 0; i < 100; i++ {
		items = append(items, Container("mlit",
			Uint32("miid", uint32(i)),
			String("minm", "Some Song Title"),
			String("asar", "Some Artist"),
			String("asal", "Some Album"),
			String("asgn", "Rock"),
		))
	}
	listing := Container("adbs", Uint32("mstt", 200), Container("mlcl", items...))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(listing); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeListing(b *testing.B) {
	var items []*Node
	for i := 0; i < 100; i++ {
		items = append(items, Container("mlit",
			Uint32("miid", uint32(i)),
			String("minm", "Some Song Title"),
			String("asar", "Some Artist"),
		))
	}
	raw, _ := Encode(Container("adbs", Uint32("mstt", 200), Container("mlcl", items...)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(raw); err != nil {
			b.Fatal(err)
		}
	}
}
