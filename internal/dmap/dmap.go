// Package dmap implements the DMAP tag-length-value encoding that Apple's
// DAAP (iTunes sharing) protocol carries over HTTP.
//
// Every node is an 8-byte header — a 4-character content code and a
// big-endian 32-bit length — followed by the payload: an integer, a UTF-8
// string, or a concatenation of child nodes for container codes. The subset
// of content codes registered here covers what the AppleRecords-style
// crawler (internal/daap) needs: server info, login/session, database and
// item listings with the song annotations the paper analyzed (name, artist,
// album, genre).
package dmap

import (
	"encoding/binary"
	"fmt"
)

// Kind is a node's payload type.
type Kind int

const (
	KindContainer Kind = iota // children
	KindString                // UTF-8 string
	KindUint                  // big-endian unsigned integer, 1/2/4/8 bytes
	KindVersion               // 4-byte version
	KindRaw                   // unregistered code: opaque bytes
)

// registry maps known content codes to kinds. Codes outside the registry
// decode as KindRaw (opaque), as real clients do for unknown codes.
var registry = map[string]Kind{
	// Top-level containers.
	"msrv": KindContainer, // server info response
	"mlog": KindContainer, // login response
	"avdb": KindContainer, // database listing
	"adbs": KindContainer, // database songs
	"mlcl": KindContainer, // listing
	"mlit": KindContainer, // listing item

	// Status / counts / ids.
	"mstt": KindUint, // status code
	"mlid": KindUint, // session id
	"miid": KindUint, // item id
	"mtco": KindUint, // total count
	"mrco": KindUint, // returned count
	"muty": KindUint, // update type
	"msup": KindUint, // supports update
	"mslr": KindUint, // login required
	"msau": KindUint, // authentication method
	"mstm": KindUint, // timeout interval

	// Versions.
	"mpro": KindVersion, // dmap protocol version
	"apro": KindVersion, // daap protocol version

	// Strings: the annotations the paper analyzed.
	"minm": KindString, // item / server name
	"asar": KindString, // song artist
	"asal": KindString, // song album
	"asgn": KindString, // song genre
	"asfm": KindString, // song format

	// Song numerics.
	"astm": KindUint, // song time (ms)
	"assr": KindUint, // sample rate
	"asbr": KindUint, // bitrate
	"assz": KindUint, // size in bytes
	"astn": KindUint, // track number
	"asur": KindUint, // user rating
}

// KindOf returns the registered kind of a content code.
func KindOf(code string) (Kind, bool) {
	k, ok := registry[code]
	return k, ok
}

// Node is one decoded DMAP element.
type Node struct {
	Code     string
	Kind     Kind
	Uint     uint64  // KindUint / KindVersion
	Str      string  // KindString
	Raw      []byte  // KindRaw
	Children []*Node // KindContainer
	uintSize int     // encoded width for KindUint (defaults to 4)
}

// Container builds a container node.
func Container(code string, children ...*Node) *Node {
	return &Node{Code: code, Kind: KindContainer, Children: children}
}

// String builds a string node.
func String(code, s string) *Node {
	return &Node{Code: code, Kind: KindString, Str: s}
}

// Uint builds an unsigned integer node encoded in size bytes (1, 2, 4, 8).
func Uint(code string, v uint64, size int) *Node {
	return &Node{Code: code, Kind: KindUint, Uint: v, uintSize: size}
}

// Uint32 builds a 4-byte unsigned integer node.
func Uint32(code string, v uint32) *Node { return Uint(code, uint64(v), 4) }

// Version builds a version node from major.minor.
func Version(code string, major, minor uint16) *Node {
	return &Node{Code: code, Kind: KindVersion, Uint: uint64(major)<<16 | uint64(minor)}
}

// Child returns the first direct child with the given code, or nil.
func (n *Node) Child(code string) *Node {
	for _, c := range n.Children {
		if c.Code == code {
			return c
		}
	}
	return nil
}

// ChildString returns the string value of the named child ("" if absent).
func (n *Node) ChildString(code string) string {
	if c := n.Child(code); c != nil {
		return c.Str
	}
	return ""
}

// ChildUint returns the integer value of the named child (0 if absent).
func (n *Node) ChildUint(code string) uint64 {
	if c := n.Child(code); c != nil {
		return c.Uint
	}
	return 0
}

// Encode serializes the node tree.
func Encode(n *Node) ([]byte, error) {
	return appendNode(nil, n)
}

func appendNode(dst []byte, n *Node) ([]byte, error) {
	if len(n.Code) != 4 {
		return nil, fmt.Errorf("dmap: content code %q is not 4 bytes", n.Code)
	}
	var payload []byte
	var err error
	switch n.Kind {
	case KindContainer:
		for _, c := range n.Children {
			if payload, err = appendNode(payload, c); err != nil {
				return nil, err
			}
		}
	case KindString:
		payload = []byte(n.Str)
	case KindUint:
		size := n.uintSize
		if size == 0 {
			size = 4
		}
		switch size {
		case 1:
			payload = []byte{byte(n.Uint)}
		case 2:
			payload = binary.BigEndian.AppendUint16(nil, uint16(n.Uint))
		case 4:
			payload = binary.BigEndian.AppendUint32(nil, uint32(n.Uint))
		case 8:
			payload = binary.BigEndian.AppendUint64(nil, n.Uint)
		default:
			return nil, fmt.Errorf("dmap: invalid uint size %d for %s", size, n.Code)
		}
	case KindVersion:
		payload = binary.BigEndian.AppendUint32(nil, uint32(n.Uint))
	case KindRaw:
		payload = n.Raw
	default:
		return nil, fmt.Errorf("dmap: unknown kind %d for %s", n.Kind, n.Code)
	}
	dst = append(dst, n.Code...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...), nil
}

// Decode parses exactly one node (and its subtree) from b, requiring the
// whole buffer to be consumed.
func Decode(b []byte) (*Node, error) {
	n, rest, err := decodeOne(b)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("dmap: %d trailing bytes after %s", len(rest), n.Code)
	}
	return n, nil
}

func decodeOne(b []byte) (*Node, []byte, error) {
	if len(b) < 8 {
		return nil, nil, fmt.Errorf("dmap: truncated header: %d bytes", len(b))
	}
	code := string(b[0:4])
	length := binary.BigEndian.Uint32(b[4:8])
	if uint32(len(b)-8) < length {
		return nil, nil, fmt.Errorf("dmap: %s payload truncated: want %d, have %d", code, length, len(b)-8)
	}
	payload := b[8 : 8+length]
	rest := b[8+length:]
	kind, known := registry[code]
	if !known {
		raw := make([]byte, len(payload))
		copy(raw, payload)
		return &Node{Code: code, Kind: KindRaw, Raw: raw}, rest, nil
	}
	n := &Node{Code: code, Kind: kind}
	switch kind {
	case KindContainer:
		inner := payload
		for len(inner) > 0 {
			child, r, err := decodeOne(inner)
			if err != nil {
				return nil, nil, fmt.Errorf("dmap: in %s: %w", code, err)
			}
			n.Children = append(n.Children, child)
			inner = r
		}
	case KindString:
		n.Str = string(payload)
	case KindUint:
		switch len(payload) {
		case 1:
			n.Uint = uint64(payload[0])
		case 2:
			n.Uint = uint64(binary.BigEndian.Uint16(payload))
		case 4:
			n.Uint = uint64(binary.BigEndian.Uint32(payload))
		case 8:
			n.Uint = binary.BigEndian.Uint64(payload)
		default:
			return nil, nil, fmt.Errorf("dmap: %s has invalid integer width %d", code, len(payload))
		}
		n.uintSize = len(payload)
	case KindVersion:
		if len(payload) != 4 {
			return nil, nil, fmt.Errorf("dmap: %s has invalid version width %d", code, len(payload))
		}
		n.Uint = uint64(binary.BigEndian.Uint32(payload))
	}
	return n, rest, nil
}
