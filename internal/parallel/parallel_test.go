package parallel

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"querycentric/internal/rng"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-1); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-1) = %d, want GOMAXPROCS", got)
	}
}

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		got, err := Map(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(4, 0, func(i int) (int, error) { return 0, errors.New("never") })
	if err != nil || got != nil {
		t.Fatalf("empty map: %v, %v", got, err)
	}
}

// TestMapWorkerCountInvariance is the package-level determinism contract:
// per-index derived randomness merged in index order must be byte-identical
// for every worker count.
func TestMapWorkerCountInvariance(t *testing.T) {
	base := rng.NewNamed(42, "parallel/test")
	run := func(workers int) []uint64 {
		out, err := Map(workers, 500, func(i int) (uint64, error) {
			r := base.Derive(fmt.Sprintf("trial/%d", i))
			// Draw a varying number of values to stress independence.
			v := r.Uint64()
			for k := 0; k < i%5; k++ {
				v ^= r.Uint64()
			}
			return v, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 4, 8, 33} {
		if got := run(workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d diverged from sequential", workers)
		}
	}
}

func TestMapLowestErrorWins(t *testing.T) {
	sentinel := func(i int) error { return fmt.Errorf("fail-%d", i) }
	for _, workers := range []int{1, 4, 16} {
		_, err := Map(workers, 200, func(i int) (int, error) {
			if i%7 == 3 { // lowest failing index is 3
				return 0, sentinel(i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "fail-3" {
			t.Fatalf("workers=%d: error = %v, want fail-3", workers, err)
		}
	}
}

func TestMapWithScratchPerWorker(t *testing.T) {
	var created atomic.Int32
	type scratch struct{ id int32 }
	out, err := MapWith(4, 1000, func() *scratch {
		return &scratch{id: created.Add(1)}
	}, func(s *scratch, i int) (int32, error) {
		return s.id, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if c := created.Load(); c < 1 || c > 4 {
		t.Fatalf("created %d scratches for 4 workers", c)
	}
	for i, v := range out {
		if v < 1 || v > created.Load() {
			t.Fatalf("out[%d] ran with unknown scratch %d", i, v)
		}
	}
}

func TestForEach(t *testing.T) {
	buf := make([]int, 64)
	if err := ForEach(8, len(buf), func(i int) error {
		buf[i] = i + 1
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range buf {
		if v != i+1 {
			t.Fatalf("buf[%d] = %d", i, v)
		}
	}
}

// TestParallelEngineRace hammers the pool from parallel subtests so the
// race detector exercises concurrent Map/MapWith instances sharing one
// parent rng (read-only via Derive) and shared read-only inputs.
func TestParallelEngineRace(t *testing.T) {
	shared := make([]uint64, 4096)
	base := rng.NewNamed(7, "parallel/race")
	fill := rng.NewNamed(8, "parallel/race-fill")
	for i := range shared {
		shared[i] = fill.Uint64()
	}
	for sub := 0; sub < 8; sub++ {
		t.Run(fmt.Sprintf("hammer-%d", sub), func(t *testing.T) {
			t.Parallel()
			want, err := Map(1, 256, raceTrial(base, shared))
			if err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 4; round++ {
				got, err := MapWith(8, 256, func() []uint64 {
					return make([]uint64, 32) // worker-local scratch
				}, func(scr []uint64, i int) (uint64, error) {
					trial := raceTrial(base, shared)
					v, err := trial(i)
					scr[i%len(scr)] = v
					return v, err
				})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatal("parallel run diverged under contention")
				}
			}
		})
	}
}

// raceTrial is one deterministic unit of work over shared read-only state.
func raceTrial(base *rng.Source, shared []uint64) func(i int) (uint64, error) {
	return func(i int) (uint64, error) {
		r := base.Derive(fmt.Sprintf("trial/%d", i))
		acc := uint64(0)
		for k := 0; k < 64; k++ {
			acc ^= shared[r.Intn(len(shared))]
		}
		return acc, nil
	}
}
