// Package parallel is the deterministic trial engine: a bounded worker
// pool that fans independent, index-addressed units of work (simulation
// trials, flood probes, coverage samples) across goroutines and merges
// their results in index order.
//
// Determinism contract: a unit of work may depend only on its index — its
// randomness must come from a per-index stream (rng.Source.Derive of
// "trial/<i>" from a fixed parent), its inputs must be read-only shared
// state, and its mutable scratch must be worker-local. Under that
// contract the merged results are byte-identical for every worker count
// and every scheduling, so experiments can default to GOMAXPROCS workers
// without perturbing published numbers. Reductions that follow a Map must
// walk the result slice in index order; integer sums are order-free but
// floating-point sums are not.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"querycentric/internal/obs"
)

// instr is the process-global observability attachment for the trial
// engine. Generic functions cannot hang methods off a receiver without
// threading a handle through every call site, so instrumentation is
// installed once per process (by the command entry point) via Instrument.
// Batch and unit counts are schedule-invariant: one batch per MapWith
// call, one unit per index, regardless of worker count.
var instr atomic.Pointer[engineObs]

type engineObs struct {
	batches *obs.Counter // parallel_batches_total: MapWith invocations
	units   *obs.Counter // parallel_map_units_total: indices executed
}

// Instrument publishes engine activity to reg (nil detaches). Intended to
// be called once at process start; tests that install a registry must not
// run in parallel with other tests using the engine.
func Instrument(reg *obs.Registry) {
	if reg == nil {
		instr.Store(nil)
		return
	}
	instr.Store(&engineObs{
		batches: reg.Counter("parallel_batches_total"),
		units:   reg.Counter("parallel_map_units_total"),
	})
}

// Workers resolves a requested worker count: values above zero are taken
// as-is, anything else means "one worker per available CPU" (GOMAXPROCS).
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(i) for every i in [0, n) on up to workers goroutines and
// returns the results in index order. A workers value ≤ 0 resolves via
// Workers. If any call fails, Map returns the error of the lowest failing
// index (so the reported error, like the results, is schedule-invariant);
// the remaining indices may or may not have run.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapWith(workers, n, func() struct{} { return struct{}{} },
		func(_ struct{}, i int) (T, error) { return fn(i) })
}

// ForEach is Map for side-effect-only work: fn typically writes to its own
// index of a caller-owned slice.
func ForEach(workers, n int, fn func(i int) error) error {
	_, err := Map(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// ForEachWith is ForEach with per-worker scratch (see MapWith): index
// construction and snapshot encoding reuse one buffer set per worker
// across thousands of units instead of allocating per unit.
func ForEachWith[S any](workers, n int, newScratch func() S, fn func(scratch S, i int) error) error {
	_, err := MapWith(workers, n, newScratch, func(s S, i int) (struct{}, error) {
		return struct{}{}, fn(s, i)
	})
	return err
}

// MapWith is Map with per-worker scratch: newScratch runs once per worker
// goroutine (not per index) and its value is threaded into every fn call
// that worker executes. Use it for reusable state that is expensive to
// allocate per trial and unsafe to share — flood contexts, search
// scratch, encode buffers.
func MapWith[S, T any](workers, n int, newScratch func() S, fn func(scratch S, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if ob := instr.Load(); ob != nil {
		ob.batches.Inc()
		ob.units.Add(int64(n))
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		// Inline fast path: no goroutines, no atomics. Byte-identical to
		// the fanned-out path by the determinism contract.
		scratch := newScratch()
		for i := 0; i < n; i++ {
			v, err := fn(scratch, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		next   atomic.Int64 // next unclaimed index
		failed atomic.Int64 // lowest failing index + 1 (0 = none)
		errs   sync.Map     // index → error
		wg     sync.WaitGroup
	)
	failed.Store(int64(n) + 1)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			scratch := newScratch()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || int64(i) >= failed.Load() {
					return
				}
				v, err := fn(scratch, i)
				if err != nil {
					errs.Store(i, err)
					// Keep the lowest failing index so the returned error
					// does not depend on scheduling among racing failures
					// (later indices may still fail first in wall-clock).
					for {
						cur := failed.Load()
						if int64(i)+1 >= cur || failed.CompareAndSwap(cur, int64(i)+1) {
							break
						}
					}
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if f := failed.Load(); f <= int64(n) {
		// Workers race past the failure marker, so an index below the
		// marker may have failed after the marker was set; report the
		// lowest error actually recorded.
		for i := 0; i < n; i++ {
			if err, ok := errs.Load(i); ok {
				return nil, err.(error)
			}
		}
	}
	return out, nil
}
