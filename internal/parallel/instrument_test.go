package parallel

import (
	"testing"

	"querycentric/internal/obs"
)

// Deliberately not t.Parallel(): Instrument installs process-global state
// and concurrent engine users would pollute the counts.
func TestInstrumentCountsBatchesAndUnits(t *testing.T) {
	reg := obs.NewRegistry()
	Instrument(reg)
	defer Instrument(nil)

	for _, workers := range []int{1, 4} {
		if _, err := Map(workers, 10, func(i int) (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	// Empty batches must not count.
	if _, err := Map(2, 0, func(i int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}

	if got := reg.Counter("parallel_batches_total").Value(); got != 2 {
		t.Errorf("batches = %d, want 2", got)
	}
	if got := reg.Counter("parallel_map_units_total").Value(); got != 20 {
		t.Errorf("units = %d, want 20", got)
	}

	Instrument(nil)
	if _, err := Map(1, 5, func(i int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("parallel_batches_total").Value(); got != 2 {
		t.Errorf("batches after detach = %d, want 2", got)
	}
}
