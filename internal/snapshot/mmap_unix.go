//go:build unix

package snapshot

import (
	"io"
	"math"
	"os"
	"syscall"
)

// mapFile maps path read-only and returns the mapped bytes plus the closer
// that releases the mapping. The mapping is private: even a stray write
// through an unsafe view could never reach the file.
func mapFile(path string) ([]byte, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close() // the mapping outlives the descriptor
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size == 0 {
		// mmap rejects empty ranges; an empty view fails parsing the same
		// way an empty file would.
		return nil, nopCloser{}, nil
	}
	if size > math.MaxInt-1 {
		return nil, nil, ErrCorrupt
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, err
	}
	return data, &mapping{b: data}, nil
}

// mapping unmaps its range on Close (idempotently). After Close every view
// into the mapped bytes is invalid.
type mapping struct{ b []byte }

func (m *mapping) Close() error {
	b := m.b
	m.b = nil
	if b == nil {
		return nil
	}
	return syscall.Munmap(b)
}

type nopCloser struct{}

func (nopCloser) Close() error { return nil }
