// Shard-and-spill snapshot construction: build a paper-scale (or larger)
// network substrate directly into a version-2 snapshot file while holding
// only one bounded shard of peers in memory.
//
// The in-heap pipeline (catalog → network → indexes → Save) materializes
// every library string and posting arena before the first byte is written:
// ~2.3 GB of heap at the paper's 37,572-peer scale, and far past this
// box's budget at a million peers. BuildSharded reorders the work so peak
// memory is O(one shard + the shared dictionary):
//
//  1. Topology skeleton. gnet.New draws identities, the firewalled mask
//     and the overlay from the same named streams as the in-heap path.
//  2. Placement pass. catalog.Stream generates the content population
//     without retaining it; each (peer, name) placement is appended to its
//     shard's spill bucket (varint peer, varint length, name bytes) while
//     the global token set and per-peer file counts accumulate.
//  3. The dictionary is built from the token set — byte-identical to the
//     in-heap dict because IDs are assigned in sorted term order — and the
//     meta, dict and topology sections stream out. The skeleton is then
//     released.
//  4. Shard pass, ascending. Each bucket is read back, its libraries are
//     rebuilt (names are zero-copy views of the bucket buffer, sizes come
//     off the one sequential gnet/file-sizes stream, which ascending order
//     keeps in global peer order), posting indexes are built in parallel,
//     and the peers' library rows stream into the libraries section while
//     their index rows spill to one side file — the indexes section's
//     header needs totals the pass is still accumulating.
//  5. The side file is replayed through the writer as the indexes section,
//     the directory is patched, and the file renames into place.
//
// Every row goes through the same append encoders Save uses and every
// random draw comes off the same named stream in the same order, so the
// output is byte-for-byte the file Save would have produced from the
// in-heap build — at any worker count and any shard size.
package snapshot

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"querycentric/internal/catalog"
	"querycentric/internal/dict"
	"querycentric/internal/gmsg"
	"querycentric/internal/gnet"
	"querycentric/internal/parallel"
	"querycentric/internal/terms"
	"querycentric/internal/vpost"
)

// DefaultShardSize is the peers-per-shard bound when BuildConfig leaves
// ShardSize zero.
const DefaultShardSize = 65536

// maxShards bounds the number of spill buckets (each holds an open file
// descriptor for the duration of the placement pass). Smaller requested
// shard sizes are rounded up to keep within it.
const maxShards = 512

// BuildConfig configures a sharded snapshot build.
type BuildConfig struct {
	Catalog catalog.Config // content population; Peers fixes the network size
	Network gnet.Config    // overlay topology
	Workers int            // parallelism bound; ≤ 0 means GOMAXPROCS
	// ShardSize is the number of peers whose libraries and indexes are
	// resident at once. Zero means DefaultShardSize; values that would
	// need more than maxShards buckets are rounded up.
	ShardSize int
	// TmpDir holds the spill files; empty means the output file's
	// directory (same filesystem as the snapshot, like the .tmp rename).
	TmpDir string
}

// BuildStats reports what a sharded build produced.
type BuildStats struct {
	Peers      int
	Placements int   // total (peer, name) placements = total library files
	Shards     int   // bucket count actually used
	ShardSize  int   // effective peers per shard after clamping
	DictTerms  int   // distinct terms in the shared dictionary
	FileBytes  int64 // final snapshot size
}

// BuildSharded builds the network of cfg directly into a version-2
// snapshot at path without ever holding the whole substrate in memory.
// The file is written to path+".tmp" and renamed into place on success.
// The output is byte-identical to Save over the equivalent in-heap build
// (catalog.Build → gnet.NewFromCatalog → Save).
func BuildSharded(path string, cfg BuildConfig) (*BuildStats, error) {
	n := cfg.Catalog.Peers
	if n <= 0 {
		return nil, fmt.Errorf("snapshot: BuildSharded: catalog has no peers")
	}
	shardSize := cfg.ShardSize
	if shardSize <= 0 {
		shardSize = DefaultShardSize
	}
	if minSize := (n + maxShards - 1) / maxShards; shardSize < minSize {
		shardSize = minSize
	}
	if shardSize > n {
		shardSize = n
	}
	nShards := (n + shardSize - 1) / shardSize
	tmpDir := cfg.TmpDir
	if tmpDir == "" {
		tmpDir = filepath.Dir(path)
	}

	// Topology skeleton: identities, firewalled mask, overlay — no content.
	nw, err := gnet.New(cfg.Network, n)
	if err != nil {
		return nil, fmt.Errorf("snapshot: BuildSharded: %w", err)
	}
	netCfg := nw.Config // normalized (degree defaults applied)

	var cleanup []func()
	defer func() {
		for _, f := range cleanup {
			f()
		}
	}()

	// Placement pass: spill every placement to its shard's bucket while the
	// token set and per-peer file counts accumulate.
	buckets := make([]*spillFile, nShards)
	for s := range buckets {
		b, err := newSpillFile(tmpDir, "qcsnap-bucket-*")
		if err != nil {
			return nil, err
		}
		buckets[s] = b
		cleanup = append(cleanup, b.discard)
	}
	tokens := make(map[string]struct{})
	counts := make([]int32, n)
	var rec []byte
	placed, err := catalog.Stream(cfg.Catalog, cfg.Workers, catalog.Sink{
		Place: func(peer int, name string) error {
			for _, tok := range terms.Tokenize(name) {
				if _, dup := tokens[tok]; !dup {
					// Clone: Tokenize returns substrings of a transient
					// lowered copy of the name (same rule as dict.Build).
					tokens[strings.Clone(tok)] = struct{}{}
				}
			}
			counts[peer]++
			rec = vpost.AppendUvarint(rec[:0], uint64(peer))
			rec = vpost.AppendUvarint(rec, uint64(len(name)))
			rec = append(rec, name...)
			_, err := buckets[peer/shardSize].bw.Write(rec)
			return err
		},
	})
	if err != nil {
		return nil, fmt.Errorf("snapshot: BuildSharded: %w", err)
	}

	d := dict.FromTokenSet(tokens, cfg.Workers)
	tokens = nil

	out, err := os.Create(path + ".tmp")
	if err != nil {
		return nil, err
	}
	cleanup = append(cleanup, func() {
		if out != nil {
			out.Close()
			os.Remove(path + ".tmp")
		}
	})
	w, err := NewWriter(out)
	if err != nil {
		return nil, err
	}
	writeMetaSection(w, netCfg, n)
	db, do := d.Raw()
	writeDictSection(w, db, do)
	writeTopologySection(w, topoSource{
		NPeers:     n,
		Firewalled: nw.Firewalled,
		Ultrapeer:  func(i int) bool { return nw.Peers[i].Ultrapeer },
		GUID:       func(i int) gmsg.GUID { return nw.Peers[i].ServentID },
		Neighbors:  func(i int) []int { return nw.Peers[i].Neighbors },
	})
	nw = nil // topology is on disk; drop the skeleton before the shard pass

	side, err := newSpillFile(tmpDir, "qcsnap-indexes-*")
	if err != nil {
		return nil, err
	}
	cleanup = append(cleanup, side.discard)

	writeLibrariesHeader(w, n, placed)
	sizeRNG := gnet.NewFileSizeRNG(netCfg.Seed)
	var totalBlocks, totalArena int64
	var row []byte
	for s := 0; s < nShards; s++ {
		lo := s * shardSize
		hi := min(lo+shardSize, n)
		data, err := buckets[s].consume()
		buckets[s] = nil
		if err != nil {
			return nil, err
		}
		// Rebuild the shard's libraries from its bucket: records arrive in
		// placement order, which per peer is exactly library order. Names
		// are views of the bucket buffer — alive for this shard only.
		libs := make([][]gnet.File, hi-lo)
		for i := range libs {
			libs[i] = make([]gnet.File, 0, counts[lo+i])
		}
		for len(data) > 0 {
			peer, k := vpost.Uvarint(data)
			if k <= 0 || peer < uint64(lo) || peer >= uint64(hi) {
				return nil, fmt.Errorf("snapshot: BuildSharded: bucket %d holds a record for peer %d", s, peer)
			}
			data = data[k:]
			nameLen, k := vpost.Uvarint(data)
			if k <= 0 || nameLen > uint64(len(data)-k) {
				return nil, fmt.Errorf("snapshot: BuildSharded: bucket %d record truncated", s)
			}
			name := unsafeString(data[k : k+int(nameLen) : k+int(nameLen)])
			data = data[k+int(nameLen):]
			p := int(peer) - lo
			libs[p] = append(libs[p], gnet.File{Index: uint32(len(libs[p])), Name: name})
		}
		// File sizes come off the one sequential global stream: ascending
		// shard order makes these draws identical to the in-heap build's.
		for i := range libs {
			for j := range libs[i] {
				libs[i][j].Size = gnet.DrawFileSize(sizeRNG)
			}
		}
		states := make([]gnet.IndexState, hi-lo)
		if err := parallel.ForEachWith(cfg.Workers, hi-lo,
			func() *gnet.IndexBuilder { return new(gnet.IndexBuilder) },
			func(b *gnet.IndexBuilder, i int) error {
				st, err := b.Build(d, libs[i])
				if err != nil {
					return err
				}
				states[i] = st
				return nil
			}); err != nil {
			return nil, fmt.Errorf("snapshot: BuildSharded: %w", err)
		}
		for i := range libs {
			row = appendLibraryRow(row[:0], libs[i])
			w.Write(row)
			row = appendIndexRow(row[:0], &states[i])
			if _, err := side.bw.Write(row); err != nil {
				return nil, err
			}
			totalBlocks += int64(len(states[i].BlockFirst))
			totalArena += int64(len(states[i].Arena))
		}
	}
	w.EndSection()

	// Replay the spilled index rows as the final section, now that the
	// header's totals are known. The writer hashes them as they pass.
	writeIndexesHeader(w, n, totalBlocks, totalArena)
	if err := side.replay(w); err != nil {
		return nil, err
	}
	w.EndSection()
	size, err := w.Finish()
	if err != nil {
		return nil, err
	}
	f := out
	out = nil // cleanup must not remove the file we are about to rename
	if err := f.Close(); err != nil {
		os.Remove(path + ".tmp")
		return nil, err
	}
	if err := os.Rename(path+".tmp", path); err != nil {
		os.Remove(path + ".tmp")
		return nil, err
	}
	return &BuildStats{
		Peers:      n,
		Placements: placed,
		Shards:     nShards,
		ShardSize:  shardSize,
		DictTerms:  d.Len(),
		FileBytes:  size,
	}, nil
}

// spillFile is an unlinked-on-cleanup buffered temp file: written once
// front to back, then either consumed whole (buckets) or replayed into the
// snapshot writer (the index side file).
type spillFile struct {
	f  *os.File
	bw *bufio.Writer
}

func newSpillFile(dir, pattern string) (*spillFile, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &spillFile{f: f, bw: bufio.NewWriterSize(f, 1<<18)}, nil
}

// consume flushes, reads the whole file back and removes it.
func (s *spillFile) consume() ([]byte, error) {
	if err := s.bw.Flush(); err != nil {
		s.discard()
		return nil, err
	}
	data, err := readFileBytes(s.f)
	s.discard()
	return data, err
}

// replay flushes and copies the file's bytes into w.
func (s *spillFile) replay(w io.Writer) error {
	if err := s.bw.Flush(); err != nil {
		return err
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	_, err := io.Copy(w, bufio.NewReaderSize(s.f, 1<<20))
	return err
}

// discard closes and deletes the file (idempotent).
func (s *spillFile) discard() {
	if s.f == nil {
		return
	}
	name := s.f.Name()
	s.f.Close()
	os.Remove(name)
	s.f = nil
}
